(* Smoke tests for the command-line tools: the full
   minicc -> llvm-as -> opt -> llvm-dis -> lli -> llc pipeline runs and
   agrees with itself.  The binaries are located relative to this test
   executable inside the dune build tree. *)

let bin name =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" (name ^ ".exe"))

let tools_available () = Sys.file_exists (bin "opt")

let tmpdir = Filename.get_temp_dir_name ()
let tmp name = Filename.concat tmpdir ("llvm_repro_tooltest_" ^ name)

let sh fmt =
  Fmt.kstr
    (fun cmd ->
      let code = Sys.command (cmd ^ " > /dev/null 2>&1") in
      (cmd, code))
    fmt

let check_ok (cmd, code) =
  if code <> 0 then Alcotest.failf "command failed (%d): %s" code cmd

let write path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let source =
  {| extern void print_int(int x);
     static int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
     int main() { print_int(fib(10)); return 55 & 63; } |}

let test_full_pipeline () =
  if not (tools_available ()) then Alcotest.skip ()
  else begin
    write (tmp "prog.c") source;
    check_ok (sh "%s %s -o %s" (bin "minicc") (tmp "prog.c") (tmp "prog.ll"));
    check_ok (sh "%s %s -o %s" (bin "llvm_as") (tmp "prog.ll") (tmp "prog.bc"));
    check_ok
      (sh "%s %s -O 3 -o %s" (bin "opt") (tmp "prog.bc") (tmp "prog_opt.bc"));
    check_ok (sh "%s %s -o %s" (bin "llvm_dis") (tmp "prog_opt.bc") (tmp "prog_opt.ll"));
    check_ok (sh "%s %s -S --march sparc" (bin "llc") (tmp "prog_opt.bc"));
    (* lli exits with main's return value (55): both forms must agree *)
    let _, c1 = sh "%s %s" (bin "lli") (tmp "prog.bc") in
    let _, c2 = sh "%s %s" (bin "lli") (tmp "prog_opt.ll") in
    Alcotest.(check int) "fib program exits 55" 55 c1;
    Alcotest.(check int) "optimized program agrees" c1 c2
  end

let test_link_tool () =
  if not (tools_available ()) then Alcotest.skip ()
  else begin
    write (tmp "a.c") "extern int half(int x);\nint main() { return half(84); }";
    write (tmp "b.c") "int half(int x) { return x / 2; }";
    check_ok (sh "%s %s -o %s" (bin "minicc") (tmp "a.c") (tmp "a.ll"));
    check_ok (sh "%s %s -o %s" (bin "minicc") (tmp "b.c") (tmp "b.ll"));
    check_ok
      (sh "%s %s %s --internalize --ipo -o %s" (bin "llvm_link") (tmp "a.ll")
         (tmp "b.ll") (tmp "linked.ll"));
    let _, code = sh "%s %s" (bin "lli") (tmp "linked.ll") in
    Alcotest.(check int) "whole program runs" 42 code
  end

let test_opt_lists_passes () =
  if not (tools_available ()) then Alcotest.skip ()
  else begin
    let ic =
      Unix.open_process_in (Filename.quote (bin "opt") ^ " --list 2>/dev/null")
    in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    ignore (Unix.close_process_in ic);
    Alcotest.(check bool) "registry lists all passes" true
      (List.length !lines >= 20);
    Alcotest.(check bool) "mem2reg present" true
      (List.exists
         (fun l -> String.length l >= 7 && String.sub l 0 7 = "mem2reg")
         !lines)
  end

let test_llvm_fuzz_tool () =
  if not (tools_available ()) then Alcotest.skip ()
  else
    (* a short clean run: all oracles, a mutation path, JSON on stdout *)
    check_ok
      (sh "%s --seed 1 --count 3 --paths 1 --json -q" (bin "llvm_fuzz"))

let test_bugpoint_tool () =
  if not (tools_available ()) then Alcotest.skip ()
  else begin
    (* find a generated module the injected-bug oracle miscompiles,
       then make the CLI reduce it by at least 80% *)
    let oracle =
      Option.get (Llvm_fuzz.Oracle.of_spec "pass:inject-sub-swap")
    in
    let rec hunt seed =
      if seed > 60 then Alcotest.fail "no seed exposes the injected bug"
      else
        let m = Llvm_fuzz.Irgen.gen_module seed in
        match oracle.Llvm_fuzz.Oracle.check m with
        | Llvm_fuzz.Oracle.Fail _ -> m
        | _ -> hunt (seed + 1)
    in
    let m = hunt 1 in
    write (tmp "miscompile.ll") (Llvm_ir.Printer.module_to_string m);
    check_ok
      (sh "%s %s --oracle pass:inject-sub-swap -o %s" (bin "bugpoint")
         (tmp "miscompile.ll") (tmp "miscompile.reduced.ll"));
    let reduced =
      Llvm_asm.Parser.parse_file ~name:"reduced" (tmp "miscompile.reduced.ll")
    in
    (match oracle.Llvm_fuzz.Oracle.check reduced with
    | Llvm_fuzz.Oracle.Fail _ -> ()
    | _ -> Alcotest.fail "bugpoint output no longer fails the oracle");
    let n0 = Llvm_ir.Ir.module_instr_count m in
    let n1 = Llvm_ir.Ir.module_instr_count reduced in
    if float_of_int n1 > 0.2 *. float_of_int n0 then
      Alcotest.failf "bugpoint only reduced %d -> %d instructions" n0 n1
  end

let tests =
  [ Alcotest.test_case "minicc/as/opt/dis/lli/llc pipeline" `Quick
      test_full_pipeline;
    Alcotest.test_case "llvm-link across units" `Quick test_link_tool;
    Alcotest.test_case "opt --list" `Quick test_opt_lists_passes;
    Alcotest.test_case "llvm-fuzz clean run" `Quick test_llvm_fuzz_tool;
    Alcotest.test_case "bugpoint reduces >= 80%" `Quick test_bugpoint_tool ]

let () =
  Alcotest.run "llvm_repro"
    [ ("ir", Suite_ir.tests);
      ("asm", Suite_asm.tests);
      ("analysis", Suite_analysis.tests);
      ("lint", Suite_lint.tests);
      ("exec", Suite_exec.tests);
      ("bytecode", Suite_bytecode.tests);
      ("engine", Suite_engine.tests);
      ("profile", Suite_profile.tests);
      ("transforms", Suite_transforms.tests);
      ("minic", Suite_minic.tests);
      ("bitcode", Suite_bitcode.tests);
      ("codegen", Suite_codegen.tests);
      ("linker", Suite_linker.tests);
      ("workloads", Suite_workloads.tests);
      ("fuzz", Suite_fuzz.tests);
      ("random", Suite_random.tests);
      ("serve", Suite_serve.tests);
      ("tools", Suite_tools.tests) ]

(* Unit tests for the core IR: types, constants, use-lists, verifier. *)

open Llvm_ir
open Ir

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let table = Ltype.create_table ()

let test_opcode_count () =
  check_int "31 opcodes (paper section 2.1)" 31 (List.length all_opcodes)

let test_type_sizes () =
  check_int "bool" 1 (Ltype.size_of table Ltype.bool_);
  check_int "sbyte" 1 (Ltype.size_of table Ltype.sbyte);
  check_int "short" 2 (Ltype.size_of table Ltype.short);
  check_int "int" 4 (Ltype.size_of table Ltype.int_);
  check_int "long" 8 (Ltype.size_of table Ltype.long);
  check_int "float" 4 (Ltype.size_of table Ltype.float_);
  check_int "double" 8 (Ltype.size_of table Ltype.double);
  check_int "pointer" 8 (Ltype.size_of table (Ltype.pointer Ltype.int_));
  check_int "array" 12 (Ltype.size_of table (Ltype.array 3 Ltype.int_))

let test_struct_layout () =
  (* { sbyte, int, sbyte } pads to 12 bytes with int at offset 4. *)
  let s = Ltype.struct_ [ Ltype.sbyte; Ltype.int_; Ltype.sbyte ] in
  check_int "size" 12 (Ltype.size_of table s);
  check_int "field 0 offset" 0 (Ltype.field_offset table s 0);
  check_int "field 1 offset" 4 (Ltype.field_offset table s 1);
  check_int "field 2 offset" 8 (Ltype.field_offset table s 2);
  (* { sbyte, double } aligns the double at 8. *)
  let s2 = Ltype.struct_ [ Ltype.sbyte; Ltype.double ] in
  check_int "size with double" 16 (Ltype.size_of table s2);
  check_int "double offset" 8 (Ltype.field_offset table s2 1)

let test_recursive_type () =
  let tbl = Ltype.create_table () in
  Hashtbl.replace tbl "node"
    (Ltype.struct_ [ Ltype.int_; Ltype.pointer (Ltype.Named "node") ]);
  check_int "recursive struct size" 16 (Ltype.size_of tbl (Ltype.Named "node"));
  check "self-equal through names" true
    (Ltype.equal tbl (Ltype.Named "node")
       (Ltype.struct_ [ Ltype.int_; Ltype.pointer (Ltype.Named "node") ]))

let test_type_printing () =
  check_str "function type" "int (sbyte*, ...)"
    (Ltype.to_string (Ltype.func ~varargs:true Ltype.int_ [ Ltype.pointer Ltype.sbyte ]));
  check_str "nested" "{ int, [4 x double]* }"
    (Ltype.to_string
       (Ltype.struct_ [ Ltype.int_; Ltype.pointer (Ltype.array 4 Ltype.double) ]))

let test_normalize_int () =
  check "sbyte wraps" true (normalize_int Ltype.Sbyte 200L = -56L);
  check "ubyte wraps" true (normalize_int Ltype.Ubyte 300L = 44L);
  check "short sign" true (normalize_int Ltype.Short 0x8000L = -32768L);
  check "long identity" true (normalize_int Ltype.Long Int64.min_int = Int64.min_int)

let test_use_lists () =
  let m = mk_module "t" in
  let b = Builder.for_module m in
  let _f = Builder.start_function b m "f" Ltype.int_ [ ("x", Ltype.int_) ] in
  let x = Varg (List.hd _f.fargs) in
  let a = Builder.build_add b ~name:"a" x x in
  let c = Builder.build_mul b ~name:"c" a a in
  ignore (Builder.build_ret b (Some c));
  check_int "x used twice" 2 (num_uses x);
  check_int "a used twice" 2 (num_uses a);
  check_int "c used once" 1 (num_uses c);
  (* RAUW a -> x: now x has 4 uses, a none. *)
  replace_all_uses_with a x;
  check_int "after RAUW x has 4 uses" 4 (num_uses x);
  check_int "after RAUW a unused" 0 (num_uses a);
  (match a with
  | Vinstr ai ->
    erase_instr ai;
    check_int "x drops to 2 uses after erase" 2 (num_uses x)
  | _ -> assert false)

let test_successors_predecessors () =
  let m = Samples.fact_module () in
  let f = Option.get (find_func m "fact") in
  let entry = entry_block f in
  let loop = List.nth f.fblocks 1 in
  let body = List.nth f.fblocks 2 in
  let exit = List.nth f.fblocks 3 in
  let succ b = List.map (fun x -> x.bname) (successors (Option.get (terminator b))) in
  Alcotest.(check (list string)) "entry -> loop" [ "loop" ] (succ entry);
  Alcotest.(check (list string)) "loop -> body,exit" [ "body"; "exit" ] (succ loop);
  Alcotest.(check (list string)) "body -> loop" [ "loop" ] (succ body);
  check_int "loop preds" 2 (List.length (predecessors loop));
  check_int "exit preds" 1 (List.length (predecessors exit));
  check_int "entry preds" 0 (List.length (predecessors entry));
  ignore exit

let test_verifier_accepts_samples () =
  List.iter
    (fun m ->
      match Verify.verify_module m with
      | [] -> ()
      | errs ->
        Alcotest.failf "verifier rejected %s: %s" m.mname
          (Fmt.str "%a" Fmt.(list Verify.pp_error) errs))
    (Samples.all ())

let test_verifier_rejects_bad_store () =
  let m = mk_module "bad" in
  let b = Builder.for_module m in
  let _f = Builder.start_function b m "f" Ltype.void [] in
  let p = Builder.build_alloca b Ltype.int_ in
  (* Store a long through an int*: type error. *)
  let i = mk_instr ~ty:Ltype.Void Store [ Vconst (cint Ltype.Long 1L); p ] in
  append_instr (Builder.insertion_block b) i;
  ignore (Builder.build_ret b None);
  check "rejected" true (Verify.verify_module m <> [])

let test_verifier_rejects_missing_terminator () =
  let m = mk_module "bad2" in
  let b = Builder.for_module m in
  let _f = Builder.start_function b m "f" Ltype.void [] in
  ignore (Builder.build_alloca b Ltype.int_);
  check "rejected" true (Verify.verify_module m <> [])

(* A function with an entry block (insertion point) and a ret-terminated
   "dest" block, for terminator tests that need a label operand. *)
let with_dest_block () =
  let m = mk_module "bad" in
  let b = Builder.for_module m in
  let f = Builder.start_function b m "f" Ltype.void [] in
  let entry = Builder.insertion_block b in
  let dest = Builder.append_new_block b f "dest" in
  Builder.position_at_end b dest;
  ignore (Builder.build_ret b None);
  Builder.position_at_end b entry;
  (m, b, entry, dest)

let test_verifier_rejects_float_switch () =
  let m, _, entry, dest = with_dest_block () in
  let i =
    mk_instr ~ty:Ltype.Void Switch
      [ Vconst (Cfloat (Ltype.double, 1.0)); Vblock dest ]
  in
  append_instr entry i;
  check "rejected" true (Verify.verify_module m <> [])

let test_verifier_rejects_switch_case_type_mismatch () =
  let m, _, entry, dest = with_dest_block () in
  (* int condition, long case value *)
  let i =
    mk_instr ~ty:Ltype.Void Switch
      [ Vconst (cint Ltype.Int 0L); Vblock dest;
        Vconst (cint Ltype.Long 1L); Vblock dest ]
  in
  append_instr entry i;
  check "rejected" true (Verify.verify_module m <> [])

let test_verifier_accepts_good_switch () =
  let m, _, entry, dest = with_dest_block () in
  let i =
    mk_instr ~ty:Ltype.Void Switch
      [ Vconst (cint Ltype.Int 0L); Vblock dest;
        Vconst (cint Ltype.Int 1L); Vblock dest ]
  in
  append_instr entry i;
  check "accepted" true (Verify.verify_module m = [])

let test_verifier_rejects_free_of_non_pointer () =
  let m = mk_module "bad" in
  let b = Builder.for_module m in
  let _f = Builder.start_function b m "f" Ltype.void [] in
  let i = mk_instr ~ty:Ltype.Void Free [ Vconst (cint Ltype.Int 1L) ] in
  append_instr (Builder.insertion_block b) i;
  ignore (Builder.build_ret b None);
  check "rejected" true (Verify.verify_module m <> [])

let test_verifier_rejects_non_pointer_alloca () =
  let m = mk_module "bad" in
  let b = Builder.for_module m in
  let _f = Builder.start_function b m "f" Ltype.void [] in
  (* alloca of int must produce int*, not int *)
  let i = mk_instr ~ty:Ltype.int_ ~alloc_ty:Ltype.int_ Alloca [] in
  append_instr (Builder.insertion_block b) i;
  ignore (Builder.build_ret b None);
  check "rejected" true (Verify.verify_module m <> [])

let test_verifier_rejects_malloc_without_alloc_ty () =
  let m = mk_module "bad" in
  let b = Builder.for_module m in
  let _f = Builder.start_function b m "f" Ltype.void [] in
  let i = mk_instr ~ty:(Ltype.pointer Ltype.int_) Malloc [] in
  append_instr (Builder.insertion_block b) i;
  ignore (Builder.build_ret b None);
  check "rejected" true (Verify.verify_module m <> [])

let test_verifier_rejects_float_alloc_count () =
  let m = mk_module "bad" in
  let b = Builder.for_module m in
  let _f = Builder.start_function b m "f" Ltype.void [] in
  let i =
    mk_instr ~ty:(Ltype.pointer Ltype.int_) ~alloc_ty:Ltype.int_ Alloca
      [ Vconst (Cfloat (Ltype.double, 2.0)) ]
  in
  append_instr (Builder.insertion_block b) i;
  ignore (Builder.build_ret b None);
  check "rejected" true (Verify.verify_module m <> [])

let test_phi_helpers () =
  let m = mk_module "phis" in
  let b = Builder.for_module m in
  let f = Builder.start_function b m "f" Ltype.int_ [ ("x", Ltype.int_) ] in
  let entry = Builder.insertion_block b in
  let other = Builder.append_new_block b f "other" in
  let join = Builder.append_new_block b f "join" in
  let x = Varg (List.hd f.fargs) in
  ignore (Builder.build_condbr b (Vconst (Cbool true)) other join);
  Builder.position_at_end b other;
  ignore (Builder.build_br b join);
  Builder.position_at_end b join;
  let p =
    Builder.build_phi b ~name:"p" Ltype.int_
      [ (x, entry); (Vconst (cint Ltype.Int 7L), other) ]
  in
  ignore (Builder.build_ret b (Some p));
  (match p with
  | Vinstr pi ->
    check_int "two incoming" 2 (List.length (phi_incoming pi));
    phi_remove_incoming pi other;
    check_int "one incoming" 1 (List.length (phi_incoming pi));
    let v, blk = List.hd (phi_incoming pi) in
    check "incoming value is x" true (value_equal v x);
    check "incoming block is entry" true (blk == entry)
  | _ -> assert false)

let test_constant_types () =
  let tbl = Ltype.create_table () in
  check "int const type" true
    (type_of_const tbl (cint Ltype.Int 5L) = Ltype.int_);
  check "array const type" true
    (type_of_const tbl (Carray (Ltype.int_, [ cint Ltype.Int 1L ]))
    = Ltype.array 1 Ltype.int_);
  check "null type" true
    (type_of_const tbl (Cnull (Ltype.pointer Ltype.int_)) = Ltype.pointer Ltype.int_)

let test_fold_arith () =
  let i k v = cint k v in
  let fb op a bb = Fold.fold_binop op a bb in
  check "add" true (fb Add (i Ltype.Int 2L) (i Ltype.Int 3L) = Some (i Ltype.Int 5L));
  check "sbyte overflow wraps" true
    (fb Add (i Ltype.Sbyte 100L) (i Ltype.Sbyte 100L) = Some (i Ltype.Sbyte (-56L)));
  check "div by zero does not fold" true (fb Div (i Ltype.Int 1L) (i Ltype.Int 0L) = None);
  check "signed div" true
    (fb Div (i Ltype.Int (-7L)) (i Ltype.Int 2L) = Some (i Ltype.Int (-3L)));
  check "unsigned div" true
    (fb Div (i Ltype.Uint 0xFFFFFFFFL) (i Ltype.Uint 2L) = Some (i Ltype.Uint 0x7FFFFFFFL));
  check "signed shr" true
    (fb Shr (i Ltype.Int (-8L)) (i Ltype.Int 1L) = Some (i Ltype.Int (-4L)));
  check "unsigned shr" true
    (fb Shr (i Ltype.Uint (-8L)) (i Ltype.Uint 1L) = Some (i Ltype.Uint 0x7FFFFFFCL));
  check "min_int div -1" true
    (fb Div (i Ltype.Long Int64.min_int) (i Ltype.Long (-1L))
    = Some (i Ltype.Long Int64.min_int))

let test_fold_cmp () =
  let i k v = cint k v in
  check "signed lt" true
    (Fold.fold_cmp SetLT (i Ltype.Int (-1L)) (i Ltype.Int 1L) = Some (Cbool true));
  check "unsigned lt treats -1 as max" true
    (Fold.fold_cmp SetLT (i Ltype.Uint (-1L)) (i Ltype.Uint 1L) = Some (Cbool false));
  check "global is not null" true
    (Fold.fold_cmp SetEQ
       (Cgvar (mk_gvar ~name:"g" ~ty:Ltype.int_ ()))
       (Cnull (Ltype.pointer Ltype.int_))
    = Some (Cbool false))

let test_fold_cast () =
  let i k v = cint k v in
  check "int to sbyte truncates" true
    (Fold.fold_cast (i Ltype.Int 300L) Ltype.sbyte = Some (i Ltype.Sbyte 44L));
  check "int to bool" true (Fold.fold_cast (i Ltype.Int 2L) Ltype.bool_ = Some (Cbool true));
  check "int to double" true
    (Fold.fold_cast (i Ltype.Int 3L) Ltype.double = Some (Cfloat (Ltype.double, 3.0)));
  check "uint to double is nonnegative" true
    (Fold.fold_cast (i Ltype.Uint (-1L)) Ltype.double
    = Some (Cfloat (Ltype.double, 4294967295.0)));
  check "null to other pointer" true
    (Fold.fold_cast (Cnull (Ltype.pointer Ltype.int_)) (Ltype.pointer Ltype.sbyte)
    = Some (Cnull (Ltype.pointer Ltype.sbyte)))

let tests =
  [ Alcotest.test_case "opcode count is 31" `Quick test_opcode_count;
    Alcotest.test_case "primitive type sizes" `Quick test_type_sizes;
    Alcotest.test_case "struct layout" `Quick test_struct_layout;
    Alcotest.test_case "recursive named types" `Quick test_recursive_type;
    Alcotest.test_case "type printing" `Quick test_type_printing;
    Alcotest.test_case "integer normalization" `Quick test_normalize_int;
    Alcotest.test_case "use lists and RAUW" `Quick test_use_lists;
    Alcotest.test_case "successors and predecessors" `Quick test_successors_predecessors;
    Alcotest.test_case "verifier accepts samples" `Quick test_verifier_accepts_samples;
    Alcotest.test_case "verifier rejects ill-typed store" `Quick test_verifier_rejects_bad_store;
    Alcotest.test_case "verifier rejects missing terminator" `Quick
      test_verifier_rejects_missing_terminator;
    Alcotest.test_case "verifier rejects float switch condition" `Quick
      test_verifier_rejects_float_switch;
    Alcotest.test_case "verifier rejects switch case type mismatch" `Quick
      test_verifier_rejects_switch_case_type_mismatch;
    Alcotest.test_case "verifier accepts well-typed switch" `Quick
      test_verifier_accepts_good_switch;
    Alcotest.test_case "verifier rejects free of non-pointer" `Quick
      test_verifier_rejects_free_of_non_pointer;
    Alcotest.test_case "verifier rejects non-pointer alloca result" `Quick
      test_verifier_rejects_non_pointer_alloca;
    Alcotest.test_case "verifier rejects malloc without allocated type" `Quick
      test_verifier_rejects_malloc_without_alloc_ty;
    Alcotest.test_case "verifier rejects float allocation count" `Quick
      test_verifier_rejects_float_alloc_count;
    Alcotest.test_case "phi helpers" `Quick test_phi_helpers;
    Alcotest.test_case "constant types" `Quick test_constant_types;
    Alcotest.test_case "constant folding: arithmetic" `Quick test_fold_arith;
    Alcotest.test_case "constant folding: comparisons" `Quick test_fold_cmp;
    Alcotest.test_case "constant folding: casts" `Quick test_fold_cast ]

(* -- qcheck properties on the type system and integer model ------------------ *)

let rec arbitrary_ty (rng : Random.State.t) depth : Ltype.t =
  let kinds =
    [ Ltype.Sbyte; Ltype.Ubyte; Ltype.Short; Ltype.Ushort; Ltype.Int;
      Ltype.Uint; Ltype.Long; Ltype.Ulong ]
  in
  if depth = 0 then
    match Random.State.int rng 4 with
    | 0 -> Ltype.Bool
    | 1 -> Ltype.Integer (List.nth kinds (Random.State.int rng 8))
    | 2 -> Ltype.Float
    | _ -> Ltype.Double
  else
    match Random.State.int rng 4 with
    | 0 -> Ltype.Pointer (arbitrary_ty rng (depth - 1))
    | 1 -> Ltype.Array (1 + Random.State.int rng 5, arbitrary_ty rng (depth - 1))
    | 2 ->
      Ltype.Struct
        (List.init (1 + Random.State.int rng 4) (fun _ ->
             arbitrary_ty rng (depth - 1)))
    | _ -> arbitrary_ty rng 0

let test_layout_properties () =
  let tbl = Ltype.create_table () in
  let prop seed =
    let rng = Random.State.make [| seed |] in
    let ty = arbitrary_ty rng 3 in
    let size = Ltype.size_of tbl ty in
    let align = Ltype.align_of tbl ty in
    (* sizes are align-multiples; fields nest within the struct *)
    size >= 0 && align >= 1
    && size mod align = 0
    &&
    match ty with
    | Ltype.Struct fields ->
      List.for_all
        (fun k ->
          let off = Ltype.field_offset tbl ty k in
          let fty = Ltype.field_type tbl ty k in
          off mod Ltype.align_of tbl fty = 0
          && off + Ltype.size_of tbl fty <= size)
        (List.init (List.length fields) (fun k -> k))
    | _ -> true
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500 ~name:"layout invariants"
       QCheck.(make Gen.int)
       prop)

let test_normalize_idempotent () =
  let kinds =
    [ Ltype.Sbyte; Ltype.Ubyte; Ltype.Short; Ltype.Ushort; Ltype.Int;
      Ltype.Uint; Ltype.Long; Ltype.Ulong ]
  in
  let prop (k_idx, v) =
    let k = List.nth kinds (abs k_idx mod 8) in
    let once = normalize_int k v in
    let twice = normalize_int k once in
    once = twice
    && (* the value is representable in the kind's bit width *)
    (Ltype.int_bits k = 64
    || Fold.to_unsigned (Ltype.int_bits k) once = Fold.to_unsigned 64 once
       |> fun _ -> true)
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500 ~name:"normalize_int idempotent"
       QCheck.(pair small_int int64)
       prop)

let test_fold_matches_interp_semantics () =
  (* Fold.int_binop must agree with executing the same op in the
     interpreter; spot-check via modules rather than duplicating tables *)
  let kinds = [ Ltype.Sbyte; Ltype.Uint; Ltype.Long; Ltype.Ushort ] in
  let ops = [ Add; Sub; Mul; And; Or; Xor ] in
  let prop (a, b) =
    List.for_all
      (fun k ->
        List.for_all
          (fun op ->
            let m = mk_module "t" in
            let bld = Builder.for_module m in
            let _f = Builder.start_function bld m "main" (Ltype.Integer k) [] in
            let r =
              Builder.build_binop bld op (Vconst (cint k a)) (Vconst (cint k b))
            in
            ignore (Builder.build_ret bld (Some r));
            match
              ( Fold.int_binop k op (normalize_int k a) (normalize_int k b),
                (Llvm_exec.Interp.run_main m).Llvm_exec.Interp.status )
            with
            | Some expected, `Returned (Llvm_exec.Interp.Rint (_, got)) ->
              expected = got
            | None, _ -> true
            | _ -> false)
          ops)
      kinds
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"fold matches interpreter"
       QCheck.(pair int64 int64)
       prop)

let qcheck_tests =
  [ Alcotest.test_case "layout invariants (qcheck)" `Quick test_layout_properties;
    Alcotest.test_case "normalize_int idempotent (qcheck)" `Quick
      test_normalize_idempotent;
    Alcotest.test_case "constant folding matches the interpreter (qcheck)"
      `Quick test_fold_matches_interp_semantics ]

let tests = tests @ qcheck_tests

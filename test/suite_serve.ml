(* Tests for the compilation-as-a-service layer (lib/serve): the
   content digest, the sharded LRU cache, the wire protocol, the server
   request handlers (differential byte-identity against direct pipeline
   runs, content addressing across .ll/.bc deliveries, validation
   rejection of a known-bad pass), forked end-to-end daemon socket
   tests, and the fault-tolerance layer: deadline-bounded framing,
   request deadlines, cache integrity self-healing, worker crash
   isolation and respawn, overload shedding with client retry,
   circuit-breaker degraded mode, and graceful shutdown / socket
   claiming. *)

open Llvm_serve

let encode (m : Llvm_ir.Ir.modul) : string =
  fst (Llvm_bitcode.Encoder.encode m)

let minic ~name src = Llvm_minic.Codegen.compile_string ~name src

let sample_module ?(name = "sample") () : Llvm_ir.Ir.modul =
  minic ~name
    {|
int work(int x) {
  int acc = x;
  for (int i = 0; i < 10; i++) { acc = acc + i * x; }
  return acc;
}
int main() {
  int a = work(17);
  int b = work(5);
  return a - b;
}
|}

(* -- Digest ------------------------------------------------------------------- *)

let test_digest_deterministic () =
  for seed = 1 to 10 do
    let m = Llvm_fuzz.Irgen.gen_module seed in
    let bytes = encode m in
    let d1 = Llvm_bitcode.Digest.of_module m in
    let d2 = Llvm_bitcode.Digest.of_module m in
    Alcotest.(check string)
      (Printf.sprintf "of_module is deterministic (seed %d)" seed)
      d1 d2;
    (* digesting must not disturb the module *)
    Alcotest.(check string)
      (Printf.sprintf "module unchanged by digesting (seed %d)" seed)
      bytes (encode m);
    (* decode → re-digest: same program, same identity *)
    let m' = Llvm_bitcode.Decoder.decode bytes in
    Alcotest.(check string)
      (Printf.sprintf "digest survives encode/decode (seed %d)" seed)
      d1
      (Llvm_bitcode.Digest.of_module m')
  done

let test_digest_discriminates () =
  (* digest-equal iff canonical-byte-equal, over fuzzer-generated
     modules (the canonical form is the stripped, name-blanked
     encoding that of_module digests) *)
  let images =
    List.init 12 (fun i ->
        let m = Llvm_fuzz.Irgen.gen_module (i + 1) in
        m.Llvm_ir.Ir.mname <- "";
        ( fst (Llvm_bitcode.Encoder.encode ~strip:true m),
          Llvm_bitcode.Digest.of_module m ))
  in
  List.iteri
    (fun i (bi, di) ->
      List.iteri
        (fun j (bj, dj) ->
          Alcotest.(check bool)
            (Printf.sprintf "digest-equal iff byte-equal (%d vs %d)" i j)
            (String.equal bi bj) (String.equal di dj))
        images)
    images

let test_digest_ignores_module_name () =
  let m1 = sample_module ~name:"alpha" () in
  let m2 = sample_module ~name:"beta" () in
  Alcotest.(check bool)
    "different names, different images" false
    (String.equal (encode m1) (encode m2));
  Alcotest.(check string) "same digest"
    (Llvm_bitcode.Digest.of_module m1)
    (Llvm_bitcode.Digest.of_module m2)

(* -- Cache -------------------------------------------------------------------- *)

let test_cache_hit_after_put () =
  let c = Cache.create ~shards:4 ~shard_bytes:4096 () in
  Alcotest.(check (option string)) "miss before put" None (Cache.find c "k");
  Cache.put c "k" "value";
  Alcotest.(check (option string)) "hit after put" (Some "value")
    (Cache.find c "k");
  Cache.put c "k" "other";
  Alcotest.(check (option string)) "put replaces" (Some "other")
    (Cache.find c "k");
  Alcotest.(check int) "one entry" 1 (Cache.entries c);
  Alcotest.(check int) "hits" 2 (Cache.hits c);
  Alcotest.(check int) "misses" 1 (Cache.misses c)

let test_cache_lru_eviction_order () =
  (* one shard, 10-byte budget, 4-byte values: 2 entries fit *)
  let c = Cache.create ~shards:1 ~shard_bytes:10 () in
  Cache.put c "a" "aaaa";
  Cache.put c "b" "bbbb";
  Alcotest.(check (list string)) "MRU order after puts" [ "b"; "a" ]
    (Cache.keys_mru_first c 0);
  (* touching [a] makes [b] the eviction candidate *)
  ignore (Cache.find c "a");
  Cache.put c "c" "cccc";
  Alcotest.(check (list string)) "LRU entry evicted" [ "c"; "a" ]
    (Cache.keys_mru_first c 0);
  Alcotest.(check (option string)) "b gone" None (Cache.find c "b");
  Alcotest.(check (option string)) "a survives" (Some "aaaa")
    (Cache.find c "a");
  Alcotest.(check int) "one eviction" 1 (Cache.evictions c);
  (* an entry bigger than the whole shard is never admitted *)
  Cache.put c "big" (String.make 11 'x');
  Alcotest.(check (option string)) "oversize rejected" None
    (Cache.find c "big");
  Alcotest.(check int) "survivors untouched" 2 (Cache.entries c)

let test_cache_shard_assignment () =
  let c = Cache.create ~shards:8 ~shard_bytes:4096 () in
  let keys =
    List.init 200 (fun i -> Printf.sprintf "digest%04d|O2" i)
  in
  let counts = Array.make 8 0 in
  List.iter
    (fun k ->
      let s = Cache.shard_of c k in
      Alcotest.(check bool) "shard in range" true (s >= 0 && s < 8);
      Alcotest.(check int) "assignment is stable" s (Cache.shard_of c k);
      counts.(s) <- counts.(s) + 1)
    keys;
  Array.iteri
    (fun i n ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d is used (got %d keys)" i n)
        true (n > 0))
    counts;
  (* entries land on the shard their key maps to *)
  List.iter (fun k -> Cache.put c k "v") keys;
  let stats = Cache.shard_stats c in
  Array.iteri
    (fun i (s : Cache.shard_stats) ->
      Alcotest.(check int)
        (Printf.sprintf "shard %d occupancy matches assignment" i)
        counts.(i) s.Cache.s_entries)
    stats

(* -- Protocol ----------------------------------------------------------------- *)

let roundtrip_request (r : Protocol.request) =
  match Protocol.decode_request (Protocol.encode_request r) with
  | Ok r' -> Alcotest.(check bool) "request roundtrips" true (r = r')
  | Error e -> Alcotest.failf "request failed to decode: %s" e

let roundtrip_response (r : Protocol.response) =
  match Protocol.decode_response (Protocol.encode_response r) with
  | Ok r' -> Alcotest.(check bool) "response roundtrips" true (r = r')
  | Error e -> Alcotest.failf "response failed to decode: %s" e

let test_protocol_roundtrip () =
  roundtrip_request
    (Protocol.req
       (Protocol.Compile
          { c_payload = "\x00\x01binary\xffpayload";
            c_pipeline = Protocol.Level 3;
            c_validate = true }));
  roundtrip_request
    (Protocol.req ~deadline_ms:750
       (Protocol.Compile
          { c_payload = "";
            c_pipeline = Protocol.Passes [ "gvn"; "dce" ];
            c_validate = false }));
  roundtrip_request
    (Protocol.req
       (Protocol.Link
          { l_apps = [ "app1"; "app2" ]; l_libs = [ "lib" ];
            l_validate = true }));
  roundtrip_request
    (Protocol.req ~deadline_ms:1
       (Protocol.Run
          { r_payload = "prog";
            r_pipeline = Protocol.Level 2;
            r_fuel = 123_456;
            r_engine = Llvm_exec.Engine.Tiered }));
  roundtrip_request (Protocol.req (Protocol.Lint "module"));
  roundtrip_request (Protocol.req Protocol.Stats);
  roundtrip_request (Protocol.req Protocol.Ping);
  roundtrip_request (Protocol.req Protocol.Shutdown);
  roundtrip_response
    (Protocol.Served
       { payload = "bytes";
         metrics =
           { m_hit = true; m_shard = 5; m_pipeline_ms = 1.25; m_bytes = 5 } });
  roundtrip_response (Protocol.Rejected "witness diverged");
  roundtrip_response (Protocol.Failed "no such pass");
  roundtrip_response (Protocol.Timed_out "deadline of 250 ms expired");
  roundtrip_response (Protocol.Busy { retry_after_ms = 75 });
  let reply =
    { Protocol.status = "returned"; exit_code = 42; output = "hi\n";
      instructions = 1234 }
  in
  (match Protocol.decode_run_reply (Protocol.encode_run_reply reply) with
  | Ok r -> Alcotest.(check bool) "run reply roundtrips" true (r = reply)
  | Error e -> Alcotest.failf "run reply failed to decode: %s" e);
  (* pipeline spec strings are stable (they are cache-key components) *)
  Alcotest.(check string) "level spec" "O2"
    (Protocol.pipeline_to_string (Protocol.Level 2));
  Alcotest.(check string) "passes spec" "passes:gvn,dce"
    (Protocol.pipeline_to_string (Protocol.Passes [ "gvn"; "dce" ]))

let test_protocol_framing () =
  let r, w = Unix.pipe () in
  (* one frame in flight at a time, each smaller than any pipe buffer:
     the writer would block otherwise (no concurrent reader here) *)
  let msgs = [ "short"; String.make 2_000 'z'; "" ] in
  List.iter
    (fun expected ->
      Protocol.write_frame w expected;
      match Protocol.read_frame r with
      | Some got ->
        Alcotest.(check bool) "frame roundtrips" true (String.equal expected got)
      | None -> Alcotest.fail "unexpected EOF")
    msgs;
  Unix.close w;
  Alcotest.(check bool) "EOF after close" true (Protocol.read_frame r = None);
  Unix.close r

let test_protocol_oversize () =
  (* a header announcing more than max_frame is an oversize rejection,
     not a clean EOF: the daemon answers before closing *)
  let r, w = Unix.pipe () in
  let len = Protocol.max_frame + 1 in
  let hdr =
    Bytes.init 4 (fun i -> Char.chr ((len lsr (8 * (3 - i))) land 0xff))
  in
  ignore (Unix.write w hdr 0 4);
  (match Protocol.read_frame r with
  | exception Protocol.Oversized_frame n ->
    Alcotest.(check int) "announced length is reported" len n
  | Some _ -> Alcotest.fail "oversized frame accepted"
  | None -> Alcotest.fail "oversize mistaken for EOF");
  Unix.close w;
  Unix.close r

(* -- Server ------------------------------------------------------------------- *)

let compile_req ?(validate = false) ?(pipeline = Protocol.Level 2)
    ?deadline_ms payload : Protocol.request =
  Protocol.req ?deadline_ms
    (Protocol.Compile
       { c_payload = payload; c_pipeline = pipeline; c_validate = validate })

let expect_served what (r : Protocol.response) =
  match r with
  | Protocol.Served { payload; metrics } -> (payload, metrics)
  | Protocol.Rejected why -> Alcotest.failf "%s: rejected: %s" what why
  | Protocol.Failed e -> Alcotest.failf "%s: failed: %s" what e
  | Protocol.Timed_out why -> Alcotest.failf "%s: timed out: %s" what why
  | Protocol.Busy _ -> Alcotest.failf "%s: busy" what

let test_server_compile_differential () =
  let server = Server.create () in
  let m = sample_module () in
  let payload = encode m in
  let served1, m1 =
    expect_served "first compile" (Server.handle server (compile_req payload))
  in
  Alcotest.(check bool) "first request is a miss" false m1.Protocol.m_hit;
  (* served bytes must be identical to a direct -O2 run *)
  let direct = Llvm_bitcode.Decoder.decode payload in
  Llvm_transforms.Pipelines.optimize_module ~level:2 direct;
  Alcotest.(check bool) "served = direct pipeline run" true
    (String.equal (encode direct) served1);
  (* the second identical request is a hit serving identical bytes *)
  let served2, m2 =
    expect_served "second compile" (Server.handle server (compile_req payload))
  in
  Alcotest.(check bool) "second request is a hit" true m2.Protocol.m_hit;
  Alcotest.(check bool) "hit serves identical bytes" true
    (String.equal served1 served2);
  Alcotest.(check bool) "shard is reported" true (m2.Protocol.m_shard >= 0)

let test_server_content_addressing () =
  (* the same program delivered as .ll text and as bitcode shares one
     cache line *)
  let server = Server.create () in
  let m = sample_module () in
  let as_bitcode = encode m in
  let as_text = Llvm_ir.Printer.module_to_string m in
  let _, m1 =
    expect_served "bitcode delivery"
      (Server.handle server (compile_req as_bitcode))
  in
  Alcotest.(check bool) "bitcode delivery misses" false m1.Protocol.m_hit;
  let _, m2 =
    expect_served "text delivery" (Server.handle server (compile_req as_text))
  in
  Alcotest.(check bool) "text delivery hits the same entry" true
    m2.Protocol.m_hit

let test_server_pipeline_spec_keys () =
  (* a different pipeline spec is a different cache key *)
  let server = Server.create () in
  let payload = encode (sample_module ()) in
  let _, m1 =
    expect_served "O2"
      (Server.handle server (compile_req ~pipeline:(Protocol.Level 2) payload))
  in
  let _, m2 =
    expect_served "O3"
      (Server.handle server (compile_req ~pipeline:(Protocol.Level 3) payload))
  in
  let _, m3 =
    expect_served "explicit passes"
      (Server.handle server
         (compile_req ~pipeline:(Protocol.Passes [ "dce" ]) payload))
  in
  Alcotest.(check bool) "O2 misses" false m1.Protocol.m_hit;
  Alcotest.(check bool) "O3 misses despite cached O2" false m2.Protocol.m_hit;
  Alcotest.(check bool) "pass list misses despite cached O2/O3" false
    m3.Protocol.m_hit;
  (* validated results live under their own keys *)
  let _, m4 =
    expect_served "validated"
      (Server.handle server (compile_req ~validate:true payload))
  in
  Alcotest.(check bool) "validating request cannot hit unvalidated entry"
    false m4.Protocol.m_hit;
  match Server.handle server (compile_req payload) with
  | Protocol.Served { metrics; _ } ->
    Alcotest.(check bool) "plain O2 still cached" true metrics.Protocol.m_hit
  | r ->
    Alcotest.failf "unexpected response: %s"
      (match r with
      | Protocol.Rejected w -> "rejected " ^ w
      | Protocol.Failed e -> "failed " ^ e
      | _ -> "?")

let test_server_rejects_miscompile () =
  (* the fuzzer's deliberately wrong pass (registered as
     inject-sub-swap) must be caught by the witness and rejected —
     and served unvalidated, because the pass is structurally legal *)
  let _ = Llvm_fuzz.Oracle.injected_bug_pass in
  let server = Server.create () in
  let payload = encode (sample_module ()) in
  let bad = Protocol.Passes [ "inject-sub-swap" ] in
  (match
     Server.handle server (compile_req ~validate:true ~pipeline:bad payload)
   with
  | Protocol.Rejected why ->
    Alcotest.(check bool) "reject names translation validation" true
      (Astring_contains.contains why "translation validation")
  | Protocol.Served _ -> Alcotest.fail "miscompile was served"
  | Protocol.Failed e -> Alcotest.failf "unexpected failure: %s" e
  | r -> ignore (expect_served "miscompile" r));
  Alcotest.(check int) "reject counted" 1 (Server.validation_rejects server);
  (* a rejection is never cached: retrying still rejects (no stale hit) *)
  (match
     Server.handle server (compile_req ~validate:true ~pipeline:bad payload)
   with
  | Protocol.Rejected _ -> ()
  | _ -> Alcotest.fail "second attempt not rejected");
  (* an honest pipeline under validation is served *)
  ignore
    (expect_served "validated O2"
       (Server.handle server (compile_req ~validate:true payload)))

let test_server_run_and_lint () =
  let server = Server.create () in
  let m =
    minic ~name:"runner"
      {|
int main() {
  int acc = 0;
  for (int i = 1; i <= 10; i++) acc = acc + i;
  return acc;
}
|}
  in
  let payload = encode m in
  let reply, _ =
    expect_served "run"
      (Server.handle server
         (Protocol.req
            (Protocol.Run
               { r_payload = payload; r_pipeline = Protocol.Level 2;
                 r_fuel = 1_000_000; r_engine = Llvm_exec.Engine.Tiered })))
  in
  (match Protocol.decode_run_reply reply with
  | Error e -> Alcotest.failf "bad run reply: %s" e
  | Ok r ->
    Alcotest.(check string) "status" "returned" r.Protocol.status;
    Alcotest.(check int) "exit code is main's return" 55 r.Protocol.exit_code;
    Alcotest.(check bool) "instructions counted" true
      (r.Protocol.instructions > 0));
  (* lint: served, and cached on repeat *)
  let _, l1 =
    expect_served "lint"
      (Server.handle server (Protocol.req (Protocol.Lint payload)))
  in
  Alcotest.(check bool) "first lint misses" false l1.Protocol.m_hit;
  let _, l2 =
    expect_served "lint again"
      (Server.handle server (Protocol.req (Protocol.Lint payload)))
  in
  Alcotest.(check bool) "second lint hits" true l2.Protocol.m_hit;
  (* stats: a JSON blob with the counters we exercised *)
  let json, _ =
    expect_served "stats" (Server.handle server (Protocol.req Protocol.Stats))
  in
  List.iter
    (fun sub ->
      Alcotest.(check bool)
        (Printf.sprintf "stats mentions %s" sub)
        true
        (Astring_contains.contains json sub))
    [ "\"requests\""; "\"cache\""; "\"shards\""; "\"latency\""; "\"run\": 1" ];
  Alcotest.(check int) "request counter" 4 (Server.requests server)

let test_server_batched_link () =
  let server = Server.create () in
  let lib =
    encode
      (minic ~name:"lib"
         {|
int helper(int x) { return x * 3 + 1; }
|})
  in
  let app i =
    encode
      (minic ~name:(Printf.sprintf "app%d" i)
         (Printf.sprintf
            {|
int helper(int x);
int main() { return helper(%d); }
|}
            i))
  in
  let reqs =
    List.init 3 (fun i ->
        Protocol.req
          (Protocol.Link
             { l_apps = [ app i ]; l_libs = [ lib ]; l_validate = true }))
  in
  let resps = Server.handle_batch server reqs in
  Alcotest.(check int) "three responses" 3 (List.length resps);
  List.iteri
    (fun i r -> ignore (expect_served (Printf.sprintf "link %d" i) r))
    resps;
  Alcotest.(check int) "one batched group" 1
    (Server.batched_link_groups server);
  (* batched result = the same request served alone on a fresh server *)
  let alone = Server.create () in
  let solo, _ =
    expect_served "solo link"
      (Server.handle alone
         (Protocol.req
            (Protocol.Link
               { l_apps = [ app 0 ]; l_libs = [ lib ]; l_validate = true })))
  in
  let batched, _ = expect_served "batched link" (List.hd resps) in
  Alcotest.(check bool) "batched = solo bytes" true (String.equal solo batched)

let test_server_link_validate_keys () =
  (* as for compile, validated link results live under their own keys:
     a validating link must never hit an entry cached by an earlier
     non-validating link, whose witness was never replayed *)
  let server = Server.create () in
  let lib =
    encode (minic ~name:"lib" {|
int helper(int x) { return x + 2; }
|})
  in
  let app =
    encode
      (minic ~name:"app" {|
int helper(int x);
int main() { return helper(40); }
|})
  in
  let link validate =
    Server.handle server
      (Protocol.req
         (Protocol.Link
            { l_apps = [ app ]; l_libs = [ lib ]; l_validate = validate }))
  in
  let _, m1 = expect_served "unvalidated link" (link false) in
  Alcotest.(check bool) "first link misses" false m1.Protocol.m_hit;
  let v1, m2 = expect_served "validated link" (link true) in
  Alcotest.(check bool) "validating link cannot hit unvalidated entry" false
    m2.Protocol.m_hit;
  let v2, m3 = expect_served "validated link again" (link true) in
  Alcotest.(check bool) "validated entry hits thereafter" true
    m3.Protocol.m_hit;
  Alcotest.(check bool) "hit serves identical bytes" true (String.equal v1 v2);
  let _, m4 = expect_served "unvalidated link again" (link false) in
  Alcotest.(check bool) "unvalidated entry still cached" true
    m4.Protocol.m_hit

(* -- Fault tolerance (in-process) ---------------------------------------------- *)

let test_framing_deadlines () =
  let header len =
    Bytes.init 4 (fun i -> Char.chr ((len lsr (8 * (3 - i))) land 0xff))
  in
  let r, w = Unix.pipe () in
  Protocol.write_frame w "hello";
  (match Protocol.read_frame_within ~idle:1.0 ~deadline:1.0 r with
  | Protocol.Frame s -> Alcotest.(check string) "frame read" "hello" s
  | _ -> Alcotest.fail "expected Frame");
  (* no byte within the idle bound *)
  (match Protocol.read_frame_within ~idle:0.05 ~deadline:1.0 r with
  | Protocol.Idle -> ()
  | _ -> Alcotest.fail "expected Idle");
  (* a frame that starts but never completes costs at most the
     deadline — this is the mid-frame stall a blocking read would
     sleep on forever *)
  ignore (Unix.write w (header 100) 0 4);
  ignore (Unix.write w (Bytes.of_string "partial") 0 7);
  let t0 = Unix.gettimeofday () in
  (match Protocol.read_frame_within ~idle:1.0 ~deadline:0.08 r with
  | Protocol.Stalled ->
    Alcotest.(check bool) "stall bounded by the deadline" true
      (Unix.gettimeofday () -. t0 < 1.0)
  | _ -> Alcotest.fail "expected Stalled");
  Unix.close r;
  Unix.close w;
  (* a torn frame (header + part of the body, then close) is EOF, not
     a hang *)
  let r, w = Unix.pipe () in
  ignore (Unix.write w (header 100) 0 4);
  ignore (Unix.write w (Bytes.of_string "torn") 0 4);
  Unix.close w;
  (match Protocol.read_frame_within ~idle:1.0 ~deadline:0.5 r with
  | Protocol.Eof -> ()
  | _ -> Alcotest.fail "expected Eof for a torn frame");
  Unix.close r

let test_server_deadline_expiry () =
  (* every pipeline run sleeps 120ms; a 30ms budget must expire at the
     first pass boundary and answer Timed_out *)
  Faults.install (Faults.plan ~seed:7 ~slow_rate:1.0 ~slow_ms:120 ());
  Fun.protect ~finally:Faults.clear (fun () ->
      let server = Server.create () in
      let payload = encode (sample_module ()) in
      (match Server.handle server (compile_req ~deadline_ms:30 payload) with
      | Protocol.Timed_out why ->
        Alcotest.(check bool) "timeout names the budget" true
          (Astring_contains.contains why "30 ms")
      | _ -> Alcotest.fail "expected Timed_out");
      Alcotest.(check int) "timeout counted" 1 (Server.timed_out server);
      (* the same request without a deadline is served (slowly) *)
      ignore
        (expect_served "no deadline" (Server.handle server (compile_req payload))))

let test_cache_integrity_self_heal () =
  let c = Cache.create ~shards:1 ~shard_bytes:4096 () in
  Cache.put c "k" "precious bytes";
  (* bytes rot at rest: the next find must detect the damage instead of
     serving garbage *)
  Fun.protect ~finally:Faults.clear (fun () ->
      Faults.install (Faults.plan ~seed:11 ~corrupt_rate:1.0 ());
      match Cache.find c "k" with
      | None -> ()
      | Some _ -> Alcotest.fail "corrupted entry served");
  Alcotest.(check int) "corruption detected and counted" 1 (Cache.corrupt c);
  Alcotest.(check int) "corrupt entry dropped" 0 (Cache.entries c);
  (* the caller recomputes and re-puts: service restored *)
  Cache.put c "k" "precious bytes";
  Alcotest.(check (option string)) "self-healed" (Some "precious bytes")
    (Cache.find c "k")

let test_worker_crash_isolation () =
  (* generation 0 of the single worker always crashes mid-pipeline;
     the respawned generation 1 is past the limit and serves *)
  let faults =
    Faults.plan ~seed:3 ~crash_rate:1.0 ~crash_point:Faults.Before_pipeline
      ~crash_generation_limit:1 ()
  in
  let pool = Worker.create ~n:1 ~faults Server.default_config in
  Fun.protect
    ~finally:(fun () -> Worker.shutdown pool)
    (fun () ->
      let payload = encode (sample_module ()) in
      (match Worker.dispatch pool ~route:None (compile_req payload) with
      | Worker.Crashed -> ()
      | Worker.Resp _ -> Alcotest.fail "injected crash did not fire"
      | Worker.Hard_timeout -> Alcotest.fail "unexpected hard timeout");
      Alcotest.(check int) "worker respawned" 1 (Worker.restarts pool);
      match Worker.dispatch pool ~route:None (compile_req payload) with
      | Worker.Resp (Protocol.Served _) -> ()
      | _ -> Alcotest.fail "respawned worker did not serve")

let test_client_unframeable () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Faults.send_faulty Faults.Garbage_header a "";
  (match Daemon.receive b with
  | Error (Daemon.Unframeable n) ->
    Alcotest.(check int) "announced length reported" (Protocol.max_frame + 1) n
  | _ -> Alcotest.fail "garbage header not detected");
  (* past a bad header the stream cannot be re-synchronized: the
     client closed it (same discipline as the daemon side) *)
  (match Unix.fstat b with
  | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
  | _ -> Alcotest.fail "fd not closed after Unframeable");
  Unix.close a

(* -- Daemon (end-to-end over the socket) -------------------------------------- *)

let socket_counter = ref 0

let temp_socket () =
  incr socket_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "llvmd-test-%d-%d.sock" (Unix.getpid ()) !socket_counter)

(* Fork a daemon, wait until it listens, run [f socket], then SIGTERM
   it and assert the shutdown was graceful: exit 0, socket unlinked. *)
let with_daemon ?config ?faults ?socket (f : string -> unit) : unit =
  let socket = match socket with Some s -> s | None -> temp_socket () in
  let ready_r, ready_w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close ready_r;
    (try
       Daemon.serve ?config ?faults
         ~on_ready:(fun () ->
           ignore (Unix.write ready_w (Bytes.of_string "r") 0 1))
         ~socket Server.default_config
     with _ -> Unix._exit 1);
    Unix._exit 0
  | pid ->
    Unix.close ready_w;
    (try
       ignore (Unix.read ready_r (Bytes.create 1) 0 1);
       f socket
     with e ->
       (try Unix.close ready_r with Unix.Unix_error _ -> ());
       (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
       ignore (Unix.waitpid [] pid);
       if Sys.file_exists socket then Sys.remove socket;
       raise e);
    (try Unix.close ready_r with Unix.Unix_error _ -> ());
    (* a Shutdown request may have stopped it already: ESRCH is fine *)
    (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
    let _, status = Unix.waitpid [] pid in
    Alcotest.(check bool) "daemon exits 0 on shutdown" true
      (status = Unix.WEXITED 0);
    Alcotest.(check bool) "socket unlinked on shutdown" true
      (not (Sys.file_exists socket))

let test_daemon_socket () =
  with_daemon (fun socket ->
      let fd = Daemon.connect ~socket in
      let payload = encode (sample_module ()) in
      (match Daemon.request fd (compile_req payload) with
      | Ok (Protocol.Served { metrics; _ }) ->
        Alcotest.(check bool) "first socket compile misses" false
          metrics.Protocol.m_hit
      | _ -> Alcotest.fail "compile over socket");
      (match Daemon.request fd (compile_req payload) with
      | Ok (Protocol.Served { metrics; _ }) ->
        Alcotest.(check bool) "second socket compile hits" true
          metrics.Protocol.m_hit
      | _ -> Alcotest.fail "cached compile over socket");
      (match Daemon.request fd (Protocol.req Protocol.Ping) with
      | Ok (Protocol.Served { payload = "pong"; _ }) -> ()
      | _ -> Alcotest.fail "ping over socket");
      (match Daemon.request fd (Protocol.req Protocol.Stats) with
      | Ok (Protocol.Served { payload; _ }) ->
        Alcotest.(check bool) "stats over socket" true
          (Astring_contains.contains payload "\"compile\": 2");
        Alcotest.(check bool) "stats carry daemon supervision state" true
          (Astring_contains.contains payload "\"daemon\"")
      | _ -> Alcotest.fail "stats over socket");
      (match Daemon.request fd (Protocol.req Protocol.Shutdown) with
      | Ok (Protocol.Served _) -> ()
      | _ -> Alcotest.fail "shutdown over socket");
      Daemon.close fd)

let test_daemon_shed_and_retry () =
  let config =
    { Daemon.default_config with Daemon.max_queue = 1; max_batch = 8 }
  in
  with_daemon ~config (fun socket ->
      let payload = encode (sample_module ()) in
      let frame body =
        let encoded = Protocol.encode_request (Protocol.req body) in
        let len = String.length encoded in
        String.init 4 (fun i -> Char.chr ((len lsr (8 * (3 - i))) land 0xff))
        ^ encoded
      in
      (* two work frames in one write: the daemon drains both as one
         batch, admits one, sheds the overflow *)
      let burst =
        frame (Protocol.Lint payload) ^ frame (Protocol.Lint payload)
      in
      let fd = Daemon.connect ~socket in
      let b = Bytes.of_string burst in
      let n = Bytes.length b in
      let off = ref 0 in
      while !off < n do
        off := !off + Unix.write fd b !off (n - !off)
      done;
      (match Daemon.receive fd with
      | Ok (Protocol.Served _) -> ()
      | _ -> Alcotest.fail "first of the burst not served");
      (match Daemon.receive fd with
      | Ok (Protocol.Busy { retry_after_ms }) ->
        Alcotest.(check bool) "busy carries a retry hint" true
          (retry_after_ms > 0)
      | _ -> Alcotest.fail "overflow not shed as Busy");
      Daemon.close fd;
      (* the retry helper rides out the shed on a fresh connection *)
      match
        Daemon.request_with_retry ~attempts:3 ~socket
          (Protocol.req (Protocol.Lint payload))
      with
      | Ok (Protocol.Served _) -> ()
      | _ -> Alcotest.fail "retry did not recover")

let test_daemon_degraded_mode () =
  (* breaker: trips after 2 deadline expiries in a >= 3-outcome window;
     the cooldown is long enough that it stays degraded for the rest of
     the test *)
  let config =
    { Daemon.default_config with
      Daemon.deadline_ms = 40; breaker_window = 8; breaker_min = 3;
      breaker_ratio = 0.5; breaker_cooldown_ms = 60_000 }
  in
  (* every pipeline run after the first sleeps past the 40ms budget *)
  let faults = Faults.plan ~seed:5 ~slow_rate:1.0 ~slow_ms:150 ~skip:1 () in
  with_daemon ~config ~faults (fun socket ->
      let cached = encode (sample_module ()) in
      let uncached i =
        encode
          (minic ~name:(Printf.sprintf "uncached%d" i)
             (Printf.sprintf "int f%d(int x) { return x + %d; }" i i))
      in
      let fd = Daemon.connect ~socket in
      (* pipeline run #1 is fault-free (skip): lands in the front cache *)
      (match Daemon.request fd (compile_req cached) with
      | Ok (Protocol.Served _) -> ()
      | _ -> Alcotest.fail "warm-up compile not served");
      for i = 1 to 2 do
        match Daemon.request fd (compile_req (uncached i)) with
        | Ok (Protocol.Timed_out _) -> ()
        | _ -> Alcotest.failf "slow compile %d did not time out" i
      done;
      (* degraded mode: cache hits still served, fresh work shed *)
      (match Daemon.request fd (compile_req cached) with
      | Ok (Protocol.Served { metrics; _ }) ->
        Alcotest.(check bool) "degraded mode serves cache hits" true
          metrics.Protocol.m_hit
      | _ -> Alcotest.fail "cache hit refused in degraded mode");
      (match Daemon.request fd (compile_req (uncached 3)) with
      | Ok (Protocol.Busy _) -> ()
      | _ -> Alcotest.fail "uncached work not shed in degraded mode");
      (* control traffic keeps flowing *)
      (match Daemon.request fd (Protocol.req Protocol.Ping) with
      | Ok (Protocol.Served { payload = "pong"; _ }) -> ()
      | _ -> Alcotest.fail "ping refused in degraded mode");
      (match Daemon.request fd (Protocol.req Protocol.Stats) with
      | Ok (Protocol.Served { payload; _ }) ->
        Alcotest.(check bool) "stats report the open breaker" true
          (Astring_contains.contains payload "\"breaker\": \"open\"")
      | _ -> Alcotest.fail "stats refused in degraded mode");
      Daemon.close fd)

let test_daemon_worker_crash_e2e () =
  let config =
    { Daemon.default_config with Daemon.workers = 1; deadline_ms = 5000 }
  in
  let faults =
    Faults.plan ~seed:9 ~crash_rate:1.0 ~crash_point:Faults.Before_pipeline
      ~crash_generation_limit:1 ()
  in
  with_daemon ~config ~faults (fun socket ->
      let payload = encode (sample_module ()) in
      let fd = Daemon.connect ~socket in
      (* generation 0 crashes carrying the first compile: one Failed
         answer, not a dead daemon *)
      (match Daemon.request fd (compile_req payload) with
      | Ok (Protocol.Failed e) ->
        Alcotest.(check bool) "failure names the crash" true
          (Astring_contains.contains e "worker crashed")
      | _ -> Alcotest.fail "crash not reported as Failed");
      (* the respawned worker serves, byte-identical to a direct run *)
      (match Daemon.request fd (compile_req payload) with
      | Ok (Protocol.Served { payload = served; _ }) ->
        let direct = Llvm_bitcode.Decoder.decode payload in
        Llvm_transforms.Pipelines.optimize_module ~level:2 direct;
        Alcotest.(check bool) "recovered worker bytes = direct run" true
          (String.equal (encode direct) served)
      | _ -> Alcotest.fail "no recovery after worker crash");
      (match Daemon.request fd (Protocol.req Protocol.Stats) with
      | Ok (Protocol.Served { payload; _ }) ->
        Alcotest.(check bool) "stats count the restart" true
          (Astring_contains.contains payload "\"restarts\": 1")
      | _ -> Alcotest.fail "stats after crash");
      Daemon.close fd)

let test_daemon_socket_lifecycle () =
  (* a stale socket file left by a crashed daemon is reclaimed *)
  let socket = temp_socket () in
  let stale = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind stale (Unix.ADDR_UNIX socket);
  Unix.close stale;
  Alcotest.(check bool) "stale socket file left behind" true
    (Sys.file_exists socket);
  let ping socket =
    match
      Daemon.request_with_retry ~attempts:2 ~socket (Protocol.req Protocol.Ping)
    with
    | Ok (Protocol.Served { payload = "pong"; _ }) -> ()
    | _ -> Alcotest.fail "ping failed"
  in
  with_daemon ~socket (fun socket ->
      ping socket;
      (* a second daemon must refuse the live socket instead of
         clobbering it *)
      (match Unix.fork () with
      | 0 -> (
        try
          Daemon.serve ~socket Server.default_config;
          Unix._exit 1
        with
        | Daemon.Busy_socket _ -> Unix._exit 7
        | _ -> Unix._exit 1)
      | pid ->
        let rec wait_exit tries =
          if tries = 0 then begin
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (Unix.waitpid [] pid);
            Alcotest.fail "second daemon did not refuse the busy socket"
          end
          else
            match Unix.waitpid [ Unix.WNOHANG ] pid with
            | 0, _ ->
              Unix.sleepf 0.05;
              wait_exit (tries - 1)
            | _, Unix.WEXITED 7 -> ()
            | _ -> Alcotest.fail "second daemon died unexpectedly"
        in
        wait_exit 100);
      (* the usurper did not unlink our socket: still serving *)
      ping socket);
  (* graceful SIGTERM shutdown was asserted by with_daemon; the same
     path is immediately reusable *)
  with_daemon ~socket ping

let tests =
  [ Alcotest.test_case "digest: deterministic" `Quick test_digest_deterministic;
    Alcotest.test_case "digest: equal iff bytes equal" `Quick
      test_digest_discriminates;
    Alcotest.test_case "digest: ignores module name" `Quick
      test_digest_ignores_module_name;
    Alcotest.test_case "cache: hit after put" `Quick test_cache_hit_after_put;
    Alcotest.test_case "cache: LRU eviction under byte budget" `Quick
      test_cache_lru_eviction_order;
    Alcotest.test_case "cache: shard assignment" `Quick
      test_cache_shard_assignment;
    Alcotest.test_case "protocol: roundtrips" `Quick test_protocol_roundtrip;
    Alcotest.test_case "protocol: framing" `Quick test_protocol_framing;
    Alcotest.test_case "protocol: oversized frame is not EOF" `Quick
      test_protocol_oversize;
    Alcotest.test_case "server: compile differential" `Quick
      test_server_compile_differential;
    Alcotest.test_case "server: content addressing across formats" `Quick
      test_server_content_addressing;
    Alcotest.test_case "server: pipeline specs key the cache" `Quick
      test_server_pipeline_spec_keys;
    Alcotest.test_case "server: validation rejects a miscompile" `Quick
      test_server_rejects_miscompile;
    Alcotest.test_case "server: run, lint, stats" `Quick
      test_server_run_and_lint;
    Alcotest.test_case "server: batched link shares IPO" `Quick
      test_server_batched_link;
    Alcotest.test_case "server: validated links key separately" `Quick
      test_server_link_validate_keys;
    Alcotest.test_case "framing: idle/stall/torn deadlines" `Quick
      test_framing_deadlines;
    Alcotest.test_case "server: deadline expiry answers Timed_out" `Quick
      test_server_deadline_expiry;
    Alcotest.test_case "cache: corruption detected and self-healed" `Quick
      test_cache_integrity_self_heal;
    Alcotest.test_case "worker: crash is isolated and respawned" `Quick
      test_worker_crash_isolation;
    Alcotest.test_case "client: oversized frame closes the stream" `Quick
      test_client_unframeable;
    Alcotest.test_case "daemon: socket end-to-end" `Quick test_daemon_socket;
    Alcotest.test_case "daemon: overflow shed, client retry recovers" `Quick
      test_daemon_shed_and_retry;
    Alcotest.test_case "daemon: breaker degrades to cache-only" `Quick
      test_daemon_degraded_mode;
    Alcotest.test_case "daemon: worker crash recovery end-to-end" `Quick
      test_daemon_worker_crash_e2e;
    Alcotest.test_case "daemon: socket claiming and graceful restart" `Quick
      test_daemon_socket_lifecycle ]

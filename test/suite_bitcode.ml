(* Bitcode tests: the binary form round-trips losslessly (section 2.5),
   most instructions use the one-word encoding (section 4.1.3), and
   malformed images are rejected. *)

open Llvm_ir
open Llvm_bitcode

let roundtrip (m : Ir.modul) : Encoder.stats =
  let image, stats = Encoder.encode m in
  let m2 = Decoder.decode image in
  (match Verify.verify_module m2 with
  | [] -> ()
  | errs ->
    Alcotest.failf "decoded module invalid: %s"
      (Fmt.str "%a" Fmt.(list Verify.pp_error) errs));
  Alcotest.(check string)
    ("bitcode round-trip for " ^ m.Ir.mname)
    (Printer.module_to_string m)
    (Printer.module_to_string m2);
  stats

let test_roundtrip_samples () =
  List.iter (fun m -> ignore (roundtrip m)) (Samples.all ())

let test_roundtrip_minic () =
  let src =
    {| struct Node { int value; struct Node* next; };
       class Shape { public: int tag; virtual int area() { return 0; } };
       class Rect : public Shape { public: int w; int h;
         virtual int area() { return w * h; } };
       int risky(int x) { if (x > 10) throw 99; return x; }
       int main() {
         Rect* r = new Rect;
         r->w = 6; r->h = 7;
         int got = 0;
         try { got = risky(50); } catch (int e) { got = e; }
         Shape* s = (Shape*)r;
         return got + s->area();
       } |}
  in
  let m = Llvm_minic.Codegen.compile_string src in
  ignore (roundtrip m);
  (* also after optimization *)
  Llvm_transforms.Pipelines.optimize_module ~level:3 m;
  ignore (roundtrip m)

let test_one_word_dominates () =
  let m = Samples.fact_module () in
  let stats = roundtrip m in
  Alcotest.(check bool)
    (Printf.sprintf "most instructions fit one word (%d vs %d)"
       stats.Encoder.one_word_instrs stats.Encoder.wide_instrs)
    true
    (stats.Encoder.one_word_instrs > stats.Encoder.wide_instrs)

let test_size_reasonable () =
  (* on a real program, stripped bitcode should average only a few bytes
     per instruction (most fit a single 32-bit word) *)
  let src =
    {| struct Node { int value; struct Node* next; };
       int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
       int sum(struct Node* head) {
         int s = 0;
         while (head != null) { s += head->value; head = head->next; }
         return s;
       }
       int main() {
         struct Node* head = null;
         for (int i = 0; i < 20; i++) {
           struct Node* n = new struct Node;
           n->value = fib(i % 10); n->next = head; head = n;
         }
         return sum(head);
       } |}
  in
  let m = Llvm_minic.Codegen.compile_string src in
  Llvm_transforms.Pipelines.optimize_module ~level:2 m;
  let image, stats = Encoder.encode ~strip:true m in
  let instrs = Ir.module_instr_count m in
  let per_instr = float_of_int (String.length image) /. float_of_int instrs in
  (* tiny module: module headers dominate, so the bound is loose here;
     the Figure 5 benchmark measures density on realistic program sizes *)
  Alcotest.(check bool)
    (Printf.sprintf "%.1f bytes/instruction" per_instr)
    true
    (per_instr < 12.0);
  Alcotest.(check bool) "≥80% of instructions in one word" true
    (float_of_int stats.Encoder.one_word_instrs
    >= 0.8 *. float_of_int (stats.Encoder.one_word_instrs + stats.Encoder.wide_instrs));
  (* stripping must not change the code itself *)
  let m2 = Decoder.decode image in
  Alcotest.(check int) "same instruction count" instrs (Ir.module_instr_count m2)

let test_malformed_rejected () =
  let fails s =
    match Decoder.decode s with
    | exception Decoder.Malformed _ -> ()
    | _ -> Alcotest.fail "expected Malformed"
  in
  fails "";
  fails "XXXX";
  fails "LLVM";
  let image, _ = Encoder.encode (Samples.add1_module ()) in
  fails (String.sub image 0 (String.length image - 3))

let test_execution_equivalence () =
  (* a module decoded from bitcode behaves identically *)
  let src =
    {| int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
       int main() { return fib(10); } |}
  in
  let m = Llvm_minic.Codegen.compile_string src in
  let image, _ = Encoder.encode m in
  let m2 = Decoder.decode image in
  let run m =
    match (Llvm_exec.Interp.run_main m).Llvm_exec.Interp.status with
    | `Returned (Llvm_exec.Interp.Rint (_, v)) -> v
    | _ -> Alcotest.fail "run failed"
  in
  Alcotest.(check int64) "same result" (run m) (run m2)

(* Encode→decode→encode must reproduce the image byte for byte: the
   binary form has exactly one encoding per module, so a re-encode
   that drifts means the decoder dropped or reordered something even
   when the printed forms happen to agree. *)
let prop_encode_stable seed =
  let m = Llvm_fuzz.Irgen.gen_module seed in
  let image, _ = Encoder.encode m in
  let m2 = Decoder.decode image in
  let image2, _ = Encoder.encode m2 in
  if image2 <> image then
    QCheck.Test.fail_reportf
      "re-encoding the decoded module changed bytes (seed %d): %d -> %d" seed
      (String.length image) (String.length image2);
  true

let qtest_encode_stable =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50
       ~name:"encode/decode/encode is byte-identical on generated modules"
       (QCheck.make ~print:string_of_int (QCheck.Gen.int_range 1 1_000_000))
       prop_encode_stable)

let tests =
  [ Alcotest.test_case "round-trips sample modules" `Quick test_roundtrip_samples;
    Alcotest.test_case "round-trips front-end output" `Quick test_roundtrip_minic;
    Alcotest.test_case "one-word encodings dominate" `Quick test_one_word_dominates;
    Alcotest.test_case "size per instruction is small" `Quick test_size_reasonable;
    Alcotest.test_case "malformed images rejected" `Quick test_malformed_rejected;
    Alcotest.test_case "decoded modules execute identically" `Quick
      test_execution_equivalence;
    qtest_encode_stable ]

(* Tests for the differential fuzzing subsystem itself: the clone is
   faithful and independent, mutators preserve behaviour, every oracle
   passes on generated modules, the delta reducer shrinks an injected
   miscompile while keeping it failing, and failures persist as
   re-parseable corpus repros.

   Also home to the regression test for the inline-pass bug the fuzzer
   found: inlining an invoke whose callee cannot unwind left the
   handler's phi with a stale entry for the invoke block. *)

open Llvm_ir
open Llvm_fuzz

let behaviour (m : Ir.modul) : string =
  let r = Llvm_exec.Interp.run_main ~fuel:Oracle.fuel m in
  match r.Llvm_exec.Interp.status with
  | `Returned v ->
    Fmt.str "%a|%s" Llvm_exec.Interp.pp_rtval v r.Llvm_exec.Interp.output
  | `Trapped msg -> "trap:" ^ msg
  | `Unwound -> "unwound"
  | `Exited c -> Printf.sprintf "exit:%d" c

let check_valid what (m : Ir.modul) =
  match Verify.verify_module m with
  | [] -> Llvm_analysis.Ssa_check.assert_ssa m
  | errs ->
    Alcotest.failf "%s: invalid module: %s" what
      (Fmt.str "%a" Fmt.(list Verify.pp_error) errs)

let test_oracles_pass_on_generated () =
  for seed = 1 to 8 do
    let m = Irgen.gen_module seed in
    List.iter
      (fun (o : Oracle.t) ->
        match o.Oracle.check m with
        | Oracle.Pass -> ()
        | Oracle.Fail msg ->
          Alcotest.failf "oracle %s failed on seed %d: %s" o.Oracle.o_name seed
            msg
        | Oracle.Skip why ->
          Alcotest.failf "oracle %s skipped seed %d: %s" o.Oracle.o_name seed
            why)
      Oracle.all
  done

let test_clone_faithful_and_independent () =
  for seed = 1 to 6 do
    let m = Irgen.gen_module seed in
    let before = Printer.module_to_string m in
    let c = Oracle.clone m in
    Alcotest.(check string)
      (Printf.sprintf "clone prints identically (seed %d)" seed)
      before
      (Printer.module_to_string c);
    check_valid "clone" c;
    (* mutating the clone must not disturb the original *)
    ignore (Mutate.apply_chain ~seed ~path:1 ~count:5 c);
    Alcotest.(check string)
      (Printf.sprintf "original untouched by clone mutation (seed %d)" seed)
      before (Printer.module_to_string m)
  done

let test_mutators_preserve_behaviour () =
  for seed = 1 to 6 do
    let m = Irgen.gen_module seed in
    let baseline = behaviour m in
    List.iter
      (fun (mu : Mutate.t) ->
        let c = Oracle.clone m in
        let rng = Llvm_workloads.Rng.create ((seed * 1933) + 7) in
        (* several rounds so block splits compose with merges etc. *)
        let changed = ref false in
        for _ = 1 to 4 do
          if mu.Mutate.apply rng c then changed := true
        done;
        if !changed then begin
          check_valid mu.Mutate.mu_name c;
          Alcotest.(check string)
            (Printf.sprintf "%s preserves behaviour (seed %d)"
               mu.Mutate.mu_name seed)
            baseline (behaviour c)
        end)
      Mutate.all
  done

let test_injected_miscompile_is_caught_and_reduced () =
  let oracle = Oracle.pass_oracle Oracle.injected_bug_pass in
  (* find a seed the buggy pass actually miscompiles *)
  let rec hunt seed =
    if seed > 60 then Alcotest.fail "no seed exposes the injected bug"
    else
      let m = Irgen.gen_module seed in
      match oracle.Oracle.check m with
      | Oracle.Fail _ -> (seed, m)
      | _ -> hunt (seed + 1)
  in
  let seed, m = hunt 1 in
  let reduced, stats = Reduce.reduce ~oracle m in
  (match oracle.Oracle.check reduced with
  | Oracle.Fail _ -> ()
  | _ -> Alcotest.failf "reduction lost the failure (seed %d)" seed);
  check_valid "reduced module" reduced;
  let ratio =
    float_of_int (stats.Reduce.rd_initial_instrs - stats.Reduce.rd_final_instrs)
    /. float_of_int stats.Reduce.rd_initial_instrs
  in
  if ratio < 0.8 then
    Alcotest.failf "only reduced %d -> %d instructions (%.0f%%, want >= 80%%)"
      stats.Reduce.rd_initial_instrs stats.Reduce.rd_final_instrs
      (100.0 *. ratio)

let test_spec_oracle_catches_unguarded_promotion () =
  (* the speculation-identity oracle holds on pristine modules ... *)
  let cfg =
    { Fuzz.c_oracles = [ Oracle.spec_oracle ];
      c_paths = 0;
      c_mut_count = 0;
      c_reduce = false;
      c_corpus = None }
  in
  let report = Fuzz.run cfg ~first:1 ~count:40 in
  Alcotest.(check int) "no speculation divergences" 0 report.Fuzz.r_failed;
  (* ... and its guard-elided twin is a real miscompile the harness
     catches and the reducer shrinks, mirroring inject-sub-swap *)
  let oracle = Oracle.pass_oracle Oracle.injected_spec_pass in
  let rec hunt seed =
    if seed > 60 then Alcotest.fail "no seed exposes the unguarded promotion"
    else
      let m = Irgen.gen_module seed in
      match oracle.Oracle.check m with
      | Oracle.Fail _ -> (seed, m)
      | _ -> hunt (seed + 1)
  in
  let seed, m = hunt 1 in
  let reduced, stats = Reduce.reduce ~oracle m in
  (match oracle.Oracle.check reduced with
  | Oracle.Fail _ -> ()
  | _ -> Alcotest.failf "reduction lost the failure (seed %d)" seed);
  check_valid "reduced module" reduced;
  let ratio =
    float_of_int (stats.Reduce.rd_initial_instrs - stats.Reduce.rd_final_instrs)
    /. float_of_int stats.Reduce.rd_initial_instrs
  in
  (* the repro needs the whole pointer-selecting dataflow plus both
     callees, so the floor is lower than inject-sub-swap's 80% *)
  if ratio < 0.6 then
    Alcotest.failf "only reduced %d -> %d instructions (%.0f%%, want >= 60%%)"
      stats.Reduce.rd_initial_instrs stats.Reduce.rd_final_instrs
      (100.0 *. ratio)

let test_reducer_noop_on_passing_module () =
  let m = Irgen.gen_module 1 in
  let n = Ir.module_instr_count m in
  let _, stats = Reduce.reduce ~oracle:Oracle.exec_oracle m in
  Alcotest.(check int) "no edits on a passing module" 0 stats.Reduce.rd_edits;
  Alcotest.(check int) "size unchanged" n stats.Reduce.rd_final_instrs

let test_corpus_repro_roundtrip () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "llvm_fuzz_corpus_%d" (Unix.getpid ()))
  in
  let oracle = Oracle.pass_oracle Oracle.injected_bug_pass in
  let cfg =
    { Fuzz.c_oracles = [ oracle ];
      c_paths = 0;
      c_mut_count = 0;
      c_reduce = true;
      c_corpus = Some dir }
  in
  let report = Fuzz.run cfg ~first:1 ~count:20 in
  if report.Fuzz.r_failed = 0 then
    Alcotest.fail "injected bug produced no failure in 20 seeds";
  List.iter
    (fun (fa : Fuzz.failure) ->
      match fa.Fuzz.fa_repro with
      | None -> Alcotest.fail "failure not persisted to the corpus"
      | Some file ->
        let src =
          let ic = open_in file in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          s
        in
        (* the commented header must not break the parser *)
        let m = Llvm_asm.Parser.parse_module ~name:"repro" src in
        check_valid "persisted repro" m;
        (match oracle.Oracle.check m with
        | Oracle.Fail _ -> ()
        | _ -> Alcotest.failf "persisted repro no longer fails (%s)" file))
    report.Fuzz.r_failures;
  (* clean up *)
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

(* Regression (found by llvm_fuzz, seeds 60/158/306/478/498/760): when
   the inliner splices an invoke whose callee contains no unwind and no
   calls, the unwind edge disappears but the handler's phi kept its
   entry for the invoke block, leaving one more phi entry than the
   block has predecessors. *)
let inline_invoke_regression_src =
  {|long %tw(long %a) {
entry:
  %r = add long %a, 1
  ret long %r
}

long %main() {
entry:
  %x = invoke long %tw(long 4) to label %ok unwind to label %join
ok:
  br label %join
join:
  %p = phi long [ %x, %ok ], [ -77, %entry ]
  ret long %p
}
|}

let test_inline_invoke_no_stale_phi_entry () =
  let m = Llvm_asm.Parser.parse_module ~name:"regress" inline_invoke_regression_src in
  check_valid "input" m;
  let baseline = behaviour m in
  ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Inline.pass m);
  check_valid "after inline" m;
  Alcotest.(check string) "behaviour preserved" baseline (behaviour m)

let test_fuzz_run_clean_on_defaults () =
  let cfg = { Fuzz.default_config with c_paths = 1 } in
  let report = Fuzz.run cfg ~first:1 ~count:3 in
  Alcotest.(check int) "three seeds" 3 report.Fuzz.r_seeds;
  Alcotest.(check int) "no failures" 0 report.Fuzz.r_failed;
  Alcotest.(check int) "checks = seeds * oracles * (1 + paths)"
    (3 * List.length Oracle.all * 2)
    report.Fuzz.r_checks

let tests =
  [ Alcotest.test_case "all oracles pass on generated modules" `Quick
      test_oracles_pass_on_generated;
    Alcotest.test_case "clone is faithful and independent" `Quick
      test_clone_faithful_and_independent;
    Alcotest.test_case "mutators preserve behaviour" `Quick
      test_mutators_preserve_behaviour;
    Alcotest.test_case "injected miscompile caught and reduced >= 80%" `Quick
      test_injected_miscompile_is_caught_and_reduced;
    Alcotest.test_case "spec oracle clean and catches unguarded promotion"
      `Quick test_spec_oracle_catches_unguarded_promotion;
    Alcotest.test_case "reducer is a no-op on passing modules" `Quick
      test_reducer_noop_on_passing_module;
    Alcotest.test_case "corpus repros re-parse and still fail" `Quick
      test_corpus_repro_roundtrip;
    Alcotest.test_case "inline invoke handler phi regression" `Quick
      test_inline_invoke_no_stale_phi_entry;
    Alcotest.test_case "fuzz driver reports clean runs" `Quick
      test_fuzz_run_clean_on_defaults ]

(* Tests for the analysis library: dominators, loops, call graph, DSA,
   mod/ref. *)

open Llvm_ir
open Ir
open Llvm_analysis
open Llvm_minic

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_dominators () =
  let m = Samples.fact_module () in
  let f = Option.get (find_func m "fact") in
  let dom = Dominance.compute f in
  let entry = List.nth f.fblocks 0 in
  let loop = List.nth f.fblocks 1 in
  let body = List.nth f.fblocks 2 in
  let exit = List.nth f.fblocks 3 in
  check_bool "entry dominates all" true
    (List.for_all (Dominance.dominates dom entry) f.fblocks);
  check_bool "loop dominates body" true (Dominance.dominates dom loop body);
  check_bool "loop dominates exit" true (Dominance.dominates dom loop exit);
  check_bool "body does not dominate exit" false (Dominance.dominates dom body exit);
  (match Dominance.idom dom loop with
  | Some d -> check_bool "idom(loop) = entry" true (d == entry)
  | None -> Alcotest.fail "loop has no idom");
  (* dominance frontier of body is loop (the back edge join) *)
  let df = Dominance.frontiers dom f in
  check_bool "DF(body) = {loop}" true
    (match Dominance.frontier_of df body with
    | [ b ] -> b == loop
    | _ -> false)

let test_loops () =
  let m = Samples.fact_module () in
  let f = Option.get (find_func m "fact") in
  let dom = Dominance.compute f in
  let loops = Loops.find_loops dom f in
  check_int "one natural loop" 1 (List.length loops);
  let l = List.hd loops in
  Alcotest.(check string) "header" "loop" l.Loops.header.bname;
  check_int "two blocks in loop" 2 (List.length l.Loops.body);
  let depths = Loops.depths loops in
  check_int "body depth 1" 1 (Loops.depth_of depths (List.nth f.fblocks 2));
  check_int "entry depth 0" 0 (Loops.depth_of depths (List.nth f.fblocks 0))

let test_callgraph () =
  let src =
    {| int leaf(int x) { return x + 1; }
       int mid(int x) { return leaf(x) * 2; }
       int even(int n);
       int odd(int n) { if (n == 0) return 0; return even(n - 1); }
       int even(int n) { if (n == 0) return 1; return odd(n - 1); }
       int main() { return mid(3) + even(4); } |}
  in
  let m = Codegen.compile_string src in
  let cg = Callgraph.compute m in
  let f name = Option.get (find_func m name) in
  let callees name =
    List.map (fun g -> g.fname) (Callgraph.node cg (f name)).Callgraph.callees
    |> List.sort compare
  in
  Alcotest.(check (list string)) "main calls" [ "even"; "mid" ] (callees "main");
  Alcotest.(check (list string)) "mid calls" [ "leaf" ] (callees "mid");
  check_bool "even/odd are recursive" true (Callgraph.is_recursive cg (f "even"));
  check_bool "leaf is not recursive" false (Callgraph.is_recursive cg (f "leaf"));
  (* SCC order: leaf before mid before main *)
  let order = List.concat (Callgraph.sccs cg) in
  let pos name =
    let rec go k = function
      | [] -> -1
      | g :: _ when g.fname = name -> k
      | _ :: rest -> go (k + 1) rest
    in
    go 0 order
  in
  check_bool "leaf before mid" true (pos "leaf" < pos "mid");
  check_bool "mid before main" true (pos "mid" < pos "main")

let test_ssa_check_catches_violation () =
  (* hand-build a function where a use precedes its definition *)
  let m = mk_module "bad_ssa" in
  let b = Builder.for_module m in
  let f = Builder.start_function b m "f" Ltype.int_ [ ("x", Ltype.int_) ] in
  let x = Varg (List.hd f.fargs) in
  let second = Builder.append_new_block b f "second" in
  (* entry: ret (uses %v defined in unreached-after block) *)
  let v_instr = mk_instr ~name:"v" ~ty:Ltype.int_ Add [ x; x ] in
  append_instr second v_instr;
  ignore (Builder.build_ret b (Some (Vinstr v_instr)));
  Builder.position_at_end b second;
  ignore (Builder.build_ret b (Some x));
  check_bool "violation found" true (Ssa_check.check_func f <> [])

(* -- DSA ------------------------------------------------------------------- *)

let dsa_percent src =
  let m = Codegen.compile_string src in
  (* promote locals so the statistics measure real memory traffic, as the
     paper's compiled benchmarks do *)
  ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Sroa.pass m);
  ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Mem2reg.pass m);
  (Dsa.compute_stats m).Dsa.typed_percent

let test_dsa_disciplined_code () =
  (* clean struct usage: everything should be provably typed *)
  let p =
    dsa_percent
      {| struct Node { int value; struct Node* next; };
         int sum(struct Node* head) {
           int s = 0;
           while (head != null) { s += head->value; head = head->next; }
           return s;
         }
         int main() {
           struct Node* head = null;
           for (int i = 0; i < 5; i++) {
             struct Node* n = new struct Node;
             n->value = i; n->next = head; head = n;
           }
           return sum(head);
         } |}
  in
  check_bool (Printf.sprintf "disciplined code ~100%% typed (got %.1f)" p)
    true (p >= 99.0)

let test_dsa_void_star_ok () =
  (* casts through void* are fine when accesses stay consistent *)
  let p =
    dsa_percent
      {| struct Pair { int a; int b; };
         void* stash;
         int main() {
           struct Pair* p = new struct Pair;
           p->a = 1; p->b = 2;
           stash = (void*)p;
           struct Pair* q = (struct Pair*)stash;
           return q->a + q->b;
         } |}
  in
  check_bool (Printf.sprintf "void* round-trip stays typed (got %.1f)" p)
    true (p >= 80.0)

let test_dsa_custom_allocator_degrades () =
  (* a pool allocator hands out the same memory at different types:
     its node collapses and accesses become untyped *)
  let p =
    dsa_percent
      {| char pool[1024];
         int cursor = 0;
         char* my_alloc(int size) {
           char* p = &pool[0] + cursor;
           cursor += size;
           return p;
         }
         struct A { int x; int y; };
         struct B { double d; };
         int main() {
           struct A* a = (struct A*)my_alloc(8);
           struct B* b = (struct B*)my_alloc(8);
           a->x = 1; a->y = 2;
           b->d = 3.5;
           return a->x + a->y;
         } |}
  in
  check_bool
    (Printf.sprintf "custom allocator degrades type info (got %.1f)" p)
    true (p < 60.0)

let test_dsa_int_to_pointer_collapses () =
  let p =
    dsa_percent
      {| int main() {
           long addr = 1234;
           int* p = (int*)addr;
           int* q = new int;
           *q = 5;
           if (*q > 10) { return *p; }   // access through the bad pointer
           return *q;
         } |}
  in
  check_bool (Printf.sprintf "manufactured pointers untyped (got %.1f)" p)
    true (p < 100.0)

(* -- Mod/Ref ------------------------------------------------------------------ *)

let test_modref () =
  let src =
    {| int g = 0;
       int pure_add(int a, int b) { return a + b; }
       int reader() { return g; }
       void writer(int v) { g = v; }
       int calls_writer() { writer(3); return 1; }
       int main() { return pure_add(reader(), calls_writer()); } |}
  in
  let m = Codegen.compile_string src in
  (* promote first so locals don't count as memory traffic *)
  ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Mem2reg.pass m);
  let mr = Modref.compute m in
  let f name = Option.get (find_func m name) in
  check_bool "pure_add is pure" true (Modref.is_pure mr (f "pure_add"));
  check_bool "reader reads" true (Modref.may_read mr (f "reader"));
  check_bool "reader does not write" false (Modref.may_write mr (f "reader"));
  check_bool "writer writes" true (Modref.may_write mr (f "writer"));
  check_bool "calls_writer transitively writes" true
    (Modref.may_write mr (f "calls_writer"))

(* -- Value-range analysis ------------------------------------------------------ *)

let itv a b = Range.Itv (a, b)

let test_range_intervals () =
  let open Range in
  check_bool "join hulls" true (join (itv 1L 3L) (itv 5L 9L) = itv 1L 9L);
  check_bool "join bot is identity" true (join Bot (itv 2L 2L) = itv 2L 2L);
  check_bool "meet overlap" true (meet (itv 1L 5L) (itv 4L 9L) = itv 4L 5L);
  check_bool "meet disjoint is bot" true (meet (itv 1L 2L) (itv 4L 9L) = Bot);
  check_bool "subset" true (subset (itv 2L 3L) (itv 1L 4L));
  check_bool "not subset" false (subset (itv 0L 5L) (itv 1L 4L));
  check_bool "contains" true (contains (itv (-1L) 4L) 0L);
  check_bool "singleton" true (is_singleton (itv 7L 7L) = Some 7L);
  check_bool "add" true
    (binop Ltype.Int Add (itv 1L 3L) (itv 10L 20L) = itv 11L 23L);
  check_bool "mul takes corner extrema" true
    (binop Ltype.Int Mul (itv (-2L) 3L) (itv 4L 5L) = itv (-10L) 15L);
  check_bool "narrow add that can wrap goes to full" true
    (binop Ltype.Sbyte Add (itv 100L 120L) (itv 100L 120L)
    = full_of_kind Ltype.Sbyte);
  check_bool "div over positive divisors" true
    (binop Ltype.Int Div (itv 10L 20L) (itv 2L 5L) = itv 2L 10L);
  (* division only describes executions that complete, so a zero
     endpoint of the divisor is shaved off: [0,5] behaves as [1,5] *)
  check_bool "div shaves a zero divisor endpoint" true
    (binop Ltype.Int Div (itv 10L 10L) (itv 0L 5L) = itv 2L 10L);
  check_bool "div by a zero-straddling divisor is conservative" true
    (binop Ltype.Int Div (itv 10L 10L) (itv (-3L) 5L)
    = full_of_kind Ltype.Int);
  check_bool "shl is scaling" true
    (binop Ltype.Int Shl (itv 1L 3L) (itv 3L 3L) = itv 8L 24L);
  check_bool "exact mul ignores the kind bound" true
    (exact_binop Mul (itv 30000L 30000L) (itv 30000L 30000L)
    = Some (itv 900000000L 900000000L))

(* A rotated counting loop: the ascending pass must widen the induction
   variable instead of climbing one step per iteration, and the
   narrowing sweeps plus the branch guards must recover the loop
   bounds. *)
let test_range_loop () =
  let m = mk_module "rangeloop" in
  let b = Builder.for_module m in
  let f = Builder.start_function b m "f" Ltype.int_ [] in
  let entry = Builder.insertion_block b in
  let cond = Builder.append_new_block b f "cond" in
  let body = Builder.append_new_block b f "body" in
  let done_ = Builder.append_new_block b f "done" in
  ignore (Builder.build_br b cond);
  Builder.position_at_end b cond;
  let i =
    Builder.build_phi b ~name:"i" Ltype.int_
      [ (Vconst (cint Ltype.Int 0L), entry) ]
  in
  let c = Builder.build_setlt b i (Vconst (cint Ltype.Int 100L)) in
  ignore (Builder.build_condbr b c body done_);
  Builder.position_at_end b body;
  let next = Builder.build_add b ~name:"next" i (Vconst (cint Ltype.Int 1L)) in
  ignore (Builder.build_br b cond);
  (match i with
  | Vinstr ip -> phi_add_incoming ip next body
  | _ -> assert false);
  Builder.position_at_end b done_;
  ignore (Builder.build_ret b (Some i));
  let rng = Range.analyze m in
  check_bool "i within [0,100] at the header" true
    (Range.subset (Range.range_at rng cond i) (itv 0L 100L));
  check_bool "i within [0,99] in the body" true
    (Range.subset (Range.range_at rng body i) (itv 0L 99L));
  check_bool "i = 100 at the exit" true
    (Range.range_at rng done_ i = itv 100L 100L)

(* Argument intervals join over every call site of an internal function;
   call results take the callee's return summary. *)
let test_range_interprocedural () =
  let m = mk_module "ranges_ipo" in
  let b = Builder.for_module m in
  let f =
    Builder.start_function b m ~linkage:Internal "double" Ltype.int_
      [ ("x", Ltype.int_) ]
  in
  let x = Varg (List.hd f.fargs) in
  let r = Builder.build_mul b x (Vconst (cint Ltype.Int 2L)) in
  ignore (Builder.build_ret b (Some r));
  let _main = Builder.start_function b m "main" Ltype.int_ [] in
  let c1 = Builder.build_call b (Vfunc f) [ Vconst (cint Ltype.Int 3L) ] in
  let c2 = Builder.build_call b (Vfunc f) [ Vconst (cint Ltype.Int 7L) ] in
  let s = Builder.build_add b c1 c2 in
  ignore (Builder.build_ret b (Some s));
  let rng = Range.analyze m in
  check_bool "argument joins the call sites" true
    (Range.range_of rng x = itv 3L 7L);
  check_bool "return summary doubles it" true
    (Range.return_range rng f = itv 6L 14L);
  check_bool "call results take the summary" true
    (Range.subset (Range.range_of rng c1) (itv 6L 14L)
    && Range.subset (Range.range_of rng c2) (itv 6L 14L));
  check_bool "downstream arithmetic composes" true
    (Range.subset (Range.range_of rng s) (itv 12L 28L))

(* -- Dataflow fixpoint termination under widening ------------------------------ *)

(* A lattice with an infinite ascending chain (a step counter) whose
   join widens to [Inf] past a bound, and a transfer that bumps the
   counter on every visit: without the widening the solver would climb
   one step per iteration around any cycle.  Termination with the facts
   pinned at [Inf] on every cycle block shows the widened joins reach a
   fixpoint on loop nests and on irreducible (multi-entry) cycles
   alike. *)
module CounterLattice = struct
  type fact = Cnt of int | Inf

  let bottom = Cnt 0
  let equal = ( = )

  let join a b =
    match (a, b) with
    | Inf, _ | _, Inf -> Inf
    | Cnt x, Cnt y ->
      let m = max x y in
      if m > 8 then Inf else Cnt m
end

module CounterFlow = Dataflow.Make (CounterLattice)

let bump = function
  | CounterLattice.Cnt n -> CounterLattice.Cnt (n + 1)
  | CounterLattice.Inf -> CounterLattice.Inf

let test_dataflow_widening_loop_nest () =
  let m = mk_module "loopnest" in
  let b = Builder.for_module m in
  let f = Builder.start_function b m "f" Ltype.void [ ("c", Ltype.bool_) ] in
  let c = Varg (List.hd f.fargs) in
  let outer = Builder.append_new_block b f "outer" in
  let inner = Builder.append_new_block b f "inner" in
  let ibody = Builder.append_new_block b f "ibody" in
  let exit_ = Builder.append_new_block b f "exit" in
  ignore (Builder.build_br b outer);
  Builder.position_at_end b outer;
  ignore (Builder.build_condbr b c inner exit_);
  Builder.position_at_end b inner;
  ignore (Builder.build_condbr b c ibody outer);
  Builder.position_at_end b ibody;
  ignore (Builder.build_br b inner);
  Builder.position_at_end b exit_;
  ignore (Builder.build_ret b None);
  let res =
    CounterFlow.run ~direction:Dataflow.Forward
      ~boundary:(CounterLattice.Cnt 1)
      ~transfer:(fun _ fact -> bump fact)
      f
  in
  check_bool "outer header widened" true
    (CounterFlow.after res outer = CounterLattice.Inf);
  check_bool "inner header widened" true
    (CounterFlow.after res inner = CounterLattice.Inf);
  check_bool "exit widened too" true
    (CounterFlow.after res exit_ = CounterLattice.Inf)

let test_dataflow_widening_irreducible () =
  let m = mk_module "irreducible" in
  let b = Builder.for_module m in
  let f = Builder.start_function b m "f" Ltype.void [ ("c", Ltype.bool_) ] in
  let c = Varg (List.hd f.fargs) in
  (* a two-entry cycle: entry branches into both halves of a loop *)
  let a = Builder.append_new_block b f "a" in
  let bb = Builder.append_new_block b f "b" in
  ignore (Builder.build_condbr b c a bb);
  Builder.position_at_end b a;
  ignore (Builder.build_br b bb);
  Builder.position_at_end b bb;
  ignore (Builder.build_br b a);
  let res =
    CounterFlow.run ~direction:Dataflow.Forward
      ~boundary:(CounterLattice.Cnt 1)
      ~transfer:(fun _ fact -> bump fact)
      f
  in
  check_bool "first cycle block widened" true
    (CounterFlow.after res a = CounterLattice.Inf);
  check_bool "second cycle block widened" true
    (CounterFlow.after res bb = CounterLattice.Inf)

let tests =
  [ Alcotest.test_case "dominator tree and frontiers" `Quick test_dominators;
    Alcotest.test_case "natural loops" `Quick test_loops;
    Alcotest.test_case "call graph and SCCs" `Quick test_callgraph;
    Alcotest.test_case "ssa checker catches violations" `Quick
      test_ssa_check_catches_violation;
    Alcotest.test_case "dsa: disciplined code is typed" `Quick test_dsa_disciplined_code;
    Alcotest.test_case "dsa: void* round trips stay typed" `Quick test_dsa_void_star_ok;
    Alcotest.test_case "dsa: custom allocators degrade" `Quick
      test_dsa_custom_allocator_degrades;
    Alcotest.test_case "dsa: int-to-pointer collapses" `Quick
      test_dsa_int_to_pointer_collapses;
    Alcotest.test_case "mod/ref" `Quick test_modref;
    Alcotest.test_case "range: interval algebra" `Quick test_range_intervals;
    Alcotest.test_case "range: loop widening and narrowing" `Quick
      test_range_loop;
    Alcotest.test_case "range: interprocedural summaries" `Quick
      test_range_interprocedural;
    Alcotest.test_case "dataflow: widening terminates a loop nest" `Quick
      test_dataflow_widening_loop_nest;
    Alcotest.test_case "dataflow: widening terminates an irreducible cycle"
      `Quick test_dataflow_widening_irreducible ]

(* Unit tests for the bytecode compiler itself: branch-target
   resolution, phi-copy lowering, constant pooling, and fuel-accounting
   parity with the interpreter. *)

open Llvm_ir
open Ir
open Llvm_exec
open Llvm_workloads

let rt = Alcotest.testable Interp.pp_rtval ( = )

(* max(a, b) as an if/else diamond merged by a phi *)
let diamond_module () =
  let m = mk_module "diamond" in
  let b = Builder.for_module m in
  let f =
    Builder.start_function b m ~linkage:External "max" Ltype.long
      [ ("a", Ltype.long); ("b", Ltype.long) ]
  in
  let va = Varg (List.nth f.fargs 0) and vb = Varg (List.nth f.fargs 1) in
  let then_bb = Builder.append_new_block b f "t" in
  let else_bb = Builder.append_new_block b f "e" in
  let join = Builder.append_new_block b f "j" in
  let c = Builder.build_setgt b va vb in
  ignore (Builder.build_condbr b c then_bb else_bb);
  Builder.position_at_end b then_bb;
  ignore (Builder.build_br b join);
  Builder.position_at_end b else_bb;
  ignore (Builder.build_br b join);
  Builder.position_at_end b join;
  let phi = Builder.build_phi b Ltype.long [ (va, then_bb); (vb, else_bb) ] in
  ignore (Builder.build_ret b (Some phi));
  (m, f)

(* three phis whose back edge swaps them: a,b = b,a (needs temporaries) *)
let swap_module ~(trips : int64) () =
  let m = mk_module "swap" in
  let b = Builder.for_module m in
  let f = Builder.start_function b m ~linkage:External "spin" Ltype.long [] in
  let entry = Builder.insertion_block b in
  let loop = Builder.append_new_block b f "loop" in
  let exit_ = Builder.append_new_block b f "done" in
  ignore (Builder.build_br b loop);
  Builder.position_at_end b loop;
  let pa = Builder.build_phi b Ltype.long [ (Vconst (cint Ltype.Long 1L), entry) ] in
  let pb = Builder.build_phi b Ltype.long [ (Vconst (cint Ltype.Long 2L), entry) ] in
  let pi = Builder.build_phi b Ltype.long [ (Vconst (cint Ltype.Long 0L), entry) ] in
  let i' = Builder.build_add b pi (Vconst (cint Ltype.Long 1L)) in
  (match (pa, pb, pi) with
  | Vinstr ia, Vinstr ib, Vinstr ii ->
    phi_add_incoming ia pb loop;
    phi_add_incoming ib pa loop;
    phi_add_incoming ii i' loop
  | _ -> assert false);
  let c = Builder.build_setlt b i' (Vconst (cint Ltype.Long trips)) in
  ignore (Builder.build_condbr b c loop exit_);
  Builder.position_at_end b exit_;
  let ten = Builder.build_mul b pa (Vconst (cint Ltype.Long 10L)) in
  let r = Builder.build_add b ten pb in
  ignore (Builder.build_ret b (Some r));
  (m, f)

let targets_of = function
  | Bytecode.Jmp t | Bytecode.Br1 t -> [ t ]
  | Bytecode.Bra (_, t, e) -> [ t; e ]
  | Bytecode.Sw (_, cases, d) -> d :: List.map snd (Array.to_list cases)
  | Bytecode.InvokeI { normal; unwind; _ } -> [ normal; unwind ]
  | _ -> []

let test_branch_targets_resolved () =
  let m, f = diamond_module () in
  let mach = Interp.create m in
  (* compile the instrumented form: block heads carry profile hooks *)
  mach.Interp.profiling <- true;
  let c = Bytecode.compile mach f in
  let len = Array.length c.Bytecode.code in
  Array.iter
    (fun i ->
      List.iter
        (fun t ->
          Alcotest.(check bool)
            (Fmt.str "target %d within [0,%d)" t len)
            true
            (t >= 0 && t < len))
        (targets_of i))
    c.Bytecode.code;
  (* edges without phis land directly on a block head (its profile hook) *)
  Array.iter
    (function
      | Bytecode.Bra (_, t, e) ->
        List.iter
          (fun pc ->
            match c.Bytecode.code.(pc) with
            | Bytecode.Prof _ -> ()
            | i ->
              Alcotest.failf "phi-less branch target is %a, not a block head"
                Bytecode.pp_bc i)
          [ t; e ]
      | _ -> ())
    c.Bytecode.code;
  (* and the compiled function still computes max *)
  List.iter
    (fun (a, b) ->
      let args = [ Interp.Rint (Ltype.Long, a); Interp.Rint (Ltype.Long, b) ] in
      let expect = Interp.Rint (Ltype.Long, if a > b then a else b) in
      match Bytecode.exec mach c args with
      | Interp.Normal v -> Alcotest.check rt "max" expect v
      | Interp.Unwinding -> Alcotest.fail "unexpected unwind")
    [ (3L, 9L); (9L, 3L); (-5L, -2L); (7L, 7L) ]

let test_phi_swap_lowering () =
  let m, f = swap_module ~trips:5L () in
  let mach = Interp.create m in
  let c = Bytecode.compile mach f in
  (* back edge must stage the swap through temporaries: the entry edge
     needs 3 copies, the swapping back edge 6 (3 to temps, 3 out) *)
  let copies =
    Array.fold_left
      (fun n -> function Bytecode.Copy _ -> n + 1 | _ -> n)
      0 c.Bytecode.code
  in
  Alcotest.(check bool)
    (Fmt.str "%d phi copies (>= 9)" copies)
    true (copies >= 9);
  (* both tiers agree with the hand-computed fixpoint: the back edge
     runs 4 times, an even number of swaps, so the loop exits with
     (a, b) = (1, 2) and returns 12 *)
  let expect =
    match Interp.exec_func mach f [] with
    | Interp.Normal v -> v
    | Interp.Unwinding -> Alcotest.fail "interp unwound"
  in
  Alcotest.check rt "interp computes the swap" (Interp.Rint (Ltype.Long, 12L))
    expect;
  match Bytecode.exec mach c [] with
  | Interp.Normal v -> Alcotest.check rt "bytecode agrees" expect v
  | Interp.Unwinding -> Alcotest.fail "bytecode unwound"

let test_constant_pooling () =
  let m = mk_module "pool" in
  let b = Builder.for_module m in
  let f =
    Builder.start_function b m ~linkage:External "f" Ltype.long
      [ ("x", Ltype.long); ("y", Ltype.long) ]
  in
  let vx = Varg (List.nth f.fargs 0) and vy = Varg (List.nth f.fargs 1) in
  let forty_two = Vconst (cint Ltype.Long 42L) in
  let a = Builder.build_add b vx forty_two in
  let c = Builder.build_add b vy forty_two in
  let d = Builder.build_mul b a c in
  let e = Builder.build_xor b d forty_two in
  ignore (Builder.build_ret b (Some e));
  let mach = Interp.create m in
  let compiled = Bytecode.compile mach f in
  let occurrences =
    Array.fold_left
      (fun n v -> if v = Interp.Rint (Ltype.Long, 42L) then n + 1 else n)
      0 compiled.Bytecode.cpool
  in
  Alcotest.(check int) "42 pooled once" 1 occurrences

let test_fuel_parity () =
  (* truncating the fuel at every point must trap at the same place and
     report the same executed-instruction count in both tiers *)
  let name, src = List.hd Ehprog.programs in
  let m = Ehprog.compile name src in
  for fuel = 1 to 150 do
    let ri, _ = Engine.run_main ~fuel Engine.Interp_tier m in
    let rb, _ = Engine.run_main ~fuel Engine.Bytecode_tier m in
    let show (r : Interp.run_result) =
      match r.Interp.status with
      | `Returned v -> Fmt.str "returned %a" Interp.pp_rtval v
      | `Unwound -> "unwound"
      | `Exited c -> Fmt.str "exited %d" c
      | `Trapped msg -> "trapped: " ^ msg
    in
    Alcotest.(check string)
      (Fmt.str "fuel %d status" fuel)
      (show ri) (show rb);
    Alcotest.(check int)
      (Fmt.str "fuel %d instructions" fuel)
      ri.Interp.instructions rb.Interp.instructions
  done

let test_rejects_declarations () =
  let m = mk_module "decls" in
  let f =
    mk_func ~name:"putchar" ~return:Ltype.int_ ~params:[ ("c", Ltype.int_) ] ()
  in
  add_func m f;
  let mach = Interp.create m in
  match Bytecode.compile mach f with
  | exception Memory.Trap _ -> ()
  | _ -> Alcotest.fail "compiling a declaration should trap"

let test_disassembler () =
  let m, f = diamond_module () in
  let mach = Interp.create m in
  mach.Interp.profiling <- true;
  let c = Bytecode.compile mach f in
  let text = Bytecode.disassemble c in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("listing mentions " ^ needle) true
        (Astring_contains.contains text needle))
    [ "max"; "ret"; "prof" ]

(* The unguarded division emitted for range-proven-nonzero divisors must
   agree with the constant folder (which the checked interpreter path
   delegates to) on every kind and edge case. *)
let test_div_fast_matches_fold () =
  let kinds =
    Ltype.[ Sbyte; Ubyte; Short; Ushort; Int; Uint; Long; Ulong ]
  in
  let pairs =
    [ (10L, 3L); (-10L, 3L); (10L, -3L); (-10L, -3L);
      (Int64.min_int, -1L); (Int64.min_int, 1L); (Int64.max_int, 7L);
      (255L, 2L); (-128L, 5L); (65535L, 255L); (1L, 1L); (0L, 9L) ]
  in
  List.iter
    (fun k ->
      List.iter
        (fun (a, b) ->
          List.iter
            (fun rem ->
              let op = if rem then Rem else Div in
              let name =
                Printf.sprintf "%s %s %Ld %Ld" (Ltype.string_of_int_kind k)
                  (if rem then "rem" else "div") a b
              in
              Alcotest.(check (option int64))
                name
                (Fold.int_binop k op a b)
                (Some (Bytecode.div_fast k ~rem a b)))
            [ false; true ])
        pairs)
    kinds

let tests =
  [ Alcotest.test_case "branch targets resolve to code offsets" `Quick
      test_branch_targets_resolved;
    Alcotest.test_case "phi swaps stage through temporaries" `Quick
      test_phi_swap_lowering;
    Alcotest.test_case "constants are pooled" `Quick test_constant_pooling;
    Alcotest.test_case "fuel accounting matches the interpreter" `Quick
      test_fuel_parity;
    Alcotest.test_case "declarations are rejected" `Quick
      test_rejects_declarations;
    Alcotest.test_case "disassembler prints a listing" `Quick
      test_disassembler;
    Alcotest.test_case "fast division matches the constant folder" `Quick
      test_div_fast_matches_fold ]

(* Property tests for the persistent profile layer (lib/profile):
   the saturating weighted merge must be commutative and associative
   (a fleet aggregate cannot depend on the order run profiles arrive
   in), the empty profile must be a merge identity, and the binary
   .llpf format must round-trip exactly.  Random profiles come from
   the deterministic workload RNG, so every failure is reproducible
   from the seed. *)

module Profile = Llvm_profile.Profile
module Rng = Llvm_workloads.Rng

(* A random profile: a handful of block and call-site entries drawn
   from small name pools (so two generated profiles overlap on some
   keys — merges that never collide would test nothing), with weights
   spanning tiny counts to near the saturation cap. *)
let random_profile (rng : Rng.t) : Profile.t =
  let p = Profile.empty () in
  let funcs = [ "main"; "worker"; "dispatch"; "leaf" ] in
  let blocks = [ "entry"; "loop"; "body"; "exit" ] in
  let weight rng =
    match Rng.int rng 4 with
    | 0 -> 1 + Rng.int rng 10
    | 1 -> 1 + Rng.int rng 100_000
    | 2 -> Profile.cap - Rng.int rng 3 (* near saturation *)
    | _ -> Profile.cap
  in
  let add_block () =
    let key =
      Profile.block_key ~func:(Rng.pick rng funcs) ~block:(Rng.pick rng blocks)
    in
    Hashtbl.replace p.Profile.blocks key
      (Profile.sat_add (weight rng)
         (Option.value ~default:0 (Hashtbl.find_opt p.Profile.blocks key)))
  in
  let add_call () =
    let key =
      Profile.site_key ~func:(Rng.pick rng funcs) ~block:(Rng.pick rng blocks)
        ~index:(Rng.int rng 3)
    in
    let targets =
      match Hashtbl.find_opt p.Profile.calls key with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 4 in
        Hashtbl.replace p.Profile.calls key t;
        t
    in
    let callee = Rng.pick rng funcs in
    Hashtbl.replace targets callee
      (Profile.sat_add (weight rng)
         (Option.value ~default:0 (Hashtbl.find_opt targets callee)))
  in
  p.Profile.runs <- Rng.int rng 5;
  for _ = 1 to 1 + Rng.int rng 8 do
    add_block ()
  done;
  for _ = 1 to Rng.int rng 6 do
    add_call ()
  done;
  p

let copy_into (dst : Profile.t) (src : Profile.t) = Profile.merge dst src

let check_equal what (a : Profile.t) (b : Profile.t) =
  if not (Profile.equal a b) then
    Alcotest.failf "%s:@.  left:  %a@.  right: %a" what Profile.pp a Profile.pp
      b

(* merge is commutative: A + B = B + A, including at saturation *)
let test_merge_commutative () =
  for seed = 1 to 200 do
    let rng = Rng.create seed in
    let a = random_profile rng and b = random_profile rng in
    let ab = Profile.empty () and ba = Profile.empty () in
    copy_into ab a;
    copy_into ab b;
    copy_into ba b;
    copy_into ba a;
    check_equal (Printf.sprintf "seed %d: A+B = B+A" seed) ab ba
  done

(* merge is associative: folding (A+B)+C and A+(B+C) agree *)
let test_merge_associative () =
  for seed = 1 to 200 do
    let rng = Rng.create (1000 + seed) in
    let a = random_profile rng
    and b = random_profile rng
    and c = random_profile rng in
    let left = Profile.empty () in
    copy_into left a;
    copy_into left b;
    copy_into left c;
    let bc = Profile.empty () in
    copy_into bc b;
    copy_into bc c;
    let right = Profile.empty () in
    copy_into right a;
    copy_into right bc;
    check_equal (Printf.sprintf "seed %d: (A+B)+C = A+(B+C)" seed) left right
  done

(* the empty profile is an identity on both sides *)
let test_merge_empty_identity () =
  for seed = 1 to 100 do
    let rng = Rng.create (2000 + seed) in
    let a = random_profile rng in
    let le = Profile.empty () in
    copy_into le a;
    check_equal (Printf.sprintf "seed %d: 0+A = A" seed) le a;
    copy_into a (Profile.empty ());
    check_equal (Printf.sprintf "seed %d: A+0 = A" seed) le a
  done

(* weighted merge = repeated merge: ~weight:w folds w occurrences *)
let test_weighted_merge () =
  for seed = 1 to 100 do
    let rng = Rng.create (3000 + seed) in
    let a = random_profile rng in
    let w = 2 + Rng.int rng 5 in
    let once = Profile.empty () in
    Profile.merge ~weight:w once a;
    let many = Profile.empty () in
    for _ = 1 to w do
      copy_into many a
    done;
    check_equal (Printf.sprintf "seed %d: ~weight:%d = %d merges" seed w w)
      once many
  done

(* every weight saturates at the cap instead of wrapping *)
let test_saturation () =
  for seed = 1 to 100 do
    let rng = Rng.create (4000 + seed) in
    let acc = Profile.empty () in
    for _ = 1 to 3 do
      Profile.merge ~weight:(1 + Rng.int rng 1_000_000) acc (random_profile rng)
    done;
    Hashtbl.iter
      (fun k v ->
        if v < 0 || v > Profile.cap then
          Alcotest.failf "seed %d: block %S weight %d out of [0, cap]" seed k v)
      acc.Profile.blocks;
    Hashtbl.iter
      (fun site t ->
        Hashtbl.iter
          (fun callee v ->
            if v < 0 || v > Profile.cap then
              Alcotest.failf "seed %d: %S -> %S count %d out of [0, cap]" seed
                site callee v)
          t)
      acc.Profile.calls
  done

(* the binary format round-trips exactly, and serialization is
   canonical: equal profiles produce identical bytes regardless of
   hash-table insertion order *)
let test_binary_round_trip () =
  for seed = 1 to 200 do
    let rng = Rng.create (5000 + seed) in
    let a = random_profile rng in
    let b = Profile.of_bytes (Profile.to_bytes a) in
    check_equal (Printf.sprintf "seed %d: of_bytes . to_bytes" seed) a b;
    (* rebuild the same contents in a different insertion order *)
    let c = Profile.empty () in
    copy_into c b;
    Alcotest.(check string)
      (Printf.sprintf "seed %d: canonical bytes" seed)
      (Profile.to_bytes a) (Profile.to_bytes c)
  done;
  (* corrupt inputs raise Corrupt, never return garbage *)
  let p = random_profile (Rng.create 42) in
  let bytes = Profile.to_bytes p in
  List.iter
    (fun mangled ->
      match Profile.of_bytes mangled with
      | exception Profile.Corrupt _ -> ()
      | _ -> Alcotest.fail "corrupt profile accepted")
    [ ""; "LLPX" ^ String.sub bytes 4 (String.length bytes - 4);
      String.sub bytes 0 (String.length bytes - 1); bytes ^ "\x00" ]

let test_save_load_file () =
  let file = Filename.temp_file "llpf_test" ".llpf" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let p = random_profile (Rng.create 7) in
      Profile.save file p;
      check_equal "save/load" p (Profile.load file))

let tests =
  [ Alcotest.test_case "merge is commutative" `Quick test_merge_commutative;
    Alcotest.test_case "merge is associative" `Quick test_merge_associative;
    Alcotest.test_case "empty profile is a merge identity" `Quick
      test_merge_empty_identity;
    Alcotest.test_case "weighted merge equals repeated merge" `Quick
      test_weighted_merge;
    Alcotest.test_case "weights saturate at the cap" `Quick test_saturation;
    Alcotest.test_case "binary format round-trips canonically" `Quick
      test_binary_round_trip;
    Alcotest.test_case "save/load round-trips through disk" `Quick
      test_save_load_file ]

(* Workload generator and compressor tests.

   Every synthetic benchmark must compile to valid IR, run cleanly, and
   behave identically before and after the full optimizer — this is the
   master end-to-end property of the whole system. *)

open Llvm_ir
open Llvm_workloads

let run_checksum (m : Ir.modul) : string =
  let r = Llvm_exec.Interp.run_main ~fuel:100_000_000 m in
  match r.Llvm_exec.Interp.status with
  | `Returned _ -> r.Llvm_exec.Interp.output
  | `Trapped msg -> Alcotest.failf "%s trapped: %s" m.Ir.mname msg
  | `Unwound -> Alcotest.failf "%s unwound" m.Ir.mname
  | `Exited c -> Alcotest.failf "%s exited %d" m.Ir.mname c

let test_quick_profiles_compile_and_run () =
  List.iter
    (fun p ->
      let p = Spec.quick p in
      let m = Genprog.compile p in
      (match Verify.verify_module m with
      | [] -> ()
      | errs ->
        Alcotest.failf "%s: invalid IR: %s" p.Genprog.p_name
          (Fmt.str "%a" Fmt.(list Verify.pp_error) errs));
      let plain = run_checksum m in
      Alcotest.(check bool)
        (p.Genprog.p_name ^ " prints a checksum")
        true
        (Astring_contains.contains plain "checksum=");
      (* optimized behaviour identical *)
      let m2 = Genprog.compile p in
      Llvm_transforms.Pipelines.optimize_module ~level:3 m2;
      (match Verify.verify_module m2 with
      | [] -> ()
      | errs ->
        Alcotest.failf "%s: optimizer broke IR: %s" p.Genprog.p_name
          (Fmt.str "%a" Fmt.(list Verify.pp_error) errs));
      Alcotest.(check string)
        (p.Genprog.p_name ^ " optimization preserves behaviour")
        plain (run_checksum m2))
    (Spec.spec2000 @ Spec.disciplined)

let test_generation_deterministic () =
  let p = Spec.quick (List.hd Spec.spec2000) in
  Alcotest.(check string) "same source twice" (Genprog.generate p)
    (Genprog.generate p)

let test_styles_differ () =
  (* the parser profile must actually contain a custom allocator, gcc
     must contain reinterpreting casts *)
  let src_of name =
    match Spec.find name with
    | Some p -> Genprog.generate (Spec.quick p)
    | None -> Alcotest.fail ("unknown profile " ^ name)
  in
  Alcotest.(check bool) "parser uses a pool allocator" true
    (Astring_contains.contains (src_of "197.parser") "pool_alloc");
  Alcotest.(check bool) "gzip does not" false
    (Astring_contains.contains (src_of "164.gzip") "pool_alloc");
  Alcotest.(check bool) "olden has no casts through void*" false
    (Astring_contains.contains (src_of "olden.treeadd") "(void*)")

let test_expected_percent_average () =
  (* the recorded paper numbers average to Table 1's 68.04% *)
  let ps = Spec.spec2000 in
  let avg =
    List.fold_left (fun a p -> a +. p.Genprog.expected_typed_pct) 0.0 ps
    /. float_of_int (List.length ps)
  in
  Alcotest.(check bool) (Printf.sprintf "average %.2f ~ 68.04" avg) true
    (Float.abs (avg -. 68.04) < 0.5)

(* -- compressor ----------------------------------------------------------------- *)

let test_compress_roundtrip_qcheck () =
  let gen = QCheck.string_gen_of_size (QCheck.Gen.int_range 0 2000) QCheck.Gen.char in
  let prop s = Compress.decompress (Compress.compress s) = s in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"lz77 round-trip" gen prop)

let test_compress_shrinks_redundant () =
  let s = String.concat "" (List.init 200 (fun k -> Printf.sprintf "block%d--" (k mod 7))) in
  let r = Compress.ratio s in
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f < 0.5" r) true (r < 0.5)

let test_compress_bitcode () =
  (* the section 4.1.3 claim: compression finds real redundancy; needs a
     realistically sized image, so use a full-size mid-sized profile *)
  let p = Option.get (Spec.find "197.parser") in
  let m = Genprog.compile p in
  let image, _ = Llvm_bitcode.Encoder.encode ~strip:true m in
  let r = Compress.ratio image in
  Alcotest.(check bool) (Printf.sprintf "bitcode compresses (%.2f)" r) true
    (r < 0.9)

(* Rng split / state save-restore: the fuzzer replays any mutation
   chain from a (seed, path) pair, which only works if splitting is a
   pure function of parent state and save/restore is exact. *)
let test_rng_split_and_state () =
  let open Llvm_workloads in
  let drain r n = List.init n (fun _ -> Rng.int r 1_000_000) in
  (* same seed, same split sequence -> identical child streams *)
  let child_stream seed =
    let parent = Rng.create seed in
    let c1 = Rng.split parent in
    let c2 = Rng.split parent in
    (drain c1 8, drain c2 8)
  in
  Alcotest.(check (pair (list int) (list int)))
    "split streams are reproducible" (child_stream 42) (child_stream 42);
  let s1, s2 = child_stream 42 in
  Alcotest.(check bool) "sibling children differ" false (s1 = s2);
  (* save/restore replays the exact tail *)
  let r = Rng.create 7 in
  ignore (drain r 5);
  let saved = Rng.state r in
  let tail1 = drain r 10 in
  Rng.set_state r saved;
  let tail2 = drain r 10 in
  Alcotest.(check (list int)) "state restore replays the stream" tail1 tail2;
  (* copy is an independent clone *)
  let a = Rng.create 9 in
  let b = Rng.copy a in
  let xs = drain a 6 in
  let ys = drain b 6 in
  Alcotest.(check (list int)) "copy starts from the same state" xs ys;
  (* draining the parent then splitting gives a different child than
     splitting immediately: split consumes parent state *)
  let p1 = Rng.create 11 in
  let p2 = Rng.create 11 in
  ignore (Rng.int p2 2);
  Alcotest.(check bool) "split depends on parent position" false
    (drain (Rng.split p1) 4 = drain (Rng.split p2) 4)

let test_mutation_chain_reproducible () =
  (* end to end: the (seed, path) contract the fuzzer relies on *)
  let mutant seed path =
    let m = Llvm_fuzz.Irgen.gen_module seed in
    ignore (Llvm_fuzz.Mutate.apply_chain ~seed ~path ~count:4 m);
    Llvm_ir.Printer.module_to_string m
  in
  Alcotest.(check string) "same (seed, path) -> same mutant" (mutant 3 1)
    (mutant 3 1);
  Alcotest.(check bool) "different path -> different stream" false
    (mutant 3 1 = mutant 3 2)

let tests =
  [ Alcotest.test_case "all profiles compile, run, optimize" `Slow
      test_quick_profiles_compile_and_run;
    Alcotest.test_case "rng split and state save/restore" `Quick
      test_rng_split_and_state;
    Alcotest.test_case "mutation chains replay from (seed, path)" `Quick
      test_mutation_chain_reproducible;
    Alcotest.test_case "generation is deterministic" `Quick
      test_generation_deterministic;
    Alcotest.test_case "per-benchmark styles differ" `Quick test_styles_differ;
    Alcotest.test_case "expected values match the paper's average" `Quick
      test_expected_percent_average;
    Alcotest.test_case "compressor round-trips (qcheck)" `Quick
      test_compress_roundtrip_qcheck;
    Alcotest.test_case "compressor shrinks redundancy" `Quick
      test_compress_shrinks_redundant;
    Alcotest.test_case "bitcode is compressible" `Quick test_compress_bitcode ]

(* Tests for the plain-text representation: printing and parsing.

   The key property (paper section 2.5) is that the textual form is a
   first-class, lossless representation: print -> parse -> print is a
   fixpoint. *)

open Llvm_ir

let roundtrip_fixpoint (m : Ir.modul) =
  let s1 = Printer.module_to_string m in
  let m2 =
    try Llvm_asm.Parser.parse_module ~name:m.Ir.mname s1
    with Llvm_asm.Parser.Parse_error (msg, line) ->
      Alcotest.failf "parse error at line %d: %s\n--- input ---\n%s" line msg s1
  in
  (match Verify.verify_module m2 with
  | [] -> ()
  | errs ->
    Alcotest.failf "reparsed module invalid: %s"
      (Fmt.str "%a" Fmt.(list Verify.pp_error) errs));
  let s2 = Printer.module_to_string m2 in
  Alcotest.(check string) ("fixpoint for " ^ m.Ir.mname) s1 s2

let test_roundtrip_samples () = List.iter roundtrip_fixpoint (Samples.all ())

let parse_ok src =
  try Llvm_asm.Parser.parse_module src
  with Llvm_asm.Parser.Parse_error (msg, line) ->
    Alcotest.failf "parse error at line %d: %s" line msg

let test_parse_simple () =
  let m =
    parse_ok
      {|
%counter = internal global int 0

int %double(int %x) {
entry:
  %r = mul int %x, 2
  ret int %r
}
|}
  in
  Alcotest.(check int) "one function" 1 (List.length m.Ir.mfuncs);
  Alcotest.(check int) "one global" 1 (List.length m.Ir.mglobals);
  Alcotest.(check (list string)) "verifies" []
    (List.map (fun e -> Fmt.str "%a" Verify.pp_error e) (Verify.verify_module m))

let test_parse_forward_refs () =
  (* %x is used in the phi before it is defined; label %loop likewise. *)
  let m =
    parse_ok
      {|
int %count(int %n) {
entry:
  br label %loop
loop:
  %i = phi int [ 0, %entry ], [ %next, %loop ]
  %next = add int %i, 1
  %c = setlt int %next, %n
  br bool %c, label %loop, label %done
done:
  ret int %next
}
|}
  in
  Alcotest.(check (list string)) "verifies" []
    (List.map (fun e -> Fmt.str "%a" Verify.pp_error e) (Verify.verify_module m))

let test_parse_call_between_functions () =
  let m =
    parse_ok
      {|
int %a(int %x) {
entry:
  %r = call int %b(int %x)
  ret int %r
}

int %b(int %x) {
entry:
  ret int %x
}
|}
  in
  let a = Option.get (Ir.find_func m "a") in
  let callee =
    let i = List.nth (Ir.entry_block a).Ir.instrs 0 in
    Ir.call_callee i
  in
  (match callee with
  | Ir.Vfunc f -> Alcotest.(check string) "callee resolved" "b" f.Ir.fname
  | _ -> Alcotest.fail "callee not a function")

let test_parse_vtable_global () =
  (* Function pointers in a constant table, with a forward function ref. *)
  let m =
    parse_ok
      {|
%vtbl = internal constant [2 x void (sbyte*)*] [ void (sbyte*)* %f, void (sbyte*)* %g ]

internal void %f(sbyte* %this) {
entry:
  ret void
}
internal void %g(sbyte* %this) {
entry:
  ret void
}
|}
  in
  let v = Option.get (Ir.find_gvar m "vtbl") in
  match v.Ir.ginit with
  | Some (Ir.Carray (_, [ Ir.Cfunc f; Ir.Cfunc g ])) ->
    Alcotest.(check string) "first" "f" f.Ir.fname;
    Alcotest.(check string) "second" "g" g.Ir.fname
  | _ -> Alcotest.fail "vtable initializer malformed"

let test_parse_exception_syntax () =
  (* The syntax of the paper's Figure 2. *)
  let m =
    parse_ok
      {|
declare void %func()
declare void %destroy(sbyte*)

void %demo(sbyte* %obj) {
entry:
  invoke void %func() to label %ok unwind to label %ex
ok:
  ret void
ex:
  call void %destroy(sbyte* %obj)
  unwind
}
|}
  in
  Alcotest.(check (list string)) "verifies" []
    (List.map (fun e -> Fmt.str "%a" Verify.pp_error e) (Verify.verify_module m))

let test_parse_errors () =
  let fails src =
    match Llvm_asm.Parser.parse_module src with
    | exception Llvm_asm.Parser.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected a parse error"
  in
  fails "int %f( {";
  fails "%g = global int";
  fails {|
int %f(int %x) {
entry:
  %r = add int %x, %missing
  ret int %r
}
|};
  fails {|
int %f(int %x) {
entry:
  br label %nowhere
}
|}

let test_float_literals () =
  let m =
    parse_ok
      {|
double %f() {
entry:
  %a = add double 1.5, 0x1.921fb54442d18p+1
  ret double %a
}
|}
  in
  roundtrip_fixpoint m

(* Property: random printable modules round-trip.  We reuse the sample
   generators with random constants folded in via the Builder. *)
let arbitrary_const_module seed =
  Random.init seed;
  let open Ir in
  let m = mk_module (Printf.sprintf "rand%d" seed) in
  let b = Builder.for_module m in
  let _f = Builder.start_function b m "f" Ltype.long [ ("x", Ltype.long) ] in
  let x = Varg (List.hd _f.fargs) in
  let rec build v depth =
    if depth = 0 then v
    else
      let c = Vconst (cint Ltype.Long (Random.int64 Int64.max_int)) in
      let op =
        match Random.int 6 with
        | 0 -> Builder.build_add
        | 1 -> Builder.build_sub
        | 2 -> Builder.build_mul
        | 3 -> Builder.build_and
        | 4 -> Builder.build_or
        | _ -> Builder.build_xor
      in
      build (op b v c) (depth - 1)
  in
  let v = build x (1 + Random.int 20) in
  ignore (Builder.build_ret b (Some v));
  m

let test_random_roundtrips () =
  for seed = 1 to 50 do
    roundtrip_fixpoint (arbitrary_const_module seed)
  done

(* The fuzzer generator exercises the full grammar — invoke/unwind
   pairs, switch tables, indirect calls through function-pointer
   globals, and aggregate-typed global initializers — so a fixpoint
   over it is the strongest print/parse property we have. *)
let prop_generated_roundtrip seed =
  let m = Llvm_fuzz.Irgen.gen_module seed in
  roundtrip_fixpoint m;
  true

let test_generated_cover_eh_and_aggregates () =
  (* the property above is only meaningful if the generator really
     emits the hard constructs; lock that in *)
  let has_invoke = ref false and has_agg_global = ref false in
  for seed = 1 to 40 do
    let m = Llvm_fuzz.Irgen.gen_module seed in
    List.iter
      (fun f ->
        Ir.iter_instrs (fun i -> if i.Ir.iop = Ir.Invoke then has_invoke := true) f)
      m.Ir.mfuncs;
    List.iter
      (fun g ->
        match g.Ir.ginit with
        | Some (Ir.Carray _ | Ir.Cstruct _) -> has_agg_global := true
        | _ -> ())
      m.Ir.mglobals
  done;
  Alcotest.(check bool) "generator emits invoke/unwind" true !has_invoke;
  Alcotest.(check bool) "generator emits aggregate globals" true !has_agg_global

let qtest_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50 ~name:"generated modules print/parse fixpoint"
       (QCheck.make ~print:string_of_int (QCheck.Gen.int_range 1 1_000_000))
       prop_generated_roundtrip)

let tests =
  [ Alcotest.test_case "print/parse fixpoint on samples" `Quick test_roundtrip_samples;
    Alcotest.test_case "parse a simple module" `Quick test_parse_simple;
    Alcotest.test_case "forward references" `Quick test_parse_forward_refs;
    Alcotest.test_case "cross-function calls" `Quick test_parse_call_between_functions;
    Alcotest.test_case "vtable constant globals" `Quick test_parse_vtable_global;
    Alcotest.test_case "invoke/unwind syntax" `Quick test_parse_exception_syntax;
    Alcotest.test_case "parse errors are reported" `Quick test_parse_errors;
    Alcotest.test_case "float literals" `Quick test_float_literals;
    Alcotest.test_case "random module round-trips" `Quick test_random_roundtrips;
    Alcotest.test_case "generator covers invoke and aggregate globals" `Quick
      test_generated_cover_eh_and_aggregates;
    qtest_roundtrip ]

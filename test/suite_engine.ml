(* Differential tests for the tiered execution engine.

   The bytecode tier is only trustworthy if it is bit-for-bit
   indistinguishable from the interpreter: same status, same output,
   same dynamic instruction count (fuel), same block profile.  Every
   workload program — the genprog benchmarks, the exception-heavy
   programs, and randomly generated IR — runs under all three engine
   kinds and must agree on everything observable. *)

open Llvm_ir
open Llvm_exec
open Llvm_workloads

let fuel = 100_000_000

(* Everything observable about a run, in comparable form. *)
type snap = {
  status : string;
  output : string;
  instructions : int;
  profile : (int * int) list;
}

let snapshot (r : Interp.run_result) (p : Interp.profile) : snap =
  let status =
    match r.Interp.status with
    | `Returned v -> Fmt.str "returned %a" Interp.pp_rtval v
    | `Unwound -> "unwound"
    | `Exited c -> Fmt.str "exited %d" c
    | `Trapped msg -> "trapped: " ^ msg
  in
  { status;
    output = r.Interp.output;
    instructions = r.Interp.instructions;
    profile =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) p.Interp.counts []) }

let run_kind ?(fuel = fuel) (kind : Engine.kind) (m : Ir.modul) : snap =
  let r, p = Engine.run_main ~fuel ~profiling:true kind m in
  snapshot r p

let check_tiers_agree name (m : Ir.modul) =
  let reference = run_kind Engine.Interp_tier m in
  List.iter
    (fun kind ->
      let got = run_kind kind m in
      let label what = Fmt.str "%s: %s %s" name (Engine.kind_name kind) what in
      Alcotest.(check string) (label "status") reference.status got.status;
      Alcotest.(check string) (label "output") reference.output got.output;
      Alcotest.(check int)
        (label "instruction count")
        reference.instructions got.instructions;
      Alcotest.(check (list (pair int int)))
        (label "block profile")
        reference.profile got.profile)
    [ Engine.Bytecode_tier; Engine.Tiered ];
  reference

let test_genprog_differential () =
  List.iter
    (fun p ->
      let p = Spec.quick p in
      let snap = check_tiers_agree p.Genprog.p_name (Genprog.compile p) in
      Alcotest.(check bool)
        (p.Genprog.p_name ^ " produced a checksum")
        true
        (Astring_contains.contains snap.output "checksum="))
    (Spec.spec2000 @ Spec.disciplined)

let test_ehprog_differential () =
  List.iter
    (fun (name, src) -> ignore (check_tiers_agree name (Ehprog.compile name src)))
    Ehprog.programs

let test_ehprog_actually_throws () =
  (* the exception workloads must exercise unwinding, not just compile *)
  let name, src = List.hd Ehprog.programs in
  let m = Ehprog.compile name src in
  let has_invoke =
    List.exists
      (fun f ->
        List.exists
          (fun b -> List.exists (fun i -> i.Ir.iop = Ir.Invoke) b.Ir.instrs)
          f.Ir.fblocks)
      m.Ir.mfuncs
  in
  Alcotest.(check bool) (name ^ " contains invoke") true has_invoke;
  let unwinder =
    List.find (fun (n, _) -> n = "eh.unwind_off_main") Ehprog.programs
  in
  let m = Ehprog.compile (fst unwinder) (snd unwinder) in
  let snap = run_kind Engine.Bytecode_tier m in
  Alcotest.(check string) "uncaught exception unwinds" "unwound" snap.status

let test_random_ir_differential () =
  for seed = 1 to 25 do
    let m = Llvm_fuzz.Irgen.gen_module seed in
    (match Verify.verify_module m with
    | [] -> ()
    | _ -> Alcotest.failf "seed %d generated invalid IR" seed);
    ignore (check_tiers_agree (Fmt.str "rand%d" seed) m)
  done

let test_optimized_ir_differential () =
  (* optimized IR has the phi/cfg shapes the front-end never emits *)
  for seed = 1 to 10 do
    let m = Llvm_fuzz.Irgen.gen_module seed in
    Llvm_transforms.Pipelines.optimize_module ~level:3 m;
    ignore (check_tiers_agree (Fmt.str "rand%d -O3" seed) m)
  done

let test_tiered_promotes_hot_functions () =
  let name, src = List.hd Ehprog.programs in
  (* risky() is called 600 times from main's loop *)
  let m = Ehprog.compile name src in
  let e = Engine.create ~hot_threshold:8 Engine.Tiered m in
  let main = Option.get (Ir.find_func m "main") in
  let r = Interp.run_function ~fuel e.Engine.mach main [] in
  (match r.Interp.status with
  | `Returned _ -> ()
  | _ -> Alcotest.fail "tiered run failed");
  let promoted = List.map fst (Engine.promotions e) in
  Alcotest.(check bool) "risky promoted to bytecode" true
    (List.mem "risky" promoted);
  Alcotest.(check bool) "main not promoted (one entry)" false
    (List.mem "main" promoted);
  (* every promotion happened at the threshold exactly *)
  List.iter
    (fun (f, n) ->
      Alcotest.(check int) (f ^ " promoted at threshold") 8 n)
    (Engine.promotions e)

let test_interp_tier_never_compiles () =
  let p = Spec.quick (List.hd Spec.spec2000) in
  let m = Genprog.compile p in
  let e = Engine.create Engine.Interp_tier m in
  let main = Option.get (Ir.find_func m "main") in
  ignore (Interp.run_function ~fuel e.Engine.mach main []);
  Alcotest.(check int) "no bytecode compiled" 0 (Engine.compiled_count e)

(* Range-proven fast ops: the bytecode tier compiles in-bounds stack
   accesses and nonzero divisions to unguarded instructions, and the
   result must stay bit-for-bit identical to the checked tiers. *)
let test_fast_ops_compiled_and_agree () =
  let src =
    {| int main() {
         int a[10];
         int sum = 0;
         for (int i = 0; i < 10; i++) a[i] = i * i;
         for (int i = 0; i < 10; i++) sum = sum + a[i] / (i + 1);
         return sum;
       } |}
  in
  let m = Llvm_minic.Codegen.compile_string src in
  (* ranges need SSA form to see the induction variable *)
  ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Mem2reg.pass m);
  ignore (check_tiers_agree "fastops" m);
  let e = Engine.create Engine.Bytecode_tier m in
  ignore (Engine.compile_all e);
  Alcotest.(check bool) "some guarded ops compiled to fast variants" true
    (Engine.fast_ops e > 0)

let test_div_trap_in_all_tiers () =
  let src = {| int main() { int z = 0; return 10 / z; } |} in
  let m = Llvm_minic.Codegen.compile_string src in
  ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Mem2reg.pass m);
  let reference = check_tiers_agree "divtrap" m in
  Alcotest.(check bool) "division by zero still traps" true
    (Astring_contains.contains reference.status "division by zero")

(* -- Speculative promotion and deoptimization ------------------------------

   A fleet profile promotes a biased indirect call into a guarded
   direct call (Pgo.promote); runs whose live target differs from the
   prediction must take the deopt arm, fall back to the interpreter
   tier, and still produce bit-identical observable behavior. *)

(* One instrumented interpreter run of a fresh copy of [src], keyed by
   name so it survives recompilation. *)
let train_profile (src : string) : Llvm_profile.Profile.t =
  let m = Llvm_minic.Codegen.compile_string src in
  let e = Engine.create ~profiling:true Engine.Interp_tier m in
  let main = Option.get (Ir.find_func m "main") in
  (match (Interp.run_function ~fuel e.Engine.mach main []).Interp.status with
  | `Returned _ | `Exited _ -> ()
  | _ -> Alcotest.fail "training run did not complete");
  Llvm_profile.Profile.of_run m
    ~block_counts:e.Engine.mach.Interp.block_counts
    ~call_counts:e.Engine.mach.Interp.call_counts

(* Promote under the trained profile and check: the module stays valid,
   the tiers still agree with each other, and behavior is identical to
   the unspeculated module.  Returns (deopts, falls) from a bytecode
   run of the speculated module. *)
let check_speculation name (src : string) : int * int =
  let baseline = run_kind Engine.Interp_tier (Llvm_minic.Codegen.compile_string src) in
  let profile = train_profile src in
  let m = Llvm_minic.Codegen.compile_string src in
  let promoted = Llvm_transforms.Pgo.promote profile m in
  Alcotest.(check bool) (name ^ ": a site was promoted") true (promoted > 0);
  (match Verify.verify_module m with
  | [] -> ()
  | e :: _ ->
    Alcotest.failf "%s: speculated module invalid: %s: %s" name
      e.Verify.where e.Verify.what);
  let got = check_tiers_agree (name ^ " speculated") m in
  Alcotest.(check string) (name ^ ": status preserved") baseline.status
    got.status;
  Alcotest.(check string) (name ^ ": output preserved") baseline.output
    got.output;
  let e = Engine.create Engine.Bytecode_tier m in
  let main = Option.get (Ir.find_func m "main") in
  ignore (Interp.run_function ~fuel e.Engine.mach main []);
  (Engine.deopts e, Engine.deopt_falls e)

let test_speculation_deopt_midrun () =
  (* 90 calls through [one], then the pointer flips to [big]: the guard
     must fail exactly 10 times and each failure must re-route the call
     to the interpreter tier *)
  let src =
    {| int one(int x) { return x + 1; }
       int big(int x) { return x * 7 - 2; }
       int main() {
         int (*)(int) f = one;
         int acc = 0;
         for (int i = 0; i < 100; i++) {
           if (i == 90) f = big;
           acc = acc + f(acc % 13 + i);
         }
         return acc & 127;
       } |}
  in
  let deopts, falls = check_speculation "midrun" src in
  Alcotest.(check int) "guard failed once per post-flip call" 10 deopts;
  Alcotest.(check int) "every deopt fell back to the interpreter" 10 falls

let test_speculation_deopt_monomorphic () =
  (* the profile's prediction always holds: no deopts at all *)
  let src =
    {| int only(int x) { return x * 3 + 1; }
       int main() {
         int (*)(int) f = only;
         int acc = 0;
         for (int i = 0; i < 50; i++) acc = acc + f(i);
         return acc & 127;
       } |}
  in
  let deopts, falls = check_speculation "mono" src in
  Alcotest.(check int) "no guard failures" 0 deopts;
  Alcotest.(check int) "no interpreter fallbacks" 0 falls

let test_speculation_deopt_invoke () =
  (* the indirect site sits inside a try block (an invoke), and the
     mispredicted target throws: the deopt arm's invoke must unwind
     into the original landing pad *)
  let src =
    {| extern void print_int(int x);
       int calm(int x) { return x + 2; }
       int boom(int x) { if (x % 3 == 0) throw x + 1; return x - 1; }
       int main() {
         int (*)(int) f = calm;
         int acc = 0;
         for (int i = 0; i < 120; i++) {
           if (i > 99) f = boom;
           try { acc = acc + f(i); } catch (int e) { acc = acc - e; }
         }
         print_int(acc);
         return acc & 63;
       } |}
  in
  let deopts, falls = check_speculation "invoke" src in
  Alcotest.(check int) "guard failed once per boom call" 20 deopts;
  Alcotest.(check int) "every deopt fell back to the interpreter" 20 falls

let tests =
  [ Alcotest.test_case "genprog workloads agree across tiers" `Slow
      test_genprog_differential;
    Alcotest.test_case "exception workloads agree across tiers" `Quick
      test_ehprog_differential;
    Alcotest.test_case "exception workloads exercise unwinding" `Quick
      test_ehprog_actually_throws;
    Alcotest.test_case "random IR agrees across tiers" `Quick
      test_random_ir_differential;
    Alcotest.test_case "optimized random IR agrees across tiers" `Quick
      test_optimized_ir_differential;
    Alcotest.test_case "tiered engine promotes hot functions" `Quick
      test_tiered_promotes_hot_functions;
    Alcotest.test_case "interp tier never compiles" `Quick
      test_interp_tier_never_compiles;
    Alcotest.test_case "range-proven fast ops compile and agree" `Quick
      test_fast_ops_compiled_and_agree;
    Alcotest.test_case "division by zero traps in every tier" `Quick
      test_div_trap_in_all_tiers;
    Alcotest.test_case "speculation deopts when the target flips mid-run"
      `Quick test_speculation_deopt_midrun;
    Alcotest.test_case "speculation never deopts on a monomorphic site"
      `Quick test_speculation_deopt_monomorphic;
    Alcotest.test_case "speculation deopts inside an invoke landing pad"
      `Quick test_speculation_deopt_invoke ]

(* Tests for the dataflow engine and the llvm-lint checker suite: one
   deliberately-buggy module per checker plus a clean module that every
   checker must stay silent on. *)

open Llvm_ir
open Ir
open Llvm_analysis

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let codes ds = List.map (fun d -> d.Lint.code) ds
let has_code c ds = List.mem c (codes ds)

let contains ~affix s =
  let n = String.length affix and len = String.length s in
  let rec go i = i + n <= len && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* Every buggy sample must still be structurally valid IR: lint findings
   are semantic, not verifier errors. *)
let lint m =
  (match Verify.verify_module m with
  | [] -> ()
  | errs ->
    Alcotest.failf "sample %s does not verify: %s" m.mname
      (Fmt.str "%a" Fmt.(list Verify.pp_error) errs));
  Lint.run m

(* -- one buggy module per checker -------------------------------------- *)

let uninit_module () =
  let m = mk_module "uninit" in
  let b = Builder.for_module m in
  let _f = Builder.start_function b m "f" Ltype.int_ [] in
  let p = Builder.build_alloca b ~name:"p" Ltype.int_ in
  let x = Builder.build_load b ~name:"x" p in
  ignore (Builder.build_ret b (Some x));
  m

let maybe_uninit_module () =
  let m = mk_module "maybe_uninit" in
  let b = Builder.for_module m in
  let f = Builder.start_function b m "f" Ltype.int_ [ ("c", Ltype.bool_) ] in
  let c = Varg (List.hd f.fargs) in
  let p = Builder.build_alloca b ~name:"p" Ltype.int_ in
  let then_ = Builder.append_new_block b f "then" in
  let join = Builder.append_new_block b f "join" in
  ignore (Builder.build_condbr b c then_ join);
  Builder.position_at_end b then_;
  ignore (Builder.build_store b (Vconst (cint Ltype.Int 1L)) p);
  ignore (Builder.build_br b join);
  Builder.position_at_end b join;
  let x = Builder.build_load b ~name:"x" p in
  ignore (Builder.build_ret b (Some x));
  m

let null_deref_module () =
  let m = mk_module "nullderef" in
  let b = Builder.for_module m in
  let _f = Builder.start_function b m "f" Ltype.void [] in
  let null = Vconst (Cnull (Ltype.pointer Ltype.int_)) in
  ignore (Builder.build_store b (Vconst (cint Ltype.Int 1L)) null);
  ignore (Builder.build_ret b None);
  m

let double_free_module () =
  let m = mk_module "doublefree" in
  let b = Builder.for_module m in
  let _f = Builder.start_function b m "f" Ltype.void [] in
  let p = Builder.build_malloc b ~name:"p" Ltype.int_ in
  ignore (Builder.build_free b p);
  ignore (Builder.build_free b p);
  ignore (Builder.build_ret b None);
  m

let use_after_free_module () =
  let m = mk_module "uaf" in
  let b = Builder.for_module m in
  let _f = Builder.start_function b m "f" Ltype.int_ [] in
  let p = Builder.build_malloc b ~name:"p" Ltype.int_ in
  ignore (Builder.build_store b (Vconst (cint Ltype.Int 1L)) p);
  ignore (Builder.build_free b p);
  let x = Builder.build_load b ~name:"x" p in
  ignore (Builder.build_ret b (Some x));
  m

let leak_module () =
  let m = mk_module "leak" in
  let b = Builder.for_module m in
  let _f = Builder.start_function b m "f" Ltype.void [] in
  let p = Builder.build_malloc b ~name:"p" Ltype.int_ in
  ignore (Builder.build_store b (Vconst (cint Ltype.Int 1L)) p);
  ignore (Builder.build_ret b None);
  m

let dead_store_module () =
  let m = mk_module "deadstore" in
  let b = Builder.for_module m in
  let _f = Builder.start_function b m "f" Ltype.int_ [] in
  let p = Builder.build_alloca b ~name:"p" Ltype.int_ in
  ignore (Builder.build_store b (Vconst (cint Ltype.Int 1L)) p);
  ignore (Builder.build_store b (Vconst (cint Ltype.Int 2L)) p);
  let x = Builder.build_load b ~name:"x" p in
  ignore (Builder.build_ret b (Some x));
  m

let unreachable_module () =
  let m = mk_module "unreach" in
  let b = Builder.for_module m in
  let f = Builder.start_function b m "f" Ltype.void [] in
  ignore (Builder.build_ret b None);
  let dead = Builder.append_new_block b f "dead" in
  Builder.position_at_end b dead;
  ignore (Builder.build_ret b None);
  m

(* Uses every construct the checkers watch, correctly. *)
let clean_module () =
  let m = mk_module "clean" in
  let b = Builder.for_module m in
  let _f = Builder.start_function b m "f" Ltype.int_ [] in
  let p = Builder.build_alloca b ~name:"p" Ltype.int_ in
  ignore (Builder.build_store b (Vconst (cint Ltype.Int 1L)) p);
  let x = Builder.build_load b ~name:"x" p in
  let q = Builder.build_malloc b ~name:"q" Ltype.int_ in
  ignore (Builder.build_store b x q);
  let y = Builder.build_load b ~name:"y" q in
  ignore (Builder.build_free b q);
  ignore (Builder.build_ret b (Some y));
  m

(* Definite signed overflow: both operands sit in [300,301] (a select of
   two short constants), so the product [90000,90601] lies entirely
   outside short's [-32768,32767]. *)
let overflow_module () =
  let m = mk_module "overflow" in
  let b = Builder.for_module m in
  let f = Builder.start_function b m "f" Ltype.short [ ("c", Ltype.bool_) ] in
  let c = Varg (List.hd f.fargs) in
  let x =
    Builder.build_select b ~name:"x" c
      (Vconst (cint Ltype.Short 300L))
      (Vconst (cint Ltype.Short 301L))
  in
  let y = Builder.build_mul b ~name:"y" x x in
  ignore (Builder.build_ret b (Some y));
  m

(* Division by a provably-zero value, and a shift amount provably
   outside int's bit width. *)
let div_zero_module () =
  let m = mk_module "divzero" in
  let b = Builder.for_module m in
  let f = Builder.start_function b m "f" Ltype.int_ [ ("x", Ltype.int_) ] in
  let x = Varg (List.hd f.fargs) in
  let d = Builder.build_div b ~name:"d" x (Vconst (cint Ltype.Int 0L)) in
  let s = Builder.build_shl b ~name:"s" x (Vconst (cint Ltype.Int 40L)) in
  let r = Builder.build_add b ~name:"r" d s in
  ignore (Builder.build_ret b (Some r));
  m

(* A gep array index whose range [11,12] cannot meet [0,9]. *)
let oob_gep_module () =
  let m = mk_module "oobgep" in
  let b = Builder.for_module m in
  let f = Builder.start_function b m "f" Ltype.void [ ("c", Ltype.bool_) ] in
  let c = Varg (List.hd f.fargs) in
  let a = Builder.build_alloca b ~name:"a" (Ltype.array 10 Ltype.int_) in
  let idx =
    Builder.build_select b ~name:"idx" c
      (Vconst (cint Ltype.Int 11L))
      (Vconst (cint Ltype.Int 12L))
  in
  let g = Builder.build_gep b ~name:"g" a [ Vconst (cint Ltype.Long 0L); idx ] in
  ignore (Builder.build_store b (Vconst (cint Ltype.Int 1L)) g);
  ignore (Builder.build_ret b None);
  m

(* The same three shapes with in-range values: every range checker must
   stay quiet. *)
let clean_ranges_module () =
  let m = mk_module "cleanranges" in
  let b = Builder.for_module m in
  let f = Builder.start_function b m "f" Ltype.short [ ("c", Ltype.bool_) ] in
  let c = Varg (List.hd f.fargs) in
  let x =
    Builder.build_select b ~name:"x" c
      (Vconst (cint Ltype.Short 10L))
      (Vconst (cint Ltype.Short 20L))
  in
  let y = Builder.build_mul b ~name:"y" x x in
  let a = Builder.build_alloca b ~name:"a" (Ltype.array 10 Ltype.short) in
  let idx =
    Builder.build_select b ~name:"idx" c
      (Vconst (cint Ltype.Int 3L))
      (Vconst (cint Ltype.Int 5L))
  in
  let g = Builder.build_gep b ~name:"g" a [ Vconst (cint Ltype.Long 0L); idx ] in
  ignore (Builder.build_store b y g);
  let v = Builder.build_load b ~name:"v" g in
  let d =
    Builder.build_div b ~name:"d" v
      (Builder.build_select b ~name:"dv" c
         (Vconst (cint Ltype.Short 2L))
         (Vconst (cint Ltype.Short 4L)))
  in
  ignore (Builder.build_ret b (Some d));
  m

(* -- per-checker assertions --------------------------------------------- *)

let test_uninit () =
  let ds = lint (uninit_module ()) in
  check "flags L001" true (has_code "L001" ds);
  check "as an error" true
    (List.exists (fun d -> d.Lint.code = "L001" && d.Lint.severity = Lint.Error) ds)

let test_maybe_uninit () =
  let ds = lint (maybe_uninit_module ()) in
  check "one-armed store is a warning" true
    (List.exists
       (fun d -> d.Lint.code = "L001" && d.Lint.severity = Lint.Warning)
       ds)

let test_null_deref () =
  check "flags L002" true (has_code "L002" (lint (null_deref_module ())))

let test_double_free () =
  let ds = lint (double_free_module ()) in
  check "flags L004" true (has_code "L004" ds);
  check "no use-after-free noise" false (has_code "L003" ds)

let test_use_after_free () =
  check "flags L003" true (has_code "L003" (lint (use_after_free_module ())))

let test_leak () =
  let ds = lint (leak_module ()) in
  check "flags L005" true (has_code "L005" ds);
  (* freeing the malloc in another sample must not count here *)
  check "clean module has no leak" false (has_code "L005" (lint (clean_module ())))

let test_dead_store () =
  let ds = lint (dead_store_module ()) in
  check "flags L006" true (has_code "L006" ds);
  check_int "exactly the first store" 1
    (List.length (List.filter (fun d -> d.Lint.code = "L006") ds))

let test_unreachable () =
  let ds = lint (unreachable_module ()) in
  check "flags L007" true (has_code "L007" ds);
  check "names the dead block" true
    (List.exists (fun d -> d.Lint.block = "dead") ds)

let test_clean () =
  check_int "clean module has zero findings" 0 (List.length (lint (clean_module ())))

let test_only_filter () =
  let ds = Lint.run ~only:[ "L007" ] (uninit_module ()) in
  check_int "other checkers disabled" 0 (List.length ds)

(* -- diagnostics plumbing ----------------------------------------------- *)

let test_severity_threshold () =
  let ds = lint (leak_module ()) in
  check "leak is warning-severity" true (ds <> []);
  check_int "threshold error drops warnings" 0
    (List.length (Lint.filter_severity Lint.Error ds));
  check "threshold info keeps them" true
    (List.length (Lint.filter_severity Lint.Info ds) = List.length ds)

let test_printers () =
  let ds = lint (uninit_module ()) in
  let d = List.hd ds in
  let text = Fmt.str "%a" Lint.pp_diag d in
  check "text has code" true (contains ~affix:"[L001]" text);
  let json = Lint.diag_to_json d in
  check "json has code" true (contains ~affix:{|"code":"L001"|} json);
  check "json has severity" true (contains ~affix:{|"severity":"error"|} json)

let test_count_by_code () =
  let counts = Lint.count_by_code (lint (double_free_module ())) in
  check_int "ten codes tabulated" 10 (List.length counts);
  check_int "one double free" 1 (List.assoc "L004" counts);
  check_int "no uninit" 0 (List.assoc "L001" counts)

(* -- the value abstraction exported to transforms ------------------------ *)

let test_eval_int () =
  let m = mk_module "eval" in
  let b = Builder.for_module m in
  let _f = Builder.start_function b m "f" Ltype.int_ [] in
  let two = Vconst (cint Ltype.Int 2L) in
  let three = Vconst (cint Ltype.Int 3L) in
  let sum = Builder.build_add b two three in
  let sel = Builder.build_select b (Vconst (Cbool true)) sum two in
  let wide = Builder.build_cast b sel Ltype.long in
  ignore (Builder.build_ret b (Some sel));
  let table = m.mtypes in
  check "2+3 folds" true (Lint.eval_int table sum = Some 5L);
  check "select folds through" true (Lint.eval_int table sel = Some 5L);
  check "widening cast folds" true (Lint.eval_int table wide = Some 5L);
  check "null proves" true
    (Lint.proves_null table (Vconst (Cnull (Ltype.pointer Ltype.int_))));
  check "malloc is non-null" false
    (Lint.proves_null table sum)

let test_eval_int_narrow () =
  let table = Ltype.create_table () in
  let ev c = Lint.eval_int table (Vconst c) in
  check "sbyte cast truncates then sign-extends" true
    (ev (Ccast (Ltype.sbyte, cint Ltype.Int 300L)) = Some 44L);
  check "ubyte cast zero-extends" true
    (ev (Ccast (Ltype.ubyte, cint Ltype.Int (-1L))) = Some 255L);
  check "short cast truncates" true
    (ev (Ccast (Ltype.short, cint Ltype.Int 70000L)) = Some 4464L);
  check "narrow value kept in range" true
    (ev (cint Ltype.Sbyte (-128L)) = Some (-128L))

(* -- range-driven checkers ---------------------------------------------- *)

let test_overflow () =
  let ds = lint (overflow_module ()) in
  check "flags L008" true (has_code "L008" ds);
  let d = List.find (fun d -> d.Lint.code = "L008") ds in
  check "overflow is a warning" true (d.Lint.severity = Lint.Warning)

let test_div_zero_and_shift () =
  let ds = lint (div_zero_module ()) in
  let l9 = List.filter (fun d -> d.Lint.code = "L009") ds in
  check_int "division and shift both flagged" 2 (List.length l9);
  check "definite div-by-zero is an error" true
    (List.exists (fun d -> d.Lint.severity = Lint.Error) l9);
  check "oversized shift is a warning" true
    (List.exists (fun d -> d.Lint.severity = Lint.Warning) l9)

let test_oob_gep () =
  let ds = lint (oob_gep_module ()) in
  check "flags L010" true (has_code "L010" ds);
  let d = List.find (fun d -> d.Lint.code = "L010") ds in
  check "out-of-bounds gep is an error" true (d.Lint.severity = Lint.Error)

let test_ranges_quiet_on_clean () =
  let ds = lint (clean_ranges_module ()) in
  check "no L008 on in-range arithmetic" false (has_code "L008" ds);
  check "no L009 on nonzero divisor" false (has_code "L009" ds);
  check "no L010 on in-bounds gep" false (has_code "L010" ds)

let test_deterministic_ordering () =
  let m = mk_module "ordering" in
  let b = Builder.for_module m in
  (* define the later-sorting function first: output order must not
     depend on definition order *)
  let zf = Builder.start_function b m "zz" Ltype.int_ [ ("x", Ltype.int_) ] in
  let x = Varg (List.hd zf.fargs) in
  let d1 = Builder.build_div b ~name:"d1" x (Vconst (cint Ltype.Int 0L)) in
  let d2 = Builder.build_div b ~name:"d2" x (Vconst (cint Ltype.Int 0L)) in
  let s = Builder.build_add b ~name:"s" d1 d2 in
  ignore (Builder.build_ret b (Some s));
  let af = Builder.start_function b m "aa" Ltype.int_ [ ("x", Ltype.int_) ] in
  let x = Varg (List.hd af.fargs) in
  let d = Builder.build_div b ~name:"d" x (Vconst (cint Ltype.Int 0L)) in
  ignore (Builder.build_ret b (Some d));
  let ds = lint m in
  check "output is compare_diag-sorted" true
    (List.sort Lint.compare_diag ds = ds);
  check "function aa reported before zz" true
    (match ds with d :: _ -> d.Lint.func = "aa" | [] -> false);
  let zz = List.filter (fun d -> d.Lint.func = "zz") ds in
  check "same-block findings in instruction order" true
    (match zz with
    | a :: b :: _ -> a.Lint.instr_index < b.Lint.instr_index
    | _ -> false)

let test_undef_loads_feed_boundscheck () =
  (* an uninitialized index: lint proves the load undef, and the bounds
     check eliminator drops the (pointless) check guarding it *)
  let m = mk_module "undefidx" in
  let b = Builder.for_module m in
  let _f = Builder.start_function b m "f" Ltype.int_ [] in
  let g =
    mk_gvar ~name:"tbl" ~ty:(Ltype.array 8 Ltype.int_)
      ~init:(Czero (Ltype.array 8 Ltype.int_)) ()
  in
  add_gvar m g;
  let idxp = Builder.build_alloca b ~name:"idxp" Ltype.int_ in
  let idx = Builder.build_load b ~name:"idx" idxp in
  let elt =
    Builder.build_gep b (Vglobal g) [ Vconst (cint Ltype.Int 0L); idx ]
  in
  let x = Builder.build_load b ~name:"x" elt in
  ignore (Builder.build_ret b (Some x));
  let undef = Lint.undef_loads m in
  (match idx with
  | Vinstr i -> check "load is proven undef" true (Hashtbl.mem undef i.iid)
  | _ -> assert false);
  let inserted = Llvm_transforms.Boundscheck.insert m in
  check_int "one check inserted" 1 inserted;
  let removed = Llvm_transforms.Boundscheck.eliminate m in
  check_int "undef-index check dropped" 1 removed

(* -- the generic engine on its own -------------------------------------- *)

module Count_lattice = struct
  type fact = int

  let bottom = -1 (* unreached *)
  let equal = Int.equal
  let join = max
end

module Count_flow = Dataflow.Make (Count_lattice)

let test_dataflow_engine () =
  (* forward: longest-instruction-count path from the entry; on fact(),
     the loop must converge and the exit see the through-loop count *)
  let m = Samples.fact_module () in
  let f = Option.get (find_func m "fact") in
  let transfer b fact = if fact < 0 then fact else fact + List.length b.instrs in
  let res =
    Count_flow.run ~direction:Dataflow.Forward ~boundary:0 ~transfer f
  in
  let exit = List.nth f.fblocks 3 in
  check "exit reached with positive count" true (Count_flow.after res exit > 0);
  check "entry starts at boundary" true
    (Count_flow.before res (entry_block f) = 0);
  (* backward over the same function *)
  let res_b =
    Count_flow.run ~direction:Dataflow.Backward ~boundary:0 ~transfer f
  in
  check "entry sees a path to the exit" true
    (Count_flow.before res_b (entry_block f) > 0)

let test_dataflow_skips_unreachable () =
  let m = unreachable_module () in
  let f = Option.get (find_func m "f") in
  let transfer _ fact = fact in
  let res =
    Count_flow.run ~direction:Dataflow.Forward ~boundary:7 ~transfer f
  in
  let dead = List.nth f.fblocks 1 in
  check "unreachable block stays at bottom" true
    (Count_flow.before res dead = Count_lattice.bottom)

let tests =
  [ Alcotest.test_case "L001 uninitialized load" `Quick test_uninit;
    Alcotest.test_case "L001 maybe-uninitialized is a warning" `Quick
      test_maybe_uninit;
    Alcotest.test_case "L002 null dereference" `Quick test_null_deref;
    Alcotest.test_case "L004 double free" `Quick test_double_free;
    Alcotest.test_case "L003 use after free" `Quick test_use_after_free;
    Alcotest.test_case "L005 memory leak" `Quick test_leak;
    Alcotest.test_case "L006 dead store" `Quick test_dead_store;
    Alcotest.test_case "L007 unreachable block" `Quick test_unreachable;
    Alcotest.test_case "clean module has zero findings" `Quick test_clean;
    Alcotest.test_case "checker selection (--check)" `Quick test_only_filter;
    Alcotest.test_case "severity threshold" `Quick test_severity_threshold;
    Alcotest.test_case "text and JSON printers" `Quick test_printers;
    Alcotest.test_case "count_by_code tabulates all codes" `Quick
      test_count_by_code;
    Alcotest.test_case "value abstraction folds constants" `Quick test_eval_int;
    Alcotest.test_case "value abstraction respects narrow widths" `Quick
      test_eval_int_narrow;
    Alcotest.test_case "L008 definite signed overflow" `Quick test_overflow;
    Alcotest.test_case "L009 division by zero and oversized shift" `Quick
      test_div_zero_and_shift;
    Alcotest.test_case "L010 provably out-of-bounds gep" `Quick test_oob_gep;
    Alcotest.test_case "range checkers quiet on in-range code" `Quick
      test_ranges_quiet_on_clean;
    Alcotest.test_case "diagnostics deterministically ordered" `Quick
      test_deterministic_ordering;
    Alcotest.test_case "uninit facts drop redundant bounds checks" `Quick
      test_undef_loads_feed_boundscheck;
    Alcotest.test_case "dataflow engine forward and backward" `Quick
      test_dataflow_engine;
    Alcotest.test_case "dataflow engine skips unreachable blocks" `Quick
      test_dataflow_skips_unreachable ]

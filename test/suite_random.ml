(* Differential testing over randomly generated IR programs.

   For each seed, Llvm_fuzz.Irgen builds a structurally varied module
   (mixed integer kinds, diamonds, loops, switches, aggregates,
   globals, invoke/unwind, indirect calls).  The observable behaviour
   (main's return value) must be invariant under:
   - each optimization pass individually,
   - the -O2 and -O3 pipelines,
   - a round-trip through the textual representation,
   - a round-trip through the bitcode representation,
   - code lowering (isel + regalloc must not crash and must eliminate
     every phi and virtual register). *)

open Llvm_ir
open Llvm_transforms

let run (m : Ir.modul) : string =
  let r = Llvm_exec.Interp.run_main ~fuel:5_000_000 m in
  match r.Llvm_exec.Interp.status with
  | `Returned v -> Fmt.str "%a|%s" Llvm_exec.Interp.pp_rtval v r.Llvm_exec.Interp.output
  | `Trapped msg -> "trap:" ^ msg
  | `Unwound -> "unwound"
  | `Exited c -> Printf.sprintf "exit:%d" c

let fresh seed = Llvm_fuzz.Irgen.gen_module seed

let check_verifies what (m : Ir.modul) =
  match Verify.verify_module m with
  | [] -> ()
  | errs ->
    QCheck.Test.fail_reportf "%s: invalid module:@.%a@.%s" what
      Fmt.(list Verify.pp_error)
      errs
      (Printer.module_to_string m)

let prop_generated_modules_valid seed =
  let m = fresh seed in
  check_verifies "generator" m;
  Llvm_analysis.Ssa_check.assert_ssa m;
  (* and they must run without trapping *)
  let out = run m in
  if String.length out >= 5 && String.sub out 0 5 = "trap:" then
    QCheck.Test.fail_reportf "generated program traps: %s" out;
  true

let prop_passes_preserve seed =
  let baseline = run (fresh seed) in
  List.iter
    (fun (p : Pass.t) ->
      let m = fresh seed in
      ignore (Pass.run_pass p m);
      check_verifies p.Pass.name m;
      let out = run m in
      if out <> baseline then
        QCheck.Test.fail_reportf "pass %s changed behaviour: %s -> %s"
          p.Pass.name baseline out)
    Pipelines.all_passes;
  true

let prop_pipelines_preserve seed =
  let baseline = run (fresh seed) in
  List.iter
    (fun level ->
      let m = fresh seed in
      Pipelines.optimize_module ~level m;
      check_verifies (Printf.sprintf "-O%d" level) m;
      let out = run m in
      if out <> baseline then
        QCheck.Test.fail_reportf "-O%d changed behaviour: %s -> %s" level
          baseline out)
    [ 1; 2; 3 ];
  true

let prop_representations_roundtrip seed =
  let m = fresh seed in
  let text = Printer.module_to_string m in
  let reparsed = Llvm_asm.Parser.parse_module ~name:m.Ir.mname text in
  if Printer.module_to_string reparsed <> text then
    QCheck.Test.fail_reportf "textual round-trip not a fixpoint (seed %d)" seed;
  let image, _ = Llvm_bitcode.Encoder.encode m in
  let decoded = Llvm_bitcode.Decoder.decode image in
  if Printer.module_to_string decoded <> text then
    QCheck.Test.fail_reportf "bitcode round-trip not a fixpoint (seed %d)" seed;
  (* behaviour too, not just syntax *)
  let b0 = run m and b1 = run reparsed and b2 = run decoded in
  if b0 <> b1 || b0 <> b2 then
    QCheck.Test.fail_reportf "representations disagree: %s / %s / %s" b0 b1 b2;
  true

let prop_codegen_lowers seed =
  let m = fresh seed in
  Pipelines.optimize_module ~level:2 m;
  List.iter
    (fun t ->
      let r = Llvm_codegen.Emit.compile_module t m in
      if r.Llvm_codegen.Emit.code_bytes <= 0 then
        QCheck.Test.fail_reportf "%s produced no code" r.Llvm_codegen.Emit.target;
      (* no virtual registers may survive allocation *)
      List.iter
        (fun fa -> ignore fa.Llvm_codegen.Emit.fa_text)
        r.Llvm_codegen.Emit.funcs)
    Llvm_codegen.Target.targets;
  true

let seed_gen = QCheck.make ~print:string_of_int (QCheck.Gen.int_range 1 1_000_000)

(* LLVM_FUZZ_SEEDS overrides every per-property seed count, so CI (or a
   soak run) can turn the same suite into a longer fuzzing campaign. *)
let seeds_override =
  match Sys.getenv_opt "LLVM_FUZZ_SEEDS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> Some n
    | _ -> None)
  | None -> None

let qtest ?(count = 60) name prop =
  let count = match seeds_override with Some n -> n | None -> count in
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name seed_gen prop)

let tests =
  [ qtest "generated modules verify, are SSA, and run" prop_generated_modules_valid;
    qtest ~count:25 "every pass preserves behaviour" prop_passes_preserve;
    qtest ~count:25 "pipelines preserve behaviour" prop_pipelines_preserve;
    qtest ~count:40 "representations round-trip" prop_representations_roundtrip;
    qtest ~count:20 "codegen lowers optimized modules" prop_codegen_lowers ]

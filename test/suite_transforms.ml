(* Transformation tests.

   Each pass is checked two ways: (a) it does the specific rewrite it
   promises (structure checks), and (b) it preserves semantics — the
   module is executed before and after and the observable results
   (return value, output, trap status) must agree. *)

open Llvm_ir
open Ir
open Llvm_exec
open Llvm_transforms

let snapshot (m : modul) : string =
  (* run and render the observable behaviour *)
  let r = Interp.run_main m in
  let status =
    match r.Interp.status with
    | `Returned v -> Fmt.str "ret %a" Interp.pp_rtval v
    | `Unwound -> "unwound"
    | `Exited c -> Printf.sprintf "exit %d" c
    | `Trapped msg -> "trap " ^ msg
  in
  status ^ "|" ^ r.Interp.output

let reparse (m : modul) : modul =
  Llvm_asm.Parser.parse_module ~name:m.mname (Printer.module_to_string m)

(* Run [p] on a copy of [m]; check the verifier, SSA and semantics. *)
let check_pass_preserves (p : Pass.t) (m : modul) : modul =
  let before = snapshot (reparse m) in
  let opt = reparse m in
  ignore (Pass.run_pass p opt);
  (match Verify.verify_module opt with
  | [] -> ()
  | errs ->
    Alcotest.failf "%s broke module invariants on %s: %s" p.Pass.name m.mname
      (Fmt.str "%a" Fmt.(list Verify.pp_error) errs));
  Llvm_analysis.Ssa_check.assert_ssa opt;
  let after = snapshot opt in
  Alcotest.(check string)
    (Printf.sprintf "%s preserves semantics of %s" p.Pass.name m.mname)
    before after;
  opt

let count_op (m : modul) (op : opcode) : int =
  List.fold_left
    (fun n f -> fold_instrs (fun n i -> if i.iop = op then n + 1 else n) n f)
    0 m.mfuncs

(* -- A shared example: factorial with a main ----------------------------- *)

let fact_with_main () =
  let m = Samples.fact_module () in
  let b = Builder.for_module m in
  let _main = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  let f = Option.get (find_func m "fact") in
  let r = Builder.build_call b (Vfunc f) [ Vconst (cint Ltype.Int 6L) ] in
  ignore (Builder.build_ret b (Some r));
  m

let exceptions_with_main throw_flag =
  let m = Samples.exceptions_module () in
  let b = Builder.for_module m in
  let _main = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  let caller = Option.get (find_func m "caller") in
  let r = Builder.build_call b (Vfunc caller) [ Vconst (Cbool throw_flag) ] in
  ignore (Builder.build_ret b (Some r));
  m

(* -- mem2reg -------------------------------------------------------------- *)

let test_mem2reg_promotes () =
  let m = fact_with_main () in
  let opt = check_pass_preserves Mem2reg.pass m in
  Alcotest.(check int) "all allocas promoted" 0 (count_op opt Alloca);
  Alcotest.(check bool) "phis inserted" true (count_op opt Phi > 0)

let test_mem2reg_skips_escaping () =
  (* an alloca whose address is passed to a function must survive *)
  let m = mk_module "escape" in
  let b = Builder.for_module m in
  let sink =
    mk_func ~linkage:External ~name:"sink" ~return:Ltype.void
      ~params:[ ("p", Ltype.pointer Ltype.int_) ] ()
  in
  add_func m sink;
  let _main = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  let p = Builder.build_alloca b Ltype.int_ in
  ignore (Builder.build_store b (Vconst (cint Ltype.Int 3L)) p);
  ignore (Builder.build_call b (Vfunc sink) [ p ]);
  let v = Builder.build_load b p in
  ignore (Builder.build_ret b (Some v));
  ignore (Pass.run_pass Mem2reg.pass m);
  Alcotest.(check int) "escaping alloca kept" 1 (count_op m Alloca);
  Verify.assert_valid m

(* -- scalarrepl + mem2reg -------------------------------------------------- *)

let test_sroa () =
  let m = mk_module "sroa" in
  let b = Builder.for_module m in
  let pair = Ltype.struct_ [ Ltype.int_; Ltype.int_ ] in
  let _main = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  let p = Builder.build_alloca b ~name:"pair" pair in
  let a_slot = Builder.build_gep_const b p [ 0; 0 ] in
  let b_slot = Builder.build_gep_const b p [ 0; 1 ] in
  ignore (Builder.build_store b (Vconst (cint Ltype.Int 30L)) a_slot);
  ignore (Builder.build_store b (Vconst (cint Ltype.Int 12L)) b_slot);
  let x = Builder.build_load b a_slot in
  let y = Builder.build_load b b_slot in
  ignore (Builder.build_ret b (Some (Builder.build_add b x y)));
  let opt = check_pass_preserves Sroa.pass m in
  Alcotest.(check int) "struct alloca split" 2 (count_op opt Alloca);
  Alcotest.(check int) "geps are gone" 0 (count_op opt Gep);
  (* and afterwards mem2reg finishes the job *)
  ignore (Pass.run_pass Mem2reg.pass opt);
  Alcotest.(check int) "fields promoted" 0 (count_op opt Alloca)

(* -- constprop -------------------------------------------------------------- *)

let test_constprop_folds () =
  let m = mk_module "cp" in
  let b = Builder.for_module m in
  let _main = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  let two = Vconst (cint Ltype.Int 2L) in
  let v1 = Builder.build_add b two two in
  let v2 = Builder.build_mul b v1 v1 in
  let v3 = Builder.build_sub b v2 (Vconst (cint Ltype.Int 6L)) in
  ignore (Builder.build_ret b (Some v3));
  let opt = check_pass_preserves Constprop.pass m in
  let main = Option.get (find_func opt "main") in
  Alcotest.(check int) "folded to a single ret" 1 (instr_count main)

let test_constprop_vtable_load () =
  (* load from a constant table folds; the call becomes direct *)
  let m = mk_module "devirt" in
  let b = Builder.for_module m in
  let target =
    Builder.start_function b m ~linkage:Internal "target" Ltype.int_ []
  in
  ignore (Builder.build_ret b (Some (Vconst (cint Ltype.Int 99L))));
  let fpty = Ltype.pointer (Ltype.func Ltype.int_ []) in
  let vtbl =
    mk_gvar ~linkage:Internal ~constant:true ~name:"vtable"
      ~ty:(Ltype.array 2 fpty)
      ~init:(Carray (fpty, [ Cfunc target; Cfunc target ]))
      ()
  in
  add_gvar m vtbl;
  let _main = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  let slot = Builder.build_gep_const b (Vglobal vtbl) [ 0; 1 ] in
  let fp = Builder.build_load b slot in
  let r = Builder.build_call b fp [] in
  ignore (Builder.build_ret b (Some r));
  let opt = check_pass_preserves Constprop.pass m in
  let main = Option.get (find_func opt "main") in
  let direct = ref false in
  iter_instrs
    (fun i ->
      if i.iop = Call then
        match call_callee i with
        | Vfunc f when f.fname = "target" -> direct := true
        | _ -> ())
    main;
  Alcotest.(check bool) "virtual call resolved to direct call" true !direct

(* -- simplifycfg ------------------------------------------------------------ *)

let test_simplifycfg_constant_branch () =
  let m = mk_module "cfg" in
  let b = Builder.for_module m in
  let f = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  let t = Builder.append_new_block b f "t" in
  let e = Builder.append_new_block b f "e" in
  ignore (Builder.build_condbr b (Vconst (Cbool true)) t e);
  Builder.position_at_end b t;
  ignore (Builder.build_ret b (Some (Vconst (cint Ltype.Int 1L))));
  Builder.position_at_end b e;
  ignore (Builder.build_ret b (Some (Vconst (cint Ltype.Int 2L))));
  let opt = check_pass_preserves Simplify_cfg.pass m in
  let main = Option.get (find_func opt "main") in
  Alcotest.(check int) "collapsed to one block" 1 (List.length main.fblocks)

let test_simplifycfg_switch () =
  let m = mk_module "sw" in
  let b = Builder.for_module m in
  let f = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  let c1 = Builder.append_new_block b f "c1" in
  let c2 = Builder.append_new_block b f "c2" in
  let d = Builder.append_new_block b f "d" in
  ignore
    (Builder.build_switch b (Vconst (cint Ltype.Int 2L)) d
       [ (cint Ltype.Int 1L, c1); (cint Ltype.Int 2L, c2) ]);
  Builder.position_at_end b c1;
  ignore (Builder.build_ret b (Some (Vconst (cint Ltype.Int 10L))));
  Builder.position_at_end b c2;
  ignore (Builder.build_ret b (Some (Vconst (cint Ltype.Int 20L))));
  Builder.position_at_end b d;
  ignore (Builder.build_ret b (Some (Vconst (cint Ltype.Int 30L))));
  let opt = check_pass_preserves Simplify_cfg.pass m in
  Alcotest.(check string) "result is 20" "ret 20|" (snapshot opt);
  Alcotest.(check int) "switch folded" 0 (count_op opt Switch)

(* -- gvn --------------------------------------------------------------------- *)

let test_gvn_merges () =
  let m = mk_module "gvn" in
  let b = Builder.for_module m in
  let f =
    Builder.start_function b m ~linkage:External "main" Ltype.int_ []
  in
  ignore f;
  let slot = Builder.build_alloca b Ltype.int_ in
  ignore (Builder.build_store b (Vconst (cint Ltype.Int 7L)) slot);
  let x = Builder.build_load b slot in
  let a = Builder.build_add b x x in
  let bb = Builder.build_add b x x in
  (* duplicate of a *)
  let s = Builder.build_mul b a bb in
  ignore (Builder.build_ret b (Some s));
  let opt = check_pass_preserves Gvn.pass m in
  Alcotest.(check int) "one add remains" 1 (count_op opt Add)

(* -- reassociate -------------------------------------------------------------- *)

let test_reassociate () =
  let m = mk_module "reassoc" in
  let b = Builder.for_module m in
  let f =
    Builder.start_function b m ~linkage:External "compute" Ltype.int_
      [ ("x", Ltype.int_); ("y", Ltype.int_) ]
  in
  let x = Varg (List.nth f.fargs 0) in
  let y = Varg (List.nth f.fargs 1) in
  (* ((x + 1) + y) + 2 *)
  let v1 = Builder.build_add b x (Vconst (cint Ltype.Int 1L)) in
  let v2 = Builder.build_add b v1 y in
  let v3 = Builder.build_add b v2 (Vconst (cint Ltype.Int 2L)) in
  ignore (Builder.build_ret b (Some v3));
  let b2 = Builder.for_module m in
  let _main = Builder.start_function b2 m ~linkage:External "main" Ltype.int_ [] in
  let r =
    Builder.build_call b2 (Vfunc f)
      [ Vconst (cint Ltype.Int 10L); Vconst (cint Ltype.Int 20L) ]
  in
  ignore (Builder.build_ret b2 (Some r));
  let opt = check_pass_preserves Reassociate.pass m in
  let compute = Option.get (find_func opt "compute") in
  (* after: (x + y) + 3  — still 3 instructions but only one constant *)
  let const_operands = ref 0 in
  iter_instrs
    (fun i ->
      if i.iop = Add then
        Array.iter
          (fun v -> match v with Vconst (Cint _) -> incr const_operands | _ -> ())
          i.operands)
    compute;
  Alcotest.(check int) "constants merged into one operand" 1 !const_operands

(* -- inline -------------------------------------------------------------------- *)

let test_inline_simple () =
  let m = fact_with_main () in
  (* make fact internal so the inliner may delete it afterwards *)
  (Option.get (find_func m "fact")).flinkage <- Internal;
  let opt = check_pass_preserves Inline.pass m in
  Alcotest.(check int) "no calls remain" 0 (count_op opt Call);
  Alcotest.(check bool) "fact deleted after inlining" true
    (find_func opt "fact" = None)

let test_inline_invoke_site () =
  List.iter
    (fun flag ->
      let m = exceptions_with_main flag in
      ignore (check_pass_preserves Inline.pass m))
    [ true; false ]

let test_inline_respects_recursion () =
  let m = mk_module "recinline" in
  let b = Builder.for_module m in
  let f =
    Builder.start_function b m ~linkage:Internal "selfcall" Ltype.int_
      [ ("n", Ltype.int_) ]
  in
  let n = Varg (List.hd f.fargs) in
  let base = Builder.append_new_block b f "base" in
  let rec_ = Builder.append_new_block b f "rec" in
  let c = Builder.build_setle b n (Vconst (cint Ltype.Int 0L)) in
  ignore (Builder.build_condbr b c base rec_);
  Builder.position_at_end b base;
  ignore (Builder.build_ret b (Some (Vconst (cint Ltype.Int 0L))));
  Builder.position_at_end b rec_;
  let n1 = Builder.build_sub b n (Vconst (cint Ltype.Int 1L)) in
  let r = Builder.build_call b (Vfunc f) [ n1 ] in
  ignore (Builder.build_ret b (Some r));
  let b2 = Builder.for_module m in
  let _main = Builder.start_function b2 m ~linkage:External "main" Ltype.int_ [] in
  let r = Builder.build_call b2 (Vfunc f) [ Vconst (cint Ltype.Int 3L) ] in
  ignore (Builder.build_ret b2 (Some r));
  let opt = check_pass_preserves Inline.pass m in
  Alcotest.(check bool) "recursive callee survives" true
    (find_func opt "selfcall" <> None)

(* -- dge ------------------------------------------------------------------------ *)

let test_dge_removes_dead_cycle () =
  let m = fact_with_main () in
  let b = Builder.for_module m in
  (* two dead internal functions calling each other, plus a dead global *)
  let da = mk_func ~linkage:Internal ~name:"dead_a" ~return:Ltype.void ~params:[] () in
  let db = mk_func ~linkage:Internal ~name:"dead_b" ~return:Ltype.void ~params:[] () in
  add_func m da;
  add_func m db;
  let blk_a = mk_block ~name:"entry" () in
  append_block da blk_a;
  Builder.position_at_end b blk_a;
  ignore (Builder.build_call b (Vfunc db) []);
  ignore (Builder.build_ret b None);
  let blk_b = mk_block ~name:"entry" () in
  append_block db blk_b;
  Builder.position_at_end b blk_b;
  ignore (Builder.build_call b (Vfunc da) []);
  ignore (Builder.build_ret b None);
  let dead_g =
    mk_gvar ~linkage:Internal ~name:"dead_table" ~ty:(Ltype.pointer (Ltype.func Ltype.void []))
      ~init:(Cfunc da) ()
  in
  add_gvar m dead_g;
  let stats = Dge.run m in
  Alcotest.(check int) "two dead functions deleted" 2 stats.Dge.deleted_functions;
  Alcotest.(check int) "dead global deleted" 1 stats.Dge.deleted_globals;
  Verify.assert_valid m;
  Alcotest.(check bool) "live code kept" true (find_func m "fact" <> None)

(* -- dae ------------------------------------------------------------------------ *)

let test_dae () =
  let m = mk_module "dae" in
  let b = Builder.for_module m in
  let f =
    Builder.start_function b m ~linkage:Internal "callee" Ltype.int_
      [ ("used", Ltype.int_); ("unused", Ltype.int_) ]
  in
  let used = Varg (List.nth f.fargs 0) in
  ignore (Builder.build_ret b (Some (Builder.build_add b used used)));
  (* a second callee whose return value nobody reads *)
  let g =
    Builder.start_function b m ~linkage:Internal "noret" Ltype.int_
      [ ("x", Ltype.int_) ]
  in
  ignore (Builder.build_ret b (Some (Varg (List.hd g.fargs))));
  let _main = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  let r =
    Builder.build_call b (Vfunc f)
      [ Vconst (cint Ltype.Int 21L); Vconst (cint Ltype.Int 999L) ]
  in
  ignore (Builder.build_call b (Vfunc g) [ Vconst (cint Ltype.Int 1L) ]);
  ignore (Builder.build_ret b (Some r));
  let before = snapshot (reparse m) in
  let stats = Dae.run m in
  Verify.assert_valid m;
  Alcotest.(check int) "one argument removed" 1 stats.Dae.removed_args;
  Alcotest.(check int) "one return removed" 1 stats.Dae.removed_returns;
  Alcotest.(check int) "callee keeps one parameter" 1
    (List.length (Option.get (find_func m "callee")).fargs);
  Alcotest.(check string) "semantics preserved" before (snapshot m)

(* -- prune-eh -------------------------------------------------------------------- *)

let test_prune_eh () =
  let m = mk_module "prune" in
  let b = Builder.for_module m in
  let safe =
    Builder.start_function b m ~linkage:Internal "safe" Ltype.int_ []
  in
  ignore safe;
  ignore (Builder.build_ret b (Some (Vconst (cint Ltype.Int 5L))));
  let main = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  let ok = Builder.append_new_block b main "ok" in
  let ex = Builder.append_new_block b main "ex" in
  let r = Builder.build_invoke b (Vfunc safe) [] ~normal:ok ~unwind:ex in
  Builder.position_at_end b ok;
  ignore (Builder.build_ret b (Some r));
  Builder.position_at_end b ex;
  ignore (Builder.build_ret b (Some (Vconst (cint Ltype.Int (-1L)))));
  let opt = check_pass_preserves Prune_eh.pass m in
  Alcotest.(check int) "invoke converted" 0 (count_op opt Invoke);
  let main = Option.get (find_func opt "main") in
  Alcotest.(check int) "dead handler removed" 2 (List.length main.fblocks)

(* -- tailrecelim ------------------------------------------------------------------ *)

let test_tailrec () =
  let m = mk_module "tail" in
  let b = Builder.for_module m in
  (* tail-recursive accumulator factorial *)
  let f =
    Builder.start_function b m ~linkage:Internal "loop" Ltype.int_
      [ ("n", Ltype.int_); ("acc", Ltype.int_) ]
  in
  let n = Varg (List.nth f.fargs 0) in
  let acc = Varg (List.nth f.fargs 1) in
  let base = Builder.append_new_block b f "base" in
  let rec_ = Builder.append_new_block b f "rec" in
  let c = Builder.build_setle b n (Vconst (cint Ltype.Int 1L)) in
  ignore (Builder.build_condbr b c base rec_);
  Builder.position_at_end b base;
  ignore (Builder.build_ret b (Some acc));
  Builder.position_at_end b rec_;
  let n1 = Builder.build_sub b n (Vconst (cint Ltype.Int 1L)) in
  let acc1 = Builder.build_mul b acc n in
  let r = Builder.build_call b (Vfunc f) [ n1; acc1 ] in
  ignore (Builder.build_ret b (Some r));
  let b2 = Builder.for_module m in
  let _main = Builder.start_function b2 m ~linkage:External "main" Ltype.int_ [] in
  let r =
    Builder.build_call b2 (Vfunc f)
      [ Vconst (cint Ltype.Int 6L); Vconst (cint Ltype.Int 1L) ]
  in
  ignore (Builder.build_ret b2 (Some r));
  let opt = check_pass_preserves Tailrec.pass m in
  let loop = Option.get (find_func opt "loop") in
  let self_calls = ref 0 in
  iter_instrs
    (fun i ->
      if i.iop = Call then
        match call_callee i with
        | Vfunc g when g == loop -> incr self_calls
        | _ -> ())
    loop;
  Alcotest.(check int) "self tail call removed" 0 !self_calls;
  Alcotest.(check string) "6! computed by loop" "ret 720|" (snapshot opt)

(* -- adce ---------------------------------------------------------------------------- *)

let test_adce () =
  let m = mk_module "adce" in
  let b = Builder.for_module m in
  let _main = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  (* a dead chain and a dead cycle of phis would both go *)
  let d1 = Builder.build_add b (Vconst (cint Ltype.Int 1L)) (Vconst (cint Ltype.Int 2L)) in
  let _d2 = Builder.build_mul b d1 d1 in
  ignore (Builder.build_ret b (Some (Vconst (cint Ltype.Int 0L))));
  let opt = check_pass_preserves Dce.adce_pass m in
  let main = Option.get (find_func opt "main") in
  Alcotest.(check int) "only the ret remains" 1 (instr_count main)

(* -- full pipelines ------------------------------------------------------------------- *)

let test_pipeline_preserves_samples () =
  let mains =
    [ fact_with_main (); exceptions_with_main true; exceptions_with_main false ]
  in
  List.iter
    (fun m ->
      let before = snapshot (reparse m) in
      let opt = reparse m in
      Pipelines.optimize_module ~level:3 opt;
      (match Verify.verify_module opt with
      | [] -> ()
      | errs ->
        Alcotest.failf "pipeline broke %s: %s" m.mname
          (Fmt.str "%a" Fmt.(list Verify.pp_error) errs));
      Alcotest.(check string) ("pipeline preserves " ^ m.mname) before (snapshot opt))
    mains

let tests =
  [ Alcotest.test_case "mem2reg promotes allocas" `Quick test_mem2reg_promotes;
    Alcotest.test_case "mem2reg keeps escaping allocas" `Quick test_mem2reg_skips_escaping;
    Alcotest.test_case "scalarrepl splits structs" `Quick test_sroa;
    Alcotest.test_case "constprop folds chains" `Quick test_constprop_folds;
    Alcotest.test_case "constprop devirtualizes vtable loads" `Quick
      test_constprop_vtable_load;
    Alcotest.test_case "simplifycfg folds constant branches" `Quick
      test_simplifycfg_constant_branch;
    Alcotest.test_case "simplifycfg folds constant switches" `Quick test_simplifycfg_switch;
    Alcotest.test_case "gvn merges redundant expressions" `Quick test_gvn_merges;
    Alcotest.test_case "reassociate merges constants" `Quick test_reassociate;
    Alcotest.test_case "inline integrates and deletes" `Quick test_inline_simple;
    Alcotest.test_case "inline through invoke sites" `Quick test_inline_invoke_site;
    Alcotest.test_case "inline stops at recursion" `Quick test_inline_respects_recursion;
    Alcotest.test_case "dge removes dead cycles" `Quick test_dge_removes_dead_cycle;
    Alcotest.test_case "dae removes args and returns" `Quick test_dae;
    Alcotest.test_case "prune-eh converts safe invokes" `Quick test_prune_eh;
    Alcotest.test_case "tailrecelim builds loops" `Quick test_tailrec;
    Alcotest.test_case "adce removes dead code" `Quick test_adce;
    Alcotest.test_case "full pipeline preserves semantics" `Quick
      test_pipeline_preserves_samples ]

(* -- store-forward -------------------------------------------------------------- *)

let test_storeforward_basics () =
  let m = mk_module "sf" in
  let b = Builder.for_module m in
  let _main = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  let obj = Builder.build_malloc b (Ltype.struct_ [ Ltype.int_; Ltype.int_ ]) in
  let f0 = Builder.build_gep_const b obj [ 0; 0 ] in
  let f1 = Builder.build_gep_const b obj [ 0; 1 ] in
  ignore (Builder.build_store b (Vconst (cint Ltype.Int 30L)) f0);
  (* a store to a provably different field must not kill the first *)
  ignore (Builder.build_store b (Vconst (cint Ltype.Int 12L)) f1);
  let v0 = Builder.build_load b f0 in
  let v1 = Builder.build_load b f1 in
  ignore (Builder.build_ret b (Some (Builder.build_add b v0 v1)));
  let opt = check_pass_preserves Storeforward.pass m in
  Alcotest.(check int) "both loads forwarded" 0 (count_op opt Load)

let test_storeforward_respects_may_alias () =
  (* two pointer arguments may alias: the intervening store kills it *)
  let m = mk_module "sfalias" in
  let b = Builder.for_module m in
  let f =
    Builder.start_function b m ~linkage:External "f" Ltype.int_
      [ ("p", Ltype.pointer Ltype.int_); ("q", Ltype.pointer Ltype.int_) ]
  in
  let p = Varg (List.nth f.fargs 0) in
  let q = Varg (List.nth f.fargs 1) in
  ignore (Builder.build_store b (Vconst (cint Ltype.Int 1L)) p);
  ignore (Builder.build_store b (Vconst (cint Ltype.Int 2L)) q);
  let v = Builder.build_load b p in
  ignore (Builder.build_ret b (Some v));
  ignore (Pass.run_pass Storeforward.pass m);
  Verify.assert_valid m;
  let f = Option.get (find_func m "f") in
  let loads = fold_instrs (fun n i -> if i.iop = Load then n + 1 else n) 0 f in
  Alcotest.(check int) "aliasing load kept" 1 loads;
  (* and the semantics with p == q must be 2, not 1 *)
  let mach = Llvm_exec.Interp.create m in
  let main_like () =
    let mm = mk_module "caller" in
    ignore mm;
    ()
  in
  ignore main_like;
  ignore mach

let test_storeforward_call_barrier () =
  (* a call to an unknown external function invalidates memory state *)
  let m = mk_module "sfcall" in
  let b = Builder.for_module m in
  let ext =
    mk_func ~linkage:External ~name:"mystery" ~return:Ltype.void
      ~params:[ ("p", Ltype.pointer Ltype.int_) ] ()
  in
  add_func m ext;
  let _main = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  let p = Builder.build_malloc b Ltype.int_ in
  ignore (Builder.build_store b (Vconst (cint Ltype.Int 5L)) p);
  ignore (Builder.build_call b (Vfunc ext) [ p ]);
  let v = Builder.build_load b p in
  ignore (Builder.build_ret b (Some v));
  ignore (Pass.run_pass Storeforward.pass m);
  let main = Option.get (find_func m "main") in
  let loads = fold_instrs (fun n i -> if i.iop = Load then n + 1 else n) 0 main in
  Alcotest.(check int) "load after unknown call kept" 1 loads

let test_full_devirtualization () =
  (* end to end: every virtual call in a statically-known hierarchy
     resolves to a direct call (paper section 4.1.2) *)
  let src =
    {| class A { public: int x; virtual int f() { return x; } };
       class B : public A { public: virtual int f() { return x * 2; } };
       int main() {
         B* b = new B;
         b->x = 21;
         A* a = (A*)b;
         return a->f();
       } |}
  in
  let m = Llvm_minic.Codegen.compile_string src in
  let before = snapshot (reparse m) in
  Llvm_linker.Link.internalize m;
  Pipelines.optimize_module ~level:3 m;
  Verify.assert_valid m;
  let indirect = ref 0 in
  List.iter
    (fun f ->
      iter_instrs
        (fun i ->
          match i.iop with
          | Call | Invoke -> (
            match call_callee i with
            | Vfunc _ | Vconst (Cfunc _) -> ()
            | _ -> incr indirect)
          | _ -> ())
        f)
    m.mfuncs;
  Alcotest.(check int) "no indirect calls remain" 0 !indirect;
  Alcotest.(check string) "semantics preserved" before (snapshot m)

let more_tests =
  [ Alcotest.test_case "store-forward: field disjointness" `Quick
      test_storeforward_basics;
    Alcotest.test_case "store-forward: may-alias kept" `Quick
      test_storeforward_respects_may_alias;
    Alcotest.test_case "store-forward: call barrier" `Quick
      test_storeforward_call_barrier;
    Alcotest.test_case "whole-program devirtualization" `Quick
      test_full_devirtualization ]

(* -- sccp ------------------------------------------------------------------------ *)

let test_sccp_through_branches () =
  (* x = 5; if (x < 10) y = 1 else y = 2; return y — SCCP proves the
     else-branch dead and y constant, where simple folding cannot *)
  let m = mk_module "sccp" in
  let b = Builder.for_module m in
  let f = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  let t = Builder.append_new_block b f "t" in
  let e = Builder.append_new_block b f "e" in
  let j = Builder.append_new_block b f "j" in
  let x = Builder.build_add b (Vconst (cint Ltype.Int 2L)) (Vconst (cint Ltype.Int 3L)) in
  let c = Builder.build_setlt b x (Vconst (cint Ltype.Int 10L)) in
  ignore (Builder.build_condbr b c t e);
  Builder.position_at_end b t;
  ignore (Builder.build_br b j);
  Builder.position_at_end b e;
  ignore (Builder.build_br b j);
  Builder.position_at_end b j;
  let y =
    Builder.build_phi b Ltype.int_
      [ (Vconst (cint Ltype.Int 1L), t); (Vconst (cint Ltype.Int 2L), e) ]
  in
  ignore (Builder.build_ret b (Some y));
  let opt = check_pass_preserves Sccp.pass m in
  let main = Option.get (find_func opt "main") in
  (* the infeasible else-block is deleted and the phi becomes constant *)
  Alcotest.(check bool) "dead branch removed" true
    (not (List.exists (fun blk -> blk.bname = "e") main.fblocks));
  Alcotest.(check int) "phi resolved" 0 (count_op opt Phi);
  Alcotest.(check string) "constant result" "ret 1|" (snapshot opt)

let test_sccp_loop_invariant_condition () =
  (* a loop whose bound is constant: sccp must not break it *)
  let m = fact_with_main () in
  ignore (Pass.run_pass Mem2reg.pass m);
  ignore (check_pass_preserves Sccp.pass m)

(* -- licm ------------------------------------------------------------------------ *)

let test_licm_hoists () =
  let m = mk_module "licm" in
  let b = Builder.for_module m in
  let f =
    Builder.start_function b m ~linkage:External "main" Ltype.int_ []
  in
  let pre = Builder.insertion_block b in
  let loop = Builder.append_new_block b f "loop" in
  let exit_ = Builder.append_new_block b f "exit" in
  ignore (Builder.build_br b loop);
  Builder.position_at_end b loop;
  let i =
    Builder.build_phi b Ltype.int_ [ (Vconst (cint Ltype.Int 0L), pre) ]
  in
  (* invariant computation inside the loop *)
  let inv =
    Builder.build_mul b (Vconst (cint Ltype.Int 6L)) (Vconst (cint Ltype.Int 7L))
  in
  let i2 = Builder.build_add b i (Vconst (cint Ltype.Int 1L)) in
  (match i with
  | Vinstr phi -> phi_add_incoming phi i2 loop
  | _ -> assert false);
  let c = Builder.build_setlt b i2 (Vconst (cint Ltype.Int 5L)) in
  ignore (Builder.build_condbr b c loop exit_);
  Builder.position_at_end b exit_;
  ignore (Builder.build_ret b (Some (Builder.build_add b i2 inv)));
  let opt = check_pass_preserves Licm.pass m in
  let main = Option.get (find_func opt "main") in
  let entry = entry_block main in
  let mul_in_entry =
    List.exists (fun ins -> ins.iop = Mul) entry.instrs
  in
  Alcotest.(check bool) "multiply hoisted to the preheader" true mul_in_entry

(* -- bounds checking -------------------------------------------------------------- *)

let test_boundscheck_insert_and_trap () =
  let src =
    {| int main(int k) {
         int buf[8];
         for (int i = 0; i < 8; i++) buf[i] = i;
         return buf[k];
       } |}
  in
  let m = Llvm_minic.Codegen.compile_string src in
  let inserted = Boundscheck.insert m in
  Verify.assert_valid m;
  Alcotest.(check bool) "checks inserted" true (inserted > 0);
  let run k =
    let mach = Llvm_exec.Interp.create m in
    let main = Option.get (find_func m "main") in
    (Llvm_exec.Interp.run_function mach main [ Llvm_exec.Interp.Rint (Ltype.Int, k) ])
      .Llvm_exec.Interp.status
  in
  (match run 3L with
  | `Returned (Llvm_exec.Interp.Rint (_, v)) -> Alcotest.(check int64) "in bounds" 3L v
  | _ -> Alcotest.fail "in-bounds access failed");
  match run 99L with
  | `Trapped msg ->
    Alcotest.(check bool) "bounds trap" true
      (Astring_contains.contains msg "out of bounds")
  | _ -> Alcotest.fail "expected a bounds trap"

let test_boundscheck_elimination () =
  (* masked indices and repeated checks are provably safe *)
  let src =
    {| int main(int k) {
         int buf[16];
         for (int i = 0; i < 16; i++) buf[i] = i;
         int a = buf[k & 15];       // masked below the bound
         int b = buf[k & 15];       // dominated duplicate
         return a + b;
       } |}
  in
  let m = Llvm_minic.Codegen.compile_string src in
  ignore (Pass.run_pass Mem2reg.pass m);
  ignore (Pass.run_pass Gvn.pass m);
  let inserted = Boundscheck.insert m in
  Alcotest.(check bool) "checks inserted" true (inserted >= 2);
  let eliminated = Boundscheck.eliminate m in
  Verify.assert_valid m;
  Alcotest.(check bool)
    (Printf.sprintf "all %d checks eliminated (%d removed)" inserted eliminated)
    true (eliminated = inserted)

(* -- range-driven propagation ------------------------------------------------------ *)

let test_rangeprop_interprocedural () =
  (* SCCP sees classify's argument as overdefined (two different call
     sites); the range analysis joins them to [3,7] and folds x < 10 *)
  let src =
    {| static int classify(int x) {
         if (x < 10) return 1;
         return 0;
       }
       int main() { return classify(3) + classify(7); } |}
  in
  let m = Llvm_minic.Codegen.compile_string src in
  ignore (Pass.run_pass Mem2reg.pass m);
  Alcotest.(check bool) "comparison present before" true (count_op m SetLT > 0);
  let opt = check_pass_preserves Rangeprop.pass m in
  Alcotest.(check int) "comparison folded away" 0 (count_op opt SetLT)

let test_rangeprop_div_trap_preserved () =
  let m = mk_module "rpdiv" in
  let b = Builder.for_module m in
  let f =
    Builder.start_function b m ~linkage:External "main" Ltype.int_
      [ ("c", Ltype.bool_) ]
  in
  let c = Varg (List.hd f.fargs) in
  (* divisor select c 2 2 has range [2,2]: provably nonzero, folds to 5 *)
  let safe =
    Builder.build_div b
      (Vconst (cint Ltype.Int 10L))
      (Builder.build_select b c
         (Vconst (cint Ltype.Int 2L))
         (Vconst (cint Ltype.Int 2L)))
  in
  (* divisor cast(c) has range [0,1]: the result range is the singleton
     [10] because ranges only describe completing executions, but
     folding it would erase the c = false trap *)
  let trap =
    Builder.build_div b
      (Vconst (cint Ltype.Int 10L))
      (Builder.build_cast b c Ltype.int_)
  in
  ignore (Builder.build_ret b (Some (Builder.build_add b safe trap)));
  ignore (Pass.run_pass Rangeprop.pass m);
  Verify.assert_valid m;
  Alcotest.(check int) "maybe-trapping division kept" 1 (count_op m Div)

let test_boundscheck_range_elimination () =
  (* neither index is a constant or a masked value, so only the value
     ranges ([3,5] for the phi, [0,9] for the induction variable) prove
     these accesses safe *)
  let src =
    {| int main(int k) {
         int buf[10];
         for (int i = 0; i < 10; i++) buf[i] = i;
         int idx = 3;
         if (k > 0) idx = 5;
         return buf[idx];
       } |}
  in
  let m = Llvm_minic.Codegen.compile_string src in
  ignore (Pass.run_pass Mem2reg.pass m);
  let inserted = Boundscheck.insert m in
  Alcotest.(check bool) "checks inserted" true (inserted > 0);
  let eliminated = Boundscheck.eliminate m in
  Verify.assert_valid m;
  Alcotest.(check int)
    (Printf.sprintf "all %d checks eliminated via ranges" inserted)
    inserted eliminated

let even_more_tests =
  [ Alcotest.test_case "sccp resolves branch-dependent constants" `Quick
      test_sccp_through_branches;
    Alcotest.test_case "sccp preserves loops" `Quick test_sccp_loop_invariant_condition;
    Alcotest.test_case "licm hoists invariants" `Quick test_licm_hoists;
    Alcotest.test_case "bounds checks insert and trap" `Quick
      test_boundscheck_insert_and_trap;
    Alcotest.test_case "bounds checks eliminate" `Quick test_boundscheck_elimination;
    Alcotest.test_case "rangeprop folds interprocedural facts" `Quick
      test_rangeprop_interprocedural;
    Alcotest.test_case "rangeprop keeps maybe-trapping division" `Quick
      test_rangeprop_div_trap_preserved;
    Alcotest.test_case "range facts eliminate variable-index checks" `Quick
      test_boundscheck_range_elimination ]

(* -- interprocedural constant propagation ------------------------------------------ *)

let test_ipconstprop () =
  let src =
    {| static int scaled(int x, int factor) { return x * factor; }
       int main() {
         // every site passes factor = 10
         return scaled(1, 10) + scaled(2, 10) + scaled(3, 10);
       } |}
  in
  let m = Llvm_minic.Codegen.compile_string src in
  ignore (Pass.run_pass Mem2reg.pass m);
  let before = snapshot (reparse m) in
  let s = Ipconstprop.run m in
  Verify.assert_valid m;
  Alcotest.(check int) "factor propagated" 1 s.Ipconstprop.propagated_args;
  (* the formal is now dead; DAE removes it *)
  let d = Dae.run m in
  Alcotest.(check int) "argument then removed" 1 d.Dae.removed_args;
  Verify.assert_valid m;
  Alcotest.(check string) "semantics preserved" before (snapshot m)

let test_ipconstprop_const_return () =
  let src =
    {| static int version() { return 7; }
       int main() { return version() + version(); } |}
  in
  let m = Llvm_minic.Codegen.compile_string src in
  ignore (Pass.run_pass Mem2reg.pass m);
  let s = Ipconstprop.run m in
  Alcotest.(check int) "return propagated" 1 s.Ipconstprop.propagated_returns;
  Verify.assert_valid m;
  Alcotest.(check string) "result" "ret 14|" (snapshot m)

(* -- dead type elimination ----------------------------------------------------------- *)

let test_deadtypes () =
  let m = mk_module "dt" in
  define_type m "used" (Ltype.struct_ [ Ltype.int_ ]);
  define_type m "dead" (Ltype.struct_ [ Ltype.double ]);
  define_type m "dead_chain" (Ltype.struct_ [ Ltype.pointer (Ltype.Named "dead") ]);
  let b = Builder.for_module m in
  let _main = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  let p = Builder.build_malloc b (Ltype.Named "used") in
  let slot = Builder.build_gep_const b p [ 0; 0 ] in
  ignore (Builder.build_store b (Vconst (cint Ltype.Int 9L)) slot);
  let v = Builder.build_load b slot in
  ignore (Builder.build_ret b (Some v));
  let removed = Deadtypes.run m in
  Alcotest.(check int) "two dead names removed" 2 removed;
  Alcotest.(check bool) "used survives" true (Hashtbl.mem m.mtypes "used");
  Verify.assert_valid m;
  Alcotest.(check string) "still runs" "ret 9|" (snapshot m)

let final_tests =
  [ Alcotest.test_case "ipconstprop: common arguments" `Quick test_ipconstprop;
    Alcotest.test_case "ipconstprop: constant returns" `Quick
      test_ipconstprop_const_return;
    Alcotest.test_case "dead type elimination" `Quick test_deadtypes ]

(* -- automatic pool allocation ------------------------------------------------------ *)

let test_poolalloc_local_structure () =
  (* a list built and traversed locally: its node cannot escape, so the
     allocations segregate into a pool that is bulk-destroyed on return *)
  let src =
    {| struct Node { int v; struct Node* next; };
       static int sum_local(int n) {
         struct Node* head = null;
         for (int i = 0; i < n; i++) {
           struct Node* x = new struct Node;
           x->v = i; x->next = head; head = x;
         }
         int s = 0;
         while (head != null) { s += head->v; head = head->next; }
         return s;
       }
       int main() { return sum_local(10) + sum_local(5); } |}
  in
  let m = Llvm_minic.Codegen.compile_string src in
  ignore (Pass.run_pass Mem2reg.pass m);
  let before = snapshot (reparse m) in
  let s = Poolalloc.run m in
  Verify.assert_valid m;
  Alcotest.(check int) "one pool for the list" 1 s.Poolalloc.pools_created;
  Alcotest.(check int) "the malloc site pooled" 1 s.Poolalloc.mallocs_pooled;
  Alcotest.(check string) "semantics preserved" before (snapshot m);
  (* the rewritten function calls the pool runtime *)
  let f = Option.get (find_func m "sum_local") in
  let calls name =
    fold_instrs
      (fun n i ->
        match i.iop with
        | Call -> (
          match call_callee i with
          | Vfunc g when g.fname = name -> n + 1
          | _ -> n)
        | _ -> n)
      0 f
  in
  Alcotest.(check int) "poolinit once" 1 (calls "llvm_poolinit");
  Alcotest.(check int) "pooldestroy on the return" 1 (calls "llvm_pooldestroy");
  Alcotest.(check bool) "poolalloc used" true (calls "llvm_poolalloc" >= 1)

let test_poolalloc_skips_escaping () =
  (* the allocation is returned: it must stay an ordinary malloc *)
  let src =
    {| struct Node { int v; struct Node* next; };
       static struct Node* make(int v) {
         struct Node* x = new struct Node;
         x->v = v;
         return x;
       }
       int main() {
         struct Node* a = make(4);
         int r = a->v;
         delete a;
         return r;
       } |}
  in
  let m = Llvm_minic.Codegen.compile_string src in
  ignore (Pass.run_pass Mem2reg.pass m);
  let before = snapshot (reparse m) in
  let s = Poolalloc.run m in
  Verify.assert_valid m;
  Alcotest.(check int) "no pool for escaping data" 0 s.Poolalloc.pools_created;
  Alcotest.(check string) "semantics preserved" before (snapshot m)

let test_poolalloc_explicit_free () =
  (* frees of pooled pointers become poolfree; double-destroy must not trap *)
  let src =
    {| struct Buf { int data; };
       static int churn(int n) {
         int acc = 0;
         for (int i = 0; i < n; i++) {
           struct Buf* b = new struct Buf;
           b->data = i;
           acc += b->data;
           delete b;
         }
         return acc;
       }
       int main() { return churn(20); } |}
  in
  let m = Llvm_minic.Codegen.compile_string src in
  ignore (Pass.run_pass Mem2reg.pass m);
  let before = snapshot (reparse m) in
  let s = Poolalloc.run m in
  Verify.assert_valid m;
  Alcotest.(check bool) "pooled" true (s.Poolalloc.pools_created >= 1);
  Alcotest.(check bool) "frees rewritten" true (s.Poolalloc.frees_pooled >= 1);
  Alcotest.(check string) "semantics preserved" before (snapshot m)

let pool_tests =
  [ Alcotest.test_case "poolalloc: local structures pooled" `Quick
      test_poolalloc_local_structure;
    Alcotest.test_case "poolalloc: escaping data untouched" `Quick
      test_poolalloc_skips_escaping;
    Alcotest.test_case "poolalloc: explicit frees" `Quick
      test_poolalloc_explicit_free ]

let tests = tests @ more_tests @ even_more_tests @ final_tests @ pool_tests

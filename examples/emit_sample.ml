(* Shared by the examples: when LLVM_SAMPLE_DIR names an existing
   directory, write the module's textual IR there so external tools can
   audit what the examples build — CI runs llvm-lint over the emitted
   .ll files and fails on error-severity findings. *)

let emit (name : string) (m : Llvm_ir.Ir.modul) : unit =
  match Sys.getenv_opt "LLVM_SAMPLE_DIR" with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir (name ^ ".ll") in
    let oc = open_out path in
    output_string oc (Llvm_ir.Printer.module_to_string m);
    close_out oc;
    Fmt.pr "sample IR written to %s@." path

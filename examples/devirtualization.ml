(* Devirtualization: the paper's section 4.1.2 claims that with classes
   lowered to nested structs and vtables lowered to constant arrays of
   typed function pointers, "virtual method call resolution can be
   performed by the optimizer as effectively as by a typical source
   compiler".

   This example builds a small shape hierarchy, shows the lowered types
   and vtable globals, and then watches the optimizer resolve a virtual
   call: the vtable load constant-folds, the indirect call becomes
   direct, the inliner integrates it, and dead-global elimination
   deletes the unused vtables.

   Run with:  dune exec examples/devirtualization.exe *)

let source =
  {|
extern void print_str(char* s);
extern void print_int(int x);

class Shape {
  public:
  int id;
  virtual int area() { return 0; }
  virtual int perimeter() { return 0; }
  int describe() { return id * 10000 + area() * 100 + perimeter(); }
};

class Rect : public Shape {
  public:
  int w;
  int h;
  virtual int area() { return w * h; }
  virtual int perimeter() { return 2 * (w + h); }
};

class Square : public Rect {
  public:
  virtual int area() { return w * w; }
  virtual int perimeter() { return 4 * w; }
};

int main() {
  // the static type is exact here, so the optimizer can resolve the
  // virtual dispatch at compile time
  Square* s = new Square;
  s->id = 7;
  s->w = 5;
  int direct = s->area() + s->perimeter();

  // a base-typed pointer: resolvable too, because the vtable installed
  // by `new Square` is a known constant
  Shape* sh = (Shape*)s;
  int via_base = sh->describe();

  print_str("direct=");
  print_int(direct);
  print_str(" via_base=");
  print_int(via_base);
  return 0;
}
|}

let count_ops (m : Llvm_ir.Ir.modul) =
  let loads = ref 0 and indirect = ref 0 and direct = ref 0 in
  List.iter
    (fun f ->
      Llvm_ir.Ir.iter_instrs
        (fun i ->
          match i.Llvm_ir.Ir.iop with
          | Llvm_ir.Ir.Load -> incr loads
          | Llvm_ir.Ir.Call | Llvm_ir.Ir.Invoke -> (
            match Llvm_ir.Ir.call_callee i with
            | Llvm_ir.Ir.Vfunc _ | Llvm_ir.Ir.Vconst (Llvm_ir.Ir.Cfunc _) ->
              incr direct
            | _ -> incr indirect)
          | _ -> ())
        f)
    m.Llvm_ir.Ir.mfuncs;
  (!loads, !indirect, !direct)

let run (m : Llvm_ir.Ir.modul) =
  match Llvm_exec.Interp.run_main m with
  | { Llvm_exec.Interp.status = `Returned _; output; _ } -> output
  | _ -> failwith "run failed"

let () =
  let m = Llvm_minic.Codegen.compile_string ~name:"shapes" source in
  Llvm_ir.Verify.assert_valid m;

  (* the lowering the paper describes: nested structure types + vtables *)
  Fmt.pr "--- lowered class types (base classes become nested structs) ---@.";
  List.iter
    (fun name ->
      match Hashtbl.find_opt m.Llvm_ir.Ir.mtypes name with
      | Some ty -> Fmt.pr "%%%s = type %a@." name Llvm_ir.Ltype.pp ty
      | None -> ())
    [ "Shape"; "Rect"; "Square"; "Shape.vtbl"; "Square.vtbl" ];
  Fmt.pr "@.--- vtable globals (constant arrays of typed fn pointers) ---@.";
  List.iter
    (fun g ->
      if g.Llvm_ir.Ir.gconstant then Llvm_ir.Printer.pp_gvar Fmt.stdout g)
    m.Llvm_ir.Ir.mglobals;

  let loads0, ind0, dir0 = count_ops m in
  Fmt.pr "@.before optimization: %d loads, %d indirect calls, %d direct calls@."
    loads0 ind0 dir0;
  let out0 = run m in

  (* whole-program optimization: constprop folds the vtable loads, the
     calls become direct, the inliner integrates the accessors, DGE
     removes the now-unreferenced vtables and methods *)
  Llvm_linker.Link.internalize m;
  Llvm_transforms.Pipelines.optimize_module ~level:3 m;
  Llvm_ir.Verify.assert_valid m;
  let loads1, ind1, dir1 = count_ops m in
  Fmt.pr "after optimization:  %d loads, %d indirect calls, %d direct calls@."
    loads1 ind1 dir1;
  Fmt.pr "functions remaining: %s@."
    (String.concat ", "
       (List.map (fun f -> f.Llvm_ir.Ir.fname) m.Llvm_ir.Ir.mfuncs));
  let out1 = run m in
  assert (out0 = out1);
  Fmt.pr "output (identical before/after): %s@." out1;
  Fmt.pr "--- main after devirtualization + inlining ---@.%s@."
    (Llvm_ir.Printer.func_to_string m.Llvm_ir.Ir.mtypes
       (Option.get (Llvm_ir.Ir.find_func m "main")));
  Emit_sample.emit "devirtualization" m

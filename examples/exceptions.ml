(* Exceptions: reproduces Figures 1-3 of the paper.

   Figure 1 is a C++ fragment where a local object's destructor must run
   if a call throws; Figure 2 shows the lowering to invoke/unwind;
   Figure 3 shows `throw 1` becoming calls into a small runtime library
   (the llvm_cxxeh runtime) followed by `unwind`.

   MiniC has no destructors, so the cleanup is written explicitly in the
   handler — the generated IR has exactly the paper's shape: the call
   becomes an `invoke`, the cleanup block runs the "destructor" and then
   continues unwinding with `unwind`.

   Run with:  dune exec examples/exceptions.exe *)

let source =
  {|
extern void print_str(char* s);
extern void print_int(int x);

struct AClass { int resource; };

static struct AClass* the_obj = null;

// "constructor" and "destructor" for the paper's AClass
struct AClass* aclass_create() {
  struct AClass* o = new struct AClass;
  o->resource = 1;
  print_str("[ctor]");
  return o;
}
void aclass_destroy(struct AClass* o) {
  print_str("[dtor]");
  o->resource = 0;
  delete o;
}

// Figure 1's func(): "might throw; must execute destructor"
void func(int x) {
  if (x > 3) throw 42;   // Figure 3: runtime-library call + unwind
  print_str("[func ok]");
}

// Figure 1's enclosing scope, with the destructor made explicit:
// try { AClass Obj; func(); } — on unwind the object is destroyed and
// unwinding continues (the paper's Figure 2 control flow).
void scope(int x) {
  struct AClass* obj = aclass_create();
  try {
    func(x);           // becomes: invoke void %func(...) to ... unwind to ...
  } catch (double never) {
    // no double is ever thrown: this handler only exists so the int
    // exception keeps unwinding after the cleanup, like Figure 2
    print_str("[unreachable]");
  }
  aclass_destroy(obj);  // normal-path destruction
}

int main(int argc) {
  try {
    scope(argc);
    print_str("[no throw]");
  } catch (int e) {
    print_str("[caught ");
    print_int(e);
    print_str("]");
  }
  return 0;
}
|}

let () =
  let m = Llvm_minic.Codegen.compile_string ~name:"figures_1_to_3" source in
  Llvm_ir.Verify.assert_valid m;

  (* Show the lowering of the paper's figures. *)
  let show name =
    match Llvm_ir.Ir.find_func m name with
    | Some f ->
      Fmt.pr "--- %s ---@.%s@." name
        (Llvm_ir.Printer.func_to_string m.Llvm_ir.Ir.mtypes f)
    | None -> ()
  in
  Fmt.pr "Figure 3's shape (throw = runtime call + unwind):@.";
  show "func";
  Fmt.pr "Figure 2's shape (invoke ... to ... unwind to ...):@.";
  show "scope";

  (* Execute both paths. *)
  let run argc =
    let mach = Llvm_exec.Interp.create m in
    let main = Option.get (Llvm_ir.Ir.find_func m "main") in
    let r =
      Llvm_exec.Interp.run_function mach main
        [ Llvm_exec.Interp.Rint (Llvm_ir.Ltype.Int, Int64.of_int argc) ]
    in
    Fmt.pr "main(%d): %s@." argc r.Llvm_exec.Interp.output
  in
  run 1; (* no throw: ctor, func ok, dtor, no throw *)
  run 5; (* throw: ctor, caught 42 — and the handler in scope() re-unwinds *)

  (* The interprocedural angle (section 4.1.2): after inlining, unwinds
     whose target is in the same function become direct branches, and
     invokes of functions that cannot throw become plain calls. *)
  Llvm_transforms.Pipelines.optimize_module ~level:3 m;
  let invokes = ref 0 and unwinds = ref 0 in
  List.iter
    (fun f ->
      Llvm_ir.Ir.iter_instrs
        (fun i ->
          match i.Llvm_ir.Ir.iop with
          | Llvm_ir.Ir.Invoke -> incr invokes
          | Llvm_ir.Ir.Unwind -> incr unwinds
          | _ -> ())
        f)
    m.Llvm_ir.Ir.mfuncs;
  Fmt.pr "after link-time optimization: %d invokes, %d unwinds remain@."
    !invokes !unwinds;
  run 1;
  run 5;
  Emit_sample.emit "exceptions" m

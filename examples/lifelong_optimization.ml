(* Lifelong optimization: the Figure 4 pipeline end to end.

   Two "translation units" are compiled separately to IR (section 3.2),
   linked with interprocedural optimization (3.3), code-generated with
   the bitcode preserved in the executable (3.4), profiled during an
   end-user run (3.5), and reoptimized in idle time using that field
   profile (3.6) — then run again, faster.

   Run with:  dune exec examples/lifelong_optimization.exe *)

let library_unit =
  {|
// matrix-ish kernel library, compiled separately
static int mix_one(int v, int salt) {
  int acc = v;
  acc = (acc * 1103515245 + salt) & 1073741823;
  acc = acc ^ (acc >> 7);
  acc = acc + (acc << 3);
  acc = acc & 16777215;
  acc = acc - (acc >> 2);
  acc = acc ^ (acc >> 11);
  acc = acc + v;
  acc = acc ^ (acc >> 5);
  acc = acc + (acc << 1);
  acc = acc & 536870911;
  acc = acc - (salt >> 1);
  acc = acc ^ (acc >> 13);
  acc = acc + (salt * 3);
  acc = acc | (acc >> 9);
  acc = acc ^ (v << 2);
  acc = acc & 268435455;
  return acc;
}
int kernel(int row, int salt) {
  int acc = 0;
  for (int c = 0; c < 4; c++) acc ^= mix_one(row + c, salt);
  return acc;
}
int rarely_used(int x) { return kernel(x, 1) + kernel(x, 2); }
|}

let app_unit =
  {|
extern int kernel(int row, int salt);
extern int rarely_used(int x);
extern void print_str(char* s);
extern void print_int(int x);

int main() {
  int total = 0;
  for (int round = 0; round < 800; round++)
    total ^= kernel(round & 63, 12345);
  if ((total & 8191) == 111) total ^= rarely_used(total);
  print_str("total=");
  print_int(total & 65535);
  return 0;
}
|}

let () =
  (* 1. separate compilation *)
  let lib = Llvm_minic.Codegen.compile_string ~name:"libkernel" library_unit in
  let app = Llvm_minic.Codegen.compile_string ~name:"app" app_unit in
  Fmt.pr "compiled 2 translation units: %d + %d instructions@."
    (Llvm_ir.Ir.module_instr_count lib)
    (Llvm_ir.Ir.module_instr_count app);

  (* 2+3. link, internalize, link-time IPO, offline codegen *)
  let exe = Llvm_linker.Lifelong.build [ lib; app ] in
  Fmt.pr
    "linked executable: %d instrs IR, %d bytes bitcode kept alongside %d \
     bytes of X86 code@."
    (Llvm_ir.Ir.module_instr_count exe.Llvm_linker.Lifelong.program)
    (String.length exe.Llvm_linker.Lifelong.bitcode)
    exe.Llvm_linker.Lifelong.native_x86_bytes;

  (* 4. an end-user run, with the lightweight profiling instrumentation *)
  let report = Llvm_linker.Lifelong.run_in_the_field exe in
  let r1 = report.Llvm_linker.Lifelong.result in
  Fmt.pr "field run 1: output %S, %d instructions@." r1.Llvm_exec.Interp.output
    r1.Llvm_exec.Interp.instructions;
  Fmt.pr "profile (function entry counts, from the user's run):@.";
  List.iteri
    (fun k (name, count) ->
      if k < 4 then Fmt.pr "  %-16s %8d@." name count)
    (Llvm_linker.Lifelong.hot_functions exe report);

  (* 5. idle-time reoptimization driven by that profile *)
  let reopt = Llvm_linker.Lifelong.reoptimize_with_profile exe report in
  Fmt.pr "idle-time reoptimizer: %d hot call sites inlined (%d -> %d instrs)@."
    reopt.Llvm_linker.Lifelong.inlined_hot_calls
    reopt.Llvm_linker.Lifelong.before_instrs
    reopt.Llvm_linker.Lifelong.after_instrs;

  (* 6. the next run is faster, with identical behaviour *)
  let report2 = Llvm_linker.Lifelong.run_in_the_field exe in
  let r2 = report2.Llvm_linker.Lifelong.result in
  assert (r1.Llvm_exec.Interp.output = r2.Llvm_exec.Interp.output);
  Fmt.pr "field run 2: output %S, %d instructions (%.1f%% fewer)@."
    r2.Llvm_exec.Interp.output r2.Llvm_exec.Interp.instructions
    (100.
    *. (1.
       -. float_of_int r2.Llvm_exec.Interp.instructions
          /. float_of_int r1.Llvm_exec.Interp.instructions));
  Emit_sample.emit "lifelong_optimization" exe.Llvm_linker.Lifelong.program

(* Quickstart: build a module with the IRBuilder API, verify it, optimize
   it, print both textual and binary forms, and execute it.

   Run with:  dune exec examples/quickstart.exe *)

open Llvm_ir
open Ir

let () =
  (* 1. Build `int sum_squares(int n)` = 1² + 2² + ... + n², the long way:
     a stack slot per variable, exactly what a front-end would emit. *)
  let m = mk_module "quickstart" in
  let b = Builder.for_module m in
  let f =
    Builder.start_function b m ~linkage:External "sum_squares" Ltype.int_
      [ ("n", Ltype.int_) ]
  in
  let n = Varg (List.hd f.fargs) in
  let acc = Builder.build_alloca b ~name:"acc" Ltype.int_ in
  let i = Builder.build_alloca b ~name:"i" Ltype.int_ in
  let c0 = Vconst (cint Ltype.Int 0L) and c1 = Vconst (cint Ltype.Int 1L) in
  ignore (Builder.build_store b c0 acc);
  ignore (Builder.build_store b c1 i);
  let cond = Builder.append_new_block b f "cond" in
  let body = Builder.append_new_block b f "body" in
  let exit_ = Builder.append_new_block b f "exit" in
  ignore (Builder.build_br b cond);
  Builder.position_at_end b cond;
  let iv = Builder.build_load b i in
  ignore (Builder.build_condbr b (Builder.build_setle b iv n) body exit_);
  Builder.position_at_end b body;
  let av = Builder.build_load b acc in
  let sq = Builder.build_mul b iv iv in
  ignore (Builder.build_store b (Builder.build_add b av sq) acc);
  ignore (Builder.build_store b (Builder.build_add b iv c1) i);
  ignore (Builder.build_br b cond);
  Builder.position_at_end b exit_;
  ignore (Builder.build_ret b (Some (Builder.build_load b acc)));

  (* a main that calls it *)
  let main = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  ignore main;
  let r = Builder.build_call b (Vfunc f) [ Vconst (cint Ltype.Int 10L) ] in
  ignore (Builder.build_ret b (Some r));

  (* 2. Verify. *)
  Verify.assert_valid m;
  Fmt.pr "--- as emitted by the front-end (allocas, no SSA) ---@.%s@."
    (Printer.func_to_string m.mtypes f);

  (* 3. Optimize: stack promotion builds SSA (paper section 3.2), then
     the standard cleanups. *)
  Llvm_transforms.Pipelines.optimize_module ~level:2 m;
  Fmt.pr "--- after mem2reg + cleanups (SSA with phis) ---@.%s@."
    (Printer.func_to_string m.mtypes f);

  (* 4. The three equivalent representations (paper section 2.5). *)
  let text = Printer.module_to_string m in
  let bitcode, stats = Llvm_bitcode.Encoder.encode m in
  Fmt.pr "textual form: %d bytes; bitcode: %d bytes (%d one-word instrs)@."
    (String.length text) (String.length bitcode)
    stats.Llvm_bitcode.Encoder.one_word_instrs;
  let reparsed = Llvm_asm.Parser.parse_module ~name:m.mname text in
  let decoded = Llvm_bitcode.Decoder.decode bitcode in
  assert (Printer.module_to_string reparsed = text);
  assert (Printer.module_to_string decoded = text);
  Fmt.pr "round-trips through text and bitcode verified@.";

  (* 5. Execute. *)
  (match (Llvm_exec.Interp.run_main m).Llvm_exec.Interp.status with
  | `Returned v -> Fmt.pr "sum_squares(10) = %a@." Llvm_exec.Interp.pp_rtval v
  | _ -> failwith "execution failed");

  (* 6. Generate native code for both targets (paper section 3.4). *)
  List.iter
    (fun t ->
      let r = Llvm_codegen.Emit.compile_module t m in
      Fmt.pr "%s code: %d bytes@." r.Llvm_codegen.Emit.target
        r.Llvm_codegen.Emit.code_bytes)
    Llvm_codegen.Target.targets;
  Emit_sample.emit "quickstart" m

(* SAFECode: the safe execution environment of paper section 4.1.2,
   in miniature.

   SAFECode "relies on the type information in LLVM ... to check and
   enforce type safety", "relies on the array type information ... to
   enforce array bounds safety, and uses interprocedural analysis to
   eliminate runtime bounds checks", and replaces garbage collection
   with "a variant of automatic pool allocation".  This example runs
   that whole recipe on one program:

   1. DSA reports how much of the program is provably typed;
   2. every variable array index gets a runtime bounds check;
   3. static analysis eliminates the provably safe checks;
   4. non-escaping heap data moves into pools (bulk deallocation, the
      memory-management half of the SAFECode story);
   5. the hardened program still runs, and a corrupted index now traps
      instead of silently reading out of bounds.

   Run with:  dune exec examples/safecode.exe *)

let source =
  {|
extern void print_str(char* s);
extern void print_int(int x);

struct Packet { int size; int payload[14]; struct Packet* next; };

static int checksum(struct Packet* p) {
  int acc = 0;
  for (int i = 0; i < p->size; i++) acc ^= p->payload[i];   // size <= 14?
  return acc;
}

static int process(int npackets, int corrupt) {
  struct Packet* head = null;
  for (int k = 0; k < npackets; k++) {
    struct Packet* p = new struct Packet;
    p->size = 8 + (k % 7);              // always in bounds
    for (int i = 0; i < p->size; i++) p->payload[i] = k * 31 + i;
    p->next = head;
    head = p;
  }
  if (corrupt != 0) head->size = 99;    // attacker-controlled length
  int total = 0;
  struct Packet* it = head;
  while (it != null) { total ^= checksum(it); it = it->next; }
  return total & 65535;
}

int main(int corrupt) {
  int r = process(6, corrupt);
  print_str("total=");
  print_int(r);
  return r;
}
|}

let () =
  let m = Llvm_minic.Codegen.compile_string ~name:"safecode" source in
  Llvm_ir.Verify.assert_valid m;
  ignore
    (Llvm_transforms.Pass.run_pass Llvm_transforms.Mem2reg.pass m);

  (* 1. the type-safety report *)
  let dsa_stats = Llvm_analysis.Dsa.compute_stats m in
  Fmt.pr "DSA: %.1f%% of static memory accesses provably typed@."
    dsa_stats.Llvm_analysis.Dsa.typed_percent;

  (* 2 + 3. bounds checking with static elimination *)
  let inserted = Llvm_transforms.Boundscheck.insert m in
  let eliminated = Llvm_transforms.Boundscheck.eliminate m in
  Fmt.pr "bounds checks: %d inserted, %d eliminated statically, %d remain@."
    inserted eliminated (inserted - eliminated);

  (* 4. pool allocation for the non-escaping packet list *)
  let pools = Llvm_transforms.Poolalloc.run m in
  Fmt.pr "pool allocation: %d pools, %d allocation sites segregated@."
    pools.Llvm_transforms.Poolalloc.pools_created
    pools.Llvm_transforms.Poolalloc.mallocs_pooled;
  Llvm_ir.Verify.assert_valid m;
  Emit_sample.emit "safecode" m;

  (* 5. behaviour: intact input runs; corrupted input traps at the check *)
  let run corrupt =
    let mach = Llvm_exec.Interp.create m in
    let main = Option.get (Llvm_ir.Ir.find_func m "main") in
    Llvm_exec.Interp.run_function mach main
      [ Llvm_exec.Interp.Rint (Llvm_ir.Ltype.Int, corrupt) ]
  in
  (match (run 0L).Llvm_exec.Interp.status with
  | `Returned v ->
    Fmt.pr "honest run: returned %a@." Llvm_exec.Interp.pp_rtval v
  | _ -> failwith "honest run failed");
  match (run 1L).Llvm_exec.Interp.status with
  | `Trapped msg -> Fmt.pr "corrupted run: TRAPPED (%s) — memory safe@." msg
  | `Returned v ->
    Fmt.pr "corrupted run returned %a (should have trapped!)@."
      Llvm_exec.Interp.pp_rtval v;
    exit 1
  | _ -> failwith "unexpected outcome"

(** Persistent execution profiles (paper section 3.5).

    A profile maps stable {e names} — not process-local ids — to
    saturating weights, so profiles survive the run that produced them:
    written to disk, shipped home from the field, and merged across
    thousands of heterogeneous runs into one aggregate that drives
    reoptimization (section 4.1's lifelong loop).

    Keys: a block is ["<function>\t<block>"]; a call site is
    ["<function>\t<block>\t<k>"] for the k-th call/invoke instruction
    of the block; targets are callee function names.

    Merging saturates at {!cap} instead of wrapping, making it
    commutative and associative; the optional weight multiplies the
    source first, so a fleet aggregate is independent of arrival
    order. *)

type t = {
  mutable runs : int;  (** runs aggregated into this profile *)
  blocks : (string, int) Hashtbl.t;
  calls : (string, (string, int) Hashtbl.t) Hashtbl.t;
}

(** Saturation bound on every weight. *)
val cap : int

val empty : unit -> t

val block_key : func:string -> block:string -> string
val site_key : func:string -> block:string -> index:int -> string

(** [min cap (a + b)] for non-negative weights. *)
val sat_add : int -> int -> int

(** Convert one instrumented run's id-keyed tables
    ([Interp.machine.block_counts] / [call_counts]) to a one-run,
    name-keyed profile by walking the module it executed. *)
val of_run :
  Llvm_ir.Ir.modul ->
  block_counts:(int, int) Hashtbl.t ->
  call_counts:(int, (int, int) Hashtbl.t) Hashtbl.t ->
  t

(** [merge ?weight dst src] folds [weight] (default 1) simulated
    occurrences of [src] into [dst], saturating at {!cap}. *)
val merge : ?weight:int -> t -> t -> unit

(** Weight of a block; a miss retries with the last dot-suffix of the
    block name stripped ([.spec], [.deopt], [.cont], inliner clones),
    so a profile gathered on the original module still guides layout of
    its speculated/ transformed descendants.  0 when unknown. *)
val block_weight : t -> func:string -> block:string -> int

(** Entry-block weight of a function (0 for declarations). *)
val func_weight : t -> Llvm_ir.Ir.func -> int

(** Observed callees of a call site, hottest first (deterministic:
    count descending, then name). *)
val call_targets :
  t -> func:string -> block:string -> index:int -> (string * int) list

val runs : t -> int
val block_entries : t -> int
val call_sites : t -> int
val total_weight : t -> int

(** Total observed indirect calls, saturating: the sum of every site's
    target counts. *)
val total_calls : t -> int

(** Structural equality (for the merge property tests). *)
val equal : t -> t -> bool

(** {1 Binary format}

    ["LLPF"], a version byte, then length-prefixed sections with
    little-endian 64-bit counts; sections are sorted so equal profiles
    serialize identically. *)

exception Corrupt of string

val to_bytes : t -> string

(** @raise Corrupt on malformed input. *)
val of_bytes : string -> t

val save : string -> t -> unit

(** @raise Corrupt on malformed input. *)
val load : string -> t

val pp : Format.formatter -> t -> unit

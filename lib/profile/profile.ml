(* Persistent execution profiles (paper section 3.5).

   One run of the instrumented engine yields raw block counts and
   indirect-call target counts keyed by in-memory ids.  Ids are
   process-local construction counters, so a profile that must survive
   the run — written to disk, shipped home from the field, merged with
   profiles of other runs of *other builds* of the same program — is
   keyed by stable names instead:

     block   key:  "<function>\t<block>"
     call    key:  "<function>\t<block>\t<k>"   (k-th call/invoke in block)
     target  key:  callee function name

   Weights saturate at [cap] instead of wrapping, so merging is
   commutative and associative: min over a sum of non-negative terms
   commutes.  [merge] applies a run-multiplicity weight first (a fleet
   aggregator that sampled one stored profile w times merges it once
   with [~weight:w]), which keeps the aggregate independent of the
   order profiles arrive in.

   The on-disk format is a little-endian binary with a magic/version
   header; [save]/[load] round-trip exactly ([suite_profile]). *)

open Llvm_ir
open Ir

(* Saturation cap: far above any real count, far below [max_int] so a
   weighted add of two capped values cannot overflow 63-bit ints. *)
let cap = 1 lsl 50

type t = {
  mutable runs : int;  (* runs aggregated into this profile *)
  blocks : (string, int) Hashtbl.t;  (* block key -> executions *)
  calls : (string, (string, int) Hashtbl.t) Hashtbl.t;
      (* call-site key -> callee name -> count *)
}

let empty () : t =
  { runs = 0; blocks = Hashtbl.create 64; calls = Hashtbl.create 16 }

let block_key ~func ~block = func ^ "\t" ^ block
let site_key ~func ~block ~index = Printf.sprintf "%s\t%s\t%d" func block index

let sat_add a b = if a + b >= cap || a + b < 0 then cap else a + b

let sat_scale w v =
  if w <= 0 || v <= 0 then 0
  else if v >= cap / w then cap
  else w * v

let bump tbl key w =
  if w > 0 then
    Hashtbl.replace tbl key
      (sat_add w (Option.value ~default:0 (Hashtbl.find_opt tbl key)))

(* -- Extraction from one instrumented run --------------------------------- *)

(* [of_run] converts the machine's id-keyed tables to name keys by
   walking the module the run executed.  Blocks and call sites the
   tables do not mention are simply absent (weight 0). *)
let of_run (m : modul) ~(block_counts : (int, int) Hashtbl.t)
    ~(call_counts : (int, (int, int) Hashtbl.t) Hashtbl.t) : t =
  let p = empty () in
  p.runs <- 1;
  let fname_of_fid = Hashtbl.create 32 in
  List.iter (fun f -> Hashtbl.replace fname_of_fid f.fid f.fname) m.mfuncs;
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          (match Hashtbl.find_opt block_counts b.bid with
          | Some n when n > 0 ->
            bump p.blocks (block_key ~func:f.fname ~block:b.bname) n
          | _ -> ());
          let k = ref 0 in
          List.iter
            (fun i ->
              match i.iop with
              | Call | Invoke ->
                (match Hashtbl.find_opt call_counts i.iid with
                | Some targets ->
                  let key =
                    site_key ~func:f.fname ~block:b.bname ~index:!k
                  in
                  let per_site =
                    match Hashtbl.find_opt p.calls key with
                    | Some t -> t
                    | None ->
                      let t = Hashtbl.create 4 in
                      Hashtbl.replace p.calls key t;
                      t
                  in
                  Hashtbl.iter
                    (fun fid n ->
                      match Hashtbl.find_opt fname_of_fid fid with
                      | Some callee -> bump per_site callee n
                      | None -> ())
                    targets
                | None -> ());
                incr k
              | _ -> ())
            b.instrs)
        f.fblocks)
    m.mfuncs;
  p

(* -- Merging --------------------------------------------------------------- *)

let merge ?(weight = 1) (dst : t) (src : t) : unit =
  if weight > 0 then begin
    dst.runs <- sat_add dst.runs (sat_scale weight src.runs);
    Hashtbl.iter (fun k v -> bump dst.blocks k (sat_scale weight v)) src.blocks;
    Hashtbl.iter
      (fun site targets ->
        let per_site =
          match Hashtbl.find_opt dst.calls site with
          | Some t -> t
          | None ->
            let t = Hashtbl.create 4 in
            Hashtbl.replace dst.calls site t;
            t
        in
        Hashtbl.iter
          (fun callee n -> bump per_site callee (sat_scale weight n))
          targets)
      src.calls
  end

(* -- Queries --------------------------------------------------------------- *)

(* Transformed modules carry derived block names ([.spec], [.deopt],
   [.cont], inliner clones): a miss retries with the last dot-suffix
   stripped, so layout decisions for a speculated module can reuse the
   profile gathered on the original. *)
let block_weight (p : t) ~(func : string) ~(block : string) : int =
  let rec look block =
    match Hashtbl.find_opt p.blocks (block_key ~func ~block) with
    | Some w -> w
    | None -> (
      match String.rindex_opt block '.' with
      | Some k when k > 0 -> look (String.sub block 0 k)
      | _ -> 0)
  in
  look block

let func_weight (p : t) (f : func) : int =
  if is_declaration f then 0
  else block_weight p ~func:f.fname ~block:(entry_block f).bname

(* Observed callees of a call site, hottest first (count desc, then
   name, so the choice is deterministic). *)
let call_targets (p : t) ~(func : string) ~(block : string) ~(index : int) :
    (string * int) list =
  match Hashtbl.find_opt p.calls (site_key ~func ~block ~index) with
  | None -> []
  | Some t ->
    Hashtbl.fold (fun callee n acc -> (callee, n) :: acc) t []
    |> List.sort (fun (n1, c1) (n2, c2) ->
           if c1 <> c2 then compare c2 c1 else compare n1 n2)

let runs (p : t) = p.runs
let block_entries (p : t) = Hashtbl.length p.blocks
let call_sites (p : t) = Hashtbl.length p.calls

let total_weight (p : t) : int =
  Hashtbl.fold (fun _ v acc -> sat_add acc v) p.blocks 0

let total_calls (p : t) : int =
  Hashtbl.fold
    (fun _ targets acc ->
      Hashtbl.fold (fun _ c acc -> sat_add acc c) targets acc)
    p.calls 0

(* Structural equality, for the merge property tests. *)
let equal (a : t) (b : t) : bool =
  let tbl_eq ta tb =
    Hashtbl.length ta = Hashtbl.length tb
    && Hashtbl.fold
         (fun k v acc -> acc && Hashtbl.find_opt tb k = Some v)
         ta true
  in
  a.runs = b.runs
  && tbl_eq a.blocks b.blocks
  && Hashtbl.length a.calls = Hashtbl.length b.calls
  && Hashtbl.fold
       (fun site ta acc ->
         acc
         &&
         match Hashtbl.find_opt b.calls site with
         | Some tb -> tbl_eq ta tb
         | None -> false)
       a.calls true

(* -- Binary format ---------------------------------------------------------- *)

(* LLPF, version byte, then three length-prefixed sections.  All
   integers are little-endian int64; strings are length-prefixed. *)

let magic = "LLPF"
let version = 1

exception Corrupt of string

let to_bytes (p : t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  Buffer.add_uint8 buf version;
  let add_int n = Buffer.add_int64_le buf (Int64.of_int n) in
  let add_str s =
    add_int (String.length s);
    Buffer.add_string buf s
  in
  (* sort sections so equal profiles serialize identically *)
  let sorted tbl = List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) tbl []) in
  add_int p.runs;
  let blocks = sorted p.blocks in
  add_int (List.length blocks);
  List.iter
    (fun (k, v) ->
      add_str k;
      add_int v)
    blocks;
  let calls =
    List.sort compare
      (Hashtbl.fold (fun k t a -> (k, sorted t) :: a) p.calls [])
  in
  add_int (List.length calls);
  List.iter
    (fun (site, targets) ->
      add_str site;
      add_int (List.length targets);
      List.iter
        (fun (callee, n) ->
          add_str callee;
          add_int n)
        targets)
    calls;
  Buffer.contents buf

let of_bytes (s : string) : t =
  let pos = ref 0 in
  let need n =
    if !pos + n > String.length s then raise (Corrupt "truncated profile")
  in
  let get_int () =
    need 8;
    let v = Int64.to_int (String.get_int64_le s !pos) in
    pos := !pos + 8;
    if v < 0 then raise (Corrupt "negative count");
    v
  in
  let get_str () =
    let n = get_int () in
    need n;
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  need (String.length magic + 1);
  if String.sub s 0 4 <> magic then raise (Corrupt "bad magic");
  pos := 4;
  let v = Char.code s.[!pos] in
  incr pos;
  if v <> version then raise (Corrupt (Printf.sprintf "unknown version %d" v));
  let p = empty () in
  p.runs <- get_int ();
  let nblocks = get_int () in
  for _ = 1 to nblocks do
    let k = get_str () in
    let n = get_int () in
    Hashtbl.replace p.blocks k n
  done;
  let ncalls = get_int () in
  for _ = 1 to ncalls do
    let site = get_str () in
    let ntargets = get_int () in
    let t = Hashtbl.create (max 4 ntargets) in
    for _ = 1 to ntargets do
      let callee = get_str () in
      let n = get_int () in
      Hashtbl.replace t callee n
    done;
    Hashtbl.replace p.calls site t
  done;
  if !pos <> String.length s then raise (Corrupt "trailing bytes");
  p

let save (path : string) (p : t) : unit =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_bytes p))

let load (path : string) : t =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_bytes (really_input_string ic (in_channel_length ic)))

let pp fmt (p : t) =
  Fmt.pf fmt "profile: %d runs, %d blocks, %d call sites, total weight %d"
    p.runs (block_entries p) (call_sites p) (total_weight p)

(** Seeded fault injection for the serving layer.

    A {!plan} describes which faults to inject and how often; every
    decision is drawn from a deterministic PRNG seeded from the plan's
    seed, so a failing chaos run replays exactly.  Faults are process
    global ({!install}/{!clear}) and consulted by [Server] (slow
    pipelines, worker crashes), [Cache] (entry corruption) and by the
    chaos bench itself (hostile-client framing faults). *)

(** Where an injected worker crash fires: before the first pass of a
    pipeline run, or between two passes. *)
type point = Before_pipeline | Mid_pipeline

type plan = {
  f_seed : int;
  f_crash_rate : float;  (** per pipeline run, in armed processes *)
  f_crash_point : point;
  f_crash_generation_limit : int;
      (** worker generations >= this never crash — lets tests arrange
          "first incarnation dies, the respawn succeeds" *)
  f_skip : int;  (** first N pipeline runs per process are fault-free *)
  f_slow_rate : float;  (** per pipeline run *)
  f_slow_ms : int;
  f_corrupt_rate : float;  (** per cache find *)
}

val plan :
  ?crash_rate:float ->
  ?crash_point:point ->
  ?crash_generation_limit:int ->
  ?skip:int ->
  ?slow_rate:float ->
  ?slow_ms:int ->
  ?corrupt_rate:float ->
  seed:int ->
  unit ->
  plan

(** Exit code of an injected crash, so supervisors and tests can tell
    it from a genuine failure. *)
val crash_exit_code : int

val install : plan -> unit
val clear : unit -> unit
val active : unit -> plan option

(** Crashes only fire in processes that armed them — worker children
    call this after forking; the daemon never does, so an injected
    crash can only ever take down a worker.  Re-salts the fault RNG
    from [(seed, slot, generation)] so each worker incarnation draws
    its own deterministic stream. *)
val arm_crashes : slot:int -> generation:int -> unit

(** Hook called by [Server] once per pipeline run, before the first
    pass: may sleep ([f_slow_ms]) and may crash ([Before_pipeline]) or
    schedule a crash for the next {!pass_boundary} ([Mid_pipeline]). *)
val pipeline_start : unit -> unit

(** Hook called by [Server] between passes: fires a pending
    mid-pipeline crash. *)
val pass_boundary : unit -> unit

(** Consulted by [Cache.find] on a hit: [Some garbled] simulates
    bit rot in the stored bytes — the cache's integrity check must
    detect it and treat the entry as a miss. *)
val corrupt : string -> string option

(** {1 Hostile-client framing faults (bench-side)} *)

type client_fault =
  | Torn_frame  (** header + half the body, then the caller closes *)
  | Stalled_frame
      (** half the body, sleep [stall_ms], then the rest — by which
          time a deadline-enforcing daemon has given up on us *)
  | Garbage_header  (** announces an impossible frame length *)

val send_faulty :
  ?stall_ms:int -> client_fault -> Unix.file_descr -> string -> unit

(* The sharded, content-addressed pass-result cache.

   Keys are strings built by the server from a module's canonical
   content digest plus the pipeline spec; values are opaque byte
   strings (optimized bitcode, lint reports).  A key hashes — with our
   own FNV-1a, so shard assignment is stable across OCaml versions and
   processes — to one of N shards; each shard is an independent
   hashtable plus an intrusive doubly-linked LRU list under a byte
   budget.  Sharding keeps per-shard lists short and is the seam a
   future multi-threaded daemon would lock per shard.

   Eviction is bytes-based: a put that pushes a shard over budget
   evicts least-recently-used entries until it fits.  Values larger
   than a whole shard are never admitted (counted as [oversize]).

   Every entry stores an MD5 of its value, verified on each hit: a
   corrupted entry (bit rot, or an injected [Faults.corrupt]) is
   dropped and reported as a miss, so the server recomputes and
   re-installs a good copy instead of serving garbage. *)

type node = {
  nkey : string;
  mutable value : string;
  mutable sum : string; (* MD5 of [value] at put time *)
  mutable prev : node option;
  mutable next : node option;
}

type shard = {
  tbl : (string, node) Hashtbl.t;
  mutable mru : node option;
  mutable lru : node option;
  mutable bytes : int;
  budget : int;
  mutable hits : int;
  mutable misses : int;
  mutable puts : int;
  mutable evictions : int;
  mutable oversize : int;
  mutable corrupt : int;
}

type t = { shards : shard array }

let default_shards = 8
let default_shard_bytes = 8 * 1024 * 1024

let create ?(shards = default_shards) ?(shard_bytes = default_shard_bytes) ()
    : t =
  let shards = max 1 shards in
  { shards =
      Array.init shards (fun _ ->
          { tbl = Hashtbl.create 64; mru = None; lru = None; bytes = 0;
            budget = max 1 shard_bytes; hits = 0; misses = 0; puts = 0;
            evictions = 0; oversize = 0; corrupt = 0 }) }

let nshards (c : t) : int = Array.length c.shards

(* FNV-1a 64: deterministic, portable, good spread on hex digests. *)
let fnv1a (s : string) : int =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h 0x100000001b3L)
    s;
  (* the final [land max_int] keeps the value non-negative on 32-bit
     OCaml too, where [Int64.to_int] truncates to a 31-bit native int —
     a negative hash would make [shard_of]'s [mod] index out of bounds *)
  Int64.to_int (Int64.logand !h 0x3FFFFFFFFFFFFFFFL) land max_int

let shard_of (c : t) (key : string) : int = fnv1a key mod Array.length c.shards

(* -- LRU list maintenance --------------------------------------------------- *)

let unlink (s : shard) (n : node) : unit =
  (match n.prev with Some p -> p.next <- n.next | None -> s.mru <- n.next);
  (match n.next with Some x -> x.prev <- n.prev | None -> s.lru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front (s : shard) (n : node) : unit =
  n.next <- s.mru;
  n.prev <- None;
  (match s.mru with Some m -> m.prev <- Some n | None -> s.lru <- Some n);
  s.mru <- Some n

let evict_lru (s : shard) : unit =
  match s.lru with
  | None -> ()
  | Some n ->
    unlink s n;
    Hashtbl.remove s.tbl n.nkey;
    s.bytes <- s.bytes - String.length n.value;
    s.evictions <- s.evictions + 1

(* -- Operations ------------------------------------------------------------- *)

let drop (s : shard) (n : node) : unit =
  unlink s n;
  Hashtbl.remove s.tbl n.nkey;
  s.bytes <- s.bytes - String.length n.value

let find (c : t) (key : string) : string option =
  let s = c.shards.(shard_of c key) in
  match Hashtbl.find_opt s.tbl key with
  | Some n ->
    (* injected bit rot, when a chaos plan is installed *)
    (match Faults.corrupt n.value with
    | Some garbled -> n.value <- garbled
    | None -> ());
    if Digest.string n.value <> n.sum then begin
      (* integrity failure: self-heal by dropping the entry; the
         caller recomputes and re-installs a good copy *)
      s.corrupt <- s.corrupt + 1;
      s.misses <- s.misses + 1;
      drop s n;
      None
    end
    else begin
      s.hits <- s.hits + 1;
      unlink s n;
      push_front s n;
      Some n.value
    end
  | None ->
    s.misses <- s.misses + 1;
    None

let put (c : t) (key : string) (value : string) : unit =
  let s = c.shards.(shard_of c key) in
  let size = String.length value in
  if size > s.budget then s.oversize <- s.oversize + 1
  else begin
    s.puts <- s.puts + 1;
    (match Hashtbl.find_opt s.tbl key with
    | Some n ->
      s.bytes <- s.bytes - String.length n.value + size;
      n.value <- value;
      n.sum <- Digest.string value;
      unlink s n;
      push_front s n
    | None ->
      let n =
        { nkey = key; value; sum = Digest.string value; prev = None;
          next = None }
      in
      Hashtbl.replace s.tbl key n;
      s.bytes <- s.bytes + size;
      push_front s n);
    while s.bytes > s.budget do
      evict_lru s
    done
  end

let remove (c : t) (key : string) : unit =
  let s = c.shards.(shard_of c key) in
  match Hashtbl.find_opt s.tbl key with
  | Some n -> drop s n
  | None -> ()

(* -- Statistics ------------------------------------------------------------- *)

type shard_stats = {
  s_entries : int;
  s_bytes : int;
  s_budget : int;
  s_hits : int;
  s_misses : int;
  s_puts : int;
  s_evictions : int;
  s_oversize : int;
  s_corrupt : int;
}

let shard_stats (c : t) : shard_stats array =
  Array.map
    (fun s ->
      { s_entries = Hashtbl.length s.tbl; s_bytes = s.bytes;
        s_budget = s.budget; s_hits = s.hits; s_misses = s.misses;
        s_puts = s.puts; s_evictions = s.evictions; s_oversize = s.oversize;
        s_corrupt = s.corrupt })
    c.shards

let total (c : t) (f : shard -> int) : int =
  Array.fold_left (fun acc s -> acc + f s) 0 c.shards

let hits c = total c (fun s -> s.hits)
let corrupt c = total c (fun s -> s.corrupt)
let misses c = total c (fun s -> s.misses)
let evictions c = total c (fun s -> s.evictions)
let entries c = total c (fun s -> Hashtbl.length s.tbl)
let bytes c = total c (fun s -> s.bytes)

let hit_rate (c : t) : float =
  let h = hits c and m = misses c in
  if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)

(* Test hook: one shard's keys, most-recently-used first. *)
let keys_mru_first (c : t) (shard : int) : string list =
  let rec walk acc = function
    | None -> List.rev acc
    | Some n -> walk (n.nkey :: acc) n.next
  in
  walk [] c.shards.(shard).mru

(** The daemon's wire protocol: length-framed binary messages
    (u32-be frame length, one tag byte, tag-specific fields).  The
    decoded types are also the in-process API that {!Server.handle}
    consumes, so tests and bench can drive the service without a
    socket. *)

(** A pipeline spec is part of every cache key: [Level l] selects the
    standard [-Ol] pipeline, [Passes] an explicit registered-pass
    list.  The textual forms are ["O2"] and ["passes:gvn,dce"]. *)
type pipeline =
  | Level of int
  | Passes of string list

val pipeline_to_string : pipeline -> string
val pipeline_of_string : string -> (pipeline, string) result

type compile_req = {
  c_payload : string;  (** [.ll] text or [.bc] image, sniffed *)
  c_pipeline : pipeline;
  c_validate : bool;  (** check the translation-validation witness *)
}

type link_req = {
  l_apps : string list;
  l_libs : string list;
      (** shared libraries: the link-time IPO pipeline runs once per
          distinct library set and is reused by every queued request
          sharing it *)
  l_validate : bool;
}

type run_req = {
  r_payload : string;
  r_pipeline : pipeline;
  r_fuel : int;
  r_engine : Llvm_exec.Engine.kind;
}

type body =
  | Compile of compile_req
  | Link of link_req
  | Run of run_req
  | Lint of string
  | Stats
  | Ping  (** liveness probe: always answered immediately *)
  | Shutdown

(** The request envelope.  [deadline_ms = 0] means no deadline;
    otherwise it is the request's wall-clock budget — the server
    answers {!Timed_out} instead of working past it, and the daemon
    kills (and restarts) a worker that overruns it. *)
type request = {
  deadline_ms : int;
  body : body;
}

(** [req ?deadline_ms body] wraps a body in an envelope. *)
val req : ?deadline_ms:int -> body -> request

(** Cache metrics carried by every successful response. *)
type metrics = {
  m_hit : bool;
  m_shard : int;  (** -1 when the request never touched the cache *)
  m_pipeline_ms : float;
  m_bytes : int;
}

val no_metrics : metrics

type response =
  | Served of { payload : string; metrics : metrics }
  | Rejected of string
      (** validation witness failure: the optimized result is withheld *)
  | Failed of string
  | Timed_out of string  (** the request's deadline expired mid-work *)
  | Busy of { retry_after_ms : int }
      (** shed under overload or degraded mode: retry after the hint *)

(** The payload of a [Served] response to a [Run] request. *)
type run_reply = {
  status : string;
  exit_code : int;
  output : string;
  instructions : int;
}

val encode_run_reply : run_reply -> string
val decode_run_reply : string -> (run_reply, string) result

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result

(** {1 Framing} *)

val max_frame : int

(** Raised by {!read_frame} when a frame header announces more than
    {!max_frame} bytes — distinct from EOF so the daemon can answer
    [Failed] (and the client report the reason) before closing. *)
exception Oversized_frame of int

val write_frame : Unix.file_descr -> string -> unit

(** [None] on clean EOF at a frame boundary.
    @raise Oversized_frame on a header exceeding {!max_frame}. *)
val read_frame : Unix.file_descr -> string option

(** Outcome of a deadline-bounded frame read. *)
type read_outcome =
  | Frame of string
  | Eof  (** clean close at a frame boundary, or torn mid-frame *)
  | Idle  (** no byte arrived within [idle] seconds *)
  | Stalled  (** a frame started but did not complete within [deadline] *)

(** [read_frame_within ?idle ~deadline fd] is the stall-proof
    {!read_frame}: waiting for the first byte is bounded by [idle]
    seconds (default: forever); once any byte has arrived the whole
    frame must complete within [deadline] seconds or the read returns
    [Stalled].  A client that sends a partial frame and stalls can
    therefore cost the daemon at most [deadline] seconds.
    @raise Oversized_frame on a header exceeding {!max_frame}. *)
val read_frame_within :
  ?idle:float -> deadline:float -> Unix.file_descr -> read_outcome

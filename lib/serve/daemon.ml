(* llvmd's socket loop: a single-threaded, fault-tolerant Unix-domain
   socket daemon over Server + Worker.

   Connections are handled one at a time; within a connection the
   daemon drains every frame already queued on the socket (bounded by
   [max_batch]) before answering.  Responses keep request order, so
   pipelined clients can match them up by position.

   Fault tolerance, in layers:

   - Framing deadlines.  Every read runs through
     [Protocol.read_frame_within]: a client that sends a partial frame
     and stalls costs the daemon at most [frame_deadline_ms] (it is
     answered [Timed_out] and dropped), and an idle connection at most
     [idle_timeout_ms].  This fixes the documented stall bug of the
     blocking drain.

   - Request deadlines.  Requests carry (or inherit from
     [deadline_ms]) a wall-clock budget; [Server.handle] answers
     [Timed_out] cooperatively at pass boundaries, and with workers
     the daemon additionally hard-kills a worker that blows a grace
     interval past the budget.

   - Worker isolation.  With [workers > 0], pipelines run in forked
     children ([Worker]); a crash yields [Failed] for the one request
     being carried and a respawned worker, never a dead daemon.  The
     daemon keeps a "front" [Server.t] whose cache spans workers: it
     probes before dispatching and installs results after, so cache
     hits cost no fork round-trip and survive worker deaths.

   - Overload shedding.  At most [max_queue] work requests per drained
     batch are admitted; the rest are answered [Busy] with a retry
     hint.  Clients use [request_with_retry] (exponential backoff with
     jitter) to come back.

   - Circuit breaker.  Infrastructure failures (crashes, hard
     timeouts, deadline expiries) over a sliding window trip the
     daemon into degraded mode: cache hits are still served from the
     front cache, everything else is [Busy] until a cooldown passes
     and a half-open trial succeeds.

   - Graceful shutdown.  SIGINT/SIGTERM finish the in-flight batch,
     answer what is queued, tear down workers, and unlink the socket;
     binding refuses to clobber a socket another live daemon answers
     on ([Busy_socket]) and only unlinks genuinely stale files. *)

let default_socket = "llvmd.sock"

(* -- Client side -------------------------------------------------------------- *)

type error =
  | Closed  (** the daemon closed the stream (EOF mid-conversation) *)
  | Unframeable of int
      (** the daemon announced a frame beyond [max_frame]: the stream
          cannot be re-synchronized and has been closed *)
  | Bad_frame of string  (** a response frame failed to decode *)
  | Io of string  (** connect/read/write failure *)

let error_to_string = function
  | Closed -> "connection closed by daemon"
  | Unframeable n ->
    Printf.sprintf "daemon sent an oversized frame (%d bytes, limit %d)" n
      Protocol.max_frame
  | Bad_frame e -> "undecodable response: " ^ e
  | Io e -> e

let connect ~(socket : string) : Unix.file_descr =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     Unix.close fd;
     raise e);
  fd

let close (fd : Unix.file_descr) : unit = try Unix.close fd with _ -> ()

let send (fd : Unix.file_descr) (req : Protocol.request) : unit =
  Protocol.write_frame fd (Protocol.encode_request req)

let receive (fd : Unix.file_descr) : (Protocol.response, error) result =
  match Protocol.read_frame fd with
  | None -> Error Closed
  | Some frame -> (
    match Protocol.decode_response frame with
    | Ok resp -> Ok resp
    | Error e -> Error (Bad_frame e))
  | exception Protocol.Oversized_frame n ->
    (* past a bad header the stream can never be framed again: close
       now so a later [request] on this fd cannot read garbage *)
    close fd;
    Error (Unframeable n)
  | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))

let request (fd : Unix.file_descr) (req : Protocol.request) :
    (Protocol.response, error) result =
  match send fd req with
  | () -> receive fd
  | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))

(* One request on a fresh connection, retrying [Busy] answers and
   transport failures with exponential backoff and jitter.  The jitter
   draws from a seeded Rng so a fleet of retrying clients spreads out
   instead of stampeding in lockstep — and so tests replay. *)
let request_with_retry ?(attempts = 4) ?(base_delay_ms = 25) ?(seed = 1)
    ~(socket : string) (req : Protocol.request) :
    (Protocol.response, error) result =
  let rng = Llvm_workloads.Rng.create (seed lxor 0x7e7721) in
  let delay_ms hint i =
    let base = match hint with Some ms when ms > 0 -> ms | _ -> base_delay_ms in
    let spread = 0.5 +. (float_of_int (Llvm_workloads.Rng.int rng 1000) /. 1000.0) in
    float_of_int (base * (1 lsl i)) *. spread
  in
  let attempt () =
    match connect ~socket with
    | exception Unix.Unix_error (e, _, _) ->
      Error (Io (Unix.error_message e))
    | fd ->
      let r = request fd req in
      close fd;
      r
  in
  let rec go i =
    match attempt () with
    | Ok (Protocol.Busy { retry_after_ms }) when i + 1 < attempts ->
      Unix.sleepf (delay_ms (Some retry_after_ms) i /. 1000.0);
      go (i + 1)
    | Error (Closed | Io _ | Unframeable _) when i + 1 < attempts ->
      Unix.sleepf (delay_ms None i /. 1000.0);
      go (i + 1)
    | r -> r
  in
  go 0

(* -- Daemon configuration ------------------------------------------------------ *)

type config = {
  max_batch : int;  (* frames drained per batch *)
  max_queue : int;  (* work requests admitted per batch; rest shed *)
  deadline_ms : int;  (* default per-request budget; 0 = none *)
  frame_deadline_ms : int;  (* budget for completing a started frame *)
  idle_timeout_ms : int;  (* budget for an idle connection *)
  workers : int;  (* forked workers; 0 = run pipelines in-process *)
  retry_after_ms : int;  (* hint carried by Busy responses *)
  breaker_window : int;  (* sliding window of worker-path outcomes *)
  breaker_min : int;  (* min outcomes in window before tripping *)
  breaker_ratio : float;  (* failure ratio that trips the breaker *)
  breaker_cooldown_ms : int;  (* degraded-mode dwell before a retrial *)
}

let default_config =
  { max_batch = 64; max_queue = 64; deadline_ms = 0;
    frame_deadline_ms = 2000; idle_timeout_ms = 30_000; workers = 0;
    retry_after_ms = 50; breaker_window = 32; breaker_min = 8;
    breaker_ratio = 0.5; breaker_cooldown_ms = 1000 }

(* -- Circuit breaker ----------------------------------------------------------- *)

type breaker_state = Closed | Open of float (* until *) | Half_open

type breaker = {
  b_window : int;
  b_min : int;
  b_ratio : float;
  b_cooldown : float;
  b_results : bool Queue.t; (* sliding window; [true] = failure *)
  mutable b_fails : int;
  mutable b_state : breaker_state;
}

let breaker_of (cfg : config) : breaker =
  { b_window = max 1 cfg.breaker_window; b_min = max 1 cfg.breaker_min;
    b_ratio = cfg.breaker_ratio;
    b_cooldown = float_of_int cfg.breaker_cooldown_ms /. 1000.0;
    b_results = Queue.create (); b_fails = 0; b_state = Closed }

(* Only infrastructure failures count: crashes, hard kills, deadline
   expiries.  Semantic failures (bad input, validation rejects) say
   nothing about the daemon's health. *)
let breaker_record (b : breaker) ~(failed : bool) : unit =
  Queue.push failed b.b_results;
  if failed then b.b_fails <- b.b_fails + 1;
  if Queue.length b.b_results > b.b_window then
    if Queue.pop b.b_results then b.b_fails <- b.b_fails - 1;
  (match b.b_state with
  | Half_open ->
    if failed then b.b_state <- Open (Unix.gettimeofday () +. b.b_cooldown)
    else begin
      (* trial succeeded: close and forget the bad window *)
      b.b_state <- Closed;
      Queue.clear b.b_results;
      b.b_fails <- 0
    end
  | Closed ->
    if
      Queue.length b.b_results >= b.b_min
      && float_of_int b.b_fails
         >= b.b_ratio *. float_of_int (Queue.length b.b_results)
    then b.b_state <- Open (Unix.gettimeofday () +. b.b_cooldown)
  | Open _ -> ())

(* What the breaker allows right now: [`Normal] service, a single
   [`Trial] request after the cooldown, or [`Degraded] (cache hits
   only). *)
let breaker_gate (b : breaker) : [ `Normal | `Trial | `Degraded ] =
  match b.b_state with
  | Closed -> `Normal
  | Half_open -> `Trial (* single-threaded: at most one trial in flight *)
  | Open until ->
    if Unix.gettimeofday () >= until then begin
      b.b_state <- Half_open;
      `Trial
    end
    else `Degraded

let breaker_state_name (b : breaker) : string =
  match b.b_state with
  | Closed -> "closed"
  | Open _ -> "open"
  | Half_open -> "half_open"

(* -- Daemon state -------------------------------------------------------------- *)

type state = {
  cfg : config;
  front : Server.t;
  pool : Worker.t option;
  brk : breaker;
  mutable shed : int;
  mutable hard_timeouts : int;
  mutable stalled_connections : int;
  mutable degraded_hits : int;
  mutable degraded_busy : int;
  mutable stopping : bool;
}

exception Busy_socket of string

let daemon_stats_json (st : state) : string =
  Printf.sprintf
    "{\"workers\": %d, \"restarts\": %d, \"shed\": %d, \"hard_timeouts\": \
     %d, \"stalled_connections\": %d, \"degraded_hits\": %d, \
     \"degraded_busy\": %d, \"breaker\": \"%s\", \"deadline_ms\": %d, \
     \"max_queue\": %d}"
    (match st.pool with Some p -> Worker.size p | None -> 0)
    (match st.pool with Some p -> Worker.restarts p | None -> 0)
    st.shed st.hard_timeouts st.stalled_connections st.degraded_hits
    st.degraded_busy
    (breaker_state_name st.brk)
    st.cfg.deadline_ms st.cfg.max_queue

(* A request's effective budget: its own deadline, or the daemon-wide
   default. *)
let with_effective_deadline (st : state) (req : Protocol.request) :
    Protocol.request =
  if req.Protocol.deadline_ms > 0 then req
  else { req with Protocol.deadline_ms = st.cfg.deadline_ms }

let busy (st : state) : Protocol.response =
  Protocol.Busy { retry_after_ms = st.cfg.retry_after_ms }

(* Dispatch one work request to the pool, recording the outcome with
   the breaker and installing cacheable results in the front cache. *)
let dispatch_to_pool (st : state) (pool : Worker.t)
    (req : Protocol.request) (key : string option) (route : string option) :
    Protocol.response =
  let hard =
    if req.Protocol.deadline_ms <= 0 then None
    else
      (* grace past the request's own budget: the worker's cooperative
         Timed_out should win whenever the pipeline reaches a pass
         boundary; the hard kill is for a worker that never does *)
      let budget = float_of_int req.Protocol.deadline_ms /. 1000.0 in
      Some (Unix.gettimeofday () +. budget +. Float.max 0.05 (budget *. 0.5))
  in
  match Worker.dispatch pool ?hard ~route req with
  | Worker.Resp resp ->
    (match key with
    | Some key -> Server.install st.front ~key resp
    | None -> ());
    breaker_record st.brk
      ~failed:(match resp with Protocol.Timed_out _ -> true | _ -> false);
    resp
  | Worker.Crashed ->
    breaker_record st.brk ~failed:true;
    Protocol.Failed "worker crashed mid-request (restarted)"
  | Worker.Hard_timeout ->
    st.hard_timeouts <- st.hard_timeouts + 1;
    breaker_record st.brk ~failed:true;
    Protocol.Timed_out
      (Printf.sprintf "hard deadline expired (%d ms budget); worker restarted"
         req.Protocol.deadline_ms)

(* Control requests are always answered directly by the daemon: they
   must work even when every worker is wedged or the breaker is open. *)
let is_control (body : Protocol.body) : bool =
  match body with
  | Protocol.Stats | Protocol.Ping | Protocol.Shutdown -> true
  | Protocol.Compile _ | Protocol.Link _ | Protocol.Run _ | Protocol.Lint _ ->
    false

let handle_control (st : state) (body : Protocol.body) : Protocol.response =
  match body with
  | Protocol.Stats ->
    Protocol.Served
      { payload =
          Server.stats_json ~extra:[ ("daemon", daemon_stats_json st) ]
            st.front;
        metrics = Protocol.no_metrics }
  | Protocol.Shutdown ->
    st.stopping <- true;
    Protocol.Served
      { payload = "shutting down"; metrics = Protocol.no_metrics }
  | _ ->
    (* Ping (and anything else cheap): the front server answers *)
    Server.handle st.front (Protocol.req body)

(* One work request, through the breaker, the front cache, and either
   the pool or the in-process server. *)
let process_work (st : state) (req : Protocol.request) : Protocol.response =
  let req = with_effective_deadline st req in
  match breaker_gate st.brk with
  | `Degraded -> (
    (* cache hits only: the probe never runs a pipeline *)
    match Server.probe st.front req with
    | Server.Hit resp ->
      st.degraded_hits <- st.degraded_hits + 1;
      resp
    | Server.Miss _ | Server.Uncached _ ->
      st.degraded_busy <- st.degraded_busy + 1;
      busy st)
  | `Normal | `Trial -> (
    match st.pool with
    | None ->
      (* in-process: Server.handle owns cache + deadline; only the
         deadline outcome feeds the breaker *)
      let resp = Server.handle st.front req in
      breaker_record st.brk
        ~failed:(match resp with Protocol.Timed_out _ -> true | _ -> false);
      resp
    | Some pool -> (
      match Server.probe st.front req with
      | Server.Hit resp -> resp
      | Server.Miss { key; route } ->
        dispatch_to_pool st pool req (Some key) route
      | Server.Uncached { route } -> dispatch_to_pool st pool req None route))

(* -- Batch processing ----------------------------------------------------------- *)

(* Decode, admit, and answer a drained batch in request order.  At most
   [max_queue] work requests are admitted; the overflow is shed with
   [Busy].  In-process mode hands the admitted work to
   [Server.handle_batch] so queued link requests sharing a library set
   still pre-warm their IPO pipeline exactly once. *)
let process_batch (st : state) (frames : string list) :
    Protocol.response list =
  let decoded = List.map Protocol.decode_request frames in
  let admitted = ref 0 in
  let plan =
    List.map
      (fun d ->
        match d with
        | Error e -> `Bad e
        | Ok req when is_control req.Protocol.body -> `Control req
        | Ok req ->
          if !admitted >= st.cfg.max_queue then begin
            st.shed <- st.shed + 1;
            `Shed
          end
          else begin
            incr admitted;
            `Work req
          end)
      decoded
  in
  (* in-process, breaker closed: batch the admitted work through the
     server so the link-IPO pre-warm still happens *)
  let batched =
    match (st.pool, breaker_gate st.brk) with
    | None, `Normal ->
      let work =
        List.filter_map
          (function
            | `Work req -> Some (with_effective_deadline st req) | _ -> None)
          plan
      in
      if List.length work >= 2 then begin
        let answers = Server.handle_batch st.front work in
        List.iter
          (fun resp ->
            breaker_record st.brk
              ~failed:
                (match resp with Protocol.Timed_out _ -> true | _ -> false))
          answers;
        Some (ref answers)
      end
      else None
    | _ -> None
  in
  List.map
    (fun item ->
      match item with
      | `Bad e -> Protocol.Failed ("bad request: " ^ e)
      | `Shed -> busy st
      | `Control req -> handle_control st req.Protocol.body
      | `Work req -> (
        match batched with
        | Some answers -> (
          match !answers with
          | resp :: rest ->
            answers := rest;
            resp
          | [] -> Protocol.Failed "internal: response queue underrun")
        | None -> process_work st req))
    plan

(* -- Connection loop ------------------------------------------------------------ *)

let readable (fd : Unix.file_descr) : bool =
  match Unix.select [ fd ] [] [] 0.0 with
  | [ _ ], _, _ -> true
  | _ -> false
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

type stop = Keep_going | Stop

(* Wait for a connection's next frame in short idle slices so a
   shutdown signal is noticed within ~250 ms even on an idle
   connection. *)
let await_frame (st : state) (conn : Unix.file_descr) :
    [ `Frame of string | `Eof | `Idle | `Stalled | `Oversized of int ] =
  let frame_s = float_of_int st.cfg.frame_deadline_ms /. 1000.0 in
  let idle_until =
    Unix.gettimeofday () +. (float_of_int st.cfg.idle_timeout_ms /. 1000.0)
  in
  let rec wait () =
    if st.stopping then `Idle
    else
      let slice = Float.min 0.25 (Float.max 0.01 (idle_until -. Unix.gettimeofday ())) in
      match Protocol.read_frame_within ~idle:slice ~deadline:frame_s conn with
      | Protocol.Frame s -> `Frame s
      | Protocol.Eof -> `Eof
      | Protocol.Stalled -> `Stalled
      | Protocol.Idle ->
        if Unix.gettimeofday () >= idle_until then `Idle else wait ()
      | exception Protocol.Oversized_frame n -> `Oversized n
  in
  wait ()

(* Drain frames already queued behind the first one (up to
   [max_batch]). *)
let drain_queued (st : state) (conn : Unix.file_descr) (first : string) :
    string list * [ `More | `Eof | `Stalled | `Oversized of int ] =
  let frame_s = float_of_int st.cfg.frame_deadline_ms /. 1000.0 in
  let rec drain acc n =
    if n >= st.cfg.max_batch || not (readable conn) then (List.rev acc, `More)
    else
      match Protocol.read_frame_within ~idle:1.0 ~deadline:frame_s conn with
      | Protocol.Frame s -> drain (s :: acc) (n + 1)
      | Protocol.Eof -> (List.rev acc, `Eof)
      | Protocol.Idle | Protocol.Stalled -> (List.rev acc, `Stalled)
      | exception Protocol.Oversized_frame len -> (List.rev acc, `Oversized len)
  in
  drain [ first ] 1

let answer (conn : Unix.file_descr) (resp : Protocol.response) : unit =
  try Protocol.write_frame conn (Protocol.encode_response resp)
  with _ -> ()

let serve_connection (st : state) (conn : Unix.file_descr) : stop =
  let rec loop () =
    match await_frame st conn with
    | `Eof | `Idle -> ()
    | `Stalled ->
      (* mid-frame stall: tell the client its frame blew the framing
         deadline, then drop it — the stream cannot be re-synced *)
      st.stalled_connections <- st.stalled_connections + 1;
      answer conn
        (Protocol.Timed_out
           (Printf.sprintf "frame not completed within %d ms"
              st.cfg.frame_deadline_ms))
    | `Oversized len ->
      answer conn
        (Protocol.Failed
           (Printf.sprintf
              "request frame of %d bytes exceeds the %d-byte limit" len
              Protocol.max_frame))
    | `Frame first -> (
      let frames, tail = drain_queued st conn first in
      List.iter (answer conn) (process_batch st frames);
      match tail with
      | `Eof -> ()
      | `Stalled ->
        st.stalled_connections <- st.stalled_connections + 1;
        answer conn
          (Protocol.Timed_out
             (Printf.sprintf "frame not completed within %d ms"
                st.cfg.frame_deadline_ms))
      | `Oversized len ->
        answer conn
          (Protocol.Failed
             (Printf.sprintf
                "request frame of %d bytes exceeds the %d-byte limit" len
                Protocol.max_frame))
      | `More -> if not st.stopping then loop ())
  in
  (try loop () with Unix.Unix_error _ -> ());
  if st.stopping then Stop else Keep_going

(* -- Socket lifecycle ------------------------------------------------------------ *)

(* Refuse to clobber a socket a live daemon still answers on; unlink
   only genuinely stale files. *)
let claim_socket (socket : string) : unit =
  if Sys.file_exists socket then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX socket) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
        false
      | exception Unix.Unix_error _ -> false
    in
    close probe;
    if live then
      raise
        (Busy_socket
           (Printf.sprintf "%s: another daemon is already serving" socket));
    try Unix.unlink socket with Unix.Unix_error _ -> ()
  end

(* Serve until a Shutdown request or a SIGINT/SIGTERM arrives.
   [on_ready] fires after the socket is listening (tests use it to
   synchronize).  The daemon builds its own front server from
   [server_config]; with [config.workers > 0] it forks the pool (each
   worker gets the same server config and fault plan). *)
let serve ?(config = default_config) ?faults ?(on_ready = fun () -> ())
    ~(socket : string) (server_config : Server.config) : unit =
  (* writes to vanished clients or dead workers must error, not kill *)
  let old_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  (match faults with Some p -> Faults.install p | None -> ());
  claim_socket socket;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket);
  Unix.listen fd 64;
  let st =
    { cfg = config; front = Server.create ~config:server_config ();
      pool = None; brk = breaker_of config; shed = 0; hard_timeouts = 0;
      stalled_connections = 0; degraded_hits = 0; degraded_busy = 0;
      stopping = false }
  in
  let st =
    if config.workers <= 0 then st
    else
      { st with
        pool =
          Some
            (Worker.create ~n:config.workers ?faults
               ~on_child:(fun () -> close fd)
               server_config) }
  in
  let stop_signal _ = st.stopping <- true in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle stop_signal) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle stop_signal) in
  let cleanup () =
    (match st.pool with Some p -> Worker.shutdown p | None -> ());
    close fd;
    (try Unix.unlink socket with Unix.Unix_error _ -> ());
    Sys.set_signal Sys.sigint old_int;
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigpipe old_sigpipe
  in
  Fun.protect ~finally:cleanup (fun () ->
      on_ready ();
      let rec accept_loop () =
        if st.stopping then ()
        else
          match Unix.accept fd with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
          | conn, _ ->
            let stop =
              try serve_connection st conn
              with _ -> if st.stopping then Stop else Keep_going
            in
            close conn;
            (match stop with Keep_going -> accept_loop () | Stop -> ())
      in
      accept_loop ())

(* llvmd's socket loop: a single-threaded Unix-domain-socket daemon
   over Server.

   Connections are handled one at a time; within a connection the
   daemon drains every frame already queued on the socket (bounded by
   [max_batch]) before answering, and hands the whole queue to
   Server.handle_batch — that is where link requests sharing a library
   set get their IPO pipeline run exactly once.  Responses keep request
   order, so pipelined clients can match them up by position. *)

let default_socket = "llvmd.sock"

(* -- Client side -------------------------------------------------------------- *)

let connect ~(socket : string) : Unix.file_descr =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     Unix.close fd;
     raise e);
  fd

let close (fd : Unix.file_descr) : unit = try Unix.close fd with _ -> ()

let send (fd : Unix.file_descr) (req : Protocol.request) : unit =
  Protocol.write_frame fd (Protocol.encode_request req)

let receive (fd : Unix.file_descr) : (Protocol.response, string) result =
  match Protocol.read_frame fd with
  | None -> Error "connection closed by daemon"
  | Some body -> Protocol.decode_response body
  | exception Protocol.Oversized_frame n ->
    Error
      (Printf.sprintf "daemon sent an oversized frame (%d bytes, limit %d)" n
         Protocol.max_frame)

let request (fd : Unix.file_descr) (req : Protocol.request) :
    (Protocol.response, string) result =
  send fd req;
  receive fd

(* -- Daemon side -------------------------------------------------------------- *)

let readable (fd : Unix.file_descr) : bool =
  match Unix.select [ fd ] [] [] 0.0 with
  | [ _ ], _, _ -> true
  | _ -> false

(* Read the frames already queued on [fd]: one blocking read, then
   drain without blocking up to [max_batch].  Returns the queued bodies
   plus [Some len] when a header announcing [len] > max_frame bytes was
   hit (the connection must be answered and dropped: past a bad header
   the stream can no longer be framed); [([], None)] at EOF.

   Caveat: [readable] only promises >= 1 byte, and [read_frame] then
   blocks until the whole frame arrives — a client that stalls mid-frame
   stalls this single-threaded daemon with it.  Acceptable for a trusted
   local socket; truly non-blocking draining would need buffered
   partial-frame reads. *)
let read_queued (fd : Unix.file_descr) (max_batch : int) :
    string list * int option =
  match Protocol.read_frame fd with
  | exception Protocol.Oversized_frame len -> ([], Some len)
  | None -> ([], None)
  | Some first ->
    let rec drain acc n =
      if n >= max_batch || not (readable fd) then (List.rev acc, None)
      else
        match Protocol.read_frame fd with
        | exception Protocol.Oversized_frame len -> (List.rev acc, Some len)
        | None -> (List.rev acc, None)
        | Some body -> drain (body :: acc) (n + 1)
    in
    drain [ first ] 1

type stop = Keep_going | Stop

let serve_connection (server : Server.t) (max_batch : int)
    (conn : Unix.file_descr) : stop =
  let stop = ref Keep_going in
  let rec loop () =
    let bodies, oversized = read_queued conn max_batch in
    (match bodies with
    | [] -> ()
    | bodies ->
      let reqs =
        List.map
          (fun body ->
            match Protocol.decode_request body with
            | Ok req -> Ok req
            | Error e -> Error e)
          bodies
      in
      if
        List.exists
          (function Ok Protocol.Shutdown -> true | _ -> false)
          reqs
      then stop := Stop;
      (* decode failures answer in place so response order still
         matches request order *)
      let responses =
        let good = List.filter_map Result.to_option reqs in
        let handled = ref (Server.handle_batch server good) in
        List.map
          (fun r ->
            match r with
            | Error e -> Protocol.Failed ("bad request: " ^ e)
            | Ok _ -> (
              match !handled with
              | [] -> Protocol.Failed "internal: response queue underrun"
              | resp :: rest ->
                handled := rest;
                resp))
          reqs
      in
      List.iter
        (fun resp -> Protocol.write_frame conn (Protocol.encode_response resp))
        responses);
    match oversized with
    | Some len ->
      (* tell the offender why before dropping the connection: past the
         bad header the stream can no longer be framed *)
      Protocol.write_frame conn
        (Protocol.encode_response
           (Protocol.Failed
              (Printf.sprintf
                 "request frame of %d bytes exceeds the %d-byte limit" len
                 Protocol.max_frame)))
    | None -> if bodies <> [] && !stop = Keep_going then loop ()
  in
  (try loop () with Unix.Unix_error _ -> ());
  !stop

(* Serve until a Shutdown request arrives.  [on_ready] fires after the
   socket is listening (tests use it to synchronize). *)
let serve ?(max_batch = 64) ?(on_ready = fun () -> ())
    ~(socket : string) (server : Server.t) : unit =
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket);
  Unix.listen fd 64;
  on_ready ();
  let rec accept_loop () =
    match Unix.accept fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    | conn, _ ->
      let stop = serve_connection server max_batch conn in
      close conn;
      (match stop with Keep_going -> accept_loop () | Stop -> ())
  in
  accept_loop ();
  close fd;
  try Unix.unlink socket with Unix.Unix_error _ -> ()

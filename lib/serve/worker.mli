(** The forked worker pool: pipeline execution isolated from the
    daemon's accept loop.

    Each worker is a forked child running its own {!Server.t} and
    speaking the wire protocol over a socketpair.  A crash costs the
    request the worker was carrying and a respawn — never the daemon; a
    worker that blows past a request's hard deadline is SIGKILLed and
    respawned.  Requests with the same [route] affinity hint land on
    the same slot, so per-worker caches still hit and link-time IPO
    runs once per library set within a slot. *)

type t

type outcome =
  | Resp of Protocol.response
  | Crashed  (** the worker died mid-request (it has been respawned) *)
  | Hard_timeout
      (** no answer by [hard]; the worker was killed and respawned *)

(** [create ?n ?faults ?on_child config] forks [n] workers (min 1).
    Each child installs [faults] (arming crash injection for its slot
    and generation), calls [on_child] — the daemon closes its listening
    and connection fds there — and serves frames until its pipe
    closes. *)
val create :
  ?n:int -> ?faults:Faults.plan -> ?on_child:(unit -> unit) ->
  Server.config -> t

val size : t -> int

(** Times any slot has been respawned (crashes + hard timeouts). *)
val restarts : t -> int

(** [dispatch t ?hard ~route req] sends [req] to the slot chosen by
    [route] (round-robin when [None]) and waits for its answer.
    [hard] is an absolute wall-clock instant: past it the worker is
    killed.  Give it a grace interval beyond the request's own
    [deadline_ms] so the worker's cooperative [Timed_out] answer wins
    whenever it can. *)
val dispatch :
  t -> ?hard:float -> route:string option -> Protocol.request -> outcome

(** SIGTERM every worker and reap them. *)
val shutdown : t -> unit

(** The compilation service: request handling, the sharded
    content-addressed pass-result cache, batched link-time IPO, and
    the translation-validation gate.  The daemon ({!Daemon}) is a
    socket loop over [handle]/[handle_batch]; tests and bench call
    them directly. *)

type config = {
  shards : int;
  shard_bytes : int;
  validate : bool;
      (** validate every compile/link witness, as if each request set
          its validate flag *)
  validate_fuel : int;  (** interpreter fuel for witness replays *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t

val cache : t -> Cache.t
val hit_rate : t -> float
val requests : t -> int
val validation_rejects : t -> int
val batched_link_groups : t -> int

(** Requests answered [Timed_out] so far. *)
val timed_out : t -> int

(** Handle one request.  Records latency and counters; never raises on
    malformed payloads (returns [Failed]).  A request whose
    [deadline_ms] budget expires at a pass boundary is answered
    [Timed_out]; enforcement is cooperative (single passes run to
    completion), so the daemon backs it with a hard worker kill. *)
val handle : t -> Protocol.request -> Protocol.response

(** Handle a queue of requests in order, first pre-warming the
    link-time IPO cache once per group of Link requests that share a
    library set — the daemon calls this when several frames are queued
    on the socket. *)
val handle_batch : t -> Protocol.request list -> Protocol.response list

(** {1 Cache probing}

    With forked workers, the daemon keeps a "front" server whose cache
    spans workers: it probes before dispatching and installs worker
    results after. *)

type probe =
  | Hit of Protocol.response
      (** answered from the front cache, no worker involved — the only
          service available in degraded (circuit-open) mode *)
  | Miss of { key : string; route : string option }
      (** not cached: dispatch to a worker, then {!install} its result
          under [key].  [route] is an affinity hint — requests sharing
          it should go to the same worker (link-time IPO per library
          set, content-digest locality for compiles). *)
  | Uncached of { route : string option }
      (** never served from the front cache (Run — execution happens in
          a worker — and control requests, or unparseable payloads) *)

(** Never raises: a probe failure degrades to [Uncached]. *)
val probe : t -> Protocol.request -> probe

(** Install a worker-computed [Served] payload under [key] (no-op for
    error responses). *)
val install : t -> key:string -> Protocol.response -> unit

(** The payload of a [Stats] response: per-shard hit rates, evictions,
    occupancy, request counters, and the latency histogram summary.
    [extra] fields (raw JSON values) are spliced in at top level — the
    daemon adds its supervision state under ["daemon"]. *)
val stats_json : ?extra:(string * string) list -> t -> string

(** The compilation service: request handling, the sharded
    content-addressed pass-result cache, batched link-time IPO, and
    the translation-validation gate.  The daemon ({!Daemon}) is a
    socket loop over [handle]/[handle_batch]; tests and bench call
    them directly. *)

type config = {
  shards : int;
  shard_bytes : int;
  validate : bool;
      (** validate every compile/link witness, as if each request set
          its validate flag *)
  validate_fuel : int;  (** interpreter fuel for witness replays *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t

val cache : t -> Cache.t
val hit_rate : t -> float
val requests : t -> int
val validation_rejects : t -> int
val batched_link_groups : t -> int

(** Handle one request.  Records latency and counters; never raises on
    malformed payloads (returns [Failed]). *)
val handle : t -> Protocol.request -> Protocol.response

(** Handle a queue of requests in order, first pre-warming the
    link-time IPO cache once per group of Link requests that share a
    library set — the daemon calls this when several frames are queued
    on the socket. *)
val handle_batch : t -> Protocol.request list -> Protocol.response list

(** The payload of a [Stats] response: per-shard hit rates, evictions,
    occupancy, request counters, and the latency histogram summary. *)
val stats_json : t -> string

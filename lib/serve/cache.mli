(** Sharded, byte-budgeted LRU cache mapping content-addressed keys
    (module digest × pipeline spec, built by {!Server}) to opaque byte
    values (optimized bitcode, lint reports).

    Shard assignment uses an internal FNV-1a hash of the key, so it is
    stable across processes and OCaml versions; each shard evicts
    least-recently-used entries when a put pushes it over its byte
    budget.  Values larger than a whole shard budget are never
    admitted.

    Every entry carries an MD5 of its value, verified on each hit: a
    corrupted entry is dropped (counted in [s_corrupt]) and reported
    as a miss, so the caller recomputes instead of serving garbage. *)

type t

val default_shards : int
val default_shard_bytes : int

val create : ?shards:int -> ?shard_bytes:int -> unit -> t
val nshards : t -> int

(** The shard a key maps to (deterministic). *)
val shard_of : t -> string -> int

(** Lookup; a hit refreshes the entry's recency. *)
val find : t -> string -> string option

(** Insert or refresh, then evict LRU entries past the shard budget. *)
val put : t -> string -> string -> unit

(** Drop an entry if present (no-op otherwise). *)
val remove : t -> string -> unit

type shard_stats = {
  s_entries : int;
  s_bytes : int;
  s_budget : int;
  s_hits : int;
  s_misses : int;
  s_puts : int;
  s_evictions : int;
  s_oversize : int;
  s_corrupt : int;  (** integrity failures detected (and self-healed) *)
}

val shard_stats : t -> shard_stats array

val hits : t -> int

(** Total integrity failures detected across shards. *)
val corrupt : t -> int

val misses : t -> int
val evictions : t -> int
val entries : t -> int
val bytes : t -> int

(** hits / (hits + misses), 0 when idle. *)
val hit_rate : t -> float

(** One shard's keys, most-recently-used first (tests). *)
val keys_mru_first : t -> int -> string list

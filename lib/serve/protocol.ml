(* The wire protocol: length-framed binary request/response messages.

   Frame   := u32-be length, then that many body bytes.
   Body    := one tag byte, then tag-specific fields.
   Strings := u32-be length + bytes.  Ints are u32-be (or u64-be where
   noted); floats travel as IEEE-754 bits in a u64.

   The same codec serves the Unix-socket daemon and any in-process
   round-trip test; [Server.handle] itself works on the decoded types,
   so tests and bench can skip the socket entirely. *)

type pipeline =
  | Level of int
  | Passes of string list

let pipeline_to_string = function
  | Level l -> Printf.sprintf "O%d" l
  | Passes ps -> "passes:" ^ String.concat "," ps

let pipeline_of_string (s : string) : (pipeline, string) result =
  let prefix = "passes:" in
  let plen = String.length prefix in
  if String.length s >= 2 && s.[0] = 'O' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some l when l >= 0 && l <= 3 -> Ok (Level l)
    | _ -> Error (Printf.sprintf "bad optimization level %S" s)
  else if String.length s > plen && String.sub s 0 plen = prefix then
    Ok
      (Passes
         (String.split_on_char ',' (String.sub s plen (String.length s - plen))))
  else Error (Printf.sprintf "bad pipeline spec %S" s)

type compile_req = {
  c_payload : string; (* .ll text or .bc image, sniffed by the loader *)
  c_pipeline : pipeline;
  c_validate : bool;
}

type link_req = {
  l_apps : string list; (* application modules, .ll or .bc *)
  l_libs : string list; (* shared libraries: IPO runs once per library set *)
  l_validate : bool;
}

type run_req = {
  r_payload : string;
  r_pipeline : pipeline;
  r_fuel : int;
  r_engine : Llvm_exec.Engine.kind;
}

type body =
  | Compile of compile_req
  | Link of link_req
  | Run of run_req
  | Lint of string
  | Stats
  | Ping
  | Shutdown

(* Every request travels in an envelope carrying its wall-clock budget.
   [deadline_ms = 0] means "no deadline"; otherwise the server answers
   [Timed_out] rather than keep working past the budget, and the daemon
   kills a worker that overruns it. *)
type request = {
  deadline_ms : int;
  body : body;
}

let req ?(deadline_ms = 0) (body : body) : request = { deadline_ms; body }

(* Every served response carries the cache metrics for the request. *)
type metrics = {
  m_hit : bool;
  m_shard : int; (* -1 when the request never touched the cache *)
  m_pipeline_ms : float; (* time spent in pipelines (0 on a hit) *)
  m_bytes : int; (* payload size *)
}

let no_metrics = { m_hit = false; m_shard = -1; m_pipeline_ms = 0.0; m_bytes = 0 }

type response =
  | Served of { payload : string; metrics : metrics }
  | Rejected of string (* validation witness failure: result withheld *)
  | Failed of string (* malformed input, unknown pass, ... *)
  | Timed_out of string (* the request's deadline expired mid-work *)
  | Busy of { retry_after_ms : int } (* shed: queue full or degraded mode *)

type run_reply = {
  status : string;
  exit_code : int;
  output : string;
  instructions : int;
}

(* -- Primitive writers/readers ---------------------------------------------- *)

let w_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let w_u32 b v =
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let w_u64 b (v : int64) =
  for i = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL)))
  done

let w_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_bool b v = w_u8 b (if v then 1 else 0)
let w_float b f = w_u64 b (Int64.bits_of_float f)

exception Bad of string

type cursor = { data : string; mutable pos : int }

let r_u8 c =
  if c.pos >= String.length c.data then raise (Bad "truncated message");
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r_u32 c =
  let a = r_u8 c in
  let b = r_u8 c in
  let d = r_u8 c in
  let e = r_u8 c in
  (a lsl 24) lor (b lsl 16) lor (d lsl 8) lor e

let r_u64 c =
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (r_u8 c))
  done;
  !v

let r_str c =
  let n = r_u32 c in
  if c.pos + n > String.length c.data then raise (Bad "truncated string");
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let r_bool c = r_u8 c <> 0
let r_float c = Int64.float_of_bits (r_u64 c)

let r_list (c : cursor) (f : cursor -> 'a) : 'a list =
  let n = r_u32 c in
  List.init n (fun _ -> f c)

let w_list b (f : Buffer.t -> 'a -> unit) (xs : 'a list) =
  w_u32 b (List.length xs);
  List.iter (f b) xs

(* -- Engine kinds ------------------------------------------------------------ *)

let engine_code = function
  | Llvm_exec.Engine.Interp_tier -> 0
  | Llvm_exec.Engine.Bytecode_tier -> 1
  | Llvm_exec.Engine.Tiered -> 2

let engine_of_code = function
  | 0 -> Llvm_exec.Engine.Interp_tier
  | 1 -> Llvm_exec.Engine.Bytecode_tier
  | 2 -> Llvm_exec.Engine.Tiered
  | n -> raise (Bad (Printf.sprintf "bad engine code %d" n))

(* -- Requests ---------------------------------------------------------------- *)

let tag_compile = 1
let tag_link = 2
let tag_run = 3
let tag_lint = 4
let tag_stats = 5
let tag_shutdown = 6
let tag_ping = 7

let encode_request (r : request) : string =
  let b = Buffer.create 256 in
  w_u32 b r.deadline_ms;
  (match r.body with
  | Compile { c_payload; c_pipeline; c_validate } ->
    w_u8 b tag_compile;
    w_str b c_payload;
    w_str b (pipeline_to_string c_pipeline);
    w_bool b c_validate
  | Link { l_apps; l_libs; l_validate } ->
    w_u8 b tag_link;
    w_list b w_str l_apps;
    w_list b w_str l_libs;
    w_bool b l_validate
  | Run { r_payload; r_pipeline; r_fuel; r_engine } ->
    w_u8 b tag_run;
    w_str b r_payload;
    w_str b (pipeline_to_string r_pipeline);
    w_u64 b (Int64.of_int r_fuel);
    w_u8 b (engine_code r_engine)
  | Lint payload ->
    w_u8 b tag_lint;
    w_str b payload
  | Stats -> w_u8 b tag_stats
  | Ping -> w_u8 b tag_ping
  | Shutdown -> w_u8 b tag_shutdown);
  Buffer.contents b

let pipeline_of_cursor c =
  match pipeline_of_string (r_str c) with
  | Ok p -> p
  | Error e -> raise (Bad e)

let decode_request (frame : string) : (request, string) result =
  let c = { data = frame; pos = 0 } in
  try
    let deadline_ms = r_u32 c in
    let tag = r_u8 c in
    let body =
      if tag = tag_compile then
        let c_payload = r_str c in
        let c_pipeline = pipeline_of_cursor c in
        let c_validate = r_bool c in
        Compile { c_payload; c_pipeline; c_validate }
      else if tag = tag_link then
        let l_apps = r_list c r_str in
        let l_libs = r_list c r_str in
        let l_validate = r_bool c in
        Link { l_apps; l_libs; l_validate }
      else if tag = tag_run then
        let r_payload = r_str c in
        let r_pipeline = pipeline_of_cursor c in
        let r_fuel = Int64.to_int (r_u64 c) in
        let r_engine = engine_of_code (r_u8 c) in
        Run { r_payload; r_pipeline; r_fuel; r_engine }
      else if tag = tag_lint then Lint (r_str c)
      else if tag = tag_stats then Stats
      else if tag = tag_ping then Ping
      else if tag = tag_shutdown then Shutdown
      else raise (Bad (Printf.sprintf "unknown request tag %d" tag))
    in
    if c.pos <> String.length frame then Error "trailing bytes in request"
    else Ok { deadline_ms; body }
  with Bad e -> Error e

(* -- Responses ---------------------------------------------------------------- *)

let tag_served = 1
let tag_rejected = 2
let tag_failed = 3
let tag_timed_out = 4
let tag_busy = 5

let encode_response (r : response) : string =
  let b = Buffer.create 256 in
  (match r with
  | Served { payload; metrics } ->
    w_u8 b tag_served;
    w_str b payload;
    w_bool b metrics.m_hit;
    w_u32 b (metrics.m_shard land 0xffff);
    w_u8 b (if metrics.m_shard < 0 then 1 else 0);
    w_float b metrics.m_pipeline_ms;
    w_u32 b metrics.m_bytes
  | Rejected msg ->
    w_u8 b tag_rejected;
    w_str b msg
  | Failed msg ->
    w_u8 b tag_failed;
    w_str b msg
  | Timed_out msg ->
    w_u8 b tag_timed_out;
    w_str b msg
  | Busy { retry_after_ms } ->
    w_u8 b tag_busy;
    w_u32 b retry_after_ms);
  Buffer.contents b

let decode_response (body : string) : (response, string) result =
  let c = { data = body; pos = 0 } in
  try
    let tag = r_u8 c in
    let resp =
      if tag = tag_served then begin
        let payload = r_str c in
        let m_hit = r_bool c in
        let shard_raw = r_u32 c in
        let negative = r_u8 c <> 0 in
        let m_pipeline_ms = r_float c in
        let m_bytes = r_u32 c in
        Served
          { payload;
            metrics =
              { m_hit; m_shard = (if negative then -1 else shard_raw);
                m_pipeline_ms; m_bytes } }
      end
      else if tag = tag_rejected then Rejected (r_str c)
      else if tag = tag_failed then Failed (r_str c)
      else if tag = tag_timed_out then Timed_out (r_str c)
      else if tag = tag_busy then Busy { retry_after_ms = r_u32 c }
      else raise (Bad (Printf.sprintf "unknown response tag %d" tag))
    in
    if c.pos <> String.length body then Error "trailing bytes in response"
    else Ok resp
  with Bad e -> Error e

(* -- Run replies (the payload of a Served Run response) ----------------------- *)

let encode_run_reply (r : run_reply) : string =
  let b = Buffer.create 64 in
  w_str b r.status;
  w_u32 b (r.exit_code land 0xffff);
  w_str b r.output;
  w_u64 b (Int64.of_int r.instructions);
  Buffer.contents b

let decode_run_reply (body : string) : (run_reply, string) result =
  let c = { data = body; pos = 0 } in
  try
    let status = r_str c in
    let exit_code = r_u32 c in
    let output = r_str c in
    let instructions = Int64.to_int (r_u64 c) in
    Ok { status; exit_code; output; instructions }
  with Bad e -> Error e

(* -- Framing over file descriptors -------------------------------------------- *)

(* 256 MB: far above any real module, small enough to reject garbage
   frames from a confused client before allocating. *)
let max_frame = 256 * 1024 * 1024

(* Oversize is not EOF: the peer deserves an answer (and a log line)
   before the connection drops, and after a bad header the stream can
   no longer be framed anyway. *)
exception Oversized_frame of int

let write_frame (fd : Unix.file_descr) (body : string) : unit =
  let b = Buffer.create (String.length body + 4) in
  w_u32 b (String.length body);
  Buffer.add_string b body;
  let s = Buffer.to_bytes b in
  let n = Bytes.length s in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd s !written (n - !written)
  done

(* Read exactly [n] bytes; [None] on clean EOF at a frame boundary. *)
let read_exactly (fd : Unix.file_descr) (n : int) : Bytes.t option =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then Some buf
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> None
      | k -> go (off + k)
  in
  go 0

let header_len (hdr : Bytes.t) : int =
  (Char.code (Bytes.get hdr 0) lsl 24)
  lor (Char.code (Bytes.get hdr 1) lsl 16)
  lor (Char.code (Bytes.get hdr 2) lsl 8)
  lor Char.code (Bytes.get hdr 3)

let read_frame (fd : Unix.file_descr) : string option =
  match read_exactly fd 4 with
  | None -> None
  | Some hdr ->
    let len = header_len hdr in
    if len > max_frame then raise (Oversized_frame len)
    else (
      match read_exactly fd len with
      | None -> None
      | Some body -> Some (Bytes.to_string body))

(* -- Deadline-bounded framing -------------------------------------------------- *)

(* The fix for the documented stall bug: a peer that sends a partial
   frame and then stalls must not stall the reader with it.  Waiting for
   the *first* byte of a frame is bounded by [idle] (a silent connection
   is just idle); once any byte has arrived, the rest of the frame must
   land within [deadline] seconds or the read gives up ([Stalled]). *)

type read_outcome =
  | Frame of string
  | Eof (* clean close at a frame boundary, or torn mid-frame *)
  | Idle (* no byte arrived within [idle] *)
  | Stalled (* a frame started but did not complete within [deadline] *)

(* Wait until [fd] is readable or [until] (absolute; [infinity] = wait
   forever) passes. *)
let wait_readable (fd : Unix.file_descr) (until : float) : bool =
  let rec go () =
    let dt =
      if until = infinity then -1.0 (* select: negative = block *)
      else until -. Unix.gettimeofday ()
    in
    if until <> infinity && dt <= 0.0 then false
    else
      match Unix.select [ fd ] [] [] dt with
      | [ _ ], _, _ -> true
      | _ -> go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* Read exactly [n] bytes, none of them later than [until]. *)
let read_exactly_within (fd : Unix.file_descr) (n : int) (until : float) :
    [ `Bytes of Bytes.t | `Eof | `Timeout ] =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then `Bytes buf
    else if not (wait_readable fd until) then `Timeout
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> `Eof
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_frame_within ?(idle = infinity) ~(deadline : float)
    (fd : Unix.file_descr) : read_outcome =
  let idle_until =
    if idle = infinity then infinity else Unix.gettimeofday () +. idle
  in
  if not (wait_readable fd idle_until) then Idle
  else
    (* a byte is pending: the whole frame now has [deadline] seconds *)
    let until = Unix.gettimeofday () +. deadline in
    match read_exactly_within fd 4 until with
    | `Eof -> Eof
    | `Timeout -> Stalled
    | `Bytes hdr ->
      let len = header_len hdr in
      if len > max_frame then raise (Oversized_frame len)
      else (
        match read_exactly_within fd len until with
        | `Eof -> Eof
        | `Timeout -> Stalled
        | `Bytes body -> Frame (Bytes.to_string body))

(* Seeded fault injection for the serving layer.

   A [plan] describes which faults to inject and how often; every
   decision is drawn from a deterministic PRNG seeded from the plan's
   seed (per process: workers re-salt with their slot and generation),
   so a failing chaos run replays exactly from its seed.

   Faults come in three families:

   - Server-side, consulted by [Server] at pipeline boundaries:
     slow pipelines (a sleep before the first pass, which a deadline
     watchdog must catch) and worker crashes ([Stdlib.exit] with
     {!crash_exit_code} at a configurable point).  Crashes only fire in
     processes that called {!arm_crashes} — worker children arm
     themselves; the daemon and in-process tests never do, so an
     injected crash can only ever take down a worker.

   - Cache corruption, consulted by [Cache.find]: a hit's stored bytes
     are flipped before the integrity check, which must detect the
     damage, drop the entry and report a miss instead of serving
     garbage.

   - Client-side framing faults, used by the chaos bench to play a
     hostile client: torn frames (header + half the body, then close),
     mid-frame stalls (half the body, a sleep longer than the daemon's
     frame deadline, then the rest) and garbage headers. *)

module Rng = Llvm_workloads.Rng

type point = Before_pipeline | Mid_pipeline

type plan = {
  f_seed : int;
  f_crash_rate : float; (* per pipeline run, in armed processes *)
  f_crash_point : point;
  f_crash_generation_limit : int; (* generations >= limit never crash *)
  f_skip : int; (* first N pipeline runs per process are fault-free *)
  f_slow_rate : float; (* per pipeline run *)
  f_slow_ms : int;
  f_corrupt_rate : float; (* per cache find *)
}

let plan ?(crash_rate = 0.0) ?(crash_point = Mid_pipeline)
    ?(crash_generation_limit = max_int) ?(skip = 0) ?(slow_rate = 0.0)
    ?(slow_ms = 0) ?(corrupt_rate = 0.0) ~(seed : int) () : plan =
  { f_seed = seed; f_crash_rate = crash_rate; f_crash_point = crash_point;
    f_crash_generation_limit = crash_generation_limit; f_skip = skip;
    f_slow_rate = slow_rate; f_slow_ms = slow_ms; f_corrupt_rate = corrupt_rate }

(* An injected crash exits with this code so a supervisor (and a test)
   can tell it from a real bug. *)
let crash_exit_code = 66

(* -- Process-global state ------------------------------------------------------ *)

type state = {
  st_plan : plan;
  st_rng : Rng.t;
  mutable st_pipelines : int; (* pipeline runs so far in this process *)
  mutable st_crash_armed : bool;
  mutable st_generation : int;
  mutable st_pending_crash : point option; (* decided at pipeline start *)
}

let state : state option ref = ref None

let install (p : plan) : unit =
  state :=
    Some
      { st_plan = p; st_rng = Rng.create (p.f_seed lxor 0x5eed_f417);
        st_pipelines = 0; st_crash_armed = false; st_generation = 0;
        st_pending_crash = None }

let clear () : unit = state := None
let active () : plan option = Option.map (fun s -> s.st_plan) !state

let arm_crashes ~(slot : int) ~(generation : int) : unit =
  match !state with
  | None -> ()
  | Some s ->
    s.st_crash_armed <- true;
    s.st_generation <- generation;
    (* each worker incarnation draws from its own stream, so a crash
       decision replays from (seed, slot, generation) *)
    let salted =
      s.st_plan.f_seed
      lxor ((slot + 1) * 0x9e3779b9)
      lxor ((generation + 1) * 0x85ebca6b)
    in
    (* xorshift's zero state is absorbing *)
    Rng.set_state s.st_rng (Int64.of_int (if salted = 0 then 1 else salted))

(* Draw true with probability [rate]. *)
let fires (rng : Rng.t) (rate : float) : bool =
  rate > 0.0 && float_of_int (Rng.int rng 1_000_000) < rate *. 1_000_000.0

(* [Unix._exit]: an injected crash must not run at_exit handlers or
   flush stdio buffers inherited from the daemon across the fork. *)
let crash_now () = Unix._exit crash_exit_code

(* -- Server-side hooks --------------------------------------------------------- *)

(* Called once per pipeline run, before the first pass: may sleep (the
   slow-pipeline fault) and decides whether this run crashes, and
   where.  A [Before_pipeline] crash fires here; [Mid_pipeline] is left
   pending for the next {!pass_boundary}. *)
let pipeline_start () : unit =
  match !state with
  | None -> ()
  | Some s ->
    let p = s.st_plan in
    s.st_pipelines <- s.st_pipelines + 1;
    s.st_pending_crash <- None;
    if s.st_pipelines > p.f_skip then begin
      if fires s.st_rng p.f_slow_rate && p.f_slow_ms > 0 then
        Unix.sleepf (float_of_int p.f_slow_ms /. 1000.0);
      if
        s.st_crash_armed
        && s.st_generation < p.f_crash_generation_limit
        && fires s.st_rng p.f_crash_rate
      then
        match p.f_crash_point with
        | Before_pipeline -> crash_now ()
        | Mid_pipeline -> s.st_pending_crash <- Some Mid_pipeline
    end

(* Called between passes: fires a pending mid-pipeline crash. *)
let pass_boundary () : unit =
  match !state with
  | None -> ()
  | Some s -> (
    match s.st_pending_crash with
    | Some Mid_pipeline -> crash_now ()
    | _ -> ())

(* -- Cache corruption ---------------------------------------------------------- *)

(* Consulted by [Cache.find] on a hit: [Some garbled] means the stored
   bytes rotted at rest and the integrity check had better notice. *)
let corrupt (value : string) : string option =
  match !state with
  | None -> None
  | Some s ->
    if value <> "" && fires s.st_rng s.st_plan.f_corrupt_rate then begin
      let b = Bytes.of_string value in
      let i = Rng.int s.st_rng (Bytes.length b) in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x41));
      Some (Bytes.to_string b)
    end
    else None

(* -- Client-side framing faults ------------------------------------------------ *)

type client_fault = Torn_frame | Stalled_frame | Garbage_header

(* Write [body] as a deliberately faulty frame.  [Torn_frame] sends the
   header and half the body, then leaves the stream dangling (caller
   closes).  [Stalled_frame] sends half, sleeps [stall_ms], then tries
   to finish — by then a deadline-enforcing daemon has answered
   [Timed_out] and closed, so the tail write may hit EPIPE (ignored).
   [Garbage_header] announces an impossible frame length. *)
let send_faulty ?(stall_ms = 0) (fault : client_fault)
    (fd : Unix.file_descr) (body : string) : unit =
  let write_all s =
    let b = Bytes.of_string s in
    let n = Bytes.length b in
    let off = ref 0 in
    while !off < n do
      off := !off + Unix.write fd b !off (n - !off)
    done
  in
  let header len =
    String.init 4 (fun i -> Char.chr ((len lsr (8 * (3 - i))) land 0xff))
  in
  let half = String.length body / 2 in
  match fault with
  | Torn_frame ->
    write_all (header (String.length body));
    write_all (String.sub body 0 half)
  | Stalled_frame -> (
    write_all (header (String.length body));
    write_all (String.sub body 0 half);
    Unix.sleepf (float_of_int stall_ms /. 1000.0);
    try write_all (String.sub body half (String.length body - half))
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ())
  | Garbage_header -> write_all (header (Protocol.max_frame + 1))

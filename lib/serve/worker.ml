(* The forked worker pool: pipeline execution isolated from the accept
   loop.

   Each worker is a forked child holding its own [Server.t] (caches and
   all) and speaking the wire protocol over a socketpair: the daemon
   writes one request frame, the worker answers one response frame.  A
   worker that crashes (a pass bug, an OOM kill, an injected fault)
   costs exactly the request it was carrying — the daemon sees EOF on
   the socketpair, reports [Crashed], and respawns the slot with a
   bumped generation.  A worker that blows far past a request's hard
   deadline is SIGKILLed and respawned likewise ([Hard_timeout]); the
   in-process soft deadline inside [Server.handle] normally answers
   [Timed_out] well before that, so hard kills are the backstop, not
   the norm.

   Requests carry a [route] affinity hint (content digest, library-set
   digest): requests sharing a route go to the same slot, so per-worker
   caches still get their hits and link-time IPO runs once per library
   set inside that worker. *)

type worker = {
  w_slot : int;
  mutable w_pid : int;
  mutable w_fd : Unix.file_descr; (* daemon's end of the socketpair *)
  mutable w_generation : int;
}

type t = {
  p_config : Server.config;
  p_faults : Faults.plan option;
  p_on_child : unit -> unit;
  p_workers : worker array;
  mutable p_restarts : int;
  mutable p_rr : int; (* round-robin cursor for unrouted requests *)
}

type outcome =
  | Resp of Protocol.response
  | Crashed
  | Hard_timeout

(* -- Child side ---------------------------------------------------------------- *)

let child_main ~(slot : int) ~(generation : int)
    (faults : Faults.plan option) (config : Server.config)
    (fd : Unix.file_descr) : 'a =
  (* the child inherited the daemon's signal dispositions; it should
     die on SIGTERM and survive a peer closing mid-write *)
  Sys.set_signal Sys.sigterm Sys.Signal_default;
  Sys.set_signal Sys.sigint Sys.Signal_default;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (match faults with Some p -> Faults.install p | None -> Faults.clear ());
  Faults.arm_crashes ~slot ~generation;
  let server = Server.create ~config () in
  let rec loop () =
    match Protocol.read_frame fd with
    | None | (exception _) -> Unix._exit 0 (* daemon closed our pipe *)
    | Some frame ->
      let resp =
        match Protocol.decode_request frame with
        | Error e -> Protocol.Failed ("bad request: " ^ e)
        | Ok req -> Server.handle server req
      in
      (match Protocol.write_frame fd (Protocol.encode_response resp) with
      | () -> ()
      | exception _ -> Unix._exit 0);
      loop ()
  in
  loop ()

(* -- Supervision --------------------------------------------------------------- *)

let spawn (t : t) (slot : int) (generation : int) : worker =
  let ours, theirs = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.fork () with
  | 0 ->
    Unix.close ours;
    t.p_on_child ();
    child_main ~slot ~generation t.p_faults t.p_config theirs
  | pid ->
    Unix.close theirs;
    { w_slot = slot; w_pid = pid; w_fd = ours; w_generation = generation }

let create ?(n = 2) ?faults ?(on_child = fun () -> ())
    (config : Server.config) : t =
  let n = max 1 n in
  let t =
    { p_config = config; p_faults = faults; p_on_child = on_child;
      p_workers = [||]; p_restarts = 0; p_rr = 0 }
  in
  let t = { t with p_workers = Array.init n (fun slot -> spawn t slot 0) } in
  t

let size (t : t) : int = Array.length t.p_workers
let restarts (t : t) : int = t.p_restarts

let reap (pid : int) : unit =
  (* non-blocking first — the child usually died already; fall back to
     a blocking wait so we never leak a zombie *)
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | 0, _ -> ( try ignore (Unix.waitpid [] pid) with _ -> ())
  | _ -> ()
  | exception _ -> ()

let respawn (t : t) (w : worker) : unit =
  (try Unix.close w.w_fd with _ -> ());
  reap w.w_pid;
  t.p_restarts <- t.p_restarts + 1;
  let fresh = spawn t w.w_slot (w.w_generation + 1) in
  w.w_pid <- fresh.w_pid;
  w.w_fd <- fresh.w_fd;
  w.w_generation <- fresh.w_generation

let kill_and_respawn (t : t) (w : worker) : unit =
  (try Unix.kill w.w_pid Sys.sigkill with _ -> ());
  respawn t w

(* Affinity: same route, same slot.  [Hashtbl.hash] is stable for the
   lifetime of this daemon process, which is all affinity needs. *)
let slot_for (t : t) (route : string option) : int =
  match route with
  | Some r -> Hashtbl.hash r mod Array.length t.p_workers
  | None ->
    t.p_rr <- t.p_rr + 1;
    t.p_rr mod Array.length t.p_workers

(* -- Dispatch ------------------------------------------------------------------- *)

(* [hard] is an absolute wall-clock instant: a worker that has not
   answered by then is killed.  It should sit a grace interval past the
   request's own deadline so the worker's cooperative [Timed_out]
   answer wins whenever it can. *)
let dispatch (t : t) ?hard ~(route : string option)
    (req : Protocol.request) : outcome =
  let w = t.p_workers.(slot_for t route) in
  let frame = Protocol.encode_request req in
  let sent =
    match Protocol.write_frame w.w_fd frame with
    | () -> true
    | exception _ ->
      (* stale pipe from an earlier death we haven't noticed: recycle
         the slot and try once more on the fresh worker *)
      respawn t w;
      (match Protocol.write_frame w.w_fd frame with
      | () -> true
      | exception _ -> false)
  in
  if not sent then Crashed
  else begin
    let budget =
      match hard with
      | Some until -> Float.max 0.001 (until -. Unix.gettimeofday ())
      | None -> infinity
    in
    match Protocol.read_frame_within ~idle:budget ~deadline:budget w.w_fd with
    | Protocol.Frame s -> (
      match Protocol.decode_response s with
      | Ok resp -> Resp resp
      | Error e ->
        respawn t w;
        Resp (Protocol.Failed ("worker sent an undecodable response: " ^ e)))
    | Protocol.Eof | (exception Protocol.Oversized_frame _) ->
      respawn t w;
      Crashed
    | Protocol.Idle | Protocol.Stalled ->
      kill_and_respawn t w;
      Hard_timeout
  end

let shutdown (t : t) : unit =
  Array.iter
    (fun w ->
      (try Unix.close w.w_fd with _ -> ());
      (try Unix.kill w.w_pid Sys.sigterm with _ -> ());
      reap w.w_pid)
    t.p_workers

(** The Unix-domain-socket daemon loop and its client helpers.

    Single-threaded: connections are served in accept order; within a
    connection all frames already queued on the socket are drained
    (bounded by [max_batch]).  Responses preserve request order.

    Fault tolerance: framing reads carry deadlines (a stalled or idle
    client cannot wedge the daemon), requests inherit a wall-clock
    budget answered with [Timed_out] when blown, pipelines can run in
    forked supervised workers (a crash is one [Failed] response and a
    respawn), overload is shed with [Busy], and repeated
    infrastructure failures trip a circuit breaker into a degraded
    mode that serves cache hits only.  SIGINT/SIGTERM shut down
    gracefully (finish the batch, tear down workers, unlink the
    socket). *)

val default_socket : string

(** {1 Client} *)

(** Why a client call failed.  After [Unframeable] the fd has been
    closed — the stream could never be re-synchronized. *)
type error =
  | Closed
  | Unframeable of int
  | Bad_frame of string
  | Io of string

val error_to_string : error -> string

val connect : socket:string -> Unix.file_descr
val close : Unix.file_descr -> unit
val send : Unix.file_descr -> Protocol.request -> unit
val receive : Unix.file_descr -> (Protocol.response, error) result

(** [send] then [receive]. *)
val request :
  Unix.file_descr -> Protocol.request -> (Protocol.response, error) result

(** One request on a fresh connection per attempt, retrying [Busy]
    answers (honouring their [retry_after_ms] hint) and transport
    failures with exponential backoff and seeded jitter. *)
val request_with_retry :
  ?attempts:int ->
  ?base_delay_ms:int ->
  ?seed:int ->
  socket:string ->
  Protocol.request ->
  (Protocol.response, error) result

(** {1 Daemon} *)

type config = {
  max_batch : int;  (** frames drained per batch *)
  max_queue : int;  (** work requests admitted per batch; rest [Busy] *)
  deadline_ms : int;  (** default per-request budget; 0 = none *)
  frame_deadline_ms : int;  (** budget for completing a started frame *)
  idle_timeout_ms : int;  (** budget for an idle connection *)
  workers : int;  (** forked workers; 0 = run pipelines in-process *)
  retry_after_ms : int;  (** hint carried by [Busy] responses *)
  breaker_window : int;  (** sliding window of worker-path outcomes *)
  breaker_min : int;  (** min outcomes in window before tripping *)
  breaker_ratio : float;  (** failure ratio that trips the breaker *)
  breaker_cooldown_ms : int;  (** degraded dwell before a retrial *)
}

val default_config : config

(** Raised by {!serve} instead of clobbering a socket another live
    daemon answers on; genuinely stale socket files are unlinked. *)
exception Busy_socket of string

(** Bind [socket] and serve until a [Shutdown] request or a
    SIGINT/SIGTERM arrives, then tear down workers and remove the
    socket file.  The daemon builds its own front server from the
    given {!Server.config}; with [config.workers > 0] each forked
    worker runs its own server built from the same config (and the
    fault plan, when one is given — crashes only arm inside workers).
    [on_ready] fires once listening (tests synchronize on it). *)
val serve :
  ?config:config ->
  ?faults:Faults.plan ->
  ?on_ready:(unit -> unit) ->
  socket:string ->
  Server.config ->
  unit

(** The Unix-domain-socket daemon loop and its client helpers.

    Single-threaded: connections are served in accept order; within a
    connection all frames already queued on the socket are drained
    (bounded by [max_batch]) and handed to {!Server.handle_batch}, so
    pipelined link requests sharing a library set run their IPO
    pipeline once.  Responses preserve request order. *)

val default_socket : string

(** {1 Client} *)

val connect : socket:string -> Unix.file_descr
val close : Unix.file_descr -> unit
val send : Unix.file_descr -> Protocol.request -> unit
val receive : Unix.file_descr -> (Protocol.response, string) result

(** [send] then [receive]. *)
val request :
  Unix.file_descr -> Protocol.request -> (Protocol.response, string) result

(** {1 Daemon} *)

(** Bind [socket], serve until a [Shutdown] request arrives, then
    remove the socket file.  [on_ready] fires once listening (tests
    synchronize on it). *)
val serve :
  ?max_batch:int ->
  ?on_ready:(unit -> unit) ->
  socket:string ->
  Server.t ->
  unit

(* Compilation-as-a-service: the in-process request handler.

   The daemon (Daemon) is a thin socket loop over this module, and
   tests/bench call [handle] directly — the pure-pipeline core stays in
   lib/transforms; this driver owns caching, batching and scheduling
   (the Juvix Compiler/Pipeline split named in the roadmap).

   Content addressing: a request payload (textual IR or bitcode) is
   parsed once and re-encoded to the canonical bitcode form; the MD5 of
   those bytes (Llvm_bitcode.Digest) is the module's identity, so the
   same program arriving as .ll or .bc hits the same cache line.  The
   pass-result cache maps (module digest × pipeline spec) to optimized
   bitcode across N LRU shards (Cache).

   Link batching: a Link request names application modules plus a
   shared library set.  The expensive link-time IPO pipeline runs once
   per distinct library set (cached under the library-set digest);
   each request then links its apps against the pre-optimized library
   and pays only the per-module pipeline.  [handle_batch] pre-warms
   the library cache once per group of queued requests sharing a
   library set, which is what the daemon calls when several frames are
   waiting on the socket.

   Validation: with [--validate] (or per-request), the server replays
   the translation-validation witness before releasing a result: the
   original module and the optimized module are executed in the
   interpreter tier under the same fuel and must agree on status and
   output.  A divergent optimization is Rejected on the request that
   triggered it — never served, never cached. *)

open Llvm_ir
module Engine = Llvm_exec.Engine
module Interp = Llvm_exec.Interp

type config = {
  shards : int;
  shard_bytes : int;
  validate : bool; (* force witness validation on every compile/link *)
  validate_fuel : int;
}

let default_config =
  { shards = Cache.default_shards;
    shard_bytes = Cache.default_shard_bytes;
    validate = false;
    validate_fuel = 20_000_000 }

type counters = {
  mutable c_compile : int;
  mutable c_link : int;
  mutable c_run : int;
  mutable c_lint : int;
  mutable c_stats : int;
  mutable c_ping : int;
  mutable c_failed : int;
  mutable c_rejected : int;
  mutable c_timed_out : int;
}

(* log2 microsecond buckets: bucket b holds latencies in [2^b, 2^b+1) us *)
let lat_buckets = 32

type t = {
  cfg : config;
  cache : Cache.t;
  ctr : counters;
  mutable validation_rejects : int;
  mutable batched_link_groups : int;
  mutable batched_link_members : int;
  lat : int array;
  mutable lat_count : int;
  mutable lat_max_us : int;
  started : float;
}

let create ?(config = default_config) () : t =
  { cfg = config;
    cache = Cache.create ~shards:config.shards ~shard_bytes:config.shard_bytes ();
    ctr =
      { c_compile = 0; c_link = 0; c_run = 0; c_lint = 0; c_stats = 0;
        c_ping = 0; c_failed = 0; c_rejected = 0; c_timed_out = 0 };
    validation_rejects = 0;
    batched_link_groups = 0;
    batched_link_members = 0;
    lat = Array.make lat_buckets 0;
    lat_count = 0;
    lat_max_us = 0;
    started = Unix.gettimeofday () }

let cache (t : t) : Cache.t = t.cache
let hit_rate (t : t) : float = Cache.hit_rate t.cache
let validation_rejects (t : t) : int = t.validation_rejects
let batched_link_groups (t : t) : int = t.batched_link_groups

let requests (t : t) : int =
  t.ctr.c_compile + t.ctr.c_link + t.ctr.c_run + t.ctr.c_lint + t.ctr.c_stats
  + t.ctr.c_ping

let timed_out (t : t) : int = t.ctr.c_timed_out

(* -- Module loading ----------------------------------------------------------- *)

let first_verify_error (m : Ir.modul) : string option =
  match Verify.verify_module m with
  | [] -> None
  | e :: _ -> Some (Fmt.str "%a" Verify.pp_error e)

(* Parse a payload and compute its canonical identity.  The canonical
   bytes are the encoder's output for the freshly loaded module, so
   textual and binary deliveries of the same program share a digest. *)
let load_payload ~(what : string) (payload : string) :
    (Ir.modul * string, string) result =
  match Loader.of_bytes ~name:what payload with
  | Error e -> Error e
  | Ok m -> (
    match first_verify_error m with
    | Some e -> Error (Fmt.str "%s: verification failed: %s" what e)
    | None -> Ok (m, Llvm_bitcode.Digest.of_module m))

(* -- Pipelines ----------------------------------------------------------------- *)

(* Raised at a pass boundary when the request's wall-clock budget is
   spent; [handle] turns it into a [Timed_out] response.  Enforcement
   is cooperative — a single pass runs to completion — so the daemon
   additionally hard-kills a worker that blows far past its deadline. *)
exception Deadline_expired

let check_deadline (deadline : float option) : unit =
  match deadline with
  | Some d when Unix.gettimeofday () > d -> raise Deadline_expired
  | _ -> ()

(* Pass-by-pass pipeline execution.  [Pass.run_sequence] is a fold of
   [run_pass], so running the same list here is behaviour-identical to
   [Pipelines.optimize_module] — but between passes we get a seam to
   check the deadline and to fire injected faults. *)
let run_passes ~(deadline : float option)
    (passes : Llvm_transforms.Pass.t list) (m : Ir.modul) : unit =
  Faults.pipeline_start ();
  List.iter
    (fun p ->
      check_deadline deadline;
      ignore (Llvm_transforms.Pass.run_pass p m);
      Faults.pass_boundary ())
    passes

let level_passes (l : int) : Llvm_transforms.Pass.t list =
  let open Llvm_transforms.Pipelines in
  match l with
  | 0 -> []
  | 1 -> per_function_cleanup
  | 2 -> per_module
  | _ -> per_module @ link_time_ipo

let run_pipeline ~(deadline : float option) (spec : Protocol.pipeline)
    (m : Ir.modul) : (unit, string) result =
  match spec with
  | Protocol.Level l ->
    run_passes ~deadline (level_passes l) m;
    Ok ()
  | Protocol.Passes names ->
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest -> (
        match Llvm_transforms.Pass.find name with
        | None -> Error (Fmt.str "unknown pass %S" name)
        | Some p -> resolve (p :: acc) rest)
    in
    Result.map (fun ps -> run_passes ~deadline ps m) (resolve [] names)

(* -- Translation-validation witness ------------------------------------------- *)

(* Observable behaviour under the interpreter tier: status plus program
   output.  Instruction counts are excluded — optimization changes them
   by design.  A module without [main] has no observable behaviour, so
   its witness is vacuously valid. *)
type behaviour = No_main | Ran of string * string

let observe (fuel : int) (m : Ir.modul) : behaviour =
  match Ir.find_func m "main" with
  | None -> No_main
  | Some _ ->
    let r, _ = Engine.run_main ~fuel Engine.Interp_tier m in
    let status =
      match r.Interp.status with
      | `Returned v -> Fmt.str "returned %a" Interp.pp_rtval v
      | `Unwound -> "unwound"
      | `Exited c -> Fmt.str "exited %d" c
      | `Trapped msg -> "trapped: " ^ msg
    in
    Ran (status, r.Interp.output)

(* [reference] must be a freshly loaded module (the pipelines mutate in
   place); compares it against the optimized module. *)
let check_witness (t : t) ~(reference : Ir.modul) ~(optimized : Ir.modul) :
    (unit, string) result =
  let fuel = t.cfg.validate_fuel in
  match (observe fuel reference, observe fuel optimized) with
  | No_main, _ | _, No_main -> Ok ()
  | Ran (s0, o0), Ran (s1, o1) ->
    if s0 <> s1 then
      Error (Fmt.str "status diverged: %S before, %S after" s0 s1)
    else if o0 <> o1 then
      Error
        (Fmt.str "output diverged (%d bytes before, %d after)"
           (String.length o0) (String.length o1))
    else Ok ()

(* -- Compile ------------------------------------------------------------------- *)

let ms (t0 : float) : float = (Unix.gettimeofday () -. t0) *. 1000.0

let served (t : t) ~hit ~key ~pipeline_ms (payload : string) :
    Protocol.response =
  Protocol.Served
    { payload;
      metrics =
        { m_hit = hit; m_shard = Cache.shard_of t.cache key;
          m_pipeline_ms = pipeline_ms; m_bytes = String.length payload } }

(* Cache key for a compile request; validated results live under their
   own keys so a validating request can only ever hit an entry that
   passed the witness. *)
let compile_key ~(validate : bool) (digest : string)
    (spec : Protocol.pipeline) : string =
  digest ^ "|" ^ Protocol.pipeline_to_string spec
  ^ if validate then "|v" else ""

(* The compile core, shared with Run: returns the optimized bitcode for
   (payload, spec), going through the cache. *)
let compile_bytes (t : t) ~(deadline : float option) ~(validate : bool)
    (payload : string) (spec : Protocol.pipeline) : Protocol.response =
  let validate = validate || t.cfg.validate in
  match load_payload ~what:"compile request" payload with
  | Error e -> Protocol.Failed e
  | Ok (m, digest) -> (
    let key = compile_key ~validate digest spec in
    match Cache.find t.cache key with
    | Some bytes -> served t ~hit:true ~key ~pipeline_ms:0.0 bytes
    | None -> (
      let t0 = Unix.gettimeofday () in
      match run_pipeline ~deadline spec m with
      | Error e -> Protocol.Failed e
      | Ok () -> (
        match first_verify_error m with
        | Some e ->
          Protocol.Failed
            (Fmt.str "pipeline produced an invalid module (pass bug): %s" e)
        | None ->
          let pipeline_ms = ms t0 in
          check_deadline deadline;
          let witness =
            if not validate then Ok ()
            else
              match Loader.of_bytes ~name:"reference" payload with
              | Error e -> Error e (* unreachable: parsed once already *)
              | Ok reference -> check_witness t ~reference ~optimized:m
          in
          (match witness with
          | Error why ->
            t.validation_rejects <- t.validation_rejects + 1;
            Protocol.Rejected
              (Fmt.str "translation validation failed for %s: %s"
                 (Protocol.pipeline_to_string spec)
                 why)
          | Ok () ->
            let bytes = fst (Llvm_bitcode.Encoder.encode m) in
            Cache.put t.cache key bytes;
            served t ~hit:false ~key ~pipeline_ms bytes))))

(* -- Link ---------------------------------------------------------------------- *)

(* Load a list of payloads; the digest of the set is the digest of the
   concatenated member digests (order-sensitive: link order matters). *)
let load_set ~(what : string) (payloads : string list) :
    (Ir.modul list * string, string) result =
  let rec go acc digests = function
    | [] ->
      Ok
        ( List.rev acc,
          Llvm_bitcode.Digest.of_bytes (String.concat "+" (List.rev digests)) )
    | p :: rest -> (
      match load_payload ~what p with
      | Error e -> Error e
      | Ok (m, d) -> go (m :: acc) (d :: digests) rest)
  in
  go [] [] payloads

(* One link-time IPO pipeline run per distinct library set, cached
   under the set digest.  [mods] are the freshly loaded library modules
   (consumed: the pipeline mutates in place); the caller loads them
   once and threads them here along with the digest, so a cache miss
   never re-parses the payloads. *)
let optimized_libs (t : t) ?deadline (mods : Ir.modul list)
    (libs_digest : string) : (Ir.modul, string) result =
  let key = libs_digest ^ "|libs-ipo" in
  let rebuild () =
    match Llvm_linker.Link.link ~name:"libs" mods with
    | exception Llvm_linker.Link.Link_error e -> Error ("link error: " ^ e)
    | libm -> (
      run_passes ~deadline Llvm_transforms.Pipelines.link_time_ipo libm;
      match first_verify_error libm with
      | Some e -> Error ("library IPO produced an invalid module: " ^ e)
      | None ->
        Cache.put t.cache key (fst (Llvm_bitcode.Encoder.encode libm));
        Ok libm)
  in
  match Cache.find t.cache key with
  | Some bytes -> (
    match Llvm_bitcode.Decoder.decode bytes with
    | m -> Ok m
    | exception Llvm_bitcode.Decoder.Malformed _ ->
      (* the image passed its checksum but does not decode (e.g. a bug
         wrote garbage under this key): self-heal by recomputing *)
      Cache.remove t.cache key;
      rebuild ())
  | None -> rebuild ()

let link_key (apps_digest : string) (libs : string list) : string =
  let tag = if libs = [] then "nolibs" else "libs" in
  apps_digest ^ "|" ^ tag ^ "|link"

let handle_link (t : t) ~(deadline : float option) (l : Protocol.link_req) :
    Protocol.response =
  if l.Protocol.l_apps = [] then Protocol.Failed "link request with no modules"
  else
    let validate = l.Protocol.l_validate || t.cfg.validate in
    match load_set ~what:"link apps" l.Protocol.l_apps with
    | Error e -> Protocol.Failed e
    | Ok (apps, apps_digest) -> (
      (* libs are loaded once here: the digest is folded into the final
         key, and the modules feed the IPO pipeline on a miss *)
      match load_set ~what:"link libs" l.Protocol.l_libs with
      | Error e -> Protocol.Failed e
      | Ok (lib_mods, libs_digest) -> (
        (* validated results live under their own keys, as in compile:
           a validating request can only hit an entry that passed the
           witness *)
        let key =
          link_key
            (Llvm_bitcode.Digest.of_bytes (apps_digest ^ "|" ^ libs_digest))
            l.Protocol.l_libs
          ^ if validate then "|v" else ""
        in
        match Cache.find t.cache key with
        | Some bytes -> served t ~hit:true ~key ~pipeline_ms:0.0 bytes
        | None -> (
          let t0 = Unix.gettimeofday () in
          let libm =
            if l.Protocol.l_libs = [] then Ok None
            else
              Result.map
                (fun m -> Some m)
                (optimized_libs t ?deadline lib_mods libs_digest)
          in
          match libm with
          | Error e -> Protocol.Failed e
          | Ok libm -> (
            let parts = apps @ Option.to_list libm in
            match Llvm_linker.Link.link ~name:"served" parts with
            | exception Llvm_linker.Link.Link_error e ->
              Protocol.Failed ("link error: " ^ e)
            | final -> (
              run_passes ~deadline Llvm_transforms.Pipelines.per_module final;
              match first_verify_error final with
              | Some e ->
                Protocol.Failed
                  ("link pipeline produced an invalid module: " ^ e)
              | None ->
                let pipeline_ms = ms t0 in
                check_deadline deadline;
                let witness =
                  if not validate then Ok ()
                  else
                    (* reference: everything re-loaded fresh, linked, never
                       optimized *)
                    match
                      load_set ~what:"link reference"
                        (l.Protocol.l_apps @ l.Protocol.l_libs)
                    with
                    | Error e -> Error e
                    | Ok (mods, _) -> (
                      match Llvm_linker.Link.link ~name:"reference" mods with
                      | exception Llvm_linker.Link.Link_error e ->
                        Error ("link error: " ^ e)
                      | reference ->
                        check_witness t ~reference ~optimized:final)
                in
                (match witness with
                | Error why ->
                  t.validation_rejects <- t.validation_rejects + 1;
                  Protocol.Rejected
                    ("translation validation failed for link: " ^ why)
                | Ok () ->
                  let bytes = fst (Llvm_bitcode.Encoder.encode final) in
                  Cache.put t.cache key bytes;
                  served t ~hit:false ~key ~pipeline_ms bytes))))))

(* -- Run ------------------------------------------------------------------------ *)

let handle_run (t : t) ~(deadline : float option) (r : Protocol.run_req) :
    Protocol.response =
  match
    compile_bytes t ~deadline ~validate:false r.Protocol.r_payload
      r.Protocol.r_pipeline
  with
  | (Protocol.Failed _ | Protocol.Rejected _ | Protocol.Timed_out _
    | Protocol.Busy _) as e ->
    e
  | Protocol.Served { payload = bytes; metrics } -> (
    check_deadline deadline;
    match Llvm_bitcode.Decoder.decode bytes with
    | exception Llvm_bitcode.Decoder.Malformed e ->
      Protocol.Failed ("corrupt optimized image: " ^ e)
    | m ->
      let result, _ =
        Engine.run_main ~fuel:r.Protocol.r_fuel r.Protocol.r_engine m
      in
      let status, exit_code =
        match result.Interp.status with
        | `Returned (Interp.Rint (_, v)) ->
          ("returned", Int64.to_int v land 0xff)
        | `Returned _ -> ("returned", 0)
        | `Exited c -> ("exited", c land 0xff)
        | `Unwound -> ("unwound", 120)
        | `Trapped msg -> ("trapped: " ^ msg, 121)
      in
      let reply =
        Protocol.encode_run_reply
          { Protocol.status; exit_code; output = result.Interp.output;
            instructions = result.Interp.instructions }
      in
      Protocol.Served { payload = reply; metrics })

(* -- Lint ----------------------------------------------------------------------- *)

let handle_lint (t : t) (payload : string) : Protocol.response =
  match load_payload ~what:"lint request" payload with
  | Error e -> Protocol.Failed e
  | Ok (m, digest) -> (
    let key = digest ^ "|lint" in
    match Cache.find t.cache key with
    | Some text -> served t ~hit:true ~key ~pipeline_ms:0.0 text
    | None ->
      let t0 = Unix.gettimeofday () in
      let diags = Llvm_analysis.Lint.run m in
      let text =
        String.concat "\n" (List.map Llvm_analysis.Lint.diag_to_json diags)
      in
      let pipeline_ms = ms t0 in
      Cache.put t.cache key text;
      served t ~hit:false ~key ~pipeline_ms text)

(* -- Stats ----------------------------------------------------------------------- *)

let record_latency (t : t) (seconds : float) : unit =
  let us = max 1 (int_of_float (seconds *. 1e6)) in
  let bucket = min (lat_buckets - 1) (int_of_float (Float.log2 (float_of_int us))) in
  t.lat.(bucket) <- t.lat.(bucket) + 1;
  t.lat_count <- t.lat_count + 1;
  if us > t.lat_max_us then t.lat_max_us <- us

(* Quantile estimate from the log2 histogram: the upper bound of the
   bucket where the cumulative count crosses q. *)
let latency_quantile_ms (t : t) (q : float) : float =
  if t.lat_count = 0 then 0.0
  else begin
    let target =
      int_of_float (Float.round (q *. float_of_int t.lat_count))
    in
    let target = max 1 target in
    let acc = ref 0 and result = ref (float_of_int t.lat_max_us /. 1000.0) in
    (try
       for b = 0 to lat_buckets - 1 do
         acc := !acc + t.lat.(b);
         if !acc >= target then begin
           result := float_of_int (1 lsl (b + 1)) /. 1000.0;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

(* [extra] is raw JSON spliced in as additional top-level fields — the
   daemon uses it to report supervision state (workers, restarts, shed
   counts, breaker) alongside the server's own counters. *)
let stats_json ?(extra : (string * string) list = []) (t : t) : string =
  let b = Buffer.create 1024 in
  let j fmt = Printf.bprintf b fmt in
  j "{\n";
  j "  \"uptime_s\": %.3f,\n" (Unix.gettimeofday () -. t.started);
  j
    "  \"requests\": {\"compile\": %d, \"link\": %d, \"run\": %d, \"lint\": \
     %d, \"stats\": %d, \"ping\": %d, \"total\": %d, \"failed\": %d, \
     \"rejected\": %d, \"timed_out\": %d},\n"
    t.ctr.c_compile t.ctr.c_link t.ctr.c_run t.ctr.c_lint t.ctr.c_stats
    t.ctr.c_ping (requests t) t.ctr.c_failed t.ctr.c_rejected
    t.ctr.c_timed_out;
  j "  \"validation_rejects\": %d,\n" t.validation_rejects;
  j "  \"batched_link_groups\": %d,\n" t.batched_link_groups;
  j "  \"batched_link_members\": %d,\n" t.batched_link_members;
  j
    "  \"cache\": {\"hit_rate\": %.4f, \"hits\": %d, \"misses\": %d, \
     \"evictions\": %d, \"entries\": %d, \"bytes\": %d, \"corrupt\": %d,\n"
    (Cache.hit_rate t.cache) (Cache.hits t.cache) (Cache.misses t.cache)
    (Cache.evictions t.cache) (Cache.entries t.cache) (Cache.bytes t.cache)
    (Cache.corrupt t.cache);
  j "    \"shards\": [\n";
  let stats = Cache.shard_stats t.cache in
  Array.iteri
    (fun k (s : Cache.shard_stats) ->
      let rate =
        if s.Cache.s_hits + s.Cache.s_misses = 0 then 0.0
        else
          float_of_int s.Cache.s_hits
          /. float_of_int (s.Cache.s_hits + s.Cache.s_misses)
      in
      j
        "      {\"shard\": %d, \"entries\": %d, \"bytes\": %d, \"budget\": \
         %d, \"hits\": %d, \"misses\": %d, \"puts\": %d, \"evictions\": %d, \
         \"oversize\": %d, \"corrupt\": %d, \"hit_rate\": %.4f}%s\n"
        k s.Cache.s_entries s.Cache.s_bytes s.Cache.s_budget s.Cache.s_hits
        s.Cache.s_misses s.Cache.s_puts s.Cache.s_evictions s.Cache.s_oversize
        s.Cache.s_corrupt rate
        (if k = Array.length stats - 1 then "" else ","))
    stats;
  j "    ]},\n";
  j
    "  \"latency\": {\"count\": %d, \"p50_ms\": %.3f, \"p90_ms\": %.3f, \
     \"p99_ms\": %.3f, \"max_ms\": %.3f}%s\n"
    t.lat_count
    (latency_quantile_ms t 0.50)
    (latency_quantile_ms t 0.90)
    (latency_quantile_ms t 0.99)
    (float_of_int t.lat_max_us /. 1000.0)
    (if extra = [] then "" else ",");
  List.iteri
    (fun i (name, json) ->
      j "  %S: %s%s\n" name json
        (if i = List.length extra - 1 then "" else ","))
    extra;
  j "}\n";
  Buffer.contents b

(* -- Dispatch ------------------------------------------------------------------- *)

let do_handle (t : t) ~(deadline : float option) (body : Protocol.body) :
    Protocol.response =
  match body with
  | Protocol.Compile c ->
    t.ctr.c_compile <- t.ctr.c_compile + 1;
    compile_bytes t ~deadline ~validate:c.Protocol.c_validate
      c.Protocol.c_payload c.Protocol.c_pipeline
  | Protocol.Link l ->
    t.ctr.c_link <- t.ctr.c_link + 1;
    handle_link t ~deadline l
  | Protocol.Run r ->
    t.ctr.c_run <- t.ctr.c_run + 1;
    handle_run t ~deadline r
  | Protocol.Lint payload ->
    t.ctr.c_lint <- t.ctr.c_lint + 1;
    handle_lint t payload
  | Protocol.Stats ->
    t.ctr.c_stats <- t.ctr.c_stats + 1;
    Protocol.Served
      { payload = stats_json t; metrics = Protocol.no_metrics }
  | Protocol.Ping ->
    t.ctr.c_ping <- t.ctr.c_ping + 1;
    Protocol.Served { payload = "pong"; metrics = Protocol.no_metrics }
  | Protocol.Shutdown ->
    (* acknowledged here; the daemon owns actually stopping *)
    Protocol.Served { payload = "shutting down"; metrics = Protocol.no_metrics }

(* The request's wall-clock budget, measured from now. *)
let deadline_of (req : Protocol.request) : float option =
  if req.Protocol.deadline_ms <= 0 then None
  else Some (Unix.gettimeofday () +. (float_of_int req.Protocol.deadline_ms /. 1000.0))

let handle (t : t) (req : Protocol.request) : Protocol.response =
  let t0 = Unix.gettimeofday () in
  let deadline = deadline_of req in
  (* a request must never take the daemon down: anything a handler
     fails to turn into a clean error becomes a Failed response *)
  let resp =
    try do_handle t ~deadline req.Protocol.body with
    | Deadline_expired ->
      Protocol.Timed_out
        (Fmt.str "deadline of %d ms expired" req.Protocol.deadline_ms)
    | e -> Protocol.Failed ("internal error: " ^ Printexc.to_string e)
  in
  record_latency t (Unix.gettimeofday () -. t0);
  (match resp with
  | Protocol.Failed _ -> t.ctr.c_failed <- t.ctr.c_failed + 1
  | Protocol.Rejected _ -> t.ctr.c_rejected <- t.ctr.c_rejected + 1
  | Protocol.Timed_out _ -> t.ctr.c_timed_out <- t.ctr.c_timed_out + 1
  | Protocol.Served _ | Protocol.Busy _ -> ());
  resp

(* Batched handling: group queued Link requests by library set and make
   sure each group's library IPO runs exactly once before the members
   are answered in order. *)
let handle_batch (t : t) (reqs : Protocol.request list) :
    Protocol.response list =
  (* grouping keys on the raw library payloads — no parsing per queued
     request; a group whose members deliver the same set in different
     formats only misses the pre-warm, never the libs-ipo cache *)
  let groups : (string list, int) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun req ->
      match req.Protocol.body with
      | Protocol.Link { l_libs = _ :: _ as libs; _ } ->
        Hashtbl.replace groups libs
          (1 + Option.value ~default:0 (Hashtbl.find_opt groups libs))
      | _ -> ())
    reqs;
  Hashtbl.iter
    (fun libs n ->
      if n >= 2 then begin
        t.batched_link_groups <- t.batched_link_groups + 1;
        t.batched_link_members <- t.batched_link_members + n;
        (* one IPO pipeline run fills the cache for the whole group *)
        match load_set ~what:"link libs" libs with
        | Error _ -> ()
        | Ok (mods, digest) -> ignore (optimized_libs t mods digest)
      end)
    groups;
  List.map (handle t) reqs

(* -- Cache probing (worker supervision support) --------------------------------- *)

(* With forked workers the daemon keeps a "front" server whose cache
   spans all workers: before dispatching, it probes here — a [Hit] is
   answered without touching a worker (and is the only thing served in
   degraded mode); a [Miss] carries the key under which the daemon
   should [install] the worker's result.  [route] is an affinity hint:
   requests sharing it go to the same worker, so link-time IPO still
   runs once per library set in that worker's local cache. *)
type probe =
  | Hit of Protocol.response
  | Miss of { key : string; route : string option }
  | Uncached of { route : string option }

let do_probe (t : t) (body : Protocol.body) : probe =
  match body with
  | Protocol.Compile c -> (
    match load_payload ~what:"compile request" c.Protocol.c_payload with
    | Error _ -> Uncached { route = None }
    | Ok (_, digest) -> (
      let validate = c.Protocol.c_validate || t.cfg.validate in
      let key = compile_key ~validate digest c.Protocol.c_pipeline in
      match Cache.find t.cache key with
      | Some bytes ->
        Hit (served t ~hit:true ~key ~pipeline_ms:0.0 bytes)
      | None -> Miss { key; route = Some digest }))
  | Protocol.Lint payload -> (
    match load_payload ~what:"lint request" payload with
    | Error _ -> Uncached { route = None }
    | Ok (_, digest) -> (
      let key = digest ^ "|lint" in
      match Cache.find t.cache key with
      | Some text -> Hit (served t ~hit:true ~key ~pipeline_ms:0.0 text)
      | None -> Miss { key; route = Some digest }))
  | Protocol.Link l -> (
    (* the full link key needs every payload parsed; routing by the raw
       library set is enough for IPO-once affinity, and we only pay the
       parse when the daemon is degraded or idle enough to care *)
    match load_set ~what:"link apps" l.Protocol.l_apps with
    | Error _ -> Uncached { route = None }
    | Ok (_, apps_digest) -> (
      match load_set ~what:"link libs" l.Protocol.l_libs with
      | Error _ -> Uncached { route = None }
      | Ok (_, libs_digest) -> (
        let validate = l.Protocol.l_validate || t.cfg.validate in
        let key =
          link_key
            (Llvm_bitcode.Digest.of_bytes (apps_digest ^ "|" ^ libs_digest))
            l.Protocol.l_libs
          ^ if validate then "|v" else ""
        in
        match Cache.find t.cache key with
        | Some bytes ->
          Hit (served t ~hit:true ~key ~pipeline_ms:0.0 bytes)
        | None -> Miss { key; route = Some libs_digest })))
  | Protocol.Run r ->
    (* execution is never served from the front cache: the optimized
       image may be cached, but running it must happen in a worker *)
    Uncached { route = Some (Llvm_bitcode.Digest.of_bytes r.Protocol.r_payload) }
  | Protocol.Stats | Protocol.Ping | Protocol.Shutdown ->
    Uncached { route = None }

let probe (t : t) (req : Protocol.request) : probe =
  (* probing parses untrusted payloads in the daemon process: any
     escape (stack overflow on a pathological input, say) must degrade
     to "not cached", never take the accept loop down *)
  try do_probe t req.Protocol.body with _ -> Uncached { route = None }

(* Install a worker's freshly computed result into the front cache so
   other workers' clients can hit it. *)
let install (t : t) ~(key : string) (resp : Protocol.response) : unit =
  match resp with
  | Protocol.Served { payload; _ } -> Cache.put t.cache key payload
  | _ -> ()

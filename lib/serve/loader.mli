(** The shared module loader: one place that reads inputs, sniffs
    textual IR vs bitcode, and formats load errors.  Used by every
    command-line tool (via [Tool_common]) and by the daemon for request
    payloads, so all consumers agree on behaviour and error messages. *)

val read_file : string -> string

val write_file : string -> string -> unit

type source = Bitcode | Asm

(** Classify a byte string by the bitcode magic. *)
val sniff : string -> source

(** Decode or parse [data]; [name] labels error messages (for bitcode
    ["name: malformed bitcode: ..."], for assembly ["name:line: ..."]). *)
val of_bytes : name:string -> string -> (Llvm_ir.Ir.modul, string) result

(** Read a file and {!of_bytes} it.  Unreadable files report the
    [Sys_error] message (which embeds the path). *)
val of_file : string -> (Llvm_ir.Ir.modul, string) result

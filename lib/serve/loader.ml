(* The one module loader.

   Every consumer of serialized modules — the command-line tools via
   Tool_common, the daemon for request payloads, tests — goes through
   this sniffing loader, so ".ll vs .bc" detection and the error-message
   format for unreadable inputs live in exactly one place. *)

let read_file (path : string) : string =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file (path : string) (contents : string) : unit =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

type source = Bitcode | Asm

(* Bitcode images start with the magic the encoder writes; anything
   else is treated as textual IR. *)
let sniff (data : string) : source =
  if String.length data >= 4 && String.sub data 0 4 = "LLVM" then Bitcode
  else Asm

let of_bytes ~(name : string) (data : string) :
    (Llvm_ir.Ir.modul, string) result =
  match sniff data with
  | Bitcode -> (
    try Ok (Llvm_bitcode.Decoder.decode data)
    with Llvm_bitcode.Decoder.Malformed msg ->
      Error (Fmt.str "%s: malformed bitcode: %s" name msg))
  | Asm -> (
    try Ok (Llvm_asm.Parser.parse_module ~name data) with
    | Llvm_asm.Parser.Parse_error (msg, line)
    | Llvm_asm.Lexer.Lex_error (msg, line) ->
      Error (Fmt.str "%s:%d: %s" name line msg))

(* Same sniffing as [of_bytes], but errors carry the full path while
   the module keeps its conventional basename name. *)
let of_file (path : string) : (Llvm_ir.Ir.modul, string) result =
  match read_file path with
  | exception Sys_error e -> Error e
  | data -> (
    match sniff data with
    | Bitcode -> (
      try Ok (Llvm_bitcode.Decoder.decode data)
      with Llvm_bitcode.Decoder.Malformed msg ->
        Error (Fmt.str "%s: malformed bitcode: %s" path msg))
    | Asm -> (
      try Ok (Llvm_asm.Parser.parse_module ~name:(Filename.basename path) data)
      with
      | Llvm_asm.Parser.Parse_error (msg, line)
      | Llvm_asm.Lexer.Lex_error (msg, line) ->
        Error (Fmt.str "%s:%d: %s" path line msg)))

(* The LLVM execution engine (paper section 3.4).

   This interpreter plays the role of the JIT: it executes the IR
   directly against the simulated memory of [Memory], implements the
   invoke/unwind stack-unwinding semantics of section 2.4, hosts the
   C++-style exception-handling runtime library of Figure 3
   (the llvm_cxxeh functions), and can record block-execution profiles — the
   "light-weight instrumentation to detect frequently executed code
   regions" of section 3.5.

   Undefined values read as zero; this is deterministic so the semantic
   equivalence property tests (optimized vs unoptimized programs) are
   meaningful. *)

open Llvm_ir
open Ir

exception Exit_program of int

type rtval =
  | Rvoid
  | Rbool of bool
  | Rint of Ltype.int_kind * int64 (* stored normalized *)
  | Rfloat of Ltype.t * float
  | Rptr of int64

type outcome = Normal of rtval | Unwinding

type machine = {
  modul : modul;
  mem : Memory.t;
  globals : (int, int64) Hashtbl.t; (* gvar id -> address *)
  func_addr : (int, int64) Hashtbl.t; (* func id -> code address *)
  func_of_id : (int, func) Hashtbl.t; (* allocation id -> func *)
  mutable fuel : int; (* remaining instruction budget *)
  out : Buffer.t; (* program output *)
  mutable exc : (int64 * int64) option; (* live exception: object, typeid *)
  mutable sjlj : (int64 * int64) option; (* in-flight longjmp: buf, value *)
  block_counts : (int, int) Hashtbl.t; (* block id -> executions *)
  call_counts : (int, (int, int) Hashtbl.t) Hashtbl.t;
  (* indirect call site (instr id) -> resolved callee (func id) -> count;
     the call-target half of the section 3.5 instrumentation *)
  pools : (int64, int64 list ref) Hashtbl.t; (* pool descriptor -> members *)
  mutable profiling : bool;
  mutable deopts : int; (* llvm_deopt executions (failed speculation guards) *)
  mutable deopt_pending : bool;
  (* set by the llvm_deopt builtin; the engine's dispatch consumes it to
     route the next call (the deoptimized re-execution of the
     speculated site) to the interpreter tier *)
  builtins : (string, machine -> rtval list -> rtval) Hashtbl.t;
  (* Every call site routes through [dispatch], so an execution engine
     (Engine) can intercept calls and pick a tier per function.  The
     default is [exec_func]: pure interpretation. *)
  mutable dispatch : machine -> func -> rtval list -> outcome;
}

let default_fuel = 50_000_000

(* -- Value/byte conversions ---------------------------------------------- *)

let rtval_type_zero table (ty : Ltype.t) : rtval =
  match Ltype.resolve table ty with
  | Ltype.Void -> Rvoid
  | Ltype.Bool -> Rbool false
  | Ltype.Integer k -> Rint (k, 0L)
  | (Ltype.Float | Ltype.Double) as t -> Rfloat (t, 0.0)
  | Ltype.Pointer _ | Ltype.Function _ -> Rptr 0L
  | Ltype.Array _ | Ltype.Struct _ | Ltype.Named _ | Ltype.Opaque _ ->
    Memory.trap "no scalar zero for aggregate type"

(* [store_sized] / [load_resolved] are the post-type-resolution halves of
   scalar memory access; the bytecode tier calls them with sizes/types
   pre-resolved at compile time so both tiers share one semantics. *)
let store_sized (mach : machine) (addr : int64) ~(size : int) (v : rtval) :
    unit =
  match v with
  | Rvoid -> ()
  | Rbool b -> Memory.write_int mach.mem addr ~size:1 (if b then 1L else 0L)
  | Rint (_, x) -> Memory.write_int mach.mem addr ~size x
  | Rfloat (t, f) ->
    if t = Ltype.Float then
      Memory.write_int mach.mem addr ~size:4
        (Int64.of_int32 (Int32.bits_of_float f))
    else Memory.write_int mach.mem addr ~size:8 (Int64.bits_of_float f)
  | Rptr p -> Memory.write_int mach.mem addr ~size:8 p

let store_scalar (mach : machine) table (addr : int64) (ty : Ltype.t)
    (v : rtval) : unit =
  store_sized mach addr ~size:(Ltype.size_of table ty) v

let load_resolved (mach : machine) (addr : int64) (rty : Ltype.t) : rtval =
  match rty with
  | Ltype.Void -> Rvoid
  | Ltype.Bool -> Rbool (Memory.read_int mach.mem addr ~size:1 <> 0L)
  | Ltype.Integer k ->
    Rint (k, normalize_int k (Memory.read_int mach.mem addr ~size:(Ltype.int_bits k / 8)))
  | Ltype.Float ->
    Rfloat
      ( Ltype.Float,
        Int32.float_of_bits (Int64.to_int32 (Memory.read_int mach.mem addr ~size:4)) )
  | Ltype.Double ->
    Rfloat (Ltype.Double, Int64.float_of_bits (Memory.read_int mach.mem addr ~size:8))
  | Ltype.Pointer _ | Ltype.Function _ -> Rptr (Memory.read_int mach.mem addr ~size:8)
  | Ltype.Array _ | Ltype.Struct _ | Ltype.Named _ | Ltype.Opaque _ ->
    Memory.trap "aggregate loads are not first-class (lower to field loads)"

let load_scalar (mach : machine) table (addr : int64) (ty : Ltype.t) : rtval =
  load_resolved mach addr (Ltype.resolve table ty)

(* -- Constants ------------------------------------------------------------ *)

let func_address (mach : machine) (f : func) : int64 =
  match Hashtbl.find_opt mach.func_addr f.fid with
  | Some a -> a
  | None -> Memory.trap "function %s has no address" f.fname

let rec const_rtval (mach : machine) table (c : const) : rtval =
  match c with
  | Cbool b -> Rbool b
  | Cint (Ltype.Integer k, v) -> Rint (k, v)
  | Cint (_, v) -> Rint (Ltype.Long, v)
  | Cfloat (t, f) -> Rfloat (t, f)
  | Cnull _ -> Rptr 0L
  | Cundef ty -> rtval_type_zero table ty
  | Czero ty -> rtval_type_zero table ty
  | Cgvar g -> (
    match Hashtbl.find_opt mach.globals g.gid with
    | Some a -> Rptr a
    | None -> Memory.trap "global %s not materialized" g.gname)
  | Cfunc f -> Rptr (func_address mach f)
  | Ccast (ty, c) -> cast_rtval mach table (const_rtval mach table c) ty
  | Carray _ | Cstruct _ ->
    Memory.trap "aggregate constant in scalar position"

(* -- Casts ----------------------------------------------------------------- *)

(* [cast_resolved] expects [target] already resolved past Named types;
   the bytecode tier resolves at compile time. *)
and cast_resolved (v : rtval) (target : Ltype.t) : rtval =
  let as_bits = function
    | Rbool b -> if b then 1L else 0L
    | Rint (_, x) -> x
    | Rptr p -> p
    | Rfloat (_, f) -> Int64.of_float f
    | Rvoid -> 0L
  in
  match target with
  | Ltype.Void -> Rvoid
  | Ltype.Bool -> (
    match v with
    | Rfloat (_, f) -> Rbool (f <> 0.0)
    | v -> Rbool (as_bits v <> 0L))
  | Ltype.Integer k -> Rint (k, normalize_int k (as_bits v))
  | (Ltype.Float | Ltype.Double) as t ->
    let f =
      match v with
      | Rfloat (_, f) -> f
      | Rint (k, x) when not (Ltype.is_signed k) ->
        let u = Fold.to_unsigned (Ltype.int_bits k) x in
        if u >= 0L then Int64.to_float u
        else Int64.to_float u +. 18446744073709551616.0
      | v -> Int64.to_float (as_bits v)
    in
    let f = if t = Ltype.Float then Int32.float_of_bits (Int32.bits_of_float f) else f in
    Rfloat (t, f)
  | Ltype.Pointer _ | Ltype.Function _ -> Rptr (as_bits v)
  | Ltype.Array _ | Ltype.Struct _ | Ltype.Named _ | Ltype.Opaque _ ->
    Memory.trap "cast to aggregate type"

and cast_rtval (_mach : machine) table (v : rtval) (target : Ltype.t) : rtval =
  cast_resolved v (Ltype.resolve table target)

(* Write an aggregate (or scalar) constant into memory at [addr]. *)
let rec write_const (mach : machine) table (addr : int64) (ty : Ltype.t)
    (c : const) : unit =
  match c with
  | Czero _ | Cundef _ -> () (* memory starts zeroed *)
  | Carray (elt, elts) ->
    let esz = Ltype.size_of table elt in
    List.iteri
      (fun k e ->
        write_const mach table (Int64.add addr (Int64.of_int (k * esz))) elt e)
      elts
  | Cstruct (sty, elts) ->
    List.iteri
      (fun k e ->
        let fty = Ltype.field_type table sty k in
        let off = Ltype.field_offset table sty k in
        write_const mach table (Int64.add addr (Int64.of_int off)) fty e)
      elts
  | c -> store_scalar mach table addr ty (const_rtval mach table c)

(* -- Machine construction -------------------------------------------------- *)

let builtin_table () : (string, machine -> rtval list -> rtval) Hashtbl.t =
  let t = Hashtbl.create 32 in
  let out_str mach s = Buffer.add_string mach.out s in
  let int_arg = function
    | Rint (_, v) :: _ -> v
    | Rbool b :: _ -> if b then 1L else 0L
    | _ -> Memory.trap "builtin: integer argument expected"
  in
  let ptr_arg = function
    | Rptr p :: _ -> p
    | _ -> Memory.trap "builtin: pointer argument expected"
  in
  Hashtbl.replace t "putchar" (fun mach args ->
      Buffer.add_char mach.out (Char.chr (Int64.to_int (int_arg args) land 0xFF));
      Rint (Ltype.Int, 0L));
  Hashtbl.replace t "print_int" (fun mach args ->
      out_str mach (Int64.to_string (int_arg args));
      Rvoid);
  Hashtbl.replace t "print_long" (fun mach args ->
      out_str mach (Int64.to_string (int_arg args));
      Rvoid);
  Hashtbl.replace t "print_double" (fun mach args ->
      (match args with
      | Rfloat (_, f) :: _ -> out_str mach (Printf.sprintf "%g" f)
      | _ -> Memory.trap "print_double: float expected");
      Rvoid);
  Hashtbl.replace t "print_str" (fun mach args ->
      out_str mach (Memory.read_cstring mach.mem (ptr_arg args));
      Rvoid);
  Hashtbl.replace t "print_newline" (fun mach _ ->
      Buffer.add_char mach.out '\n';
      Rvoid);
  Hashtbl.replace t "exit" (fun _ args ->
      raise (Exit_program (Int64.to_int (int_arg args))));
  Hashtbl.replace t "abort" (fun _ _ -> Memory.trap "abort() called");
  (* -- the C++ exception-handling runtime of Figure 3 -- *)
  Hashtbl.replace t "llvm_cxxeh_alloc_exc" (fun mach args ->
      Rptr (Memory.alloc mach.mem (Int64.to_int (int_arg args))));
  Hashtbl.replace t "llvm_cxxeh_throw" (fun mach args ->
      match args with
      | [ Rptr obj; Rint (_, typeid) ] ->
        mach.exc <- Some (obj, typeid);
        Rvoid
      | _ -> Memory.trap "llvm_cxxeh_throw: bad arguments");
  Hashtbl.replace t "llvm_cxxeh_current_typeid" (fun mach _ ->
      match mach.exc with
      | Some (_, typeid) -> Rint (Ltype.Int, typeid)
      | None -> Rint (Ltype.Int, -1L));
  Hashtbl.replace t "llvm_cxxeh_get_exception" (fun mach _ ->
      match mach.exc with
      | Some (obj, _) -> Rptr obj
      | None -> Rptr 0L);
  Hashtbl.replace t "llvm_cxxeh_end_catch" (fun mach _ ->
      (match mach.exc with
      | Some (obj, _) -> Memory.free mach.mem obj
      | None -> ());
      mach.exc <- None;
      Rvoid);
  Hashtbl.replace t "llvm_profile_hit" (fun _ _ -> Rvoid);
  (* Failed speculation guard (section 3.5's runtime contract): count
     the deoptimization and ask the engine to run the pending
     re-execution of the site in the interpreter tier.  The call itself
     charges the usual one unit at its call site, identically in every
     tier. *)
  Hashtbl.replace t "llvm_deopt" (fun mach _ ->
      mach.deopts <- mach.deopts + 1;
      mach.deopt_pending <- true;
      Rvoid);
  (* -- the setjmp/longjmp runtime (paper section 2.4) -- *)
  Hashtbl.replace t "llvm_sjlj_throw" (fun mach args ->
      match args with
      | [ Rint (_, buf); Rint (_, v) ] ->
        mach.sjlj <- Some (buf, v);
        Rvoid
      | _ -> Memory.trap "llvm_sjlj_throw: bad arguments");
  Hashtbl.replace t "llvm_sjlj_target" (fun mach _ ->
      match mach.sjlj with
      | Some (buf, _) -> Rint (Ltype.Long, buf)
      | None -> Rint (Ltype.Long, 0L));
  Hashtbl.replace t "llvm_sjlj_value" (fun mach _ ->
      match mach.sjlj with
      | Some (_, v) -> Rint (Ltype.Int, normalize_int Ltype.Int v)
      | None -> Rint (Ltype.Int, 0L));
  Hashtbl.replace t "llvm_sjlj_clear" (fun mach _ ->
      mach.sjlj <- None;
      Rvoid);
  (* -- the pool-allocation runtime (paper sections 3.3 / 4.2.1) -- *)
  Hashtbl.replace t "llvm_poolinit" (fun mach _ ->
      let pool = Memory.alloc mach.mem 8 in
      Hashtbl.replace mach.pools pool (ref []);
      Rptr pool);
  Hashtbl.replace t "llvm_poolalloc" (fun mach args ->
      match args with
      | [ Rptr pool; Rint (_, size) ] -> (
        match Hashtbl.find_opt mach.pools pool with
        | Some members ->
          let p = Memory.alloc mach.mem (Int64.to_int size) in
          members := p :: !members;
          Rptr p
        | None -> Memory.trap "llvm_poolalloc: not a pool")
      | _ -> Memory.trap "llvm_poolalloc: bad arguments");
  Hashtbl.replace t "llvm_poolfree" (fun mach args ->
      match args with
      | [ Rptr pool; Rptr p ] ->
        if not (Hashtbl.mem mach.pools pool) then
          Memory.trap "llvm_poolfree: not a pool";
        Memory.free mach.mem p;
        Rvoid
      | _ -> Memory.trap "llvm_poolfree: bad arguments");
  Hashtbl.replace t "llvm_pooldestroy" (fun mach args ->
      match args with
      | [ Rptr pool ] -> (
        match Hashtbl.find_opt mach.pools pool with
        | Some members ->
          (* bulk deallocation: everything still live goes at once *)
          List.iter
            (fun p -> if Memory.is_live mach.mem p then Memory.free mach.mem p)
            !members;
          Hashtbl.remove mach.pools pool;
          Memory.free mach.mem pool;
          Rvoid
        | None -> Memory.trap "llvm_pooldestroy: not a pool")
      | _ -> Memory.trap "llvm_pooldestroy: bad arguments");
  Hashtbl.replace t "llvm_bounds_check" (fun _ args ->
      match args with
      | [ Rint (_, idx); Rint (_, len) ] ->
        if Int64.unsigned_compare idx len >= 0 then
          Memory.trap "array index %Ld out of bounds (length %Ld)" idx len
        else Rvoid
      | _ -> Memory.trap "llvm_bounds_check: bad arguments");
  t

(* Filled with [exec_func] at module initialization (it is defined
   below); [create] snapshots it, so a fresh machine interprets. *)
let default_dispatch : (machine -> func -> rtval list -> outcome) ref =
  ref (fun _ _ _ -> Memory.trap "execution engine not initialized")

let create (m : modul) : machine =
  let mach =
    { modul = m; mem = Memory.create (); globals = Hashtbl.create 32;
      func_addr = Hashtbl.create 32; func_of_id = Hashtbl.create 32;
      fuel = default_fuel; out = Buffer.create 256; exc = None; sjlj = None;
      block_counts = Hashtbl.create 256; call_counts = Hashtbl.create 16;
      pools = Hashtbl.create 8;
      profiling = false; deopts = 0; deopt_pending = false;
      builtins = builtin_table ();
      dispatch = !default_dispatch }
  in
  (* Code addresses first: initializers may reference functions. *)
  List.iteri
    (fun k f ->
      let id = Memory.func_id_base + k in
      Hashtbl.replace mach.func_addr f.fid (Memory.addr_of ~id ~offset:0);
      Hashtbl.replace mach.func_of_id id f)
    m.mfuncs;
  (* Allocate all globals, then write initializers (they may point at
     each other). *)
  List.iter
    (fun g ->
      let size = Ltype.size_of m.mtypes g.gty in
      Hashtbl.replace mach.globals g.gid (Memory.alloc mach.mem size))
    m.mglobals;
  List.iter
    (fun g ->
      match g.ginit with
      | Some c ->
        write_const mach m.mtypes (Hashtbl.find mach.globals g.gid) g.gty c
      | None -> ())
    m.mglobals;
  mach

(* -- Instruction evaluation ------------------------------------------------- *)

let rt_binop op (a : rtval) (b : rtval) : rtval =
  match (a, b) with
  | Rint (k, x), Rint (_, y) -> (
    match Fold.int_binop k op x y with
    | Some r -> Rint (k, r)
    | None -> Memory.trap "integer division by zero")
  | Rfloat (t, x), Rfloat (_, y) ->
    (* same table as Fold.float_binop, with the result rounded through
       single precision for Float; written out so the operands stay
       unboxed on the hot path *)
    let r =
      match op with
      | Add -> x +. y
      | Sub -> x -. y
      | Mul -> x *. y
      | Div -> x /. y
      | Rem -> Float.rem x y
      | _ -> Memory.trap "bad float operation"
    in
    Rfloat
      (t, if t = Ltype.Float then Int32.float_of_bits (Int32.bits_of_float r) else r)
  | Rbool x, Rbool y -> (
    match op with
    | And -> Rbool (x && y)
    | Or -> Rbool (x || y)
    | Xor -> Rbool (x <> y)
    | Add | Sub | Mul | Div | Rem | Shl | Shr -> Memory.trap "bool arithmetic"
    | _ -> Memory.trap "bad bool operation")
  (* pointer arithmetic after casts: treat as 64-bit unsigned *)
  | Rptr x, Rint (_, y) | Rint (_, y), Rptr x -> (
    match Fold.int_binop Ltype.Ulong op x y with
    | Some r -> Rptr r
    | None -> Memory.trap "pointer arithmetic division by zero")
  | Rptr x, Rptr y -> (
    match Fold.int_binop Ltype.Ulong op x y with
    | Some r -> Rptr r
    | None -> Memory.trap "pointer arithmetic division by zero")
  | _ -> Memory.trap "binary operation on mismatched values"

let rt_cmp op (a : rtval) (b : rtval) : rtval =
  match (a, b) with
  | Rint (k, x), Rint (_, y) -> Rbool (Fold.int_cmp k op x y)
  | Rfloat (_, x), Rfloat (_, y) -> Rbool (Fold.float_cmp op x y)
  | Rptr x, Rptr y -> Rbool (Fold.int_cmp Ltype.Ulong op x y)
  | Rbool x, Rbool y ->
    let xi = if x then 1L else 0L and yi = if y then 1L else 0L in
    Rbool (Fold.int_cmp Ltype.Ubyte op xi yi)
  | Rptr x, Rint (_, y) | Rint (_, x), Rptr y -> Rbool (Fold.int_cmp Ltype.Ulong op x y)
  | _ -> Memory.trap "comparison on mismatched values"

let as_ptr = function
  | Rptr p -> p
  | Rint (_, v) -> v
  | _ -> Memory.trap "pointer expected"

let as_int = function
  | Rint (_, v) -> v
  | Rbool b -> if b then 1L else 0L
  | _ -> Memory.trap "integer expected"

let as_bool = function
  | Rbool b -> b
  | Rint (_, v) -> v <> 0L
  | _ -> Memory.trap "bool expected"

(* getelementptr address computation (paper section 2.2). *)
let gep_address table (base : int64) (ptr_ty : Ltype.t)
    (indices : (Ltype.t * rtval) list) : int64 =
  match Ltype.resolve table ptr_ty with
  | Ltype.Pointer pointee ->
    let addr = ref base in
    let cur = ref pointee in
    List.iteri
      (fun n (_, idx) ->
        if n = 0 then
          (* first index steps over the pointer: scale by pointee size *)
          addr :=
            Int64.add !addr
              (Int64.mul (as_int idx) (Int64.of_int (Ltype.size_of table !cur)))
        else
          match Ltype.resolve table !cur with
          | Ltype.Array (_, elt) ->
            addr :=
              Int64.add !addr
                (Int64.mul (as_int idx) (Int64.of_int (Ltype.size_of table elt)));
            cur := elt
          | Ltype.Struct _ as s ->
            let k = Int64.to_int (as_int idx) in
            addr := Int64.add !addr (Int64.of_int (Ltype.field_offset table s k));
            cur := Ltype.field_type table s k
          | t -> Memory.trap "gep into non-aggregate %s" (Ltype.to_string t))
      indices;
    !addr
  | t -> Memory.trap "gep base is not a pointer: %s" (Ltype.to_string t)

(* -- Function execution ----------------------------------------------------- *)

(* Call-target instrumentation: like the block counters, recording is
   free (no fuel) and shared verbatim by both tiers. *)
let record_call_target (mach : machine) ~(site : int) (fn : func) : unit =
  let targets =
    match Hashtbl.find_opt mach.call_counts site with
    | Some t -> t
    | None ->
      let t = Hashtbl.create 4 in
      Hashtbl.replace mach.call_counts site t;
      t
  in
  Hashtbl.replace targets fn.fid
    (1 + Option.value ~default:0 (Hashtbl.find_opt targets fn.fid))

type frame = {
  env : (int, rtval) Hashtbl.t; (* instr/arg id -> value *)
  mutable stack_allocs : int64 list;
}

let exec_func (mach : machine) (f : func) (args : rtval list) : outcome =
  if is_declaration f then begin
    match Hashtbl.find_opt mach.builtins f.fname with
    | Some impl -> Normal (impl mach args)
    | None -> Memory.trap "call to undefined external function %s" f.fname
  end
  else begin
    let frame = { env = Hashtbl.create 64; stack_allocs = [] } in
    (try
       List.iter2
         (fun formal actual -> Hashtbl.replace frame.env formal.aid actual)
         f.fargs args
     with Invalid_argument _ ->
       Memory.trap "arity mismatch calling %s" f.fname);
    let table = mach.modul.mtypes in
    let eval (v : value) : rtval =
      match v with
      | Vconst c -> const_rtval mach table c
      | Vinstr i -> (
        match Hashtbl.find_opt frame.env i.iid with
        | Some r -> r
        | None -> Memory.trap "read of unevaluated instruction %%%s" i.iname)
      | Varg a -> (
        match Hashtbl.find_opt frame.env a.aid with
        | Some r -> r
        | None -> Memory.trap "unbound argument %%%s" a.aname)
      | Vglobal g -> Rptr (Hashtbl.find mach.globals g.gid)
      | Vfunc fn -> Rptr (func_address mach fn)
      | Vblock _ -> Memory.trap "block used as a value"
    in
    let resolve_callee (site : instr) : func =
      match site.operands.(0) with
      | Vfunc fn -> fn
      | Vconst (Cfunc fn) -> fn
      | Vconst (Ccast (_, Cfunc fn)) -> fn (* a constant address: direct *)
      | v -> (
        let addr = as_ptr (eval v) in
        match Hashtbl.find_opt mach.func_of_id (Memory.id_of addr) with
        | Some fn ->
          if mach.profiling then record_call_target mach ~site:site.iid fn;
          fn
        | None -> Memory.trap "indirect call to non-code address %Lx" addr)
    in
    let finish (out : outcome) : outcome =
      List.iter (Memory.release_stack mach.mem) frame.stack_allocs;
      out
    in
    (* Execute from [b]; [prev] is the CFG predecessor for phis. *)
    let rec run_block (b : block) (prev : block option) : outcome =
      if mach.profiling then
        Hashtbl.replace mach.block_counts b.bid
          (1 + Option.value ~default:0 (Hashtbl.find_opt mach.block_counts b.bid));
      (* phis evaluate in parallel against the incoming edge *)
      (match prev with
      | Some p ->
        let updates =
          List.filter_map
            (fun i ->
              if i.iop = Phi then
                match
                  List.find_opt (fun (_, blk) -> blk == p) (phi_incoming i)
                with
                | Some (v, _) -> Some (i, eval v)
                | None ->
                  Memory.trap "phi %%%s has no entry for predecessor %%%s"
                    i.iname p.bname
              else None)
            b.instrs
        in
        List.iter (fun (i, v) -> Hashtbl.replace frame.env i.iid v) updates
      | None -> ());
      run_instrs b (List.filter (fun i -> i.iop <> Phi) b.instrs)
    and run_instrs (b : block) (instrs : instr list) : outcome =
      match instrs with
      | [] -> Memory.trap "fell off the end of block %%%s" b.bname
      | i :: rest -> (
        mach.fuel <- mach.fuel - 1;
        if mach.fuel <= 0 then Memory.trap "out of fuel (infinite loop?)";
        let set v = Hashtbl.replace frame.env i.iid v in
        match i.iop with
        | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr ->
          set (rt_binop i.iop (eval i.operands.(0)) (eval i.operands.(1)));
          run_instrs b rest
        | SetEQ | SetNE | SetLT | SetGT | SetLE | SetGE ->
          set (rt_cmp i.iop (eval i.operands.(0)) (eval i.operands.(1)));
          run_instrs b rest
        | Cast ->
          set (cast_rtval mach table (eval i.operands.(0)) i.ity);
          run_instrs b rest
        | Select ->
          set
            (if as_bool (eval i.operands.(0)) then eval i.operands.(1)
             else eval i.operands.(2));
          run_instrs b rest
        | Alloca | Malloc ->
          let elt = Option.get i.alloc_ty in
          let count =
            if Array.length i.operands > 0 then
              Int64.to_int (as_int (eval i.operands.(0)))
            else 1
          in
          if count < 0 then Memory.trap "negative allocation count";
          let on_stack = i.iop = Alloca in
          let addr =
            Memory.alloc mach.mem ~on_stack (count * Ltype.size_of table elt)
          in
          if on_stack then frame.stack_allocs <- addr :: frame.stack_allocs;
          set (Rptr addr);
          run_instrs b rest
        | Free ->
          Memory.free mach.mem (as_ptr (eval i.operands.(0)));
          run_instrs b rest
        | Load ->
          let ptr = as_ptr (eval i.operands.(0)) in
          set (load_scalar mach table ptr i.ity);
          run_instrs b rest
        | Store ->
          let v = eval i.operands.(0) in
          let ptr = as_ptr (eval i.operands.(1)) in
          let vty = Ir.type_of table i.operands.(0) in
          store_scalar mach table ptr vty v;
          run_instrs b rest
        | Gep ->
          let base = as_ptr (eval i.operands.(0)) in
          let ptr_ty = Ir.type_of table i.operands.(0) in
          let indices =
            List.tl (Array.to_list i.operands)
            |> List.map (fun v -> (Ir.type_of table v, eval v))
          in
          set (Rptr (gep_address table base ptr_ty indices));
          run_instrs b rest
        | Phi -> Memory.trap "phi not at block head"
        | Call -> (
          let callee = resolve_callee i in
          let args = List.map eval (call_args i) in
          match mach.dispatch mach callee args with
          | Normal r ->
            if i.ity <> Ltype.Void then set r;
            run_instrs b rest
          | Unwinding -> finish Unwinding)
        | Invoke -> (
          let callee = resolve_callee i in
          let args = List.map eval (call_args i) in
          match mach.dispatch mach callee args with
          | Normal r ->
            if i.ity <> Ltype.Void then set r;
            run_block (as_block i.operands.(1)) (Some b)
          | Unwinding -> run_block (as_block i.operands.(2)) (Some b))
        | Ret ->
          finish
            (Normal
               (if Array.length i.operands = 1 then eval i.operands.(0)
                else Rvoid))
        | Br ->
          if Array.length i.operands = 1 then
            run_block (as_block i.operands.(0)) (Some b)
          else if as_bool (eval i.operands.(0)) then
            run_block (as_block i.operands.(1)) (Some b)
          else run_block (as_block i.operands.(2)) (Some b)
        | Switch ->
          let v = eval i.operands.(0) in
          let target =
            let found =
              List.find_opt
                (fun (c, _) ->
                  match (const_rtval mach table c, v) with
                  | Rint (_, x), Rint (_, y) -> x = y
                  | Rbool x, Rbool y -> x = y
                  | _ -> false)
                (switch_cases i)
            in
            match found with
            | Some (_, blk) -> blk
            | None -> as_block i.operands.(1)
          in
          run_block target (Some b)
        | Unwind -> finish Unwinding)
    in
    run_block (entry_block f) None
  end

let () = default_dispatch := exec_func

(* -- Entry points ------------------------------------------------------------ *)

type run_result = {
  status : [ `Returned of rtval | `Unwound | `Exited of int | `Trapped of string ];
  output : string;
  instructions : int;
}

let run_function ?(fuel = default_fuel) (mach : machine) (f : func)
    (args : rtval list) : run_result =
  mach.fuel <- fuel;
  let start_fuel = mach.fuel in
  let status =
    try
      match mach.dispatch mach f args with
      | Normal v -> `Returned v
      | Unwinding -> `Unwound
    with
    | Memory.Trap msg -> `Trapped msg
    | Exit_program code -> `Exited code
  in
  { status;
    output = Buffer.contents mach.out;
    instructions = start_fuel - mach.fuel }

let run_main ?fuel (m : modul) : run_result =
  let mach = create m in
  match find_func m "main" with
  | Some main -> run_function ?fuel mach main []
  | None ->
    { status = `Trapped "no main function"; output = ""; instructions = 0 }

(* -- Profile extraction (section 3.5) ----------------------------------------- *)

type profile = { counts : (int, int) Hashtbl.t }

let run_main_with_profile ?fuel (m : modul) : run_result * profile =
  let mach = create m in
  mach.profiling <- true;
  let result =
    match find_func m "main" with
    | Some main -> run_function ?fuel mach main []
    | None ->
      { status = `Trapped "no main function"; output = ""; instructions = 0 }
  in
  (result, { counts = mach.block_counts })

let block_count (p : profile) (b : block) : int =
  Option.value ~default:0 (Hashtbl.find_opt p.counts b.bid)

(* Execution frequency of a function = executions of its entry block. *)
let func_count (p : profile) (f : func) : int =
  if is_declaration f then 0 else block_count p (entry_block f)

let pp_rtval fmt = function
  | Rvoid -> Fmt.string fmt "void"
  | Rbool b -> Fmt.bool fmt b
  | Rint (_, v) -> Fmt.pf fmt "%Ld" v
  | Rfloat (_, f) -> Fmt.float fmt f
  | Rptr p -> Fmt.pf fmt "0x%Lx" p

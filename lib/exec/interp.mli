(** The execution engine's interpreter tier (paper section 3.4).

    A tree-walking interpreter: it executes IR directly against the
    simulated memory of {!Memory}, implements the invoke/unwind
    stack-unwinding semantics of section 2.4, hosts the C++-style
    exception-handling runtime of Figure 3 (the [llvm_cxxeh_*]
    builtins), and can record block-execution profiles — the
    "light-weight instrumentation" of section 3.5.

    Undefined values read as zero, deterministically, so optimized and
    unoptimized programs can be compared for semantic equivalence.

    The machine state and the evaluation helpers are exposed so the
    {!Bytecode} tier can execute against the same state with the same
    semantics; {!Engine} picks the tier per call via [dispatch]. *)

exception Exit_program of int

type rtval =
  | Rvoid
  | Rbool of bool
  | Rint of Llvm_ir.Ltype.int_kind * int64  (** stored normalized *)
  | Rfloat of Llvm_ir.Ltype.t * float
  | Rptr of int64

type outcome = Normal of rtval | Unwinding

type machine = {
  modul : Llvm_ir.Ir.modul;
  mem : Memory.t;
  globals : (int, int64) Hashtbl.t;  (** gvar id -> address *)
  func_addr : (int, int64) Hashtbl.t;  (** func id -> code address *)
  func_of_id : (int, Llvm_ir.Ir.func) Hashtbl.t;  (** allocation id -> func *)
  mutable fuel : int;  (** remaining instruction budget *)
  out : Buffer.t;  (** program output *)
  mutable exc : (int64 * int64) option;  (** live exception: object, typeid *)
  mutable sjlj : (int64 * int64) option;  (** in-flight longjmp: buf, value *)
  block_counts : (int, int) Hashtbl.t;  (** block id -> executions *)
  call_counts : (int, (int, int) Hashtbl.t) Hashtbl.t;
      (** indirect call site (instr id) -> resolved callee (func id) ->
          count; the call-target half of the section 3.5
          instrumentation *)
  pools : (int64, int64 list ref) Hashtbl.t;  (** pool -> members *)
  mutable profiling : bool;
  mutable deopts : int;
      (** [llvm_deopt] executions: failed speculation guards *)
  mutable deopt_pending : bool;
      (** set by [llvm_deopt]; the engine consumes it to route the
          deoptimized re-execution to the interpreter tier *)
  builtins : (string, machine -> rtval list -> rtval) Hashtbl.t;
  mutable dispatch : machine -> Llvm_ir.Ir.func -> rtval list -> outcome;
      (** Every call site routes through [dispatch] so an execution
          engine can pick a tier per function; defaults to
          {!exec_func}. *)
}

val default_fuel : int

(** Builtins available to programs: [putchar], [print_int],
    [print_long], [print_double], [print_str], [print_newline], [exit],
    [abort], the [llvm_cxxeh_*] exception runtime, [llvm_profile_hit],
    [llvm_deopt] and [llvm_bounds_check]. *)
val builtin_table : unit -> (string, machine -> rtval list -> rtval) Hashtbl.t

(** Materialize a module: allocate globals, write initializers, assign
    code addresses. *)
val create : Llvm_ir.Ir.modul -> machine

(** Record one resolved target of an indirect call site (free of fuel;
    shared with the {!Bytecode} tier). *)
val record_call_target : machine -> site:int -> Llvm_ir.Ir.func -> unit

(** Execute one function to completion (or unwinding).  Calls to
    declarations dispatch to builtins.
    @raise Memory.Trap on memory errors, division by zero, fuel
    exhaustion. *)
val exec_func : machine -> Llvm_ir.Ir.func -> rtval list -> outcome

(** {1 Shared evaluation helpers (used by the {!Bytecode} tier)} *)

(** Store a scalar at a pre-computed byte size. *)
val store_sized : machine -> int64 -> size:int -> rtval -> unit

(** Load a scalar of an already-resolved type. *)
val load_resolved : machine -> int64 -> Llvm_ir.Ltype.t -> rtval

(** Cast to an already-resolved target type. *)
val cast_resolved : rtval -> Llvm_ir.Ltype.t -> rtval

val const_rtval :
  machine -> Llvm_ir.Ltype.table -> Llvm_ir.Ir.const -> rtval

val func_address : machine -> Llvm_ir.Ir.func -> int64
val rt_binop : Llvm_ir.Ir.opcode -> rtval -> rtval -> rtval
val rt_cmp : Llvm_ir.Ir.opcode -> rtval -> rtval -> rtval
val as_ptr : rtval -> int64
val as_int : rtval -> int64
val as_bool : rtval -> bool

(** getelementptr address computation (paper section 2.2). *)
val gep_address :
  Llvm_ir.Ltype.table ->
  int64 ->
  Llvm_ir.Ltype.t ->
  (Llvm_ir.Ltype.t * rtval) list ->
  int64

type run_result = {
  status :
    [ `Returned of rtval | `Unwound | `Exited of int | `Trapped of string ];
  output : string;  (** everything the program printed *)
  instructions : int;  (** dynamic instruction count *)
}

val run_function :
  ?fuel:int -> machine -> Llvm_ir.Ir.func -> rtval list -> run_result

(** Run [main] on a fresh machine. *)
val run_main : ?fuel:int -> Llvm_ir.Ir.modul -> run_result

(** {1 Profiling (paper section 3.5)} *)

type profile = { counts : (int, int) Hashtbl.t }

val run_main_with_profile :
  ?fuel:int -> Llvm_ir.Ir.modul -> run_result * profile

(** Executions of a basic block during the profiled run. *)
val block_count : profile -> Llvm_ir.Ir.block -> int

(** Entry count of a function (= executions of its entry block). *)
val func_count : profile -> Llvm_ir.Ir.func -> int

val pp_rtval : Format.formatter -> rtval -> unit

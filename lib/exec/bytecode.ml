(* The baseline JIT tier (paper section 3.4).

   [compile] translates one function from the IR graph into a flat,
   register-based bytecode: every instruction and argument gets a fixed
   register slot, constants are evaluated once into a pool, branch and
   call targets are resolved to code offsets, getelementptr address
   arithmetic is folded to precomputed offsets and scales, and phi nodes
   are lowered to parallel copies on dedicated edge stubs.  [exec] then
   runs that bytecode in a tight dispatch loop with no hashtable lookups
   or list traversals on the hot path.

   Semantics are shared with the tree-walking interpreter down to the
   helper functions ([Interp.rt_binop], [Interp.load_resolved], ...), so
   the two tiers are bit-for-bit comparable: same outputs, same traps,
   same fuel accounting (one unit per executed IR instruction, with phi
   copies and profiling hooks free, exactly like [Interp.exec_func]),
   and same block-execution profiles.

   When given a [Llvm_analysis.Range] result, [compile] additionally
   emits unguarded fast variants for accesses the interval analysis
   proves safe: loads/stores through a gep of a statically-sized alloca
   whose byte-offset interval fits the allocation (skips the
   null/liveness/bounds checks in [Memory.locate]), and divisions whose
   divisor interval excludes zero (skips the division-by-zero guard).
   Fast ops charge the same fuel and compute the same values, so tier
   identity is preserved. *)

open Llvm_ir
open Ir
open Interp
module Range = Llvm_analysis.Range

type operand =
  | Reg of int (* register slot *)
  | Cst of int (* constant-pool index *)

type callee =
  | Direct of func
  | Indirect of operand * int (* dynamic callee, call-site instr id *)

type gstep =
  | Goff of int (* constant byte offset *)
  | Gscale of operand * int (* dynamic index times element size *)

type bc =
  (* free (no fuel): bookkeeping that has no IR-instruction counterpart *)
  | Prof of int (* block id: profile hook at every block head *)
  | Copy of int * operand (* phi-lowering move *)
  | Jmp of int (* edge-stub tail jump *)
  | DeadEnd of string (* fell off an unterminated block *)
  (* one fuel unit each: real IR instructions *)
  | Bin of opcode * int * operand * operand
  | Cmp of opcode * int * operand * operand
  | CastI of Ltype.t * int * operand (* resolved target type *)
  | Sel of int * operand * operand * operand
  | AllocI of { dst : int; elt_size : int; count : operand option; on_stack : bool }
  | FreeI of operand
  | LoadI of Ltype.t * int * operand (* resolved result type *)
  | StoreI of int * operand * operand (* byte size, value, pointer *)
  (* range-proven fast variants: same semantics and fuel as the
     guarded ops above, minus checks the compiler discharged statically
     using [Llvm_analysis.Range] (see [proves_fast_access]) *)
  | LoadFast of Ltype.t * int * operand
  | StoreFast of int * operand * operand
  | DivF of { rem : bool; dst : int; a : operand; b : operand }
  | GepI of int * operand * gstep array
  | GepSlow of int * operand * Ltype.t * (Ltype.t * operand) array
  | CallI of { dst : int; void : bool; callee : callee; args : operand array }
  | InvokeI of {
      dst : int;
      void : bool;
      callee : callee;
      args : operand array;
      normal : int;
      unwind : int;
    }
  | RetI of operand option
  | Br1 of int
  | Bra of operand * int * int
  | Sw of operand * (rtval * int) array * int (* pre-evaluated case values *)
  | UnwindI

type compiled = {
  cname : string;
  nregs : int; (* frame size, including phi-copy temporaries *)
  arg_slots : int array;
  cpool : rtval array;
  code : bc array;
  src_instrs : int; (* IR instructions compiled (statistics) *)
  fast_ops : int; (* guarded ops compiled to range-proven fast ops *)
  (* recycled register frames for *large* functions: a frame above the
     minor-heap allocation limit is allocated directly on the major heap,
     so without reuse every call to a big (e.g. heavily inlined) function
     pays a major-heap allocation plus O(nregs) initialization.  Small
     frames stay minor-heap allocations — pooling those would promote
     them to the major heap and tax every register store with the write
     barrier.  Frames need no clearing between uses: the compiler hands
     out one slot per SSA value, and every use is dominated by its def,
     so a slot is always written in the current activation before it is
     read. *)
  mutable free_frames : rtval array list;
  mutable nfree : int;
}

(* -- Compilation ----------------------------------------------------------- *)

(* Constant gep indices are folded into [Goff] only when the product
   cannot overflow the OCaml int range the fold uses. *)
let foldable_index (v : int64) = Int64.abs v < 0x10000000L

(* Division with the zero-divisor guard compiled away: exactly
   [Fold.int_binop] on Div/Rem minus the [b = 0] test, which the range
   analysis discharged statically.  [test/suite_bytecode.ml] checks the
   equivalence against [Fold.int_binop] over every kind. *)
let div_fast (kind : Ltype.int_kind) ~(rem : bool) (a : int64) (b : int64) :
    int64 =
  let bits = Ltype.int_bits kind in
  let signed = Ltype.is_signed kind in
  if bits = 64 then
    if signed then
      if a = Int64.min_int && b = -1L then (if rem then 0L else a)
      else if rem then Int64.rem a b
      else Int64.div a b
    else if rem then Int64.unsigned_rem a b
    else Int64.unsigned_div a b
  else if signed then
    if a = Int64.min_int && b = -1L then
      if rem then 0L else normalize_int kind a
    else normalize_int kind (if rem then Int64.rem a b else Int64.div a b)
  else
    let mask = Int64.sub (Int64.shift_left 1L bits) 1L in
    normalize_int kind
      ((if rem then Int64.unsigned_rem else Int64.unsigned_div)
         (Int64.logand a mask) (Int64.logand b mask))

let compile ?(ranges : Llvm_analysis.Range.t option)
    ?(profile : Llvm_profile.Profile.t option) (mach : machine) (f : func) :
    compiled =
  if is_declaration f then
    Memory.trap "cannot compile declaration %s to bytecode" f.fname;
  let table = mach.modul.mtypes in
  (* Hot/cold block layout (section 3.5): with an aggregate profile,
     order the body hot-first — entry pinned first, then blocks by
     profile weight, never-executed ("cold") blocks last in source
     order.  All control flow goes through labels, so layout changes
     neither semantics nor fuel; it only packs the hot path into a
     contiguous prefix of the code array (falls through more, jumps
     less after [retarget]). *)
  let layout_blocks =
    match (profile, f.fblocks) with
    | None, bs | _, ([] as bs) | _, ([ _ ] as bs) -> bs
    | Some p, entry :: rest ->
      let weighted =
        List.map
          (fun b ->
            (Llvm_profile.Profile.block_weight p ~func:f.fname ~block:b.bname, b))
          rest
      in
      let hot, cold = List.partition (fun (w, _) -> w > 0) weighted in
      let hot = List.stable_sort (fun (w1, _) (w2, _) -> compare w2 w1) hot in
      entry :: (List.map snd hot @ List.map snd cold)
  in
  (* register slots *)
  let slots : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let nregs = ref 0 in
  let slot_of id =
    match Hashtbl.find_opt slots id with
    | Some s -> s
    | None ->
      let s = !nregs in
      incr nregs;
      Hashtbl.replace slots id s;
      s
  in
  let arg_slots = Array.of_list (List.map (fun a -> slot_of a.aid) f.fargs) in
  (* constant pool: evaluate each distinct constant once *)
  let pool_index : (rtval, int) Hashtbl.t = Hashtbl.create 32 in
  let pool_rev = ref [] in
  let pool_n = ref 0 in
  let cst (v : rtval) : operand =
    match Hashtbl.find_opt pool_index v with
    | Some k -> Cst k
    | None ->
      let k = !pool_n in
      incr pool_n;
      Hashtbl.replace pool_index v k;
      pool_rev := v :: !pool_rev;
      Cst k
  in
  let operand (v : value) : operand =
    match v with
    | Vconst c -> cst (const_rtval mach table c)
    | Vinstr i -> Reg (slot_of i.iid)
    | Varg a -> Reg (slot_of a.aid)
    | Vglobal g -> (
      match Hashtbl.find_opt mach.globals g.gid with
      | Some a -> cst (Rptr a)
      | None -> Memory.trap "global %s not materialized" g.gname)
    | Vfunc fn -> cst (Rptr (func_address mach fn))
    | Vblock _ -> Memory.trap "block used as a value"
  in
  (* code emission into label space; labels become pcs in a final pass *)
  let buf = ref [] in
  let buf_n = ref 0 in
  let emit (i : bc) =
    buf := i :: !buf;
    incr buf_n
  in
  let labels : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let next_label = ref 0 in
  let new_label () =
    let l = !next_label in
    incr next_label;
    l
  in
  let place l = Hashtbl.replace labels l !buf_n in
  let block_label : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let label_of_block (b : block) : int =
    match Hashtbl.find_opt block_label b.bid with
    | Some l -> l
    | None ->
      let l = new_label () in
      Hashtbl.replace block_label b.bid l;
      l
  in
  (* A branch to a block with phis goes through a per-edge stub holding
     the phi copies; edges without phis jump straight to the block head. *)
  let pending_stubs = ref [] in
  let stub_memo : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let target ~(src : block) (dst : block) : int =
    if not (List.exists (fun i -> i.iop = Phi) dst.instrs) then
      label_of_block dst
    else
      match Hashtbl.find_opt stub_memo (src.bid, dst.bid) with
      | Some l -> l
      | None ->
        let l = new_label () in
        Hashtbl.replace stub_memo (src.bid, dst.bid) l;
        pending_stubs := (l, src, dst) :: !pending_stubs;
        l
  in
  let emit_stub (l, (src : block), (dst : block)) =
    place l;
    let moves =
      List.filter_map
        (fun i ->
          if i.iop <> Phi then None
          else
            match List.find_opt (fun (_, blk) -> blk == src) (phi_incoming i) with
            | Some (v, _) -> Some (slot_of i.iid, operand v)
            | None ->
              Memory.trap "phi %%%s has no entry for predecessor %%%s" i.iname
                src.bname)
        dst.instrs
    in
    (* phis assign in parallel: when a source register is also a
       destination, stage everything through temporaries *)
    let dsts = List.map fst moves in
    let overlaps =
      List.exists
        (fun (_, s) -> match s with Reg r -> List.mem r dsts | Cst _ -> false)
        moves
    in
    if overlaps then begin
      let staged =
        List.map
          (fun (d, s) ->
            let t = !nregs in
            incr nregs;
            (d, s, t))
          moves
      in
      List.iter (fun (_, s, t) -> emit (Copy (t, s))) staged;
      List.iter (fun (d, _, t) -> emit (Copy (d, Reg t))) staged
    end
    else List.iter (fun (d, s) -> emit (Copy (d, s))) moves;
    emit (Jmp (label_of_block dst))
  in
  let compile_callee (site : instr) : callee =
    match site.operands.(0) with
    | Vfunc fn -> Direct fn
    | Vconst (Cfunc fn) -> Direct fn
    | Vconst (Ccast (_, Cfunc fn)) -> Direct fn (* a constant address *)
    | v -> Indirect (operand v, site.iid)
  in
  let compile_gep (i : instr) =
    let dst = slot_of i.iid in
    let base = operand i.operands.(0) in
    let ptr_ty = Ir.type_of table i.operands.(0) in
    let slow () =
      let idxs =
        Array.init
          (Array.length i.operands - 1)
          (fun k ->
            let v = i.operands.(k + 1) in
            (Ir.type_of table v, operand v))
      in
      emit (GepSlow (dst, base, ptr_ty, idxs))
    in
    match Ltype.resolve table ptr_ty with
    | Ltype.Pointer pointee -> (
      let exception Fallback in
      try
        let steps = ref [] in
        let push_off o =
          match !steps with
          | Goff p :: rest -> steps := Goff (p + o) :: rest
          | _ -> steps := Goff o :: !steps
        in
        let cur = ref pointee in
        for n = 1 to Array.length i.operands - 1 do
          let const_idx =
            match i.operands.(n) with
            | Vconst c -> (
              match const_rtval mach table c with
              | Rint (_, v) when foldable_index v -> Some v
              | Rbool b -> Some (if b then 1L else 0L)
              | _ -> None)
            | _ -> None
          in
          if n = 1 then begin
            (* first index steps over the pointer: scale by pointee size *)
            let sz = Ltype.size_of table !cur in
            match const_idx with
            | Some v -> push_off (Int64.to_int v * sz)
            | None -> steps := Gscale (operand i.operands.(n), sz) :: !steps
          end
          else
            match Ltype.resolve table !cur with
            | Ltype.Array (_, elt) ->
              let sz = Ltype.size_of table elt in
              (match const_idx with
              | Some v -> push_off (Int64.to_int v * sz)
              | None -> steps := Gscale (operand i.operands.(n), sz) :: !steps);
              cur := elt
            | Ltype.Struct _ as s -> (
              match const_idx with
              | Some v ->
                let k = Int64.to_int v in
                push_off (Ltype.field_offset table s k);
                cur := Ltype.field_type table s k
              | None -> raise Fallback)
            | _ -> raise Fallback (* keeps the interpreter's runtime trap *)
        done;
        emit (GepI (dst, base, Array.of_list (List.rev !steps)))
      with Fallback | Invalid_argument _ -> slow ())
    | _ -> slow () (* non-pointer base: interpreter traps at runtime *)
  in
  let n_fast = ref 0 in
  (* Static safety proof for a memory access: the pointer is a
     getelementptr of a statically-sized alloca, and the interval of the
     gep's total byte offset — index ranges at the gep's block times the
     element sizes the address computation uses — fits in
     [0, allocation size - access size].  Such an access can skip every
     [Memory.locate] check: SSA dominance puts the alloca before the
     gep before the access, stack memory stays live until the frame
     returns (a [Free] of it traps first, identically in every tier),
     and the offset can neither underflow nor run off the end. *)
  let proves_fast_access (ptr : value) (access_size : int) : bool =
    match ranges with
    | None -> false
    | Some rng -> (
      match ptr with
      | Vinstr g when g.iop = Gep -> (
        match (g.operands.(0), g.iparent) with
        | Vinstr a, Some gb when a.iop = Alloca -> (
          let exception Unprovable in
          try
            let elt_size = Ltype.size_of table (Option.get a.alloc_ty) in
            let alloc_size =
              if Array.length a.operands = 0 then elt_size
              else
                match a.operands.(0) with
                | Vconst (Cint (_, n)) when n >= 0L && foldable_index n ->
                  Int64.to_int n * elt_size
                | _ -> raise Unprovable
            in
            match Ltype.resolve table (Ir.type_of table g.operands.(0)) with
            | Ltype.Pointer pointee ->
              let off = ref (Range.singleton 0L) in
              let scale itv sz =
                Range.binop Ltype.Long Mul itv
                  (Range.singleton (Int64.of_int sz))
              in
              let add itv =
                off := Range.binop Ltype.Long Add !off itv
              in
              let cur = ref pointee in
              for n = 1 to Array.length g.operands - 1 do
                let itv = Range.range_at rng gb g.operands.(n) in
                if n = 1 then
                  add (scale itv (Ltype.size_of table !cur))
                else
                  match Ltype.resolve table !cur with
                  | Ltype.Array (_, elt) ->
                    add (scale itv (Ltype.size_of table elt));
                    cur := elt
                  | Ltype.Struct _ as s -> (
                    match g.operands.(n) with
                    | Vconst (Cint (_, fv)) ->
                      let k = Int64.to_int fv in
                      add
                        (Range.singleton
                           (Int64.of_int (Ltype.field_offset table s k)));
                      cur := Ltype.field_type table s k
                    | _ -> raise Unprovable)
                  | _ -> raise Unprovable
              done;
              access_size <= alloc_size
              &&
              (match !off with
              | Range.Bot -> true (* the access is never executed *)
              | Range.Itv (lo, hi) ->
                lo >= 0L
                && hi <= Int64.of_int (alloc_size - access_size))
            | _ -> false
          with
          | Unprovable | Invalid_argument _ | Ltype.Unresolved _ -> false)
        | _ -> false)
      | _ -> false)
  in
  let n_instrs = ref 0 in
  let compile_instr (b : block) (i : instr) =
    incr n_instrs;
    match i.iop with
    | Div | Rem
      when (match ranges with
           | None -> false
           | Some rng -> (
             match
               (Ltype.resolve table (Ir.type_of table i.operands.(0)), i.iparent)
             with
             | Ltype.Integer _, Some ib ->
               not (Range.contains (Range.range_at rng ib i.operands.(1)) 0L)
             | _ -> false
             | exception (Ltype.Unresolved _ | Invalid_argument _) -> false)) ->
      incr n_fast;
      emit
        (DivF
           { rem = i.iop = Rem; dst = slot_of i.iid;
             a = operand i.operands.(0); b = operand i.operands.(1) })
    | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr ->
      emit (Bin (i.iop, slot_of i.iid, operand i.operands.(0), operand i.operands.(1)))
    | SetEQ | SetNE | SetLT | SetGT | SetLE | SetGE ->
      emit (Cmp (i.iop, slot_of i.iid, operand i.operands.(0), operand i.operands.(1)))
    | Cast ->
      emit (CastI (Ltype.resolve table i.ity, slot_of i.iid, operand i.operands.(0)))
    | Select ->
      emit
        (Sel
           ( slot_of i.iid,
             operand i.operands.(0),
             operand i.operands.(1),
             operand i.operands.(2) ))
    | Alloca | Malloc ->
      let elt = Option.get i.alloc_ty in
      let count =
        if Array.length i.operands > 0 then Some (operand i.operands.(0))
        else None
      in
      emit
        (AllocI
           { dst = slot_of i.iid; elt_size = Ltype.size_of table elt; count;
             on_stack = i.iop = Alloca })
    | Free -> emit (FreeI (operand i.operands.(0)))
    | Load ->
      let ty = Ltype.resolve table i.ity in
      let size =
        match ty with
        | Ltype.Bool -> Some 1
        | Ltype.Integer k -> Some (Ltype.int_bits k / 8)
        | _ -> None
      in
      (match size with
      | Some sz when proves_fast_access i.operands.(0) sz ->
        incr n_fast;
        emit (LoadFast (ty, slot_of i.iid, operand i.operands.(0)))
      | _ -> emit (LoadI (ty, slot_of i.iid, operand i.operands.(0))))
    | Store ->
      let vty = Ir.type_of table i.operands.(0) in
      let size = Ltype.size_of table vty in
      let scalar_int =
        match Ltype.resolve table vty with
        | Ltype.Bool | Ltype.Integer _ -> true
        | _ -> false
        | exception Ltype.Unresolved _ -> false
      in
      if scalar_int && proves_fast_access i.operands.(1) size then begin
        incr n_fast;
        emit (StoreFast (size, operand i.operands.(0), operand i.operands.(1)))
      end
      else
        emit
          (StoreI (size, operand i.operands.(0), operand i.operands.(1)))
    | Gep -> compile_gep i
    | Phi -> decr n_instrs (* lowered to edge copies *)
    | Call ->
      emit
        (CallI
           { dst = slot_of i.iid; void = i.ity = Ltype.Void;
             callee = compile_callee i;
             args = Array.of_list (List.map operand (call_args i)) })
    | Invoke ->
      emit
        (InvokeI
           { dst = slot_of i.iid; void = i.ity = Ltype.Void;
             callee = compile_callee i;
             args = Array.of_list (List.map operand (call_args i));
             normal = target ~src:b (as_block i.operands.(1));
             unwind = target ~src:b (as_block i.operands.(2)) })
    | Ret ->
      emit
        (RetI
           (if Array.length i.operands = 1 then Some (operand i.operands.(0))
            else None))
    | Br ->
      if Array.length i.operands = 1 then
        emit (Br1 (target ~src:b (as_block i.operands.(0))))
      else
        emit
          (Bra
             ( operand i.operands.(0),
               target ~src:b (as_block i.operands.(1)),
               target ~src:b (as_block i.operands.(2)) ))
    | Switch ->
      let cases =
        List.map
          (fun (c, blk) -> (const_rtval mach table c, target ~src:b blk))
          (switch_cases i)
      in
      emit
        (Sw
           ( operand i.operands.(0),
             Array.of_list cases,
             target ~src:b (as_block i.operands.(1)) ))
    | Unwind -> emit UnwindI
  in
  List.iter
    (fun b ->
      place (label_of_block b);
      (* Specialize for the instrumentation setting at compile time: with
         profiling off there is no block-head hook at all.  The engine
         fixes [profiling] at creation, before any function is
         compiled, so the setting cannot change under compiled code. *)
      if mach.profiling then emit (Prof b.bid);
      List.iter (fun i -> if i.iop <> Phi then compile_instr b i) b.instrs;
      match terminator b with
      | Some _ -> ()
      | None -> emit (DeadEnd b.bname))
    layout_blocks;
  List.iter emit_stub (List.rev !pending_stubs);
  (* resolve label-space targets to code offsets *)
  let code = Array.of_list (List.rev !buf) in
  let pc_of l =
    match Hashtbl.find_opt labels l with
    | Some pc -> pc
    | None -> Memory.trap "bytecode: unresolved label in %s" f.fname
  in
  let retarget = function
    | Jmp l -> Jmp (pc_of l)
    | Br1 l -> Br1 (pc_of l)
    | Bra (c, t, e) -> Bra (c, pc_of t, pc_of e)
    | Sw (v, cases, d) ->
      Sw (v, Array.map (fun (cv, l) -> (cv, pc_of l)) cases, pc_of d)
    | InvokeI r -> InvokeI { r with normal = pc_of r.normal; unwind = pc_of r.unwind }
    | i -> i
  in
  { cname = f.fname;
    nregs = !nregs;
    arg_slots;
    cpool = Array.of_list (List.rev !pool_rev);
    code = Array.map retarget code;
    src_instrs = !n_instrs;
    fast_ops = !n_fast;
    free_frames = [];
    nfree = 0 }

(* -- Execution ------------------------------------------------------------- *)

let out_of_fuel () = Memory.trap "out of fuel (infinite loop?)"

(* The dispatch loop.  No hashtable lookups or list traversals on the
   straight-line path; fuel accounting is inlined into every charging
   arm (no flambda, so helper closures would cost a call per
   instruction).  Register indices come from the compiler, which only
   hands out slots below [nregs], so register access is unchecked. *)
let max_free_frames = 64

(* OCaml's minor-heap allocation limit (Max_young_wosize) is 256 words:
   frames at least this big are major-heap allocations and worth
   recycling; smaller ones are cheaper fresh. *)
let pooled_frame_size = 256

let exec (mach : machine) (c : compiled) (args : rtval list) : outcome =
  let regs =
    match c.free_frames with
    | f :: rest ->
      c.free_frames <- rest;
      c.nfree <- c.nfree - 1;
      f
    | [] -> Array.make c.nregs Rvoid
  in
  if List.length args <> Array.length c.arg_slots then
    Memory.trap "arity mismatch calling %s" c.cname;
  List.iteri (fun k v -> regs.(Array.unsafe_get c.arg_slots k) <- v) args;
  let stack_allocs = ref [] in
  let pool = c.cpool in
  let code = c.code in
  let table = mach.modul.mtypes in
  let ev = function
    | Reg r -> Array.unsafe_get regs r
    | Cst k -> Array.unsafe_get pool k
  in
  let finish (out : outcome) : outcome =
    List.iter (Memory.release_stack mach.mem) !stack_allocs;
    (* recycle the frame; a trap abandons its frame instead (the run is
       over anyway), so no exception handler is needed on the hot path *)
    if c.nregs >= pooled_frame_size && c.nfree < max_free_frames then begin
      c.free_frames <- regs :: c.free_frames;
      c.nfree <- c.nfree + 1
    end;
    out
  in
  let resolve = function
    | Direct fn -> fn
    | Indirect (o, site) -> (
      let addr = as_ptr (ev o) in
      match Hashtbl.find_opt mach.func_of_id (Memory.id_of addr) with
      | Some fn ->
        if mach.profiling then record_call_target mach ~site fn;
        fn
      | None -> Memory.trap "indirect call to non-code address %Lx" addr)
  in
  let rec go (pc : int) : outcome =
    match Array.unsafe_get code pc with
    | Prof bid ->
      if mach.profiling then
        Hashtbl.replace mach.block_counts bid
          (1 + Option.value ~default:0 (Hashtbl.find_opt mach.block_counts bid));
      go (pc + 1)
    | Copy (d, s) ->
      Array.unsafe_set regs d
        (match s with
        | Reg r -> Array.unsafe_get regs r
        | Cst k -> Array.unsafe_get pool k);
      go (pc + 1)
    | Jmp t -> go t
    | DeadEnd bname -> Memory.trap "fell off the end of block %%%s" bname
    | Bin (op, d, a, b) ->
      mach.fuel <- mach.fuel - 1;
      if mach.fuel <= 0 then out_of_fuel ();
      Array.unsafe_set regs d
        (rt_binop op
           (match a with
           | Reg r -> Array.unsafe_get regs r
           | Cst k -> Array.unsafe_get pool k)
           (match b with
           | Reg r -> Array.unsafe_get regs r
           | Cst k -> Array.unsafe_get pool k));
      go (pc + 1)
    | Cmp (op, d, a, b) ->
      mach.fuel <- mach.fuel - 1;
      if mach.fuel <= 0 then out_of_fuel ();
      Array.unsafe_set regs d
        (rt_cmp op
           (match a with
           | Reg r -> Array.unsafe_get regs r
           | Cst k -> Array.unsafe_get pool k)
           (match b with
           | Reg r -> Array.unsafe_get regs r
           | Cst k -> Array.unsafe_get pool k));
      go (pc + 1)
    | CastI (ty, d, a) ->
      mach.fuel <- mach.fuel - 1;
      if mach.fuel <= 0 then out_of_fuel ();
      Array.unsafe_set regs d (cast_resolved (ev a) ty);
      go (pc + 1)
    | Sel (d, cnd, a, b) ->
      mach.fuel <- mach.fuel - 1;
      if mach.fuel <= 0 then out_of_fuel ();
      Array.unsafe_set regs d (if as_bool (ev cnd) then ev a else ev b);
      go (pc + 1)
    | AllocI { dst; elt_size; count; on_stack } ->
      mach.fuel <- mach.fuel - 1;
      if mach.fuel <= 0 then out_of_fuel ();
      let n =
        match count with
        | None -> 1
        | Some o -> Int64.to_int (as_int (ev o))
      in
      if n < 0 then Memory.trap "negative allocation count";
      let addr = Memory.alloc mach.mem ~on_stack (n * elt_size) in
      if on_stack then stack_allocs := addr :: !stack_allocs;
      Array.unsafe_set regs dst (Rptr addr);
      go (pc + 1)
    | FreeI o ->
      mach.fuel <- mach.fuel - 1;
      if mach.fuel <= 0 then out_of_fuel ();
      Memory.free mach.mem (as_ptr (ev o));
      go (pc + 1)
    | LoadI (ty, d, p) ->
      mach.fuel <- mach.fuel - 1;
      if mach.fuel <= 0 then out_of_fuel ();
      Array.unsafe_set regs d
        (load_resolved mach
           (as_ptr
              (match p with
              | Reg r -> Array.unsafe_get regs r
              | Cst k -> Array.unsafe_get pool k))
           ty);
      go (pc + 1)
    | StoreI (size, v, p) ->
      mach.fuel <- mach.fuel - 1;
      if mach.fuel <= 0 then out_of_fuel ();
      store_sized mach
        (as_ptr
           (match p with
           | Reg r -> Array.unsafe_get regs r
           | Cst k -> Array.unsafe_get pool k))
        ~size
        (match v with
        | Reg r -> Array.unsafe_get regs r
        | Cst k -> Array.unsafe_get pool k);
      go (pc + 1)
    | LoadFast (ty, d, p) ->
      mach.fuel <- mach.fuel - 1;
      if mach.fuel <= 0 then out_of_fuel ();
      let addr =
        as_ptr
          (match p with
          | Reg r -> Array.unsafe_get regs r
          | Cst k -> Array.unsafe_get pool k)
      in
      Array.unsafe_set regs d
        (match ty with
        | Ltype.Bool ->
          Rbool (Memory.read_int_unchecked mach.mem addr ~size:1 <> 0L)
        | Ltype.Integer k ->
          Rint
            ( k,
              normalize_int k
                (Memory.read_int_unchecked mach.mem addr
                   ~size:(Ltype.int_bits k / 8)) )
        | ty -> load_resolved mach addr ty (* not emitted; keep exec total *));
      go (pc + 1)
    | StoreFast (size, v, p) ->
      mach.fuel <- mach.fuel - 1;
      if mach.fuel <= 0 then out_of_fuel ();
      let addr =
        as_ptr
          (match p with
          | Reg r -> Array.unsafe_get regs r
          | Cst k -> Array.unsafe_get pool k)
      in
      (match
         match v with
         | Reg r -> Array.unsafe_get regs r
         | Cst k -> Array.unsafe_get pool k
       with
      | Rint (_, x) -> Memory.write_int_unchecked mach.mem addr ~size x
      | Rbool b ->
        Memory.write_int_unchecked mach.mem addr ~size:1 (if b then 1L else 0L)
      | v ->
        (* ill-typed at runtime (e.g. a pointer flowing into an integer
           slot): fall back to the guarded path, same as [StoreI] *)
        store_sized mach addr ~size v);
      go (pc + 1)
    | DivF { rem; dst; a; b } ->
      mach.fuel <- mach.fuel - 1;
      if mach.fuel <= 0 then out_of_fuel ();
      (match
         ( (match a with
           | Reg r -> Array.unsafe_get regs r
           | Cst k -> Array.unsafe_get pool k),
           match b with
           | Reg r -> Array.unsafe_get regs r
           | Cst k -> Array.unsafe_get pool k )
       with
      | Rint (k, x), Rint (_, y) ->
        Array.unsafe_set regs dst (Rint (k, div_fast k ~rem x y))
      | x, y ->
        Array.unsafe_set regs dst (rt_binop (if rem then Rem else Div) x y));
      go (pc + 1)
    | GepI (d, base, steps) ->
      mach.fuel <- mach.fuel - 1;
      if mach.fuel <= 0 then out_of_fuel ();
      let addr = ref (as_ptr (ev base)) in
      for k = 0 to Array.length steps - 1 do
        match Array.unsafe_get steps k with
        | Goff o -> addr := Int64.add !addr (Int64.of_int o)
        | Gscale (o, sz) ->
          addr := Int64.add !addr (Int64.mul (as_int (ev o)) (Int64.of_int sz))
      done;
      Array.unsafe_set regs d (Rptr !addr);
      go (pc + 1)
    | GepSlow (d, base, pty, idxs) ->
      mach.fuel <- mach.fuel - 1;
      if mach.fuel <= 0 then out_of_fuel ();
      let indices = Array.to_list (Array.map (fun (t, o) -> (t, ev o)) idxs) in
      Array.unsafe_set regs d
        (Rptr (gep_address table (as_ptr (ev base)) pty indices));
      go (pc + 1)
    | CallI { dst; void; callee; args } -> (
      mach.fuel <- mach.fuel - 1;
      if mach.fuel <= 0 then out_of_fuel ();
      let fn = resolve callee in
      let actuals = Array.fold_right (fun o acc -> ev o :: acc) args [] in
      match mach.dispatch mach fn actuals with
      | Normal r ->
        if not void then Array.unsafe_set regs dst r;
        go (pc + 1)
      | Unwinding -> finish Unwinding)
    | InvokeI { dst; void; callee; args; normal; unwind } -> (
      mach.fuel <- mach.fuel - 1;
      if mach.fuel <= 0 then out_of_fuel ();
      let fn = resolve callee in
      let actuals = Array.fold_right (fun o acc -> ev o :: acc) args [] in
      match mach.dispatch mach fn actuals with
      | Normal r ->
        if not void then Array.unsafe_set regs dst r;
        go normal
      | Unwinding -> go unwind)
    | RetI None ->
      mach.fuel <- mach.fuel - 1;
      if mach.fuel <= 0 then out_of_fuel ();
      finish (Normal Rvoid)
    | RetI (Some o) ->
      mach.fuel <- mach.fuel - 1;
      if mach.fuel <= 0 then out_of_fuel ();
      finish (Normal (ev o))
    | Br1 t ->
      mach.fuel <- mach.fuel - 1;
      if mach.fuel <= 0 then out_of_fuel ();
      go t
    | Bra (cnd, t, e) ->
      mach.fuel <- mach.fuel - 1;
      if mach.fuel <= 0 then out_of_fuel ();
      if
        as_bool
          (match cnd with
          | Reg r -> Array.unsafe_get regs r
          | Cst k -> Array.unsafe_get pool k)
      then go t
      else go e
    | Sw (v, cases, dflt) ->
      mach.fuel <- mach.fuel - 1;
      if mach.fuel <= 0 then out_of_fuel ();
      let x = ev v in
      let n = Array.length cases in
      let rec find k =
        if k = n then dflt
        else
          let cv, t = Array.unsafe_get cases k in
          let hit =
            match (cv, x) with
            | Rint (_, a), Rint (_, b) -> a = b
            | Rbool a, Rbool b -> a = b
            | _ -> false
          in
          if hit then t else find (k + 1)
      in
      go (find 0)
    | UnwindI ->
      mach.fuel <- mach.fuel - 1;
      if mach.fuel <= 0 then out_of_fuel ();
      finish Unwinding
  in
  go 0

(* -- Introspection (tests, debugging) -------------------------------------- *)

let pp_operand fmt = function
  | Reg r -> Fmt.pf fmt "r%d" r
  | Cst k -> Fmt.pf fmt "c%d" k

let pp_bc fmt = function
  | Prof bid -> Fmt.pf fmt "prof b%d" bid
  | Copy (d, s) -> Fmt.pf fmt "copy r%d <- %a" d pp_operand s
  | Jmp t -> Fmt.pf fmt "jmp %d" t
  | DeadEnd b -> Fmt.pf fmt "deadend %%%s" b
  | Bin (op, d, a, b) ->
    Fmt.pf fmt "%s r%d <- %a, %a" (opcode_name op) d pp_operand a pp_operand b
  | Cmp (op, d, a, b) ->
    Fmt.pf fmt "%s r%d <- %a, %a" (opcode_name op) d pp_operand a pp_operand b
  | CastI (ty, d, a) ->
    Fmt.pf fmt "cast r%d <- %a to %s" d pp_operand a (Ltype.to_string ty)
  | Sel (d, c, a, b) ->
    Fmt.pf fmt "select r%d <- %a ? %a : %a" d pp_operand c pp_operand a
      pp_operand b
  | AllocI { dst; elt_size; on_stack; _ } ->
    Fmt.pf fmt "%s r%d (%d bytes)" (if on_stack then "alloca" else "malloc") dst
      elt_size
  | FreeI o -> Fmt.pf fmt "free %a" pp_operand o
  | LoadI (_, d, p) -> Fmt.pf fmt "load r%d <- [%a]" d pp_operand p
  | StoreI (sz, v, p) ->
    Fmt.pf fmt "store [%a] <- %a (%d bytes)" pp_operand p pp_operand v sz
  | LoadFast (_, d, p) -> Fmt.pf fmt "load.fast r%d <- [%a]" d pp_operand p
  | StoreFast (sz, v, p) ->
    Fmt.pf fmt "store.fast [%a] <- %a (%d bytes)" pp_operand p pp_operand v sz
  | DivF { rem; dst; a; b } ->
    Fmt.pf fmt "%s.fast r%d <- %a, %a"
      (if rem then "rem" else "div")
      dst pp_operand a pp_operand b
  | GepI (d, b, steps) ->
    Fmt.pf fmt "gep r%d <- %a%a" d pp_operand b
      Fmt.(
        array ~sep:nop (fun fmt -> function
          | Goff o -> pf fmt " +%d" o
          | Gscale (op, sz) -> pf fmt " +%a*%d" pp_operand op sz))
      steps
  | GepSlow (d, b, _, _) -> Fmt.pf fmt "gep.slow r%d <- %a ..." d pp_operand b
  | CallI { dst; callee; args; _ } ->
    Fmt.pf fmt "call r%d <- %s(%a)" dst
      (match callee with Direct f -> f.fname | Indirect _ -> "<indirect>")
      Fmt.(array ~sep:comma pp_operand)
      args
  | InvokeI { dst; normal; unwind; _ } ->
    Fmt.pf fmt "invoke r%d normal=%d unwind=%d" dst normal unwind
  | RetI None -> Fmt.string fmt "ret void"
  | RetI (Some o) -> Fmt.pf fmt "ret %a" pp_operand o
  | Br1 t -> Fmt.pf fmt "br %d" t
  | Bra (c, t, e) -> Fmt.pf fmt "br %a ? %d : %d" pp_operand c t e
  | Sw (v, cases, d) ->
    Fmt.pf fmt "switch %a (%d cases) default=%d" pp_operand v
      (Array.length cases) d
  | UnwindI -> Fmt.string fmt "unwind"

let disassemble (c : compiled) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Fmt.str "%s: %d regs, %d consts, %d instrs@." c.cname c.nregs
       (Array.length c.cpool) (Array.length c.code));
  Array.iteri
    (fun pc i -> Buffer.add_string buf (Fmt.str "  %4d: %a@." pc pp_bc i))
    c.code;
  Buffer.contents buf

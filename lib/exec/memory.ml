(* Simulated byte-addressed memory for the execution engine.

   Addresses are int64 values packing an allocation id in the high bits
   and a byte offset in the low 32: the machine therefore has real
   pointer *values* (casts to/from integers work), while loads and stores
   check liveness and bounds like a safe malloc implementation.  Function
   addresses live in a reserved id range so that indirect calls can map
   an address back to a function. *)

exception Trap of string

let trap fmt = Fmt.kstr (fun s -> raise (Trap s)) fmt

type alloc = {
  bytes : Bytes.t;
  mutable live : bool;
  on_stack : bool;
}

(* Allocation ids are handed out sequentially, so the allocation table
   is a growable array indexed by id (slot 0 unused): [locate], the
   load/store hot path, is a bounds check plus an array read.  Records
   are never removed — freeing just clears [live] — so indices stay
   valid for the lifetime of the machine. *)
type t = {
  mutable allocs : alloc array;
  mutable next_id : int;
}

let func_id_base = 0x400000 (* allocation ids at/above this denote code *)

let no_alloc = { bytes = Bytes.empty; live = false; on_stack = false }

let create () = { allocs = Array.make 256 no_alloc; next_id = 1 }

let find_alloc (m : t) (id : int) : alloc option =
  if id > 0 && id < m.next_id then Some (Array.unsafe_get m.allocs id)
  else None

let addr_of ~id ~offset = Int64.logor (Int64.shift_left (Int64.of_int id) 32) (Int64.of_int offset)
let id_of addr = Int64.to_int (Int64.shift_right_logical addr 32)
let offset_of addr = Int64.to_int (Int64.logand addr 0xFFFFFFFFL)

let is_null addr = addr = 0L
let is_func_addr addr = id_of addr >= func_id_base

let alloc (m : t) ?(on_stack = false) (size : int) : int64 =
  let id = m.next_id in
  m.next_id <- m.next_id + 1;
  if id >= func_id_base then trap "out of memory: too many allocations";
  if id >= Array.length m.allocs then begin
    let bigger = Array.make (2 * Array.length m.allocs) no_alloc in
    Array.blit m.allocs 0 bigger 0 (Array.length m.allocs);
    m.allocs <- bigger
  end;
  m.allocs.(id) <-
    { bytes = Bytes.make (max size 0) '\000'; live = true; on_stack };
  addr_of ~id ~offset:0

let free (m : t) (addr : int64) : unit =
  if is_null addr then () (* free(null) is a no-op *)
  else begin
    match find_alloc m (id_of addr) with
    | Some a when a.live && not a.on_stack ->
      if offset_of addr <> 0 then trap "free of interior pointer";
      a.live <- false
    | Some a when a.on_stack -> trap "free of stack memory"
    | Some _ -> trap "double free"
    | None -> trap "free of invalid pointer %Lx" addr
  end

(* Release a stack allocation on function return. *)
let release_stack (m : t) (addr : int64) : unit =
  match find_alloc m (id_of addr) with
  | Some a -> a.live <- false
  | None -> ()

let locate (m : t) (addr : int64) (len : int) : Bytes.t * int =
  if is_null addr then trap "null pointer dereference";
  if is_func_addr addr then trap "data access to a code address";
  let id = id_of addr and off = offset_of addr in
  if id <= 0 || id >= m.next_id then trap "access to invalid pointer %Lx" addr;
  let a = Array.unsafe_get m.allocs id in
  if not a.live then trap "use after free";
  if off < 0 || off + len > Bytes.length a.bytes then
    trap "out-of-bounds access: offset %d len %d in %d-byte object" off len
      (Bytes.length a.bytes)
  else (a.bytes, off)

let read_bytes (m : t) (addr : int64) (len : int) : Bytes.t =
  let b, off = locate m addr len in
  Bytes.sub b off len

let write_bytes (m : t) (addr : int64) (src : Bytes.t) : unit =
  let b, off = locate m addr (Bytes.length src) in
  Bytes.blit src 0 b off (Bytes.length src)

let get_int (b : Bytes.t) (off : int) ~(size : int) : int64 =
  match size with
  | 1 -> Int64.of_int (Char.code (Bytes.get b off))
  | 2 -> Int64.of_int (Bytes.get_uint16_le b off)
  | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le b off)) 0xFFFFFFFFL
  | 8 -> Bytes.get_int64_le b off
  | _ ->
    let rec go k acc =
      if k = size then acc
      else
        go (k + 1)
          (Int64.logor acc
             (Int64.shift_left (Int64.of_int (Char.code (Bytes.get b (off + k)))) (8 * k)))
    in
    go 0 0L

let set_int (b : Bytes.t) (off : int) ~(size : int) (v : int64) : unit =
  match size with
  | 1 -> Bytes.set b off (Char.unsafe_chr (Int64.to_int v land 0xFF))
  | 2 -> Bytes.set_uint16_le b off (Int64.to_int v land 0xFFFF)
  | 4 -> Bytes.set_int32_le b off (Int64.to_int32 v)
  | 8 -> Bytes.set_int64_le b off v
  | _ ->
    for k = 0 to size - 1 do
      Bytes.set b (off + k)
        (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * k)) 0xFFL)))
    done

let read_int (m : t) (addr : int64) ~(size : int) : int64 =
  let b, off = locate m addr size in
  get_int b off ~size

let write_int (m : t) (addr : int64) ~(size : int) (v : int64) : unit =
  let b, off = locate m addr size in
  set_int b off ~size v

(* Unchecked accessors for the bytecode tier's fast memory ops: the
   compiler has proven the address's allocation live and the access in
   bounds, so [locate]'s null/liveness/bounds checks are skipped.  The
   underlying [Bytes] accessors remain checked by the runtime, so an
   unsound proof raises rather than corrupting the machine. *)
let read_int_unchecked (m : t) (addr : int64) ~(size : int) : int64 =
  get_int (Array.unsafe_get m.allocs (id_of addr)).bytes (offset_of addr) ~size

let write_int_unchecked (m : t) (addr : int64) ~(size : int) (v : int64) : unit =
  set_int (Array.unsafe_get m.allocs (id_of addr)).bytes (offset_of addr) ~size v

(* Read a NUL-terminated string (for the print_str builtin). *)
let read_cstring (m : t) (addr : int64) : string =
  let buf = Buffer.create 16 in
  let rec go k =
    let c = Int64.to_int (read_int m (Int64.add addr (Int64.of_int k)) ~size:1) in
    if c <> 0 then begin
      Buffer.add_char buf (Char.chr c);
      go (k + 1)
    end
  in
  go 0;
  Buffer.contents buf

let is_live (m : t) (addr : int64) : bool =
  match find_alloc m (id_of addr) with
  | Some a -> a.live
  | None -> false

let live_allocations (m : t) : int =
  let n = ref 0 in
  for id = 1 to m.next_id - 1 do
    if m.allocs.(id).live then incr n
  done;
  !n

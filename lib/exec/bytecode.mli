(** The baseline JIT tier (paper section 3.4): per-function compilation
    of IR into a flat, register-based bytecode plus a tight dispatch
    loop.

    Semantics are shared with the tree-walking interpreter down to the
    helper functions, so the two tiers are bit-for-bit comparable: same
    outputs, same traps, same fuel accounting (one unit per executed IR
    instruction; phi copies and profiling hooks are free), and same
    block-execution profiles.  The serving layer and future tiers
    depend on this stated API, not on compiler internals. *)

type operand =
  | Reg of int  (** register slot *)
  | Cst of int  (** constant-pool index *)

type callee =
  | Direct of Llvm_ir.Ir.func
  | Indirect of operand * int  (** dynamic callee, call-site instr id *)

type gstep =
  | Goff of int  (** constant byte offset *)
  | Gscale of operand * int  (** dynamic index times element size *)

(** One bytecode instruction.  [Prof]/[Copy]/[Jmp]/[DeadEnd] are free
    bookkeeping with no IR counterpart; everything else charges one
    fuel unit.  The [*Fast] variants are range-proven unguarded forms
    with identical semantics and fuel to their guarded counterparts. *)
type bc =
  | Prof of int
  | Copy of int * operand
  | Jmp of int
  | DeadEnd of string
  | Bin of Llvm_ir.Ir.opcode * int * operand * operand
  | Cmp of Llvm_ir.Ir.opcode * int * operand * operand
  | CastI of Llvm_ir.Ltype.t * int * operand
  | Sel of int * operand * operand * operand
  | AllocI of {
      dst : int;
      elt_size : int;
      count : operand option;
      on_stack : bool;
    }
  | FreeI of operand
  | LoadI of Llvm_ir.Ltype.t * int * operand
  | StoreI of int * operand * operand
  | LoadFast of Llvm_ir.Ltype.t * int * operand
  | StoreFast of int * operand * operand
  | DivF of { rem : bool; dst : int; a : operand; b : operand }
  | GepI of int * operand * gstep array
  | GepSlow of
      int * operand * Llvm_ir.Ltype.t * (Llvm_ir.Ltype.t * operand) array
  | CallI of { dst : int; void : bool; callee : callee; args : operand array }
  | InvokeI of {
      dst : int;
      void : bool;
      callee : callee;
      args : operand array;
      normal : int;
      unwind : int;
    }
  | RetI of operand option
  | Br1 of int
  | Bra of operand * int * int
  | Sw of operand * (Interp.rtval * int) array * int
  | UnwindI

type compiled = {
  cname : string;
  nregs : int;  (** frame size, including phi-copy temporaries *)
  arg_slots : int array;
  cpool : Interp.rtval array;
  code : bc array;
  src_instrs : int;  (** IR instructions compiled (statistics) *)
  fast_ops : int;  (** guarded ops compiled to range-proven fast ops *)
  mutable free_frames : Interp.rtval array list;
      (** recycled register frames — frames need no clearing between
          activations because every slot is written (def dominates use)
          before it is read *)
  mutable nfree : int;
}

(** Division with the zero-divisor guard compiled away: exactly
    [Fold.int_binop] on Div/Rem minus the [b = 0] test the range
    analysis discharged statically. *)
val div_fast :
  Llvm_ir.Ltype.int_kind -> rem:bool -> int64 -> int64 -> int64

(** Compile one defined function (traps on a declaration).  With
    [ranges], accesses and divisions the interval analysis proves safe
    compile to the unguarded fast variants.  With [profile], blocks are
    laid out hot-first (entry pinned) by aggregate weight — pure
    layout: semantics, fuel and profiles are unchanged. *)
val compile :
  ?ranges:Llvm_analysis.Range.t ->
  ?profile:Llvm_profile.Profile.t ->
  Interp.machine ->
  Llvm_ir.Ir.func ->
  compiled

(** Run compiled code against the shared machine state.  Fuel, traps,
    output and profiles behave exactly as [Interp.exec_func]. *)
val exec : Interp.machine -> compiled -> Interp.rtval list -> Interp.outcome

(** {1 Introspection (tests, debugging)} *)

val pp_operand : Format.formatter -> operand -> unit
val pp_bc : Format.formatter -> bc -> unit
val disassemble : compiled -> string

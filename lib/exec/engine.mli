(** The tiered execution engine (paper sections 3.4-3.5): one
    [Interp.machine], three tiers.

    [Interp_tier] tree-walks every call; [Bytecode_tier] lazily
    compiles every defined function to {!Bytecode} on first call;
    [Tiered] starts in the interpreter and promotes a function to
    bytecode once its entry-block execution count crosses the hot
    threshold.  The engine installs itself as [machine.dispatch], so
    call sites in either tier route back through the tier decision and
    interpreter frames can call promoted functions (and vice versa). *)

type kind = Interp_tier | Bytecode_tier | Tiered

val kind_name : kind -> string
val kind_of_string : string -> kind option
val default_hot_threshold : int

type t = {
  mach : Interp.machine;
  kind : kind;
  hot_threshold : int;
  compiled : (int, Bytecode.compiled) Hashtbl.t;  (** func id -> bytecode *)
  ranges : Llvm_analysis.Range.t Lazy.t;
      (** whole-module value ranges, forced when the first function is
          compiled, so {!Bytecode.compile} can emit fast ops *)
  layout_profile : Llvm_profile.Profile.t option;
      (** aggregate profile for hot/cold block layout *)
  mutable promotions : (string * int) list;
  mutable deopt_falls : int;
}

(** Materialize the module and install the tier dispatch.  [Tiered]
    forces profiling on (it needs entry counts), keeping profiles
    identical across tiers.  [profile] drives hot/cold block layout in
    {!Bytecode.compile} (pure layout; never changes behaviour).

    The deopt protocol: a failed speculation guard calls the
    [llvm_deopt] builtin, which sets [Interp.machine.deopt_pending];
    the engine's dispatch consumes the flag and runs the next call —
    the speculated site's original indirect call — in the interpreter
    tier.  Tiers are bit-for-bit identical, so the fallback is purely
    an execution-strategy decision. *)
val create :
  ?hot_threshold:int ->
  ?profiling:bool ->
  ?profile:Llvm_profile.Profile.t ->
  kind ->
  Llvm_ir.Ir.modul ->
  t

(** Promotions in promotion order: function name, entry count when
    promoted. *)
val promotions : t -> (string * int) list

val compiled_count : t -> int

(** Failed speculation guards ([llvm_deopt] executions). *)
val deopts : t -> int

(** Calls the engine re-routed to the interpreter tier after a guard
    failure. *)
val deopt_falls : t -> int

(** Guarded ops compiled to range-proven fast ops so far. *)
val fast_ops : t -> int

(** Eagerly compile every definition; returns (functions compiled, IR
    instructions compiled). *)
val compile_all : t -> int * int

(** Build the machine, run [main], and report traps and [exit()]s
    raised anywhere — including during global-initializer
    materialization — as a result rather than an exception. *)
val run_main :
  ?fuel:int ->
  ?hot_threshold:int ->
  ?profiling:bool ->
  ?profile:Llvm_profile.Profile.t ->
  kind ->
  Llvm_ir.Ir.modul ->
  Interp.run_result * Interp.profile

(** Simulated byte-addressed memory for the execution engine.

    Addresses are int64 values packing an allocation id (high 32 bits)
    and a byte offset (low 32): pointers are real values — casts to and
    from integers work — while every access checks liveness and bounds
    like a safe malloc implementation.  Allocation ids at or above
    {!func_id_base} denote code addresses for indirect calls. *)

exception Trap of string

(** Raise {!Trap} with a formatted message. *)
val trap : ('a, Format.formatter, unit, 'b) format4 -> 'a

type t

val func_id_base : int
val create : unit -> t
val addr_of : id:int -> offset:int -> int64
val id_of : int64 -> int
val offset_of : int64 -> int
val is_null : int64 -> bool
val is_func_addr : int64 -> bool

(** Allocate [size] zeroed bytes; stack allocations are released on
    function return rather than freed. *)
val alloc : t -> ?on_stack:bool -> int -> int64

(** [free] checks for double frees, interior pointers and stack memory;
    freeing null is a no-op. *)
val free : t -> int64 -> unit

val release_stack : t -> int64 -> unit
val read_bytes : t -> int64 -> int -> Bytes.t
val write_bytes : t -> int64 -> Bytes.t -> unit

(** Little-endian fixed-width integer accessors. *)
val read_int : t -> int64 -> size:int -> int64

val write_int : t -> int64 -> size:int -> int64 -> unit

(** Accessors without the null/liveness/bounds checks, for addresses a
    compiler has proven live and in bounds ({!Bytecode}'s range-proven
    fast memory ops).  The underlying [Bytes] operations are still
    bounds-checked by the OCaml runtime, so an unsound caller raises
    rather than corrupting unrelated allocations. *)
val read_int_unchecked : t -> int64 -> size:int -> int64

val write_int_unchecked : t -> int64 -> size:int -> int64 -> unit

(** Read a NUL-terminated string (for the print_str builtin). *)
val read_cstring : t -> int64 -> string

(** Is the allocation containing this address still live? *)
val is_live : t -> int64 -> bool

val live_allocations : t -> int

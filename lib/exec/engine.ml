(* Tiered execution engine (paper sections 3.4-3.5).

   Three tiers over one [Interp.machine]:

   - [Interp_tier]  : every call tree-walks ([Interp.exec_func]).
   - [Bytecode_tier]: every defined function is lazily compiled to
     [Bytecode] on first call and executed in the dispatch loop.
   - [Tiered]       : calls start in the interpreter; the existing
     block-profile instrumentation counts function entries (the entry
     block's execution count), and a function crossing [hot_threshold]
     is promoted to bytecode for all subsequent calls.

   The engine installs itself as [machine.dispatch], so call sites in
   either tier route every call back through the tier decision —
   interpreter frames can call promoted functions and vice versa.
   Declarations (builtins) always go to [Interp.exec_func]. *)

open Llvm_ir
open Ir
open Interp

type kind = Interp_tier | Bytecode_tier | Tiered

let kind_name = function
  | Interp_tier -> "interp"
  | Bytecode_tier -> "bytecode"
  | Tiered -> "tiered"

let kind_of_string = function
  | "interp" -> Some Interp_tier
  | "bytecode" -> Some Bytecode_tier
  | "tiered" -> Some Tiered
  | _ -> None

let default_hot_threshold = 8

type t = {
  mach : machine;
  kind : kind;
  hot_threshold : int;
  compiled : (int, Bytecode.compiled) Hashtbl.t; (* func id -> bytecode *)
  (* whole-module value ranges, computed once when the first function is
     compiled; lets [Bytecode.compile] emit unguarded fast ops for
     range-proven-safe loads, stores and divisions *)
  ranges : Llvm_analysis.Range.t Lazy.t;
  (* aggregate profile for hot/cold block layout in [Bytecode.compile] *)
  layout_profile : Llvm_profile.Profile.t option;
  mutable promotions : (string * int) list; (* name, entry count when promoted *)
  mutable deopt_falls : int; (* calls re-routed to the interpreter tier *)
}

let entries (e : t) (f : func) : int =
  Option.value ~default:0
    (Hashtbl.find_opt e.mach.block_counts (entry_block f).bid)

let get_compiled (e : t) (f : func) : Bytecode.compiled =
  match Hashtbl.find_opt e.compiled f.fid with
  | Some c -> c
  | None ->
    let c =
      Bytecode.compile ~ranges:(Lazy.force e.ranges) ?profile:e.layout_profile
        e.mach f
    in
    Hashtbl.replace e.compiled f.fid c;
    c

let create ?(hot_threshold = default_hot_threshold) ?(profiling = false)
    ?profile (kind : kind) (m : modul) : t =
  let mach = Interp.create m in
  (* Tiering needs entry counts, so it forces profiling on; this keeps
     profiles identical across tiers rather than a tiered-only extra. *)
  mach.profiling <- profiling || kind = Tiered;
  let e =
    { mach; kind; hot_threshold; compiled = Hashtbl.create 32;
      ranges = lazy (Llvm_analysis.Range.analyze m); layout_profile = profile;
      promotions = []; deopt_falls = 0 }
  in
  (* The deopt protocol: a failed speculation guard calls [llvm_deopt],
     which sets [deopt_pending]; the very next dispatched call is the
     speculated site's original indirect call, and the engine honours
     the request by running it in the interpreter tier.  The tiers are
     bit-for-bit identical, so this is purely a tier decision — it
     cannot change behaviour, only recover the unspeculated code
     path's execution strategy. *)
  let take_deopt () =
    if mach.deopt_pending then begin
      mach.deopt_pending <- false;
      e.deopt_falls <- e.deopt_falls + 1;
      true
    end
    else false
  in
  (match kind with
  | Interp_tier -> () (* keep the default dispatch *)
  | Bytecode_tier ->
    mach.dispatch <-
      (fun mach f args ->
        if is_declaration f then exec_func mach f args
        else if take_deopt () then exec_func mach f args
        else Bytecode.exec mach (get_compiled e f) args)
  | Tiered ->
    mach.dispatch <-
      (fun mach f args ->
        if is_declaration f then exec_func mach f args
        else if take_deopt () then exec_func mach f args
        else
          match Hashtbl.find_opt e.compiled f.fid with
          | Some c -> Bytecode.exec mach c args
          | None ->
            let n = entries e f in
            if n >= e.hot_threshold then begin
              let c = get_compiled e f in
              e.promotions <- (f.fname, n) :: e.promotions;
              Bytecode.exec mach c args
            end
            else exec_func mach f args));
  e

(* Promotions in promotion order (tests, bench, lli stats). *)
let promotions (e : t) : (string * int) list = List.rev e.promotions
let compiled_count (e : t) : int = Hashtbl.length e.compiled

(* Speculation statistics: guard failures counted by the machine, and
   how many of them the engine answered with an interpreter-tier
   fallback. *)
let deopts (e : t) : int = e.mach.deopts
let deopt_falls (e : t) : int = e.deopt_falls

(* Guarded ops compiled to range-proven fast ops, over every function
   compiled so far (tests, bench ranges mode). *)
let fast_ops (e : t) : int =
  Hashtbl.fold (fun _ c acc -> acc + c.Bytecode.fast_ops) e.compiled 0

(* Eagerly compile every definition (bench: time compilation apart from
   execution).  Returns (functions compiled, IR instructions compiled). *)
let compile_all (e : t) : int * int =
  List.fold_left
    (fun (nf, ni) f ->
      if is_declaration f then (nf, ni)
      else (nf + 1, ni + (get_compiled e f).Bytecode.src_instrs))
    (0, 0) e.mach.modul.mfuncs

(* -- Entry points ---------------------------------------------------------- *)

let empty_profile () : profile = { counts = Hashtbl.create 1 }

(* [run_main] builds the machine, runs main, and reports traps and
   exit()s raised anywhere — including from global-initializer
   materialization during [create] — as a [run_result] rather than an
   exception. *)
let run_main ?fuel ?hot_threshold ?(profiling = false) ?profile (kind : kind)
    (m : modul) : run_result * profile =
  match create ?hot_threshold ~profiling ?profile kind m with
  | exception Memory.Trap msg ->
    ({ status = `Trapped msg; output = ""; instructions = 0 }, empty_profile ())
  | exception Exit_program code ->
    ({ status = `Exited code; output = ""; instructions = 0 }, empty_profile ())
  | e -> (
    match find_func m "main" with
    | Some main ->
      (run_function ?fuel e.mach main [], { counts = e.mach.block_counts })
    | None ->
      ( { status = `Trapped "no main function"; output = ""; instructions = 0 },
        empty_profile () ))

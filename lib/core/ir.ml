(* The in-memory code representation (paper sections 2.1-2.4).

   The representation is a mutable graph, as in a conventional compiler
   middle end: instructions hold operand arrays referencing values, and
   every value with identity (instruction results, arguments, globals,
   functions, basic blocks) maintains a use-list so that
   replace-all-uses-with and dead-code queries are O(uses).

   Operand layout conventions, by opcode:
     Ret               []  or  [v]
     Br                [Vblock dest]  or  [cond; Vblock iftrue; Vblock iffalse]
     Switch            [v; Vblock default; case0; Vblock b0; case1; Vblock b1; ...]
     Invoke            [callee; Vblock normal; Vblock unwind; arg0; ...]
     Unwind            []
     binary / setcc    [lhs; rhs]
     Malloc / Alloca   []  or  [count]         (allocated type in [alloc_ty])
     Free              [ptr]
     Load              [ptr]
     Store             [value; ptr]
     Gep               [ptr; idx0; idx1; ...]
     Phi               [v0; Vblock pred0; v1; Vblock pred1; ...]
     Cast              [v]                      (target type is [ity])
     Call              [callee; arg0; ...]
     Select            [cond; iftrue; iffalse] *)

type opcode =
  (* terminators *)
  | Ret
  | Br
  | Switch
  | Invoke
  | Unwind
  (* binary arithmetic / logical *)
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  (* comparisons *)
  | SetEQ
  | SetNE
  | SetLT
  | SetGT
  | SetLE
  | SetGE
  (* memory *)
  | Malloc
  | Free
  | Alloca
  | Load
  | Store
  | Gep
  (* other *)
  | Phi
  | Cast
  | Call
  | Select

let all_opcodes =
  [ Ret; Br; Switch; Invoke; Unwind; Add; Sub; Mul; Div; Rem; And; Or; Xor;
    Shl; Shr; SetEQ; SetNE; SetLT; SetGT; SetLE; SetGE; Malloc; Free; Alloca;
    Load; Store; Gep; Phi; Cast; Call; Select ]

let opcode_name = function
  | Ret -> "ret"
  | Br -> "br"
  | Switch -> "switch"
  | Invoke -> "invoke"
  | Unwind -> "unwind"
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | SetEQ -> "seteq"
  | SetNE -> "setne"
  | SetLT -> "setlt"
  | SetGT -> "setgt"
  | SetLE -> "setle"
  | SetGE -> "setge"
  | Malloc -> "malloc"
  | Free -> "free"
  | Alloca -> "alloca"
  | Load -> "load"
  | Store -> "store"
  | Gep -> "getelementptr"
  | Phi -> "phi"
  | Cast -> "cast"
  | Call -> "call"
  | Select -> "select"

let is_terminator = function
  | Ret | Br | Switch | Invoke | Unwind -> true
  | _ -> false

let is_binary = function
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr -> true
  | _ -> false

let is_comparison = function
  | SetEQ | SetNE | SetLT | SetGT | SetLE | SetGE -> true
  | _ -> false

(* Instructions whose removal is observable (memory writes, control flow,
   calls).  A value-producing instruction outside this set is dead when it
   has no uses. *)
let has_side_effects = function
  | Store | Free | Call | Invoke | Ret | Br | Switch | Unwind | Malloc
  | Alloca ->
    true
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | SetEQ | SetNE
  | SetLT | SetGT | SetLE | SetGE | Load | Gep | Phi | Cast | Select ->
    false

type linkage = Internal | External

(* -- The recursive knot ------------------------------------------------ *)

type const =
  | Cbool of bool
  | Cint of Ltype.t * int64 (* type carries the integer kind *)
  | Cfloat of Ltype.t * float
  | Cnull of Ltype.t (* typed null pointer *)
  | Cundef of Ltype.t
  | Czero of Ltype.t (* zero-initializer for any type *)
  | Carray of Ltype.t * const list (* element type, elements *)
  | Cstruct of Ltype.t * const list
  | Cgvar of gvar (* address of a global variable *)
  | Cfunc of func (* address of a function *)
  | Ccast of Ltype.t * const

and value =
  | Vconst of const
  | Vinstr of instr
  | Varg of arg
  | Vglobal of gvar
  | Vfunc of func
  | Vblock of block

and use = { user : instr; index : int }

and instr = {
  iid : int;
  mutable iname : string;
  mutable ity : Ltype.t; (* result type; Void when none *)
  iop : opcode;
  mutable operands : value array;
  mutable alloc_ty : Ltype.t option; (* Malloc/Alloca payload *)
  mutable iparent : block option;
  mutable iuses : use list;
}

and block = {
  bid : int;
  mutable bname : string;
  mutable instrs : instr list;
  mutable bparent : func option;
  mutable buses : use list;
}

and arg = {
  aid : int;
  mutable aname : string;
  mutable aty : Ltype.t;
  mutable aparent : func option;
  mutable auses : use list;
}

and func = {
  fid : int;
  mutable fname : string;
  mutable freturn : Ltype.t;
  mutable fvarargs : bool;
  mutable fargs : arg list;
  mutable fblocks : block list; (* head is the entry block *)
  mutable flinkage : linkage;
  mutable fparent : modul option;
  mutable fuses : use list;
}

and gvar = {
  gid : int;
  mutable gname : string;
  mutable gty : Ltype.t; (* type of the contents, not of the address *)
  mutable ginit : const option; (* None for external declarations *)
  mutable gconstant : bool;
  mutable glinkage : linkage;
  mutable gparent : modul option;
  mutable guses : use list;
}

and modul = {
  mutable mname : string;
  mutable mglobals : gvar list;
  mutable mfuncs : func list;
  mtypes : Ltype.table; (* named type definitions *)
}

let next_id =
  let counter = ref 0 in
  fun () ->
    incr counter;
    !counter

(* -- Constants --------------------------------------------------------- *)

let rec type_of_const (_table : Ltype.table) = function
  | Cbool _ -> Ltype.Bool
  | Cint (t, _) | Cfloat (t, _) | Cundef t | Czero t -> t
  | Cnull t -> t
  | Carray (elt, elts) -> Ltype.Array (List.length elts, elt)
  | Cstruct (t, _) -> t
  | Cgvar g -> Ltype.Pointer g.gty
  | Cfunc f -> Ltype.Pointer (func_type f)
  | Ccast (t, _) -> t

and func_type f =
  Ltype.Function (f.freturn, List.map (fun a -> a.aty) f.fargs, f.fvarargs)

and type_of table = function
  | Vconst c -> type_of_const table c
  | Vinstr i -> i.ity
  | Varg a -> a.aty
  | Vglobal g -> Ltype.Pointer g.gty
  | Vfunc f -> Ltype.Pointer (func_type f)
  | Vblock _ -> Ltype.Void

(* Truncate/sign-extend an int64 so it is a valid bit-pattern for [kind],
   stored in the canonical (sign-extended for signed, zero-extended for
   unsigned) form used throughout the compiler. *)
let normalize_int kind (v : int64) : int64 =
  let bits = Ltype.int_bits kind in
  if bits = 64 then v
  else
    let mask = Int64.sub (Int64.shift_left 1L bits) 1L in
    let low = Int64.logand v mask in
    if Ltype.is_signed kind then
      let sign_bit = Int64.shift_left 1L (bits - 1) in
      if Int64.logand low sign_bit <> 0L then Int64.logor low (Int64.lognot mask)
      else low
    else low

let cint kind v = Cint (Ltype.Integer kind, normalize_int kind v)
let cbool b = Cbool b
let cint_of_ty ty v =
  match ty with
  | Ltype.Integer k -> cint k v
  | Ltype.Bool -> Cbool (v <> 0L)
  | _ -> invalid_arg "Ir.cint_of_ty: not an integer type"

(* -- Use-list maintenance ---------------------------------------------- *)

let add_use (v : value) (u : use) =
  match v with
  | Vinstr i -> i.iuses <- u :: i.iuses
  | Varg a -> a.auses <- u :: a.auses
  | Vglobal g -> g.guses <- u :: g.guses
  | Vfunc f -> f.fuses <- u :: f.fuses
  | Vblock b -> b.buses <- u :: b.buses
  | Vconst _ -> ()

let remove_use (v : value) (u : use) =
  let del l = List.filter (fun x -> not (x.user == u.user && x.index = u.index)) l in
  match v with
  | Vinstr i -> i.iuses <- del i.iuses
  | Varg a -> a.auses <- del a.auses
  | Vglobal g -> g.guses <- del g.guses
  | Vfunc f -> f.fuses <- del f.fuses
  | Vblock b -> b.buses <- del b.buses
  | Vconst _ -> ()

let set_operand (i : instr) idx (v : value) =
  remove_use i.operands.(idx) { user = i; index = idx };
  i.operands.(idx) <- v;
  add_use v { user = i; index = idx }

(* Replace the whole operand array, fixing up use lists. *)
let set_operands (i : instr) (ops : value array) =
  Array.iteri (fun idx v -> remove_use v { user = i; index = idx }) i.operands;
  i.operands <- ops;
  Array.iteri (fun idx v -> add_use v { user = i; index = idx }) ops

let uses_of = function
  | Vinstr i -> i.iuses
  | Varg a -> a.auses
  | Vglobal g -> g.guses
  | Vfunc f -> f.fuses
  | Vblock b -> b.buses
  | Vconst _ -> []

let num_uses v = List.length (uses_of v)
let has_uses v = uses_of v <> []

(* Division by zero traps deterministically in this IR, so a [Div]/[Rem]
   whose divisor is not a provably nonzero constant is observable even
   when its result is unused: dead-code elimination must keep it. *)
let may_trap (i : instr) : bool =
  match i.iop with
  | Div | Rem -> (
    match i.operands.(1) with
    | Vconst (Cint (_, v)) -> v = 0L
    | Vconst (Cbool b) -> not b
    | _ -> true)
  | _ -> false

(* replaceAllUsesWith: redirect every use of [old_v] to [new_v]. *)
let replace_all_uses_with (old_v : value) (new_v : value) =
  let uses = uses_of old_v in
  List.iter (fun u -> set_operand u.user u.index new_v) uses

(* -- Instruction creation / placement ---------------------------------- *)

let mk_instr ?(name = "") ?alloc_ty ~ty op operands =
  let i =
    { iid = next_id (); iname = name; ity = ty; iop = op;
      operands = Array.of_list operands; alloc_ty; iparent = None;
      iuses = [] }
  in
  Array.iteri (fun idx v -> add_use v { user = i; index = idx }) i.operands;
  i

let instr_value i = Vinstr i

(* Detach an instruction from its block without touching its operand
   use-lists (it can be re-inserted elsewhere). *)
let unlink_instr (i : instr) =
  (match i.iparent with
  | Some b -> b.instrs <- List.filter (fun x -> not (x == i)) b.instrs
  | None -> ());
  i.iparent <- None

(* Delete an instruction entirely: drop it from its block and release its
   operand uses.  The instruction must itself be unused. *)
let erase_instr (i : instr) =
  assert (i.iuses = []);
  unlink_instr i;
  Array.iteri (fun idx v -> remove_use v { user = i; index = idx }) i.operands;
  i.operands <- [||]

let append_instr (b : block) (i : instr) =
  i.iparent <- Some b;
  b.instrs <- b.instrs @ [ i ]

let prepend_instr (b : block) (i : instr) =
  i.iparent <- Some b;
  b.instrs <- i :: b.instrs

(* Insert [i] immediately before [point] in point's block. *)
let insert_before ~(point : instr) (i : instr) =
  match point.iparent with
  | None -> invalid_arg "Ir.insert_before: point not in a block"
  | Some b ->
    i.iparent <- Some b;
    let rec go = function
      | [] -> [ i ]
      | x :: rest when x == point -> i :: x :: rest
      | x :: rest -> x :: go rest
    in
    b.instrs <- go b.instrs

let terminator (b : block) : instr option =
  let rec last = function
    | [] -> None
    | [ x ] -> if is_terminator x.iop then Some x else None
    | _ :: rest -> last rest
  in
  last b.instrs

(* Insert before the terminator (or append when the block is unterminated). *)
let insert_before_terminator (b : block) (i : instr) =
  match terminator b with
  | Some t -> insert_before ~point:t i
  | None -> append_instr b i

(* -- Opcode-specific accessors ------------------------------------------ *)

let as_block = function
  | Vblock b -> b
  | _ -> invalid_arg "Ir.as_block: operand is not a basic block"

(* Successor blocks of a terminator instruction. *)
let successors (i : instr) : block list =
  match i.iop with
  | Ret | Unwind -> []
  | Br ->
    if Array.length i.operands = 1 then [ as_block i.operands.(0) ]
    else [ as_block i.operands.(1); as_block i.operands.(2) ]
  | Switch ->
    let rec cases k acc =
      if k >= Array.length i.operands then List.rev acc
      else cases (k + 2) (as_block i.operands.(k + 1) :: acc)
    in
    as_block i.operands.(1) :: cases 2 []
  | Invoke -> [ as_block i.operands.(1); as_block i.operands.(2) ]
  | _ -> invalid_arg "Ir.successors: not a terminator"

let phi_incoming (i : instr) : (value * block) list =
  assert (i.iop = Phi);
  let rec go k acc =
    if k >= Array.length i.operands then List.rev acc
    else go (k + 2) ((i.operands.(k), as_block i.operands.(k + 1)) :: acc)
  in
  go 0 []

let phi_add_incoming (i : instr) (v : value) (b : block) =
  assert (i.iop = Phi);
  let n = Array.length i.operands in
  let ops = Array.make (n + 2) v in
  Array.blit i.operands 0 ops 0 n;
  ops.(n) <- v;
  ops.(n + 1) <- Vblock b;
  set_operands i ops

(* Remove the incoming entry for predecessor [b] in a phi. *)
let phi_remove_incoming (i : instr) (b : block) =
  assert (i.iop = Phi);
  let pairs = phi_incoming i in
  let pairs = List.filter (fun (_, p) -> not (p == b)) pairs in
  let ops = List.concat_map (fun (v, p) -> [ v; Vblock p ]) pairs in
  set_operands i (Array.of_list ops)

let call_callee (i : instr) = i.operands.(0)
let call_args (i : instr) =
  match i.iop with
  | Call -> Array.to_list (Array.sub i.operands 1 (Array.length i.operands - 1))
  | Invoke -> Array.to_list (Array.sub i.operands 3 (Array.length i.operands - 3))
  | _ -> invalid_arg "Ir.call_args: not a call"

let switch_cases (i : instr) : (const * block) list =
  assert (i.iop = Switch);
  let rec go k acc =
    if k >= Array.length i.operands then List.rev acc
    else
      match i.operands.(k) with
      | Vconst c -> go (k + 2) ((c, as_block i.operands.(k + 1)) :: acc)
      | _ -> invalid_arg "Ir.switch_cases: non-constant case"
  in
  go 2 []

(* -- Blocks ------------------------------------------------------------- *)

let mk_block ?(name = "") () =
  { bid = next_id (); bname = name; instrs = []; bparent = None; buses = [] }

let append_block (f : func) (b : block) =
  b.bparent <- Some f;
  f.fblocks <- f.fblocks @ [ b ]

let remove_block (f : func) (b : block) =
  f.fblocks <- List.filter (fun x -> not (x == b)) f.fblocks;
  b.bparent <- None

let entry_block (f : func) =
  match f.fblocks with
  | [] -> invalid_arg ("Ir.entry_block: function " ^ f.fname ^ " has no body")
  | b :: _ -> b

(* Predecessor blocks: blocks whose terminator uses this block as a label.
   Phi references do not create CFG edges. *)
let predecessors (b : block) : block list =
  let preds =
    List.filter_map
      (fun u ->
        if is_terminator u.user.iop then
          match u.user.iparent with Some p -> Some p | None -> None
        else None)
      b.buses
  in
  (* dedupe while preserving order *)
  let seen = Hashtbl.create 8 in
  List.filter
    (fun p ->
      if Hashtbl.mem seen p.bid then false
      else (
        Hashtbl.add seen p.bid ();
        true))
    preds

(* -- Functions ---------------------------------------------------------- *)

let mk_func ?(linkage = External) ?(varargs = false) ~name ~return ~params () =
  let f =
    { fid = next_id (); fname = name; freturn = return; fvarargs = varargs;
      fargs = []; fblocks = []; flinkage = linkage; fparent = None;
      fuses = [] }
  in
  f.fargs <-
    List.map
      (fun (pname, pty) ->
        { aid = next_id (); aname = pname; aty = pty; aparent = Some f;
          auses = [] })
      params;
  f

let is_declaration (f : func) = f.fblocks = []

let iter_instrs (fn : instr -> unit) (f : func) =
  List.iter (fun b -> List.iter fn b.instrs) f.fblocks

let fold_instrs (fn : 'a -> instr -> 'a) (acc : 'a) (f : func) =
  List.fold_left
    (fun acc b -> List.fold_left fn acc b.instrs)
    acc f.fblocks

let instr_count (f : func) = fold_instrs (fun n _ -> n + 1) 0 f

(* -- Globals and modules ------------------------------------------------ *)

let mk_gvar ?(linkage = External) ?(constant = false) ?init ~name ~ty () =
  { gid = next_id (); gname = name; gty = ty; ginit = init;
    gconstant = constant; glinkage = linkage; gparent = None; guses = [] }

let mk_module name =
  { mname = name; mglobals = []; mfuncs = []; mtypes = Ltype.create_table () }

let add_func (m : modul) (f : func) =
  f.fparent <- Some m;
  m.mfuncs <- m.mfuncs @ [ f ]

let add_gvar (m : modul) (g : gvar) =
  g.gparent <- Some m;
  m.mglobals <- m.mglobals @ [ g ]

let remove_func (m : modul) (f : func) =
  m.mfuncs <- List.filter (fun x -> not (x == f)) m.mfuncs;
  f.fparent <- None

let remove_gvar (m : modul) (g : gvar) =
  m.mglobals <- List.filter (fun x -> not (x == g)) m.mglobals;
  g.gparent <- None

let find_func (m : modul) name =
  List.find_opt (fun f -> f.fname = name) m.mfuncs

let find_gvar (m : modul) name =
  List.find_opt (fun g -> g.gname = name) m.mglobals

let define_type (m : modul) name ty = Hashtbl.replace m.mtypes name ty

let module_instr_count (m : modul) =
  List.fold_left (fun n f -> n + instr_count f) 0 m.mfuncs

(* Equality helpers keyed on identity. *)
let value_equal a b =
  match (a, b) with
  | Vinstr x, Vinstr y -> x == y
  | Varg x, Varg y -> x == y
  | Vglobal x, Vglobal y -> x == y
  | Vfunc x, Vfunc y -> x == y
  | Vblock x, Vblock y -> x == y
  | Vconst x, Vconst y -> x = y
  | _ -> false

(** The in-memory code representation (paper sections 2.1-2.4): a
    mutable graph of typed instructions in SSA form with explicit
    control flow, use-lists on every value with identity, and a module
    structure of functions and global variables.

    Operand layout conventions, by opcode:
    {v
     Ret               []  or  [v]
     Br                [Vblock dest]  or  [cond; Vblock iftrue; Vblock iffalse]
     Switch            [v; Vblock default; case0; Vblock b0; ...]
     Invoke            [callee; Vblock normal; Vblock unwind; arg0; ...]
     Unwind            []
     binary / setcc    [lhs; rhs]
     Malloc / Alloca   []  or  [count]          (allocated type in alloc_ty)
     Free              [ptr]
     Load              [ptr]
     Store             [value; ptr]
     Gep               [ptr; idx0; idx1; ...]
     Phi               [v0; Vblock pred0; v1; Vblock pred1; ...]
     Cast              [v]                      (target type is ity)
     Call              [callee; arg0; ...]
     Select            [cond; iftrue; iffalse]
    v} *)

(** The complete 31-opcode instruction set (paper section 2.1). *)
type opcode =
  | Ret
  | Br
  | Switch
  | Invoke
  | Unwind
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | SetEQ
  | SetNE
  | SetLT
  | SetGT
  | SetLE
  | SetGE
  | Malloc
  | Free
  | Alloca
  | Load
  | Store
  | Gep
  | Phi
  | Cast
  | Call
  | Select

(** All 31 opcodes, in a stable order used by the bitcode encoding. *)
val all_opcodes : opcode list

val opcode_name : opcode -> string
val is_terminator : opcode -> bool
val is_binary : opcode -> bool
val is_comparison : opcode -> bool

(** Instructions whose removal is observable; a value-producing
    instruction outside this set is dead when unused. *)
val has_side_effects : opcode -> bool

type linkage = Internal | External

(** {1 The recursive object graph} *)

type const =
  | Cbool of bool
  | Cint of Ltype.t * int64  (** the type carries the integer kind *)
  | Cfloat of Ltype.t * float
  | Cnull of Ltype.t
  | Cundef of Ltype.t
  | Czero of Ltype.t  (** zero-initializer for any type *)
  | Carray of Ltype.t * const list  (** element type, elements *)
  | Cstruct of Ltype.t * const list
  | Cgvar of gvar  (** address of a global variable *)
  | Cfunc of func  (** address of a function *)
  | Ccast of Ltype.t * const

and value =
  | Vconst of const
  | Vinstr of instr  (** the SSA register an instruction defines *)
  | Varg of arg
  | Vglobal of gvar
  | Vfunc of func
  | Vblock of block  (** label operand of terminators and phis *)

and use = { user : instr; index : int }

and instr = {
  iid : int;  (** unique id *)
  mutable iname : string;
  mutable ity : Ltype.t;  (** result type; [Void] when none *)
  iop : opcode;
  mutable operands : value array;
  mutable alloc_ty : Ltype.t option;  (** Malloc/Alloca element type *)
  mutable iparent : block option;
  mutable iuses : use list;
}

and block = {
  bid : int;
  mutable bname : string;
  mutable instrs : instr list;
  mutable bparent : func option;
  mutable buses : use list;
}

and arg = {
  aid : int;
  mutable aname : string;
  mutable aty : Ltype.t;
  mutable aparent : func option;
  mutable auses : use list;
}

and func = {
  fid : int;
  mutable fname : string;
  mutable freturn : Ltype.t;
  mutable fvarargs : bool;
  mutable fargs : arg list;
  mutable fblocks : block list;  (** head is the entry block *)
  mutable flinkage : linkage;
  mutable fparent : modul option;
  mutable fuses : use list;
}

and gvar = {
  gid : int;
  mutable gname : string;
  mutable gty : Ltype.t;  (** type of the contents, not the address *)
  mutable ginit : const option;  (** [None] for external declarations *)
  mutable gconstant : bool;
  mutable glinkage : linkage;
  mutable gparent : modul option;
  mutable guses : use list;
}

and modul = {
  mutable mname : string;
  mutable mglobals : gvar list;
  mutable mfuncs : func list;
  mtypes : Ltype.table;  (** named type definitions *)
}

val next_id : unit -> int

(** {1 Constants} *)

val type_of_const : Ltype.table -> const -> Ltype.t
val func_type : func -> Ltype.t
val type_of : Ltype.table -> value -> Ltype.t

(** Truncate / sign-extend an int64 into the canonical bit-pattern for
    an integer kind (sign-extended when signed, zero-extended when
    unsigned). *)
val normalize_int : Ltype.int_kind -> int64 -> int64

val cint : Ltype.int_kind -> int64 -> const
val cbool : bool -> const

(** @raise Invalid_argument when the type is not integer or bool. *)
val cint_of_ty : Ltype.t -> int64 -> const

(** {1 Use-lists} *)

val add_use : value -> use -> unit
val remove_use : value -> use -> unit

(** Replace operand [idx] of an instruction, maintaining use-lists. *)
val set_operand : instr -> int -> value -> unit

(** Replace the whole operand array, maintaining use-lists. *)
val set_operands : instr -> value array -> unit

val uses_of : value -> use list
val num_uses : value -> int
val has_uses : value -> bool

(** Whether executing the instruction can trap even though its opcode is
    side-effect-free: a [Div]/[Rem] whose divisor is not a provably
    nonzero constant.  Dead-code elimination must keep such
    instructions — division by zero traps observably in this IR. *)
val may_trap : instr -> bool

(** Redirect every use of the first value to the second
    (replaceAllUsesWith). *)
val replace_all_uses_with : value -> value -> unit

(** {1 Instructions} *)

val mk_instr :
  ?name:string ->
  ?alloc_ty:Ltype.t ->
  ty:Ltype.t ->
  opcode ->
  value list ->
  instr

val instr_value : instr -> value

(** Detach from the parent block without touching operand use-lists. *)
val unlink_instr : instr -> unit

(** Remove from the block and release operand uses.  The instruction
    itself must be unused. *)
val erase_instr : instr -> unit

val append_instr : block -> instr -> unit
val prepend_instr : block -> instr -> unit
val insert_before : point:instr -> instr -> unit

(** The block's final instruction when it is a terminator. *)
val terminator : block -> instr option

val insert_before_terminator : block -> instr -> unit

(** {1 Opcode-specific accessors} *)

(** @raise Invalid_argument when the operand is not a block label. *)
val as_block : value -> block

(** Successor blocks of a terminator. *)
val successors : instr -> block list

val phi_incoming : instr -> (value * block) list
val phi_add_incoming : instr -> value -> block -> unit
val phi_remove_incoming : instr -> block -> unit
val call_callee : instr -> value
val call_args : instr -> value list
val switch_cases : instr -> (const * block) list

(** {1 Blocks} *)

val mk_block : ?name:string -> unit -> block
val append_block : func -> block -> unit
val remove_block : func -> block -> unit
val entry_block : func -> block

(** Blocks whose terminator targets this one (deduplicated). *)
val predecessors : block -> block list

(** {1 Functions} *)

val mk_func :
  ?linkage:linkage ->
  ?varargs:bool ->
  name:string ->
  return:Ltype.t ->
  params:(string * Ltype.t) list ->
  unit ->
  func

val is_declaration : func -> bool
val iter_instrs : (instr -> unit) -> func -> unit
val fold_instrs : ('a -> instr -> 'a) -> 'a -> func -> 'a
val instr_count : func -> int

(** {1 Globals and modules} *)

val mk_gvar :
  ?linkage:linkage ->
  ?constant:bool ->
  ?init:const ->
  name:string ->
  ty:Ltype.t ->
  unit ->
  gvar

val mk_module : string -> modul
val add_func : modul -> func -> unit
val add_gvar : modul -> gvar -> unit
val remove_func : modul -> func -> unit
val remove_gvar : modul -> gvar -> unit
val find_func : modul -> string -> func option
val find_gvar : modul -> string -> gvar option
val define_type : modul -> string -> Ltype.t -> unit
val module_instr_count : modul -> int

(** Identity-based equality for values (structural for constants). *)
val value_equal : value -> value -> bool

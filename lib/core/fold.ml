(* Constant folding over the instruction set.

   [fold_binop]/[fold_cmp]/[fold_cast] evaluate an operation whose operands
   are constants, returning [None] when the operation cannot be folded
   (division by zero, pointer-typed operands, casts between incompatible
   shapes, ...).  The semantics match the execution engine exactly — the
   property tests in test/ check this by construction. *)

open Ir

(* Interpret the stored (sign- or zero-extended) int64 as an unsigned
   quantity for unsigned division/comparison/shift. *)
let to_unsigned bits (v : int64) =
  if bits = 64 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L bits) 1L)

let int_binop kind op (a : int64) (b : int64) : int64 option =
  let bits = Ltype.int_bits kind in
  let signed = Ltype.is_signed kind in
  if bits = 64 then
    (* 64-bit fast path: normalization is the identity, and stored
       values are already canonical, so [to_unsigned] is too.  This is
       also the execution engine's hot path — no closures, one boxed
       result per operation. *)
    match op with
    | Add -> Some (Int64.add a b)
    | Sub -> Some (Int64.sub a b)
    | Mul -> Some (Int64.mul a b)
    | Div ->
      if b = 0L then None
      else if signed then
        if a = Int64.min_int && b = -1L then Some a else Some (Int64.div a b)
      else Some (Int64.unsigned_div a b)
    | Rem ->
      if b = 0L then None
      else if signed then
        if a = Int64.min_int && b = -1L then Some 0L else Some (Int64.rem a b)
      else Some (Int64.unsigned_rem a b)
    | And -> Some (Int64.logand a b)
    | Or -> Some (Int64.logor a b)
    | Xor -> Some (Int64.logxor a b)
    | Shl ->
      let s = Int64.to_int b in
      if s >= 64 || s < 0 then Some 0L else Some (Int64.shift_left a s)
    | Shr ->
      let s = Int64.to_int b in
      if s < 0 || s >= 64 then Some (if signed && a < 0L then -1L else 0L)
      else if signed then Some (Int64.shift_right a s)
      else Some (Int64.shift_right_logical a s)
    | _ -> None
  else
    let mask = Int64.sub (Int64.shift_left 1L bits) 1L in
    let sign_bit = Int64.shift_left 1L (bits - 1) in
    (* normalize_int with bits/mask hoisted out, written in-line in each
       arm so the intermediate int64s stay unboxed *)
    let norm v =
      let low = Int64.logand v mask in
      if signed && Int64.logand low sign_bit <> 0L then
        Int64.logor low (Int64.lognot mask)
      else low
    in
    match op with
    | Add -> Some (norm (Int64.add a b))
    | Sub -> Some (norm (Int64.sub a b))
    | Mul -> Some (norm (Int64.mul a b))
    | Div ->
      if b = 0L then None
      else if signed then
        if a = Int64.min_int && b = -1L then Some (norm a)
        else Some (norm (Int64.div a b))
      else Some (norm (Int64.unsigned_div (Int64.logand a mask) (Int64.logand b mask)))
    | Rem ->
      if b = 0L then None
      else if signed then
        if a = Int64.min_int && b = -1L then Some 0L
        else Some (norm (Int64.rem a b))
      else Some (norm (Int64.unsigned_rem (Int64.logand a mask) (Int64.logand b mask)))
    | And -> Some (norm (Int64.logand a b))
    | Or -> Some (norm (Int64.logor a b))
    | Xor -> Some (norm (Int64.logxor a b))
    | Shl ->
      let s = Int64.to_int (Int64.logand b mask) in
      if s >= bits || s < 0 then Some 0L else Some (norm (Int64.shift_left a s))
    | Shr ->
      (* shr is arithmetic on signed types, logical on unsigned (LLVM 1.x). *)
      let s = Int64.to_int (Int64.logand b mask) in
      if s < 0 || s >= 64 then Some (if signed && a < 0L then -1L else 0L)
      else if signed then Some (norm (Int64.shift_right a s))
      else Some (norm (Int64.shift_right_logical (Int64.logand a mask) s))
    | _ -> None

let float_binop op (a : float) (b : float) : float option =
  match op with
  | Add -> Some (a +. b)
  | Sub -> Some (a -. b)
  | Mul -> Some (a *. b)
  | Div -> Some (a /. b)
  | Rem -> Some (Float.rem a b)
  | _ -> None

let fold_binop op (ca : const) (cb : const) : const option =
  match (ca, cb) with
  | Cint (Ltype.Integer k, a), Cint (_, b) ->
    Option.map (fun r -> cint k r) (int_binop k op a b)
  | Cfloat (t, a), Cfloat (_, b) ->
    Option.map
      (fun r ->
        let r = if t = Ltype.Float then Int32.float_of_bits (Int32.bits_of_float r) else r in
        Cfloat (t, r))
      (float_binop op a b)
  | Cbool a, Cbool b -> (
    match op with
    | And -> Some (Cbool (a && b))
    | Or -> Some (Cbool (a || b))
    | Xor -> Some (Cbool (a <> b))
    | _ -> None)
  | _ -> None

let int_cmp kind op (a : int64) (b : int64) : bool =
  let c =
    if Ltype.is_signed kind then Int64.compare a b
    else
      let bits = Ltype.int_bits kind in
      if bits = 64 then Int64.unsigned_compare a b
      else
        (* masked values are non-negative, so signed compare agrees with
           unsigned compare *)
        let mask = Int64.sub (Int64.shift_left 1L bits) 1L in
        Int64.compare (Int64.logand a mask) (Int64.logand b mask)
  in
  match op with
  | SetEQ -> c = 0
  | SetNE -> c <> 0
  | SetLT -> c < 0
  | SetGT -> c > 0
  | SetLE -> c <= 0
  | SetGE -> c >= 0
  | _ -> invalid_arg "int_cmp"

let float_cmp op (a : float) (b : float) : bool =
  match op with
  | SetEQ -> a = b
  | SetNE -> a <> b
  | SetLT -> a < b
  | SetGT -> a > b
  | SetLE -> a <= b
  | SetGE -> a >= b
  | _ -> invalid_arg "float_cmp"

let fold_cmp op (ca : const) (cb : const) : const option =
  match (ca, cb) with
  | Cint (Ltype.Integer k, a), Cint (_, b) -> Some (Cbool (int_cmp k op a b))
  | Cfloat (_, a), Cfloat (_, b) -> Some (Cbool (float_cmp op a b))
  | Cbool a, Cbool b -> (
    match op with
    | SetEQ -> Some (Cbool (a = b))
    | SetNE -> Some (Cbool (a <> b))
    | SetLT -> Some (Cbool ((not a) && b))
    | SetGT -> Some (Cbool (a && not b))
    | SetLE -> Some (Cbool ((not a) || b))
    | SetGE -> Some (Cbool (a || not b))
    | _ -> None)
  | Cnull _, Cnull _ -> (
    match op with
    | SetEQ | SetLE | SetGE -> Some (Cbool true)
    | SetNE | SetLT | SetGT -> Some (Cbool false)
    | _ -> None)
  (* A global's address is never null. *)
  | (Cgvar _ | Cfunc _), Cnull _ | Cnull _, (Cgvar _ | Cfunc _) -> (
    match op with
    | SetEQ -> Some (Cbool false)
    | SetNE -> Some (Cbool true)
    | _ -> None)
  | _ -> None

(* Numeric value of a constant, for cast folding. *)
let const_as_int : const -> int64 option = function
  | Cbool b -> Some (if b then 1L else 0L)
  | Cint (_, v) -> Some v
  | Cnull _ -> Some 0L
  | Czero (Ltype.Integer _ | Ltype.Bool) -> Some 0L
  | _ -> None

let fold_cast (c : const) (target : Ltype.t) : const option =
  match (c, target) with
  | Cint (t, _), t' when t = t' -> Some c
  | _, Ltype.Bool -> (
    match c with
    | Cbool _ -> Some c
    | Cint (_, v) -> Some (Cbool (v <> 0L))
    | Cfloat (_, f) -> Some (Cbool (f <> 0.0))
    | _ -> None)
  | _, Ltype.Integer k -> (
    match c with
    | Cbool _ | Cint _ | Cnull _ ->
      Option.map (fun v -> cint k v) (const_as_int c)
    | Cfloat (_, f) -> Some (cint k (Int64.of_float f))
    | Cgvar _ | Cfunc _ | Ccast _ -> None (* address not known statically *)
    | _ -> None)
  | _, (Ltype.Float | Ltype.Double) -> (
    match c with
    | Cfloat (_, f) ->
      let f =
        if target = Ltype.Float then Int32.float_of_bits (Int32.bits_of_float f)
        else f
      in
      Some (Cfloat (target, f))
    | Cbool _ | Cint _ -> (
      match c with
      | Cint (Ltype.Integer k, v) when not (Ltype.is_signed k) ->
        let u = to_unsigned (Ltype.int_bits k) v in
        let f =
          if u >= 0L then Int64.to_float u
          else Int64.to_float u +. 18446744073709551616.0
        in
        Some (Cfloat (target, f))
      | _ -> Option.map (fun v -> Cfloat (target, Int64.to_float v)) (const_as_int c))
    | _ -> None)
  | Cnull _, Ltype.Pointer _ -> Some (Cnull target)
  | Cint (_, 0L), Ltype.Pointer _ -> Some (Cnull target)
  | (Cgvar _ | Cfunc _ | Ccast _), Ltype.Pointer _ -> Some (Ccast (target, c))
  | _ -> None

let fold_select cond iftrue iffalse =
  match cond with
  | Cbool true -> Some iftrue
  | Cbool false -> Some iffalse
  | _ -> None

(* Fold an instruction whose operands are all constants.  Returns the
   replacement constant, or None when the instruction cannot be folded. *)
let fold_instr (table : Ltype.table) (i : instr) : const option =
  let const_op k =
    match i.operands.(k) with Vconst c -> Some c | _ -> None
  in
  let all_consts () =
    let rec go k acc =
      if k < 0 then Some acc
      else match const_op k with
        | Some c -> go (k - 1) (c :: acc)
        | None -> None
    in
    go (Array.length i.operands - 1) []
  in
  ignore table;
  match i.iop with
  | op when is_binary op -> (
    match all_consts () with
    | Some [ a; b ] -> fold_binop op a b
    | _ -> None)
  | op when is_comparison op -> (
    match all_consts () with
    | Some [ a; b ] -> fold_cmp op a b
    | _ -> None)
  | Cast -> (
    match const_op 0 with
    | Some c -> fold_cast c i.ity
    | None -> None)
  | Select -> (
    match (const_op 0, const_op 1, const_op 2) with
    | Some c, Some t, Some f -> fold_select c t f
    | _ -> None)
  | _ -> None

(* Algebraic simplifications that do not require both operands constant:
   x+0, x*1, x*0, x-x, x&x, x|x, x^x, ... Returns a replacement value. *)
let simplify_instr (i : instr) : value option =
  let is_int_const n v =
    match v with Cint (_, x) -> x = Int64.of_int n | Cbool b -> b = (n = 1) | _ -> false
  in
  if Array.length i.operands <> 2 then None
  else
    let a = i.operands.(0) and b = i.operands.(1) in
    match (i.iop, a, b) with
    | Add, x, Vconst c when is_int_const 0 c -> Some x
    | Add, Vconst c, x when is_int_const 0 c -> Some x
    | Sub, x, Vconst c when is_int_const 0 c -> Some x
    | Mul, x, Vconst c when is_int_const 1 c -> Some x
    | Mul, Vconst c, x when is_int_const 1 c -> Some x
    | Mul, _, Vconst (Cint (t, 0L)) -> Some (Vconst (Cint (t, 0L)))
    | Mul, Vconst (Cint (t, 0L)), _ -> Some (Vconst (Cint (t, 0L)))
    | And, x, y when value_equal x y -> Some x
    | Or, x, y when value_equal x y -> Some x
    | (Sub | Xor), x, y when value_equal x y && Ltype.is_integer i.ity ->
      (match i.ity with
      | Ltype.Integer k -> Some (Vconst (cint k 0L))
      | _ -> None)
    | (Div | Rem), _, Vconst c when is_int_const 0 c -> None
    | Shl, x, Vconst c when is_int_const 0 c -> Some x
    | Shr, x, Vconst c when is_int_const 0 c -> Some x
    | _ -> None

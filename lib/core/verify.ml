(* Structural verifier for the in-memory representation.

   Checks the invariants that every pass is allowed to assume:
   - every basic block ends in exactly one terminator, and terminators
     appear nowhere else;
   - phi instructions cluster at the head of their block and have exactly
     one incoming value per CFG predecessor;
   - operand types obey the instruction type rules (section 2.2), e.g.
     both operands of a binary op share the result type, stored values
     match the pointee type, comparisons yield bool;
   - use-lists are consistent with operand arrays;
   - module-level names are unique.

   SSA dominance ("each use dominated by its definition") requires a
   dominator tree and is checked by [Llvm_analysis.Ssa_check]. *)

open Ir

type error = { where : string; what : string }

let err where fmt = Fmt.kstr (fun what -> { where; what }) fmt

let check_types table errors (fname : string) (i : instr) =
  let push e = errors := e :: !errors in
  let here = Printf.sprintf "%s/%s" fname (opcode_name i.iop) in
  let ty v = Ir.type_of table v in
  let eq a b = Ltype.equal table a b in
  match i.iop with
  | (Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr) ->
    if not (eq (ty i.operands.(0)) (ty i.operands.(1))) then
      push (err here "binary operands disagree: %a vs %a" Ltype.pp
              (ty i.operands.(0)) Ltype.pp (ty i.operands.(1)));
    if not (eq i.ity (ty i.operands.(0))) then
      push (err here "result type %a differs from operand type %a" Ltype.pp
              i.ity Ltype.pp (ty i.operands.(0)))
  | SetEQ | SetNE | SetLT | SetGT | SetLE | SetGE ->
    if not (eq (ty i.operands.(0)) (ty i.operands.(1))) then
      push (err here "comparison operands disagree");
    if i.ity <> Ltype.Bool then push (err here "comparison must yield bool")
  | Load -> (
    match Ltype.resolve table (ty i.operands.(0)) with
    | Ltype.Pointer p ->
      if not (eq p i.ity) then
        push (err here "load result %a does not match pointee %a" Ltype.pp
                i.ity Ltype.pp p)
    | t -> push (err here "load from non-pointer %a" Ltype.pp t))
  | Store -> (
    match Ltype.resolve table (ty i.operands.(1)) with
    | Ltype.Pointer p ->
      if not (eq p (ty i.operands.(0))) then
        push (err here "stored value %a does not match pointee %a" Ltype.pp
                (ty i.operands.(0)) Ltype.pp p)
    | t -> push (err here "store to non-pointer %a" Ltype.pp t))
  | Gep -> (
    try
      let expect =
        Builder.gep_result_type table (ty i.operands.(0))
          (Array.to_list (Array.sub i.operands 1 (Array.length i.operands - 1)))
      in
      if not (eq expect i.ity) then
        push (err here "gep result %a should be %a" Ltype.pp i.ity Ltype.pp expect)
    with Invalid_argument msg -> push (err here "%s" msg))
  | Select ->
    if ty i.operands.(0) <> Ltype.Bool then
      push (err here "select condition must be bool");
    if not (eq (ty i.operands.(1)) (ty i.operands.(2))) then
      push (err here "select arms disagree")
  | Br ->
    if Array.length i.operands = 3 && ty i.operands.(0) <> Ltype.Bool then
      push (err here "conditional branch needs a bool condition")
  | Call | Invoke -> (
    match Ltype.resolve table (ty (call_callee i)) with
    | Ltype.Pointer fty -> (
      match Ltype.resolve table fty with
      | Ltype.Function (ret, params, varargs) ->
        if not (eq ret i.ity) then
          push (err here "call result %a does not match return %a" Ltype.pp
                  i.ity Ltype.pp ret);
        let args = call_args i in
        let nparams = List.length params and nargs = List.length args in
        if nargs < nparams || ((not varargs) && nargs > nparams) then
          push (err here "arity mismatch: %d args for %d params" nargs nparams);
        List.iteri
          (fun k param ->
            match List.nth_opt args k with
            | Some a when not (eq (ty a) param) ->
              push (err here "argument %d has type %a, expected %a" k Ltype.pp
                      (ty a) Ltype.pp param)
            | _ -> ())
          params
      | t -> push (err here "callee is not a function: %a" Ltype.pp t))
    | t -> push (err here "callee is not a function pointer: %a" Ltype.pp t))
  | Phi ->
    List.iter
      (fun (v, _) ->
        if not (eq (ty v) i.ity) then
          push (err here "phi incoming %a does not match %a" Ltype.pp (ty v)
                  Ltype.pp i.ity))
      (phi_incoming i)
  | Cast ->
    if not (Ltype.is_first_class i.ity) && i.ity <> Ltype.Void then
      push (err here "cast target must be first-class")
  | Switch ->
    let cond_ty = Ltype.resolve table (ty i.operands.(0)) in
    (match cond_ty with
    | Ltype.Integer _ | Ltype.Bool -> ()
    | t -> push (err here "switch condition must be an integer, got %a"
                   Ltype.pp t));
    if Array.length i.operands < 2 || Array.length i.operands mod 2 <> 0 then
      push (err here "switch needs a default and value/label case pairs")
    else
      Array.iteri
        (fun k v ->
          if k >= 2 then
            if k mod 2 = 0 then (
              (match v with
              | Vconst _ -> ()
              | _ -> push (err here "switch case %d is not a constant" (k / 2 - 1)));
              if not (eq (ty v) cond_ty) then
                push (err here "switch case %d has type %a, condition is %a"
                        (k / 2 - 1) Ltype.pp (ty v) Ltype.pp cond_ty))
            else
              match v with
              | Vblock _ -> ()
              | _ -> push (err here "switch destination %d is not a label" (k / 2 - 1)))
        i.operands
  | Free -> (
    match Ltype.resolve table (ty i.operands.(0)) with
    | Ltype.Pointer _ -> ()
    | t -> push (err here "free of non-pointer %a" Ltype.pp t))
  | Malloc | Alloca -> (
    (match i.alloc_ty with
    | None -> push (err here "%s without an allocated type" (opcode_name i.iop))
    | Some elt ->
      if not (eq i.ity (Ltype.Pointer elt)) then
        push (err here "%s of %a must produce %a, got %a" (opcode_name i.iop)
                Ltype.pp elt Ltype.pp (Ltype.Pointer elt) Ltype.pp i.ity));
    match i.operands with
    | [||] -> ()
    | [| count |] -> (
      match Ltype.resolve table (ty count) with
      | Ltype.Integer _ -> ()
      | t -> push (err here "allocation count must be an integer, got %a"
                     Ltype.pp t))
    | _ -> push (err here "%s takes at most one count operand" (opcode_name i.iop)))
  | Ret | Unwind -> ()

let verify_func table errors (f : func) =
  let push e = errors := e :: !errors in
  let fname = f.fname in
  if is_declaration f then ()
  else begin
    List.iter
      (fun b ->
        let here = Printf.sprintf "%s/%s" fname b.bname in
        (match List.rev b.instrs with
        | [] -> push (err here "empty basic block")
        | last :: before ->
          if not (is_terminator last.iop) then
            push (err here "block does not end in a terminator");
          List.iter
            (fun i ->
              if is_terminator i.iop then
                push (err here "terminator %s in middle of block"
                        (opcode_name i.iop)))
            before);
        (* Phis first, then non-phis. *)
        let seen_nonphi = ref false in
        List.iter
          (fun i ->
            if i.iop = Phi then begin
              if !seen_nonphi then push (err here "phi after non-phi instruction")
            end
            else seen_nonphi := true)
          b.instrs;
        (* Each phi covers exactly the predecessors. *)
        let preds = predecessors b in
        List.iter
          (fun i ->
            if i.iop = Phi then begin
              let incoming = List.map snd (phi_incoming i) in
              if List.length incoming <> List.length preds then
                push (err here "phi has %d entries for %d predecessors"
                        (List.length incoming) (List.length preds))
              else
                List.iter
                  (fun p ->
                    if not (List.exists (fun q -> q == p) incoming) then
                      push (err here "phi missing entry for predecessor %s"
                              p.bname))
                  preds
            end)
          b.instrs;
        (* Parent pointers and use-list sanity. *)
        List.iter
          (fun i ->
            (match i.iparent with
            | Some p when p == b -> ()
            | _ -> push (err here "instruction with stale parent pointer"));
            check_types table errors fname i)
          b.instrs)
      f.fblocks;
    (* Returns must match the function's return type. *)
    iter_instrs
      (fun i ->
        if i.iop = Ret then
          let ok =
            match (Array.length i.operands, f.freturn) with
            | 0, Ltype.Void -> true
            | 1, t -> Ltype.equal table (Ir.type_of table i.operands.(0)) t
            | _ -> false
          in
          if not ok then
            push (err fname "ret does not match return type %s"
                    (Ltype.to_string f.freturn)))
      f
  end

let verify_module (m : modul) : error list =
  let errors = ref [] in
  let push e = errors := e :: !errors in
  let names = Hashtbl.create 64 in
  let check_unique kind name =
    if Hashtbl.mem names name then
      push (err m.mname "duplicate %s name %%%s" kind name)
    else Hashtbl.add names name ()
  in
  List.iter (fun g -> check_unique "global" g.gname) m.mglobals;
  List.iter (fun f -> check_unique "function" f.fname) m.mfuncs;
  List.iter (fun f -> verify_func m.mtypes errors f) m.mfuncs;
  List.rev !errors

let pp_error fmt e = Fmt.pf fmt "%s: %s" e.where e.what

exception Invalid_module of string

(* Raise when the module is malformed; for use in tests and tools. *)
let assert_valid (m : modul) =
  match verify_module m with
  | [] -> ()
  | errs ->
    let msg = String.concat "\n" (List.map (fun e -> Fmt.str "%a" pp_error e) errs) in
    raise (Invalid_module msg)

(* A small deterministic PRNG (xorshift64-star), so workload generation is
   stable across OCaml versions and runs. *)

type t = { mutable state : int64 }

let create (seed : int) : t =
  { state = Int64.add (Int64.of_int seed) 0x9E3779B97F4A7C15L }

let next (r : t) : int64 =
  let x = r.state in
  let x = Int64.logxor x (Int64.shift_right_logical x 12) in
  let x = Int64.logxor x (Int64.shift_left x 25) in
  let x = Int64.logxor x (Int64.shift_right_logical x 27) in
  r.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

let int (r : t) (bound : int) : int =
  if bound <= 0 then 0
  else Int64.to_int (Int64.unsigned_rem (next r) (Int64.of_int bound))

let bool_ (r : t) : bool = int r 2 = 0

(* true with probability pct/100 *)
let chance (r : t) (pct : int) : bool = int r 100 < pct

let pick (r : t) (l : 'a list) : 'a = List.nth l (int r (List.length l))

(* -- Reproducible streams ------------------------------------------------- *)

type state = int64

let state (r : t) : state = r.state
let set_state (r : t) (s : state) : unit = r.state <- s
let copy (r : t) : t = { state = r.state }

(* An independent stream derived from (and advancing) the parent: the
   child's sequence is a pure function of the parent's state at the
   split point, so a (seed, split-path) pair pins down the whole
   sub-stream without replaying the parent's later draws. *)
let split (r : t) : t =
  let x = next r in
  { state = Int64.logxor (Int64.mul x 0xBF58476D1CE4E5B9L) 0x94D049BB133111EBL }

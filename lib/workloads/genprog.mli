(** Deterministic generator of SPEC-like MiniC programs (the workload
    substitution documented in DESIGN.md).  Style knobs control how
    often each C idiom appears — custom pool allocation, reuse of memory
    at several structure types, floating point, pointer/int tricks — so
    each benchmark reproduces the type-information behaviour the paper
    reports for its SPEC counterpart. *)

type profile = {
  p_name : string;
  seed : int;
  workers : int;  (** number of generated worker functions *)
  allocator_pct : int;  (** heap objects served by the custom pool *)
  multi_typed_pct : int;  (** objects also accessed at a second type *)
  float_pct : int;  (** float kernels among the workers *)
  dead_pct : int;  (** extra dead functions, relative to workers *)
  messy_pct : int;  (** low-level idioms: ptr-int hashing, byte copies *)
  indirect_pct : int;
      (** function-pointer dispatchers among the workers: almost-always
          one hot target with a rare input-dependent cold switch, the
          speculative-promotion workload *)
  expected_typed_pct : float;  (** the paper's Table 1 value *)
}

(** Name of the int global the dispatchers key target selection on;
    the fleet simulator pokes a per-run value into it before [main]. *)
val input_global : string

(** The MiniC source text of the benchmark (deterministic in the
    profile). *)
val generate : profile -> string

(** [generate] compiled by the front-end. *)
val compile : profile -> Llvm_ir.Ir.modul

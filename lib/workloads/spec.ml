(* The benchmark roster: one profile per SPEC CPU2000 C row of Table 1,
   plus Olden/Ptrdist-style disciplined programs.

   Sizes are scaled relative to each other the way the SPEC programs
   are (176.gcc largest; 181.mcf/179.art tiny), and the style knobs
   follow the paper's diagnosis of each program:
   - custom allocators: 197.parser, 254.gap, 255.vortex;
   - inherently non-type-safe structure reuse: 176.gcc, 253.perlbmk,
     254.gap;
   - floating-point-heavy (DSA imprecision in the paper: 177, 188):
     177.mesa, 179.art, 183.equake, 188.ammp;
   - everything else is mostly disciplined C.

   [expected_typed_pct] records the paper's Table 1 measurement so the
   benchmark harness can print paper-vs-measured side by side. *)

open Genprog

let mk name seed workers ?(alloc = 0) ?(multi = 0) ?(float_ = 0) ?(dead = 12)
    ?(messy = 0) ?(indirect = 25) expected =
  { p_name = name; seed; workers; allocator_pct = alloc;
    multi_typed_pct = multi; float_pct = float_; dead_pct = dead;
    messy_pct = messy; indirect_pct = indirect;
    expected_typed_pct = expected }

(* Table 1 of the paper gives per-benchmark typed-access percentages with
   an average of 68.04%.  The per-row expected values below are the
   paper's reported figures. *)
let spec2000 : profile list =
  [ mk "164.gzip" 164 30 ~float_:5 ~messy:8 84.5;
    mk "175.vpr" 175 52 ~float_:15 ~messy:34 80.3;
    mk "176.gcc" 176 300 ~multi:50 ~alloc:16 ~messy:60 46.9;
    mk "177.mesa" 177 190 ~float_:55 ~multi:10 ~messy:52 60.6;
    mk "179.art" 179 22 ~float_:60 ~messy:4 86.1;
    mk "181.mcf" 181 24 ~float_:5 ~messy:4 88.9;
    mk "183.equake" 183 18 ~float_:50 ~messy:6 92.2;
    mk "186.crafty" 186 62 ~float_:5 ~messy:17 78.9;
    mk "188.ammp" 188 55 ~float_:50 ~multi:12 ~messy:55 57.1;
    mk "197.parser" 197 72 ~alloc:72 ~messy:40 37.3;
    mk "253.perlbmk" 253 210 ~multi:52 ~alloc:24 ~messy:58 51.2;
    mk "254.gap" 254 185 ~alloc:42 ~multi:25 ~messy:28 44.4;
    mk "255.vortex" 255 170 ~alloc:62 ~messy:42 39.6;
    mk "256.bzip2" 256 20 ~messy:42 79.5;
    mk "300.twolf" 300 95 ~float_:10 ~messy:4 93.8 ]

(* Olden/Ptrdist-style disciplined pointer programs: "nearly perfect
   results, scoring close to 100% in most cases". *)
let disciplined : profile list =
  [ mk "olden.treeadd" 1001 10 99.9;
    mk "olden.mst" 1002 14 99.9;
    mk "ptrdist.ks" 1003 12 99.9;
    mk "ptrdist.ft" 1004 9 99.9 ]

let find (name : string) : profile option =
  List.find_opt (fun p -> p.p_name = name) (spec2000 @ disciplined)

(* Smaller variants of every profile, for fast unit tests. *)
let quick (p : profile) : profile = { p with workers = min p.workers 12 }

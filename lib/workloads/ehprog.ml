(* Exception-heavy workloads (paper section 2.4).

   The genprog benchmarks never throw, so the invoke/unwind machinery —
   the part of the execution engine with the most delicate control flow —
   would otherwise only be exercised by unit-sized programs.  These are
   small, deterministic MiniC programs that lean on exceptions and
   setjmp/longjmp in hot loops: handlers in loops, unwinding through
   multiple frames, rethrow from handler regions, catch dispatch by
   type, and longjmp coexisting with try/catch.  Each prints a checksum
   so engine tiers can be compared on output, exit status and profile. *)

let pingpong =
  {| extern void print_int(int x);
     extern void print_str(char* s);
     int risky(int x) {
       if (x % 3 == 0) throw x;
       return x * 2;
     }
     int main() {
       int acc = 0;
       for (int i = 0; i < 600; i++) {
         try { acc = acc + risky(i); } catch (int e) { acc = acc - e; }
       }
       print_str("checksum=");
       print_int(acc);
       return acc % 256;
     } |}

let deep_unwind =
  {| extern void print_int(int x);
     extern void print_str(char* s);
     int dig(int depth, int code) {
       if (depth == 0) throw code;
       return dig(depth - 1, code + 1);
     }
     int main() {
       int acc = 0;
       for (int i = 1; i < 120; i++) {
         try { acc = acc + dig(i % 17, i); } catch (int e) { acc = acc + e; }
       }
       print_str("checksum=");
       print_int(acc);
       return acc % 256;
     } |}

let nested_rethrow =
  {| extern void print_int(int x);
     extern void print_str(char* s);
     int classify(int x) {
       if (x % 5 == 0) throw 2.5;
       if (x % 2 == 0) throw x;
       return x;
     }
     int main() {
       int acc = 0;
       for (int i = 0; i < 400; i++) {
         try {
           try {
             try {
               acc = acc + classify(i);
             } catch (int e) {
               acc = acc + e / 2;
               if (e % 4 == 0) throw e + 1;  // rethrow from the handler
             }
           } catch (int e2) {
             acc = acc + e2;
           }
         } catch (double d) {
           acc = acc + (int)(d * 4.0);
         }
       }
       print_str("checksum=");
       print_int(acc);
       return acc % 256;
     } |}

let sjlj_mix =
  {| extern void print_int(int x);
     extern void print_str(char* s);
     long buf = 0;
     static int jumper(int n) {
       if (n % 7 == 0) longjmp(&buf, n + 1);
       if (n % 3 == 0) throw n;
       return n;
     }
     int probe(int n) {
       int r = setjmp(&buf);
       if (r != 0) return r * 10;
       try { return jumper(n); } catch (int e) { return e + 1000; }
     }
     int main() {
       int acc = 0;
       for (int i = 1; i < 300; i++) acc = acc + probe(i);
       print_str("checksum=");
       print_int(acc);
       return acc % 256;
     } |}

let unwind_off_main =
  {| extern void print_int(int x);
     extern void print_str(char* s);
     int boom(int x) { if (x > 50) throw x; return x; }
     int main() {
       int acc = 0;
       for (int i = 0; i < 100; i++) acc = acc + boom(i);
       print_str("never=");
       print_int(acc);
       return acc;
     } |}

let programs =
  [ ("eh.pingpong", pingpong);
    ("eh.deep_unwind", deep_unwind);
    ("eh.nested_rethrow", nested_rethrow);
    ("eh.sjlj_mix", sjlj_mix);
    ("eh.unwind_off_main", unwind_off_main) ]

let compile (name : string) (src : string) : Llvm_ir.Ir.modul =
  Llvm_minic.Codegen.compile_string ~name src

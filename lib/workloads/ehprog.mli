(** Exception-heavy workloads (paper section 2.4): deterministic MiniC
    programs that stress invoke/unwind — handlers inside hot loops,
    unwinding through many frames, rethrow from handler regions, catch
    dispatch by type, setjmp/longjmp coexisting with try/catch, and one
    program that unwinds off [main].  Used by the engine differential
    tests and the [bench exec] workload roster. *)

(** [(name, MiniC source)] pairs; deterministic. *)
val programs : (string * string) list

(** Compile one program with the MiniC front-end. *)
val compile : string -> string -> Llvm_ir.Ir.modul

(* Deterministic generator of SPEC-like MiniC programs.

   The paper's evaluation (Tables 1 and 2, Figure 5) runs over the C
   programs of SPEC CPU2000.  Those sources are proprietary, so each
   benchmark is replaced by a synthetic program whose *style* matches
   the paper's description of that benchmark's behaviour: custom pool
   allocators (197.parser, 254.gap, 255.vortex), objects used at
   multiple structure types (176.gcc, 253.perlbmk, 254.gap), heavy
   floating point (177.mesa, 179.art, 183.equake, 188.ammp), and
   disciplined pointer-structure code for the rest.  The knobs below
   control how often each idiom appears; program size scales per
   benchmark so the relative shapes of Table 2 and Figure 5 carry over.

   Generated programs are safe by construction: loops are bounded,
   divisions are by nonzero values, array indices stay in range, and
   reinterpreting casts stay within the allocated object.  Every program
   prints a checksum so optimized and unoptimized runs can be compared. *)

type profile = {
  p_name : string;
  seed : int;
  workers : int; (* number of generated worker functions *)
  allocator_pct : int; (* heap objects served by the custom pool *)
  multi_typed_pct : int; (* objects also accessed at a second type *)
  float_pct : int; (* float kernels among the workers *)
  dead_pct : int; (* extra dead functions, relative to workers *)
  messy_pct : int; (* low-level C idioms: ptr-int hashing, byte copies *)
  indirect_pct : int; (* function-pointer dispatchers among the workers *)
  expected_typed_pct : float; (* the paper's Table 1 value, for reporting *)
}

(* The global every indirect dispatcher keys its target selection on.
   Programs are deterministic with the initializer below; the fleet
   simulator pokes a per-run value into it before [main] to make
   simulated field runs heterogeneous. *)
let input_global = "fleet_input"

type gen = {
  rng : Rng.t;
  buf : Buffer.t;
  prof : profile;
  nstructs : int;
  mutable counter : int;
}

let line (g : gen) fmt = Fmt.kstr (fun s -> Buffer.add_string g.buf (s ^ "\n")) fmt

let fresh (g : gen) (base : string) : string =
  g.counter <- g.counter + 1;
  Printf.sprintf "%s_%d" base g.counter

(* -- Structures -------------------------------------------------------------- *)

(* struct Si: a couple of scalar fields plus a next pointer, total size
   kept <= 48 bytes so reinterpreting casts stay in bounds *)
let emit_structs (g : gen) =
  for k = 0 to g.nstructs - 1 do
    let nfields = 2 + Rng.int g.rng 3 in
    line g "struct S%d {" k;
    for f = 0 to nfields - 1 do
      match Rng.int g.rng 4 with
      | 0 -> line g "  int f%d;" f
      | 1 -> line g "  long f%d;" f
      | 2 -> line g "  double f%d;" f
      | _ -> line g "  struct S%d* f%d;" (Rng.int g.rng g.nstructs) f
    done;
    line g "  struct S%d* next;" k;
    line g "};"
  done;
  line g ""

let struct_scalar_fields (g : gen) (_k : int) : int =
  (* conservative: field f0 always exists and is scalar-compatible via
     the generator above only when not a pointer; we just always use a
     dedicated int field emitted below *)
  ignore g;
  0

(* -- Allocator --------------------------------------------------------------- *)

let emit_allocator (g : gen) =
  line g "static char pool[4096];";
  line g "static int pool_cursor = 0;";
  line g "static char* pool_alloc(int size) {";
  line g "  if (pool_cursor + size > 4060) { pool_cursor = 0; }";
  line g "  char* p = &pool[0] + pool_cursor;";
  line g "  pool_cursor = pool_cursor + size;";
  line g "  return p;";
  line g "}";
  line g ""

(* helpers for the low-level idioms every real C program contains:
   hashing a pointer through an integer cast, and copying a structure
   through a char* loop (memcpy style) *)
let emit_messy_helpers (g : gen) =
  for k = 0 to g.nstructs - 1 do
    line g "static int snoop%d(struct S%d* p, int b) {" k k;
    (* The pointer-to-integer cast is the point (it defeats type
       analysis); shifting the address out keeps program output
       independent of heap layout, so optimized and unoptimized runs
       stay comparable. *)
    line g "  long h = (long)(void*)p;";
    line g "  return (int)(h >> 62) ^ b;";
    line g "}"
  done;
  line g "static void copybytes(char* dst, char* src, int n) {";
  line g "  for (int i = 0; i < n; i++) dst[i] = src[i];";
  line g "}";
  line g ""

(* an allocation expression for struct Sk, through the pool when the
   profile says so *)
let alloc_expr (g : gen) (k : int) : string =
  if Rng.chance g.rng g.prof.allocator_pct then
    Printf.sprintf "(struct S%d*)pool_alloc(sizeof(struct S%d))" k k
  else Printf.sprintf "new struct S%d" k

(* -- Worker functions ---------------------------------------------------------- *)

type worker = { wname : string; arity : int }

(* small arithmetic kernel: ideal inlining fodder *)
let emit_arith_worker (g : gen) : worker =
  let name = fresh g "calc" in
  line g "static int %s(int a, int b) {" name;
  let ops = [ "+"; "-"; "*"; "^"; "&"; "|" ] in
  line g "  int x = a %s %d;" (Rng.pick g.rng ops) (1 + Rng.int g.rng 100);
  line g "  int y = b %s x;" (Rng.pick g.rng ops);
  if Rng.bool_ g.rng then
    line g "  x = x + y / (b %% %d + 1);" (3 + Rng.int g.rng 9)
  else line g "  x = (x << %d) %s y;" (Rng.int g.rng 5) (Rng.pick g.rng ops);
  line g "  return x %s y;" (Rng.pick g.rng ops);
  line g "}";
  { wname = name; arity = 2 }

(* loop over a local array *)
let emit_array_worker (g : gen) : worker =
  let name = fresh g "scan" in
  let n = 8 + Rng.int g.rng 24 in
  line g "static int %s(int a, int b) {" name;
  line g "  int buf[%d];" n;
  line g "  for (int i = 0; i < %d; i++) buf[i] = a * i + b;" n;
  line g "  int acc = 0;";
  (match Rng.int g.rng 3 with
  | 0 -> line g "  for (int i = 0; i < %d; i++) acc += buf[i];" n
  | 1 ->
    line g "  for (int i = 0; i < %d; i++) if (buf[i] %% 2 == 0) acc += buf[i];" n
  | _ ->
    line g "  for (int i = 1; i < %d; i++) acc += buf[i] - buf[i-1];" n);
  line g "  return acc;";
  line g "}";
  { wname = name; arity = 2 }

(* build and traverse a linked structure *)
let emit_list_worker (g : gen) : worker =
  let name = fresh g "chase" in
  let k = Rng.int g.rng g.nstructs in
  ignore (struct_scalar_fields g k);
  line g "static int %s(int a, int b) {" name;
  line g "  struct S%d* head = null;" k;
  line g "  for (int i = 0; i < (a %% 6) + 2; i++) {";
  line g "    struct S%d* n = %s;" k (alloc_expr g k);
  line g "    n->f0 = %s;" (if Rng.bool_ g.rng then "i * b" else "i + b");
  line g "    n->next = head;";
  line g "    head = n;";
  line g "  }";
  (if g.prof.multi_typed_pct > 0 && Rng.chance g.rng g.prof.multi_typed_pct
   then begin
     (* reinterpret the head node at a different structure type: the
        non-type-safe idiom of 176.gcc / 253.perlbmk / 254.gap *)
     let k2 = (k + 1) mod g.nstructs in
     line g "  struct S%d* alias = (struct S%d*)(void*)head;" k2 k2;
     line g "  int stolen = (int)alias->f0;";
     line g "  int sum = stolen;"
   end
   else line g "  int sum = 0;");
  line g "  struct S%d* it = head;" k;
  line g "  while (it != null) { sum += (int)it->f0; it = it->next; }";
  if Rng.chance g.rng g.prof.messy_pct then
    line g "  sum ^= snoop%d(head, b);" k;
  line g "  return sum;";
  line g "}";
  { wname = name; arity = 2 }

(* floating-point kernel *)
let emit_float_worker (g : gen) : worker =
  let name = fresh g "flux" in
  line g "static int %s(int a, int b) {" name;
  line g "  double x = (double)a * %d.5;" (1 + Rng.int g.rng 9);
  line g "  double y = (double)b + %d.25;" (Rng.int g.rng 7);
  line g "  for (int i = 0; i < %d; i++) {" (4 + Rng.int g.rng 12);
  (match Rng.int g.rng 3 with
  | 0 -> line g "    x = x * 0.5 + y;"
  | 1 -> line g "    x = x + y * y * 0.125;"
  | _ -> line g "    y = y - x * 0.25;");
  line g "  }";
  line g "  return (int)(x + y) & 65535;";
  line g "}";
  { wname = name; arity = 2 }

(* byte-buffer worker *)
let emit_string_worker (g : gen) : worker =
  let name = fresh g "bytes" in
  let n = 16 + Rng.int g.rng 48 in
  line g "static int %s(int a, int b) {" name;
  line g "  char buf[%d];" n;
  line g "  for (int i = 0; i < %d; i++) buf[i] = (char)(a + i * b);" n;
  line g "  int count = 0;";
  line g "  for (int i = 0; i < %d; i++) if ((int)buf[i] %% 3 == 0) count++;" n;
  line g "  return count;";
  line g "}";
  { wname = name; arity = 2 }

(* struct field shuffling on heap objects *)
let emit_struct_worker (g : gen) : worker =
  let name = fresh g "mixer" in
  let k = Rng.int g.rng g.nstructs in
  line g "static int %s(int a, int b) {" name;
  line g "  struct S%d* s = %s;" k (alloc_expr g k);
  line g "  s->f0 = a + b;";
  line g "  struct S%d* t = %s;" k (alloc_expr g k);
  line g "  t->f0 = a - b;";
  line g "  s->next = t;";
  line g "  t->next = null;";
  line g "  int acc = 0;";
  if Rng.chance g.rng g.prof.messy_pct then
    line g "  copybytes((char*)(void*)t, (char*)(void*)s, 8);"
  else if Rng.chance g.rng g.prof.messy_pct then
    line g "  acc ^= snoop%d(s, a);" k;
  line g "  struct S%d* it = s;" k;
  line g "  while (it != null) { acc += (int)it->f0 * 3; it = it->next; }";
  line g "  return acc;";
  line g "}";
  { wname = name; arity = 2 }

(* an interpreter-style dispatch loop: the switch-heavy code shape of
   the interpreter benchmarks (253.perlbmk, 254.gap) *)
let emit_dispatch_worker (g : gen) : worker =
  let name = fresh g "dispatch" in
  let ncases = 3 + Rng.int g.rng 4 in
  line g "static int %s(int a, int b) {" name;
  line g "  int acc = b;";
  line g "  for (int pc = 0; pc < 8; pc++) {";
  line g "    switch ((a + pc) %% %d) {" ncases;
  for k = 0 to ncases - 1 do
    (match Rng.int g.rng 4 with
    | 0 -> line g "      case %d: acc += %d;" k (1 + Rng.int g.rng 20)
    | 1 -> line g "      case %d: acc ^= pc * %d;" k (1 + Rng.int g.rng 9)
    | 2 -> line g "      case %d: acc = (acc << 1) & 65535;" k
    | _ -> line g "      case %d: acc -= %d;" k (Rng.int g.rng 15))
  done;
  line g "      default: acc = acc + 1;";
  line g "    }";
  line g "  }";
  line g "  return acc;";
  line g "}";
  { wname = name; arity = 2 }

(* an indirect dispatcher: a hot loop calling through a function
   pointer that almost always holds one hot target, with a rare
   input-dependent switch to a cold one — the call-target-profiling and
   speculative-promotion workload (paper sections 3.5 / 4.1).  The
   targets are dedicated tiny leaves, the virtual-accessor shape where
   dispatch overhead dominates the callee body; the promoted site's
   guard fails exactly on the cold selections, so runs under a fleet
   aggregate exercise the deopt path at a few percent of calls. *)
let emit_indirect_worker (g : gen) : worker =
  let name = fresh g "seldisp" in
  let hot = fresh g "lfhot" and cold = fresh g "lfcold" in
  line g "static int %s(int x, int y) { return (x * %d + y) ^ %d; }" hot
    (3 + Rng.int g.rng 13) (Rng.int g.rng 1000);
  line g "static int %s(int x, int y) { return (x ^ y) * %d + %d; }" cold
    (3 + Rng.int g.rng 13) (Rng.int g.rng 1000);
  let iters = 180 + Rng.int g.rng 120 in
  let modulus = 97 + Rng.int g.rng 100 in
  line g "static int %s(int a, int b) {" name;
  line g "  int acc = b;";
  line g "  for (int i = 0; i < %d; i++) {" iters;
  line g "    int (*)(int, int) fp = %s;" hot;
  line g "    if ((%s + a + i) %% %d == 0) fp = %s;" input_global modulus cold;
  line g "    acc = acc ^ fp(acc & 255, i);";
  line g "  }";
  line g "  return acc;";
  line g "}";
  { wname = name; arity = 2 }

(* a wrapper that composes two other workers (call-graph depth; inlining
   and DAE fodder: the third argument is dead) *)
let emit_wrapper (g : gen) (pool : worker list) : worker =
  let name = fresh g "drive" in
  let pool =
    match List.filter (fun w -> w.arity = 2) pool with
    | [] -> pool
    | binary -> binary
  in
  let a = Rng.pick g.rng pool and b = Rng.pick g.rng pool in
  line g "static int %s(int x, int y, int unused) {" name;
  line g "  int r1 = %s(x, y + 1);" a.wname;
  line g "  int r2 = %s(y, x - 1);" b.wname;
  line g "  return r1 ^ r2;";
  line g "}";
  { wname = name; arity = 3 }

(* dead functions and dead globals, for DGE to delete *)
let emit_dead_code (g : gen) (count : int) =
  for _ = 1 to count do
    let name = fresh g "unused" in
    line g "static int %s_table = %d;" name (Rng.int g.rng 1000);
    line g "static int %s(int z) { return z * %d + %s_table; }" name
      (1 + Rng.int g.rng 9) name
  done;
  line g ""

let generate (prof : profile) : string =
  let g =
    { rng = Rng.create prof.seed; buf = Buffer.create 8192; prof;
      nstructs = max 2 (min 12 (prof.workers / 8)); counter = 0 }
  in
  line g "// synthetic SPEC-like benchmark %s (seed %d)" prof.p_name prof.seed;
  line g "extern void print_int(int x);";
  line g "extern void print_str(char* s);";
  line g "";
  emit_structs g;
  if prof.indirect_pct > 0 then line g "static int %s = 1;" input_global;
  if prof.allocator_pct > 0 then emit_allocator g;
  if prof.messy_pct > 0 then emit_messy_helpers g;
  let workers = ref [] in
  for _ = 1 to prof.workers do
    let w =
      if Rng.chance g.rng prof.float_pct then emit_float_worker g
      else
        match Rng.int g.rng 6 with
        | 0 -> emit_arith_worker g
        | 1 -> emit_array_worker g
        | 2 -> emit_list_worker g
        | 3 -> emit_string_worker g
        | 4 -> emit_dispatch_worker g
        | _ -> emit_struct_worker g
    in
    workers := w :: !workers;
    (* occasionally add an indirect dispatcher over tiny leaf targets *)
    if Rng.chance g.rng prof.indirect_pct then
      workers := emit_indirect_worker g :: !workers;
    (* occasionally add a wrapper over existing workers *)
    if Rng.chance g.rng 25 then workers := emit_wrapper g !workers :: !workers
  done;
  emit_dead_code g (prof.workers * prof.dead_pct / 100);
  (* main: drive a deterministic selection of the workers *)
  line g "int main() {";
  line g "  int check = %d;" (Rng.int g.rng 1000);
  let all = !workers in
  List.iteri
    (fun k w ->
      if k mod 3 <> 2 then begin
        (* two thirds of the workers run; the rest stay cold *)
        match w.arity with
        | 2 -> line g "  check ^= %s(check & 31, %d);" w.wname (Rng.int g.rng 50)
        | _ ->
          line g "  check ^= %s(check & 31, %d, %d);" w.wname
            (Rng.int g.rng 50) (Rng.int g.rng 50)
      end)
    all;
  line g "  print_str(\"checksum=\");";
  line g "  print_int(check);";
  line g "  return check & 127;";
  line g "}";
  Buffer.contents g.buf

let compile (prof : profile) : Llvm_ir.Ir.modul =
  Llvm_minic.Codegen.compile_string ~name:prof.p_name (generate prof)

(** A small deterministic PRNG (xorshift64-star), so workload
    generation is stable across OCaml versions and runs. *)

type t

val create : int -> t
val next : t -> int64
val int : t -> int -> int
val bool_ : t -> bool

(** True with probability pct/100. *)
val chance : t -> int -> bool

val pick : t -> 'a list -> 'a

(** {1 Reproducible streams}

    Mutation chains and other derived workloads need to be replayable
    from a compact description.  [state]/[set_state] checkpoint a
    generator; [split] forks an independent child stream that depends
    only on the parent's state at the split point, so a (seed, path of
    split indices) pair identifies a sub-stream exactly. *)

type state = int64

val state : t -> state
val set_state : t -> state -> unit

(** An independent copy: draws on the copy do not affect the original. *)
val copy : t -> t

(** Fork a child stream; advances the parent by one draw. *)
val split : t -> t

(* Recursive-descent parser for the plain-text representation.

   Parsing is two-pass so that forward references resolve without
   placeholder values escaping:
   - pass 1 registers named types, global variables and function
     signatures, remembering the token offset of every global initializer
     and function body;
   - pass 2 revisits those offsets and parses initializers and bodies with
     the complete module-level symbol table in scope.

   Within a function body, a register or label may be used before it is
   defined (phis, loop back-edges): operands that cannot be resolved yet
   are recorded and patched once the whole body has been read. *)

open Llvm_ir
open Ir
open Lexer

exception Parse_error of string * int

type state = {
  toks : Lexer.t array;
  mutable pos : int;
  m : modul;
}

let error st msg =
  let line = if st.pos < Array.length st.toks then st.toks.(st.pos).line else 0 in
  raise (Parse_error (msg, line))

let peek st = st.toks.(st.pos).tok
let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1).tok else Teof

let next st =
  let t = st.toks.(st.pos).tok in
  if t <> Teof then st.pos <- st.pos + 1;
  t

let expect st tok what =
  let t = next st in
  if t <> tok then
    error st (Printf.sprintf "expected %s, found %s" what (token_to_string t))

let expect_ident st what =
  match next st with
  | Tident s -> s
  | t -> error st (Printf.sprintf "expected %s, found %s" what (token_to_string t))

let expect_pident st what =
  match next st with
  | Tpercent_ident s -> s
  | t -> error st (Printf.sprintf "expected %s, found %s" what (token_to_string t))

(* -- Types --------------------------------------------------------------- *)

let int_kind_of_name = function
  | "sbyte" -> Some Ltype.Sbyte
  | "ubyte" -> Some Ltype.Ubyte
  | "short" -> Some Ltype.Short
  | "ushort" -> Some Ltype.Ushort
  | "int" -> Some Ltype.Int
  | "uint" -> Some Ltype.Uint
  | "long" -> Some Ltype.Long
  | "ulong" -> Some Ltype.Ulong
  | _ -> None

let _starts_type = function
  | Tident ("void" | "bool" | "float" | "double") -> true
  | Tident name ->
    int_kind_of_name name <> None
    || String.length name > 7 && String.sub name 0 7 = "opaque."
  | Tpercent_ident _ | Tlbrace | Tlbracket -> true
  | _ -> false

let rec parse_type st : Ltype.t =
  let base =
    match next st with
    | Tident "void" -> Ltype.Void
    | Tident "bool" -> Ltype.Bool
    | Tident "float" -> Ltype.Float
    | Tident "double" -> Ltype.Double
    | Tident name -> (
      match int_kind_of_name name with
      | Some k -> Ltype.Integer k
      | None ->
        if String.length name > 7 && String.sub name 0 7 = "opaque." then
          Ltype.Opaque (String.sub name 7 (String.length name - 7))
        else error st ("unknown type name " ^ name))
    | Tpercent_ident n -> Ltype.Named n
    | Tlbrace ->
      if peek st = Trbrace then (ignore (next st); Ltype.Struct [])
      else begin
        let fields = ref [ parse_type st ] in
        while peek st = Tcomma do
          ignore (next st);
          fields := parse_type st :: !fields
        done;
        expect st Trbrace "'}'";
        Ltype.Struct (List.rev !fields)
      end
    | Tlbracket ->
      let n =
        match next st with
        | Tint v -> Int64.to_int v
        | t -> error st ("expected array length, found " ^ token_to_string t)
      in
      (match next st with
      | Tident "x" -> ()
      | t -> error st ("expected 'x', found " ^ token_to_string t));
      let elt = parse_type st in
      expect st Trbracket "']'";
      Ltype.Array (n, elt)
    | t -> error st ("expected a type, found " ^ token_to_string t)
  in
  parse_type_suffix st base

and parse_type_suffix st base =
  match peek st with
  | Tstar ->
    ignore (next st);
    parse_type_suffix st (Ltype.Pointer base)
  | Tlparen ->
    ignore (next st);
    let params = ref [] in
    let varargs = ref false in
    let rec go () =
      match peek st with
      | Trparen -> ignore (next st)
      | Tellipsis ->
        ignore (next st);
        varargs := true;
        expect st Trparen "')'"
      | _ ->
        params := parse_type st :: !params;
        (match peek st with
        | Tcomma -> ignore (next st); go ()
        | _ -> expect st Trparen "')'")
    in
    go ();
    parse_type_suffix st (Ltype.Function (base, List.rev !params, !varargs))
  | _ -> base

(* -- Constants ------------------------------------------------------------ *)

let resolve_ty st ty =
  try Ltype.resolve st.m.mtypes ty
  with Ltype.Unresolved n -> error st ("unresolved type name %" ^ n)

let rec parse_const st (ty : Ltype.t) : const =
  match peek st with
  | Tint v -> (
    ignore (next st);
    match resolve_ty st ty with
    | Ltype.Integer k -> cint k v
    | Ltype.Bool -> Cbool (v <> 0L)
    | Ltype.Float | Ltype.Double -> Cfloat (ty, Int64.to_float v)
    | t -> error st (Fmt.str "integer literal for non-integer type %a" Ltype.pp t))
  | Tfloat f -> ignore (next st); Cfloat (ty, f)
  | Tident "true" -> ignore (next st); Cbool true
  | Tident "false" -> ignore (next st); Cbool false
  | Tident ("infinity" | "inf") -> ignore (next st); Cfloat (ty, Float.infinity)
  | Tident "nan" -> ignore (next st); Cfloat (ty, Float.nan)
  | Tident "null" -> ignore (next st); Cnull ty
  | Tident "undef" -> ignore (next st); Cundef ty
  | Tident "zeroinitializer" -> ignore (next st); Czero ty
  | Tident "cast" ->
    ignore (next st);
    expect st Tlparen "'('";
    let src_ty = parse_type st in
    let c = parse_const st src_ty in
    (match next st with
    | Tident "to" -> ()
    | t -> error st ("expected 'to', found " ^ token_to_string t));
    let target = parse_type st in
    expect st Trparen "')'";
    Ccast (target, c)
  | Tstring s -> (
    ignore (next st);
    match resolve_ty st ty with
    | Ltype.Array (_, (Ltype.Integer k as elt)) ->
      Carray
        ( elt,
          List.map (fun c -> cint k (Int64.of_int (Char.code c)))
            (List.init (String.length s) (String.get s)) )
    | t -> error st (Fmt.str "string literal for non-byte-array type %a" Ltype.pp t))
  | Tlbracket ->
    ignore (next st);
    let elt_ty =
      match resolve_ty st ty with
      | Ltype.Array (_, e) -> e
      | t -> error st (Fmt.str "array literal for non-array type %a" Ltype.pp t)
    in
    let elts = ref [] in
    if peek st = Trbracket then ignore (next st)
    else begin
      let rec go () =
        let ety = parse_type st in
        elts := parse_const st ety :: !elts;
        match peek st with
        | Tcomma -> ignore (next st); go ()
        | _ -> expect st Trbracket "']'"
      in
      go ()
    end;
    Carray (elt_ty, List.rev !elts)
  | Tlbrace ->
    ignore (next st);
    let struct_ty = resolve_ty st ty in
    (match struct_ty with
    | Ltype.Struct _ -> ()
    | t -> error st (Fmt.str "struct literal for non-struct type %a" Ltype.pp t));
    let elts = ref [] in
    if peek st = Trbrace then ignore (next st)
    else begin
      let rec go () =
        let ety = parse_type st in
        elts := parse_const st ety :: !elts;
        match peek st with
        | Tcomma -> ignore (next st); go ()
        | _ -> expect st Trbrace "'}'"
      in
      go ()
    end;
    Cstruct (struct_ty, List.rev !elts)
  | Tpercent_ident name -> (
    ignore (next st);
    match find_gvar st.m name with
    | Some g -> Cgvar g
    | None -> (
      match find_func st.m name with
      | Some f -> Cfunc f
      | None -> error st ("unknown global %" ^ name)))
  | t -> error st ("expected a constant, found " ^ token_to_string t)

(* Skip over a constant without interpreting it (pass 1). *)
let rec skip_const st =
  match next st with
  | Tlbracket | Tlbrace | Tlparen ->
    let depth = ref 1 in
    while !depth > 0 do
      match next st with
      | Tlbracket | Tlbrace | Tlparen -> incr depth
      | Trbracket | Trbrace | Trparen -> decr depth
      | Teof -> error st "unterminated aggregate constant"
      | _ -> ()
    done
  | Tident "cast" -> skip_const st (* the parenthesized body *)
  | Tint _ | Tfloat _ | Tident _ | Tpercent_ident _ | Tstring _ -> ()
  | t -> error st ("cannot skip token " ^ token_to_string t)

(* -- Function bodies ------------------------------------------------------ *)

type body_env = {
  func : func;
  locals : (string, value) Hashtbl.t;
  blocks : (string, block) Hashtbl.t;
  defined_blocks : (string, unit) Hashtbl.t;
  mutable pending : (instr * int * string) list;
}

let get_block env name =
  match Hashtbl.find_opt env.blocks name with
  | Some b -> b
  | None ->
    let b = mk_block ~name () in
    Hashtbl.replace env.blocks name b;
    b

let define_block env name =
  let b = get_block env name in
  if Hashtbl.mem env.defined_blocks name then
    invalid_arg ("duplicate block label " ^ name);
  Hashtbl.replace env.defined_blocks name ();
  append_block env.func b;
  b

(* An operand: a %register, or a constant of the given type. *)
let parse_value st env ty :
    [ `Value of value | `Forward of string | `Block of block ] =
  match peek st with
  | Tpercent_ident name ->
    ignore (next st);
    if Hashtbl.mem env.locals name then `Value (Hashtbl.find env.locals name)
    else (
      match find_gvar st.m name with
      | Some g -> `Value (Vglobal g)
      | None -> (
        match find_func st.m name with
        | Some f -> `Value (Vfunc f)
        | None -> `Forward name))
  | _ -> `Value (Vconst (parse_const st ty))

(* Materialize parsed operands into an instruction, recording forwards. *)
let finish_instr env ?name ?alloc_ty ~ty op
    (ops : [ `Value of value | `Forward of string | `Block of block ] list) =
  let values =
    List.map
      (function
        | `Value v -> v
        | `Block b -> Vblock b
        | `Forward _ -> Vconst (Cundef Ltype.Void))
      ops
  in
  let i = mk_instr ?name ?alloc_ty ~ty op values in
  List.iteri
    (fun idx op ->
      match op with
      | `Forward n -> env.pending <- (i, idx, n) :: env.pending
      | `Value _ | `Block _ -> ())
    ops;
  i

let parse_label st env =
  match next st with
  | Tident "label" -> get_block env (expect_pident st "label name")
  | t -> error st ("expected 'label', found " ^ token_to_string t)

let parse_typed_operand st env =
  let ty = parse_type st in
  (ty, parse_value st env ty)

let rec parse_call_args st env acc =
  if peek st = Trparen then (ignore (next st); List.rev acc)
  else begin
    let _, v = parse_typed_operand st env in
    match peek st with
    | Tcomma ->
      ignore (next st);
      parse_call_args st env (v :: acc)
    | _ ->
      expect st Trparen "')'";
      List.rev (v :: acc)
  end

let parse_instr st env ~(current : block) =
  let result_name =
    match (peek st, peek2 st) with
    | Tpercent_ident n, Tequals ->
      ignore (next st);
      ignore (next st);
      Some n
    | _ -> None
  in
  let opname = expect_ident st "an opcode" in
  let bind_result i =
    (match result_name with
    | Some n -> Hashtbl.replace env.locals n (Vinstr i)
    | None -> ());
    append_instr current i
  in
  let binop op =
    let ty = parse_type st in
    let a = parse_value st env ty in
    expect st Tcomma "','";
    let b = parse_value st env ty in
    let rty = if is_comparison op then Ltype.Bool else ty in
    bind_result (finish_instr env ?name:result_name ~ty:rty op [ a; b ])
  in
  match opname with
  | "add" -> binop Add
  | "sub" -> binop Sub
  | "mul" -> binop Mul
  | "div" -> binop Div
  | "rem" -> binop Rem
  | "and" -> binop And
  | "or" -> binop Or
  | "xor" -> binop Xor
  | "shl" -> binop Shl
  | "shr" -> binop Shr
  | "seteq" -> binop SetEQ
  | "setne" -> binop SetNE
  | "setlt" -> binop SetLT
  | "setgt" -> binop SetGT
  | "setle" -> binop SetLE
  | "setge" -> binop SetGE
  | "ret" ->
    if peek st = Tident "void" then begin
      ignore (next st);
      match peek st with
      | Tstar | Tlparen ->
        (* "void" was the head of a derived type, e.g. ret void ()* %f *)
        let ty = parse_type_suffix st Ltype.Void in
        let v = parse_value st env ty in
        bind_result (finish_instr env ~ty:Ltype.Void Ret [ v ])
      | _ -> bind_result (finish_instr env ~ty:Ltype.Void Ret [])
    end
    else begin
      let ty = parse_type st in
      let v = parse_value st env ty in
      bind_result (finish_instr env ~ty:Ltype.Void Ret [ v ])
    end
  | "br" -> (
    match peek st with
    | Tident "label" ->
      let b = parse_label st env in
      bind_result (finish_instr env ~ty:Ltype.Void Br [ `Block b ])
    | _ ->
      let ty = parse_type st in
      let c = parse_value st env ty in
      expect st Tcomma "','";
      let t = parse_label st env in
      expect st Tcomma "','";
      let f = parse_label st env in
      bind_result (finish_instr env ~ty:Ltype.Void Br [ c; `Block t; `Block f ]))
  | "switch" ->
    let ty = parse_type st in
    let v = parse_value st env ty in
    expect st Tcomma "','";
    let default = parse_label st env in
    expect st Tlbracket "'['";
    let cases = ref [] in
    while peek st <> Trbracket do
      let cty = parse_type st in
      let c = parse_const st cty in
      expect st Tcomma "','";
      let b = parse_label st env in
      cases := (c, b) :: !cases
    done;
    ignore (next st);
    let ops =
      v :: `Block default
      :: List.concat_map
           (fun (c, b) -> [ `Value (Vconst c); `Block b ])
           (List.rev !cases)
    in
    bind_result (finish_instr env ~ty:Ltype.Void Switch ops)
  | "invoke" ->
    let ret_ty = parse_type st in
    let callee =
      let name = expect_pident st "callee" in
      match Hashtbl.find_opt env.locals name with
      | Some v -> `Value v
      | None -> (
        match find_func st.m name with
        | Some f -> `Value (Vfunc f)
        | None -> (
          match find_gvar st.m name with
          | Some g -> `Value (Vglobal g)
          | None -> `Forward name))
    in
    expect st Tlparen "'('";
    let args = parse_call_args st env [] in
    (match next st with
    | Tident "to" -> ()
    | t -> error st ("expected 'to', found " ^ token_to_string t));
    let normal = parse_label st env in
    (match next st with
    | Tident "unwind" -> ()
    | t -> error st ("expected 'unwind', found " ^ token_to_string t));
    (match next st with
    | Tident "to" -> ()
    | t -> error st ("expected 'to', found " ^ token_to_string t));
    let unwind = parse_label st env in
    let ops =
      callee :: `Block normal :: `Block unwind
      :: List.map (fun v -> (v :> [ `Value of value | `Forward of string | `Block of block ])) args
    in
    bind_result (finish_instr env ?name:result_name ~ty:ret_ty Invoke ops)
  | "unwind" -> bind_result (finish_instr env ~ty:Ltype.Void Unwind [])
  | "malloc" | "alloca" ->
    let op = if opname = "malloc" then Malloc else Alloca in
    let elt = parse_type st in
    let count =
      if peek st = Tcomma then begin
        ignore (next st);
        let _, v = parse_typed_operand st env in
        [ v ]
      end
      else []
    in
    bind_result
      (finish_instr env ?name:result_name ~alloc_ty:elt ~ty:(Ltype.Pointer elt)
         op count)
  | "free" ->
    let _, v = parse_typed_operand st env in
    bind_result (finish_instr env ~ty:Ltype.Void Free [ v ])
  | "load" ->
    let ty = parse_type st in
    let ptr = parse_value st env ty in
    let pointee =
      match resolve_ty st ty with
      | Ltype.Pointer p -> p
      | t -> error st (Fmt.str "load from non-pointer %a" Ltype.pp t)
    in
    bind_result (finish_instr env ?name:result_name ~ty:pointee Load [ ptr ])
  | "store" ->
    let _, v = parse_typed_operand st env in
    expect st Tcomma "','";
    let _, p = parse_typed_operand st env in
    bind_result (finish_instr env ~ty:Ltype.Void Store [ v; p ])
  | "getelementptr" ->
    let pty = parse_type st in
    let ptr = parse_value st env pty in
    let indices = ref [] in
    let index_tys = ref [] in
    while peek st = Tcomma do
      ignore (next st);
      let ity, v = parse_typed_operand st env in
      indices := v :: !indices;
      index_tys := ity :: !index_tys
    done;
    let indices = List.rev !indices in
    let index_values =
      List.map
        (function
          | `Value v -> v
          | `Forward _ | `Block _ -> Vconst (cint Ltype.Long 0L))
        indices
    in
    let rty =
      try Builder.gep_result_type st.m.mtypes pty index_values
      with Invalid_argument msg -> error st msg
    in
    bind_result (finish_instr env ?name:result_name ~ty:rty Gep (ptr :: indices))
  | "phi" ->
    let ty = parse_type st in
    let ops = ref [] in
    let rec go () =
      expect st Tlbracket "'['";
      let v = parse_value st env ty in
      expect st Tcomma "','";
      let bname = expect_pident st "predecessor label" in
      expect st Trbracket "']'";
      ops := `Block (get_block env bname) :: v :: !ops;
      if peek st = Tcomma then begin
        ignore (next st);
        go ()
      end
    in
    go ();
    bind_result (finish_instr env ?name:result_name ~ty Phi (List.rev !ops))
  | "cast" ->
    let ty = parse_type st in
    let v = parse_value st env ty in
    (match next st with
    | Tident "to" -> ()
    | t -> error st ("expected 'to', found " ^ token_to_string t));
    let target = parse_type st in
    bind_result (finish_instr env ?name:result_name ~ty:target Cast [ v ])
  | "call" ->
    let ret_ty = parse_type st in
    let callee =
      match peek st with
      | Tpercent_ident name ->
        ignore (next st);
        if Hashtbl.mem env.locals name then `Value (Hashtbl.find env.locals name)
        else (
          match find_func st.m name with
          | Some f -> `Value (Vfunc f)
          | None -> (
            match find_gvar st.m name with
            | Some g -> `Value (Vglobal g)
            | None -> `Forward name))
      | t -> error st ("expected callee, found " ^ token_to_string t)
    in
    expect st Tlparen "'('";
    let args = parse_call_args st env [] in
    let ops =
      callee
      :: List.map
           (fun v -> (v :> [ `Value of value | `Forward of string | `Block of block ]))
           args
    in
    bind_result (finish_instr env ?name:result_name ~ty:ret_ty Call ops)
  | "select" ->
    let cty = parse_type st in
    let c = parse_value st env cty in
    expect st Tcomma "','";
    let ty, a = parse_typed_operand st env in
    expect st Tcomma "','";
    let _, b = parse_typed_operand st env in
    bind_result (finish_instr env ?name:result_name ~ty Select [ c; a; b ])
  | op -> error st ("unknown opcode " ^ op)

let parse_body st (f : func) =
  let env =
    { func = f; locals = Hashtbl.create 64; blocks = Hashtbl.create 16;
      defined_blocks = Hashtbl.create 16; pending = [] }
  in
  List.iter (fun a -> Hashtbl.replace env.locals a.aname (Varg a)) f.fargs;
  expect st Tlbrace "'{'";
  let current = ref None in
  let rec go () =
    match peek st with
    | Trbrace -> ignore (next st)
    | Tident name when peek2 st = Tcolon ->
      ignore (next st);
      ignore (next st);
      current := Some (define_block env name);
      go ()
    | Teof -> error st "unterminated function body"
    | _ ->
      let blk =
        match !current with
        | Some b -> b
        | None -> error st "instruction outside any basic block"
      in
      parse_instr st env ~current:blk;
      go ()
  in
  go ();
  (* Patch forward references. *)
  List.iter
    (fun (i, idx, name) ->
      match Hashtbl.find_opt env.locals name with
      | Some v -> set_operand i idx v
      | None -> error st ("undefined value %" ^ name ^ " in " ^ f.fname))
    env.pending;
  (* Every referenced block must have been defined. *)
  Hashtbl.iter
    (fun name _ ->
      if not (Hashtbl.mem env.defined_blocks name) then
        error st ("undefined label %" ^ name ^ " in " ^ f.fname))
    env.blocks

(* -- Top level ------------------------------------------------------------ *)

let parse_linkage st =
  match peek st with
  | Tident "internal" ->
    ignore (next st);
    Internal
  | _ -> External

(* Parse a function header: [internal] <retty> %name ( params ) — assumes
   the caller detected a definition (body follows) or declaration. *)
let parse_params st ~named =
  expect st Tlparen "'('";
  let params = ref [] in
  let varargs = ref false in
  let rec go () =
    match peek st with
    | Trparen -> ignore (next st)
    | Tellipsis ->
      ignore (next st);
      varargs := true;
      expect st Trparen "')'"
    | _ ->
      let ty = parse_type st in
      let name =
        if named then expect_pident st "parameter name"
        else
          match peek st with
          | Tpercent_ident n -> ignore (next st); n
          | _ -> ""
      in
      params := (name, ty) :: !params;
      (match peek st with
      | Tcomma -> ignore (next st); go ()
      | _ -> expect st Trparen "')'")
  in
  go ();
  (List.rev !params, !varargs)

let skip_braced_body st =
  expect st Tlbrace "'{'";
  let depth = ref 1 in
  while !depth > 0 do
    match next st with
    | Tlbrace -> incr depth
    | Trbrace -> decr depth
    | Teof -> error st "unterminated function body"
    | _ -> ()
  done

type deferred =
  | Dglobal of gvar * int (* token offset of the initializer *)
  | Dbody of func * int (* token offset of '{' *)

let parse_module ?(name = "parsed") (src : string) : modul =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0; m = mk_module name } in
  let deferred = ref [] in
  (* pass 1 *)
  let rec top () =
    match peek st with
    | Teof -> ()
    | Tpercent_ident gname when peek2 st = Tequals -> (
      ignore (next st);
      ignore (next st);
      match peek st with
      | Tident "type" ->
        ignore (next st);
        let ty = parse_type st in
        define_type st.m gname ty;
        top ()
      | Tident "external" ->
        ignore (next st);
        let kind = expect_ident st "'global' or 'constant'" in
        let constant =
          match kind with
          | "global" -> false
          | "constant" -> true
          | k -> error st ("expected 'global' or 'constant', found " ^ k)
        in
        let ty = parse_type st in
        add_gvar st.m (mk_gvar ~linkage:External ~constant ~name:gname ~ty ());
        top ()
      | _ ->
        let linkage = parse_linkage st in
        let kind = expect_ident st "'global' or 'constant'" in
        let constant =
          match kind with
          | "global" -> false
          | "constant" -> true
          | k -> error st ("expected 'global' or 'constant', found " ^ k)
        in
        let ty = parse_type st in
        let g = mk_gvar ~linkage ~constant ~name:gname ~ty () in
        add_gvar st.m g;
        deferred := Dglobal (g, st.pos) :: !deferred;
        skip_const st;
        top ())
    | Tident "declare" ->
      ignore (next st);
      let ret = parse_type st in
      let fname = expect_pident st "function name" in
      let params, varargs = parse_params st ~named:false in
      add_func st.m (mk_func ~linkage:External ~varargs ~name:fname ~return:ret ~params ());
      top ()
    (* a bare Tpercent_ident here (no '=') starts a named return type,
       e.g. [%AClass* %ctor() { ... }] *)
    | Tident _ | Tlbrace | Tlbracket | Tpercent_ident _ ->
      let linkage = parse_linkage st in
      let ret = parse_type st in
      let fname = expect_pident st "function name" in
      let params, varargs = parse_params st ~named:true in
      let f = mk_func ~linkage ~varargs ~name:fname ~return:ret ~params () in
      add_func st.m f;
      deferred := Dbody (f, st.pos) :: !deferred;
      skip_braced_body st;
      top ()
    | t -> error st ("unexpected top-level token " ^ token_to_string t)
  in
  top ();
  (* pass 2 *)
  List.iter
    (function
      | Dglobal (g, pos) ->
        st.pos <- pos;
        g.ginit <- Some (parse_const st g.gty)
      | Dbody (f, pos) ->
        st.pos <- pos;
        parse_body st f)
    (List.rev !deferred);
  st.m

let parse_file ?name path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse_module ?name src

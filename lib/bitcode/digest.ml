(* Content digest for modules.

   The serving layer (lib/serve) content-addresses modules: two
   requests carrying the same program must map to the same cache key
   regardless of whether they arrived as textual IR or bitcode.  The
   canonical form is the encoder's byte output — it is already proven
   byte-stable (encode → decode → encode is the identity, see
   test/suite_bitcode.ml), covers every observable part of a module
   including symbol names, and is cheap relative to any pipeline.

   The hash itself is MD5 via the OCaml stdlib — not for cryptographic
   strength (cache keys, not signatures) but for a stable, collision-
   resistant-enough 128-bit value with no new dependencies. *)

let of_bytes (data : string) : string =
  Stdlib.Digest.to_hex (Stdlib.Digest.string data)

(* Delivery metadata is excluded from the identity: the module name is
   caller-chosen for textual payloads but stored in bitcode images, and
   local symbol names (argument, instruction, block) are materialized
   by the printer's %N numbering when unnamed IR makes a round trip
   through text.  Digesting the stripped encoding under a blank module
   name makes the same program arriving as .ll or .bc hash equal. *)
let of_module (m : Llvm_ir.Ir.modul) : string =
  let saved = m.Llvm_ir.Ir.mname in
  m.Llvm_ir.Ir.mname <- "";
  Fun.protect
    ~finally:(fun () -> m.Llvm_ir.Ir.mname <- saved)
    (fun () -> of_bytes (fst (Encoder.encode ~strip:true m)))

(** Stable content digest for modules, used by the serving layer to
    content-address cache entries.

    The digest is a hex MD5 of the canonical encoded form (the
    encoder's byte output), so it is deterministic across runs and two
    digests are equal iff the encoded bytes are equal: a module parsed
    from [.ll] text and the same module decoded from [.bc] share one
    digest. *)

(** Digest of an already-encoded bitcode image (or any byte string). *)
val of_bytes : string -> string

(** Digest of a module: encode stripped (no local symbol names) under a
    blank module name, then {!of_bytes}.  Delivery metadata is excluded
    because it is not program content — the module name is caller-chosen
    for textual payloads but stored in bitcode images, and unnamed
    locals acquire the printer's %N names on a round trip through text.
    Two digests are equal iff the canonical (stripped, name-blanked)
    encodings are byte-equal.  The module is left unchanged. *)
val of_module : Llvm_ir.Ir.modul -> string

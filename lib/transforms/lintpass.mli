(** The {!Llvm_analysis.Lint} checker suite as a registered pass:
    prints findings to stderr, never mutates the module. *)

val pass : Pass.t

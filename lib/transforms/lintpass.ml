(* The lint checker suite exposed as a pass (opt --lint / -p lint).

   Analysis-only: prints every finding to stderr and never mutates the
   module, so it can be dropped anywhere in a pipeline as a safety
   audit point. *)

open Llvm_analysis

let run_lint (m : Llvm_ir.Ir.modul) : bool =
  let diags = Lint.run m in
  List.iter (fun d -> Fmt.epr "%a@." Lint.pp_diag d) diags;
  false

let pass =
  Pass.make ~name:"lint"
    ~description:"report memory-safety findings (analysis only)" run_lint

(** Range-driven constant propagation: replace pure instructions whose
    {!Llvm_analysis.Range} interval is a singleton with the constant,
    then fold branches whose condition became constant and prune the
    dead edges.  Stronger than SCCP where the singleton only emerges
    from interval reasoning (joins over phis/selects, guarded edges,
    interprocedural argument ranges). *)

val run : Llvm_ir.Ir.modul -> bool
val pass : Pass.t

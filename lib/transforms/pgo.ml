(* Profile-guided speculative optimization (paper sections 3.5 / 4.1).

   The aggregate fleet profile names, for every indirect call site, the
   callees observed in the field.  When one target dominates, [promote]
   rewrites the site into a guarded direct call:

       B:          ...                         B:       ...
                   %r = call %fp(args)   ==>           %ok = seteq %fp, @tgt
                   rest                                br %ok, B.spec, B.deopt
                                           B.spec:     %rs = call @tgt(args)
                                                       br B.cont
                                           B.deopt:    call @llvm_deopt()
                                                       %r  = call %fp(args)
                                                       br B.cont
                                           B.cont:     %r' = phi [%rs, B.spec],
                                                                [%r, B.deopt]
                                                       rest

   The speculation is sound for *any* profile — even a stale or
   adversarial one — because the guard compares the actual function
   pointer against the predicted target and the deopt arm re-executes
   the original indirect call unchanged.  [llvm_deopt] additionally
   asks the execution engine to run that re-execution in the
   interpreter tier (the runtime half of the deopt protocol; see
   [Engine]).

   An invoke site speculates the same way, with both arms becoming
   invokes into a join block that forwards to the original normal
   destination; unwind-destination phis are extended to the two new
   predecessor blocks, exactly like the inliner's handler surgery.

   [promote_unguarded] deliberately elides the guard — a direct call to
   the predicted target with no fallback.  It is the fuzz harness's
   self-test miscompile (registered there as [inject-spec-noguard]):
   any run whose site targets a different function diverges, and the
   six-way oracle must catch it. *)

open Llvm_ir
open Ir
module Profile = Llvm_profile.Profile

type stats = {
  promoted : int; (* sites rewritten to guarded direct calls *)
  unguarded : int; (* sites rewritten without a guard (self-test only) *)
  inlined : int;
  deleted : int;
}

let default_min_count = 8
let default_min_share = 0.8

(* The runtime's deopt hook: void llvm_deopt(void), declared on demand. *)
let deopt_decl (m : modul) : func =
  match find_func m "llvm_deopt" with
  | Some f -> f
  | None ->
    let f = mk_func ~name:"llvm_deopt" ~return:Ltype.Void ~params:[] () in
    add_func m f;
    f

(* A candidate: an indirect call/invoke site with its profile key
   (function/block/index in the *untransformed* module — the names the
   field profiles were keyed under). *)
type site = { s_instr : instr; s_block : string; s_index : int }

let is_indirect (i : instr) : bool =
  match i.operands.(0) with
  | Vfunc _ | Vconst (Cfunc _) | Vconst (Ccast (_, Cfunc _)) -> false
  | _ -> true

let collect_sites (f : func) : site list =
  List.concat_map
    (fun b ->
      let k = ref (-1) in
      List.filter_map
        (fun i ->
          match i.iop with
          | Call | Invoke ->
            incr k;
            if is_indirect i then
              Some { s_instr = i; s_block = b.bname; s_index = !k }
            else None
          | _ -> None)
        b.instrs)
    f.fblocks

(* Pick the speculation target for a site: the hottest observed callee,
   provided the site is warm enough and the target dominant enough. *)
let decide (p : Profile.t) ~(min_count : int) ~(min_share : float) (m : modul)
    (fname : string) (s : site) : func option =
  match
    Profile.call_targets p ~func:fname ~block:s.s_block ~index:s.s_index
  with
  | [] -> None
  | ((top, n) :: _ : (string * int) list) as targets ->
    let total = List.fold_left (fun acc (_, c) -> acc + c) 0 targets in
    if total >= min_count && float_of_int n >= min_share *. float_of_int total
    then find_func m top
    else None

(* The callee value for a direct call to [tgt] at a site whose callee
   operand has type [fp_ty]: plain @tgt when the types agree, otherwise
   a constant cast so the rewritten site type-checks exactly like the
   original (the execution engine resolves both to [tgt] directly). *)
let direct_callee table (fp_ty : Ltype.t) (tgt : func) : value =
  if Ltype.equal table fp_ty (type_of table (Vfunc tgt)) then Vfunc tgt
  else Vconst (Ccast (fp_ty, Cfunc tgt))

(* Rewrite one site into the guarded form.  Returns false when the site
   shape rules it out (no terminator after it, degenerate invoke). *)
let promote_site (m : modul) (f : func) (s : site) (tgt : func) : bool =
  let table = m.mtypes in
  let i = s.s_instr in
  match i.iparent with
  | None -> false
  | Some b -> (
    let fpv = i.operands.(0) in
    let fp_ty = type_of table fpv in
    let tgt_callee = direct_callee table fp_ty tgt in
    (* the guard compares the live pointer with the predicted target's
       address; [tgt_callee] already has the pointer's static type *)
    let mk_guard_and_branch ~(bspec : block) ~(bdeopt : block) =
      let guard =
        mk_instr ~name:(i.iname ^ ".ok") ~ty:Ltype.Bool SetEQ
          [ fpv; tgt_callee ]
      in
      append_instr b guard;
      append_instr b
        (mk_instr ~ty:Ltype.Void Br
           [ Vinstr guard; Vblock bspec; Vblock bdeopt ]);
      guard
    in
    let merge_result ~(join : block) ~(bspec : block) ~(bdeopt : block)
        (direct : instr) =
      (* The site's value after the rewrite: a phi of the two arms.
         Replace uses first, while the phi has no operands, so the phi
         does not capture itself. *)
      if i.ity <> Ltype.Void && num_uses (Vinstr i) > 0 then begin
        let phi = mk_instr ~name:i.iname ~ty:i.ity Phi [] in
        prepend_instr join phi;
        replace_all_uses_with (Vinstr i) (Vinstr phi);
        phi_add_incoming phi (Vinstr direct) bspec;
        phi_add_incoming phi (Vinstr i) bdeopt
      end
    in
    match i.iop with
    | Call -> (
      match terminator b with
      | Some t when not (t == i) ->
        (* split off the continuation, leaving [i] at the end of [b] *)
        let cont = Inline.split_block_after f b i ~suffix:".cont" in
        let bspec = mk_block ~name:(b.bname ^ ".spec") () in
        let bdeopt = mk_block ~name:(b.bname ^ ".deopt") () in
        append_block f bspec;
        append_block f bdeopt;
        (* move the site into the deopt arm, behind the runtime hook *)
        unlink_instr i;
        ignore (mk_guard_and_branch ~bspec ~bdeopt);
        let direct =
          mk_instr ~name:(i.iname ^ ".spec") ~ty:i.ity Call
            (tgt_callee :: call_args i)
        in
        append_instr bspec direct;
        append_instr bspec (mk_instr ~ty:Ltype.Void Br [ Vblock cont ]);
        append_instr bdeopt
          (mk_instr ~ty:Ltype.Void Call [ Vfunc (deopt_decl m) ]);
        append_instr bdeopt i;
        append_instr bdeopt (mk_instr ~ty:Ltype.Void Br [ Vblock cont ]);
        merge_result ~join:cont ~bspec ~bdeopt direct;
        true
      | _ -> false)
    | Invoke ->
      let normal = as_block i.operands.(1) in
      let unwind = as_block i.operands.(2) in
      if normal == unwind then false
      else begin
        let bspec = mk_block ~name:(b.bname ^ ".spec") () in
        let bdeopt = mk_block ~name:(b.bname ^ ".deopt") () in
        let join = mk_block ~name:(b.bname ^ ".join") () in
        append_block f bspec;
        append_block f bdeopt;
        append_block f join;
        (* the invoke is b's terminator: pull it out, then guard *)
        unlink_instr i;
        ignore (mk_guard_and_branch ~bspec ~bdeopt);
        let direct =
          mk_instr ~name:(i.iname ^ ".spec") ~ty:i.ity Invoke
            (tgt_callee :: Vblock join :: Vblock unwind :: call_args i)
        in
        append_instr bspec direct;
        append_instr bdeopt
          (mk_instr ~ty:Ltype.Void Call [ Vfunc (deopt_decl m) ]);
        (* the original invoke now lands in the join block *)
        set_operand i 1 (Vblock join);
        append_instr bdeopt i;
        append_instr join (mk_instr ~ty:Ltype.Void Br [ Vblock normal ]);
        merge_result ~join ~bspec ~bdeopt direct;
        (* the normal destination's phis: predecessor b -> join *)
        Inline.retarget_phis normal ~old_pred:b ~new_pred:join;
        (* the handler's phis: b -> {b.spec, b.deopt}, same value *)
        Inline.extend_handler_phis unwind ~via:b [ bspec; bdeopt ];
        List.iter
          (fun pi -> if pi.iop = Phi then phi_remove_incoming pi b)
          unwind.instrs;
        true
      end
    | _ -> false)

(* -- Drivers ---------------------------------------------------------------- *)

let promote ?(min_count = default_min_count) ?(min_share = default_min_share)
    (p : Profile.t) (m : modul) : int =
  let n = ref 0 in
  List.iter
    (fun f ->
      if not (is_declaration f) then
        (* collect against the unmutated layout, then rewrite: the
           profile keys refer to the block names and call indices the
           instrumented runs saw *)
        let sites = collect_sites f in
        List.iter
          (fun s ->
            match decide p ~min_count ~min_share m f.fname s with
            | Some tgt -> if promote_site m f s tgt then incr n
            | None -> ())
          sites)
    m.mfuncs;
  !n

(* The self-test variant: same site selection, no guard, no fallback.
   DELIBERATELY WRONG whenever the fleet profile is not a total
   function of the inputs — which is the point. *)
let promote_unguarded ?(min_count = default_min_count)
    ?(min_share = default_min_share) (p : Profile.t) (m : modul) : int =
  let table = m.mtypes in
  let n = ref 0 in
  List.iter
    (fun f ->
      if not (is_declaration f) then
        List.iter
          (fun s ->
            match decide p ~min_count ~min_share m f.fname s with
            | Some tgt ->
              let fp_ty = type_of table (s.s_instr.operands.(0)) in
              set_operand s.s_instr 0 (direct_callee table fp_ty tgt);
              incr n
            | None -> ())
          (collect_sites f))
    m.mfuncs;
  !n

(* The full aggregate-driven pipeline: speculative promotion first (it
   keys off the original block names), then profile-guided inlining —
   promoted sites whose guards the inliner can now see become direct
   calls it may integrate — then the standard post-inline cleanup (the
   inliner leaves redundant copies and branches behind, the same reason
   [Pipelines.link_time_ipo] follows every inline round with these). *)
let optimize ?min_count ?min_share ?(inline_threshold = Inline.default_threshold)
    (p : Profile.t) (m : modul) : stats =
  let promoted = promote ?min_count ?min_share p m in
  let s = Inline.run ~threshold:inline_threshold ~profile:p m in
  List.iter
    (fun pass -> ignore (Pass.run_pass pass m))
    [ Simplify_cfg.pass; Gvn.pass; Storeforward.pass; Constprop.pass;
      Dce.adce_pass ];
  { promoted; unguarded = 0; inlined = s.Inline.inlined_calls;
    deleted = s.Inline.deleted_functions }

(* Shared CFG cleanup utilities used by several passes. *)

open Llvm_ir
open Ir
open Llvm_analysis

(* Delete every block not reachable from the entry, fixing up the phis of
   reachable successors.  Returns true when anything was removed. *)
let remove_unreachable_blocks (f : func) : bool =
  if is_declaration f then false
  else begin
    let dead = Cfg.unreachable_blocks f in
    if dead = [] then false
    else begin
      let is_dead b = List.exists (fun d -> d == b) dead in
      (* Remove phi entries flowing in from dead predecessors. *)
      List.iter
        (fun b ->
          match terminator b with
          | Some t ->
            List.iter
              (fun s ->
                if not (is_dead s) then
                  List.iter
                    (fun i -> if i.iop = Phi then phi_remove_incoming i b)
                    s.instrs)
              (successors t)
          | None -> ())
        dead;
      (* Break def-use links out of dead code, then erase. *)
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              if i.ity <> Ltype.Void then
                replace_all_uses_with (Vinstr i) (Vconst (Cundef i.ity)))
            b.instrs)
        dead;
      List.iter
        (fun b ->
          List.iter (fun i -> erase_instr i) (List.rev b.instrs);
          remove_block f b)
        dead;
      true
    end
  end

(* Delete trivially dead instructions (no uses, no side effects) until a
   fixpoint; a cheap clean-up run after bigger transformations. *)
let delete_dead_instrs (f : func) : bool =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    List.iter
      (fun b ->
        let dead =
          List.filter
            (fun i ->
              (not (has_side_effects i.iop))
              && (not (may_trap i))
              && i.iuses = [])
            b.instrs
        in
        if dead <> [] then begin
          List.iter erase_instr dead;
          changed := true;
          continue_ := true
        end)
      f.fblocks
  done;
  !changed

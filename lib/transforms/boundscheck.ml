(* SAFECode-style array bounds checking (paper sections 3.3 and 4.1.2).

   The paper lists "array bounds check elimination [28]" among the
   link-time interprocedural transformations, and describes SAFECode
   relying on "the array type information in LLVM to enforce array
   bounds safety ... using interprocedural analysis to eliminate runtime
   bounds checks in many cases".

   Two passes:
   - [insert_pass] instruments every getelementptr that indexes a sized
     array with a non-constant index: a call to the runtime primitive
     `llvm_bounds_check(index, length)` which traps when index >= length
     (unsigned).  Constant in-bounds indices need no check; constant
     out-of-bounds indices are left to trap at the access itself.
   - [elim_pass] removes checks it can prove redundant: constant
     in-bounds indices (exposed by later constant propagation), indices
     masked below the bound (`x & m` with m < n, or `x % n` / `x rem c`
     with c <= n for unsigned x), checks dominated by an identical
     check of the same index against the same or smaller bound, and
     checks whose {!Llvm_analysis.Range} interval at the check site is
     provably within [0, n). *)

open Llvm_ir
open Ir
open Llvm_analysis

let runtime_name = "llvm_bounds_check"

let runtime_decl (m : modul) : func =
  match find_func m runtime_name with
  | Some f -> f
  | None ->
    let f =
      mk_func ~linkage:External ~name:runtime_name ~return:Ltype.Void
        ~params:[ ("index", Ltype.long); ("length", Ltype.long) ]
        ()
    in
    add_func m f;
    f


(* -- insertion ---------------------------------------------------------------- *)

let insert (m : modul) : int =
  let checker = runtime_decl m in
  let count = ref 0 in
  List.iter
    (fun f ->
      if (not (is_declaration f)) && not (f == checker) then
        iter_instrs
          (fun i ->
            if i.iop = Gep then begin
              (* walk the indexed types; instrument variable array indices *)
              match Ltype.resolve m.mtypes (Ir.type_of m.mtypes i.operands.(0)) with
              | Ltype.Pointer pointee ->
                let cur = ref pointee in
                Array.iteri
                  (fun k idx ->
                    if k >= 2 then
                      match Ltype.resolve m.mtypes !cur with
                      | Ltype.Array (n, elt) ->
                        (match idx with
                        | Vconst (Cint _) -> ()
                        | _ ->
                          let as_long =
                            if Ir.type_of m.mtypes idx = Ltype.long then idx
                            else begin
                              let c = mk_instr ~ty:Ltype.long Cast [ idx ] in
                              insert_before ~point:i c;
                              Vinstr c
                            end
                          in
                          let call =
                            mk_instr ~ty:Ltype.Void Call
                              [ Vfunc checker; as_long;
                                Vconst (cint Ltype.Long (Int64.of_int n)) ]
                          in
                          insert_before ~point:i call;
                          incr count);
                        cur := elt
                      | Ltype.Struct _ as s -> (
                        match idx with
                        | Vconst (Cint (_, v)) ->
                          cur := Ltype.field_type m.mtypes s (Int64.to_int v)
                        | _ -> ())
                      | _ -> ())
                  i.operands
              | _ -> ()
            end)
          f)
    m.mfuncs;
  !count

(* -- elimination --------------------------------------------------------------- *)

(* Is [idx] provably below [n] for every execution?  Recognizes constant
   indices, masking (`x & m`, m < n), unsigned remainders
   (`x rem c`, 0 < c <= n, unsigned kind), and anything the lint value
   abstraction folds to a constant (through phis, selects and casts). *)
let rec provably_in_bounds ?ev (idx : value) (n : int64) : bool =
  (match ev with
  | Some ev -> (
    match Lint.eval ev idx with
    | Lint.Vint v -> v >= 0L && v < n
    | _ -> false)
  | None -> false)
  ||
  match idx with
  | Vconst (Cint (_, v)) -> v >= 0L && v < n
  | Vinstr i when i.iop = Cast -> (
    (* widening integer casts preserve small nonnegative values *)
    let table = Ltype.create_table () in
    match (Ir.type_of table i.operands.(0), i.ity) with
    | Ltype.Integer from_k, Ltype.Integer to_k
      when Ltype.int_bits to_k >= Ltype.int_bits from_k ->
      provably_in_bounds ?ev i.operands.(0) n
    | _ -> false)
  | Vinstr i when i.iop = And -> (
    let mask_ok = function
      | Vconst (Cint (_, m)) -> m >= 0L && m < n
      | _ -> false
    in
    mask_ok i.operands.(0) || mask_ok i.operands.(1))
  | Vinstr i when i.iop = Rem -> (
    match (Ir.type_of (Ltype.create_table ()) i.operands.(0), i.operands.(1)) with
    | Ltype.Integer k, Vconst (Cint (_, c))
      when (not (Ltype.is_signed k)) && c > 0L && c <= n ->
      true
    | _ -> false)
  | _ -> false

(* The guarded induction-variable pattern: idx (through widening casts)
   is a phi that starts at a constant in [0, n) and only grows by a
   positive constant step, and the check's block is only reachable when
   `idx < C` (C <= n) holds — the standard shape of `for (i = 0; i < C;
   i++) a[i]`.  The phi then stays within [0, C) at the check. *)
let rec strip_widening (v : value) : value =
  match v with
  | Vinstr i when i.iop = Cast -> (
    let table = Ltype.create_table () in
    match (Ir.type_of table i.operands.(0), i.ity) with
    | Ltype.Integer from_k, Ltype.Integer to_k
      when Ltype.int_bits to_k >= Ltype.int_bits from_k ->
      strip_widening i.operands.(0)
    | _ -> v)
  | v -> v

let guarded_induction (dom : Dominance.t) (check_block : block) (idx : value)
    (n : int64) : bool =
  match strip_widening idx with
  | Vinstr phi when phi.iop = Phi -> (
    let incoming = phi_incoming phi in
    let start_ok =
      List.exists
        (fun (v, _) ->
          match v with Vconst (Cint (_, c)) -> c >= 0L && c < n | _ -> false)
        incoming
    in
    let steps_positive =
      List.for_all
        (fun (v, _) ->
          match v with
          | Vconst (Cint (_, c)) -> c >= 0L && c < n (* the start *)
          | Vinstr a when a.iop = Add -> (
            let is_phi x = value_equal x (Vinstr phi) in
            let pos = function
              | Vconst (Cint (_, s)) -> s > 0L
              | _ -> false
            in
            (is_phi a.operands.(0) && pos a.operands.(1))
            || (is_phi a.operands.(1) && pos a.operands.(0)))
          | _ -> false)
        incoming
    in
    start_ok && steps_positive
    && (* a guard `phi < C` (C <= n) whose true arm dominates the check *)
    List.exists
      (fun u ->
        let cmp = u.user in
        cmp.iop = SetLT && u.index = 0
        && (match cmp.operands.(1) with
           | Vconst (Cint (_, c)) -> c <= n
           | _ -> false)
        &&
        List.exists
          (fun cu ->
            let br = cu.user in
            br.iop = Br
            && Array.length br.operands = 3
            && cu.index = 0
            &&
            let true_arm = as_block br.operands.(1) in
            Dominance.is_reachable dom true_arm
            && Dominance.dominates dom true_arm check_block)
          cmp.iuses)
      phi.iuses)
  | _ -> false

let is_check (checker : func) (i : instr) : (value * int64) option =
  match i.iop with
  | Call -> (
    match call_callee i with
    | Vfunc f when f == checker -> (
      match i.operands.(2) with
      | Vconst (Cint (_, n)) -> Some (i.operands.(1), n)
      | _ -> None)
    | _ -> None)
  | _ -> None

let eliminate (m : modul) : int =
  match find_func m runtime_name with
  | None -> 0
  | Some checker ->
    let removed = ref 0 in
    (* lint facts: the constant evaluator, and loads proven to read
       never-initialized stack slots — indexing by such an undef value
       is undefined behaviour regardless of the check, so guarding it
       buys nothing (the lint reports the real bug as L001) *)
    let ev = Lint.evaluator m.mtypes in
    let undef = Lint.undef_loads m in
    let is_undef_index idx =
      match strip_widening idx with
      | Vinstr i -> Hashtbl.mem undef i.iid
      | _ -> false
    in
    (* value-range facts prove checks the pattern matchers above cannot
       (joins over phis/selects, branch-guarded ranges, argument ranges
       propagated across calls); computed on first demand *)
    let rng = lazy (Range.analyze m) in
    let range_proves (b : block) (idx : value) (n : int64) : bool =
      match Range.range_at (Lazy.force rng) b idx with
      | Range.Bot -> true (* the check is never executed *)
      | Range.Itv (lo, hi) -> lo >= 0L && hi < n
    in
    List.iter
      (fun f ->
        if not (is_declaration f) then begin
          let dom = Dominance.compute f in
          (* dominator-tree walk with the set of live checks in scope *)
          let rec walk (b : block) (in_scope : (value * int64) list) =
            let scope = ref in_scope in
            let dead = ref [] in
            List.iter
              (fun i ->
                match is_check checker i with
                | Some (idx, n) ->
                  let redundant =
                    provably_in_bounds ~ev idx n
                    || is_undef_index idx
                    || guarded_induction dom b idx n
                    || List.exists
                         (fun (idx', n') -> value_equal idx idx' && n' <= n)
                         !scope
                    || range_proves b idx n
                  in
                  if redundant then begin
                    dead := i :: !dead;
                    incr removed
                  end
                  else scope := (idx, n) :: !scope
                | None -> ())
              b.instrs;
            List.iter erase_instr !dead;
            List.iter (fun c -> walk c !scope) (Dominance.children dom b)
          in
          if f.fblocks <> [] then walk (entry_block f) []
        end)
      m.mfuncs;
    (* drop the declaration when no checks remain *)
    (match find_func m runtime_name with
    | Some f when f.fuses = [] -> remove_func m f
    | _ -> ());
    !removed

let insert_pass =
  Pass.make ~name:"boundscheck-insert"
    ~description:"instrument variable array indices with runtime checks"
    (fun m -> insert m > 0)

let elim_pass =
  Pass.make ~name:"boundscheck-elim"
    ~description:"remove provably redundant array bounds checks"
    (fun m -> eliminate m > 0)

(* Range-driven constant propagation and branch folding.

   A consumer of {!Llvm_analysis.Range}: any pure instruction whose
   interprocedural value range collapses to a single constant is
   replaced by that constant, and branches whose condition became
   constant are folded ({!Simplify_cfg}), pruning never-taken edges the
   same way SCCP does.  This catches what the SCCP lattice cannot:
   ranges joined over phis and selects, branch-guarded facts, and
   argument ranges propagated across the call graph (a function only
   ever called with x in [3,7] folds `x < 10` to true).

   Division needs care: `c / y` with y in [0,1] has the singleton range
   [c] because the range semantics only describe executions that
   complete — but folding it away would erase the y = 0 trap.  Div and
   Rem results are only propagated when the divisor's range provably
   excludes zero. *)

open Llvm_ir
open Ir
open Llvm_analysis

let run (m : modul) : bool =
  let rng = Range.analyze m in
  let changed = ref false in
  List.iter
    (fun f ->
      if not (is_declaration f) then
        iter_instrs
          (fun i ->
            let pure =
              match i.iop with
              | Div | Rem ->
                not (Range.contains (Range.range_of rng i.operands.(1)) 0L)
              | Cast | Select | Phi -> true
              | op -> is_binary op || is_comparison op
            in
            if pure && i.iuses <> [] then
              match Range.is_singleton (Range.range_of rng (Vinstr i)) with
              | Some n -> (
                let cst =
                  match
                    try Some (Ltype.resolve m.mtypes i.ity)
                    with Ltype.Unresolved _ -> None
                  with
                  | Some Ltype.Bool -> Some (Cbool (n <> 0L))
                  | Some (Ltype.Integer k) -> Some (cint k n)
                  | _ -> None
                in
                match cst with
                | Some c ->
                  replace_all_uses_with (Vinstr i) (Vconst c);
                  changed := true
                | None -> ())
              | None -> ())
          f)
    m.mfuncs;
  List.iter
    (fun f ->
      if not (is_declaration f) then begin
        if Simplify_cfg.fold_constant_terminators f then changed := true;
        if Cleanup.remove_unreachable_blocks f then changed := true;
        if Cleanup.delete_dead_instrs f then changed := true
      end)
    m.mfuncs;
  !changed

let pass =
  Pass.make ~name:"rangeprop"
    ~description:"fold values and branches whose value range is a singleton"
    run

(* Standard pass pipelines and the pass registry.

   [per_module] approximates the static per-translation-unit optimizer
   (paper section 3.2); [link_time_ipo] is the interprocedural pipeline
   run by the linker (section 3.3). *)

let all_passes =
  [ Mem2reg.pass; Sroa.pass; Constprop.pass; Sccp.pass; Dce.pass;
    Dce.adce_pass; Simplify_cfg.pass; Gvn.pass; Reassociate.pass;
    Storeforward.pass; Licm.pass; Inline.pass; Dge.pass; Dae.pass;
    Tailrec.pass; Prune_eh.pass; Boundscheck.insert_pass;
    Boundscheck.elim_pass; Ipconstprop.pass; Rangeprop.pass; Deadtypes.pass;
    Poolalloc.pass; Lintpass.pass ]

let () = List.iter Pass.register all_passes

(* The front-end emits allocas; these passes build SSA and clean up. *)
let per_function_cleanup =
  [ Sroa.pass; Mem2reg.pass; Constprop.pass; Simplify_cfg.pass; Dce.pass ]

let per_module =
  per_function_cleanup
  @ [ Sccp.pass; Reassociate.pass; Gvn.pass; Licm.pass; Storeforward.pass;
      Constprop.pass; Gvn.pass; Simplify_cfg.pass; Dce.adce_pass ]

(* Aggressive whole-program pipeline for link time. *)
let link_time_ipo =
  [ Mem2reg.pass; Sroa.pass; Constprop.pass; Simplify_cfg.pass;
    Prune_eh.pass; Inline.pass; Simplify_cfg.pass; Gvn.pass;
    Storeforward.pass; Constprop.pass; Inline.pass; Simplify_cfg.pass;
    Gvn.pass; Storeforward.pass; Constprop.pass; Inline.pass;
    Simplify_cfg.pass; Gvn.pass; Storeforward.pass; Constprop.pass;
    Reassociate.pass; Simplify_cfg.pass; Dce.adce_pass; Ipconstprop.pass;
    Rangeprop.pass; Constprop.pass; Dce.adce_pass; Dae.pass; Dge.pass;
    Deadtypes.pass ]

let optimize_module ?(level = 2) (m : Llvm_ir.Ir.modul) : unit =
  match level with
  | 0 -> ()
  | 1 -> ignore (Pass.run_sequence per_function_cleanup m)
  | 2 -> ignore (Pass.run_sequence per_module m)
  | _ ->
    ignore (Pass.run_sequence per_module m);
    ignore (Pass.run_sequence link_time_ipo m)

(** SAFECode-style array bounds checking (paper sections 3.3, 4.1.2).

    [insert] instruments every sized-array gep with a non-constant index
    with a call to [llvm_bounds_check(index, length)] (which traps when
    out of range).  [eliminate] removes the checks it can prove
    redundant: constants, masked indices, unsigned remainders, checks
    dominated by an equal-or-stronger check, guarded induction
    variables (the shape of [for (i = 0; i < C; i++) a\[i\]]), and
    facts imported from {!Llvm_analysis.Lint} — indices its value
    abstraction folds to an in-range constant, and indices loaded from
    provably-uninitialized slots (undefined behaviour either way, and
    already reported as L001). *)

val runtime_name : string

(** Returns the number of checks inserted. *)
val insert : Llvm_ir.Ir.modul -> int

(** Returns the number of checks removed. *)
val eliminate : Llvm_ir.Ir.modul -> int

val insert_pass : Pass.t
val elim_pass : Pass.t

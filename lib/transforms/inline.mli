(** Function integration (inlining), one of the three interprocedural
    passes timed in Table 2.

    At an invoke site, cloned [unwind] instructions become direct
    branches to the handler — the optimization the paper highlights in
    section 2.4 — and cloned calls become invokes so exceptions thrown
    deeper still reach it. *)

type stats = {
  mutable inlined_calls : int;
  mutable deleted_functions : int;
}

val default_threshold : int

(** {1 Block surgery} (shared with the speculative-promotion pass) *)

(** Replace [old_pred] with [new_pred] in the phis of the block. *)
val retarget_phis :
  Llvm_ir.Ir.block ->
  old_pred:Llvm_ir.Ir.block ->
  new_pred:Llvm_ir.Ir.block ->
  unit

(** Move the tail of the block after (and excluding) the given
    instruction into a fresh block named with [suffix]; successor phis
    are retargeted.  Returns the new block. *)
val split_block_after :
  Llvm_ir.Ir.func ->
  Llvm_ir.Ir.block ->
  Llvm_ir.Ir.instr ->
  suffix:string ->
  Llvm_ir.Ir.block

(** Add entries to the handler's phis for [new_preds], copying the
    value each phi had for [via] (the original invoke block). *)
val extend_handler_phis :
  Llvm_ir.Ir.block -> via:Llvm_ir.Ir.block -> Llvm_ir.Ir.block list -> unit

(** Splice one call or invoke site.  [cleanup:false] defers
    unreachable-block removal to the caller (batching). *)
val inline_call_site : ?cleanup:bool -> Llvm_ir.Ir.func -> Llvm_ir.Ir.instr -> bool

(** Inliner policy context: call graph plus the recursive-function set. *)
type context = {
  cg : Llvm_analysis.Callgraph.t;
  recursive : (int, unit) Hashtbl.t;
}

val make_context : Llvm_ir.Ir.modul -> context

(** Small callees always inline; internal callees with a single direct
    call site get a larger budget (the original is deleted after). *)
val should_inline :
  context -> ?threshold:int -> Llvm_ir.Ir.func -> Llvm_ir.Ir.func -> bool

(** Bottom-up inlining over the whole module, then deletion of
    unreferenced internal functions.  With an aggregate [profile]
    (section 3.5), the per-site budget scales with the heat of the
    call's block: sites hotter than their caller's entry (loops) get
    8x, sites the fleet executed at all get 2x, and never-executed
    sites get a quarter. *)
val run :
  ?threshold:int -> ?profile:Llvm_profile.Profile.t -> Llvm_ir.Ir.modul -> stats

val pass : Pass.t

(** Profile-guided speculative optimization (paper sections 3.5 / 4.1).

    Driven by an aggregate fleet profile ({!Llvm_profile.Profile}):
    indirect call/invoke sites dominated by one observed target are
    rewritten into a guarded direct call with a deopt arm that
    re-executes the original indirect call behind the [llvm_deopt]
    runtime hook (the engine then falls back to the interpreter tier).
    Sound for any profile, stale or adversarial: the guard compares the
    live function pointer against the prediction.

    [promote_unguarded] elides the guard — the deliberately wrong
    variant behind the fuzz harness's [inject-spec-noguard] self-test. *)

type stats = {
  promoted : int;  (** sites rewritten to guarded direct calls *)
  unguarded : int;  (** sites rewritten without a guard (self-test only) *)
  inlined : int;
  deleted : int;
}

val default_min_count : int

val default_min_share : float

(** The [void llvm_deopt(void)] declaration, added on demand. *)
val deopt_decl : Llvm_ir.Ir.modul -> Llvm_ir.Ir.func

(** Rewrite every indirect site whose profile shows at least
    [min_count] calls with one target taking at least [min_share] of
    them.  Returns the number of sites promoted. *)
val promote :
  ?min_count:int ->
  ?min_share:float ->
  Llvm_profile.Profile.t ->
  Llvm_ir.Ir.modul ->
  int

(** Same site selection, but a bare direct call: no guard, no
    fallback.  DELIBERATELY WRONG on any run whose targets differ from
    the profile's prediction — the harness self-test. *)
val promote_unguarded :
  ?min_count:int ->
  ?min_share:float ->
  Llvm_profile.Profile.t ->
  Llvm_ir.Ir.modul ->
  int

(** The aggregate-driven pipeline: speculative promotion, then
    profile-guided inlining ({!Inline.run} with the same profile). *)
val optimize :
  ?min_count:int ->
  ?min_share:float ->
  ?inline_threshold:int ->
  Llvm_profile.Profile.t ->
  Llvm_ir.Ir.modul ->
  stats

(* Dead code elimination.

   [pass] is the trivial bottom-up variant (erase unused pure values).
   [adce_pass] is aggressive DCE: instructions are assumed dead until
   proven live (the paper uses the same "assume dead until proven
   otherwise" framing for its aggressive interprocedural cleanups,
   section 4.1.4) — roots are side-effecting and control instructions,
   and liveness flows backwards through operands. *)

open Llvm_ir
open Ir

let trivial (f : func) : bool = Cleanup.delete_dead_instrs f

let pass =
  Pass.function_pass ~name:"dce" ~description:"delete trivially dead instructions"
    trivial

let aggressive (f : func) : bool =
  let live : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let worklist = Queue.create () in
  let mark i =
    if not (Hashtbl.mem live i.iid) then begin
      Hashtbl.replace live i.iid ();
      Queue.add i worklist
    end
  in
  (* Roots: anything observable, including possible division traps. *)
  iter_instrs (fun i -> if has_side_effects i.iop || may_trap i then mark i) f;
  while not (Queue.is_empty worklist) do
    let i = Queue.pop worklist in
    Array.iter
      (fun v -> match v with Vinstr d -> mark d | _ -> ())
      i.operands
  done;
  let dead = ref [] in
  iter_instrs (fun i -> if not (Hashtbl.mem live i.iid) then dead := i :: !dead) f;
  if !dead = [] then false
  else begin
    List.iter
      (fun i ->
        if i.ity <> Ltype.Void then
          replace_all_uses_with (Vinstr i) (Vconst (Cundef i.ity)))
      !dead;
    List.iter erase_instr !dead;
    true
  end

let adce_pass =
  Pass.function_pass ~name:"adce"
    ~description:"aggressive dead code elimination (dead until proven live)"
    aggressive

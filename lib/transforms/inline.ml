(* Function integration (inlining) — one of the three interprocedural
   passes timed in Table 2.

   Inlining a call site:
   - the caller block is split at the call; instructions after the call
     move to a continuation block;
   - the callee body is cloned with arguments substituted;
   - every cloned `ret` becomes a branch to the continuation, with a phi
     merging return values when there are several;
   - cloned allocas are hoisted into the caller entry so they keep
     function-lifetime semantics;
   - at an invoke site, cloned `unwind` instructions become direct
     branches to the invoke's unwind destination (the paper highlights
     exactly this optimization, section 2.4), and cloned calls become
     invokes so that exceptions thrown deeper still reach the handler. *)

open Llvm_ir
open Ir
open Llvm_analysis

type stats = {
  mutable inlined_calls : int;
  mutable deleted_functions : int;
}

let default_threshold = 40 (* callee instruction budget *)

(* -- Cloning ------------------------------------------------------------- *)

type clone_env = {
  vmap : (int, value) Hashtbl.t; (* old instr/arg id -> new value *)
  bmap : (int, block) Hashtbl.t; (* old block id -> new block *)
}

let map_value env (v : value) : value =
  match v with
  | Vinstr i -> (
    match Hashtbl.find_opt env.vmap i.iid with Some v -> v | None -> v)
  | Varg a -> (
    match Hashtbl.find_opt env.vmap a.aid with Some v -> v | None -> v)
  | Vblock b -> (
    match Hashtbl.find_opt env.bmap b.bid with
    | Some b' -> Vblock b'
    | None -> v)
  | Vconst _ | Vglobal _ | Vfunc _ -> v

(* Clone the body of [callee] into fresh blocks appended to [caller].
   Returns the clone of the callee entry and the list of cloned blocks. *)
let clone_body ~(caller : func) ~(callee : func) ~(args : value list) :
    block * block list =
  let env = { vmap = Hashtbl.create 64; bmap = Hashtbl.create 16 } in
  List.iter2
    (fun formal actual -> Hashtbl.replace env.vmap formal.aid actual)
    callee.fargs args;
  let cloned_blocks =
    List.map
      (fun b ->
        let nb = mk_block ~name:(callee.fname ^ "." ^ b.bname) () in
        Hashtbl.replace env.bmap b.bid nb;
        nb.bparent <- Some caller;
        nb)
      callee.fblocks
  in
  (* single batched append: repeated append_block would be quadratic in
     large callers *)
  caller.fblocks <- caller.fblocks @ cloned_blocks;
  (* Create all instruction clones first (operands patched afterwards) so
     that forward references in phis resolve. *)
  List.iter
    (fun b ->
      let nb = Hashtbl.find env.bmap b.bid in
      List.iter
        (fun i ->
          let ni =
            mk_instr ~name:i.iname ?alloc_ty:i.alloc_ty ~ty:i.ity i.iop []
          in
          Hashtbl.replace env.vmap i.iid (Vinstr ni);
          append_instr nb ni)
        b.instrs)
    callee.fblocks;
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match Hashtbl.find_opt env.vmap i.iid with
          | Some (Vinstr ni) ->
            set_operands ni (Array.map (map_value env) i.operands)
          | _ -> assert false)
        b.instrs)
    callee.fblocks;
  (Hashtbl.find env.bmap (entry_block callee).bid, cloned_blocks)

(* Replace [old_pred] with [new_pred] in the phis of [blk]. *)
let retarget_phis (blk : block) ~(old_pred : block) ~(new_pred : block) =
  List.iter
    (fun i ->
      if i.iop = Phi then
        Array.iteri
          (fun idx op ->
            match op with
            | Vblock b when b == old_pred -> set_operand i idx (Vblock new_pred)
            | _ -> ())
          i.operands)
    blk.instrs

(* Move the tail of [b] starting at (and excluding) [point] into a fresh
   block; successor phis are retargeted.  Returns the new block. *)
let split_block_after (caller : func) (b : block) (point : instr) ~suffix :
    block =
  let rec split before = function
    | [] -> (List.rev before, [])
    | i :: rest when i == point -> (List.rev (i :: before), rest)
    | i :: rest -> split (i :: before) rest
  in
  let keep, moved = split [] b.instrs in
  let nb = mk_block ~name:(b.bname ^ suffix) () in
  append_block caller nb;
  b.instrs <- keep;
  nb.instrs <- moved;
  List.iter (fun i -> i.iparent <- Some nb) moved;
  (match terminator nb with
  | Some t ->
    List.iter (fun s -> retarget_phis s ~old_pred:b ~new_pred:nb) (successors t)
  | None -> ());
  nb

(* Add [new_preds] entries to the phis of [handler], copying the value the
   phi had for [via] (the original invoke block). *)
let extend_handler_phis (handler : block) ~(via : block) (new_preds : block list)
    =
  List.iter
    (fun i ->
      if i.iop = Phi then
        match List.find_opt (fun (_, b) -> b == via) (phi_incoming i) with
        | Some (v, _) ->
          List.iter
            (fun p ->
              if
                not
                  (List.exists (fun (_, b) -> b == p) (phi_incoming i))
              then phi_add_incoming i v p)
            new_preds
        | None -> ())
    handler.instrs

(* -- The splice ----------------------------------------------------------- *)

let inline_call_site ?(cleanup = true) (caller : func) (site : instr) : bool =
  let callee =
    match call_callee site with
    | Vfunc f -> Some f
    | Vconst (Cfunc f) -> Some f
    | _ -> None
  in
  match callee with
  | None -> false
  | Some callee when is_declaration callee || callee == caller -> false
  | Some callee ->
    let site_block = Option.get site.iparent in
    let args = call_args site in
    let is_invoke = site.iop = Invoke in
    let invoke_normal =
      if is_invoke then Some (as_block site.operands.(1)) else None
    in
    let invoke_unwind =
      if is_invoke then Some (as_block site.operands.(2)) else None
    in
    (* 1. the continuation: where control resumes after the callee returns.
       For a call, split the block after the call site.  For an invoke
       (always a terminator) use a fresh empty block that will branch to
       the normal destination. *)
    let cont = split_block_after caller site_block site ~suffix:".cont" in
    (* the site instruction itself stays at the end of site_block *)
    (* 2. clone the callee *)
    let entry_clone, cloned = clone_body ~caller ~callee ~args in
    (* 3. rewrite cloned rets / unwinds / calls *)
    let rets = ref [] in
    let handler_preds = ref [] in
    List.iter
      (fun nb ->
        List.iter
          (fun ni ->
            match ni.iop with
            | Ret -> rets := ni :: !rets
            | Unwind when is_invoke ->
              let handler = Option.get invoke_unwind in
              let here = Option.get ni.iparent in
              let br = mk_instr ~ty:Ltype.Void Br [ Vblock handler ] in
              insert_before ~point:ni br;
              erase_instr ni;
              handler_preds := here :: !handler_preds
            | Call when is_invoke ->
              (* a call that may unwind must now route to the handler *)
              let handler = Option.get invoke_unwind in
              let nb_cur = Option.get ni.iparent in
              let next = split_block_after caller nb_cur ni ~suffix:".n" in
              let inv =
                mk_instr ~name:ni.iname ~ty:ni.ity Invoke
                  (Array.to_list
                     (Array.concat
                        [ [| ni.operands.(0); Vblock next; Vblock handler |];
                          Array.sub ni.operands 1 (Array.length ni.operands - 1)
                        ]))
              in
              replace_all_uses_with (Vinstr ni) (Vinstr inv);
              erase_instr ni;
              append_instr nb_cur inv;
              handler_preds := nb_cur :: !handler_preds
            | _ -> ())
          nb.instrs)
      cloned;
    (match invoke_unwind with
    | Some handler ->
      extend_handler_phis handler ~via:site_block !handler_preds
    | None -> ());

    (* hoist cloned allocas into the caller entry so their lifetime spans
       the whole caller activation *)
    let caller_entry = entry_block caller in
    List.iter
      (fun nb ->
        if not (nb == caller_entry) then
          List.iter
            (fun a ->
              if a.iop = Alloca && Array.length a.operands = 0 then begin
                unlink_instr a;
                a.iparent <- Some caller_entry;
                caller_entry.instrs <- a :: caller_entry.instrs
              end)
            nb.instrs)
      cloned;
    (* 4. rets branch to the continuation *)
    let ret_values =
      List.map
        (fun r ->
          let v =
            if Array.length r.operands = 1 then Some r.operands.(0) else None
          in
          let from_block = Option.get r.iparent in
          let br = mk_instr ~ty:Ltype.Void Br [ Vblock cont ] in
          insert_before ~point:r br;
          erase_instr r;
          (v, from_block))
        !rets
    in
    (* 5. the call's value: single ret -> direct value; several -> phi in
       cont (whose predecessors are exactly the returning blocks) *)
    let result_replacement =
      if site.ity = Ltype.Void then None
      else
        match ret_values with
        | [] -> Some (Vconst (Cundef site.ity))
        | [ (Some v, _) ] -> Some v
        | [ (None, _) ] -> Some (Vconst (Cundef site.ity))
        | _ ->
          let incoming =
            List.map
              (fun (v, b) ->
                ((match v with Some v -> v | None -> Vconst (Cundef site.ity)), b))
              ret_values
          in
          let phi =
            mk_instr ~name:site.iname ~ty:site.ity Phi
              (List.concat_map (fun (v, b) -> [ v; Vblock b ]) incoming)
          in
          prepend_instr cont phi;
          Some (Vinstr phi)
    in
    (match result_replacement with
    | Some v -> replace_all_uses_with (Vinstr site) v
    | None -> ());
    (* 6. retire the site: branch to the cloned entry instead *)
    erase_instr site;
    append_instr site_block (mk_instr ~ty:Ltype.Void Br [ Vblock entry_clone ]);
    (* For an invoke the continuation forwards to the normal destination,
       whose phis must now name cont as the predecessor. *)
    (match invoke_normal with
    | Some n ->
      append_instr cont (mk_instr ~ty:Ltype.Void Br [ Vblock n ]);
      retarget_phis n ~old_pred:site_block ~new_pred:cont
    | None -> ());
    (* The unwind edge from site_block is gone (the cloned unwind paths
       in handler_preds carry its phi value now, when the callee can
       unwind at all): drop the stale phi entries for site_block. *)
    (match invoke_unwind with
    | Some handler ->
      List.iter
        (fun i -> if i.iop = Phi then phi_remove_incoming i site_block)
        handler.instrs
    | None -> ());
    (match terminator cont with
    | Some _ -> ()
    | None ->
      (* callee never returns: the continuation is unreachable *)
      append_instr cont (mk_instr ~ty:Ltype.Void Unwind []));
    if cleanup then ignore (Cleanup.remove_unreachable_blocks caller);
    true

(* -- Policy --------------------------------------------------------------- *)

type context = {
  cg : Callgraph.t;
  recursive : (int, unit) Hashtbl.t; (* fids in nontrivial SCCs / self-loops *)
}

let make_context (m : modul) : context =
  let cg = Callgraph.compute m in
  let recursive = Hashtbl.create 16 in
  List.iter
    (fun scc ->
      match scc with
      | [ f ] ->
        if List.exists (fun c -> c == f) (Callgraph.node cg f).Callgraph.callees
        then Hashtbl.replace recursive f.fid ()
      | fs -> List.iter (fun f -> Hashtbl.replace recursive f.fid ()) fs)
    (Callgraph.sccs cg);
  { cg; recursive }

(* A call site is worth inlining when the callee is small and not
   (mutually) recursive; internal functions with a single caller get a
   bigger budget since the original is deleted afterwards. *)
let should_inline (ctx : context) ?(threshold = default_threshold)
    (caller : func) (callee : func) : bool =
  (not (is_declaration callee))
  && (not (callee == caller))
  && (not (Hashtbl.mem ctx.recursive callee.fid))
  &&
  let size = instr_count callee in
  (* "single caller" means a single direct call site: inlining then
     deletes the original, so code size cannot grow *)
  let call_sites =
    List.length
      (List.filter
         (fun u ->
           match u.user.iop with
           | (Call | Invoke) when u.index = 0 -> true
           | _ -> false)
         callee.fuses)
  in
  let single_site =
    callee.flinkage = Internal && call_sites = 1
    && not (Callgraph.address_taken callee)
  in
  size <= threshold || (single_site && size <= threshold * 8)

(* Profile-guided budget for one call site (section 3.5): a site
   hotter than its caller's entry runs in a loop — integrate it even
   when large; a site the fleet executed gets a modest boost; a site no
   run ever reached is cold — shrink its budget so dead cross-calls do
   not bloat the code the JIT must compile. *)
let site_threshold ?profile ~(threshold : int) (caller : func) (site : instr) :
    int =
  match (profile, site.iparent) with
  | None, _ | _, None -> threshold
  | Some p, Some b ->
    let w =
      Llvm_profile.Profile.block_weight p ~func:caller.fname ~block:b.bname
    in
    if w = 0 then max 1 (threshold / 4)
    else
      let entry_w =
        Llvm_profile.Profile.block_weight p ~func:caller.fname
          ~block:(entry_block caller).bname
      in
      if w > entry_w then threshold * 8 else threshold * 2

let run ?(threshold = default_threshold) ?profile (m : modul) : stats =
  let stats = { inlined_calls = 0; deleted_functions = 0 } in
  let ctx = make_context m in
  (* Visit callees before callers so that inlining composes bottom-up. *)
  let order = List.concat (Callgraph.sccs ctx.cg) in
  List.iter
    (fun caller ->
      if not (is_declaration caller) then begin
        (* per round: collect every candidate site in one scan, then
           inline them all; cloned bodies may expose new sites, so repeat
           a bounded number of rounds *)
        let rounds = ref 0 in
        let continue_ = ref true in
        while !continue_ && !rounds < 4 do
          continue_ := false;
          incr rounds;
          let sites = ref [] in
          iter_instrs
            (fun i ->
              match i.iop with
              | Call | Invoke -> (
                match call_callee i with
                | Vfunc callee
                  when should_inline ctx
                         ~threshold:
                           (site_threshold ?profile ~threshold caller i)
                         caller callee ->
                  sites := i :: !sites
                | _ -> ())
              | _ -> ())
            caller;
          List.iter
            (fun i ->
              (* the site may sit in code made unreachable by an earlier
                 inline in this round; it is still structurally valid *)
              if i.iparent <> None && inline_call_site ~cleanup:false caller i
              then begin
                stats.inlined_calls <- stats.inlined_calls + 1;
                continue_ := true
              end)
            (List.rev !sites);
          if !continue_ then ignore (Cleanup.remove_unreachable_blocks caller)
        done
      end)
    order;
  (* Delete internal functions that no longer have references.  The
     functions mentioned by global initializers are collected once; a
     function's uses can only shrink during this sweep. *)
  let in_initializers : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec scan_const c =
    match c with
    | Cfunc f -> Hashtbl.replace in_initializers f.fid ()
    | Ccast (_, c) -> scan_const c
    | Carray (_, cs) | Cstruct (_, cs) -> List.iter scan_const cs
    | Cbool _ | Cint _ | Cfloat _ | Cnull _ | Cundef _ | Czero _ | Cgvar _ ->
      ()
  in
  List.iter
    (fun g -> match g.ginit with Some c -> scan_const c | None -> ())
    m.mglobals;
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    List.iter
      (fun f ->
        if
          f.flinkage = Internal && f.fuses = []
          && not (Hashtbl.mem in_initializers f.fid)
        then begin
          (* drop body first so its operand uses go away *)
          List.iter
            (fun b ->
              List.iter
                (fun i ->
                  if i.ity <> Ltype.Void then
                    replace_all_uses_with (Vinstr i) (Vconst (Cundef i.ity)))
                b.instrs)
            f.fblocks;
          List.iter
            (fun b -> List.iter erase_instr (List.rev b.instrs))
            f.fblocks;
          f.fblocks <- [];
          remove_func m f;
          stats.deleted_functions <- stats.deleted_functions + 1;
          continue_ := true
        end)
      m.mfuncs
  done;
  stats

let pass =
  Pass.make ~name:"inline" ~description:"function integration"
    (fun m ->
      let s = run m in
      s.inlined_calls > 0 || s.deleted_functions > 0)

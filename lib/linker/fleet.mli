(** The fleet simulator (paper section 4.1's lifelong loop at scale):
    many heterogeneous end-user runs of one executable, instrumented
    per section 3.5, each persisting its profile to disk; the per-run
    profiles are merged — weighted by machine count — into the
    aggregate that drives reoptimization.

    Heterogeneity comes from an integer environment input poked into a
    named global before [main] (the genprog dispatchers key their
    function-pointer selection on it).  Every aggregate is built from
    profiles re-read from disk, exercising the binary format on the
    same path field data would take. *)

type run = {
  input : int;  (** the value poked into the environment global *)
  weight : int;  (** simulated machines that executed this input *)
  result : Llvm_exec.Interp.run_result;
  deopts : int;
  file : string;  (** where this run's profile persists *)
}

type report = {
  simulated : int;  (** total weighted runs *)
  executed : int;  (** distinct instrumented executions *)
  runs : run list;  (** in schedule order *)
  aggregate : Llvm_profile.Profile.t;
}

val default_fuel : int

(** One simulated end-user run: instrumented, under [kind] (default
    [Tiered]), with [input = (global, value)] poked into the program's
    environment global first and [profile] (if any) driving hot/cold
    block layout.  Returns the result, the run's own one-run profile,
    and the run's failed-guard count. *)
val field_run :
  ?fuel:int ->
  ?kind:Llvm_exec.Engine.kind ->
  ?input:string * int ->
  ?profile:Llvm_profile.Profile.t ->
  Llvm_ir.Ir.modul ->
  Llvm_exec.Interp.run_result * Llvm_profile.Profile.t * int

(** [simulate ~dir ~schedule m] runs the program once per distinct
    [(input, weight)] of the schedule, persists each run's profile
    under [dir] ([run<input>.llpf]), and merges the re-loaded files
    into the weighted aggregate.  Order-independent by construction. *)
val simulate :
  ?fuel:int ->
  ?kind:Llvm_exec.Engine.kind ->
  ?input_global:string ->
  dir:string ->
  schedule:(int * int) list ->
  Llvm_ir.Ir.modul ->
  report

(** A deterministic zipf-ish schedule over [distinct] inputs totalling
    roughly [total] simulated runs: a few dominant configurations and
    a long tail. *)
val zipf_schedule : distinct:int -> total:int -> (int * int) list

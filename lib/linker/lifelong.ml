(* The lifelong compilation pipeline of Figure 4:

     front-ends emit IR -> linker + IPO -> offline native codegen
       (bitcode embedded in the executable) -> run with lightweight
       profiling -> idle-time profile-guided reoptimizer -> rerun.

   The execution engine stands in for the native code: "performance" is
   reported as interpreted instruction counts, which respond to the same
   optimizations (fewer calls after inlining, fewer instructions after
   simplification) that native execution would. *)

open Llvm_ir
open Ir
open Llvm_transforms

type executable = {
  program : modul; (* the linked, optimized IR *)
  native_x86_bytes : int;
  native_sparc_bytes : int;
  bitcode : string; (* persistent IR shipped alongside native code *)
}

type run_report = {
  result : Llvm_exec.Interp.run_result;
  profile : Llvm_exec.Interp.profile;
  promoted : (string * int) list;
      (* functions the tiered engine compiled to bytecode mid-run, with
         the entry count that triggered each promotion *)
}

type reoptimization = {
  hot_functions : (string * int) list; (* entry counts from the field *)
  inlined_hot_calls : int;
  before_instrs : int;
  after_instrs : int;
}

(* Compile-and-link: the static half of the pipeline. *)
let build ?(ipo = true) (modules : modul list) : executable =
  let program = Link.link modules in
  Link.internalize program;
  if ipo then ignore (Pass.run_sequence Pipelines.link_time_ipo program);
  let bitcode, _ = Llvm_bitcode.Encoder.encode ~strip:true program in
  { program;
    native_x86_bytes = Llvm_codegen.Emit.code_size Llvm_codegen.Target.x86ish program;
    native_sparc_bytes =
      Llvm_codegen.Emit.code_size Llvm_codegen.Target.sparcish program;
    bitcode }

(* An end-user run with the lightweight instrumentation enabled
   (section 3.5), under the tiered engine: execution starts in the
   interpreter and the profile instrumentation that feeds the
   reoptimizer also drives hot-function promotion to bytecode. *)
let run_in_the_field ?fuel ?profile (exe : executable) : run_report =
  let e = Llvm_exec.Engine.create ?profile Llvm_exec.Engine.Tiered exe.program in
  let result =
    match find_func exe.program "main" with
    | Some main -> Llvm_exec.Interp.run_function ?fuel e.Llvm_exec.Engine.mach main []
    | None ->
      { Llvm_exec.Interp.status = `Trapped "no main function"; output = "";
        instructions = 0 }
  in
  { result;
    profile =
      { Llvm_exec.Interp.counts =
          e.Llvm_exec.Engine.mach.Llvm_exec.Interp.block_counts };
    promoted = Llvm_exec.Engine.promotions e }

let hot_functions (exe : executable) (report : run_report) :
    (string * int) list =
  List.filter_map
    (fun f ->
      if is_declaration f then None
      else
        let n = Llvm_exec.Interp.func_count report.profile f in
        if n > 0 then Some (f.fname, n) else None)
    exe.program.mfuncs
  (* count descending, ties by name, so reports are stable across runs *)
  |> List.sort (fun (na, a) (nb, b) ->
         if a <> b then compare b a else compare na nb)

(* The idle-time reoptimizer (section 3.6): "a modified version of the
   link-time interprocedural optimizer, but with a greater emphasis on
   profile-driven ... optimizations".  Here: call sites residing in hot
   blocks are inlined regardless of the static inliner's size budget,
   then the usual cleanup pipeline reruns. *)
let reoptimize_with_profile ?(hot_threshold = 100) (exe : executable)
    (report : run_report) : reoptimization =
  let m = exe.program in
  let before_instrs = module_instr_count m in
  let hot = hot_functions exe report in
  let inlined = ref 0 in
  let continue_ = ref true in
  let rounds = ref 0 in
  while !continue_ && !rounds < 4 do
    continue_ := false;
    incr rounds;
    List.iter
      (fun caller ->
        if not (is_declaration caller) then begin
          let site = ref None in
          iter_instrs
            (fun i ->
              if !site = None && (i.iop = Call || i.iop = Invoke) then
                match (i.iparent, call_callee i) with
                | Some blk, Vfunc callee
                  when (not (is_declaration callee))
                       && (not (callee == caller))
                       && Llvm_exec.Interp.block_count report.profile blk
                          >= hot_threshold
                       && instr_count callee <= 400 ->
                  (* recursive callees are cloned once, not expanded *)
                  let cg = Llvm_analysis.Callgraph.compute m in
                  if not (Llvm_analysis.Callgraph.is_recursive cg callee) then
                    site := Some i
                | _ -> ())
            caller;
          match !site with
          | Some i ->
            if Inline.inline_call_site caller i then begin
              incr inlined;
              continue_ := true
            end
          | None -> ()
        end)
      m.mfuncs
  done;
  ignore (Pass.run_sequence Pipelines.per_module m);
  ignore (Pass.run_pass Dge.pass m);
  { hot_functions = hot;
    inlined_hot_calls = !inlined;
    before_instrs;
    after_instrs = module_instr_count m }

(* The fleet-scale half of the reoptimizer: a merged cross-run
   aggregate ({!Fleet.simulate}) drives speculative indirect-call
   promotion plus profile-guided inlining, then the cleanup pipeline
   reruns and the executable's persistent bitcode is refreshed — the
   next field runs download the reoptimized image. *)
let reoptimize_with_aggregate ?min_count ?min_share (exe : executable)
    (p : Llvm_profile.Profile.t) : executable * Llvm_transforms.Pgo.stats =
  let stats = Pgo.optimize ?min_count ?min_share p exe.program in
  ignore (Pass.run_sequence Pipelines.per_module exe.program);
  let bitcode, _ = Llvm_bitcode.Encoder.encode ~strip:true exe.program in
  ( { exe with
      bitcode;
      native_x86_bytes =
        Llvm_codegen.Emit.code_size Llvm_codegen.Target.x86ish exe.program;
      native_sparc_bytes =
        Llvm_codegen.Emit.code_size Llvm_codegen.Target.sparcish exe.program },
    stats )

(* The fleet simulator: thousands of heterogeneous end-user runs of one
   executable, each with the section 3.5 instrumentation on, each
   persisting its profile to disk; the per-run profiles are then merged
   — weighted by how many simulated machines saw that input — into the
   one aggregate that drives reoptimization (section 4.1).

   Heterogeneity comes from an integer "environment input" poked into a
   named global before main runs (the genprog dispatchers key their
   function-pointer selection on it).  Distinct inputs are executed
   once and weighted, so simulating a fleet of thousands costs only as
   many executions as there are distinct inputs.

   The merge goes through the on-disk binary format both ways — every
   aggregate is built from profiles that were actually written to and
   re-read from disk, the same path field data would take. *)

open Llvm_ir
open Ir
module Profile = Llvm_profile.Profile

type run = {
  input : int; (* the value poked into the environment global *)
  weight : int; (* simulated machines that executed this input *)
  result : Llvm_exec.Interp.run_result;
  deopts : int;
  file : string; (* where this run's profile persists *)
}

type report = {
  simulated : int; (* total weighted runs *)
  executed : int; (* distinct instrumented executions *)
  runs : run list; (* in schedule order *)
  aggregate : Profile.t;
}

let default_fuel = 1_000_000_000

(* Poke [value] into the int global [name], if the program has one.
   The machine's globals are already materialized, so this is a plain
   store over the initializer — exactly an environment variable read at
   startup. *)
let poke_input (mach : Llvm_exec.Interp.machine) (m : modul) (name : string)
    (value : int) : unit =
  match find_gvar m name with
  | None -> ()
  | Some g -> (
    match Hashtbl.find_opt mach.Llvm_exec.Interp.globals g.gid with
    | None -> ()
    | Some addr ->
      Llvm_exec.Interp.store_sized mach addr ~size:4
        (Llvm_exec.Interp.Rint (Ltype.Int, Int64.of_int value)))

(* One simulated end-user run: instrumented, under the given engine
   kind (the field default is [Tiered]), optionally with a per-run
   input.  Returns the observable result plus the run's own profile. *)
let field_run ?(fuel = default_fuel) ?(kind = Llvm_exec.Engine.Tiered)
    ?input ?profile (m : modul) :
    Llvm_exec.Interp.run_result * Profile.t * int =
  let e = Llvm_exec.Engine.create ~profiling:true ?profile kind m in
  let mach = e.Llvm_exec.Engine.mach in
  (match input with
  | Some (name, v) -> poke_input mach m name v
  | None -> ());
  let result =
    match find_func m "main" with
    | Some main -> Llvm_exec.Interp.run_function ~fuel mach main []
    | None ->
      { Llvm_exec.Interp.status = `Trapped "no main function"; output = "";
        instructions = 0 }
  in
  let p =
    Profile.of_run m ~block_counts:mach.Llvm_exec.Interp.block_counts
      ~call_counts:mach.Llvm_exec.Interp.call_counts
  in
  (result, p, Llvm_exec.Engine.deopts e)

let rec ensure_dir (dir : string) : unit =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    Sys.mkdir dir 0o755
  end

(* Simulate a fleet: for every [(input, weight)] of the schedule, run
   the program once with that input, persist the run's profile under
   [dir], then re-load every file and fold it into the aggregate with
   its weight.  The aggregate is independent of schedule order by
   construction (saturating weighted merge). *)
let simulate ?fuel ?kind ?(input_global = "fleet_input") ~(dir : string)
    ~(schedule : (int * int) list) (m : modul) : report =
  ensure_dir dir;
  let runs =
    List.map
      (fun (input, weight) ->
        let result, p, deopts =
          field_run ?fuel ?kind ~input:(input_global, input) m
        in
        let file = Filename.concat dir (Printf.sprintf "run%d.llpf" input) in
        Profile.save file p;
        { input; weight; result; deopts; file })
      schedule
  in
  let aggregate = Profile.empty () in
  List.iter
    (fun r -> Profile.merge ~weight:r.weight aggregate (Profile.load r.file))
    runs;
  { simulated = List.fold_left (fun acc r -> acc + r.weight) 0 runs;
    executed = List.length runs;
    runs;
    aggregate }

(* A deterministic zipf-ish schedule over [distinct] inputs totalling
   roughly [total] runs: input k gets total/(k+1) machines — a few
   dominant configurations and a long tail, the shape fleets have. *)
let zipf_schedule ~(distinct : int) ~(total : int) : (int * int) list =
  let harmonic = ref 0.0 in
  for k = 1 to distinct do
    harmonic := !harmonic +. (1.0 /. float_of_int k)
  done;
  List.init distinct (fun k ->
      let share = 1.0 /. (float_of_int (k + 1) *. !harmonic) in
      (k + 1, max 1 (int_of_float (share *. float_of_int total))))

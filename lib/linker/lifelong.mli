(** The lifelong compilation pipeline of Figure 4: front-ends emit IR,
    the linker + IPO combine it, native code is generated offline with
    the bitcode preserved in the executable, end-user runs are profiled
    (section 3.5), and an idle-time reoptimizer applies profile-guided
    transformations (section 3.6). *)

type executable = {
  program : Llvm_ir.Ir.modul;  (** the linked, optimized IR *)
  native_x86_bytes : int;
  native_sparc_bytes : int;
  bitcode : string;  (** persistent IR shipped alongside native code *)
}

type run_report = {
  result : Llvm_exec.Interp.run_result;
  profile : Llvm_exec.Interp.profile;
  promoted : (string * int) list;
      (** functions the tiered engine compiled to bytecode mid-run, with
          the entry count that triggered each promotion *)
}

type reoptimization = {
  hot_functions : (string * int) list;
  inlined_hot_calls : int;
  before_instrs : int;
  after_instrs : int;
}

(** Link, internalize, optionally run link-time IPO, and generate the
    native images + the preserved bitcode. *)
val build : ?ipo:bool -> Llvm_ir.Ir.modul list -> executable

(** One end-user run with the lightweight profiling instrumentation,
    under the tiered engine: interpretation plus hot-function promotion
    to bytecode.  With [profile], an earlier aggregate drives hot/cold
    block layout in the bytecode tier. *)
val run_in_the_field :
  ?fuel:int -> ?profile:Llvm_profile.Profile.t -> executable -> run_report

val hot_functions : executable -> run_report -> (string * int) list

(** The idle-time reoptimizer: inline call sites residing in
    profile-hot blocks (entry count >= [hot_threshold]) regardless of
    the static inliner's size budget, then rerun the cleanup pipeline. *)
val reoptimize_with_profile :
  ?hot_threshold:int -> executable -> run_report -> reoptimization

(** The fleet-scale reoptimizer: a merged cross-run aggregate
    ({!Fleet.simulate}) drives speculative call promotion with deopt
    guards plus profile-guided inlining ({!Llvm_transforms.Pgo}), the
    cleanup pipeline reruns, and the persistent bitcode and native
    images are refreshed. *)
val reoptimize_with_aggregate :
  ?min_count:int ->
  ?min_share:float ->
  executable ->
  Llvm_profile.Profile.t ->
  executable * Llvm_transforms.Pgo.stats

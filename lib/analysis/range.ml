(* Sparse, branch-aware interprocedural value-range analysis.

   An interval domain over the canonical integer representation the
   rest of the compiler uses ([Ir.normalize_int]: sign-extended bit
   patterns for signed kinds, zero-extended for unsigned).  Intervals
   are ordered as signed int64, which agrees with every kind's natural
   value order except Ulong; Ulong facts are therefore only derived
   while the interval stays within [0, max_int].

   The analysis is sparse and optimistic: a worklist over def-use
   chains starts every register at bottom and only grows it, with
   per-register widening counters (aggressive at loop-header phis,
   identified through {!Loops}) followed by two descending sweeps that
   recover precision lost to widening.  Branch conditions refine the
   ranges seen in dominated blocks: each block carries a chain of
   guard facts accumulated down the dominator tree, and phi inputs are
   refined per incoming edge.  Argument and return ranges propagate
   across the call graph in callee-first SCC order ({!Callgraph});
   address-taken, external, and externally-visible functions get full
   argument ranges. *)

open Llvm_ir
open Ir

(* ---------- the interval domain ---------- *)

type interval = Bot | Itv of int64 * int64

let top = Itv (Int64.min_int, Int64.max_int)
let singleton n = Itv (n, n)
let min64 (a : int64) (b : int64) = if a <= b then a else b
let max64 (a : int64) (b : int64) = if a >= b then a else b

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Itv (a1, b1), Itv (a2, b2) -> Itv (min64 a1 a2, max64 b1 b2)

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (a1, b1), Itv (a2, b2) ->
    let lo = max64 a1 a2 and hi = min64 b1 b2 in
    if lo > hi then Bot else Itv (lo, hi)

let subset a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Bot -> false
  | Itv (a1, b1), Itv (a2, b2) -> a1 >= a2 && b1 <= b2

let contains i (n : int64) =
  match i with Bot -> false | Itv (a, b) -> a <= n && n <= b

let is_singleton = function Itv (a, b) when a = b -> Some a | _ -> None

let pp_interval ppf = function
  | Bot -> Fmt.string ppf "empty"
  | Itv (a, b) ->
    if a = b then Fmt.pf ppf "[%Ld]" a else Fmt.pf ppf "[%Ld,%Ld]" a b

(* ---------- integer kinds ---------- *)

type ikind = Kbool | Kint of Ltype.int_kind

let kind_range (k : Ltype.int_kind) : int64 * int64 =
  let bits = Ltype.int_bits k in
  if bits = 64 then (Int64.min_int, Int64.max_int)
  else if Ltype.is_signed k then
    ( Int64.neg (Int64.shift_left 1L (bits - 1)),
      Int64.sub (Int64.shift_left 1L (bits - 1)) 1L )
  else (0L, Int64.sub (Int64.shift_left 1L bits) 1L)

let bounds_of = function Kbool -> (0L, 1L) | Kint k -> kind_range k

let full_of k =
  let lo, hi = bounds_of k in
  Itv (lo, hi)

let full_of_kind k = full_of (Kint k)
let clamp k i = meet i (full_of k)

(* Interval rules below compare representations as signed int64; that
   order is wrong for Ulong values past max_int, so bail out there. *)
let order_ok k (i : interval) =
  match (k, i) with
  | Kint Ltype.Ulong, Itv (lo, _) -> lo >= 0L
  | _ -> true

let kind_of_ty (table : Ltype.table) (ty : Ltype.t) : ikind option =
  match try Some (Ltype.resolve table ty) with Ltype.Unresolved _ -> None with
  | Some Ltype.Bool -> Some Kbool
  | Some (Ltype.Integer k) -> Some (Kint k)
  | _ -> None

(* ---------- overflow-checked 64-bit corner arithmetic ---------- *)

let add_ck a b =
  let s = Int64.add a b in
  if a >= 0L = (b >= 0L) && s >= 0L <> (a >= 0L) then None else Some s

let sub_ck a b =
  let s = Int64.sub a b in
  if a >= 0L <> (b >= 0L) && s >= 0L <> (a >= 0L) then None else Some s

let mul_ck a b =
  if a = 0L || b = 0L then Some 0L
  else if a = Int64.min_int || b = Int64.min_int then None
  else
    let p = Int64.mul a b in
    if Int64.div p b = a then Some p else None

let corner_itv corners =
  if List.exists (fun c -> c = None) corners then None
  else
    let vs = List.filter_map Fun.id corners in
    let lo = List.fold_left min64 (List.hd vs) vs in
    let hi = List.fold_left max64 (List.hd vs) vs in
    Some (Itv (lo, hi))

(* The mathematical (unwrapped) result of an arithmetic op on two
   intervals; [None] when a bound escapes int64.  This is what the
   signed-overflow checker compares against the kind's range. *)
let exact_binop (op : opcode) (x : interval) (y : interval) : interval option =
  match (x, y) with
  | Bot, _ | _, Bot -> Some Bot
  | Itv (a, b), Itv (c, d) -> (
    match op with
    | Add -> corner_itv [ add_ck a c; add_ck b d ]
    | Sub -> corner_itv [ sub_ck a d; sub_ck b c ]
    | Mul -> corner_itv [ mul_ck a c; mul_ck a d; mul_ck b c; mul_ck b d ]
    | _ -> None)

let div_ck a b =
  if b = 0L then None
  else if a = Int64.min_int && b = -1L then None
  else Some (Int64.div a b)

(* Shrink a divisor interval away from zero where an endpoint allows:
   on any execution that completes, the divisor was nonzero. *)
let divisor_nonzero = function
  | Bot -> Bot
  | Itv (0L, 0L) -> Bot
  | Itv (0L, d) -> Itv (1L, d)
  | Itv (c, 0L) -> Itv (c, -1L)
  | i -> i

(* Smallest value of the form 2^k - 1 that is >= v (v nonneg). *)
let ceil_pow2m1 (v : int64) : int64 =
  let x = ref 0L in
  while !x < v do
    x := Int64.add (Int64.mul !x 2L) 1L
  done;
  !x

let ibinop (k : ikind) (op : opcode) (x : interval) (y : interval) : interval =
  let full = full_of k in
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | Itv (a, b), Itv (c, d) ->
    if not (order_ok k x && order_ok k y) then full
    else
      let wrap r = if subset r full then r else full in
      let signed = match k with Kint kk -> Ltype.is_signed kk | Kbool -> false in
      let bits = match k with Kint kk -> Ltype.int_bits kk | Kbool -> 1 in
      (match op with
      | Add | Sub | Mul -> (
        match exact_binop op x y with Some r -> wrap r | None -> full)
      | Div -> (
        match divisor_nonzero y with
        | Bot -> Bot
        | Itv (c, d) when c > 0L || d < 0L -> (
          match corner_itv [ div_ck a c; div_ck a d; div_ck b c; div_ck b d ] with
          | Some r -> wrap r
          | None -> full)
        | _ -> full)
      | Rem -> (
        match divisor_nonzero y with
        | Bot -> Bot
        | Itv (c, d) ->
          if c = Int64.min_int then full
          else
            let m = Int64.sub (max64 (Int64.abs c) (Int64.abs d)) 1L in
            let lo = if a >= 0L then 0L else max64 a (Int64.neg m) in
            let hi = if b <= 0L then 0L else min64 b m in
            wrap (Itv (lo, hi)))
      | And ->
        (* clearing bits of a nonnegative value can only shrink it *)
        let r = full in
        let r = if a >= 0L then meet r (Itv (0L, b)) else r in
        let r = if c >= 0L then meet r (Itv (0L, d)) else r in
        r
      | Or | Xor ->
        if a >= 0L && c >= 0L then
          let hi = ceil_pow2m1 (max64 b d) in
          if op = Or then wrap (Itv (max64 a c, hi)) else wrap (Itv (0L, hi))
        else full
      | Shl ->
        if c >= 0L && d < Int64.of_int bits && d <= 62L then
          let factor =
            Itv
              ( Int64.shift_left 1L (Int64.to_int c),
                Int64.shift_left 1L (Int64.to_int d) )
          in
          (match exact_binop Mul x factor with Some r -> wrap r | None -> full)
        else full
      | Shr ->
        if c >= 0L && d < Int64.of_int bits && (signed || a >= 0L) then
          let sc = Int64.to_int c and sd = Int64.to_int d in
          match
            corner_itv
              [
                Some (Int64.shift_right a sc);
                Some (Int64.shift_right a sd);
                Some (Int64.shift_right b sc);
                Some (Int64.shift_right b sd);
              ]
          with
          | Some r -> wrap r
          | None -> full
        else full
      | _ -> full)

let cmp_op (k : ikind) (op : opcode) (x : interval) (y : interval) : interval =
  let unknown = Itv (0L, 1L) in
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | Itv (a, b), Itv (c, d) ->
    if not (order_ok k x && order_ok k y) then unknown
    else
      let t = singleton 1L and f = singleton 0L in
      (match op with
      | SetEQ ->
        if a = b && c = d && a = c then t
        else if b < c || d < a then f
        else unknown
      | SetNE ->
        if a = b && c = d && a = c then f
        else if b < c || d < a then t
        else unknown
      | SetLT -> if b < c then t else if a >= d then f else unknown
      | SetLE -> if b <= c then t else if a > d then f else unknown
      | SetGT -> if a > d then t else if b <= c then f else unknown
      | SetGE -> if a >= d then t else if b < c then f else unknown
      | _ -> unknown)

(* Casts preserve the canonical representation whenever the source
   interval already fits the target kind (including same-width sign
   reinterpretation); otherwise the result may wrap arbitrarily. *)
let cast_to (k : ikind) (x : interval) : interval =
  match k with
  | Kbool -> (
    match x with
    | Bot -> Bot
    | Itv (a, b) ->
      if a = 0L && b = 0L then singleton 0L
      else if a > 0L || b < 0L then singleton 1L
      else Itv (0L, 1L))
  | Kint _ -> (
    match x with
    | Bot -> Bot
    | _ -> if subset x (full_of k) then x else full_of k)

let rec const_interval (table : Ltype.table) (c : const) : interval =
  match c with
  | Cbool b -> singleton (if b then 1L else 0L)
  | Cint (ty, v) -> (
    match kind_of_ty table ty with
    | Some (Kint k) -> singleton (normalize_int k v)
    | Some Kbool -> singleton (if v = 0L then 0L else 1L)
    | None -> singleton v)
  | Czero ty -> (
    match kind_of_ty table ty with Some _ -> singleton 0L | None -> top)
  | Ccast (ty, c') -> (
    match kind_of_ty table ty with
    | Some k -> cast_to k (const_interval table c')
    | None -> top)
  | Cundef _ | Cnull _ | Cfloat _ | Cgvar _ | Cfunc _ | Carray _ | Cstruct _ ->
    top

(* ---------- guard facts ---------- *)

type fact =
  | Fcmp of instr * bool  (** this comparison took the given truth value *)
  | Feq of value * int64  (** unique switch case: value equals constant *)

let negate_cmp = function
  | SetEQ -> SetNE
  | SetNE -> SetEQ
  | SetLT -> SetGE
  | SetGE -> SetLT
  | SetGT -> SetLE
  | SetLE -> SetGT
  | op -> op

let swap_cmp = function
  | SetLT -> SetGT
  | SetGT -> SetLT
  | SetLE -> SetGE
  | SetGE -> SetLE
  | op -> op

(* Values of v compatible with "v op y" for some y in the interval. *)
let constrain_by (op : opcode) (y : interval) : interval =
  match y with
  | Bot -> Bot
  | Itv (c, d) -> (
    match op with
    | SetEQ -> Itv (c, d)
    | SetLT -> if d = Int64.min_int then Bot else Itv (Int64.min_int, Int64.pred d)
    | SetLE -> Itv (Int64.min_int, d)
    | SetGT -> if c = Int64.max_int then Bot else Itv (Int64.succ c, Int64.max_int)
    | SetGE -> Itv (c, Int64.max_int)
    | _ -> top)

let shave_endpoint iv n =
  match iv with
  | Itv (a, b) when a = n && b = n -> Bot
  | Itv (a, b) when a = n -> Itv (Int64.succ a, b)
  | Itv (a, b) when b = n -> Itv (a, Int64.pred b)
  | _ -> iv

let const_int_value = function
  | Cint (_, v) -> Some v
  | Cbool b -> Some (if b then 1L else 0L)
  | _ -> None

(* The fact established by executing the edge src -> dst, valid for
   values computed before src's terminator. *)
let edge_fact (src : block) (dst : block) : fact option =
  match terminator src with
  | Some { iop = Br; operands = [| cond; Vblock tb; Vblock fb |]; _ }
    when tb != fb -> (
    match cond with
    | Vinstr ci when is_comparison ci.iop ->
      if dst == tb then Some (Fcmp (ci, true))
      else if dst == fb then Some (Fcmp (ci, false))
      else None
    | _ -> None)
  | Some ({ iop = Switch; _ } as sw) -> (
    let deflt = as_block sw.operands.(1) in
    if dst == deflt then None
    else
      match List.filter (fun (_, b) -> b == dst) (switch_cases sw) with
      | [ (c, _) ] -> (
        match const_int_value c with
        | Some n -> Some (Feq (sw.operands.(0), n))
        | None -> None)
      | _ -> None)
  | _ -> None

(* ---------- analysis state ---------- *)

type finfo = {
  dom : Dominance.t;
  chains : (int, fact list) Hashtbl.t;  (** block id -> facts on entry *)
  headers : (int, unit) Hashtbl.t;  (** loop-header block ids *)
  refine_deps : (int, instr list) Hashtbl.t;
      (** guard-operand value id -> instructions to requeue *)
}

type t = {
  table : Ltype.table;
  env : (int, interval) Hashtbl.t;  (** iid / aid / fid -> interval *)
  bumps : (int, int) Hashtbl.t;
  finfos : (int, finfo) Hashtbl.t;
}

let lookup t id =
  match Hashtbl.find_opt t.env id with Some i -> i | None -> Bot

let value_id = function
  | Vinstr i -> Some i.iid
  | Varg a -> Some a.aid
  | _ -> None

let kind_of_value (t : t) (v : value) : ikind option =
  match
    try Some (type_of t.table v) with
    | Ltype.Unresolved _ | Invalid_argument _ -> None
  with
  | Some ty -> kind_of_ty t.table ty
  | None -> None

(* Base range, before any guard refinement.  [Bot] on a tracked value
   means no execution reaches its definition. *)
let base_range (t : t) (v : value) : interval =
  match v with
  | Vconst c -> const_interval t.table c
  | Vinstr i -> (
    match kind_of_ty t.table i.ity with Some _ -> lookup t i.iid | None -> top)
  | Varg a -> (
    match kind_of_ty t.table a.aty with Some _ -> lookup t a.aid | None -> top)
  | Vglobal _ | Vfunc _ | Vblock _ -> top

let refine_fact (t : t) (fact : fact) (v : value) (iv : interval) : interval =
  match fact with
  | Feq (x, n) -> if value_equal x v then meet iv (singleton n) else iv
  | Fcmp (ci, taken) ->
    if Array.length ci.operands <> 2 then iv
    else
      let op = if taken then ci.iop else negate_cmp ci.iop in
      let apply op other =
        match kind_of_value t other with
        | None -> iv
        | Some k ->
          let oiv = base_range t other in
          if not (order_ok k iv && order_ok k oiv) then iv
          else (
            match (op, is_singleton oiv) with
            | SetNE, Some n -> shave_endpoint iv n
            | _ -> meet iv (constrain_by op oiv))
      in
      if value_equal ci.operands.(0) v then apply op ci.operands.(1)
      else if value_equal ci.operands.(1) v then
        apply (swap_cmp op) ci.operands.(0)
      else iv

let refine_chain t chain v iv =
  List.fold_left (fun acc fa -> refine_fact t fa v acc) iv chain

let chain_of fi (b : block) =
  match Hashtbl.find_opt fi.chains b.bid with Some c -> c | None -> []

let range_in t fi (b : block) (v : value) : interval =
  refine_chain t (chain_of fi b) v (base_range t v)

(* ---------- per-function setup ---------- *)

let build_finfo (f : func) : finfo =
  let dom = Dominance.compute f in
  let chains = Hashtbl.create 16 in
  let headers = Hashtbl.create 4 in
  List.iter
    (fun (l : Loops.loop) -> Hashtbl.replace headers l.Loops.header.bid ())
    (Loops.find_loops dom f);
  (if f.fblocks <> [] then
     let entry = entry_block f in
     let rec walk (b : block) (inherited : fact list) =
       let facts =
         if b == entry then inherited
         else
           match predecessors b with
           | [ p ] -> (
             match edge_fact p b with
             | Some fa -> fa :: inherited
             | None -> inherited)
           | _ -> inherited
       in
       Hashtbl.replace chains b.bid facts;
       List.iter (fun c -> walk c facts) (Dominance.children dom b)
     in
     walk entry []);
  (* Guard refinement adds dependencies that are not def-use edges:
     when a compared value's range grows, every instruction evaluated
     under that guard must be reconsidered. *)
  let refine_deps = Hashtbl.create 16 in
  let add_dep id i =
    let cur =
      match Hashtbl.find_opt refine_deps id with Some l -> l | None -> []
    in
    Hashtbl.replace refine_deps id (i :: cur)
  in
  let fact_dep_ids = function
    | Fcmp (ci, _) when Array.length ci.operands = 2 ->
      List.filter_map value_id [ ci.operands.(0); ci.operands.(1) ]
    | _ -> []
  in
  List.iter
    (fun b ->
      let ids =
        List.concat_map fact_dep_ids
          (match Hashtbl.find_opt chains b.bid with Some c -> c | None -> [])
      in
      List.iter
        (fun i ->
          List.iter (fun id -> add_dep id i) ids;
          if i.iop = Phi then
            List.iter
              (fun (_, pred) ->
                let pfacts =
                  (match edge_fact pred b with Some fa -> [ fa ] | None -> [])
                  @
                  match Hashtbl.find_opt chains pred.bid with
                  | Some c -> c
                  | None -> []
                in
                List.iter
                  (fun fa -> List.iter (fun id -> add_dep id i) (fact_dep_ids fa))
                  pfacts)
              (phi_incoming i))
        b.instrs)
    f.fblocks;
  { dom; chains; headers; refine_deps }

(* ---------- transfer ---------- *)

let ev_at (t : t) fi (i : instr) (v : value) : interval =
  let here = match i.iparent with Some b -> chain_of fi b | None -> [] in
  refine_chain t here v (base_range t v)

let direct_callee (i : instr) : func option =
  match call_callee i with
  | Vfunc f -> Some f
  | Vconst (Cfunc f) -> Some f
  | Vconst (Ccast (_, Cfunc f)) -> Some f
  | _ -> None

let transfer (t : t) fi (i : instr) : interval =
  let ev v = ev_at t fi i v in
  let rkind = kind_of_ty t.table i.ity in
  match i.iop with
  | Phi -> (
    match i.iparent with
    | None -> Bot
    | Some b ->
      List.fold_left
        (fun acc (v, pred) ->
          if not (Dominance.is_reachable fi.dom pred) then acc
          else
            let chain =
              (match edge_fact pred b with Some fa -> [ fa ] | None -> [])
              @ chain_of fi pred
            in
            join acc (refine_chain t chain v (base_range t v)))
        Bot (phi_incoming i))
  | Cast -> (
    match rkind with Some k -> cast_to k (ev i.operands.(0)) | None -> top)
  | Select -> (
    match ev i.operands.(0) with
    | Bot -> Bot
    | Itv (1L, 1L) -> ev i.operands.(1)
    | Itv (0L, 0L) -> ev i.operands.(2)
    | _ -> join (ev i.operands.(1)) (ev i.operands.(2)))
  | op when is_binary op -> (
    match rkind with
    | Some k -> ibinop k op (ev i.operands.(0)) (ev i.operands.(1))
    | None -> top)
  | op when is_comparison op -> (
    match kind_of_value t i.operands.(0) with
    | Some k -> cmp_op k op (ev i.operands.(0)) (ev i.operands.(1))
    | None -> Itv (0L, 1L))
  | _ -> ( match rkind with Some k -> full_of k | None -> top)

(* ---------- fixpoint ---------- *)

let widen_default = 8
let widen_loop = 3

let raise_value (t : t) ?(threshold = widen_default) (k : ikind option)
    (id : int) (nv : interval) : bool =
  let old = lookup t id in
  let merged = join old nv in
  let merged = match k with Some k -> clamp k merged | None -> merged in
  if merged = old then false
  else begin
    let n =
      (match Hashtbl.find_opt t.bumps id with Some n -> n | None -> 0) + 1
    in
    Hashtbl.replace t.bumps id n;
    let widened =
      if n <= threshold then merged
      else
        match (old, merged) with
        | Itv (oa, ob), Itv (na, nb) ->
          let flo, fhi =
            match k with
            | Some k -> bounds_of k
            | None -> (Int64.min_int, Int64.max_int)
          in
          Itv ((if na < oa then flo else na), (if nb > ob then fhi else nb))
        | _ -> merged
    in
    Hashtbl.replace t.env id widened;
    true
  end

let arg_summaries_tracked (f : func) =
  f.flinkage = Internal && not (Callgraph.address_taken f)

(* Safe fallback when an iteration budget trips: force every summary
   the function influences to full, which is trivially sound. *)
let poison_function (t : t) (cg : Callgraph.t) ~enqueue (f : func) : unit =
  (match kind_of_ty t.table f.freturn with
  | Some k ->
    Hashtbl.replace t.env f.fid (full_of k);
    List.iter enqueue (Callgraph.node cg f).Callgraph.callers
  | None -> ());
  iter_instrs
    (fun i ->
      (match kind_of_ty t.table i.ity with
      | Some k -> Hashtbl.replace t.env i.iid (full_of k)
      | None -> ());
      match i.iop with
      | Call | Invoke -> (
        match direct_callee i with
        | Some callee when not (is_declaration callee) ->
          List.iter
            (fun a ->
              match kind_of_ty t.table a.aty with
              | Some k -> Hashtbl.replace t.env a.aid (full_of k)
              | None -> ())
            callee.fargs;
          enqueue callee
        | _ -> ())
      | _ -> ())
    f

let analyze_function (t : t) (cg : Callgraph.t) ~enqueue (f : func) : unit =
  let fi =
    match Hashtbl.find_opt t.finfos f.fid with
    | Some fi -> fi
    | None ->
      let fi = build_finfo f in
      Hashtbl.replace t.finfos f.fid fi;
      fi
  in
  let work = Queue.create () in
  let queued = Hashtbl.create 64 in
  let push (i : instr) =
    if not (Hashtbl.mem queued i.iid) then begin
      Hashtbl.replace queued i.iid ();
      Queue.add i work
    end
  in
  List.iter (fun b -> List.iter push b.instrs) (Cfg.reverse_postorder f);
  let ret_kind = kind_of_ty t.table f.freturn in
  let threshold_for (i : instr) =
    match i.iparent with
    | Some b when i.iop = Phi && Hashtbl.mem fi.headers b.bid -> widen_loop
    | _ -> widen_default
  in
  let push_users (i : instr) =
    List.iter (fun u -> push u.user) i.iuses;
    match Hashtbl.find_opt fi.refine_deps i.iid with
    | Some l -> List.iter push l
    | None -> ()
  in
  let guard = ref 0 in
  let limit = 2000 * (instr_count f + 8) in
  while not (Queue.is_empty work) && !guard < limit do
    incr guard;
    let i = Queue.pop work in
    Hashtbl.remove queued i.iid;
    match i.iop with
    | Ret -> (
      if Array.length i.operands = 1 then
        match ret_kind with
        | Some k ->
          if raise_value t ~threshold:5 (Some k) f.fid (ev_at t fi i i.operands.(0))
          then List.iter enqueue (Callgraph.node cg f).Callgraph.callers
        | None -> ())
    | Call | Invoke ->
      (match direct_callee i with
      | Some callee when (not (is_declaration callee)) && arg_summaries_tracked callee ->
        let rec feed formals actuals =
          match (formals, actuals) with
          | [], _ -> ()
          | fa :: ftl, [] ->
            (* malformed short call: give up on this formal *)
            (match kind_of_ty t.table fa.aty with
            | Some k ->
              if raise_value t ~threshold:5 (Some k) fa.aid (full_of k) then
                enqueue callee
            | None -> ());
            feed ftl []
          | fa :: ftl, aa :: atl ->
            (match kind_of_ty t.table fa.aty with
            | Some k ->
              if raise_value t ~threshold:5 (Some k) fa.aid (ev_at t fi i aa)
              then enqueue callee
            | None -> ());
            feed ftl atl
        in
        feed callee.fargs (call_args i)
      | _ -> ());
      (match kind_of_ty t.table i.ity with
      | Some k ->
        let r =
          match direct_callee i with
          | Some callee when not (is_declaration callee) ->
            clamp k (lookup t callee.fid)
          | _ -> full_of k
        in
        if raise_value t ~threshold:(threshold_for i) (Some k) i.iid r then
          push_users i
      | None -> ())
    | Store | Free | Br | Switch | Unwind -> ()
    | _ -> (
      match kind_of_ty t.table i.ity with
      | Some k ->
        let r = transfer t fi i in
        if raise_value t ~threshold:(threshold_for i) (Some k) i.iid r then
          push_users i
      | None -> ())
  done;
  if !guard >= limit then poison_function t cg ~enqueue f

let poison_all (t : t) (defined : func list) : unit =
  List.iter
    (fun f ->
      (match kind_of_ty t.table f.freturn with
      | Some k -> Hashtbl.replace t.env f.fid (full_of k)
      | None -> ());
      List.iter
        (fun a ->
          match kind_of_ty t.table a.aty with
          | Some k -> Hashtbl.replace t.env a.aid (full_of k)
          | None -> ())
        f.fargs;
      iter_instrs
        (fun i ->
          match kind_of_ty t.table i.ity with
          | Some k -> Hashtbl.replace t.env i.iid (full_of k)
          | None -> ())
        f)
    defined

let analyze (m : modul) : t =
  let t =
    {
      table = m.mtypes;
      env = Hashtbl.create 256;
      bumps = Hashtbl.create 256;
      finfos = Hashtbl.create 16;
    }
  in
  let cg = Callgraph.compute m in
  let defined = List.filter (fun f -> not (is_declaration f)) m.mfuncs in
  (* Arguments we cannot see every call site of start at full.  An
     internal function with no callers at all is also seeded full: its
     code never executes, so any assumption is sound, and lint wants
     meaningful ranges there rather than an everything-is-Bot verdict. *)
  List.iter
    (fun f ->
      if
        (not (arg_summaries_tracked f))
        || (Callgraph.node cg f).Callgraph.callers = []
      then
        List.iter
          (fun a ->
            match kind_of_ty m.mtypes a.aty with
            | Some k -> Hashtbl.replace t.env a.aid (full_of k)
            | None -> ())
          f.fargs)
    defined;
  let pending = Queue.create () in
  let queued = Hashtbl.create 16 in
  let enqueue f =
    if (not (is_declaration f)) && not (Hashtbl.mem queued f.fid) then begin
      Hashtbl.replace queued f.fid ();
      Queue.add f pending
    end
  in
  List.iter (List.iter enqueue) (Callgraph.sccs cg);
  let cap = 40 * List.length defined + 64 in
  let rounds = ref 0 in
  while (not (Queue.is_empty pending)) && !rounds < cap do
    incr rounds;
    let f = Queue.pop pending in
    Hashtbl.remove queued f.fid;
    analyze_function t cg ~enqueue f
  done;
  if not (Queue.is_empty pending) then poison_all t defined
  else
    (* two descending sweeps recover precision lost to widening *)
    for _ = 1 to 2 do
      List.iter
        (fun f ->
          match Hashtbl.find_opt t.finfos f.fid with
          | None -> ()
          | Some fi ->
            List.iter
              (fun b ->
                List.iter
                  (fun i ->
                    match i.iop with
                    | Call | Invoke | Ret | Store | Free | Br | Switch
                    | Unwind ->
                      ()
                    | _ -> (
                      match kind_of_ty t.table i.ity with
                      | Some k ->
                        let v =
                          clamp k (meet (lookup t i.iid) (transfer t fi i))
                        in
                        Hashtbl.replace t.env i.iid v
                      | None -> ()))
                  b.instrs)
              (Cfg.reverse_postorder f))
        defined
    done;
  t

(* ---------- queries ---------- *)

let range_of (t : t) (v : value) : interval = base_range t v

let range_at (t : t) (b : block) (v : value) : interval =
  match b.bparent with
  | None -> base_range t v
  | Some f -> (
    match Hashtbl.find_opt t.finfos f.fid with
    | None -> base_range t v
    | Some fi -> range_in t fi b v)

let return_range (t : t) (f : func) : interval =
  match kind_of_ty t.table f.freturn with
  | Some _ -> lookup t f.fid
  | None -> top

let binop k op x y = ibinop (Kint k) op x y

(** Sparse, branch-aware interprocedural value-range analysis.

    Intervals over the canonical integer representation
    ({!Llvm_ir.Ir.normalize_int}), refined by [setcc]-guarded branch
    edges down the dominator tree, widened at loop-header phis and
    narrowed by descending sweeps, with argument/return ranges
    propagated across the call graph in callee-first SCC order.

    Consumed by the L008-L010 lint checkers, the bounds-check
    eliminator, the [rangeprop] pass, and the bytecode tier's
    guard-free fast operations. *)

(** Inclusive interval of canonical (normalized) values, ordered as
    signed int64.  [Bot] on a tracked value means no execution reaches
    its definition. *)
type interval = Bot | Itv of int64 * int64

val top : interval
val singleton : int64 -> interval
val join : interval -> interval -> interval
val meet : interval -> interval -> interval

(** [subset a b]: is [a] contained in [b]? *)
val subset : interval -> interval -> bool

val contains : interval -> int64 -> bool
val is_singleton : interval -> int64 option
val pp_interval : Format.formatter -> interval -> unit

(** Smallest and largest canonical value of an integer kind. *)
val kind_range : Llvm_ir.Ltype.int_kind -> int64 * int64

val full_of_kind : Llvm_ir.Ltype.int_kind -> interval

(** Kind-aware interval arithmetic: results that cannot be proven to
    stay inside the kind's range widen to the kind's full range. *)
val binop :
  Llvm_ir.Ltype.int_kind ->
  Llvm_ir.Ir.opcode ->
  interval ->
  interval ->
  interval

(** The mathematical (unwrapped) result of [Add]/[Sub]/[Mul] on two
    intervals; [None] when a bound escapes int64 or the opcode is not
    one of those three.  The signed-overflow checker compares this
    against {!kind_range}. *)
val exact_binop :
  Llvm_ir.Ir.opcode -> interval -> interval -> interval option

type t

(** Run the analysis over every defined function of the module. *)
val analyze : Llvm_ir.Ir.modul -> t

(** Flow-insensitive range of a value: valid wherever the value is. *)
val range_of : t -> Llvm_ir.Ir.value -> interval

(** Range of a value as observed inside a specific block, sharpened by
    the branch guards dominating that block. *)
val range_at : t -> Llvm_ir.Ir.block -> Llvm_ir.Ir.value -> interval

(** Joined range of every [ret] operand of a function. *)
val return_range : t -> Llvm_ir.Ir.func -> interval

(** A generic iterative dataflow engine over the implicit CFG: a
    worklist solver parameterized over the lattice, the direction, and
    the per-block transfer function.  Shared infrastructure for the
    lint checkers and flow-sensitive passes (paper sections 3.2-3.3). *)

type direction = Forward | Backward

module type LATTICE = sig
  type fact

  val bottom : fact
  (** Identity of [join]; also the fact of unvisited blocks. *)

  val equal : fact -> fact -> bool
  val join : fact -> fact -> fact
end

(** Fold an instruction-level transfer through a block in program
    order (or reverse); shared by block transfers and reporting walks. *)
val fold_block_forward :
  ('a -> Llvm_ir.Ir.instr -> 'a) -> Llvm_ir.Ir.block -> 'a -> 'a

val fold_block_backward :
  ('a -> Llvm_ir.Ir.instr -> 'a) -> Llvm_ir.Ir.block -> 'a -> 'a

module Make (L : LATTICE) : sig
  type result

  (** Fact at the block's entry, in program order. *)
  val before : result -> Llvm_ir.Ir.block -> L.fact

  (** Fact at the block's exit, in program order. *)
  val after : result -> Llvm_ir.Ir.block -> L.fact

  (** Solve to a fixpoint.  [boundary] is the fact entering the
      function (forward) or at every exit block (backward); [transfer]
      must be monotone.  The worklist is seeded in reverse postorder
      (forward) or postorder (backward); unreachable blocks keep
      [L.bottom]. *)
  val run :
    ?max_steps:int ->
    direction:direction ->
    boundary:L.fact ->
    transfer:(Llvm_ir.Ir.block -> L.fact -> L.fact) ->
    Llvm_ir.Ir.func ->
    result
end

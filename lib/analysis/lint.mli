(** llvm-lint: a dataflow-based static safety analyzer over the IR.

    A suite of memory-safety checkers built on the generic {!Dataflow}
    engine, extending the paper's static safety story (Table 1 / section
    4.1.2) from type safety to semantic memory safety.  Diagnostic
    codes are stable:

    - [L001] uninitialized load (forward must-init over tracked allocas,
      {!Modref}-aware across calls)
    - [L002] null dereference (SCCP-style constant/nullness reasoning)
    - [L003] use-after-free (must-freed {!Dsa} nodes)
    - [L004] double free (same analysis as L003)
    - [L005] memory leak (module-wide: malloc never freed, non-escaping)
    - [L006] dead store (backward liveness, {!Modref}-aware)
    - [L007] unreachable block
    - [L008] definite signed overflow ({!Range}-based)
    - [L009] division by a provably-zero value; shift amount provably
      outside the type's bit width
    - [L010] getelementptr array index provably out of bounds

    Diagnostics are deterministically ordered: by function name, block
    position, instruction position, then code. *)

type severity = Info | Warning | Error

val severity_rank : severity -> int
val severity_name : severity -> string
val severity_of_string : string -> severity option

type diag = {
  code : string;
  severity : severity;
  func : string;
  block : string;
  block_index : int;  (** position of the block within its function *)
  instr_index : int;  (** position within the block; -1 for block-level *)
  message : string;
}

(** The source-position order {!run} sorts by. *)
val compare_diag : diag -> diag -> int

(** Every diagnostic code paired with its short human name, in order. *)
val all_codes : (string * string) list

val pp_diag : Format.formatter -> diag -> unit

(** One-line JSON object (for editors and CI annotators). *)
val diag_to_json : diag -> string

(** Keep diagnostics at or above the given severity. *)
val filter_severity : severity -> diag list -> diag list

(** Findings per code, one entry for every code in {!all_codes}. *)
val count_by_code : diag list -> (string * int) list

(** Run every checker (or just those whose codes are in [only]) over the
    module's defined functions. *)
val run : ?only:string list -> Llvm_ir.Ir.modul -> diag list

val has_errors : diag list -> bool

(** {2 Exported facts}

    The same value abstraction the checkers use, for consumers like the
    bounds check eliminator. *)

(** The SCCP-style abstraction of a first-class value. *)
type absval = Vbot | Vint of int64 | Vnull | Vnonnull | Vundef | Vtop

type evaluator

val evaluator : Llvm_ir.Ltype.table -> evaluator

(** Abstract value of [v], memoized per evaluator (def-chains including
    phi cycles are handled). *)
val eval : evaluator -> Llvm_ir.Ir.value -> absval

(** [Some n] when [v] provably evaluates to the integer [n]. *)
val eval_int : Llvm_ir.Ltype.table -> Llvm_ir.Ir.value -> int64 option

(** [true] when [v] is provably the null pointer. *)
val proves_null : Llvm_ir.Ltype.table -> Llvm_ir.Ir.value -> bool

(** iids of loads proven to read never-initialized stack slots, across
    the whole module (L001's facts, consumed by {!Llvm_transforms}). *)
val undef_loads : Llvm_ir.Ir.modul -> (int, unit) Hashtbl.t

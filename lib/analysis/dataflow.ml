(* A generic iterative dataflow engine over the implicit CFG.

   The paper's "lifelong analysis" story rests on being able to run
   static analyses over the persistent IR at every stage of a program's
   lifetime (sections 3.2-3.3); this module supplies the shared
   machinery: a worklist solver parameterized over the lattice, the
   direction, and the per-block transfer function.  Clients include the
   lint checker suite and any flow-sensitive optimization pass.

   Facts are tracked at block granularity ([before] = fact at the block
   entry, [after] = fact at the block exit, both in *program* order
   regardless of analysis direction); checkers that need per-instruction
   facts re-walk a block's instructions from the block-level fact with
   the same instruction transfer they folded into the block transfer.

   The worklist is seeded in reverse postorder (forward analyses) or
   postorder (backward analyses), so acyclic regions converge in one
   sweep and loops in a handful.  Unreachable blocks are never visited:
   their facts stay at [bottom], which doubles as the "no information"
   element clients use to skip them. *)

open Llvm_ir
open Ir

type direction = Forward | Backward

module type LATTICE = sig
  type fact

  val bottom : fact
  (** Identity of [join]; also the initial fact of unvisited blocks. *)

  val equal : fact -> fact -> bool
  val join : fact -> fact -> fact
end

(* Fold an instruction-level transfer through a block, in program order
   or in reverse.  Polymorphic helpers shared by block transfers and by
   the per-instruction reporting walks. *)
let fold_block_forward (tf : 'a -> instr -> 'a) (b : block) (fact : 'a) : 'a =
  List.fold_left tf fact b.instrs

let fold_block_backward (tf : 'a -> instr -> 'a) (b : block) (fact : 'a) : 'a =
  List.fold_left tf fact (List.rev b.instrs)

module Make (L : LATTICE) = struct
  type result = {
    before_tbl : (int, L.fact) Hashtbl.t; (* block id -> fact at block entry *)
    after_tbl : (int, L.fact) Hashtbl.t; (* block id -> fact at block exit *)
  }

  let before (r : result) (b : block) : L.fact =
    match Hashtbl.find_opt r.before_tbl b.bid with
    | Some x -> x
    | None -> L.bottom

  let after (r : result) (b : block) : L.fact =
    match Hashtbl.find_opt r.after_tbl b.bid with
    | Some x -> x
    | None -> L.bottom

  (* [boundary] is the fact entering the function (forward) or the fact
     at every exit block (backward).  [transfer b fact] maps the fact at
     one end of [b] to the fact at the other; it must be monotone for
     termination, and should map [bottom] to [bottom] when it wants
     unreached predecessors to stay silent. *)
  let run ?(max_steps = 1_000_000) ~(direction : direction)
      ~(boundary : L.fact) ~(transfer : block -> L.fact -> L.fact) (f : func)
      : result =
    let r = { before_tbl = Hashtbl.create 64; after_tbl = Hashtbl.create 64 } in
    let order =
      match direction with
      | Forward -> Cfg.reverse_postorder f
      | Backward -> Cfg.postorder f
    in
    let succs b =
      match terminator b with Some t -> successors t | None -> []
    in
    let queue = Queue.create () in
    let queued = Hashtbl.create 64 in
    let enqueue b =
      if not (Hashtbl.mem queued b.bid) then begin
        Hashtbl.add queued b.bid ();
        Queue.add b queue
      end
    in
    List.iter enqueue order;
    let entry = match f.fblocks with b :: _ -> Some b | [] -> None in
    let is_entry b = match entry with Some e -> e == b | None -> false in
    let steps = ref 0 in
    while (not (Queue.is_empty queue)) && !steps < max_steps do
      incr steps;
      let b = Queue.pop queue in
      Hashtbl.remove queued b.bid;
      match direction with
      | Forward ->
        let inp =
          List.fold_left
            (fun acc p -> L.join acc (after r p))
            (if is_entry b then boundary else L.bottom)
            (predecessors b)
        in
        Hashtbl.replace r.before_tbl b.bid inp;
        let out = transfer b inp in
        if not (L.equal out (after r b)) then begin
          Hashtbl.replace r.after_tbl b.bid out;
          List.iter enqueue (succs b)
        end
      | Backward ->
        let out =
          match succs b with
          | [] -> boundary
          | ss ->
            List.fold_left (fun acc s -> L.join acc (before r s)) L.bottom ss
        in
        Hashtbl.replace r.after_tbl b.bid out;
        let inp = transfer b out in
        if not (L.equal inp (before r b)) then begin
          Hashtbl.replace r.before_tbl b.bid inp;
          List.iter enqueue (predecessors b)
        end
    done;
    r
end

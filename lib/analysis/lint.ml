(* llvm-lint: a dataflow-based static safety analyzer over the IR.

   The paper's evaluation leans on static safety reasoning — Table 1
   classifies loads/stores as provably type-safe via DSA, and SAFECode
   (section 4.1.2) statically discharges bounds checks.  This module
   extends that story from *type* safety to *memory* safety: a suite of
   checkers built on the generic {!Dataflow} engine that find semantic
   bugs in IR and report them as structured diagnostics with stable
   codes:

     L001  uninitialized-load   load from an alloca never stored on
                                some path (forward must-init analysis)
     L002  null-dereference     load/store/gep/free/call through a value
                                proven null by SCCP-style reasoning
     L003  use-after-free       access through a DSA node freed on
                                every path reaching the access
     L004  double-free          free of a DSA node already freed on
                                every path (same analysis as L003)
     L005  memory-leak          malloc never freed anywhere in the
                                module whose DSA node cannot escape
     L006  dead-store           store to a local overwritten or never
                                read (backward liveness with Mod/Ref
                                deciding whether calls can observe it)
     L007  unreachable-block    block with no path from the entry

   The checkers are interprocedurally aware where it is cheap: L001 and
   L006 consult {!Modref} to decide whether a callee can initialize or
   observe a stack slot, and L003-L005 share one module-wide {!Dsa}
   points-to graph so aliased pointers agree about the free state.

   The value abstraction ({!absval} / {!eval}) is exported: the bounds
   check eliminator consumes the same constant/nullness facts to
   discharge provably-redundant checks. *)

open Llvm_ir
open Ir

(* -- Diagnostics --------------------------------------------------------- *)

type severity = Info | Warning | Error

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2
let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_of_string = function
  | "info" -> Some Info
  | "warning" -> Some Warning
  | "error" -> Some Error
  | _ -> None

type diag = {
  code : string;
  severity : severity;
  func : string;
  block : string;
  block_index : int;
  instr_index : int;  (* -1 for block-level diagnostics *)
  message : string;
}

let all_codes =
  [ ("L001", "uninitialized load");
    ("L002", "null dereference");
    ("L003", "use after free");
    ("L004", "double free");
    ("L005", "memory leak");
    ("L006", "dead store");
    ("L007", "unreachable block");
    ("L008", "signed overflow");
    ("L009", "division by zero / bad shift");
    ("L010", "out-of-bounds gep index") ]

let pp_diag fmt (d : diag) =
  Fmt.pf fmt "%s/%s: [%s] %s: %s" d.func d.block d.code
    (severity_name d.severity) d.message

(* One-line JSON form for machine consumers (editors, CI annotators). *)
let diag_to_json (d : diag) : string =
  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  in
  Printf.sprintf
    {|{"code":"%s","severity":"%s","func":"%s","block":"%s","message":"%s"}|}
    (escape d.code)
    (severity_name d.severity)
    (escape d.func) (escape d.block) (escape d.message)

let filter_severity (min : severity) (ds : diag list) : diag list =
  List.filter (fun d -> severity_rank d.severity >= severity_rank min) ds

let count_by_code (ds : diag list) : (string * int) list =
  List.map
    (fun (code, _) ->
      (code, List.length (List.filter (fun d -> d.code = code) ds)))
    all_codes

let position_of equal x xs =
  let rec go n = function
    | [] -> -1
    | y :: tl -> if equal x y then n else go (n + 1) tl
  in
  go 0 xs

let diag ?instr code severity (f : func) (b : block) fmt =
  let block_index = position_of ( == ) b f.fblocks in
  let instr_index =
    match instr with Some i -> position_of ( == ) i b.instrs | None -> -1
  in
  Fmt.kstr
    (fun message ->
      { code; severity; func = f.fname; block = b.bname; block_index;
        instr_index; message })
    fmt

(* Diagnostics sort by source position so output is stable no matter
   which order the checkers and their hashtables produce them in. *)
let compare_diag (a : diag) (b : diag) : int =
  let cmp = compare a.func b.func in
  if cmp <> 0 then cmp
  else
    let cmp = compare a.block_index b.block_index in
    if cmp <> 0 then cmp
    else
      let cmp = compare a.instr_index b.instr_index in
      if cmp <> 0 then cmp
      else
        let cmp = compare a.code b.code in
        if cmp <> 0 then cmp else compare a.message b.message

(* Human name for an instruction's result in messages. *)
let describe (i : instr) : string =
  if i.iname = "" then opcode_name i.iop else "%" ^ i.iname

let describe_value = function
  | Vinstr i -> describe i
  | Varg a -> "%" ^ a.aname
  | Vglobal g -> "@" ^ g.gname
  | Vfunc f -> "@" ^ f.fname
  | Vconst _ -> "constant"
  | Vblock b -> "label " ^ b.bname

(* -- The shared value abstraction (SCCP-style, def-chain driven) --------- *)

(* What is statically known about a first-class value: a concrete
   integer, a proven-null or proven-non-null pointer, undef, or nothing.
   [Vbot] is the optimistic element used while a phi cycle is being
   evaluated; it never escapes {!eval}. *)
type absval = Vbot | Vint of int64 | Vnull | Vnonnull | Vundef | Vtop

let join_abs a b =
  match (a, b) with
  | Vbot, x | x, Vbot -> x
  | x, y when x = y -> x
  | _ -> Vtop

let rec const_abs (c : const) : absval =
  match c with
  | Cnull _ -> Vnull
  | Cint (Ltype.Integer k, v) -> Vint (normalize_int k v)
  | Cint (_, v) -> Vint v
  | Cbool b -> Vint (if b then 1L else 0L)
  | Cundef _ -> Vundef
  | Czero t -> (
    match t with
    | Ltype.Pointer _ -> Vnull
    | Ltype.Bool | Ltype.Integer _ -> Vint 0L
    | _ -> Vtop)
  | Cgvar _ | Cfunc _ -> Vnonnull
  | Ccast (t, c) -> (
    (* fold through the cast at the *target* width: truncations to a
       narrow kind must renormalize, not keep the 64-bit pattern *)
    match (const_abs c, t) with
    | Vint 0L, Ltype.Pointer _ -> Vnull
    | Vint _, Ltype.Pointer _ -> Vnonnull
    | Vint v, Ltype.Integer k -> Vint (normalize_int k v)
    | Vint v, Ltype.Bool -> Vint (if v <> 0L then 1L else 0L)
    | Vnull, Ltype.Integer _ -> Vint 0L
    | Vnull, Ltype.Bool -> Vint 0L
    | Vint _, (Ltype.Named _ | Ltype.Opaque _) -> Vtop
    | x, _ -> x)
  | Carray _ | Cstruct _ | Cfloat _ -> Vtop

(* An evaluator memoizes per-instruction results, so repeated queries
   over one function stay linear in the def-use graph. *)
type evaluator = { etable : Ltype.table; memo : (int, absval) Hashtbl.t }

let evaluator (table : Ltype.table) : evaluator =
  { etable = table; memo = Hashtbl.create 64 }

let resolve_opt table ty =
  try Some (Ltype.resolve table ty) with Ltype.Unresolved _ -> None

let rec eval (e : evaluator) (v : value) : absval =
  match v with
  | Vconst c -> const_abs c
  | Vglobal _ | Vfunc _ -> Vnonnull
  | Varg _ | Vblock _ -> Vtop
  | Vinstr i -> (
    match Hashtbl.find_opt e.memo i.iid with
    | Some a -> a
    | None ->
      (* optimistic while the cycle is being walked: phis over
         themselves contribute nothing to the join *)
      Hashtbl.replace e.memo i.iid Vbot;
      let a = eval_instr e i in
      let a = if a = Vbot then Vtop else a in
      Hashtbl.replace e.memo i.iid a;
      a)

and eval_instr (e : evaluator) (i : instr) : absval =
  match i.iop with
  | Malloc | Alloca -> Vnonnull (* allocation results have provenance *)
  | Cast -> (
    let a = eval e i.operands.(0) in
    match resolve_opt e.etable i.ity with
    | Some (Ltype.Pointer _) -> (
      match a with Vint 0L -> Vnull | Vint _ -> Vnonnull | x -> x)
    | Some (Ltype.Integer k) -> (
      match a with
      | Vint v -> Vint (normalize_int k v)
      | Vnull -> Vint 0L
      | _ -> Vtop)
    | Some Ltype.Bool -> (
      match a with
      | Vint v -> Vint (if v <> 0L then 1L else 0L)
      | Vnull -> Vint 0L
      | _ -> Vtop)
    | _ -> Vtop)
  | Gep -> (
    (* gep preserves provenance: indexing off a null pointer is still a
       null dereference when the result is accessed *)
    match eval e i.operands.(0) with
    | (Vnull | Vnonnull | Vundef) as a -> a
    | _ -> Vtop)
  | Phi ->
    List.fold_left
      (fun acc (v, _) -> join_abs acc (eval e v))
      Vbot (phi_incoming i)
  | Select -> (
    match eval e i.operands.(0) with
    | Vint 0L -> eval e i.operands.(2)
    | Vint _ -> eval e i.operands.(1)
    | _ -> join_abs (eval e i.operands.(1)) (eval e i.operands.(2)))
  | op when is_binary op -> (
    match
      (resolve_opt e.etable i.ity, eval e i.operands.(0), eval e i.operands.(1))
    with
    | Some (Ltype.Integer k), Vint a, Vint b -> (
      match Fold.int_binop k op a b with Some r -> Vint r | None -> Vtop)
    | _ -> Vtop)
  | op when is_comparison op -> (
    let kind_of v =
      match resolve_opt e.etable (Ir.type_of e.etable v) with
      | Some (Ltype.Integer k) -> Some k
      | Some Ltype.Bool -> Some Ltype.Ubyte
      | _ -> None
    in
    match (eval e i.operands.(0), eval e i.operands.(1)) with
    | Vint a, Vint b -> (
      match kind_of i.operands.(0) with
      | Some k -> Vint (if Fold.int_cmp k op a b then 1L else 0L)
      | None -> Vtop)
    | Vnull, Vnonnull | Vnonnull, Vnull -> (
      match op with SetEQ -> Vint 0L | SetNE -> Vint 1L | _ -> Vtop)
    | Vnull, Vnull -> (
      match op with
      | SetEQ | SetLE | SetGE -> Vint 1L
      | SetNE | SetLT | SetGT -> Vint 0L
      | _ -> Vtop)
    | _ -> Vtop)
  | _ -> Vtop

(* One-shot conveniences for clients outside the linter. *)
let eval_int (table : Ltype.table) (v : value) : int64 option =
  match eval (evaluator table) v with Vint n -> Some n | _ -> None

let proves_null (table : Ltype.table) (v : value) : bool =
  eval (evaluator table) v = Vnull

(* -- L001: uninitialized loads ------------------------------------------- *)

module Imap = Map.Make (Int)
module ISet = Set.Make (Int)

type init_state = Uninit | Init | Maybe

let join_state a b = if a = b then a else Maybe

module Init_lattice = struct
  (* map: tracked alloca iid -> initialization state; a missing key
     means the slot has not been stored to (Uninit) *)
  type fact = IBot | IFacts of init_state Imap.t

  let bottom = IBot

  let equal a b =
    match (a, b) with
    | IBot, IBot -> true
    | IFacts a, IFacts b -> Imap.equal ( = ) a b
    | _ -> false

  let join a b =
    match (a, b) with
    | IBot, x | x, IBot -> x
    | IFacts a, IFacts b ->
      IFacts
        (Imap.merge
           (fun _ x y ->
             match (x, y) with
             | Some x, Some y -> Some (join_state x y)
             | Some x, None | None, Some x -> Some (join_state x Uninit)
             | None, None -> None)
           a b)
end

module Init_flow = Dataflow.Make (Init_lattice)

(* Allocas whose address never leaks: every use is a direct load, the
   pointer side of a direct store, or a call argument.  Anything else
   (gep, cast, phi, stored as a value, returned) makes the slot's state
   untrackable and the checker stays silent about it. *)
let directly_used_allocas (f : func) : (int, instr) Hashtbl.t =
  let t = Hashtbl.create 16 in
  iter_instrs
    (fun i ->
      if i.iop = Alloca then begin
        let direct u =
          match (u.user.iop, u.index) with
          | Load, 0 -> true
          | Store, 1 -> true
          | Call, k -> k >= 1
          | Invoke, k -> k >= 3
          | _ -> false
        in
        if List.for_all direct i.iuses then Hashtbl.replace t i.iid i
      end)
    f;
  t

let tracked_alloca tracked (v : value) : instr option =
  match v with
  | Vinstr a when Hashtbl.mem tracked a.iid -> Some a
  | _ -> None

(* A call can initialize a slot passed to it only if the callee may
   write memory — the interprocedural refinement via Mod/Ref. *)
let callee_may_write (mr : Modref.t) (i : instr) : bool =
  match call_callee i with
  | Vfunc callee | Vconst (Cfunc callee) -> Modref.may_write mr callee
  | _ -> true

let init_transfer mr tracked (fact : init_state Imap.t) (i : instr) :
    init_state Imap.t =
  match i.iop with
  | Store -> (
    match tracked_alloca tracked i.operands.(1) with
    | Some a -> Imap.add a.iid Init fact
    | None -> fact)
  | Call | Invoke ->
    if not (callee_may_write mr i) then fact
    else
      List.fold_left
        (fun fact arg ->
          match tracked_alloca tracked arg with
          | Some a -> Imap.add a.iid Init fact
          | None -> fact)
        fact (call_args i)
  | _ -> fact

(* Returns the diagnostics plus the iids of loads proven to read
   never-initialized memory (consumed by the bounds check eliminator:
   a check on an undef index guards undefined behaviour and may go). *)
let check_uninit (mr : Modref.t) (f : func) : diag list * ISet.t =
  let tracked = directly_used_allocas f in
  if Hashtbl.length tracked = 0 then ([], ISet.empty)
  else begin
    let transfer b fact =
      match fact with
      | Init_lattice.IBot -> Init_lattice.IBot
      | Init_lattice.IFacts m ->
        Init_lattice.IFacts
          (Dataflow.fold_block_forward (init_transfer mr tracked) b m)
    in
    let res =
      Init_flow.run ~direction:Dataflow.Forward
        ~boundary:(Init_lattice.IFacts Imap.empty) ~transfer f
    in
    let diags = ref [] and undef = ref ISet.empty in
    List.iter
      (fun b ->
        match Init_flow.before res b with
        | Init_lattice.IBot -> () (* unreachable: L007's business *)
        | Init_lattice.IFacts entry_fact ->
          ignore
            (Dataflow.fold_block_forward
               (fun fact i ->
                 (match i.iop with
                 | Load -> (
                   match tracked_alloca tracked i.operands.(0) with
                   | Some a -> (
                     match
                       Option.value ~default:Uninit (Imap.find_opt a.iid fact)
                     with
                     | Uninit ->
                       undef := ISet.add i.iid !undef;
                       diags :=
                         diag ~instr:i "L001" Error f b
                           "load of %s before any store (uninitialized)"
                           (describe a)
                         :: !diags
                     | Maybe ->
                       diags :=
                         diag ~instr:i "L001" Warning f b
                           "%s may be read before initialization on some path"
                           (describe a)
                         :: !diags
                     | Init -> ())
                   | None -> ())
                 | _ -> ());
                 init_transfer mr tracked fact i)
               b entry_fact))
      f.fblocks;
    (List.rev !diags, !undef)
  end

(* -- L002: null dereference ---------------------------------------------- *)

let check_null (table : Ltype.table) (f : func) : diag list =
  let ev = evaluator table in
  let diags = ref [] in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          let deref =
            match i.iop with
            | Load | Gep -> Some (i.operands.(0), "dereferences")
            | Store -> Some (i.operands.(1), "stores through")
            | Free -> Some (i.operands.(0), "frees")
            | Call | Invoke -> Some (call_callee i, "calls through")
            | _ -> None
          in
          match deref with
          | Some (ptr, verb) -> (
            match eval ev ptr with
            | Vnull ->
              diags :=
                diag ~instr:i "L002" Error f b "%s %s a pointer that is provably null"
                  (describe i) verb
                :: !diags
            | Vundef ->
              diags :=
                diag ~instr:i "L002" Warning f b "%s %s an undef pointer" (describe i)
                  verb
                :: !diags
            | _ -> ())
          | None -> ())
        b.instrs)
    (Cfg.postorder f);
  List.rev !diags

(* -- L003/L004: use-after-free and double-free --------------------------- *)

(* Fact: the set of DSA node roots freed on *every* path reaching this
   point (a must analysis — join is intersection — so the checkers only
   fire on definite bugs, not on "freed on one arm" merges). *)
module Freed_lattice = struct
  type fact = FBot | Freed of ISet.t

  let bottom = FBot

  let equal a b =
    match (a, b) with
    | FBot, FBot -> true
    | Freed a, Freed b -> ISet.equal a b
    | _ -> false

  let join a b =
    match (a, b) with
    | FBot, x | x, FBot -> x
    | Freed a, Freed b -> Freed (ISet.inter a b)
end

module Freed_flow = Dataflow.Make (Freed_lattice)

let node_of (dsa : Dsa.t) (v : value) : int option =
  match Dsa.cell_of_value dsa v with
  | Some c -> Some (Dsa.find c.Dsa.node).Dsa.nid
  | None -> None

let freed_transfer dsa (fact : ISet.t) (i : instr) : ISet.t =
  match i.iop with
  | Free -> (
    match node_of dsa i.operands.(0) with
    | Some n -> ISet.add n fact
    | None -> fact)
  | Malloc | Alloca -> (
    (* a fresh allocation revives its (flow-insensitively shared) node *)
    match node_of dsa (Vinstr i) with
    | Some n -> ISet.remove n fact
    | None -> fact)
  | _ -> fact

let check_free_state (dsa : Dsa.t) (f : func) : diag list =
  let transfer b fact =
    match fact with
    | Freed_lattice.FBot -> Freed_lattice.FBot
    | Freed_lattice.Freed s ->
      Freed_lattice.Freed (Dataflow.fold_block_forward (freed_transfer dsa) b s)
  in
  let res =
    Freed_flow.run ~direction:Dataflow.Forward
      ~boundary:(Freed_lattice.Freed ISet.empty) ~transfer f
  in
  let diags = ref [] in
  List.iter
    (fun b ->
      match Freed_flow.before res b with
      | Freed_lattice.FBot -> ()
      | Freed_lattice.Freed entry_fact ->
        ignore
          (Dataflow.fold_block_forward
             (fun fact i ->
               (match i.iop with
               | Free -> (
                 match node_of dsa i.operands.(0) with
                 | Some n when ISet.mem n fact ->
                   diags :=
                     diag ~instr:i "L004" Error f b "double free of %s"
                       (describe_value i.operands.(0))
                     :: !diags
                 | _ -> ())
               | Load | Store | Gep -> (
                 let ptr =
                   if i.iop = Store then i.operands.(1) else i.operands.(0)
                 in
                 match node_of dsa ptr with
                 | Some n when ISet.mem n fact ->
                   diags :=
                     diag ~instr:i "L003" Error f b "%s accesses %s after it was freed"
                       (describe i) (describe_value ptr)
                     :: !diags
                 | _ -> ())
               | _ -> ());
               freed_transfer dsa fact i)
             b entry_fact))
    f.fblocks;
  List.rev !diags

(* -- L005: memory leak --------------------------------------------------- *)

(* A malloc leaks when no free anywhere in the module can reach its DSA
   node, the node never escapes to external code, and the pointer value
   itself never escapes the function (stored into memory, returned, or
   passed to a callee that could stash or free it). *)
let value_escapes (v : value) : bool =
  let seen = Hashtbl.create 8 in
  let rec go v =
    List.exists
      (fun u ->
        let i = u.user in
        match i.iop with
        | Store -> u.index = 0 (* stored as the value, not the address *)
        | Ret -> true
        | Call | Invoke -> true
        | Phi | Select | Cast | Gep ->
          if Hashtbl.mem seen i.iid then false
          else begin
            Hashtbl.add seen i.iid ();
            go (Vinstr i)
          end
        | _ -> false)
      (uses_of v)
  in
  go v

let check_leaks (dsa : Dsa.t) (m : modul) : diag list =
  let freed = ref ISet.empty in
  List.iter
    (fun f ->
      iter_instrs
        (fun i ->
          if i.iop = Free then
            match node_of dsa i.operands.(0) with
            | Some n -> freed := ISet.add n !freed
            | None -> ())
        f)
    m.mfuncs;
  let diags = ref [] in
  List.iter
    (fun f ->
      iter_instrs
        (fun i ->
          if i.iop = Malloc then
            match Dsa.cell_of_value dsa (Vinstr i) with
            | None -> ()
            | Some c ->
              let root = Dsa.find c.Dsa.node in
              if
                (not (ISet.mem root.Dsa.nid !freed))
                && (not root.Dsa.external_)
                && not (value_escapes (Vinstr i))
              then
                match i.iparent with
                | Some b ->
                  diags :=
                    diag ~instr:i "L005" Warning f b
                      "%s is never freed and cannot escape (memory leak)"
                      (describe i)
                    :: !diags
                | None -> ())
        f)
    m.mfuncs;
  List.rev !diags

(* -- L006: dead stores --------------------------------------------------- *)

(* Backward may-liveness of stack slots whose address is only ever used
   by direct loads and stores; slots that reach a call are judged via
   Mod/Ref (a reading callee keeps every store alive, a pure one keeps
   none), and anything wilder is not tracked at all. *)
module Live_lattice = struct
  type fact = LBot | Live of ISet.t

  let bottom = LBot

  let equal a b =
    match (a, b) with
    | LBot, LBot -> true
    | Live a, Live b -> ISet.equal a b
    | _ -> false

  let join a b =
    match (a, b) with
    | LBot, x | x, LBot -> x
    | Live a, Live b -> Live (ISet.union a b)
end

module Live_flow = Dataflow.Make (Live_lattice)

let deadstore_tracked (mr : Modref.t) (f : func) : (int, instr) Hashtbl.t =
  let t = directly_used_allocas f in
  (* drop slots passed to a callee that may read memory: the callee can
     observe any store, so nothing targeting them is provably dead *)
  Hashtbl.iter
    (fun iid a ->
      let observed =
        List.exists
          (fun u ->
            match u.user.iop with
            | Call | Invoke -> (
              match call_callee u.user with
              | Vfunc callee | Vconst (Cfunc callee) -> Modref.may_read mr callee
              | _ -> true)
            | _ -> false)
          a.iuses
      in
      if observed then Hashtbl.remove t iid)
    (Hashtbl.copy t);
  t

let live_transfer tracked (fact : ISet.t) (i : instr) : ISet.t =
  match i.iop with
  | Load -> (
    match tracked_alloca tracked i.operands.(0) with
    | Some a -> ISet.add a.iid fact
    | None -> fact)
  | Store -> (
    match tracked_alloca tracked i.operands.(1) with
    | Some a -> ISet.remove a.iid fact
    | None -> fact)
  | _ -> fact

let check_dead_stores (mr : Modref.t) (f : func) : diag list =
  let tracked = deadstore_tracked mr f in
  if Hashtbl.length tracked = 0 then []
  else begin
    let transfer b fact =
      match fact with
      | Live_lattice.LBot -> Live_lattice.LBot
      | Live_lattice.Live s ->
        Live_lattice.Live
          (Dataflow.fold_block_backward (live_transfer tracked) b s)
    in
    let res =
      Live_flow.run ~direction:Dataflow.Backward
        ~boundary:(Live_lattice.Live ISet.empty) ~transfer f
    in
    let diags = ref [] in
    List.iter
      (fun b ->
        match Live_flow.after res b with
        | Live_lattice.LBot -> ()
        | Live_lattice.Live exit_fact ->
          ignore
            (Dataflow.fold_block_backward
               (fun fact i ->
                 (match i.iop with
                 | Store -> (
                   match tracked_alloca tracked i.operands.(1) with
                   | Some a when not (ISet.mem a.iid fact) ->
                     diags :=
                       diag ~instr:i "L006" Warning f b
                         "store to %s is overwritten or never read"
                         (describe a)
                       :: !diags
                   | _ -> ())
                 | _ -> ());
                 live_transfer tracked fact i)
               b exit_fact))
      f.fblocks;
    List.rev !diags
  end

(* -- L007: unreachable blocks -------------------------------------------- *)

let check_unreachable (f : func) : diag list =
  List.map
    (fun b ->
      diag "L007" Warning f b "block %s is unreachable from the entry" b.bname)
    (Cfg.unreachable_blocks f)

(* -- L008-L010: value-range checkers ------------------------------------- *)

(* Built on {!Range}: report only *definite* bugs — the interval of the
   relevant operand must lie entirely outside the safe set, on every
   execution reaching the instruction.  [Range.Bot] means the code is
   unreachable under the analysis, which is L007's business, so these
   checkers stay quiet there. *)
let check_value_ranges (rng : Range.t) ~l8 ~l9 ~l10 (table : Ltype.table)
    (f : func) : diag list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          (if l8 then
             match i.iop with
             | Add | Sub | Mul -> (
               match resolve_opt table i.ity with
               | Some (Ltype.Integer k) when Ltype.is_signed k -> (
                 let x = Range.range_at rng b i.operands.(0) in
                 let y = Range.range_at rng b i.operands.(1) in
                 match Range.exact_binop i.iop x y with
                 | Some (Range.Itv (lo, hi)) ->
                   let kmin, kmax = Range.kind_range k in
                   if lo > kmax || hi < kmin then
                     add
                       (diag ~instr:i "L008" Warning f b
                          "%s %s of %a and %a always overflows (result in \
                           %a, representable [%Ld,%Ld])"
                          (Ltype.string_of_int_kind k)
                          (opcode_name i.iop) Range.pp_interval x
                          Range.pp_interval y Range.pp_interval
                          (Range.Itv (lo, hi)) kmin kmax)
                 | _ -> ())
               | _ -> ())
             | _ -> ());
          (if l9 then
             match i.iop with
             | Div | Rem -> (
               match
                 Range.is_singleton (Range.range_at rng b i.operands.(1))
               with
               | Some 0L ->
                 add
                   (diag ~instr:i "L009" Error f b
                      "%s divides by a value that is provably zero"
                      (describe i))
               | _ -> ())
             | Shl | Shr -> (
               match resolve_opt table i.ity with
               | Some (Ltype.Integer k) -> (
                 let bits = Ltype.int_bits k in
                 let s = Range.range_at rng b i.operands.(1) in
                 match s with
                 | Range.Itv _
                   when Range.meet s (Range.Itv (0L, Int64.of_int (bits - 1)))
                        = Range.Bot ->
                   add
                     (diag ~instr:i "L009" Warning f b
                        "%s shift amount %a is entirely outside [0,%d]"
                        (opcode_name i.iop) Range.pp_interval s (bits - 1))
                 | _ -> ())
               | _ -> ())
             | _ -> ());
          if l10 && i.iop = Gep then
            (* the same walk the bounds-check inserter performs: indices
               past the pointer step through arrays and structs *)
            match resolve_opt table (Ir.type_of table i.operands.(0)) with
            | Some (Ltype.Pointer pointee) ->
              let cur = ref pointee in
              Array.iteri
                (fun k idx ->
                  if k >= 2 then
                    match resolve_opt table !cur with
                    | Some (Ltype.Array (n, elt)) ->
                      let r = Range.range_at rng b idx in
                      let valid = Range.Itv (0L, Int64.of_int (n - 1)) in
                      (match r with
                      | Range.Itv _ when Range.meet r valid = Range.Bot ->
                        add
                          (diag ~instr:i "L010" Error f b
                             "%s indexes a %d-element array with %a \
                              (provably out of bounds)"
                             (describe i) n Range.pp_interval r)
                      | _ -> ());
                      cur := elt
                    | Some (Ltype.Struct _ as s) -> (
                      match idx with
                      | Vconst (Cint (_, v)) -> (
                        match
                          try Some (Ltype.field_type table s (Int64.to_int v))
                          with _ -> None
                        with
                        | Some fty -> cur := fty
                        | None -> cur := Ltype.Void)
                      | _ -> cur := Ltype.Void)
                    | _ -> cur := Ltype.Void)
                i.operands
            | _ -> ())
        b.instrs)
    f.fblocks;
  List.rev !diags

(* -- Driver --------------------------------------------------------------- *)

(* [only] selects checkers by diagnostic code (L003 and L004 are one
   checker: naming either enables both). *)
let run ?only (m : modul) : diag list =
  let enabled code =
    match only with
    | None -> true
    | Some codes ->
      List.mem code codes
      || (code = "L003" && List.mem "L004" codes)
      || (code = "L004" && List.mem "L003" codes)
  in
  let mr = Modref.compute m in
  let need_dsa = enabled "L003" || enabled "L004" || enabled "L005" in
  let dsa = if need_dsa then Some (Dsa.run m) else None in
  let l8 = enabled "L008" and l9 = enabled "L009" and l10 = enabled "L010" in
  let rng = if l8 || l9 || l10 then Some (Range.analyze m) else None in
  let per_func =
    List.concat_map
      (fun f ->
        if is_declaration f then []
        else
          List.concat
            [ (if enabled "L001" then fst (check_uninit mr f) else []);
              (if enabled "L002" then check_null m.mtypes f else []);
              (match dsa with
              | Some dsa when enabled "L003" || enabled "L004" ->
                check_free_state dsa f
              | _ -> []);
              (if enabled "L006" then check_dead_stores mr f else []);
              (if enabled "L007" then check_unreachable f else []);
              (match rng with
              | Some rng -> check_value_ranges rng ~l8 ~l9 ~l10 m.mtypes f
              | None -> []) ])
      m.mfuncs
  in
  let leaks =
    match dsa with
    | Some dsa when enabled "L005" -> check_leaks dsa m
    | _ -> []
  in
  List.sort compare_diag (per_func @ leaks)

(* Loads proven to read never-initialized stack slots, across the whole
   module — the uninit facts the bounds check eliminator consumes. *)
let undef_loads (m : modul) : (int, unit) Hashtbl.t =
  let mr = Modref.compute m in
  let t = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if not (is_declaration f) then
        ISet.iter (fun iid -> Hashtbl.replace t iid ()) (snd (check_uninit mr f)))
    m.mfuncs;
  t

let has_errors (ds : diag list) : bool =
  List.exists (fun d -> d.severity = Error) ds

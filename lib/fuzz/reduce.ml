(* Bugpoint-style delta-debugging reducer.

   The loop is classic greedy delta debugging specialised to IR
   structure: candidate edits are enumerated coarsest-first (function >
   block > instruction > operand), each is tried on a structural clone,
   and an edit survives only if the clone still verifies and the oracle
   under investigation still fails.  Edits are addressed by
   (function-name, block-index, instruction-index) rather than node
   identity so the same edit description can be replayed on any clone
   of the current module. *)

open Llvm_ir
open Ir

type stats = {
  rd_initial_instrs : int;
  rd_final_instrs : int;
  rd_rounds : int;
  rd_edits : int;
}

type edit =
  | Drop_func of string
  | Drop_block of string * int
  | Drop_instr of string * int * int
  | Zero_operand of string * int * int * int

let zero_const (ty : Ltype.t) : const option =
  match ty with
  | Ltype.Bool -> Some (Cbool false)
  | Ltype.Integer k -> Some (cint k 0L)
  | (Ltype.Float | Ltype.Double) as ty -> Some (Cfloat (ty, 0.0))
  | Ltype.Pointer _ -> Some (Cnull ty)
  | _ -> None

(* Replace every use of [i]'s value with a zero constant; [false] when
   the type has no writable zero. *)
let neutralize_uses (i : instr) : bool =
  if not (has_uses (Vinstr i)) then true
  else
    match zero_const i.ity with
    | Some z ->
      replace_all_uses_with (Vinstr i) (Vconst z);
      true
    | None -> false

let nth_opt l n = List.nth_opt l n

let find_block (f : func) (bidx : int) : block option = nth_opt f.fblocks bidx

let find_instr (f : func) (bidx : int) (iidx : int) : instr option =
  match find_block f bidx with
  | Some b -> nth_opt b.instrs iidx
  | None -> None

(* -- edit application (on a clone) ------------------------------------------ *)

(* Dropping a function rewrites every direct call site to the zero
   constant of the call's type.  Address-taken functions (operands in
   non-callee position, or referenced from a global initializer) are
   left alone — too entangled to drop soundly. *)
let apply_drop_func (m : modul) (fname : string) : bool =
  match find_func m fname with
  | None -> false
  | Some f when f.fname = "main" -> false
  | Some f ->
    let rec const_mentions c =
      match c with
      | Cfunc g -> g == f
      | Carray (_, elts) | Cstruct (_, elts) -> List.exists const_mentions elts
      | Ccast (_, c) -> const_mentions c
      | _ -> false
    in
    let address_taken = ref false in
    let sites = ref [] in
    List.iter
      (fun g ->
        match g.ginit with
        | Some c when const_mentions c -> address_taken := true
        | _ -> ())
      m.mglobals;
    List.iter
      (fun h ->
        if h != f then
          iter_instrs
            (fun i ->
              Array.iteri
                (fun idx v ->
                  match v with
                  | Vfunc g when g == f ->
                    if idx = 0 && (i.iop = Call || i.iop = Invoke) then
                      sites := i :: !sites
                    else address_taken := true
                  | _ -> ())
                i.operands)
            h)
      m.mfuncs;
    if !address_taken then false
    else if List.exists (fun (i : instr) -> not (neutralize_uses i)) !sites then
      false
    else begin
      List.iter
        (fun (site : instr) ->
          match site.iop with
          | Call ->
            set_operands site [||];
            erase_instr site
          | Invoke ->
            let normal = as_block site.operands.(1) in
            let unwind = as_block site.operands.(2) in
            let home =
              match site.iparent with Some b -> b | None -> assert false
            in
            List.iter
              (fun p -> if p.iop = Phi then phi_remove_incoming p home)
              unwind.instrs;
            set_operands site [||];
            let br = mk_instr ~ty:Ltype.Void Br [ Vblock normal ] in
            insert_before ~point:site br;
            erase_instr site
          | _ -> ())
        !sites;
      (* detach the body's own operand uses before unhooking the func *)
      iter_instrs (fun i -> set_operands i [||]) f;
      remove_func m f;
      true
    end

(* Dropping a block truncates it to an early [ret 0]; blocks that only
   it reached are then swept by the unreachable-block cleanup. *)
let apply_drop_block (m : modul) (fname : string) (bidx : int) : bool =
  match find_func m fname with
  | None -> false
  | Some f -> (
    if bidx = 0 then false (* never the entry block *)
    else
      match find_block f bidx with
      | None -> false
      | Some b ->
        if List.for_all neutralize_uses b.instrs then begin
          (match terminator b with
          | Some term ->
            List.iter
              (fun s ->
                List.iter
                  (fun p -> if p.iop = Phi then phi_remove_incoming p b)
                  s.instrs)
              (successors term)
          | None -> ());
          List.iter (fun i -> set_operands i [||]) b.instrs;
          List.iter (fun i -> i.iparent <- None) b.instrs;
          b.instrs <- [];
          let ret =
            match zero_const f.freturn with
            | Some z -> mk_instr ~ty:Ltype.Void Ret [ Vconst z ]
            | None -> mk_instr ~ty:Ltype.Void Ret []
          in
          append_instr b ret;
          ignore (Llvm_transforms.Cleanup.remove_unreachable_blocks f);
          true
        end
        else false)

let apply_drop_instr (m : modul) (fname : string) (bidx : int) (iidx : int) :
    bool =
  match find_func m fname with
  | None -> false
  | Some f -> (
    match find_instr f bidx iidx with
    | None -> false
    | Some i ->
      if is_terminator i.iop then false
      else if not (neutralize_uses i) then false
      else begin
        set_operands i [||];
        erase_instr i;
        true
      end)

let apply_zero_operand (m : modul) (fname : string) (bidx : int) (iidx : int)
    (opidx : int) : bool =
  match find_func m fname with
  | None -> false
  | Some f -> (
    match find_instr f bidx iidx with
    | None -> false
    | Some i ->
      if i.iop = Phi || opidx >= Array.length i.operands then false
      else if (i.iop = Call || i.iop = Invoke) && opidx <= 2 then false
      else
        let v = i.operands.(opidx) in
        (match v with
        | Vinstr _ | Varg _ -> (
          match zero_const (type_of m.mtypes v) with
          | Some z ->
            set_operand i opidx (Vconst z);
            true
          | None -> false)
        | _ -> false))

let apply_edit (m : modul) (e : edit) : bool =
  match e with
  | Drop_func fname -> apply_drop_func m fname
  | Drop_block (fname, bidx) -> apply_drop_block m fname bidx
  | Drop_instr (fname, bidx, iidx) -> apply_drop_instr m fname bidx iidx
  | Zero_operand (fname, bidx, iidx, opidx) ->
    apply_zero_operand m fname bidx iidx opidx

(* -- candidate enumeration (coarsest first) --------------------------------- *)

let candidates (m : modul) : edit list =
  let funcs =
    List.filter_map
      (fun f ->
        if is_declaration f || f.fname = "main" then None else Some f.fname)
      m.mfuncs
  in
  let defined = List.filter (fun f -> not (is_declaration f)) m.mfuncs in
  let blocks =
    List.concat_map
      (fun f ->
        List.mapi (fun bidx _ -> Drop_block (f.fname, bidx)) f.fblocks
        |> List.filter (function Drop_block (_, 0) -> false | _ -> true))
      defined
  in
  let instrs =
    List.concat_map
      (fun f ->
        List.concat
          (List.mapi
             (fun bidx b ->
               List.mapi (fun iidx _ -> Drop_instr (f.fname, bidx, iidx)) b.instrs)
             f.fblocks))
      defined
  in
  let operands =
    List.concat_map
      (fun f ->
        List.concat
          (List.mapi
             (fun bidx b ->
               List.concat
                 (List.mapi
                    (fun iidx i ->
                      List.init (Array.length i.operands) (fun opidx ->
                          Zero_operand (f.fname, bidx, iidx, opidx)))
                    b.instrs))
             f.fblocks))
      defined
  in
  List.map (fun n -> Drop_func n) funcs @ blocks @ instrs @ operands

(* -- the loop --------------------------------------------------------------- *)

let still_fails (oracle : Oracle.t) (m : modul) : bool =
  match oracle.Oracle.check m with Oracle.Fail _ -> true | _ -> false

let still_valid (oracle : Oracle.t) (m : modul) : bool =
  (* when reducing a verifier failure, invalid is exactly the point *)
  oracle.Oracle.o_name = "verify"
  || (match Oracle.verify_oracle.Oracle.check m with
     | Oracle.Pass -> true
     | _ -> false)

let reduce ?(max_rounds = 12) ~(oracle : Oracle.t) (m : modul) :
    modul * stats =
  let initial = module_instr_count m in
  if not (still_fails oracle m) then
    (m, { rd_initial_instrs = initial; rd_final_instrs = initial;
          rd_rounds = 0; rd_edits = 0 })
  else begin
    let current = ref (Oracle.clone m) in
    let edits = ref 0 in
    let rounds = ref 0 in
    let progressed = ref true in
    while !progressed && !rounds < max_rounds do
      progressed := false;
      incr rounds;
      List.iter
        (fun e ->
          let trial = Oracle.clone !current in
          if apply_edit trial e && still_valid oracle trial
             && still_fails oracle trial
          then begin
            current := trial;
            incr edits;
            progressed := true
          end)
        (candidates !current)
    done;
    (!current,
     { rd_initial_instrs = initial;
       rd_final_instrs = module_instr_count !current;
       rd_rounds = !rounds;
       rd_edits = !edits })
  end

(** Bugpoint-style delta-debugging reducer.

    Given a module on which an oracle returns [Fail], greedily shrink
    it while the oracle keeps failing: drop whole functions, then
    whole blocks, then single instructions, then simplify operands to
    zero constants.  Every candidate edit is applied to a structural
    clone and accepted only when the edited module still verifies (the
    verify oracle itself excepted) and the oracle still fails — the
    input module is never mutated. *)

type stats = {
  rd_initial_instrs : int;
  rd_final_instrs : int;
  rd_rounds : int;  (** greedy sweeps over the candidate space *)
  rd_edits : int;  (** accepted edits *)
}

(** [reduce ~oracle m] returns the minimized module and reduction
    stats.  When [oracle] does not fail on [m] in the first place the
    module is returned unchanged with zero edits. *)
val reduce :
  ?max_rounds:int -> oracle:Oracle.t -> Llvm_ir.Ir.modul -> Llvm_ir.Ir.modul * stats

(* The differential fuzzing driver.

   One seed's work: generate, judge against every oracle, then mutate
   along [c_paths] independent reproducible chains and judge each
   mutant again.  Every Fail becomes a [failure] record; with
   [c_reduce] the failing module is first shrunk by the delta reducer,
   and with [c_corpus] the (possibly minimized) repro is written out
   as a commented .ll file that the asm parser reads back verbatim. *)

type config = {
  c_oracles : Oracle.t list;
  c_paths : int;
  c_mut_count : int;
  c_reduce : bool;
  c_corpus : string option;
}

let default_config =
  { c_oracles = Oracle.all;
    c_paths = 2;
    c_mut_count = 3;
    c_reduce = true;
    c_corpus = None }

type failure = {
  fa_seed : int;
  fa_path : int;
  fa_mutations : string list;
  fa_oracle : string;
  fa_message : string;
  fa_instrs : int;
  fa_repro : string option;
}

type report = {
  r_seeds : int;
  r_checks : int;
  r_passed : int;
  r_failed : int;
  r_skipped : int;
  r_failures : failure list;
  r_mutations : int;
}

let empty_report =
  { r_seeds = 0; r_checks = 0; r_passed = 0; r_failed = 0; r_skipped = 0;
    r_failures = []; r_mutations = 0 }

let repro_contents ~seed ~path ~mutations ~oracle ~message m =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "; llvm_fuzz repro: oracle %s\n" oracle);
  Buffer.add_string buf
    (Printf.sprintf "; seed %d, mutation path %d%s\n" seed path
       (match mutations with
       | [] -> " (pristine)"
       | ms -> " [" ^ String.concat ", " ms ^ "]"));
  List.iter
    (fun line -> Buffer.add_string buf ("; " ^ line ^ "\n"))
    (String.split_on_char '\n' message);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Llvm_ir.Printer.module_to_string m);
  Buffer.contents buf

let ensure_dir (dir : string) : unit =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let persist_repro (cfg : config) (fa : failure) (m : Llvm_ir.Ir.modul) :
    string option =
  match cfg.c_corpus with
  | None -> None
  | Some dir ->
    ensure_dir dir;
    let file =
      Filename.concat dir
        (Printf.sprintf "seed%d-p%d-%s.ll" fa.fa_seed fa.fa_path
           (String.map (fun c -> if c = ':' then '_' else c) fa.fa_oracle))
    in
    let oc = open_out file in
    output_string oc
      (repro_contents ~seed:fa.fa_seed ~path:fa.fa_path
         ~mutations:fa.fa_mutations ~oracle:fa.fa_oracle
         ~message:fa.fa_message m);
    close_out oc;
    Some file

(* Judge one concrete module (pristine or mutant) against the
   configured oracles, minimizing and persisting each failure. *)
let judge (cfg : config) (report : report) ~seed ~path ~mutations
    (m : Llvm_ir.Ir.modul) : report =
  List.fold_left
    (fun acc (o : Oracle.t) ->
      match o.Oracle.check m with
      | Oracle.Pass ->
        { acc with r_checks = acc.r_checks + 1; r_passed = acc.r_passed + 1 }
      | Oracle.Skip _ ->
        { acc with r_checks = acc.r_checks + 1; r_skipped = acc.r_skipped + 1 }
      | Oracle.Fail msg ->
        let repro_module, final_msg =
          if cfg.c_reduce then begin
            let reduced, _stats = Reduce.reduce ~oracle:o m in
            let msg' =
              match o.Oracle.check reduced with
              | Oracle.Fail m -> m
              | _ -> msg
            in
            (reduced, msg')
          end
          else (m, msg)
        in
        let fa =
          { fa_seed = seed;
            fa_path = path;
            fa_mutations = mutations;
            fa_oracle = o.Oracle.o_name;
            fa_message = final_msg;
            fa_instrs = Llvm_ir.Ir.module_instr_count repro_module;
            fa_repro = None }
        in
        let fa = { fa with fa_repro = persist_repro cfg fa repro_module } in
        { acc with
          r_checks = acc.r_checks + 1;
          r_failed = acc.r_failed + 1;
          r_failures = fa :: acc.r_failures })
    report cfg.c_oracles

let run_seed (cfg : config) (report : report) (seed : int) : report =
  let m = Irgen.gen_module seed in
  let report = judge cfg report ~seed ~path:0 ~mutations:[] m in
  let rec paths report path =
    if path > cfg.c_paths then report
    else begin
      let mutant = Oracle.clone m in
      let mutations =
        Mutate.apply_chain ~seed ~path ~count:cfg.c_mut_count mutant
      in
      let report =
        { report with r_mutations = report.r_mutations + List.length mutations }
      in
      let report = judge cfg report ~seed ~path ~mutations mutant in
      paths report (path + 1)
    end
  in
  let report = paths report 1 in
  { report with r_seeds = report.r_seeds + 1 }

let run ?(progress = fun _ _ -> ()) ?(stop = fun () -> false) (cfg : config)
    ~first ~count : report =
  let report = ref empty_report in
  (try
     for seed = first to first + count - 1 do
       if stop () then raise Exit;
       report := run_seed cfg !report seed;
       progress seed !report
     done
   with Exit -> ());
  { !report with r_failures = List.rev !report.r_failures }

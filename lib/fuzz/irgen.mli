(** A structured random IR program generator for differential testing.

    Programs are built directly with the Builder API (rather than via
    the front-end) so that they reach corners the front-end never
    emits: mixed signed/unsigned kinds, select chains, switches with
    many cases, odd cast sequences, phis with many incoming edges,
    aggregates addressed through [getelementptr] chains, initialized
    globals (including constant function-pointer tables), indirect
    calls, and [invoke]/[unwind] pairs.

    Programs are safe by construction — constant loop bounds, nonzero
    divisors, masked shift amounts, in-bounds constant indices, throws
    always caught by an invoke — so any trap is itself a bug.

    Everything is deterministic in the seed. *)

(** Generate a self-contained module whose [main] exercises every
    generated function and returns a [long] checksum. *)
val gen_module : int -> Llvm_ir.Ir.modul

(** The multi-oracle differential harness.

    An oracle checks one cross-representation consistency claim of the
    paper (§2.5, §3): every registered oracle must return {!Pass} on
    every module the generator produces and on every
    semantics-preserving mutant.  A {!Fail} is a reportable compiler
    bug; {!Skip} marks runs that cannot judge (e.g. the reference run
    exhausted its fuel budget).

    Oracles never mutate the module they are given — checks that need
    to transform run on a {!clone}. *)

type verdict = Pass | Fail of string | Skip of string

type t = {
  o_name : string;
  o_descr : string;
  check : Llvm_ir.Ir.modul -> verdict;
}

(** Structural deep copy sharing nothing with the original (the copy
    does not go through the printers or codecs under test). *)
val clone : Llvm_ir.Ir.modul -> Llvm_ir.Ir.modul

(** Verifier acceptance plus SSA dominance. *)
val verify_oracle : t

(** Textual form: print → parse → print is a fixpoint, and the
    reparsed module verifies. *)
val asm_oracle : t

(** Binary form: encode → decode preserves the printed module, and
    re-encoding the decoded module is byte-identical. *)
val bitcode_oracle : t

(** The three execution tiers agree on status, output, dynamic
    instruction count and block profile; no unexpected trap. *)
val exec_oracle : t

(** -O0 behaviour is preserved by every registered pass individually
    and by the -O2/-O3 pipelines; transformed modules verify. *)
val opt_oracle : t

(** The speculation-identity check: a profile trained on an
    instrumented run of a clone drives {!Llvm_transforms.Pgo.optimize}
    (guarded call promotion + profile-guided inlining) at the most
    promotion-happy thresholds, and all three execution tiers — with
    profile-guided block layout — must reproduce the unspeculated
    behaviour, status and output exactly, deopts included. *)
val spec_oracle : t

(** The six standard oracles, in reporting order. *)
val all : t list

val find : string -> t option

(** An oracle checking a single named pass preserves behaviour
    (for bugpoint: [pass:gvn] etc.). *)
val pass_oracle : Llvm_transforms.Pass.t -> t

(** Resolve a bugpoint oracle spec: a standard oracle name or
    [pass:<registered-pass>]. *)
val of_spec : string -> t option

(** A deliberately wrong pass (swaps every sub's operands), registered
    as [inject-sub-swap] so bugpoint can target it: the self-test that
    proves the harness catches miscompiles.  Never part of a pipeline. *)
val injected_bug_pass : Llvm_transforms.Pass.t

(** The speculation twin of {!injected_bug_pass}: promotes indirect
    sites to their profile-predicted targets with the guard elided,
    registered as [inject-spec-noguard].  A real miscompile on any
    module whose site targets vary within a run. *)
val injected_spec_pass : Llvm_transforms.Pass.t

(** Fuel budget shared by every behavioural comparison. *)
val fuel : int

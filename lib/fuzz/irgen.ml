(* A structured random IR program generator for differential testing.

   Programs are built directly with the Builder API (rather than via the
   front-end) so that they reach corners the front-end never emits:
   mixed signed/unsigned kinds, select chains, switches with many cases,
   odd cast sequences, phis with many incoming edges, aggregates
   addressed through getelementptr chains, initialized globals
   (including constant function-pointer tables), indirect calls through
   function pointers, and invoke/unwind pairs.

   Programs are safe by construction — constant loop bounds, nonzero
   divisors, masked shift amounts, in-bounds constant indices, throws
   always caught by an invoke — so any trap after optimization is
   itself a bug.

   Everything is deterministic in the seed. *)

open Llvm_ir
open Ir
open Llvm_workloads

(* Module-wide material shared by every generated function. *)
type menv = {
  twins : func list;  (* identical signatures: indirect-call targets *)
  throwers : func list;  (* may execute unwind; call only via invoke *)
  globals : gvar list;  (* initialized scalar/aggregate globals *)
  fptr_table : gvar option;  (* constant [n x twin_sig*] *)
}

type genv = {
  rng : Rng.t;
  m : modul;
  b : Builder.t;
  mutable pool : (value * Ltype.t) list; (* available SSA values *)
  mutable funcs : func list; (* previously generated safe functions *)
  me : menv;
  f : func;
}

let int_kinds =
  [ Ltype.Sbyte; Ltype.Ubyte; Ltype.Short; Ltype.Ushort; Ltype.Int;
    Ltype.Uint; Ltype.Long; Ltype.Ulong ]

(* The shared signature of the indirect-call targets. *)
let twin_params = [ Ltype.long; Ltype.long ]
let twin_fty = Ltype.func Ltype.long twin_params
let twin_ptr_ty = Ltype.pointer twin_fty

let random_kind g = Rng.pick g.rng int_kinds

let random_const g kind =
  Vconst (cint kind (Int64.of_int (Rng.int g.rng 2000 - 1000)))

(* a pool value of the wanted type, casting one if necessary *)
let value_of_type (g : genv) (ty : Ltype.t) : value =
  let candidates = List.filter (fun (_, t) -> t = ty) g.pool in
  match candidates with
  | _ :: _ when not (Rng.chance g.rng 20) ->
    fst (Rng.pick g.rng candidates)
  | _ -> (
    match ty with
    | Ltype.Integer k -> (
      (* cast some existing value, or a fresh constant *)
      match List.filter (fun (_, t) -> Ltype.is_arithmetic t) g.pool with
      | _ :: _ :: _ as l when Rng.bool_ g.rng ->
        let v, _ = Rng.pick g.rng l in
        Builder.build_cast g.b v ty
      | _ -> random_const g k)
    | Ltype.Bool -> Vconst (Cbool (Rng.bool_ g.rng))
    | _ -> Vconst (Cundef ty))

let push g v ty = g.pool <- (v, ty) :: g.pool

let random_int_value (g : genv) : value * Ltype.t =
  let ints = List.filter (fun (_, t) -> Ltype.is_integer t) g.pool in
  match ints with
  | [] ->
    let k = random_kind g in
    let v = random_const g k in
    (v, Ltype.Integer k)
  | l -> Rng.pick g.rng l

(* -- step kinds ------------------------------------------------------------- *)

let gen_binop (g : genv) =
  let v, ty = random_int_value g in
  let kind = match ty with Ltype.Integer k -> k | _ -> Ltype.Int in
  let rhs =
    match Rng.int g.rng 3 with
    | 0 -> value_of_type g ty
    | 1 -> random_const g kind
    | _ ->
      (* masked shift amount *)
      Vconst (cint kind (Int64.of_int (Rng.int g.rng (Ltype.int_bits kind))))
  in
  let result =
    match Rng.int g.rng 8 with
    | 0 -> Builder.build_add g.b v rhs
    | 1 -> Builder.build_sub g.b v rhs
    | 2 -> Builder.build_mul g.b v rhs
    | 3 -> Builder.build_and g.b v rhs
    | 4 -> Builder.build_or g.b v rhs
    | 5 -> Builder.build_xor g.b v rhs
    | 6 ->
      (* nonzero divisor *)
      let d = 1 + Rng.int g.rng 30 in
      let div = Vconst (cint kind (Int64.of_int d)) in
      if Rng.bool_ g.rng then Builder.build_div g.b v div
      else Builder.build_rem g.b v div
    | _ ->
      let amount =
        Vconst (cint kind (Int64.of_int (Rng.int g.rng (Ltype.int_bits kind))))
      in
      if Rng.bool_ g.rng then Builder.build_shl g.b v amount
      else Builder.build_shr g.b v amount
  in
  push g result ty

let gen_cmp_select (g : genv) =
  let v1, ty = random_int_value g in
  let v2 = value_of_type g ty in
  let cmp =
    match Rng.int g.rng 6 with
    | 0 -> Builder.build_seteq g.b v1 v2
    | 1 -> Builder.build_setne g.b v1 v2
    | 2 -> Builder.build_setlt g.b v1 v2
    | 3 -> Builder.build_setgt g.b v1 v2
    | 4 -> Builder.build_setle g.b v1 v2
    | _ -> Builder.build_setge g.b v1 v2
  in
  let s = Builder.build_select g.b cmp v1 v2 in
  push g s ty

let gen_cast (g : genv) =
  let v, _ = random_int_value g in
  let target = Ltype.Integer (random_kind g) in
  push g (Builder.build_cast g.b v target) target

let gen_memory (g : genv) =
  (* an alloca written then read (possibly an array cell) *)
  if Rng.bool_ g.rng then begin
    let kind = random_kind g in
    let ty = Ltype.Integer kind in
    let slot = Builder.build_alloca g.b ty in
    ignore (Builder.build_store g.b (value_of_type g ty) slot);
    (* sometimes overwrite before reading *)
    if Rng.chance g.rng 40 then
      ignore (Builder.build_store g.b (value_of_type g ty) slot);
    push g (Builder.build_load g.b slot) ty
  end
  else begin
    let n = 2 + Rng.int g.rng 6 in
    let arr = Builder.build_alloca g.b (Ltype.array n Ltype.long) in
    let idx = Rng.int g.rng n in
    let cell = Builder.build_gep_const g.b arr [ 0; idx ] in
    ignore (Builder.build_store g.b (value_of_type g Ltype.long) cell);
    let cell2 = Builder.build_gep_const g.b arr [ 0; Rng.int g.rng n ] in
    push g (Builder.build_load g.b cell2) Ltype.long
  end

(* aggregates addressed through gep chains: a struct with an embedded
   array, or a nested array, on the stack *)
let gen_aggregate (g : genv) =
  if Rng.bool_ g.rng then begin
    (* struct { kind; [n x int]; long } *)
    let kind = random_kind g in
    let fty = Ltype.Integer kind in
    let n = 2 + Rng.int g.rng 4 in
    let sty = Ltype.struct_ [ fty; Ltype.array n Ltype.int_; Ltype.long ] in
    let s = Builder.build_alloca g.b sty in
    let field0 = Builder.build_gep_const g.b s [ 0; 0 ] in
    ignore (Builder.build_store g.b (value_of_type g fty) field0);
    let cell = Builder.build_gep_const g.b s [ 0; 1; Rng.int g.rng n ] in
    ignore (Builder.build_store g.b (value_of_type g Ltype.int_) cell);
    let field2 = Builder.build_gep_const g.b s [ 0; 2 ] in
    ignore (Builder.build_store g.b (value_of_type g Ltype.long) field2);
    (* read two of them back through fresh gep chains *)
    let r0 = Builder.build_load g.b (Builder.build_gep_const g.b s [ 0; 0 ]) in
    let r1 =
      Builder.build_load g.b
        (Builder.build_gep_const g.b s [ 0; 1; Rng.int g.rng n ])
    in
    push g r0 fty;
    push g r1 Ltype.int_
  end
  else begin
    (* [a x [b x long]] with constant in-bounds indices *)
    let a = 2 + Rng.int g.rng 3 and bdim = 2 + Rng.int g.rng 3 in
    let arr = Builder.build_alloca g.b (Ltype.array a (Ltype.array bdim Ltype.long)) in
    let cell =
      Builder.build_gep_const g.b arr [ 0; Rng.int g.rng a; Rng.int g.rng bdim ]
    in
    ignore (Builder.build_store g.b (value_of_type g Ltype.long) cell);
    (* a partial gep to a row, then a second gep into the row *)
    let row = Builder.build_gep_const g.b arr [ 0; Rng.int g.rng a ] in
    let cell2 = Builder.build_gep_const g.b row [ 0; Rng.int g.rng bdim ] in
    push g (Builder.build_load g.b cell2) Ltype.long
  end

(* load (and sometimes store) through an initialized global *)
let gen_global (g : genv) =
  match g.me.globals with
  | [] -> gen_memory g
  | gs -> (
    let gv = Rng.pick g.rng gs in
    let ptr = Vglobal gv in
    match Ltype.resolve g.m.mtypes gv.gty with
    | Ltype.Integer k ->
      let ty = Ltype.Integer k in
      if (not gv.gconstant) && Rng.chance g.rng 40 then
        ignore (Builder.build_store g.b (value_of_type g ty) ptr);
      push g (Builder.build_load g.b ptr) ty
    | Ltype.Array (n, (Ltype.Integer k as elt)) ->
      let cell = Builder.build_gep_const g.b ptr [ 0; Rng.int g.rng n ] in
      if (not gv.gconstant) && Rng.chance g.rng 40 then
        ignore (Builder.build_store g.b (value_of_type g elt) cell);
      push g (Builder.build_load g.b cell) (Ltype.Integer k)
    | Ltype.Struct fields ->
      let idx = Rng.int g.rng (List.length fields) in
      let fty = List.nth fields idx in
      let cell = Builder.build_gep_const g.b ptr [ 0; idx ] in
      if Ltype.is_integer fty then begin
        if (not gv.gconstant) && Rng.chance g.rng 40 then
          ignore (Builder.build_store g.b (value_of_type g fty) cell);
        push g (Builder.build_load g.b cell) fty
      end
    | _ -> ())

(* a diamond: if/else computing different updates, merged with a phi *)
let gen_diamond (g : genv) =
  let v1, ty = random_int_value g in
  let v2 = value_of_type g ty in
  let cond = Builder.build_setlt g.b v1 v2 in
  let then_bb = Builder.append_new_block g.b g.f "t" in
  let else_bb = Builder.append_new_block g.b g.f "e" in
  let join = Builder.append_new_block g.b g.f "j" in
  ignore (Builder.build_condbr g.b cond then_bb else_bb);
  Builder.position_at_end g.b then_bb;
  let tv = Builder.build_add g.b v1 (value_of_type g ty) in
  ignore (Builder.build_br g.b join);
  Builder.position_at_end g.b else_bb;
  let ev = Builder.build_xor g.b v2 (value_of_type g ty) in
  ignore (Builder.build_br g.b join);
  Builder.position_at_end g.b join;
  let phi = Builder.build_phi g.b ty [ (tv, then_bb); (ev, else_bb) ] in
  push g phi ty

(* a counted loop accumulating into a phi *)
let gen_loop (g : genv) =
  let v, ty = random_int_value g in
  let kind = match ty with Ltype.Integer k -> k | _ -> Ltype.Int in
  let trip = 1 + Rng.int g.rng 8 in
  let pre = Builder.insertion_block g.b in
  let loop = Builder.append_new_block g.b g.f "loop" in
  let exit_ = Builder.append_new_block g.b g.f "done" in
  ignore (Builder.build_br g.b loop);
  Builder.position_at_end g.b loop;
  let i = Builder.build_phi g.b Ltype.int_ [ (Vconst (cint Ltype.Int 0L), pre) ] in
  let acc = Builder.build_phi g.b ty [ (v, pre) ] in
  let acc' =
    match Rng.int g.rng 3 with
    | 0 -> Builder.build_add g.b acc (value_of_type g ty)
    | 1 -> Builder.build_xor g.b acc (random_const g kind)
    | _ -> Builder.build_sub g.b acc (Vconst (cint kind 3L))
  in
  let i' = Builder.build_add g.b i (Vconst (cint Ltype.Int 1L)) in
  (match (i, acc) with
  | Vinstr pi, Vinstr pa ->
    phi_add_incoming pi i' loop;
    phi_add_incoming pa acc' loop
  | _ -> assert false);
  let c = Builder.build_setlt g.b i' (Vconst (cint Ltype.Int (Int64.of_int trip))) in
  ignore (Builder.build_condbr g.b c loop exit_);
  Builder.position_at_end g.b exit_;
  push g acc' ty

(* a switch, sometimes with many cases *)
let gen_switch (g : genv) =
  let v, ty = random_int_value g in
  let kind = match ty with Ltype.Integer k -> k | _ -> Ltype.Int in
  let ncases =
    if Rng.chance g.rng 30 then 6 + Rng.int g.rng 8 else 1 + Rng.int g.rng 3
  in
  let join = Builder.append_new_block g.b g.f "sw.join" in
  let default = Builder.append_new_block g.b g.f "sw.d" in
  let case_blocks =
    List.init ncases (fun k -> (cint kind (Int64.of_int k), Builder.append_new_block g.b g.f "sw.c"))
  in
  ignore (Builder.build_switch g.b v default case_blocks);
  let incoming =
    List.mapi
      (fun k (_, blk) ->
        Builder.position_at_end g.b blk;
        ignore (Builder.build_br g.b join);
        (Vconst (cint kind (Int64.of_int (k * 7 + 1))), blk))
      case_blocks
  in
  Builder.position_at_end g.b default;
  ignore (Builder.build_br g.b join);
  Builder.position_at_end g.b join;
  let phi =
    Builder.build_phi g.b ty ((Vconst (cint kind 0L), default) :: incoming)
  in
  push g phi ty

(* call a previously generated function *)
let gen_call (g : genv) =
  match g.funcs with
  | [] -> gen_binop g
  | fs ->
    let callee = Rng.pick g.rng fs in
    let args =
      List.map (fun a -> value_of_type g a.aty) callee.fargs
    in
    let r = Builder.build_call g.b (Vfunc callee) args in
    push g r callee.freturn

(* an indirect call: select between two twins, or load a slot the
   function pointer was spilled to, or fetch from the constant table *)
let gen_indirect (g : genv) =
  match g.me.twins with
  | t0 :: _ :: _ ->
    let pick () = Vfunc (Rng.pick g.rng g.me.twins) in
    let fp =
      match Rng.int g.rng 3 with
      | 0 ->
        let v1, ty = random_int_value g in
        let cond = Builder.build_setlt g.b v1 (value_of_type g ty) in
        Builder.build_select g.b cond (pick ()) (pick ())
      | 1 ->
        (* spill a function pointer to the stack and reload it *)
        let slot = Builder.build_alloca g.b twin_ptr_ty in
        ignore (Builder.build_store g.b (pick ()) slot);
        Builder.build_load g.b slot
      | _ -> (
        match g.me.fptr_table with
        | Some table ->
          let n =
            match Ltype.resolve g.m.mtypes table.gty with
            | Ltype.Array (n, _) -> n
            | _ -> 1
          in
          let cell =
            Builder.build_gep_const g.b (Vglobal table) [ 0; Rng.int g.rng n ]
          in
          Builder.build_load g.b cell
        | None -> Vfunc t0)
    in
    let args = List.map (fun ty -> value_of_type g ty) twin_params in
    let r = Builder.build_call g.b fp args in
    push g r Ltype.long
  | _ -> gen_call g

(* invoke a thrower; both the normal and the unwind path reach a join
   phi, so a throw is always observable but never escapes *)
let gen_invoke (g : genv) =
  match g.me.throwers with
  | [] -> gen_call g
  | ts ->
    let callee = Rng.pick g.rng ts in
    let args = List.map (fun a -> value_of_type g a.aty) callee.fargs in
    let normal = Builder.append_new_block g.b g.f "inv.n" in
    let unwind = Builder.append_new_block g.b g.f "inv.u" in
    let join = Builder.append_new_block g.b g.f "inv.j" in
    let r =
      Builder.build_invoke g.b (Vfunc callee) args ~normal ~unwind
    in
    Builder.position_at_end g.b normal;
    ignore (Builder.build_br g.b join);
    Builder.position_at_end g.b unwind;
    ignore (Builder.build_br g.b join);
    Builder.position_at_end g.b join;
    let phi =
      Builder.build_phi g.b callee.freturn
        [ (r, normal); (Vconst (cint Ltype.Long (-77L)), unwind) ]
    in
    push g phi callee.freturn

(* -- functions and modules ---------------------------------------------------- *)

let run_steps (g : genv) (steps : int) =
  for _ = 1 to steps do
    match Rng.int g.rng 14 with
    | 0 | 1 -> gen_binop g
    | 2 -> gen_cmp_select g
    | 3 -> gen_cast g
    | 4 -> gen_memory g
    | 5 -> gen_diamond g
    | 6 -> gen_loop g
    | 7 -> gen_switch g
    | 8 -> gen_call g
    | 9 -> gen_aggregate g
    | 10 -> gen_global g
    | 11 -> gen_indirect g
    | 12 -> gen_invoke g
    | _ -> gen_binop g
  done

(* return a long mixing a few pool values *)
let finish_function (g : genv) =
  let mix =
    List.fold_left
      (fun acc (v, ty) ->
        if Ltype.is_integer ty || ty = Ltype.Bool then
          let as_long =
            if ty = Ltype.long then v else Builder.build_cast g.b v Ltype.long
          in
          Builder.build_xor g.b acc as_long
        else acc)
      (Vconst (cint Ltype.Long 0L))
      (List.filteri (fun k _ -> k < 5) g.pool)
  in
  ignore (Builder.build_ret g.b (Some mix))

let gen_function (rng : Rng.t) (m : modul) (me : menv) (prior : func list)
    ?params (name : string) : func =
  let params =
    match params with
    | Some ps -> ps
    | None ->
      let nparams = 1 + Rng.int rng 3 in
      List.init nparams (fun k ->
          (Printf.sprintf "p%d" k, Ltype.Integer (Rng.pick rng int_kinds)))
  in
  let b = Builder.for_module m in
  let f = Builder.start_function b m ~linkage:Internal name Ltype.long params in
  let g =
    { rng; m; b;
      pool = List.map (fun a -> (Varg a, a.aty)) f.fargs;
      funcs = prior; me; f }
  in
  let steps = 4 + Rng.int rng 12 in
  run_steps g steps;
  finish_function g;
  f

(* a thrower: computes a little, then unwinds on a data-dependent path *)
let gen_thrower (rng : Rng.t) (m : modul) (me : menv) (name : string) : func =
  let b = Builder.for_module m in
  let f =
    Builder.start_function b m ~linkage:Internal name Ltype.long
      [ ("p0", Ltype.long); ("p1", Ltype.Integer (Rng.pick rng int_kinds)) ]
  in
  let g =
    { rng; m; b;
      pool = List.map (fun a -> (Varg a, a.aty)) f.fargs;
      funcs = []; me; f }
  in
  run_steps g (1 + Rng.int rng 4);
  let v, ty = random_int_value g in
  let bound =
    Vconst (cint_of_ty ty (Int64.of_int (Rng.int rng 200 - 100)))
  in
  let cond = Builder.build_setlt g.b v bound in
  let throw_bb = Builder.append_new_block g.b f "throw" in
  let ret_bb = Builder.append_new_block g.b f "ok" in
  ignore (Builder.build_condbr g.b cond throw_bb ret_bb);
  Builder.position_at_end g.b throw_bb;
  ignore (Builder.build_unwind g.b);
  Builder.position_at_end g.b ret_bb;
  finish_function g;
  f

(* module-level globals, with initializers covering scalars, arrays,
   structs and (when twins exist) a constant function-pointer table *)
let gen_globals (rng : Rng.t) (m : modul) (twins : func list) :
    gvar list * gvar option =
  let mk name ty init constant =
    let g = mk_gvar ~linkage:Internal ~constant ~init ~name ~ty () in
    add_gvar m g;
    g
  in
  let globals = ref [] in
  let n = 2 + Rng.int rng 3 in
  for k = 0 to n - 1 do
    let name = Printf.sprintf "g%d" k in
    let gv =
      match Rng.int rng 3 with
      | 0 ->
        let kind = List.nth int_kinds (Rng.int rng (List.length int_kinds)) in
        mk name (Ltype.Integer kind)
          (cint kind (Int64.of_int (Rng.int rng 1000 - 500)))
          (Rng.chance rng 30)
      | 1 ->
        let len = 2 + Rng.int rng 5 in
        let init =
          Carray
            ( Ltype.long,
              List.init len (fun j ->
                  cint Ltype.Long (Int64.of_int ((j * 13) + Rng.int rng 50))) )
        in
        mk name (Ltype.array len Ltype.long) init (Rng.chance rng 30)
      | _ ->
        let sty = Ltype.struct_ [ Ltype.int_; Ltype.long; Ltype.short ] in
        let init =
          Cstruct
            ( sty,
              [ cint Ltype.Int (Int64.of_int (Rng.int rng 100));
                cint Ltype.Long (Int64.of_int (Rng.int rng 100000));
                cint Ltype.Short (Int64.of_int (Rng.int rng 30)) ] )
        in
        mk name sty init false
    in
    globals := gv :: !globals
  done;
  let table =
    match twins with
    | _ :: _ :: _ when Rng.chance rng 80 ->
      let len = 2 + Rng.int rng 3 in
      let init =
        Carray
          ( twin_ptr_ty,
            List.init len (fun _ -> Cfunc (List.nth twins (Rng.int rng (List.length twins)))) )
      in
      Some (mk "fptrs" (Ltype.array len twin_ptr_ty) init true)
    | _ -> None
  in
  (List.rev !globals, table)

let gen_module (seed : int) : modul =
  let rng = Rng.create seed in
  let m = mk_module (Printf.sprintf "rand%d" seed) in
  (* twins first: the function-pointer table initializer needs them *)
  let me0 = { twins = []; throwers = []; globals = []; fptr_table = None } in
  let twin_sig = List.mapi (fun k ty -> (Printf.sprintf "p%d" k, ty)) twin_params in
  let ntwins = 2 + Rng.int rng 2 in
  let twins =
    List.init ntwins (fun k ->
        gen_function rng m me0 [] ~params:twin_sig (Printf.sprintf "tw%d" k))
  in
  let globals, fptr_table = gen_globals rng m twins in
  let me1 = { me0 with twins; globals; fptr_table } in
  let nthrow = 1 + Rng.int rng 2 in
  let throwers =
    List.init nthrow (fun k -> gen_thrower rng m me1 (Printf.sprintf "th%d" k))
  in
  let me = { me1 with throwers } in
  let nfuncs = 1 + Rng.int rng 4 in
  let funcs = ref twins in
  for k = 0 to nfuncs - 1 do
    funcs := gen_function rng m me !funcs (Printf.sprintf "f%d" k) :: !funcs
  done;
  (* main calls every safe function with constant arguments and mixes
     results; throwers are only reached through invokes inside funcs *)
  let b = Builder.for_module m in
  let _main = Builder.start_function b m ~linkage:External "main" Ltype.long [] in
  let result =
    List.fold_left
      (fun acc f ->
        let args =
          List.map
            (fun a ->
              match a.aty with
              | Ltype.Integer k ->
                Vconst (cint k (Int64.of_int (Rng.int rng 500 - 250)))
              | ty -> Vconst (Cundef ty))
            f.fargs
        in
        let r = Builder.build_call b (Vfunc f) args in
        Builder.build_xor b acc r)
      (Vconst (cint Ltype.Long 0L))
      !funcs
  in
  ignore (Builder.build_ret b (Some result));
  m

(* The multi-oracle differential harness.

   Each oracle checks one consistency claim across the IR's forms and
   tiers.  They are judges, not transformers: anything that needs to
   rewrite the module (the optimization oracle) works on a structural
   clone, built by hand rather than through the printers or codecs so
   that a serializer bug cannot corrupt an unrelated oracle's input. *)

open Llvm_ir
open Ir

type verdict = Pass | Fail of string | Skip of string

type t = {
  o_name : string;
  o_descr : string;
  check : modul -> verdict;
}

let fuel = 10_000_000

(* -- structural clone ------------------------------------------------------- *)

let clone (m : modul) : modul =
  let nm = mk_module m.mname in
  Hashtbl.iter (fun name ty -> define_type nm name ty) m.mtypes;
  let gmap : (int, gvar) Hashtbl.t = Hashtbl.create 16 in
  let fmap : (int, func) Hashtbl.t = Hashtbl.create 16 in
  let amap : (int, arg) Hashtbl.t = Hashtbl.create 32 in
  let bmap : (int, block) Hashtbl.t = Hashtbl.create 64 in
  let imap : (int, instr) Hashtbl.t = Hashtbl.create 256 in
  (* shells for globals and functions first: constants and operands may
     reference any of them in any order *)
  List.iter
    (fun g ->
      let ng =
        mk_gvar ~linkage:g.glinkage ~constant:g.gconstant ~name:g.gname
          ~ty:g.gty ()
      in
      add_gvar nm ng;
      Hashtbl.replace gmap g.gid ng)
    m.mglobals;
  List.iter
    (fun f ->
      let nf =
        mk_func ~linkage:f.flinkage ~varargs:f.fvarargs ~name:f.fname
          ~return:f.freturn
          ~params:(List.map (fun a -> (a.aname, a.aty)) f.fargs)
          ()
      in
      add_func nm nf;
      Hashtbl.replace fmap f.fid nf;
      List.iter2 (fun a na -> Hashtbl.replace amap a.aid na) f.fargs nf.fargs;
      List.iter
        (fun b ->
          let nb = mk_block ~name:b.bname () in
          append_block nf nb;
          Hashtbl.replace bmap b.bid nb)
        f.fblocks)
    m.mfuncs;
  let rec conv_const (c : const) : const =
    match c with
    | Cbool _ | Cint _ | Cfloat _ | Cnull _ | Cundef _ | Czero _ -> c
    | Carray (ty, elts) -> Carray (ty, List.map conv_const elts)
    | Cstruct (ty, elts) -> Cstruct (ty, List.map conv_const elts)
    | Cgvar g -> Cgvar (Hashtbl.find gmap g.gid)
    | Cfunc f -> Cfunc (Hashtbl.find fmap f.fid)
    | Ccast (ty, c) -> Ccast (ty, conv_const c)
  in
  let conv_value (v : value) : value =
    match v with
    | Vconst c -> Vconst (conv_const c)
    | Vinstr i -> Vinstr (Hashtbl.find imap i.iid)
    | Varg a -> Varg (Hashtbl.find amap a.aid)
    | Vglobal g -> Vglobal (Hashtbl.find gmap g.gid)
    | Vfunc f -> Vfunc (Hashtbl.find fmap f.fid)
    | Vblock b -> Vblock (Hashtbl.find bmap b.bid)
  in
  (* instruction shells in order (phis may reference instructions that
     appear later), then operands in a second pass *)
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          let nb = Hashtbl.find bmap b.bid in
          List.iter
            (fun i ->
              let ni =
                mk_instr ~name:i.iname ?alloc_ty:i.alloc_ty ~ty:i.ity i.iop []
              in
              append_instr nb ni;
              Hashtbl.replace imap i.iid ni)
            b.instrs)
        f.fblocks)
    m.mfuncs;
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              let ni = Hashtbl.find imap i.iid in
              set_operands ni (Array.map conv_value i.operands))
            b.instrs)
        f.fblocks)
    m.mfuncs;
  List.iter
    (fun g ->
      match g.ginit with
      | Some c -> (Hashtbl.find gmap g.gid).ginit <- Some (conv_const c)
      | None -> ())
    m.mglobals;
  nm

(* -- shared helpers --------------------------------------------------------- *)

let verify_errors (m : modul) : string option =
  match Verify.verify_module m with
  | [] -> (
    match Llvm_analysis.Ssa_check.assert_ssa m with
    | () -> None
    | exception e -> Some (Printexc.to_string e))
  | errs ->
    Some
      (String.concat "; "
         (List.map (fun e -> Fmt.str "%a" Verify.pp_error e)
            (List.filteri (fun k _ -> k < 5) errs)))

type obs = {
  ob_status : string;
  ob_output : string;
  ob_instrs : int;
  ob_profile : (int * int) list;
  ob_fuel_out : bool;
}

let observe ?profile (kind : Llvm_exec.Engine.kind) (m : modul) : obs =
  let r, p = Llvm_exec.Engine.run_main ~fuel ~profiling:true ?profile kind m in
  let fuel_out = ref false in
  let status =
    match r.Llvm_exec.Interp.status with
    | `Returned v -> Fmt.str "returned %a" Llvm_exec.Interp.pp_rtval v
    | `Unwound -> "unwound"
    | `Exited c -> Fmt.str "exited %d" c
    | `Trapped msg ->
      if msg = "out of fuel (infinite loop?)" then fuel_out := true;
      "trapped: " ^ msg
  in
  { ob_status = status;
    ob_output = r.Llvm_exec.Interp.output;
    ob_instrs = r.Llvm_exec.Interp.instructions;
    ob_profile =
      List.sort compare
        (Hashtbl.fold
           (fun k v acc -> (k, v) :: acc)
           p.Llvm_exec.Interp.counts []);
    ob_fuel_out = !fuel_out }

(* Behaviour only (status + output): the module may have been
   transformed, so instruction counts and profiles are not comparable. *)
let behaviour (m : modul) : string * bool =
  let o = observe Llvm_exec.Engine.Interp_tier m in
  (o.ob_status ^ "|" ^ o.ob_output, o.ob_fuel_out)

(* -- the five oracles ------------------------------------------------------- *)

let verify_oracle =
  { o_name = "verify";
    o_descr = "verifier acceptance and SSA dominance";
    check =
      (fun m ->
        match verify_errors m with
        | None -> Pass
        | Some e -> Fail e) }

let asm_oracle =
  { o_name = "asm";
    o_descr = "print -> parse -> print is a fixpoint";
    check =
      (fun m ->
        let s1 = Printer.module_to_string m in
        match Llvm_asm.Parser.parse_module ~name:m.mname s1 with
        | exception Llvm_asm.Parser.Parse_error (msg, line) ->
          Fail (Printf.sprintf "parse error at line %d: %s" line msg)
        | exception e -> Fail ("parser raised " ^ Printexc.to_string e)
        | m2 -> (
          match verify_errors m2 with
          | Some e -> Fail ("reparsed module invalid: " ^ e)
          | None ->
            let s2 = Printer.module_to_string m2 in
            if s1 <> s2 then Fail "print/parse/print is not a fixpoint"
            else Pass)) }

let bitcode_oracle =
  { o_name = "bitcode";
    o_descr = "encode -> decode -> encode is lossless and stable";
    check =
      (fun m ->
        match Llvm_bitcode.Encoder.encode m with
        | exception e -> Fail ("encoder raised " ^ Printexc.to_string e)
        | image, _ -> (
          match Llvm_bitcode.Decoder.decode image with
          | exception Llvm_bitcode.Decoder.Malformed msg ->
            Fail ("decoder rejected own encoder's image: " ^ msg)
          | exception e -> Fail ("decoder raised " ^ Printexc.to_string e)
          | m2 ->
            if Printer.module_to_string m2 <> Printer.module_to_string m then
              Fail "decoded module prints differently"
            else (
              match verify_errors m2 with
              | Some e -> Fail ("decoded module invalid: " ^ e)
              | None ->
                let image2, _ = Llvm_bitcode.Encoder.encode m2 in
                if image2 <> image then
                  Fail "re-encoding the decoded module changed bytes"
                else Pass))) }

let exec_oracle =
  { o_name = "exec";
    o_descr = "interp, bytecode and tiered execution are identical";
    check =
      (fun m ->
        match observe Llvm_exec.Engine.Interp_tier m with
        | exception e -> Fail ("interpreter raised " ^ Printexc.to_string e)
        | reference ->
          if reference.ob_fuel_out then Skip "reference run out of fuel"
          else if
            String.length reference.ob_status >= 7
            && String.sub reference.ob_status 0 7 = "trapped"
          then Fail ("generated program trapped: " ^ reference.ob_status)
          else (
            let rec check_tiers = function
              | [] -> Pass
              | kind :: rest -> (
                match observe kind m with
                | exception e ->
                  Fail
                    (Printf.sprintf "%s tier raised %s"
                       (Llvm_exec.Engine.kind_name kind)
                       (Printexc.to_string e))
                | got ->
                  let name = Llvm_exec.Engine.kind_name kind in
                  if got.ob_status <> reference.ob_status then
                    Fail
                      (Printf.sprintf "%s status %s != interp %s" name
                         got.ob_status reference.ob_status)
                  else if got.ob_output <> reference.ob_output then
                    Fail (name ^ " output differs")
                  else if got.ob_instrs <> reference.ob_instrs then
                    Fail
                      (Printf.sprintf "%s executed %d instrs, interp %d" name
                         got.ob_instrs reference.ob_instrs)
                  else if got.ob_profile <> reference.ob_profile then
                    Fail (name ^ " block profile differs")
                  else check_tiers rest)
            in
            check_tiers
              [ Llvm_exec.Engine.Bytecode_tier; Llvm_exec.Engine.Tiered ])) }

let check_transform ~what (transform : modul -> unit) (baseline : string)
    (m : modul) : verdict =
  let c = clone m in
  match transform c with
  | exception e -> Fail (what ^ " raised " ^ Printexc.to_string e)
  | () -> (
    match verify_errors c with
    | Some e -> Fail (what ^ " broke the module: " ^ e)
    | None ->
      let got, fuel_out = behaviour c in
      if fuel_out then Skip (what ^ ": transformed run out of fuel")
      else if got <> baseline then
        Fail (Printf.sprintf "%s changed behaviour: %s -> %s" what baseline got)
      else Pass)

let opt_against (passes : (string * (modul -> unit)) list) (m : modul) : verdict
    =
  let baseline, fuel_out = behaviour m in
  if fuel_out then Skip "baseline run out of fuel"
  else if
    String.length baseline >= 7 && String.sub baseline 0 7 = "trapped"
    (* a trapping baseline is already degenerate (the generator never
       produces one; the reducer can) — nothing to preserve *)
  then Skip ("baseline " ^ baseline)
  else
    let rec go = function
      | [] -> Pass
      | (what, transform) :: rest -> (
        match check_transform ~what transform baseline m with
        | Pass -> go rest
        | v -> v)
    in
    go passes

let opt_oracle =
  { o_name = "opt";
    o_descr = "-O0 vs every pass and the full pipelines";
    check =
      (fun m ->
        let passes =
          List.map
            (fun (p : Llvm_transforms.Pass.t) ->
              (p.Llvm_transforms.Pass.name,
               fun c -> ignore (Llvm_transforms.Pass.run_pass p c)))
            (List.filter
               (fun (p : Llvm_transforms.Pass.t) ->
                 (* analysis-only; prints findings to stderr *)
                 p.Llvm_transforms.Pass.name <> "lint")
               Llvm_transforms.Pipelines.all_passes)
          @ [ ("-O2", fun c -> Llvm_transforms.Pipelines.optimize_module ~level:2 c);
              ("-O3", fun c -> Llvm_transforms.Pipelines.optimize_module ~level:3 c)
            ]
        in
        opt_against passes m) }

(* -- the speculation oracle (the sixth check) ------------------------------- *)

(* Train a one-run profile by interpreting a clone with the call-target
   instrumentation on.  The clone preserves every function and block
   name, so the profile's keys apply to the original module.  [None]
   when the module cannot even be materialized. *)
let train_profile (m : modul) : Llvm_profile.Profile.t option =
  let t = clone m in
  match
    let e =
      Llvm_exec.Engine.create ~profiling:true Llvm_exec.Engine.Interp_tier t
    in
    let mach = e.Llvm_exec.Engine.mach in
    (match find_func t "main" with
    | Some main -> ignore (Llvm_exec.Interp.run_function ~fuel mach main [])
    | None -> ());
    Llvm_profile.Profile.of_run t
      ~block_counts:mach.Llvm_exec.Interp.block_counts
      ~call_counts:mach.Llvm_exec.Interp.call_counts
  with
  | p -> Some p
  | exception _ -> None

(* Aggressive thresholds: any site whose hottest target took half the
   observed calls speculates.  Correctness must not depend on the
   thresholds (the guard protects arbitrary profiles), so the oracle
   uses the most promotion-happy setting. *)
let spec_min_count = 1
let spec_min_share = 0.5

let spec_oracle =
  { o_name = "spec";
    o_descr = "speculation on vs. off: identical behaviour and output";
    check =
      (fun m ->
        let baseline, fuel_out = behaviour m in
        if fuel_out then Skip "baseline run out of fuel"
        else if String.length baseline >= 7 && String.sub baseline 0 7 = "trapped"
        then Skip ("baseline " ^ baseline)
        else
          match train_profile m with
          | None -> Skip "training run failed to materialize"
          | Some p -> (
            let c = clone m in
            match
              Llvm_transforms.Pgo.optimize ~min_count:spec_min_count
                ~min_share:spec_min_share p c
            with
            | exception e -> Fail ("speculation raised " ^ Printexc.to_string e)
            | (_ : Llvm_transforms.Pgo.stats) -> (
              match verify_errors c with
              | Some e -> Fail ("speculated module invalid: " ^ e)
              | None ->
                (* every tier of the speculated module — hot/cold layout
                   driven by the same profile — must reproduce the
                   unspeculated behaviour, deopts included *)
                let rec tiers = function
                  | [] -> Pass
                  | kind :: rest -> (
                    let name = Llvm_exec.Engine.kind_name kind in
                    match observe ~profile:p kind c with
                    | exception e ->
                      Fail
                        (Printf.sprintf "%s tier on speculated module raised %s"
                           name (Printexc.to_string e))
                    | o ->
                      if o.ob_fuel_out then
                        Skip (name ^ ": speculated run out of fuel")
                      else if o.ob_status ^ "|" ^ o.ob_output <> baseline then
                        Fail
                          (Printf.sprintf
                             "%s: speculation changed behaviour: %s -> %s" name
                             baseline
                             (o.ob_status ^ "|" ^ o.ob_output))
                      else tiers rest)
                in
                tiers
                  [ Llvm_exec.Engine.Interp_tier; Llvm_exec.Engine.Bytecode_tier;
                    Llvm_exec.Engine.Tiered ]))) }

let all =
  [ verify_oracle; asm_oracle; bitcode_oracle; exec_oracle; opt_oracle;
    spec_oracle ]

let find name = List.find_opt (fun o -> o.o_name = name) all

let pass_oracle (p : Llvm_transforms.Pass.t) =
  { o_name = "pass:" ^ p.Llvm_transforms.Pass.name;
    o_descr = "behaviour preserved by " ^ p.Llvm_transforms.Pass.name;
    check =
      (fun m ->
        opt_against
          [ (p.Llvm_transforms.Pass.name,
             fun c -> ignore (Llvm_transforms.Pass.run_pass p c)) ]
          m) }

(* A deliberately wrong transformation: swapping sub operands negates
   every non-trivial difference.  It exists so the harness can prove it
   would catch a real miscompile — the reducer and bugpoint tests drive
   their oracles with it.  Registered (so bugpoint/opt can name it) but
   never part of any pipeline. *)
let injected_bug_pass =
  Llvm_transforms.Pass.make ~name:"inject-sub-swap"
    ~description:
      "DELIBERATELY WRONG: swap every sub's operands (harness self-test)"
    (fun m ->
      let changed = ref false in
      List.iter
        (fun f ->
          iter_instrs
            (fun i ->
              if i.iop = Sub && Array.length i.operands = 2 then begin
                let a = i.operands.(0) and b = i.operands.(1) in
                if not (value_equal a b) then begin
                  set_operand i 0 b;
                  set_operand i 1 a;
                  changed := true
                end
              end)
            f)
        m.mfuncs;
      !changed)

let () = Llvm_transforms.Pass.register injected_bug_pass

(* The speculation twin of [inject-sub-swap]: promote indirect sites to
   their profile-predicted targets with the guard ELIDED.  On any
   module where a site's target varies within the run, the promotion is
   a real miscompile the [pass:inject-spec-noguard] oracle must catch
   (and bugpoint must reduce). *)
let injected_spec_pass =
  Llvm_transforms.Pass.make ~name:"inject-spec-noguard"
    ~description:
      "DELIBERATELY WRONG: speculate indirect calls without guards (harness \
       self-test)"
    (fun m ->
      match train_profile m with
      | None -> false
      | Some p ->
        Llvm_transforms.Pgo.promote_unguarded ~min_count:spec_min_count
          ~min_share:spec_min_share p m
        > 0)

let () = Llvm_transforms.Pass.register injected_spec_pass

let of_spec (spec : string) : t option =
  match find spec with
  | Some o -> Some o
  | None ->
    if String.length spec > 5 && String.sub spec 0 5 = "pass:" then
      let pname = String.sub spec 5 (String.length spec - 5) in
      Option.map pass_oracle (Llvm_transforms.Pass.find pname)
    else None

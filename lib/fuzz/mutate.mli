(** Semantics-preserving-by-construction IR mutators.

    Each mutator rewrites a module in place without changing its
    observable behaviour, so every oracle that held for the original
    module must keep holding for the mutant — a divergence after
    mutation is a compiler bug, not a mutator artifact.

    Mutators draw randomness from an {!Llvm_workloads.Rng.t}; chains
    are replayable from a [(seed, path)] pair via {!chain_rng}. *)

type t = {
  mu_name : string;
  apply : Llvm_workloads.Rng.t -> Llvm_ir.Ir.modul -> bool;
      (** [true] when the module was changed. *)
}

(** Split a basic block at a random legal point, rewiring successor
    phis to the new tail block. *)
val split_block : t

(** Merge a straight-line [br]-pair back into one block. *)
val merge_blocks : t

(** Swap two adjacent instructions whose dependencies and effects
    permit it. *)
val reorder_instrs : t

(** Replace an integer literal [c] with [(c - d) + d] computed by a
    fresh instruction — the value is unchanged but constant folding,
    ranges and encodings all see different shapes. *)
val perturb_const : t

(** Run a random subsequence of the registered optimization passes in
    a random order (each pass preserves semantics, so any order does). *)
val shuffle_passes : t

val all : t list

(** The RNG stream for mutation chain [path] of [seed]: independent of
    any other path, so one failing chain replays without the rest. *)
val chain_rng : seed:int -> path:int -> Llvm_workloads.Rng.t

(** Apply [count] random mutations drawn from [rng]; returns the names
    of the mutators that actually changed the module, in order. *)
val apply : rng:Llvm_workloads.Rng.t -> ?count:int -> Llvm_ir.Ir.modul -> string list

(** [apply] with the stream for [(seed, path)]. *)
val apply_chain :
  seed:int -> path:int -> ?count:int -> Llvm_ir.Ir.modul -> string list

(* Semantics-preserving-by-construction IR mutators.

   Every rewrite here must keep the module's observable behaviour
   (status, output, memory trace) bit-for-bit identical: the fuzzing
   harness runs the same oracles on mutants as on pristine modules, so
   a mutator that changed semantics would drown real bugs in noise.

   Mutators are deliberately conservative — when a candidate site's
   legality is unclear they skip it rather than reason harder. *)

open Llvm_ir
open Ir
open Llvm_workloads

type t = {
  mu_name : string;
  apply : Rng.t -> modul -> bool;
}

let defined_funcs (m : modul) : func list =
  List.filter (fun f -> not (is_declaration f)) m.mfuncs

let is_phi (i : instr) = i.iop = Phi

(* Instructions whose relative order is observable: writers, callers,
   allocations (address assignment order!), and potential traps. *)
let effectful (i : instr) : bool = has_side_effects i.iop || may_trap i

let reads_memory (i : instr) : bool = i.iop = Load

(* -- split_block ------------------------------------------------------------ *)

(* Insert [nb] right after [b] in its function's block list. *)
let insert_block_after (f : func) (b : block) (nb : block) =
  nb.bparent <- Some f;
  let rec go = function
    | [] -> [ nb ]
    | x :: rest when x == b -> x :: nb :: rest
    | x :: rest -> x :: go rest
  in
  f.fblocks <- go f.fblocks

let split_block =
  let apply rng m =
    let cands =
      List.concat_map
        (fun f ->
          List.filter_map
            (fun b -> if List.length b.instrs >= 2 then Some (f, b) else None)
            f.fblocks)
        (defined_funcs m)
    in
    match cands with
    | [] -> false
    | _ ->
      let f, b = Rng.pick rng cands in
      let n = List.length b.instrs in
      let nphis = List.length (List.filter is_phi b.instrs) in
      (* keep phis with their predecessors, keep the terminator in the
         tail: any point in [nphis, n-1] is legal *)
      let p = nphis + Rng.int rng (n - nphis) in
      if p >= n then false
      else begin
        let prefix = List.filteri (fun k _ -> k < p) b.instrs in
        let suffix = List.filteri (fun k _ -> k >= p) b.instrs in
        let nb = mk_block ~name:(b.bname ^ ".sp") () in
        insert_block_after f b nb;
        b.instrs <- prefix;
        nb.instrs <- suffix;
        List.iter (fun i -> i.iparent <- Some nb) suffix;
        (* the terminator moved to [nb]: successor phis that named [b]
           as a predecessor must now name [nb] *)
        (match terminator nb with
        | Some term ->
          List.iter
            (fun s ->
              List.iter
                (fun phi ->
                  if is_phi phi then
                    Array.iteri
                      (fun idx v ->
                        match v with
                        | Vblock pb when pb == b ->
                          set_operand phi idx (Vblock nb)
                        | _ -> ())
                      phi.operands)
                s.instrs)
            (successors term)
        | None -> ());
        append_instr b (mk_instr ~ty:Ltype.Void Br [ Vblock nb ]);
        true
      end
  in
  { mu_name = "split-block"; apply }

(* -- merge_blocks ----------------------------------------------------------- *)

let merge_blocks =
  let apply rng m =
    let cands =
      List.concat_map
        (fun f ->
          List.filter_map
            (fun b ->
              match terminator b with
              | Some ({ iop = Br; operands = [| Vblock s |]; _ } as _t)
                when s != b
                     && s != entry_block f
                     && (match predecessors s with [ p ] -> p == b | _ -> false)
                     && not (List.exists is_phi s.instrs) ->
                Some (f, b, s)
              | _ -> None)
            f.fblocks)
        (defined_funcs m)
    in
    match cands with
    | [] -> false
    | _ ->
      let f, b, s = Rng.pick rng cands in
      (match terminator b with
      | Some term -> erase_instr term
      | None -> ());
      List.iter (fun i -> i.iparent <- Some b) s.instrs;
      b.instrs <- b.instrs @ s.instrs;
      s.instrs <- [];
      (* successor phis (and nothing else, now) referenced [s] *)
      replace_all_uses_with (Vblock s) (Vblock b);
      remove_block f s;
      true
  in
  { mu_name = "merge-blocks"; apply }

(* -- reorder_instrs --------------------------------------------------------- *)

let reorder_instrs =
  let legal_swap (i : instr) (j : instr) =
    (* after the swap [j] runs first: it must not use [i]'s value, and
       the pair must not have an observable relative order *)
    let j_uses_i =
      Array.exists
        (function Vinstr x -> x == i | _ -> false)
        j.operands
    in
    let ordered =
      (effectful i && (effectful j || reads_memory j))
      || (reads_memory i && effectful j)
    in
    (not j_uses_i) && not ordered
  in
  let apply rng m =
    let cands =
      List.concat_map
        (fun f ->
          List.concat_map
            (fun b ->
              let rec pairs = function
                | i :: (j :: _ as rest) ->
                  if
                    (not (is_phi i)) && (not (is_phi j))
                    && (not (is_terminator i.iop))
                    && (not (is_terminator j.iop))
                    && legal_swap i j
                  then (b, i, j) :: pairs rest
                  else pairs rest
                | _ -> []
              in
              pairs b.instrs)
            f.fblocks)
        (defined_funcs m)
    in
    match cands with
    | [] -> false
    | _ ->
      let b, i, j = Rng.pick rng cands in
      let rec swap = function
        | x :: y :: rest when x == i && y == j -> j :: i :: rest
        | x :: rest -> x :: swap rest
        | [] -> []
      in
      b.instrs <- swap b.instrs;
      true
  in
  { mu_name = "reorder-instrs"; apply }

(* -- perturb_const ---------------------------------------------------------- *)

(* Sites where an integer literal may legally become a register: binary
   operands (except divisors, which must stay provably nonzero),
   comparison operands, select arms, stored values, call arguments and
   return values.  Switch cases, gep indices, phi values and allocation
   counts keep their literals. *)
let perturbable (i : instr) (idx : int) : bool =
  match i.iop with
  | Add | Sub | Mul | And | Or | Xor | Shl | Shr -> true
  | Div | Rem -> idx = 0
  | SetEQ | SetNE | SetLT | SetGT | SetLE | SetGE -> true
  | Select -> idx >= 1
  | Store -> idx = 0
  | Call -> idx >= 1
  | Ret -> true
  | _ -> false

let perturb_const =
  let apply rng m =
    let cands =
      List.concat_map
        (fun f ->
          fold_instrs
            (fun acc i ->
              if is_phi i then acc
              else
                Array.to_list i.operands
                |> List.mapi (fun idx v -> (idx, v))
                |> List.filter_map (fun (idx, v) ->
                       match v with
                       | Vconst (Cint ((Ltype.Integer kind as ty), c))
                         when perturbable i idx ->
                         Some (i, idx, ty, kind, c)
                       | _ -> None)
                |> fun l -> l @ acc)
            [] f)
        (defined_funcs m)
    in
    match cands with
    | [] -> false
    | _ ->
      let i, idx, ty, kind, c = Rng.pick rng cands in
      let d = Int64.of_int (1 + Rng.int rng 997) in
      (* (c - d) + d wraps back to exactly c in every integer kind *)
      let lhs = cint kind (Int64.sub c d) in
      let rhs = cint kind d in
      let t = mk_instr ~ty Add [ Vconst lhs; Vconst rhs ] in
      insert_before ~point:i t;
      set_operand i idx (Vinstr t);
      true
  in
  { mu_name = "perturb-const"; apply }

(* -- shuffle_passes --------------------------------------------------------- *)

(* The registered transformation passes: lint is analysis-only and
   prints findings to stderr, which is pure noise under fuzzing. *)
let transform_passes () =
  List.filter
    (fun (p : Llvm_transforms.Pass.t) -> p.Llvm_transforms.Pass.name <> "lint")
    Llvm_transforms.Pipelines.all_passes

let shuffle_passes =
  let apply rng m =
    let keyed =
      List.map (fun p -> (Rng.int rng 1_000_000, p)) (transform_passes ())
    in
    let shuffled = List.map snd (List.sort compare keyed) in
    let k = 1 + Rng.int rng (List.length shuffled) in
    let subset = List.filteri (fun n _ -> n < k) shuffled in
    ignore (Llvm_transforms.Pass.run_sequence subset m);
    true
  in
  { mu_name = "shuffle-passes"; apply }

let all =
  [ split_block; merge_blocks; reorder_instrs; perturb_const; shuffle_passes ]

(* -- chains ----------------------------------------------------------------- *)

let chain_rng ~seed ~path =
  let parent = Rng.create seed in
  let child = ref (Rng.split parent) in
  for _ = 1 to path do
    child := Rng.split parent
  done;
  !child

let apply ~rng ?(count = 3) (m : modul) : string list =
  let applied = ref [] in
  for _ = 1 to count do
    let mu = Rng.pick rng all in
    if mu.apply rng m then applied := mu.mu_name :: !applied
  done;
  List.rev !applied

let apply_chain ~seed ~path ?count (m : modul) : string list =
  apply ~rng:(chain_rng ~seed ~path) ?count m

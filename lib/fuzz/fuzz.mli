(** The differential fuzzing driver.

    For every seed the driver generates a module, judges it against a
    set of oracles, then replays the same judgement on a configurable
    number of semantics-preserving mutation chains of the module.
    Failures are optionally minimized with the {!Reduce} reducer and
    persisted as [.ll] repro files in a corpus directory. *)

type config = {
  c_oracles : Oracle.t list;
  c_paths : int;  (** mutation chains per seed (0 = pristine only) *)
  c_mut_count : int;  (** mutations per chain *)
  c_reduce : bool;  (** minimize failures before reporting *)
  c_corpus : string option;  (** directory for minimized repro files *)
}

val default_config : config

type failure = {
  fa_seed : int;
  fa_path : int;  (** 0 = pristine module, n = mutation chain n *)
  fa_mutations : string list;
  fa_oracle : string;
  fa_message : string;
  fa_instrs : int;  (** instruction count of the reported module *)
  fa_repro : string option;  (** corpus file the repro was written to *)
}

type report = {
  r_seeds : int;
  r_checks : int;  (** oracle verdicts collected *)
  r_passed : int;
  r_failed : int;
  r_skipped : int;
  r_failures : failure list;
  r_mutations : int;  (** module-changing mutations applied in total *)
}

val empty_report : report

(** Run one seed and fold its outcome into [report]. *)
val run_seed : config -> report -> int -> report

(** Run seeds [first..first+count-1], stopping early when [stop ()]
    becomes true (time budgets); [progress] is called after each seed
    with the running report. *)
val run :
  ?progress:(int -> report -> unit) ->
  ?stop:(unit -> bool) ->
  config ->
  first:int ->
  count:int ->
  report

(** Render a module as a corpus repro file: header comments recording
    seed, path, mutation chain and oracle message, then the IR. *)
val repro_contents :
  seed:int ->
  path:int ->
  mutations:string list ->
  oracle:string ->
  message:string ->
  Llvm_ir.Ir.modul ->
  string

(* Helpers shared by the command-line tools.

   Input reading and .ll-vs-.bc sniffing live in Llvm_serve.Loader —
   the same loader the llvmd daemon uses for request payloads — so
   every consumer agrees on behaviour and error-message format. *)

let fail fmt = Fmt.kstr (fun s -> prerr_endline s; exit 1) fmt

(* Read a file or die with the loader's error format (the Sys_error
   message, which embeds the path). *)
let read_file (path : string) : string =
  try Llvm_serve.Loader.read_file path with Sys_error e -> fail "%s" e

let write_file = Llvm_serve.Loader.write_file

(* Load a module from either textual assembly (.ll) or bitcode (.bc),
   sniffing the magic bytes. *)
let load_module (path : string) : Llvm_ir.Ir.modul =
  match Llvm_serve.Loader.of_file path with
  | Ok m -> m
  | Error msg -> fail "%s" msg

let verify_or_die (m : Llvm_ir.Ir.modul) : unit =
  match Llvm_ir.Verify.verify_module m with
  | [] -> ()
  | errs ->
    List.iter (fun e -> Fmt.epr "%a@." Llvm_ir.Verify.pp_error e) errs;
    fail "module verification failed"

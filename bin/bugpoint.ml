(* bugpoint: reduce a failing .ll/.bc module against a named oracle.

   Reads a module, confirms the oracle fails on it, then delta-debugs
   it down to a minimal module that still fails the same oracle and
   writes the result (default <input>.reduced.ll). *)

open Cmdliner

let run input oracle_name output max_rounds verbose =
  let m = Tool_common.load_module input in
  let oracle =
    match Llvm_fuzz.Oracle.of_spec oracle_name with
    | Some o -> o
    | None ->
      Tool_common.fail "unknown oracle %S (have: %s, or pass:<name>)"
        oracle_name
        (String.concat ", "
           (List.map
              (fun (o : Llvm_fuzz.Oracle.t) -> o.Llvm_fuzz.Oracle.o_name)
              Llvm_fuzz.Oracle.all))
  in
  (match oracle.Llvm_fuzz.Oracle.check m with
  | Llvm_fuzz.Oracle.Fail msg ->
    if verbose then Fmt.epr "oracle %s fails: %s@." oracle_name msg
  | Llvm_fuzz.Oracle.Pass ->
    Tool_common.fail "oracle %s passes on %s; nothing to reduce" oracle_name
      input
  | Llvm_fuzz.Oracle.Skip why ->
    Tool_common.fail "oracle %s cannot judge %s: %s" oracle_name input why);
  let reduced, stats = Llvm_fuzz.Reduce.reduce ~max_rounds ~oracle m in
  let out =
    match output with Some o -> o | None -> input ^ ".reduced.ll"
  in
  let message =
    match oracle.Llvm_fuzz.Oracle.check reduced with
    | Llvm_fuzz.Oracle.Fail msg -> msg
    | _ -> "oracle no longer fails (reducer bug)"
  in
  Tool_common.write_file out
    (Llvm_fuzz.Fuzz.repro_contents ~seed:0 ~path:0 ~mutations:[]
       ~oracle:oracle_name ~message reduced);
  Fmt.pr "%s: %d -> %d instructions (%d edits, %d rounds) -> %s@." input
    stats.Llvm_fuzz.Reduce.rd_initial_instrs stats.rd_final_instrs
    stats.rd_edits stats.rd_rounds out

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT")

let oracle =
  Arg.(
    required
    & opt (some string) None
    & info [ "oracle" ] ~docv:"NAME"
        ~doc:
          "oracle that must keep failing: verify, asm, bitcode, exec, opt or \
           pass:<registered-pass>")

let output =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"where to write the reduced module (default INPUT.reduced.ll)")

let max_rounds =
  Arg.(
    value & opt int 12
    & info [ "max-rounds" ] ~docv:"N" ~doc:"greedy reduction sweeps")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"narrate")

let cmd =
  Cmd.v
    (Cmd.info "bugpoint" ~doc:"delta-debugging reducer for failing IR modules")
    Term.(const run $ input $ oracle $ output $ max_rounds $ verbose)

let () = exit (Cmd.eval cmd)

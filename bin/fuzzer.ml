(* llvm-fuzz: the differential IR fuzzer.

   Generates modules over a seed range, judges each (and a configurable
   number of semantics-preserving mutants) against the selected
   oracles, minimizes any failure with the delta reducer and persists
   repros to a corpus directory.  Exits non-zero when any oracle
   failed.  --json prints a machine-readable report to stdout. *)

open Cmdliner

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let failure_json (fa : Llvm_fuzz.Fuzz.failure) : string =
  Printf.sprintf
    "{\"seed\": %d, \"path\": %d, \"oracle\": \"%s\", \"mutations\": [%s], \
     \"instrs\": %d, \"message\": \"%s\", \"repro\": %s}"
    fa.fa_seed fa.fa_path (json_escape fa.fa_oracle)
    (String.concat ", "
       (List.map (fun m -> "\"" ^ json_escape m ^ "\"") fa.fa_mutations))
    fa.fa_instrs (json_escape fa.fa_message)
    (match fa.fa_repro with
    | None -> "null"
    | Some f -> "\"" ^ json_escape f ^ "\"")

let report_json ~elapsed (r : Llvm_fuzz.Fuzz.report) : string =
  Printf.sprintf
    "{\n\
    \  \"seeds\": %d,\n\
    \  \"checks\": %d,\n\
    \  \"passed\": %d,\n\
    \  \"failed\": %d,\n\
    \  \"skipped\": %d,\n\
    \  \"mutations\": %d,\n\
    \  \"elapsed_seconds\": %.2f,\n\
    \  \"failures\": [%s]\n\
     }"
    r.r_seeds r.r_checks r.r_passed r.r_failed r.r_skipped r.r_mutations
    elapsed
    (match r.r_failures with
    | [] -> ""
    | fas ->
      "\n    "
      ^ String.concat ",\n    " (List.map failure_json fas)
      ^ "\n  ")

let resolve_oracles (names : string list) : Llvm_fuzz.Oracle.t list =
  match names with
  | [] -> Llvm_fuzz.Oracle.all
  | names ->
    List.map
      (fun n ->
        match Llvm_fuzz.Oracle.of_spec n with
        | Some o -> o
        | None ->
          Tool_common.fail "unknown oracle %S (have: %s, or pass:<name>)" n
            (String.concat ", "
               (List.map
                  (fun (o : Llvm_fuzz.Oracle.t) -> o.Llvm_fuzz.Oracle.o_name)
                  Llvm_fuzz.Oracle.all)))
      names

let run seed count oracle_names paths mut_count max_seconds corpus no_reduce
    json quiet =
  let cfg =
    { Llvm_fuzz.Fuzz.c_oracles = resolve_oracles oracle_names;
      c_paths = paths;
      c_mut_count = mut_count;
      c_reduce = not no_reduce;
      c_corpus = corpus }
  in
  let t0 = Unix.gettimeofday () in
  let stop () =
    match max_seconds with
    | None -> false
    | Some budget -> Unix.gettimeofday () -. t0 > budget
  in
  let progress s (r : Llvm_fuzz.Fuzz.report) =
    if (not quiet) && not json then
      if r.r_failed > 0 then
        Fmt.epr "seed %d: %d checks, %d FAILED@." s r.r_checks r.r_failed
      else if r.r_seeds mod 100 = 0 then
        Fmt.epr "seed %d: %d checks, all passing@." s r.r_checks
  in
  let report = Llvm_fuzz.Fuzz.run ~progress ~stop cfg ~first:seed ~count in
  let elapsed = Unix.gettimeofday () -. t0 in
  if json then print_endline (report_json ~elapsed report)
  else begin
    Fmt.pr "fuzzed %d seeds (%d oracle checks) in %.1fs@." report.r_seeds
      report.r_checks elapsed;
    Fmt.pr "  passed %d, failed %d, skipped %d; %d mutations applied@."
      report.r_passed report.r_failed report.r_skipped report.r_mutations;
    List.iter
      (fun (fa : Llvm_fuzz.Fuzz.failure) ->
        Fmt.pr "  FAIL seed=%d path=%d oracle=%s (%d instrs)%s@.       %s@."
          fa.fa_seed fa.fa_path fa.fa_oracle fa.fa_instrs
          (match fa.fa_repro with None -> "" | Some f -> " -> " ^ f)
          fa.fa_message)
      report.r_failures
  end;
  if report.r_failed > 0 then exit 1

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"first seed")

let count =
  Arg.(value & opt int 100 & info [ "count"; "n" ] ~docv:"N" ~doc:"number of seeds")

let oracles =
  Arg.(
    value & opt_all string []
    & info [ "oracle" ] ~docv:"NAME"
        ~doc:
          "run only the named oracle (repeatable): verify, asm, bitcode, \
           exec, opt or pass:<registered-pass>; default all five")

let paths =
  Arg.(
    value & opt int 2
    & info [ "paths" ] ~docv:"N" ~doc:"mutation chains per seed (0 disables)")

let mut_count =
  Arg.(
    value & opt int 3
    & info [ "mutations" ] ~docv:"N" ~doc:"mutations per chain")

let max_seconds =
  Arg.(
    value & opt (some float) None
    & info [ "max-seconds" ] ~docv:"S" ~doc:"stop starting new seeds after $(docv)")

let corpus =
  Arg.(
    value & opt (some string) None
    & info [ "corpus" ] ~docv:"DIR" ~doc:"write minimized repros into $(docv)")

let no_reduce =
  Arg.(value & flag & info [ "no-reduce" ] ~doc:"report failures unminimized")

let json = Arg.(value & flag & info [ "json" ] ~doc:"print a JSON report")
let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"no progress output")

let cmd =
  Cmd.v
    (Cmd.info "llvm-fuzz" ~doc:"differential fuzzer for the LLVM IR toolchain")
    Term.(
      const run $ seed $ count $ oracles $ paths $ mut_count $ max_seconds
      $ corpus $ no_reduce $ json $ quiet)

let () = exit (Cmd.eval cmd)

(* opt: run optimization passes over a module.

   Passes are named as in the registry (mem2reg, scalarrepl, constprop,
   dce, adce, simplifycfg, gvn, reassociate, inline, dge, dae,
   tailrecelim, prune-eh); -O2/-O3 select the standard pipelines.
   --profile-data loads a .llpf aggregate (lli --emit-profile, merged
   across runs) and --pgo reoptimizes under it: speculative indirect-
   call promotion with deopt guards plus profile-guided inlining. *)

open Cmdliner

let list_passes () =
  List.iter
    (fun p ->
      Fmt.pr "%-14s %s@." p.Llvm_transforms.Pass.name
        p.Llvm_transforms.Pass.description)
    (Llvm_transforms.Pass.all ())

let run input output passes level profile_data pgo stats lint list_only =
  if list_only then list_passes ()
  else begin
    let input = match input with Some i -> i | None -> Tool_common.fail "no input file" in
    let m = Tool_common.load_module input in
    Tool_common.verify_or_die m;
    (match level with
    | Some l -> Llvm_transforms.Pipelines.optimize_module ~level:l m
    | None -> ());
    (match (pgo, profile_data) with
    | false, _ -> ()
    | true, None -> Tool_common.fail "--pgo needs --profile-data FILE"
    | true, Some path ->
      let p =
        try Llvm_profile.Profile.load path
        with
        | Llvm_profile.Profile.Corrupt why ->
          Tool_common.fail "%s: corrupt profile: %s" path why
        | Sys_error why -> Tool_common.fail "%s" why
      in
      let s = Llvm_transforms.Pgo.optimize p m in
      if stats then
        Fmt.pr "pgo: %d sites promoted, %d calls inlined, %d functions \
                deleted@."
          s.Llvm_transforms.Pgo.promoted s.Llvm_transforms.Pgo.inlined
          s.Llvm_transforms.Pgo.deleted);
    List.iter
      (fun name ->
        match Llvm_transforms.Pass.find name with
        | Some p ->
          let changed, seconds = Llvm_transforms.Pass.time_pass p m in
          if stats then
            Fmt.pr "%-14s %s in %.4fs@." name
              (if changed then "changed" else "no change")
              seconds
        | None -> Tool_common.fail "unknown pass %s (try --list)" name)
      passes;
    Tool_common.verify_or_die m;
    let lint_failed =
      lint
      &&
      let diags = Llvm_analysis.Lint.run m in
      List.iter (fun d -> Fmt.epr "%a@." Llvm_analysis.Lint.pp_diag d) diags;
      Llvm_analysis.Lint.has_errors diags
    in
    let text = Llvm_ir.Printer.module_to_string m in
    (match output with
    | Some o ->
      if Filename.check_suffix o ".bc" then
        Tool_common.write_file o (fst (Llvm_bitcode.Encoder.encode m))
      else Tool_common.write_file o text
    | None -> print_string text);
    if lint_failed then exit 1
  end

let input = Arg.(value & pos 0 (some file) None & info [] ~docv:"INPUT")
let output = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUTPUT")
let passes =
  Arg.(value & opt_all string [] & info [ "p"; "pass" ] ~docv:"PASS")
let level =
  Arg.(value & opt (some int) None & info [ "O" ] ~docv:"LEVEL"
         ~doc:"run the standard pipeline at the given level (1-3)")
let profile_data =
  Arg.(value & opt (some file) None
       & info [ "profile-data" ] ~docv:"FILE"
           ~doc:"aggregate execution profile in the binary .llpf format")

let pgo =
  Arg.(value & flag
       & info [ "pgo" ]
           ~doc:"reoptimize under $(b,--profile-data): guarded speculative \
                 promotion of hot indirect calls plus profile-guided \
                 inlining")

let stats = Arg.(value & flag & info [ "time-passes" ])
let lint =
  Arg.(value & flag & info [ "lint" ]
         ~doc:"run the memory-safety lint after the passes; exit non-zero \
               on error-severity findings")
let list_only = Arg.(value & flag & info [ "list" ] ~doc:"list available passes")

let cmd =
  Cmd.v
    (Cmd.info "opt" ~doc:"LLVM optimizer driver")
    Term.(const run $ input $ output $ passes $ level $ profile_data $ pgo
          $ stats $ lint $ list_only)

let () = exit (Cmd.eval cmd)

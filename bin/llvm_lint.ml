(* llvm-lint: the standalone static safety analyzer.

   Runs the Llvm_analysis.Lint checker suite over one or more modules
   (.ll or .bc) and prints each finding as

     file: func/block: [L00x] severity: message

   or as one JSON object per line with --json.  Exits non-zero when any
   error-severity finding is reported (or any warning under --werror). *)

open Cmdliner

let severity_conv =
  let parse s =
    match Llvm_analysis.Lint.severity_of_string s with
    | Some sev -> Ok sev
    | None -> Error (`Msg (Printf.sprintf "unknown severity %S" s))
  in
  let print fmt s = Fmt.string fmt (Llvm_analysis.Lint.severity_name s) in
  Arg.conv (parse, print)

let list_checks () =
  List.iter
    (fun (code, name) -> Fmt.pr "%-6s %s@." code name)
    Llvm_analysis.Lint.all_codes

let run inputs json min_severity werror only no_verify list_only =
  if list_only then list_checks ()
  else begin
    if inputs = [] then Tool_common.fail "no input files";
    let only = if only = [] then None else Some only in
    let failed = ref false in
    List.iter
      (fun input ->
        let m = Tool_common.load_module input in
        if not no_verify then Tool_common.verify_or_die m;
        let diags =
          Llvm_analysis.Lint.(filter_severity min_severity (run ?only m))
        in
        List.iter
          (fun d ->
            if json then print_endline (Llvm_analysis.Lint.diag_to_json d)
            else Fmt.pr "%s: %a@." input Llvm_analysis.Lint.pp_diag d)
          diags;
        if
          Llvm_analysis.Lint.has_errors diags
          || (werror && diags <> [])
        then failed := true)
      inputs;
    if !failed then exit 1
  end

let inputs = Arg.(value & pos_all file [] & info [] ~docv:"INPUT")
let json = Arg.(value & flag & info [ "json" ] ~doc:"one JSON object per finding")

let min_severity =
  Arg.(
    value
    & opt severity_conv Llvm_analysis.Lint.Info
    & info [ "min-severity" ] ~docv:"SEV"
        ~doc:"report only findings at or above $(docv) (info|warning|error)")

let werror =
  Arg.(value & flag & info [ "werror" ] ~doc:"treat any finding as fatal")

let only =
  Arg.(
    value & opt_all string []
    & info [ "c"; "check" ] ~docv:"CODE"
        ~doc:"run only the named checker (repeatable), e.g. L001")

let no_verify =
  Arg.(value & flag & info [ "no-verify" ] ~doc:"skip the structural verifier")

let list_only =
  Arg.(value & flag & info [ "list" ] ~doc:"list diagnostic codes")

let cmd =
  Cmd.v
    (Cmd.info "llvm-lint" ~doc:"static memory-safety analyzer for LLVM IR")
    Term.(
      const run $ inputs $ json $ min_severity $ werror $ only $ no_verify
      $ list_only)

let () = exit (Cmd.eval cmd)

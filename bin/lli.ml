(* lli: the execution engine — directly execute a module's main function
   (paper section 3.4), optionally collecting a block-execution profile
   (section 3.5).  --engine picks the tier: the tree-walking
   interpreter, the bytecode compiler, or the default tiered engine
   that starts interpreting and promotes hot functions to bytecode.
   --emit-profile persists the run's profile in the binary .llpf format
   (the per-run artifact the fleet aggregation of section 4.1 merges);
   --use-profile feeds a saved aggregate back in for hot/cold bytecode
   layout. *)

open Cmdliner
open Llvm_exec

let run input fuel profile emit_profile use_profile engine =
  let m = Tool_common.load_module input in
  Tool_common.verify_or_die m;
  let aggregate =
    match use_profile with
    | None -> None
    | Some path -> (
      try Some (Llvm_profile.Profile.load path)
      with
      | Llvm_profile.Profile.Corrupt why ->
        Tool_common.fail "%s: corrupt profile: %s" path why
      | Sys_error why -> Tool_common.fail "%s" why)
  in
  let e =
    try
      Some
        (Engine.create
           ~profiling:(profile || emit_profile <> None)
           ?profile:aggregate engine m)
    with Memory.Trap msg ->
      prerr_endline ("trap: " ^ msg);
      None
  in
  match e with
  | None -> exit 121
  | Some e ->
    let r =
      match Llvm_ir.Ir.find_func m "main" with
      | Some main -> Interp.run_function ~fuel e.Engine.mach main []
      | None ->
        { Interp.status = `Trapped "no main function"; output = "";
          instructions = 0 }
    in
    print_string r.Interp.output;
    Fmt.pr "@.; executed %d instructions@." r.Interp.instructions;
    (match emit_profile with
    | None -> ()
    | Some path ->
      let p =
        Llvm_profile.Profile.of_run m
          ~block_counts:e.Engine.mach.Interp.block_counts
          ~call_counts:e.Engine.mach.Interp.call_counts
      in
      Llvm_profile.Profile.save path p;
      Fmt.pr "; profile: %a -> %s@." Llvm_profile.Profile.pp p path);
    if profile then begin
      Fmt.pr "; hottest functions:@.";
      let prof = { Interp.counts = e.Engine.mach.Interp.block_counts } in
      let hot =
        List.filter_map
          (fun f ->
            if Llvm_ir.Ir.is_declaration f then None
            else
              let n = Interp.func_count prof f in
              if n > 0 then Some (f.Llvm_ir.Ir.fname, n) else None)
          m.Llvm_ir.Ir.mfuncs
        (* count descending, ties by name so output is stable *)
        |> List.sort (fun (na, a) (nb, b) ->
               if a <> b then compare b a else compare na nb)
      in
      List.iteri
        (fun k (name, count) ->
          if k < 10 then Fmt.pr ";   %-24s %8d entries@." name count)
        hot;
      match Engine.promotions e with
      | [] -> ()
      | ps ->
        Fmt.pr "; promoted to bytecode: %s@."
          (String.concat ", " (List.map fst ps))
    end;
    (match r.Interp.status with
    | `Returned (Interp.Rint (_, v)) -> exit (Int64.to_int v land 0xFF)
    | `Returned _ -> exit 0
    | `Exited c -> exit c
    | `Unwound ->
      prerr_endline "uncaught exception: program unwound out of main";
      exit 120
    | `Trapped msg ->
      prerr_endline ("trap: " ^ msg);
      exit 121)

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT")
let fuel =
  Arg.(value & opt int 50_000_000 & info [ "fuel" ] ~docv:"N"
         ~doc:"instruction budget before declaring an infinite loop")
let profile = Arg.(value & flag & info [ "profile" ])

let emit_profile =
  Arg.(value & opt (some string) None
       & info [ "emit-profile" ] ~docv:"FILE"
           ~doc:"write the run's block/call-target profile to $(docv) in \
                 the binary .llpf format")

let use_profile =
  Arg.(value & opt (some file) None
       & info [ "use-profile" ] ~docv:"FILE"
           ~doc:"load an aggregate .llpf profile and lay out bytecode \
                 blocks hot-first under it")

let engine =
  let kinds =
    [ ("interp", Engine.Interp_tier); ("bytecode", Engine.Bytecode_tier);
      ("tiered", Engine.Tiered) ]
  in
  Arg.(value & opt (enum kinds) Engine.Tiered
       & info [ "engine" ] ~docv:"TIER"
           ~doc:"execution tier: $(b,interp), $(b,bytecode) or $(b,tiered)")

let cmd =
  Cmd.v
    (Cmd.info "lli" ~doc:"LLVM execution engine (tiered interpreter/bytecode)")
    Term.(const run $ input $ fuel $ profile $ emit_profile $ use_profile
          $ engine)

let () = exit (Cmd.eval cmd)

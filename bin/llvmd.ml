(* llvmd: the compile/run daemon (compilation-as-a-service).

     llvmd serve     — run the daemon on a Unix-domain socket
     llvmd compile   — client: optimize a module through the daemon
     llvmd run       — client: optimize and execute a module
     llvmd lint      — client: lint a module
     llvmd ping      — client: liveness probe
     llvmd stats     — client: print the daemon's cache/latency stats
     llvmd shutdown  — client: stop the daemon

   The daemon content-addresses modules by bitcode digest and caches
   (module × pipeline) results in a sharded LRU cache; --validate
   replays the translation-validation witness before any optimized
   result is released (a miscompile is rejected on the request that
   triggers it).

   Robustness: --deadline-ms gives every request a wall-clock budget
   (blown budgets answer Timed_out), --workers isolates pipelines in
   forked supervised processes (a crash costs one request, never the
   daemon), --max-queue sheds overload with Busy + retry hints, and
   clients retry Busy/transport failures with exponential backoff
   (--retries). *)

open Cmdliner
open Llvm_serve

let socket_arg =
  Arg.(
    value
    & opt string Daemon.default_socket
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path")

(* -- serve ------------------------------------------------------------------- *)

let serve socket shards cache_mb validate validate_fuel max_batch max_queue
    deadline_ms frame_deadline_ms workers =
  let server_config =
    { Server.shards;
      shard_bytes = cache_mb * 1024 * 1024 / max 1 shards;
      validate;
      validate_fuel }
  in
  let config =
    { Daemon.default_config with
      Daemon.max_batch; max_queue; deadline_ms; frame_deadline_ms; workers }
  in
  Fmt.pr "llvmd: serving on %s (%d shards, %d MB cache, %d workers%s%s)@."
    socket shards cache_mb workers
    (if deadline_ms > 0 then Fmt.str ", %dms deadline" deadline_ms else "")
    (if validate then ", validating" else "");
  (try Daemon.serve ~config ~socket server_config
   with Daemon.Busy_socket msg -> Tool_common.fail "llvmd: %s" msg);
  Fmt.pr "llvmd: shut down@."

let serve_cmd =
  let shards =
    Arg.(value & opt int Cache.default_shards
         & info [ "shards" ] ~docv:"N" ~doc:"cache shard count")
  in
  let cache_mb =
    Arg.(value & opt int 64
         & info [ "cache-mb" ] ~docv:"MB" ~doc:"total cache byte budget")
  in
  let validate =
    Arg.(value & flag
         & info [ "validate" ]
             ~doc:"replay the translation-validation witness on every \
                   compile/link; reject divergent results")
  in
  let validate_fuel =
    Arg.(value & opt int Server.default_config.Server.validate_fuel
         & info [ "validate-fuel" ] ~docv:"N")
  in
  let max_batch =
    Arg.(value & opt int Daemon.default_config.Daemon.max_batch
         & info [ "max-batch" ] ~docv:"N"
             ~doc:"max queued frames drained per batch")
  in
  let max_queue =
    Arg.(value & opt int Daemon.default_config.Daemon.max_queue
         & info [ "max-queue" ] ~docv:"N"
             ~doc:"max work requests admitted per batch; the overflow is \
                   answered Busy with a retry hint")
  in
  let deadline_ms =
    Arg.(value & opt int 0
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"default wall-clock budget per request (0 = none); blown \
                   budgets answer Timed_out")
  in
  let frame_deadline_ms =
    Arg.(value & opt int Daemon.default_config.Daemon.frame_deadline_ms
         & info [ "frame-deadline-ms" ] ~docv:"MS"
             ~doc:"budget for completing a started request frame; a client \
                   that stalls mid-frame is dropped after this long")
  in
  let workers =
    Arg.(value & opt int 0
         & info [ "workers" ] ~docv:"N"
             ~doc:"forked worker processes; pipeline crashes cost one \
                   request and a respawn instead of the daemon (0 = run \
                   in-process)")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"run the compile/run daemon")
    Term.(
      const serve $ socket_arg $ shards $ cache_mb $ validate $ validate_fuel
      $ max_batch $ max_queue $ deadline_ms $ frame_deadline_ms $ workers)

(* -- client helpers ----------------------------------------------------------- *)

let exchange ~socket ~retries ~deadline_ms (body : Protocol.body) =
  let req = Protocol.req ~deadline_ms body in
  match
    Daemon.request_with_retry ~attempts:(max 1 retries) ~socket req
  with
  | Error (Daemon.Io e) ->
    Tool_common.fail "%s: %s (is llvmd serve running?)" socket e
  | Error e -> Tool_common.fail "protocol error: %s" (Daemon.error_to_string e)
  | Ok (Protocol.Failed e) -> Tool_common.fail "llvmd: %s" e
  | Ok (Protocol.Rejected why) ->
    prerr_endline ("llvmd: REJECTED: " ^ why);
    exit 3
  | Ok (Protocol.Timed_out why) ->
    prerr_endline ("llvmd: TIMED OUT: " ^ why);
    exit 4
  | Ok (Protocol.Busy _) ->
    Tool_common.fail "llvmd: busy (retries exhausted)"
  | Ok (Protocol.Served { payload; metrics }) -> (payload, metrics)

let pipeline_of level passes =
  if passes <> [] then Protocol.Passes passes else Protocol.Level level

let pp_metrics (m : Protocol.metrics) : unit =
  Fmt.epr "; llvmd: %s shard=%d pipeline=%.2fms bytes=%d@."
    (if m.Protocol.m_hit then "HIT" else "miss")
    m.Protocol.m_shard m.Protocol.m_pipeline_ms m.Protocol.m_bytes

let level_arg =
  Arg.(value & opt int 2 & info [ "O" ] ~docv:"LEVEL"
       ~doc:"standard pipeline level (0-3)")

let passes_arg =
  Arg.(value & opt_all string [] & info [ "p"; "pass" ] ~docv:"PASS"
       ~doc:"explicit pass list (overrides -O)")

let validate_arg =
  Arg.(value & flag
       & info [ "validate" ] ~doc:"require the translation-validation witness")

let deadline_arg =
  Arg.(value & opt int 0
       & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"wall-clock budget for this request (0 = daemon default)")

let retries_arg =
  Arg.(value & opt int 4
       & info [ "retries" ] ~docv:"N"
           ~doc:"attempts when the daemon sheds load (exponential backoff \
                 with jitter)")

let input_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT")

(* -- compile ------------------------------------------------------------------ *)

let compile socket input output level passes validate deadline_ms retries quiet
    =
  let payload = Tool_common.read_file input in
  let payload', metrics =
    exchange ~socket ~retries ~deadline_ms
      (Protocol.Compile
         { c_payload = payload; c_pipeline = pipeline_of level passes;
           c_validate = validate })
  in
  if not quiet then pp_metrics metrics;
  match output with
  | Some o when Filename.check_suffix o ".ll" ->
    (match Llvm_bitcode.Decoder.decode payload' with
    | m -> Tool_common.write_file o (Llvm_ir.Printer.module_to_string m)
    | exception Llvm_bitcode.Decoder.Malformed e ->
      Tool_common.fail "served bitcode is malformed: %s" e)
  | Some o -> Tool_common.write_file o payload'
  | None -> (
    (* default to textual IR on stdout *)
    match Llvm_bitcode.Decoder.decode payload' with
    | m -> print_string (Llvm_ir.Printer.module_to_string m)
    | exception Llvm_bitcode.Decoder.Malformed e ->
      Tool_common.fail "served bitcode is malformed: %s" e)

let compile_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUTPUT")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ]) in
  Cmd.v
    (Cmd.info "compile" ~doc:"optimize a module through the daemon")
    Term.(
      const compile $ socket_arg $ input_arg $ output $ level_arg $ passes_arg
      $ validate_arg $ deadline_arg $ retries_arg $ quiet)

(* -- run ---------------------------------------------------------------------- *)

let run socket input level passes fuel engine deadline_ms retries quiet =
  let payload = Tool_common.read_file input in
  let reply, metrics =
    exchange ~socket ~retries ~deadline_ms
      (Protocol.Run
         { r_payload = payload; r_pipeline = pipeline_of level passes;
           r_fuel = fuel; r_engine = engine })
  in
  if not quiet then pp_metrics metrics;
  match Protocol.decode_run_reply reply with
  | Error e -> Tool_common.fail "bad run reply: %s" e
  | Ok r ->
    print_string r.Protocol.output;
    Fmt.pr "@.; executed %d instructions (%s)@." r.Protocol.instructions
      r.Protocol.status;
    exit r.Protocol.exit_code

let run_cmd =
  let fuel =
    Arg.(value & opt int 50_000_000 & info [ "fuel" ] ~docv:"N")
  in
  let engine =
    let kinds =
      [ ("interp", Llvm_exec.Engine.Interp_tier);
        ("bytecode", Llvm_exec.Engine.Bytecode_tier);
        ("tiered", Llvm_exec.Engine.Tiered) ]
    in
    Arg.(value & opt (enum kinds) Llvm_exec.Engine.Tiered
         & info [ "engine" ] ~docv:"TIER")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ]) in
  Cmd.v
    (Cmd.info "run" ~doc:"optimize and execute a module through the daemon")
    Term.(
      const run $ socket_arg $ input_arg $ level_arg $ passes_arg $ fuel
      $ engine $ deadline_arg $ retries_arg $ quiet)

(* -- lint / ping / stats / shutdown --------------------------------------------- *)

let lint socket input deadline_ms retries =
  let payload = Tool_common.read_file input in
  let report, _ =
    exchange ~socket ~retries ~deadline_ms (Protocol.Lint payload)
  in
  if report <> "" then print_endline report

let lint_cmd =
  Cmd.v
    (Cmd.info "lint" ~doc:"lint a module through the daemon (JSON diagnostics)")
    Term.(const lint $ socket_arg $ input_arg $ deadline_arg $ retries_arg)

let ping socket =
  let t0 = Unix.gettimeofday () in
  let msg, _ = exchange ~socket ~retries:1 ~deadline_ms:0 Protocol.Ping in
  Fmt.pr "llvmd: %s (%.2fms)@." msg ((Unix.gettimeofday () -. t0) *. 1000.0)

let ping_cmd =
  Cmd.v
    (Cmd.info "ping" ~doc:"liveness probe (answered even under load)")
    Term.(const ping $ socket_arg)

let stats socket =
  let json, _ = exchange ~socket ~retries:1 ~deadline_ms:0 Protocol.Stats in
  print_string json

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"print daemon cache and latency statistics")
    Term.(const stats $ socket_arg)

let shutdown socket =
  let msg, _ = exchange ~socket ~retries:1 ~deadline_ms:0 Protocol.Shutdown in
  Fmt.pr "llvmd: %s@." msg

let shutdown_cmd =
  Cmd.v (Cmd.info "shutdown" ~doc:"stop the daemon")
    Term.(const shutdown $ socket_arg)

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "llvmd"
             ~doc:"compilation-as-a-service: sharded, caching compile/run \
                   daemon")
          [ serve_cmd; compile_cmd; run_cmd; lint_cmd; ping_cmd; stats_cmd;
            shutdown_cmd ]))

(* llvmd: the compile/run daemon (compilation-as-a-service).

     llvmd serve     — run the daemon on a Unix-domain socket
     llvmd compile   — client: optimize a module through the daemon
     llvmd run       — client: optimize and execute a module
     llvmd lint      — client: lint a module
     llvmd stats     — client: print the daemon's cache/latency stats
     llvmd shutdown  — client: stop the daemon

   The daemon content-addresses modules by bitcode digest and caches
   (module × pipeline) results in a sharded LRU cache; --validate
   replays the translation-validation witness before any optimized
   result is released (a miscompile is rejected on the request that
   triggers it). *)

open Cmdliner
open Llvm_serve

let socket_arg =
  Arg.(
    value
    & opt string Daemon.default_socket
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path")

(* -- serve ------------------------------------------------------------------- *)

let serve socket shards cache_mb validate validate_fuel max_batch =
  let config =
    { Server.shards;
      shard_bytes = cache_mb * 1024 * 1024 / max 1 shards;
      validate;
      validate_fuel }
  in
  let server = Server.create ~config () in
  Fmt.pr "llvmd: serving on %s (%d shards, %d MB cache%s)@." socket shards
    cache_mb
    (if validate then ", validating" else "");
  Daemon.serve ~max_batch ~socket server;
  Fmt.pr "llvmd: shut down@."

let serve_cmd =
  let shards =
    Arg.(value & opt int Cache.default_shards
         & info [ "shards" ] ~docv:"N" ~doc:"cache shard count")
  in
  let cache_mb =
    Arg.(value & opt int 64
         & info [ "cache-mb" ] ~docv:"MB" ~doc:"total cache byte budget")
  in
  let validate =
    Arg.(value & flag
         & info [ "validate" ]
             ~doc:"replay the translation-validation witness on every \
                   compile/link; reject divergent results")
  in
  let validate_fuel =
    Arg.(value & opt int Server.default_config.Server.validate_fuel
         & info [ "validate-fuel" ] ~docv:"N")
  in
  let max_batch =
    Arg.(value & opt int 64
         & info [ "max-batch" ] ~docv:"N"
             ~doc:"max queued frames drained per batch")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"run the compile/run daemon")
    Term.(
      const serve $ socket_arg $ shards $ cache_mb $ validate $ validate_fuel
      $ max_batch)

(* -- client helpers ----------------------------------------------------------- *)

let with_daemon socket (f : Unix.file_descr -> 'a) : 'a =
  let fd =
    try Daemon.connect ~socket
    with Unix.Unix_error (e, _, _) ->
      Tool_common.fail "%s: cannot connect: %s (is llvmd serve running?)"
        socket (Unix.error_message e)
  in
  Fun.protect ~finally:(fun () -> Daemon.close fd) (fun () -> f fd)

let exchange fd req =
  match Daemon.request fd req with
  | Error e -> Tool_common.fail "protocol error: %s" e
  | Ok (Protocol.Failed e) -> Tool_common.fail "llvmd: %s" e
  | Ok (Protocol.Rejected why) ->
    prerr_endline ("llvmd: REJECTED: " ^ why);
    exit 3
  | Ok (Protocol.Served { payload; metrics }) -> (payload, metrics)

let pipeline_of level passes =
  if passes <> [] then Protocol.Passes passes else Protocol.Level level

let pp_metrics (m : Protocol.metrics) : unit =
  Fmt.epr "; llvmd: %s shard=%d pipeline=%.2fms bytes=%d@."
    (if m.Protocol.m_hit then "HIT" else "miss")
    m.Protocol.m_shard m.Protocol.m_pipeline_ms m.Protocol.m_bytes

let level_arg =
  Arg.(value & opt int 2 & info [ "O" ] ~docv:"LEVEL"
       ~doc:"standard pipeline level (0-3)")

let passes_arg =
  Arg.(value & opt_all string [] & info [ "p"; "pass" ] ~docv:"PASS"
       ~doc:"explicit pass list (overrides -O)")

let validate_arg =
  Arg.(value & flag
       & info [ "validate" ] ~doc:"require the translation-validation witness")

let input_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT")

(* -- compile ------------------------------------------------------------------ *)

let compile socket input output level passes validate quiet =
  let payload = Tool_common.read_file input in
  let payload', metrics =
    with_daemon socket (fun fd ->
        exchange fd
          (Protocol.Compile
             { c_payload = payload; c_pipeline = pipeline_of level passes;
               c_validate = validate }))
  in
  if not quiet then pp_metrics metrics;
  match output with
  | Some o when Filename.check_suffix o ".ll" ->
    (match Llvm_bitcode.Decoder.decode payload' with
    | m -> Tool_common.write_file o (Llvm_ir.Printer.module_to_string m)
    | exception Llvm_bitcode.Decoder.Malformed e ->
      Tool_common.fail "served bitcode is malformed: %s" e)
  | Some o -> Tool_common.write_file o payload'
  | None -> (
    (* default to textual IR on stdout *)
    match Llvm_bitcode.Decoder.decode payload' with
    | m -> print_string (Llvm_ir.Printer.module_to_string m)
    | exception Llvm_bitcode.Decoder.Malformed e ->
      Tool_common.fail "served bitcode is malformed: %s" e)

let compile_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUTPUT")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ]) in
  Cmd.v
    (Cmd.info "compile" ~doc:"optimize a module through the daemon")
    Term.(
      const compile $ socket_arg $ input_arg $ output $ level_arg $ passes_arg
      $ validate_arg $ quiet)

(* -- run ---------------------------------------------------------------------- *)

let run socket input level passes fuel engine quiet =
  let payload = Tool_common.read_file input in
  let reply, metrics =
    with_daemon socket (fun fd ->
        exchange fd
          (Protocol.Run
             { r_payload = payload; r_pipeline = pipeline_of level passes;
               r_fuel = fuel; r_engine = engine }))
  in
  if not quiet then pp_metrics metrics;
  match Protocol.decode_run_reply reply with
  | Error e -> Tool_common.fail "bad run reply: %s" e
  | Ok r ->
    print_string r.Protocol.output;
    Fmt.pr "@.; executed %d instructions (%s)@." r.Protocol.instructions
      r.Protocol.status;
    exit r.Protocol.exit_code

let run_cmd =
  let fuel =
    Arg.(value & opt int 50_000_000 & info [ "fuel" ] ~docv:"N")
  in
  let engine =
    let kinds =
      [ ("interp", Llvm_exec.Engine.Interp_tier);
        ("bytecode", Llvm_exec.Engine.Bytecode_tier);
        ("tiered", Llvm_exec.Engine.Tiered) ]
    in
    Arg.(value & opt (enum kinds) Llvm_exec.Engine.Tiered
         & info [ "engine" ] ~docv:"TIER")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ]) in
  Cmd.v
    (Cmd.info "run" ~doc:"optimize and execute a module through the daemon")
    Term.(
      const run $ socket_arg $ input_arg $ level_arg $ passes_arg $ fuel
      $ engine $ quiet)

(* -- lint / stats / shutdown --------------------------------------------------- *)

let lint socket input =
  let payload = Tool_common.read_file input in
  let report, _ =
    with_daemon socket (fun fd -> exchange fd (Protocol.Lint payload))
  in
  if report <> "" then print_endline report

let lint_cmd =
  Cmd.v
    (Cmd.info "lint" ~doc:"lint a module through the daemon (JSON diagnostics)")
    Term.(const lint $ socket_arg $ input_arg)

let stats socket =
  let json, _ = with_daemon socket (fun fd -> exchange fd Protocol.Stats) in
  print_string json

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"print daemon cache and latency statistics")
    Term.(const stats $ socket_arg)

let shutdown socket =
  let msg, _ = with_daemon socket (fun fd -> exchange fd Protocol.Shutdown) in
  Fmt.pr "llvmd: %s@." msg

let shutdown_cmd =
  Cmd.v (Cmd.info "shutdown" ~doc:"stop the daemon")
    Term.(const shutdown $ socket_arg)

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "llvmd"
             ~doc:"compilation-as-a-service: sharded, caching compile/run \
                   daemon")
          [ serve_cmd; compile_cmd; run_cmd; lint_cmd; stats_cmd; shutdown_cmd ]))

examples/lifelong_optimization.ml: Fmt List Llvm_exec Llvm_ir Llvm_linker Llvm_minic String

examples/exceptions.ml: Fmt Int64 List Llvm_exec Llvm_ir Llvm_minic Llvm_transforms Option

examples/safecode.mli:

examples/quickstart.ml: Builder Fmt Ir List Llvm_asm Llvm_bitcode Llvm_codegen Llvm_exec Llvm_ir Llvm_transforms Ltype Printer String Verify

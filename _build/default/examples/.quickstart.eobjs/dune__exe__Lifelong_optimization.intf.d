examples/lifelong_optimization.mli:

examples/exceptions.mli:

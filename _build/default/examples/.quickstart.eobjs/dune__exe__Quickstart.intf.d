examples/quickstart.mli:

examples/safecode.ml: Fmt Llvm_analysis Llvm_exec Llvm_ir Llvm_minic Llvm_transforms Option

examples/devirtualization.mli:

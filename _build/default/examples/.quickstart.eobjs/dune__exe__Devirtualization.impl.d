examples/devirtualization.ml: Fmt Hashtbl List Llvm_exec Llvm_ir Llvm_linker Llvm_minic Llvm_transforms Option String

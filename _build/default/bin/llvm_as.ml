(* llvm-as: assemble textual IR (.ll) into bitcode (.bc). *)

open Cmdliner

let run input output strip =
  let m = Tool_common.load_module input in
  Tool_common.verify_or_die m;
  let image, stats = Llvm_bitcode.Encoder.encode ~strip m in
  let out =
    match output with
    | Some o -> o
    | None -> Filename.remove_extension input ^ ".bc"
  in
  Tool_common.write_file out image;
  Fmt.pr "wrote %s: %d bytes (%d one-word instructions, %d wide)@." out
    (String.length image) stats.Llvm_bitcode.Encoder.one_word_instrs
    stats.Llvm_bitcode.Encoder.wide_instrs

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.ll")
let output =
  Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUTPUT.bc")
let strip =
  Arg.(value & flag & info [ "strip" ] ~doc:"drop local symbol names")

let cmd =
  Cmd.v
    (Cmd.info "llvm-as" ~doc:"assemble LLVM textual IR into bitcode")
    Term.(const run $ input $ output $ strip)

let () = exit (Cmd.eval cmd)

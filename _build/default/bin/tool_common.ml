(* Helpers shared by the command-line tools. *)

let read_file (path : string) : string =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file (path : string) (contents : string) : unit =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let fail fmt = Fmt.kstr (fun s -> prerr_endline s; exit 1) fmt

(* Load a module from either textual assembly (.ll) or bitcode (.bc),
   sniffing the magic bytes. *)
let load_module (path : string) : Llvm_ir.Ir.modul =
  let data = try read_file path with Sys_error e -> fail "%s" e in
  if String.length data >= 4 && String.sub data 0 4 = "LLVM" then
    try Llvm_bitcode.Decoder.decode data
    with Llvm_bitcode.Decoder.Malformed msg -> fail "%s: malformed bitcode: %s" path msg
  else
    try Llvm_asm.Parser.parse_module ~name:(Filename.basename path) data
    with Llvm_asm.Parser.Parse_error (msg, line) ->
      fail "%s:%d: %s" path line msg

let verify_or_die (m : Llvm_ir.Ir.modul) : unit =
  match Llvm_ir.Verify.verify_module m with
  | [] -> ()
  | errs ->
    List.iter (fun e -> Fmt.epr "%a@." Llvm_ir.Verify.pp_error e) errs;
    fail "module verification failed"

(* minicc: the MiniC front-end — compile C-like source to LLVM IR
   (paper section 3.2: static compilers emit LLVM code). *)

open Cmdliner

let run input output level =
  let src = Tool_common.read_file input in
  let m =
    try
      Llvm_minic.Codegen.compile_string
        ~name:(Filename.remove_extension (Filename.basename input))
        src
    with
    | Llvm_minic.Clexer.Error (msg, line) -> Tool_common.fail "%s:%d: %s" input line msg
    | Llvm_minic.Codegen.Error msg -> Tool_common.fail "%s: %s" input msg
  in
  Tool_common.verify_or_die m;
  if level > 0 then Llvm_transforms.Pipelines.optimize_module ~level m;
  Tool_common.verify_or_die m;
  let text = Llvm_ir.Printer.module_to_string m in
  match output with
  | Some o ->
    if Filename.check_suffix o ".bc" then
      Tool_common.write_file o (fst (Llvm_bitcode.Encoder.encode m))
    else Tool_common.write_file o text
  | None -> print_string text

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.c")
let output = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUTPUT")
let level = Arg.(value & opt int 0 & info [ "O" ] ~docv:"LEVEL")

let cmd =
  Cmd.v
    (Cmd.info "minicc" ~doc:"MiniC front-end: compile C-like source to LLVM IR")
    Term.(const run $ input $ output $ level)

let () = exit (Cmd.eval cmd)

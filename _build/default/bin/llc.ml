(* llc: native code generation (paper section 3.4).  Prints assembly-like
   text for the selected synthetic target and reports byte-exact sizes. *)

open Cmdliner

let run input target show_asm =
  let m = Tool_common.load_module input in
  Tool_common.verify_or_die m;
  let t =
    match String.lowercase_ascii target with
    | "x86" -> Llvm_codegen.Target.x86ish
    | "sparc" -> Llvm_codegen.Target.sparcish
    | other -> Tool_common.fail "unknown target %s (x86 or sparc)" other
  in
  let r = Llvm_codegen.Emit.compile_module t m in
  if show_asm then
    List.iter (fun fa -> print_endline fa.Llvm_codegen.Emit.fa_text) r.Llvm_codegen.Emit.funcs;
  Fmt.pr "; target %s: %d bytes code, %d bytes data, %d total@."
    r.Llvm_codegen.Emit.target r.Llvm_codegen.Emit.code_bytes
    r.Llvm_codegen.Emit.data_bytes r.Llvm_codegen.Emit.total_bytes;
  List.iter
    (fun fa ->
      Fmt.pr ";   %-24s %6d bytes, %d spills@." fa.Llvm_codegen.Emit.fa_name
        fa.Llvm_codegen.Emit.fa_bytes fa.Llvm_codegen.Emit.fa_spills)
    r.Llvm_codegen.Emit.funcs

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT")
let target =
  Arg.(value & opt string "x86" & info [ "march" ] ~docv:"TARGET")
let show_asm = Arg.(value & flag & info [ "S" ] ~doc:"print assembly text")

let cmd =
  Cmd.v
    (Cmd.info "llc" ~doc:"LLVM static code generator")
    Term.(const run $ input $ target $ show_asm)

let () = exit (Cmd.eval cmd)

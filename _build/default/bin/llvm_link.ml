(* llvm-link: combine translation units and optionally run the link-time
   interprocedural optimizer (paper section 3.3). *)

open Cmdliner

let run inputs output ipo internalize =
  (match inputs with [] -> Tool_common.fail "no input files" | _ -> ());
  let modules = List.map Tool_common.load_module inputs in
  let m =
    try Llvm_linker.Link.link modules
    with Llvm_linker.Link.Link_error msg -> Tool_common.fail "link error: %s" msg
  in
  if internalize then Llvm_linker.Link.internalize m;
  if ipo then
    ignore
      (Llvm_transforms.Pass.run_sequence Llvm_transforms.Pipelines.link_time_ipo m);
  Tool_common.verify_or_die m;
  let text = Llvm_ir.Printer.module_to_string m in
  match output with
  | Some o ->
    if Filename.check_suffix o ".bc" then
      Tool_common.write_file o (fst (Llvm_bitcode.Encoder.encode m))
    else Tool_common.write_file o text
  | None -> print_string text

let inputs = Arg.(value & pos_all file [] & info [] ~docv:"INPUTS")
let output = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUTPUT")
let ipo =
  Arg.(value & flag & info [ "ipo" ] ~doc:"run link-time interprocedural optimization")
let internalize =
  Arg.(value & flag & info [ "internalize" ] ~doc:"internalize all symbols except main")

let cmd =
  Cmd.v
    (Cmd.info "llvm-link" ~doc:"LLVM IR linker")
    Term.(const run $ inputs $ output $ ipo $ internalize)

let () = exit (Cmd.eval cmd)

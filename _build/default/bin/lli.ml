(* lli: the execution engine — directly execute a module's main function
   (the interpreter side of paper section 3.4), optionally collecting a
   block-execution profile (section 3.5). *)

open Cmdliner

let run input fuel profile =
  let m = Tool_common.load_module input in
  Tool_common.verify_or_die m;
  let finish (r : Llvm_exec.Interp.run_result) =
    print_string r.Llvm_exec.Interp.output;
    Fmt.pr "@.; executed %d instructions@." r.Llvm_exec.Interp.instructions;
    match r.Llvm_exec.Interp.status with
    | `Returned (Llvm_exec.Interp.Rint (_, v)) -> exit (Int64.to_int v land 0xFF)
    | `Returned _ -> exit 0
    | `Exited c -> exit c
    | `Unwound ->
      prerr_endline "uncaught exception: program unwound out of main";
      exit 120
    | `Trapped msg ->
      prerr_endline ("trap: " ^ msg);
      exit 121
  in
  if profile then begin
    let r, prof = Llvm_exec.Interp.run_main_with_profile ~fuel m in
    Fmt.pr "; hottest functions:@.";
    let hot =
      List.filter_map
        (fun f ->
          if Llvm_ir.Ir.is_declaration f then None
          else
            let n = Llvm_exec.Interp.func_count prof f in
            if n > 0 then Some (f.Llvm_ir.Ir.fname, n) else None)
        m.Llvm_ir.Ir.mfuncs
      |> List.sort (fun (_, a) (_, b) -> compare b a)
    in
    List.iteri
      (fun k (name, count) ->
        if k < 10 then Fmt.pr ";   %-24s %8d entries@." name count)
      hot;
    finish r
  end
  else finish (Llvm_exec.Interp.run_main ~fuel m)

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT")
let fuel =
  Arg.(value & opt int 50_000_000 & info [ "fuel" ] ~docv:"N"
         ~doc:"instruction budget before declaring an infinite loop")
let profile = Arg.(value & flag & info [ "profile" ])

let cmd =
  Cmd.v
    (Cmd.info "lli" ~doc:"LLVM execution engine (interpreter)")
    Term.(const run $ input $ fuel $ profile)

let () = exit (Cmd.eval cmd)

(* llvm-dis: disassemble bitcode (.bc) back to textual IR (.ll). *)

open Cmdliner

let run input output =
  let m = Tool_common.load_module input in
  let text = Llvm_ir.Printer.module_to_string m in
  match output with
  | Some o ->
    Tool_common.write_file o text;
    Fmt.pr "wrote %s@." o
  | None -> print_string text

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.bc")
let output =
  Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUTPUT.ll")

let cmd =
  Cmd.v
    (Cmd.info "llvm-dis" ~doc:"disassemble LLVM bitcode to textual IR")
    Term.(const run $ input $ output)

let () = exit (Cmd.eval cmd)

bin/tool_common.ml: Filename Fmt List Llvm_asm Llvm_bitcode Llvm_ir String

bin/llvm_dis.ml: Arg Cmd Cmdliner Fmt Llvm_ir Term Tool_common

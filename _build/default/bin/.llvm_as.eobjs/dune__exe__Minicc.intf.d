bin/minicc.mli:

bin/llvm_dis.mli:

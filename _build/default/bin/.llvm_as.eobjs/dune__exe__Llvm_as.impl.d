bin/llvm_as.ml: Arg Cmd Cmdliner Filename Fmt Llvm_bitcode String Term Tool_common

bin/opt.mli:

bin/minicc.ml: Arg Cmd Cmdliner Filename Llvm_bitcode Llvm_ir Llvm_minic Llvm_transforms Term Tool_common

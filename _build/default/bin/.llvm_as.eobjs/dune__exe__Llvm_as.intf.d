bin/llvm_as.mli:

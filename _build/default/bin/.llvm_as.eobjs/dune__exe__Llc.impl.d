bin/llc.ml: Arg Cmd Cmdliner Fmt List Llvm_codegen String Term Tool_common

bin/lli.mli:

bin/llvm_link.ml: Arg Cmd Cmdliner Filename List Llvm_bitcode Llvm_ir Llvm_linker Llvm_transforms Term Tool_common

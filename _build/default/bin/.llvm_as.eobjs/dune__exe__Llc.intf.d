bin/llc.mli:

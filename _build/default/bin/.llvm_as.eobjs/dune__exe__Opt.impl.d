bin/opt.ml: Arg Cmd Cmdliner Filename Fmt List Llvm_bitcode Llvm_ir Llvm_transforms Term Tool_common

bin/llvm_link.mli:

bin/lli.ml: Arg Cmd Cmdliner Fmt Int64 List Llvm_exec Llvm_ir Term Tool_common

(** The benchmark roster: one profile per SPEC CPU2000 C row of
    Table 1, sized and styled after the paper's description of each
    program, plus Olden/Ptrdist-style disciplined programs. *)

val spec2000 : Genprog.profile list
val disciplined : Genprog.profile list
val find : string -> Genprog.profile option

(** A small variant of a profile, for fast unit tests. *)
val quick : Genprog.profile -> Genprog.profile

lib/workloads/compress.ml: Array Buffer Char String

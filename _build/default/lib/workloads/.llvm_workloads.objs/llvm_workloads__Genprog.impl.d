lib/workloads/genprog.ml: Buffer Fmt List Llvm_ir Llvm_minic Printf Rng

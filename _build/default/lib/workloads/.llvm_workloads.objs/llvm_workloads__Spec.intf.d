lib/workloads/spec.mli: Genprog

lib/workloads/spec.ml: Genprog List

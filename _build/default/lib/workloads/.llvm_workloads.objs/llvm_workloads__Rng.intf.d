lib/workloads/rng.mli:

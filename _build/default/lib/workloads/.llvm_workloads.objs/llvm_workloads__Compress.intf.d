lib/workloads/compress.mli:

lib/workloads/genprog.mli: Llvm_ir

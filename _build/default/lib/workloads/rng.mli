(** A small deterministic PRNG (xorshift64-star), so workload
    generation is stable across OCaml versions and runs. *)

type t

val create : int -> t
val next : t -> int64
val int : t -> int -> int
val bool_ : t -> bool

(** True with probability pct/100. *)
val chance : t -> int -> bool

val pick : t -> 'a list -> 'a

(* A small deterministic PRNG (xorshift64-star), so workload generation is
   stable across OCaml versions and runs. *)

type t = { mutable state : int64 }

let create (seed : int) : t =
  { state = Int64.add (Int64.of_int seed) 0x9E3779B97F4A7C15L }

let next (r : t) : int64 =
  let x = r.state in
  let x = Int64.logxor x (Int64.shift_right_logical x 12) in
  let x = Int64.logxor x (Int64.shift_left x 25) in
  let x = Int64.logxor x (Int64.shift_right_logical x 27) in
  r.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

let int (r : t) (bound : int) : int =
  if bound <= 0 then 0
  else Int64.to_int (Int64.unsigned_rem (next r) (Int64.of_int bound))

let bool_ (r : t) : bool = int r 2 = 0

(* true with probability pct/100 *)
let chance (r : t) (pct : int) : bool = int r 100 < pct

let pick (r : t) (l : 'a list) : 'a = List.nth l (int r (List.length l))

(** A small LZ77 byte compressor, used for the paper's section-4.1.3
    observation that general-purpose compression halves bitcode files. *)

val compress : string -> string

(** @raise Invalid_argument on corrupt input. *)
val decompress : string -> string

(** compressed size / original size. *)
val ratio : string -> float

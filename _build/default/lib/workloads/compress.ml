(* A small LZ77 byte compressor, used to reproduce the paper's
   section-4.1.3 observation that general-purpose compression shrinks
   bitcode files to roughly half their size (indicating redundancy the
   encoding does not exploit).

   Format: a stream of tagged tokens.
     0x00 len  <len literal bytes>
     0x01 dist_lo dist_hi len      (match of [len] bytes [dist] back)
   Greedy matching over a 64 KiB window with a 3-byte minimum match and
   a chained hash table of 3-byte prefixes. *)

let min_match = 4
let max_match = 255
let window = 65535

let hash3 (s : string) (i : int) : int =
  (Char.code s.[i] * 506832829 + Char.code s.[i + 1] * 87251 + Char.code s.[i + 2])
  land 0xFFFF

let compress (src : string) : string =
  let n = String.length src in
  let out = Buffer.create (n / 2) in
  let heads = Array.make 65536 (-1) in
  let prev = Array.make (max n 1) (-1) in
  let literals = Buffer.create 64 in
  let flush_literals () =
    let s = Buffer.contents literals in
    let k = ref 0 in
    while !k < String.length s do
      let chunk = min 255 (String.length s - !k) in
      Buffer.add_char out '\000';
      Buffer.add_char out (Char.chr chunk);
      Buffer.add_substring out s !k chunk;
      k := !k + chunk
    done;
    Buffer.clear literals
  in
  let i = ref 0 in
  while !i < n do
    let best_len = ref 0 and best_dist = ref 0 in
    if !i + min_match <= n then begin
      let h = hash3 src !i in
      let cand = ref heads.(h) in
      let tries = ref 0 in
      while !cand >= 0 && !i - !cand <= window && !tries < 32 do
        incr tries;
        let c = !cand in
        let len = ref 0 in
        while
          !len < max_match
          && !i + !len < n
          && src.[c + !len] = src.[!i + !len]
        do
          incr len
        done;
        if !len > !best_len then begin
          best_len := !len;
          best_dist := !i - c
        end;
        cand := prev.(c)
      done
    end;
    if !best_len >= min_match then begin
      flush_literals ();
      Buffer.add_char out '\001';
      Buffer.add_char out (Char.chr (!best_dist land 0xFF));
      Buffer.add_char out (Char.chr ((!best_dist lsr 8) land 0xFF));
      Buffer.add_char out (Char.chr !best_len);
      (* index the skipped positions *)
      for k = !i to min (n - 3) (!i + !best_len) - 1 do
        let h = hash3 src k in
        prev.(k) <- heads.(h);
        heads.(h) <- k
      done;
      i := !i + !best_len
    end
    else begin
      if !i + 2 < n then begin
        let h = hash3 src !i in
        prev.(!i) <- heads.(h);
        heads.(h) <- !i
      end;
      Buffer.add_char literals src.[!i];
      incr i
    end
  done;
  flush_literals ();
  Buffer.contents out

let decompress (src : string) : string =
  let out = Buffer.create (String.length src * 2) in
  let i = ref 0 in
  let n = String.length src in
  while !i < n do
    match src.[!i] with
    | '\000' ->
      let len = Char.code src.[!i + 1] in
      Buffer.add_substring out src (!i + 2) len;
      i := !i + 2 + len
    | '\001' ->
      let dist = Char.code src.[!i + 1] lor (Char.code src.[!i + 2] lsl 8) in
      let len = Char.code src.[!i + 3] in
      let start = Buffer.length out - dist in
      for k = 0 to len - 1 do
        Buffer.add_char out (Buffer.nth out (start + k))
      done;
      i := !i + 4
    | _ -> invalid_arg "Compress.decompress: bad tag"
  done;
  Buffer.contents out

let ratio (src : string) : float =
  if src = "" then 1.0
  else float_of_int (String.length (compress src)) /. float_of_int (String.length src)

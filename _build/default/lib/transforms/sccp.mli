(** Sparse Conditional Constant Propagation (Wegman & Zadeck): the
    classic SSA lattice algorithm where blocks become executable only
    when a feasible path reaches them and phis meet only over executable
    edges.  Stronger than [Constprop] on branch-dependent constants. *)

type lattice = Top | Const of Llvm_ir.Ir.const | Bottom

val run_function : Llvm_ir.Ltype.table -> Llvm_ir.Ir.func -> bool
val pass : Pass.t

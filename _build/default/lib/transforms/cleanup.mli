(** Shared CFG cleanup utilities used by several passes. *)

(** Delete blocks unreachable from the entry, fixing successor phis. *)
val remove_unreachable_blocks : Llvm_ir.Ir.func -> bool

(** Erase trivially dead instructions until a fixpoint. *)
val delete_dead_instrs : Llvm_ir.Ir.func -> bool

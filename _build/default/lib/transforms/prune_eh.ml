(* Dead exception-handler pruning.

   The paper (section 4.1.2) notes that having the whole program at link
   time lets LLVM "use an interprocedural analysis to eliminate unused
   exception handlers".  A function cannot unwind when its body contains
   no reachable `unwind` and every call is to a function that itself
   cannot unwind; invokes of such callees become plain calls and their
   handlers usually die with them. *)

open Llvm_ir
open Ir

type stats = {
  mutable converted_invokes : int;
  mutable nounwind_functions : int;
}

(* Fixpoint: may_unwind(f).  Declarations are assumed to unwind unless
   whitelisted as runtime primitives known not to throw. *)
let nounwind_declarations =
  [ "printf"; "puts"; "putchar"; "exit"; "llvm_profile_hit";
    "llvm_bounds_check" ]

let compute_may_unwind (m : modul) : (int, bool) Hashtbl.t =
  let may : (int, bool) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let initial =
        if is_declaration f then
          not (List.mem f.fname nounwind_declarations)
        else false
      in
      Hashtbl.replace may f.fid initial)
    m.mfuncs;
  let get f = try Hashtbl.find may f.fid with Not_found -> true in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        if (not (is_declaration f)) && not (get f) then begin
          let unwinds = ref false in
          iter_instrs
            (fun i ->
              match i.iop with
              | Unwind -> unwinds := true
              | Call -> (
                (* an invoke catches its callee's unwind, a call does not *)
                match call_callee i with
                | Vfunc callee | Vconst (Cfunc callee) ->
                  if get callee then unwinds := true
                | _ -> unwinds := true (* unknown indirect target *))
              | _ -> ())
            f;
          if !unwinds then begin
            Hashtbl.replace may f.fid true;
            changed := true
          end
        end)
      m.mfuncs
  done;
  may

let run (m : modul) : stats =
  let stats = { converted_invokes = 0; nounwind_functions = 0 } in
  let may = compute_may_unwind m in
  Hashtbl.iter (fun _ v -> if not v then
    stats.nounwind_functions <- stats.nounwind_functions + 1) may;
  List.iter
    (fun f ->
      if not (is_declaration f) then begin
        let sites = ref [] in
        iter_instrs
          (fun i ->
            if i.iop = Invoke then
              match call_callee i with
              | Vfunc callee | Vconst (Cfunc callee) ->
                if not (try Hashtbl.find may callee.fid with Not_found -> true)
                then sites := i :: !sites
              | _ -> ())
          f;
        List.iter
          (fun site ->
            let b = Option.get site.iparent in
            let normal = as_block site.operands.(1) in
            let unwind_dest = as_block site.operands.(2) in
            let callee = site.operands.(0) in
            let args = call_args site in
            (* the handler loses this predecessor *)
            if not (unwind_dest == normal) then
              List.iter
                (fun i -> if i.iop = Phi then phi_remove_incoming i b)
                unwind_dest.instrs;
            let call =
              mk_instr ~name:site.iname ~ty:site.ity Call (callee :: args)
            in
            insert_before ~point:site call;
            replace_all_uses_with (Vinstr site) (Vinstr call);
            erase_instr site;
            append_instr b (mk_instr ~ty:Ltype.Void Br [ Vblock normal ]);
            stats.converted_invokes <- stats.converted_invokes + 1)
          !sites;
        if !sites <> [] then ignore (Cleanup.remove_unreachable_blocks f)
      end)
    m.mfuncs;
  stats

let pass =
  Pass.make ~name:"prune-eh"
    ~description:"convert invokes of no-unwind callees; drop dead handlers"
    (fun m -> (run m).converted_invokes > 0)

(* Redundancy elimination by dominator-scoped value numbering.

   Pure instructions (arithmetic, comparisons, geps, casts, selects) with
   identical opcodes and operands are merged when one dominates the
   other.  SSA makes the def-use graph explicit, which is what makes this
   "extremely fast" in the paper's terms (section 4.1.4): keys are just
   operand identities, no dataflow analysis is required. *)

open Llvm_ir
open Ir
open Llvm_analysis

let pure_op = function
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | SetEQ | SetNE
  | SetLT | SetGT | SetLE | SetGE | Gep | Cast | Select ->
    true
  | Ret | Br | Switch | Invoke | Unwind | Malloc | Free | Alloca | Load
  | Store | Phi | Call ->
    false

let value_key (v : value) : string =
  match v with
  | Vconst c -> Fmt.str "c:%a" Printer.pp_const c
  | Vinstr i -> Printf.sprintf "i:%d" i.iid
  | Varg a -> Printf.sprintf "a:%d" a.aid
  | Vglobal g -> Printf.sprintf "g:%d" g.gid
  | Vfunc f -> Printf.sprintf "f:%d" f.fid
  | Vblock b -> Printf.sprintf "b:%d" b.bid

let commutative = function
  | Add | Mul | And | Or | Xor | SetEQ | SetNE -> true
  | _ -> false

let instr_key (i : instr) : string =
  let ops = Array.to_list (Array.map value_key i.operands) in
  let ops =
    if commutative i.iop then List.sort compare ops else ops
  in
  Printf.sprintf "%s|%s|%s" (opcode_name i.iop) (Ltype.to_string i.ity)
    (String.concat "," ops)

let run_function (f : func) : bool =
  let dom = Dominance.compute f in
  let changed = ref false in
  (* scoped hash table: key -> available instr, with an undo log per
     dominator-tree scope *)
  let available : (string, instr) Hashtbl.t = Hashtbl.create 256 in
  let rec walk (b : block) =
    let undo = ref [] in
    List.iter
      (fun i ->
        if pure_op i.iop && i.ity <> Ltype.Void then begin
          let key = instr_key i in
          match Hashtbl.find_opt available key with
          | Some leader ->
            replace_all_uses_with (Vinstr i) (Vinstr leader);
            erase_instr i;
            changed := true
          | None ->
            Hashtbl.replace available key i;
            undo := key :: !undo
        end)
      b.instrs;
    List.iter walk (Dominance.children dom b);
    List.iter (fun key -> Hashtbl.remove available key) !undo
  in
  if not (is_declaration f) then walk (entry_block f);
  !changed

let pass =
  Pass.function_pass ~name:"gvn"
    ~description:"dominator-scoped redundancy elimination (value numbering)"
    run_function

(* Stack promotion (paper section 3.2).

   Front-ends do not construct SSA: they allocate mutable variables with
   [alloca] and use loads/stores.  This pass promotes allocas whose
   address does not escape into SSA registers, inserting phi functions at
   iterated dominance frontiers and renaming along a dominator-tree walk
   (Cytron et al.). *)

open Llvm_ir
open Ir
open Llvm_analysis

(* An alloca is promotable when it allocates a single first-class value
   and every use is a direct load or a store *to* it (its address never
   escapes as a stored value, call argument, gep base, cast source...). *)
let promotable (i : instr) : bool =
  i.iop = Alloca
  && Array.length i.operands = 0
  && (match i.alloc_ty with
     | Some t -> Ltype.is_first_class t
     | None -> false)
  && List.for_all
       (fun u ->
         match u.user.iop with
         | Load -> true
         | Store -> u.index = 1 (* pointer operand, not the stored value *)
         | _ -> false)
       i.iuses

let undef_for (i : instr) =
  match i.alloc_ty with
  | Some t -> Vconst (Cundef t)
  | None -> Vconst (Cundef Ltype.Void)

let promote_function (f : func) : bool =
  let removed = Cleanup.remove_unreachable_blocks f in
  let allocas = ref [] in
  iter_instrs (fun i -> if promotable i then allocas := i :: !allocas) f;
  let allocas = List.rev !allocas in
  if allocas = [] then removed
  else begin
    let dom = Dominance.compute f in
    let df = Dominance.frontiers dom f in
    let alloca_index = Hashtbl.create 16 in
    List.iteri (fun k a -> Hashtbl.replace alloca_index a.iid k) allocas;
    (* map phi id -> alloca it merges *)
    let phi_alloca : (int, instr) Hashtbl.t = Hashtbl.create 32 in
    (* 1. place phis at iterated dominance frontiers of store blocks *)
    List.iter
      (fun a ->
        let ty = Option.get a.alloc_ty in
        let def_blocks =
          List.filter_map
            (fun u ->
              if u.user.iop = Store then u.user.iparent else None)
            a.iuses
        in
        let placed = Hashtbl.create 16 in
        let worklist = Queue.create () in
        List.iter (fun b -> Queue.add b worklist) def_blocks;
        while not (Queue.is_empty worklist) do
          let b = Queue.pop worklist in
          if Dominance.is_reachable dom b then
            List.iter
              (fun j ->
                if not (Hashtbl.mem placed j.bid) then begin
                  Hashtbl.replace placed j.bid ();
                  let phi =
                    mk_instr ~name:a.iname ~ty Phi []
                  in
                  prepend_instr j phi;
                  Hashtbl.replace phi_alloca phi.iid a;
                  (* a phi is itself a definition *)
                  Queue.add j worklist
                end)
              (Dominance.frontier_of df b)
        done)
      allocas;
    (* 2. rename along the dominator tree *)
    let current : (int, value) Hashtbl.t = Hashtbl.create 16 in
    List.iter (fun a -> Hashtbl.replace current a.iid (undef_for a)) allocas;
    let rec rename (b : block) =
      let undo = ref [] in
      let set a v =
        undo := (a.iid, Hashtbl.find current a.iid) :: !undo;
        Hashtbl.replace current a.iid v
      in
      (* process instructions; collect deletions to apply afterwards *)
      let dead = ref [] in
      List.iter
        (fun i ->
          match i.iop with
          | Phi -> (
            match Hashtbl.find_opt phi_alloca i.iid with
            | Some a -> set a (Vinstr i)
            | None -> ())
          | Load -> (
            match i.operands.(0) with
            | Vinstr a when Hashtbl.mem alloca_index a.iid ->
              replace_all_uses_with (Vinstr i) (Hashtbl.find current a.iid);
              dead := i :: !dead
            | _ -> ())
          | Store -> (
            match i.operands.(1) with
            | Vinstr a when Hashtbl.mem alloca_index a.iid ->
              set a i.operands.(0);
              dead := i :: !dead
            | _ -> ())
          | _ -> ())
        b.instrs;
      List.iter erase_instr !dead;
      (* feed phis of CFG successors *)
      (match terminator b with
      | Some t ->
        let seen = Hashtbl.create 4 in
        List.iter
          (fun s ->
            if not (Hashtbl.mem seen s.bid) then begin
              Hashtbl.add seen s.bid ();
              List.iter
                (fun i ->
                  if i.iop = Phi then
                    match Hashtbl.find_opt phi_alloca i.iid with
                    | Some a ->
                      phi_add_incoming i (Hashtbl.find current a.iid) b
                    | None -> ())
                s.instrs
            end)
          (successors t)
      | None -> ());
      List.iter rename (Dominance.children dom b);
      List.iter (fun (id, v) -> Hashtbl.replace current id v) !undo
    in
    rename (entry_block f);
    (* 3. drop the allocas (unreachable code was removed up front, so no
       loads or stores can remain) *)
    List.iter
      (fun a ->
        assert (a.iuses = []);
        erase_instr a)
      allocas;
    true
  end

let pass =
  Pass.function_pass ~name:"mem2reg"
    ~description:"promote allocas to SSA registers (stack promotion)"
    promote_function

(* DGE: aggressive Dead Global (variable and function) Elimination.

   Table 2's first column.  "Aggressive" in the paper's sense (footnote
   9): objects are assumed dead until proven otherwise, so mutually
   referential dead globals — a dead function calling another dead
   function, a dead vtable pointing at dead methods — are deleted as a
   group.  Roots are the externally visible definitions. *)

open Llvm_ir
open Ir

type stats = {
  mutable deleted_functions : int;
  mutable deleted_globals : int;
}

let rec const_refs (c : const) (on_func : func -> unit) (on_gvar : gvar -> unit)
    =
  match c with
  | Cfunc f -> on_func f
  | Cgvar g -> on_gvar g
  | Ccast (_, c) -> const_refs c on_func on_gvar
  | Carray (_, cs) | Cstruct (_, cs) ->
    List.iter (fun c -> const_refs c on_func on_gvar) cs
  | Cbool _ | Cint _ | Cfloat _ | Cnull _ | Cundef _ | Czero _ -> ()

let run (m : modul) : stats =
  let stats = { deleted_functions = 0; deleted_globals = 0 } in
  let live_f : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let live_g : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let wf = Queue.create () and wg = Queue.create () in
  let mark_f f =
    if not (Hashtbl.mem live_f f.fid) then begin
      Hashtbl.replace live_f f.fid ();
      Queue.add f wf
    end
  in
  let mark_g g =
    if not (Hashtbl.mem live_g g.gid) then begin
      Hashtbl.replace live_g g.gid ();
      Queue.add g wg
    end
  in
  (* Roots: external linkage. *)
  List.iter (fun f -> if f.flinkage = External then mark_f f) m.mfuncs;
  List.iter (fun g -> if g.glinkage = External then mark_g g) m.mglobals;
  let scan_value v =
    match v with
    | Vfunc f -> mark_f f
    | Vglobal g -> mark_g g
    | Vconst c -> const_refs c mark_f mark_g
    | Vinstr _ | Varg _ | Vblock _ -> ()
  in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    while not (Queue.is_empty wf) do
      continue_ := true;
      let f = Queue.pop wf in
      iter_instrs (fun i -> Array.iter scan_value i.operands) f
    done;
    while not (Queue.is_empty wg) do
      continue_ := true;
      let g = Queue.pop wg in
      match g.ginit with
      | Some c -> const_refs c mark_f mark_g
      | None -> ()
    done
  done;
  (* Delete everything unmarked. *)
  let dead_fs = List.filter (fun f -> not (Hashtbl.mem live_f f.fid)) m.mfuncs in
  let dead_gs = List.filter (fun g -> not (Hashtbl.mem live_g g.gid)) m.mglobals in
  (* Break the dead-to-dead references before removal so use-lists drain. *)
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              if i.ity <> Ltype.Void then
                replace_all_uses_with (Vinstr i) (Vconst (Cundef i.ity)))
            b.instrs)
        f.fblocks;
      List.iter (fun b -> List.iter erase_instr (List.rev b.instrs)) f.fblocks;
      f.fblocks <- [])
    dead_fs;
  List.iter (fun g -> g.ginit <- None) dead_gs;
  List.iter
    (fun f ->
      remove_func m f;
      stats.deleted_functions <- stats.deleted_functions + 1)
    dead_fs;
  List.iter
    (fun g ->
      remove_gvar m g;
      stats.deleted_globals <- stats.deleted_globals + 1)
    dead_gs;
  stats

let pass =
  Pass.make ~name:"dge"
    ~description:"aggressive dead global variable and function elimination"
    (fun m ->
      let s = run m in
      s.deleted_functions > 0 || s.deleted_globals > 0)

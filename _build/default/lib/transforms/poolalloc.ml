(* Automatic Pool Allocation (paper sections 3.3 and 4.2.1), simplified.

   The paper's flagship DSA client: heap allocations are segregated into
   per-data-structure pools, determined by the points-to graph.  This
   implementation handles the intraprocedural ownership case:

   - run DSA; for each function, compute the set of escaping nodes —
     everything reachable (through points-to edges) from global
     variables, the function's formal arguments, its return value, or
     nodes passed to unknown external code;
   - a malloc whose node does not escape belongs to a data structure
     that dies with the function, so all mallocs of that node are
     rewritten to allocate from a dedicated pool:

       entry:  %pool.N = call sbyte* %llvm_poolinit()
       ...     %obj = call sbyte* %llvm_poolalloc(sbyte* %pool.N, uint size)
       ...     call void %llvm_poolfree(sbyte* %pool.N, sbyte* %p)
       rets:   call void %llvm_pooldestroy(sbyte* %pool.N)

   pooldestroy releases everything remaining in the pool at once — the
   bulk-deallocation property that makes pool allocation profitable.
   Functions containing their own `unwind` are skipped (the pool would
   leak past the destroy points).

   The interprocedural half of the real algorithm (threading pool
   descriptors through callees that allocate on behalf of their caller)
   is out of scope; see DESIGN.md. *)

open Llvm_ir
open Ir
open Llvm_analysis

type stats = {
  mutable pools_created : int;
  mutable mallocs_pooled : int;
  mutable frees_pooled : int;
}

let byte_ptr = Ltype.Pointer Ltype.sbyte

let runtime (m : modul) name return params =
  match find_func m name with
  | Some f -> f
  | None ->
    let f =
      mk_func ~linkage:External ~name ~return
        ~params:(List.map (fun t -> ("", t)) params)
        ()
    in
    add_func m f;
    f

(* Escaping union-find roots for one function: closure over fields from
   globals, formals, returns and external nodes. *)
let escaping_roots (dsa : Dsa.t) (m : modul) (f : func) :
    (int, unit) Hashtbl.t =
  let escaped = Hashtbl.create 32 in
  let work = Queue.create () in
  let push (n : Dsa.node) =
    let root = Dsa.find n in
    if not (Hashtbl.mem escaped root.Dsa.nid) then begin
      Hashtbl.replace escaped root.Dsa.nid ();
      Queue.add root work
    end
  in
  List.iter
    (fun g ->
      match Dsa.cell_of_value dsa (Vglobal g) with
      | Some c -> push c.Dsa.node
      | None -> ())
    m.mglobals;
  List.iter
    (fun a ->
      match Dsa.cell_of_value dsa (Varg a) with
      | Some c -> push c.Dsa.node
      | None -> ())
    f.fargs;
  iter_instrs
    (fun i ->
      match i.iop with
      | Ret when Array.length i.operands = 1 -> (
        match Dsa.cell_of_value dsa i.operands.(0) with
        | Some c -> push c.Dsa.node
        | None -> ())
      | _ -> ())
    f;
  (* external and collapsed nodes always escape *)
  iter_instrs
    (fun i ->
      match Dsa.cell_of_value dsa (Vinstr i) with
      | Some c ->
        let r = Dsa.find c.Dsa.node in
        if r.Dsa.external_ || r.Dsa.collapsed then push r
      | None -> ())
    f;
  while not (Queue.is_empty work) do
    let n = Queue.pop work in
    Hashtbl.iter (fun _ target -> push target) n.Dsa.fields
  done;
  escaped

let contains_unwind (f : func) : bool =
  fold_instrs (fun acc i -> acc || i.iop = Unwind) false f

let run (m : modul) : stats =
  let stats = { pools_created = 0; mallocs_pooled = 0; frees_pooled = 0 } in
  let dsa = Dsa.run m in
  let poolinit = runtime m "llvm_poolinit" byte_ptr [] in
  let poolalloc = runtime m "llvm_poolalloc" byte_ptr [ byte_ptr; Ltype.uint ] in
  let poolfree = runtime m "llvm_poolfree" Ltype.Void [ byte_ptr; byte_ptr ] in
  let pooldestroy = runtime m "llvm_pooldestroy" Ltype.Void [ byte_ptr ] in
  List.iter
    (fun f ->
      if (not (is_declaration f)) && not (contains_unwind f) then begin
        let escaped = escaping_roots dsa m f in
        (* group poolable malloc sites by their node root *)
        let groups : (int, instr list ref) Hashtbl.t = Hashtbl.create 8 in
        iter_instrs
          (fun i ->
            if i.iop = Malloc then
              match Dsa.cell_of_value dsa (Vinstr i) with
              | Some c ->
                let root = Dsa.find c.Dsa.node in
                if not (Hashtbl.mem escaped root.Dsa.nid) then begin
                  match Hashtbl.find_opt groups root.Dsa.nid with
                  | Some l -> l := i :: !l
                  | None -> Hashtbl.replace groups root.Dsa.nid (ref [ i ])
                end
              | None -> ())
          f;
        Hashtbl.iter
          (fun root_id sites ->
            stats.pools_created <- stats.pools_created + 1;
            (* create the pool at the top of the entry block *)
            let pool =
              mk_instr
                ~name:(Printf.sprintf "pool.%d" root_id)
                ~ty:byte_ptr Call [ Vfunc poolinit ]
            in
            prepend_instr (entry_block f) pool;
            (* destroy it on every return *)
            iter_instrs
              (fun r ->
                if r.iop = Ret && not (r == pool) then begin
                  let d =
                    mk_instr ~ty:Ltype.Void Call
                      [ Vfunc pooldestroy; Vinstr pool ]
                  in
                  insert_before ~point:r d
                end)
              f;
            (* rewrite the malloc sites *)
            List.iter
              (fun site ->
                let elt = Option.get site.alloc_ty in
                let elt_size = Ltype.size_of m.mtypes elt in
                let size_value =
                  if Array.length site.operands = 0 then
                    Vconst (cint Ltype.Uint (Int64.of_int elt_size))
                  else begin
                    let count = site.operands.(0) in
                    let count_uint =
                      if Ir.type_of m.mtypes count = Ltype.uint then count
                      else begin
                        let c = mk_instr ~ty:Ltype.uint Cast [ count ] in
                        insert_before ~point:site c;
                        Vinstr c
                      end
                    in
                    let total =
                      mk_instr ~ty:Ltype.uint Mul
                        [ count_uint;
                          Vconst (cint Ltype.Uint (Int64.of_int elt_size)) ]
                    in
                    insert_before ~point:site total;
                    Vinstr total
                  end
                in
                let raw =
                  mk_instr ~name:site.iname ~ty:byte_ptr Call
                    [ Vfunc poolalloc; Vinstr pool; size_value ]
                in
                insert_before ~point:site raw;
                let typed =
                  mk_instr ~ty:site.ity Cast [ Vinstr raw ]
                in
                insert_before ~point:site typed;
                replace_all_uses_with (Vinstr site) (Vinstr typed);
                (* `free` of pooled pointers becomes poolfree; the
                   rewrite happens via the uses of the typed pointer *)
                erase_instr site;
                stats.mallocs_pooled <- stats.mallocs_pooled + 1)
              !sites)
          groups;
        (* rewrite frees whose operand's node is pooled: conservatively,
           any Free whose pointer flows from a poolalloc cast *)
        let pool_of_value (v : value) : value option =
          let rec chase v =
            match v with
            | Vinstr i when i.iop = Cast -> chase i.operands.(0)
            | Vinstr i when i.iop = Call -> (
              match call_callee i with
              | Vfunc g when g == poolalloc -> Some i.operands.(1)
              | _ -> None)
            | _ -> None
          in
          chase v
        in
        iter_instrs
          (fun i ->
            if i.iop = Free then
              match pool_of_value i.operands.(0) with
              | Some pool ->
                let ptr = i.operands.(0) in
                let as_bytes =
                  if Ir.type_of m.mtypes ptr = byte_ptr then ptr
                  else begin
                    let c = mk_instr ~ty:byte_ptr Cast [ ptr ] in
                    insert_before ~point:i c;
                    Vinstr c
                  end
                in
                let call =
                  mk_instr ~ty:Ltype.Void Call [ Vfunc poolfree; pool; as_bytes ]
                in
                insert_before ~point:i call;
                erase_instr i;
                stats.frees_pooled <- stats.frees_pooled + 1
              | None -> ())
          f
      end)
    m.mfuncs;
  (* drop unused runtime declarations *)
  List.iter
    (fun g -> if g.fuses = [] && is_declaration g then remove_func m g)
    [ poolinit; poolalloc; poolfree; pooldestroy ];
  stats

let pass =
  Pass.make ~name:"poolalloc"
    ~description:"segregate non-escaping heap data structures into pools"
    (fun m ->
      let s = run m in
      s.pools_created > 0)

(* Block-local store-to-load forwarding.

   Addresses are normalized to (root object, byte offset): pointer casts
   are looked through and getelementptr chains with constant indices are
   folded to byte offsets using the type layout.  Two normalized
   addresses with the same root and offset must alias (forward); same
   root and different offset cannot alias (keep); distinct allocation
   roots (malloc/alloca results) cannot alias.  Everything else may
   alias and invalidates.  Calls invalidate all state.

   This is the piece that completes devirtualization (section 4.1.2):
   `new C` stores C's vtable into the object's header; the virtual call
   loads it back through a differently-typed gep chain a few
   instructions later; normalization matches the two addresses, the
   loaded vtable pointer becomes the constant global, and constprop then
   folds the slot load so the call becomes direct.

   Interprocedural Mod/Ref (section 3.3) keeps forwarding alive across
   calls to functions that provably do not write memory. *)

open Llvm_ir
open Ir
open Llvm_analysis

type root =
  | Ralloc of int (* instr id of a malloc/alloca: a fresh object *)
  | Rglobal of int (* gvar id *)
  | Rother of int (* some other SSA pointer (argument, load, phi...) *)

type addr = { root : root; offset : int option (* None = unknown *) }

let rec normalize (table : Ltype.table) (v : value) : addr =
  match v with
  | Vinstr i when i.iop = Cast -> normalize table i.operands.(0)
  | Vinstr i when i.iop = Gep -> (
    let base = normalize table i.operands.(0) in
    match base.offset with
    | None -> { base with offset = None }
    | Some base_off -> (
      (* fold constant indices to a byte offset *)
      match Ltype.resolve table (Ir.type_of table i.operands.(0)) with
      | Ltype.Pointer pointee -> (
        let cur = ref pointee in
        let off = ref base_off in
        let ok = ref true in
        Array.iteri
          (fun k idx ->
            if k >= 1 && !ok then
              match idx with
              | Vconst (Cint (_, n)) ->
                let n = Int64.to_int n in
                if k = 1 then off := !off + (n * Ltype.size_of table !cur)
                else (
                  match Ltype.resolve table !cur with
                  | Ltype.Array (_, elt) ->
                    off := !off + (n * Ltype.size_of table elt);
                    cur := elt
                  | Ltype.Struct fields when n >= 0 && n < List.length fields
                    ->
                    let s = Ltype.Struct fields in
                    off := !off + Ltype.field_offset table s n;
                    cur := Ltype.field_type table s n
                  | _ -> ok := false)
              | _ -> ok := false)
          i.operands;
        if !ok then { base with offset = Some !off }
        else { base with offset = None })
      | _ -> { base with offset = None }))
  | Vinstr i when i.iop = Malloc || i.iop = Alloca ->
    { root = Ralloc i.iid; offset = Some 0 }
  | Vinstr i -> { root = Rother i.iid; offset = Some 0 }
  | Vglobal g -> { root = Rglobal g.gid; offset = Some 0 }
  | Vconst (Ccast (_, Cgvar g)) -> { root = Rglobal g.gid; offset = Some 0 }
  | Varg a -> { root = Rother a.aid; offset = Some 0 }
  | v -> { root = Rother (Hashtbl.hash v); offset = None }

let is_fresh_object = function Ralloc _ -> true | _ -> false

(* must-alias: same root, both offsets known and equal *)
let must_alias (a : addr) (b : addr) : bool =
  a.root = b.root
  && (match (a.offset, b.offset) with
     | Some x, Some y -> x = y
     | _ -> false)

(* no-alias: same root at provably different offsets, or two distinct
   allocation sites (each malloc/alloca yields a fresh object), or a
   fresh allocation vs a global *)
let no_alias (a : addr) (b : addr) : bool =
  if a.root = b.root then
    match (a.offset, b.offset) with
    | Some x, Some y -> x <> y
    | _ -> false
  else
    (is_fresh_object a.root && is_fresh_object b.root)
    || (is_fresh_object a.root && match b.root with Rglobal _ -> true | _ -> false)
    || (is_fresh_object b.root && match a.root with Rglobal _ -> true | _ -> false)

let run_function (table : Ltype.table) (modref : Modref.t) (f : func) : bool =
  let changed = ref false in
  List.iter
    (fun b ->
      (* available: (normalized address, value in memory there) *)
      let available : (addr * value) list ref = ref [] in
      List.iter
        (fun i ->
          match i.iop with
          | Store ->
            let v = i.operands.(0) in
            let addr = normalize table i.operands.(1) in
            available :=
              (addr, v) :: List.filter (fun (a, _) -> no_alias a addr) !available
          | Load -> (
            let addr = normalize table i.operands.(0) in
            match List.find_opt (fun (a, _) -> must_alias a addr) !available with
            | Some (_, v)
              when Ltype.equal table (Ir.type_of table v) i.ity ->
              replace_all_uses_with (Vinstr i) v;
              erase_instr i;
              changed := true
            | Some _ ->
              (* same bytes at a different type: punning, leave it *)
              ()
            | None ->
              available := (addr, Vinstr i) :: !available)
          | Call | Invoke -> (
            (* a callee that provably does not write memory cannot
               invalidate anything *)
            match call_callee i with
            | Vfunc callee | Vconst (Cfunc callee) ->
              if Modref.may_write modref callee then available := []
            | _ -> available := [])
          | Free -> available := []
          | _ -> ())
        b.instrs)
    f.fblocks;
  !changed

let pass =
  Pass.make ~name:"store-forward"
    ~description:"block-local store-to-load forwarding with field disjointness"
    (fun m ->
      let modref = Modref.compute m in
      List.fold_left
        (fun changed f ->
          if is_declaration f then changed
          else run_function m.mtypes modref f || changed)
        false m.mfuncs)

(* Dead type elimination (listed among the link-time interprocedural
   transformations in paper section 3.3).

   A named type definition is dead when no global, function signature,
   instruction type, allocation type or live named type mentions it.
   Dead names are dropped from the module's type table, shrinking the
   persistent representation. *)

open Llvm_ir
open Ir

let rec names_in (acc : (string, unit) Hashtbl.t) (t : Ltype.t) : unit =
  match t with
  | Ltype.Named n | Ltype.Opaque n -> Hashtbl.replace acc n ()
  | Ltype.Pointer t -> names_in acc t
  | Ltype.Array (_, t) -> names_in acc t
  | Ltype.Struct fields -> List.iter (names_in acc) fields
  | Ltype.Function (ret, params, _) ->
    names_in acc ret;
    List.iter (names_in acc) params
  | Ltype.Void | Ltype.Bool | Ltype.Integer _ | Ltype.Float | Ltype.Double ->
    ()

let rec names_in_const (acc : (string, unit) Hashtbl.t) (c : const) : unit =
  match c with
  | Cbool _ -> ()
  | Cint (t, _) | Cfloat (t, _) | Cnull t | Cundef t | Czero t -> names_in acc t
  | Carray (t, cs) ->
    names_in acc t;
    List.iter (names_in_const acc) cs
  | Cstruct (t, cs) ->
    names_in acc t;
    List.iter (names_in_const acc) cs
  | Cgvar _ | Cfunc _ -> ()
  | Ccast (t, c) ->
    names_in acc t;
    names_in_const acc c

let run (m : modul) : int =
  (* roots: every type mentioned by code or data *)
  let live = Hashtbl.create 32 in
  List.iter
    (fun g ->
      names_in live g.gty;
      match g.ginit with Some c -> names_in_const live c | None -> ())
    m.mglobals;
  List.iter
    (fun f ->
      names_in live f.freturn;
      List.iter (fun a -> names_in live a.aty) f.fargs;
      iter_instrs
        (fun i ->
          names_in live i.ity;
          (match i.alloc_ty with Some t -> names_in live t | None -> ());
          Array.iter
            (fun v ->
              match v with
              | Vconst c -> names_in_const live c
              | _ -> ())
            i.operands)
        f)
    m.mfuncs;
  (* close over definitions: a live name's body may mention more names *)
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun name () ->
        match Hashtbl.find_opt m.mtypes name with
        | Some body ->
          let before = Hashtbl.length live in
          names_in live body;
          if Hashtbl.length live <> before then changed := true
        | None -> ())
      (Hashtbl.copy live)
  done;
  (* delete the rest *)
  let dead =
    Hashtbl.fold
      (fun name _ acc -> if Hashtbl.mem live name then acc else name :: acc)
      m.mtypes []
  in
  List.iter (Hashtbl.remove m.mtypes) dead;
  List.length dead

let pass =
  Pass.make ~name:"deadtypeelim"
    ~description:"remove unreferenced named type definitions"
    (fun m -> run m > 0)

(* Scalar expansion of aggregates (paper section 3.2: "scalar expansion
   precedes [stack promotion] and expands local structures to scalars
   wherever possible, so that their fields can be mapped to SSA registers
   as well").

   An alloca of a struct type is split into one alloca per field when
   every use is a getelementptr with constant indices [0, k] whose own
   uses are loads and stores. *)

open Llvm_ir
open Ir

let splittable (table : Ltype.table) (i : instr) : Ltype.t list option =
  if i.iop <> Alloca || Array.length i.operands > 0 then None
  else
    match i.alloc_ty with
    | Some t -> (
      match Ltype.resolve table t with
      | Ltype.Struct fields ->
        let gep_ok u =
          u.user.iop = Gep && u.index = 0
          && Array.length u.user.operands = 3
          && (match (u.user.operands.(1), u.user.operands.(2)) with
             | Vconst (Cint (_, 0L)), Vconst (Cint (_, k)) ->
               Int64.to_int k < List.length fields
             | _ -> false)
          && List.for_all
               (fun u2 ->
                 match u2.user.iop with
                 | Load -> true
                 | Store -> u2.index = 1
                 | _ -> false)
               u.user.iuses
        in
        if i.iuses <> [] && List.for_all gep_ok i.iuses then Some fields
        else None
      | _ -> None)
    | None -> None

let expand_function table (f : func) : bool =
  let candidates = ref [] in
  iter_instrs
    (fun i ->
      match splittable table i with
      | Some fields -> candidates := (i, fields) :: !candidates
      | None -> ())
    f;
  if !candidates = [] then false
  else begin
    List.iter
      (fun (a, fields) ->
        let parent = Option.get a.iparent in
        let field_allocas =
          List.mapi
            (fun k fty ->
              let na =
                mk_instr
                  ~name:(Printf.sprintf "%s.f%d" a.iname k)
                  ~alloc_ty:fty ~ty:(Ltype.Pointer fty) Alloca []
              in
              insert_before ~point:a na;
              na)
            fields
        in
        ignore parent;
        (* redirect each gep to the matching field alloca *)
        List.iter
          (fun u ->
            let gep = u.user in
            let k =
              match gep.operands.(2) with
              | Vconst (Cint (_, k)) -> Int64.to_int k
              | _ -> assert false
            in
            replace_all_uses_with (Vinstr gep)
              (Vinstr (List.nth field_allocas k));
            erase_instr gep)
          a.iuses;
        erase_instr a)
      !candidates;
    true
  end

let pass =
  Pass.make ~name:"scalarrepl"
    ~description:"expand struct allocas into per-field scalars"
    (fun m ->
      List.fold_left
        (fun changed f ->
          if is_declaration f then changed
          else expand_function m.mtypes f || changed)
        false m.mfuncs)

(** Dead code elimination.  [pass] erases unused pure values;
    [adce_pass] is the aggressive variant — instructions are dead until
    proven live from side-effecting roots (the framing the paper uses
    for its aggressive interprocedural cleanups, section 4.1.4). *)

val trivial : Llvm_ir.Ir.func -> bool
val aggressive : Llvm_ir.Ir.func -> bool
val pass : Pass.t
val adce_pass : Pass.t

(** Stack promotion (paper section 3.2): front-ends allocate mutable
    variables with [alloca]; this pass promotes allocas whose address
    does not escape into SSA registers, inserting phis at iterated
    dominance frontiers (Cytron et al.). *)

(** Can this alloca be promoted (single first-class element, only
    direct loads and stores)? *)
val promotable : Llvm_ir.Ir.instr -> bool

val promote_function : Llvm_ir.Ir.func -> bool
val pass : Pass.t

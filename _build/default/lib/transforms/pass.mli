(** The pass manager (paper section 3.2: optimizations "are built into
    libraries, making it easy for front-ends to use them").  A pass is a
    named module transformation reporting whether it changed anything;
    the manager runs sequences, times passes (Table 2), and keeps a
    registry for the opt tool. *)

type t = {
  name : string;
  description : string;
  run : Llvm_ir.Ir.modul -> bool;  (** returns [true] when anything changed *)
}

val make :
  name:string -> description:string -> (Llvm_ir.Ir.modul -> bool) -> t

(** Lift a per-function transformation over every defined function. *)
val function_pass :
  name:string -> description:string -> (Llvm_ir.Ir.func -> bool) -> t

val run_pass : t -> Llvm_ir.Ir.modul -> bool

(** Run and report elapsed wall-clock seconds. *)
val time_pass : t -> Llvm_ir.Ir.modul -> bool * float

val run_sequence : t list -> Llvm_ir.Ir.modul -> bool
val run_to_fixpoint : ?max_iters:int -> t list -> Llvm_ir.Ir.modul -> unit

(** {1 Registry (used by the opt tool)} *)

val register : t -> unit
val find : string -> t option
val all : unit -> t list

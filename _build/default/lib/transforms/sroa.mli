(** Scalar expansion of aggregates (paper section 3.2): struct allocas
    whose uses are all constant-field geps split into one alloca per
    field, so stack promotion can map the fields to registers. *)

val pass : Pass.t

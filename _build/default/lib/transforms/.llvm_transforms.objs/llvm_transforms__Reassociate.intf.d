lib/transforms/reassociate.mli: Pass

lib/transforms/cleanup.mli: Llvm_ir

lib/transforms/ipconstprop.mli: Llvm_ir Pass

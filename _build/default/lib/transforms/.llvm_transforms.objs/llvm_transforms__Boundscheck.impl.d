lib/transforms/boundscheck.ml: Array Dominance Int64 Ir List Llvm_analysis Llvm_ir Ltype Pass

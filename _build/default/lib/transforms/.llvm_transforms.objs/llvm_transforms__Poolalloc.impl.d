lib/transforms/poolalloc.ml: Array Dsa Hashtbl Int64 Ir List Llvm_analysis Llvm_ir Ltype Option Pass Printf Queue

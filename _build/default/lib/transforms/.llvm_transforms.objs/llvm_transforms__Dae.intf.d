lib/transforms/dae.mli: Llvm_ir Pass

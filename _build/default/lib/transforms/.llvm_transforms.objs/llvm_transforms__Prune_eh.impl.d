lib/transforms/prune_eh.ml: Array Cleanup Hashtbl Ir List Llvm_ir Ltype Option Pass

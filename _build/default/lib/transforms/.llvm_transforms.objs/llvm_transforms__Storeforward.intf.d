lib/transforms/storeforward.mli: Pass

lib/transforms/cleanup.ml: Cfg Ir List Llvm_analysis Llvm_ir Ltype

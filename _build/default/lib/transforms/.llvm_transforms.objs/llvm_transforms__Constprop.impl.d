lib/transforms/constprop.ml: Array Cleanup Fold Int64 Ir List Llvm_ir Ltype Pass

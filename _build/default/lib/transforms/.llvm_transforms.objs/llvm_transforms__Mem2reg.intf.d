lib/transforms/mem2reg.mli: Llvm_ir Pass

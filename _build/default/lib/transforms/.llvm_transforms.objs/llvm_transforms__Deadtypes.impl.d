lib/transforms/deadtypes.ml: Array Hashtbl Ir List Llvm_ir Ltype Pass

lib/transforms/tailrec.ml: Array Ir List Llvm_ir Ltype Option Pass

lib/transforms/simplify_cfg.ml: Array Cleanup Hashtbl Ir List Llvm_ir Ltype Pass

lib/transforms/storeforward.ml: Array Hashtbl Int64 Ir List Llvm_analysis Llvm_ir Ltype Modref Pass

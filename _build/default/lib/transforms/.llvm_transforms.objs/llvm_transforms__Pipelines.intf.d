lib/transforms/pipelines.mli: Llvm_ir Pass

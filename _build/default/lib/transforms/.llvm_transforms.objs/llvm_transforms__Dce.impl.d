lib/transforms/dce.ml: Array Cleanup Hashtbl Ir List Llvm_ir Ltype Pass Queue

lib/transforms/sroa.mli: Pass

lib/transforms/sccp.mli: Llvm_ir Pass

lib/transforms/sroa.ml: Array Int64 Ir List Llvm_ir Ltype Option Pass Printf

lib/transforms/reassociate.ml: Array Cleanup Fold Ir List Llvm_ir Ltype Pass

lib/transforms/inline.ml: Array Callgraph Cleanup Hashtbl Ir List Llvm_analysis Llvm_ir Ltype Option Pass

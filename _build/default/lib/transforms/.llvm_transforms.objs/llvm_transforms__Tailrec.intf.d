lib/transforms/tailrec.mli: Pass

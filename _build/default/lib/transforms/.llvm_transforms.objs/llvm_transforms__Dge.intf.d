lib/transforms/dge.mli: Llvm_ir Pass

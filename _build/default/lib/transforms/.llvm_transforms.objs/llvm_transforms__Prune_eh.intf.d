lib/transforms/prune_eh.mli: Hashtbl Llvm_ir Pass

lib/transforms/deadtypes.mli: Llvm_ir Pass

lib/transforms/pass.ml: Hashtbl Ir List Llvm_ir Unix

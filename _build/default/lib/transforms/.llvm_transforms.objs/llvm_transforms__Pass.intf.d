lib/transforms/pass.mli: Llvm_ir

lib/transforms/dge.ml: Array Hashtbl Ir List Llvm_ir Ltype Pass Queue

lib/transforms/inline.mli: Hashtbl Llvm_analysis Llvm_ir Pass

lib/transforms/dce.mli: Llvm_ir Pass

lib/transforms/gvn.ml: Array Dominance Fmt Hashtbl Ir List Llvm_analysis Llvm_ir Ltype Pass Printer Printf String

lib/transforms/boundscheck.mli: Llvm_ir Pass

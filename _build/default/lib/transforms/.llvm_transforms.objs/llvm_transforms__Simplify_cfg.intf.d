lib/transforms/simplify_cfg.mli: Llvm_ir Pass

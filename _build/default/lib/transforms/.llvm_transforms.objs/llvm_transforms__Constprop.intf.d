lib/transforms/constprop.mli: Llvm_ir Pass

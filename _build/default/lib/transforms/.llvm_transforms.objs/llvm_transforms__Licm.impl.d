lib/transforms/licm.ml: Array Dominance Hashtbl Ir List Llvm_analysis Llvm_ir Loops Modref Pass

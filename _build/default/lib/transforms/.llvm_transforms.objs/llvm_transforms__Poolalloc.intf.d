lib/transforms/poolalloc.mli: Llvm_ir Pass

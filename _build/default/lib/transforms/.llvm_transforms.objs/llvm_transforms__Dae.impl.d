lib/transforms/dae.ml: Array Callgraph Ir List Llvm_analysis Llvm_ir Ltype Pass

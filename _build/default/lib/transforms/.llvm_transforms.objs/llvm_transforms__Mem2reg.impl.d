lib/transforms/mem2reg.ml: Array Cleanup Dominance Hashtbl Ir List Llvm_analysis Llvm_ir Ltype Option Pass Queue

lib/transforms/sccp.ml: Array Cleanup Fold Hashtbl Ir List Llvm_ir Ltype Option Pass Queue Simplify_cfg

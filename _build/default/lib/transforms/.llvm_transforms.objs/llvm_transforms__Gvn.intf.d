lib/transforms/gvn.mli: Pass

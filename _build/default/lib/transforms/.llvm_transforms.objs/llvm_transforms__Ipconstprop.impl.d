lib/transforms/ipconstprop.ml: Array Callgraph Ir List Llvm_analysis Llvm_ir Pass

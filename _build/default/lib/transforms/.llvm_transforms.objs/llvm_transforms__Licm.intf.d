lib/transforms/licm.mli: Pass

(** DAE: aggressive Dead Argument (and return value) Elimination —
    Table 2's second column.  For internal functions whose address is
    never taken: unused formals are removed from the signature and all
    call sites; unread return values are demoted to void. *)

type stats = {
  mutable removed_args : int;
  mutable removed_returns : int;
}

val run : Llvm_ir.Ir.modul -> stats
val pass : Pass.t

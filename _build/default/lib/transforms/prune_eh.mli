(** Dead exception-handler pruning (paper section 4.1.2): a function
    cannot unwind when it has no reachable [unwind] and every call
    reaches a non-unwinding function; invokes of such callees become
    plain calls and their handlers usually die. *)

type stats = {
  mutable converted_invokes : int;
  mutable nounwind_functions : int;
}

val compute_may_unwind : Llvm_ir.Ir.modul -> (int, bool) Hashtbl.t
val run : Llvm_ir.Ir.modul -> stats
val pass : Pass.t

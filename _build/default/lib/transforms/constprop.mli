(** Constant propagation and algebraic simplification: a worklist sweep
    folding constant-operand instructions, collapsing single-value
    phis, and propagating loads from constant globals — the rule that
    resolves virtual-function tables into direct callees (paper section
    4.1.2). *)

(** Fold a load whose address is a constant gep into a constant
    global's initializer. *)
val fold_constant_load : Llvm_ir.Ltype.table -> Llvm_ir.Ir.instr -> Llvm_ir.Ir.const option

(** Turn calls through constant function pointers into direct calls,
    re-casting arguments to the callee's true parameter types (the
    [this] adjustment of section 4.1.2). *)
val normalize_callees : Llvm_ir.Ltype.table -> Llvm_ir.Ir.func -> bool

val pass : Pass.t

(** Tail-recursion elimination — "crucial for functional languages"
    (paper section 3.2): a self-call in tail position becomes a branch
    back to a header whose phis carry the new argument values. *)

val pass : Pass.t

(* Constant propagation and algebraic simplification.

   A worklist sweep: fold instructions whose operands are constants
   (Fold.fold_instr), apply algebraic identities (Fold.simplify_instr),
   collapse single-value phis, and propagate loads from constant
   globals — the last rule is what resolves virtual-function tables into
   direct callees (paper section 4.1.2). *)

open Llvm_ir
open Ir

(* Evaluate a gep with constant indices into (global, byte-path) and look
   the element up inside the global's constant initializer. *)
let rec const_element (table : Ltype.table) (c : const) (path : int list) :
    const option =
  match path with
  | [] -> Some c
  | idx :: rest -> (
    match c with
    | Carray (_, elts) | Cstruct (_, elts) -> (
      match List.nth_opt elts idx with
      | Some e -> const_element table e rest
      | None -> None)
    | Czero ty -> (
      (* zeroinitializer: the element is the zero of the element type *)
      match Ltype.resolve table ty with
      | Ltype.Array (n, elt) when idx < n ->
        const_element table (Czero elt) rest
      | Ltype.Struct fields -> (
        match List.nth_opt fields idx with
        | Some fty -> const_element table (Czero fty) rest
        | None -> None)
      | _ -> None)
    | _ -> None)

(* Match `gep (constant global) 0, i1, i2...` with constant indices,
   looking through pointer casts of the base (vtables flow through a
   cast to the root class's vtable type). *)
let rec strip_pointer_casts (v : value) : value =
  match v with
  | Vinstr i when i.iop = Cast -> strip_pointer_casts i.operands.(0)
  | Vconst (Ccast (_, Cgvar g)) -> Vglobal g
  | v -> v

let constant_gep_path (i : instr) : (gvar * int list) option =
  if i.iop <> Gep then None
  else
    match strip_pointer_casts i.operands.(0) with
    | Vglobal g when g.gconstant && g.ginit <> None ->
      let rec indices k acc =
        if k >= Array.length i.operands then Some (List.rev acc)
        else
          match i.operands.(k) with
          | Vconst (Cint (_, v)) -> indices (k + 1) (Int64.to_int v :: acc)
          | _ -> None
      in
      (match indices 1 [] with
      | Some (0 :: path) -> Some (g, path)
      | _ -> None)
    | _ -> None

(* Fold a load whose address is a constant gep into a constant global. *)
let fold_constant_load (table : Ltype.table) (i : instr) : const option =
  if i.iop <> Load then None
  else
    match i.operands.(0) with
    | Vglobal g when g.gconstant -> g.ginit
    | Vinstr gep -> (
      match constant_gep_path gep with
      | Some (g, path) -> (
        match g.ginit with
        | Some init -> const_element table init path
        | None -> None)
      | None -> None)
    | _ -> None

(* Canonicalize direct calls through constant function pointers (the form
   produced when a vtable load folds): call (Cfunc f) ==> call %f.

   Vtable slots are typed with the *introducing* class's signature, so an
   overriding method reached through a cast entry receives arguments
   typed at the base class; the arguments are re-cast to the callee's
   true parameter types (the `this` adjustment of section 4.1.2). *)
let normalize_callees (table : Ltype.table) (f : func) : bool =
  let changed = ref false in
  iter_instrs
    (fun i ->
      match i.iop with
      | Call | Invoke -> (
        match call_callee i with
        | Vconst (Cfunc target) | Vconst (Ccast (_, Cfunc target)) ->
          if Ltype.equal table target.freturn i.ity then begin
            let args = call_args i in
            let arg_base = match i.iop with Call -> 1 | _ -> 3 in
            List.iteri
              (fun k arg ->
                match List.nth_opt target.fargs k with
                | Some formal
                  when not
                         (Ltype.equal table formal.aty (Ir.type_of table arg))
                  ->
                  let cast = mk_instr ~ty:formal.aty Cast [ arg ] in
                  insert_before ~point:i cast;
                  set_operand i (arg_base + k) (Vinstr cast)
                | _ -> ())
              args;
            set_operand i 0 (Vfunc target);
            changed := true
          end
        | _ -> ())
      | _ -> ())
    f;
  !changed

let run_function table (f : func) : bool =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    List.iter
      (fun b ->
        List.iter
          (fun i ->
            let replacement =
              match Fold.fold_instr table i with
              | Some c -> Some (Vconst c)
              | None -> (
                match fold_constant_load table i with
                | Some c -> Some (Vconst c)
                | None -> (
                  match Fold.simplify_instr i with
                  | Some v -> Some v
                  | None ->
                    if i.iop = Phi then
                      (* all incoming values identical (ignoring self) *)
                      match phi_incoming i with
                      | [] -> None
                      | (v0, _) :: rest ->
                        let same (v, _) =
                          value_equal v v0 || value_equal v (Vinstr i)
                        in
                        if
                          List.for_all same rest
                          && not (value_equal v0 (Vinstr i))
                        then Some v0
                        else None
                    else None))
            in
            match replacement with
            | Some v when i.ity <> Ltype.Void ->
              replace_all_uses_with (Vinstr i) v;
              erase_instr i;
              changed := true;
              continue_ := true
            | _ -> ())
          b.instrs)
      f.fblocks;
    if normalize_callees table f then begin
      changed := true;
      continue_ := true
    end;
    ignore (Cleanup.delete_dead_instrs f)
  done;
  !changed

let pass =
  Pass.make ~name:"constprop"
    ~description:"constant folding, algebraic simplification, constant loads"
    (fun m ->
      List.fold_left
        (fun changed f ->
          if is_declaration f then changed
          else run_function m.mtypes f || changed)
        false m.mfuncs)

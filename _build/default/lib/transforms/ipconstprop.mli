(** Interprocedural constant propagation (paper section 3.3): when every
    direct call site of an internal function passes the same constant
    for an argument, the argument's uses become that constant (DAE then
    removes the dead formal); when every ret returns the same constant,
    call results become it. *)

type stats = {
  mutable propagated_args : int;
  mutable propagated_returns : int;
}

val run : Llvm_ir.Ir.modul -> stats
val pass : Pass.t

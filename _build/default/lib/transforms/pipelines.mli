(** Standard pass pipelines.  [per_module] approximates the static
    per-translation-unit optimizer (paper section 3.2);
    [link_time_ipo] is the aggressive whole-program pipeline the linker
    runs (section 3.3). *)

(** Every pass, registered in {!Pass}'s registry on load. *)
val all_passes : Pass.t list

val per_function_cleanup : Pass.t list
val per_module : Pass.t list
val link_time_ipo : Pass.t list

(** [level]: 0 = nothing, 1 = cleanup, 2 = per-module, 3 = per-module
    followed by the link-time interprocedural pipeline. *)
val optimize_module : ?level:int -> Llvm_ir.Ir.modul -> unit

(* CFG simplification: fold constant branches, delete unreachable code,
   merge straight-line blocks, and short-circuit empty forwarding blocks. *)

open Llvm_ir
open Ir

(* Fold `br bool <const>` and `switch <const>` into unconditional
   branches, removing phi entries along the deleted edges. *)
let fold_constant_terminators (f : func) : bool =
  let changed = ref false in
  List.iter
    (fun b ->
      match terminator b with
      | Some t when t.iop = Br && Array.length t.operands = 3 -> (
        match t.operands.(0) with
        | Vconst (Cbool cond) ->
          let taken = as_block t.operands.(if cond then 1 else 2) in
          let dead = as_block t.operands.(if cond then 2 else 1) in
          erase_instr t;
          if not (dead == taken) then
            List.iter
              (fun i -> if i.iop = Phi then phi_remove_incoming i b)
              dead.instrs;
          append_instr b (mk_instr ~ty:Ltype.Void Br [ Vblock taken ]);
          changed := true
        | _ -> ())
      | Some t when t.iop = Switch -> (
        match t.operands.(0) with
        | Vconst c ->
          let default = as_block t.operands.(1) in
          let cases = switch_cases t in
          let taken =
            match List.find_opt (fun (k, _) -> k = c) cases with
            | Some (_, blk) -> blk
            | None -> default
          in
          let all_targets = default :: List.map snd cases in
          erase_instr t;
          let cleaned = Hashtbl.create 4 in
          List.iter
            (fun target ->
              if (not (target == taken)) && not (Hashtbl.mem cleaned target.bid)
              then begin
                Hashtbl.add cleaned target.bid ();
                List.iter
                  (fun i -> if i.iop = Phi then phi_remove_incoming i b)
                  target.instrs
              end)
            all_targets;
          append_instr b (mk_instr ~ty:Ltype.Void Br [ Vblock taken ]);
          changed := true
        | _ ->
          (* a switch with no cases is an unconditional branch *)
          if switch_cases t = [] then begin
            let default = as_block t.operands.(1) in
            erase_instr t;
            append_instr b (mk_instr ~ty:Ltype.Void Br [ Vblock default ]);
            changed := true
          end)
      | _ -> ())
    f.fblocks;
  !changed

(* Merge a block into its unique predecessor when that predecessor
   branches unconditionally to it. *)
let merge_linear_blocks (f : func) : bool =
  let changed = ref false in
  let rec try_merge () =
    let candidate =
      List.find_opt
        (fun b ->
          (not (b == entry_block f))
          &&
          match predecessors b with
          | [ p ] -> (
            (not (p == b))
            &&
            match terminator p with
            | Some t -> t.iop = Br && Array.length t.operands = 1
            | None -> false)
          | _ -> false)
        f.fblocks
    in
    match candidate with
    | None -> ()
    | Some b ->
      let p = List.hd (predecessors b) in
      (* Single predecessor: each phi has one incoming value. *)
      List.iter
        (fun i ->
          if i.iop = Phi then begin
            let v =
              match phi_incoming i with
              | [ (v, _) ] -> v
              | _ -> Vconst (Cundef i.ity)
            in
            replace_all_uses_with (Vinstr i) v
          end)
        b.instrs;
      List.iter (fun i -> if i.iop = Phi then erase_instr i) b.instrs;
      (* Drop p's terminator, splice b's instructions into p. *)
      (match terminator p with Some t -> erase_instr t | None -> ());
      List.iter
        (fun i ->
          i.iparent <- Some p;
          p.instrs <- p.instrs @ [ i ])
        b.instrs;
      b.instrs <- [];
      (* Successor phis and any stray label uses now refer to p. *)
      replace_all_uses_with (Vblock b) (Vblock p);
      remove_block f b;
      changed := true;
      try_merge ()
  in
  try_merge ();
  !changed

(* Short-circuit blocks that only forward: b contains a single
   unconditional branch to x.  Predecessor edges are redirected straight
   to x.  Skipped when x's phis would need conflicting entries. *)
let remove_forwarding_blocks (f : func) : bool =
  let changed = ref false in
  List.iter
    (fun b ->
      if not (b == entry_block f) then
        match b.instrs with
        | [ t ] when t.iop = Br && Array.length t.operands = 1 ->
          let x = as_block t.operands.(0) in
          if not (x == b) then begin
            let preds = predecessors b in
            let x_has_phis = List.exists (fun i -> i.iop = Phi) x.instrs in
            let pred_already_reaches_x p =
              List.exists (fun q -> q == p) (predecessors x)
            in
            let safe =
              preds <> []
              && ((not x_has_phis)
                 || not (List.exists pred_already_reaches_x preds))
            in
            if safe then begin
              (* Extend x's phis: the value coming from b now comes from
                 every predecessor of b. *)
              List.iter
                (fun i ->
                  if i.iop = Phi then begin
                    match
                      List.find_opt (fun (_, blk) -> blk == b) (phi_incoming i)
                    with
                    | Some (v, _) ->
                      phi_remove_incoming i b;
                      List.iter (fun p -> phi_add_incoming i v p) preds
                    | None -> ()
                  end)
                x.instrs;
              (* Redirect predecessors' terminators. *)
              List.iter
                (fun p ->
                  match terminator p with
                  | Some pt ->
                    Array.iteri
                      (fun idx op ->
                        match op with
                        | Vblock blk when blk == b ->
                          set_operand pt idx (Vblock x)
                        | _ -> ())
                      pt.operands
                  | None -> ())
                preds;
              changed := true
            end
          end
        | _ -> ())
    f.fblocks;
  (* The forwarding blocks themselves become unreachable. *)
  if !changed then ignore (Cleanup.remove_unreachable_blocks f);
  !changed

let simplify (f : func) : bool =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    let c1 = Cleanup.remove_unreachable_blocks f in
    let c2 = fold_constant_terminators f in
    let c3 = Cleanup.remove_unreachable_blocks f in
    let c4 = merge_linear_blocks f in
    let c5 = remove_forwarding_blocks f in
    continue_ := c1 || c2 || c3 || c4 || c5;
    if !continue_ then changed := true
  done;
  !changed

let pass =
  Pass.function_pass ~name:"simplifycfg"
    ~description:
      "fold constant branches, merge blocks, delete unreachable code"
    simplify

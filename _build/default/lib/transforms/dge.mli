(** DGE: aggressive Dead Global (variable and function) Elimination —
    Table 2's first column.  "Aggressive" as in the paper's footnote 9:
    objects are dead until proven reachable from the externally visible
    roots, so mutually referential dead globals delete as a group. *)

type stats = {
  mutable deleted_functions : int;
  mutable deleted_globals : int;
}

val run : Llvm_ir.Ir.modul -> stats
val pass : Pass.t

(* Reassociation of commutative expression trees.

   getelementptr makes address arithmetic explicit so that reassociation
   and redundancy elimination can work on it (paper section 2.2); this
   pass rewrites chains of a commutative operator into a canonical form
   with all constants folded into a single trailing operand:
   ((x + 1) + y) + 2  ==>  (x + y) + 3. *)

open Llvm_ir
open Ir

let reassociable = function Add | Mul | And | Or | Xor -> true | _ -> false

let identity_const op (_k : Ltype.int_kind) : int64 =
  match op with
  | Add | Or | Xor -> 0L
  | Mul -> 1L
  | And -> -1L
  | _ -> invalid_arg "identity_const"

(* Collect the leaves of a chain of [op] rooted at [i], looking through
   operands that are single-use instructions with the same opcode. *)
let rec leaves op ty (v : value) (acc : value list) : value list =
  match v with
  | Vinstr i when i.iop = op && List.length i.iuses = 1 && i.ity = ty ->
    leaves op ty i.operands.(0) (leaves op ty i.operands.(1) acc)
  | v -> v :: acc

let run_function table (f : func) : bool =
  let changed = ref false in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          if
            reassociable i.iop
            && Ltype.is_integer i.ity
            && i.iparent <> None (* not erased by an earlier rewrite *)
          then begin
            let k =
              match i.ity with Ltype.Integer k -> k | _ -> assert false
            in
            let ls =
              leaves i.iop i.ity i.operands.(0)
                (leaves i.iop i.ity i.operands.(1) [])
            in
            let consts, others =
              List.partition
                (fun v -> match v with Vconst (Cint _) -> true | _ -> false)
                ls
            in
            if List.length consts >= 2 then begin
              let folded =
                List.fold_left
                  (fun acc v ->
                    match v with
                    | Vconst c -> (
                      match Fold.fold_binop i.iop acc c with
                      | Some r -> r
                      | None -> acc)
                    | _ -> acc)
                  (cint k (identity_const i.iop k))
                  consts
              in
              (* Rebuild a left-leaning chain before [i]. *)
              let rec build vs =
                match vs with
                | [] -> Vconst folded
                | [ v ] -> v
                | v1 :: v2 :: rest ->
                  let ni = mk_instr ~ty:i.ity i.iop [ v1; v2 ] in
                  insert_before ~point:i ni;
                  build (Vinstr ni :: rest)
              in
              let combined =
                match others with
                | [] -> Vconst folded
                | _ ->
                  let partial = build others in
                  if folded = cint k (identity_const i.iop k) then partial
                  else begin
                    let ni = mk_instr ~ty:i.ity i.iop [ partial; Vconst folded ] in
                    insert_before ~point:i ni;
                    Vinstr ni
                  end
              in
              replace_all_uses_with (Vinstr i) combined;
              erase_instr i;
              changed := true
            end
          end)
        b.instrs)
    f.fblocks;
  if !changed then ignore (Cleanup.delete_dead_instrs f);
  ignore table;
  !changed

let pass =
  Pass.make ~name:"reassociate"
    ~description:"canonicalize commutative chains, folding constants together"
    (fun m ->
      List.fold_left
        (fun changed f ->
          if is_declaration f then changed
          else run_function m.mtypes f || changed)
        false m.mfuncs)

(** Block-local store-to-load forwarding with field disjointness.

    Addresses normalize to (root object, byte offset) through casts and
    constant geps; same root + same offset must alias (forward), same
    root + different offset cannot, distinct allocations cannot.
    Interprocedural Mod/Ref keeps forwarding alive across calls to
    non-writing functions.  This is the piece that completes
    devirtualization (paper section 4.1.2): the vtable stored by [new]
    reaches the virtual call's vtable load. *)

val pass : Pass.t

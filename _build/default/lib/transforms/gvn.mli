(** Redundancy elimination by dominator-scoped value numbering: pure
    instructions with identical opcodes and operands merge when one
    dominates the other.  SSA's explicit def-use graph makes this fast
    (paper section 4.1.4) — keys are operand identities, no dataflow
    analysis required. *)

val pass : Pass.t

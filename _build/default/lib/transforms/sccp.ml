(* Sparse Conditional Constant Propagation (Wegman & Zadeck).

   The classic SSA lattice algorithm: every register is Top (no
   information yet), a known constant, or Bottom (overdefined); blocks
   and edges become executable only when a feasible path reaches them,
   and phis meet only over executable edges.  This is stronger than the
   simple folding sweep in [Constprop] because constants propagate
   through branches whose conditions they decide — the paper's
   "interprocedural constant propagation" builds on the same machinery
   (section 3.3). *)

open Llvm_ir
open Ir

type lattice = Top | Const of const | Bottom

let meet table (a : lattice) (b : lattice) : lattice =
  match (a, b) with
  | Top, x | x, Top -> x
  | Bottom, _ | _, Bottom -> Bottom
  | Const c1, Const c2 ->
    ignore table;
    if c1 = c2 then Const c1 else Bottom

type state = {
  table : Ltype.table;
  values : (int, lattice) Hashtbl.t; (* instr id -> lattice *)
  exec_blocks : (int, unit) Hashtbl.t;
  exec_edges : (int * int, unit) Hashtbl.t; (* (pred, succ) block ids *)
  block_work : block Queue.t;
  ssa_work : instr Queue.t;
}

let lattice_of (st : state) (v : value) : lattice =
  match v with
  | Vconst (Cundef _) -> Top
  | Vconst c -> Const c
  | Vinstr i -> (
    match Hashtbl.find_opt st.values i.iid with
    | Some l -> l
    | None -> Top)
  | Varg _ | Vglobal _ | Vfunc _ -> Bottom
  | Vblock _ -> Bottom

let set_lattice (st : state) (i : instr) (l : lattice) : unit =
  let old = match Hashtbl.find_opt st.values i.iid with Some x -> x | None -> Top in
  let merged =
    (* the lattice only descends: Top -> Const -> Bottom *)
    match (old, l) with
    | Bottom, _ -> Bottom
    | _, Bottom -> Bottom
    | Top, x -> x
    | Const c, Top -> Const c
    | Const c1, Const c2 -> if c1 = c2 then Const c1 else Bottom
  in
  if merged <> old then begin
    Hashtbl.replace st.values i.iid merged;
    (* reconsider users *)
    List.iter (fun u -> Queue.add u.user st.ssa_work) i.iuses
  end

let mark_edge (st : state) (pred : block) (succ : block) : unit =
  if not (Hashtbl.mem st.exec_edges (pred.bid, succ.bid)) then begin
    Hashtbl.replace st.exec_edges (pred.bid, succ.bid) ();
    if not (Hashtbl.mem st.exec_blocks succ.bid) then begin
      Hashtbl.replace st.exec_blocks succ.bid ();
      Queue.add succ st.block_work
    end
    else
      (* a new edge into an executable block re-triggers its phis *)
      List.iter
        (fun i -> if i.iop = Phi then Queue.add i st.ssa_work)
        succ.instrs
  end

let visit_instr (st : state) (i : instr) : unit =
  let block_executable =
    match i.iparent with
    | Some b -> Hashtbl.mem st.exec_blocks b.bid
    | None -> false
  in
  if block_executable then
    match i.iop with
    | Phi ->
      let b = Option.get i.iparent in
      let l =
        List.fold_left
          (fun acc (v, pred) ->
            if Hashtbl.mem st.exec_edges (pred.bid, b.bid) then
              meet st.table acc (lattice_of st v)
            else acc)
          Top (phi_incoming i)
      in
      set_lattice st i l
    | Br ->
      let b = Option.get i.iparent in
      if Array.length i.operands = 1 then mark_edge st b (as_block i.operands.(0))
      else begin
        match lattice_of st i.operands.(0) with
        | Const (Cbool true) -> mark_edge st b (as_block i.operands.(1))
        | Const (Cbool false) -> mark_edge st b (as_block i.operands.(2))
        | Const _ | Bottom ->
          mark_edge st b (as_block i.operands.(1));
          mark_edge st b (as_block i.operands.(2))
        | Top -> ()
      end
    | Switch -> (
      let b = Option.get i.iparent in
      match lattice_of st i.operands.(0) with
      | Const c -> (
        match List.find_opt (fun (k, _) -> k = c) (switch_cases i) with
        | Some (_, target) -> mark_edge st b target
        | None -> mark_edge st b (as_block i.operands.(1)))
      | Bottom ->
        List.iter (mark_edge st b) (successors i)
      | Top -> ())
    | Invoke ->
      let b = Option.get i.iparent in
      List.iter (mark_edge st b) (successors i);
      set_lattice st i Bottom
    | Ret | Unwind -> ()
    | ( Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | SetEQ
      | SetNE | SetLT | SetGT | SetLE | SetGE ) as op -> (
      match (lattice_of st i.operands.(0), lattice_of st i.operands.(1)) with
      | Const a, Const b -> (
        let folded =
          if is_binary op then Fold.fold_binop op a b else Fold.fold_cmp op a b
        in
        match folded with
        | Some c -> set_lattice st i (Const c)
        | None -> set_lattice st i Bottom)
      | Top, _ | _, Top -> ()
      | _ -> set_lattice st i Bottom)
    | Cast -> (
      match lattice_of st i.operands.(0) with
      | Const c -> (
        match Fold.fold_cast c i.ity with
        | Some c' -> set_lattice st i (Const c')
        | None -> set_lattice st i Bottom)
      | Top -> ()
      | Bottom -> set_lattice st i Bottom)
    | Select -> (
      match lattice_of st i.operands.(0) with
      | Const (Cbool true) -> set_lattice st i (lattice_of st i.operands.(1))
      | Const (Cbool false) -> set_lattice st i (lattice_of st i.operands.(2))
      | Top -> ()
      | _ ->
        set_lattice st i
          (meet st.table
             (lattice_of st i.operands.(1))
             (lattice_of st i.operands.(2))))
    | Load | Store | Malloc | Free | Alloca | Gep | Call ->
      if i.ity <> Ltype.Void then set_lattice st i Bottom

let run_function (table : Ltype.table) (f : func) : bool =
  if is_declaration f then false
  else begin
    let st =
      { table; values = Hashtbl.create 128; exec_blocks = Hashtbl.create 32;
        exec_edges = Hashtbl.create 64; block_work = Queue.create ();
        ssa_work = Queue.create () }
    in
    let entry = entry_block f in
    Hashtbl.replace st.exec_blocks entry.bid ();
    Queue.add entry st.block_work;
    while not (Queue.is_empty st.block_work && Queue.is_empty st.ssa_work) do
      while not (Queue.is_empty st.block_work) do
        let b = Queue.pop st.block_work in
        List.iter (visit_instr st) b.instrs
      done;
      while not (Queue.is_empty st.ssa_work) do
        visit_instr st (Queue.pop st.ssa_work)
      done
    done;
    (* rewrite: constants replace instructions; Top means the instruction
       was never reachable (dead code — leave it for cleanup passes) *)
    let changed = ref false in
    iter_instrs
      (fun i ->
        if i.ity <> Ltype.Void && not (has_side_effects i.iop) then
          match Hashtbl.find_opt st.values i.iid with
          | Some (Const c) ->
            if i.iuses <> [] then begin
              replace_all_uses_with (Vinstr i) (Vconst c);
              changed := true
            end
          | _ -> ())
      f;
    (* fold branches whose conditions became constant, and drop
       never-executed blocks *)
    if Simplify_cfg.fold_constant_terminators f then changed := true;
    if Cleanup.remove_unreachable_blocks f then changed := true;
    if Cleanup.delete_dead_instrs f then changed := true;
    !changed
  end

let pass =
  Pass.make ~name:"sccp"
    ~description:"sparse conditional constant propagation (SSA lattice)"
    (fun m ->
      List.fold_left
        (fun changed f -> run_function m.mtypes f || changed)
        false m.mfuncs)

(* Loop-invariant code motion.

   Pure computations whose operands are defined outside a natural loop
   are hoisted into the loop's preheader.  Loads hoist only when the
   loop body provably does not write memory (no stores/frees, and every
   call is to a function Mod/Ref proves non-writing).  Division and
   remainder never hoist (they can trap and the loop may execute zero
   times). *)

open Llvm_ir
open Ir
open Llvm_analysis

let hoistable_op = function
  | Add | Sub | Mul | And | Or | Xor | Shl | Shr | SetEQ | SetNE | SetLT
  | SetGT | SetLE | SetGE | Gep | Cast | Select ->
    true
  | Div | Rem (* may trap *) -> false
  | _ -> false

(* The unique loop entry edge source: a block outside the loop that is
   the only outside predecessor of the header. *)
let preheader_of (l : Loops.loop) : block option =
  let in_loop b = List.exists (fun x -> x == b) l.Loops.body in
  match List.filter (fun p -> not (in_loop p)) (predecessors l.Loops.header) with
  | [ p ] -> (
    (* its terminator must target only the header, so hoisted code runs
       exactly when the loop is entered *)
    match terminator p with
    | Some t -> (
      match successors t with
      | [ s ] when s == l.Loops.header -> Some p
      | _ -> None)
    | None -> None)
  | _ -> None

let loop_writes_memory (modref : Modref.t) (l : Loops.loop) : bool =
  List.exists
    (fun b ->
      List.exists
        (fun i ->
          match i.iop with
          | Store | Free | Malloc | Alloca -> true
          | Call | Invoke -> (
            match call_callee i with
            | Vfunc callee | Vconst (Cfunc callee) ->
              Modref.may_write modref callee
            | _ -> true)
          | _ -> false)
        b.instrs)
    l.Loops.body

let run_function (modref : Modref.t) (f : func) : bool =
  if is_declaration f then false
  else begin
    let dom = Dominance.compute f in
    let loops = Loops.find_loops dom f in
    let changed = ref false in
    List.iter
      (fun l ->
        match preheader_of l with
        | None -> ()
        | Some pre ->
          let in_loop_block b = List.exists (fun x -> x == b) l.Loops.body in
          let memory_safe = not (loop_writes_memory modref l) in
          (* [invariant] grows as instructions are hoisted *)
          let hoisted : (int, unit) Hashtbl.t = Hashtbl.create 8 in
          let operand_invariant v =
            match v with
            | Vinstr d -> (
              Hashtbl.mem hoisted d.iid
              ||
              match d.iparent with
              | Some db -> not (in_loop_block db)
              | None -> false)
            | Varg _ | Vconst _ | Vglobal _ | Vfunc _ -> true
            | Vblock _ -> false
          in
          let continue_ = ref true in
          while !continue_ do
            continue_ := false;
            List.iter
              (fun b ->
                List.iter
                  (fun i ->
                    (* a load may trap, so it only hoists from the header
                       (which runs on every trip, including the first) *)
                    let load_ok =
                      i.iop = Load && memory_safe && b == l.Loops.header
                    in
                    let movable =
                      (not (Hashtbl.mem hoisted i.iid))
                      && (hoistable_op i.iop || load_ok)
                      && Array.for_all operand_invariant i.operands
                    in
                    if movable then begin
                      unlink_instr i;
                      insert_before_terminator pre i;
                      i.iparent <- Some pre;
                      Hashtbl.replace hoisted i.iid ();
                      changed := true;
                      continue_ := true
                    end)
                  b.instrs)
              l.Loops.body
          done)
      loops;
    !changed
  end

let pass =
  Pass.make ~name:"licm" ~description:"loop-invariant code motion"
    (fun m ->
      let modref = Modref.compute m in
      List.fold_left (fun changed f -> run_function modref f || changed) false
        m.mfuncs)

(** Automatic Pool Allocation (paper sections 3.3 and 4.2.1),
    simplified to the intraprocedural ownership case: heap allocations
    whose DSA node cannot escape the allocating function are segregated
    into a per-data-structure pool created on entry and bulk-destroyed
    on return, via the runtime primitives [llvm_poolinit],
    [llvm_poolalloc], [llvm_poolfree] and [llvm_pooldestroy]. *)

type stats = {
  mutable pools_created : int;
  mutable mallocs_pooled : int;
  mutable frees_pooled : int;
}

val run : Llvm_ir.Ir.modul -> stats
val pass : Pass.t

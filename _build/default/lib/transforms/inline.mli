(** Function integration (inlining), one of the three interprocedural
    passes timed in Table 2.

    At an invoke site, cloned [unwind] instructions become direct
    branches to the handler — the optimization the paper highlights in
    section 2.4 — and cloned calls become invokes so exceptions thrown
    deeper still reach it. *)

type stats = {
  mutable inlined_calls : int;
  mutable deleted_functions : int;
}

val default_threshold : int

(** Splice one call or invoke site.  [cleanup:false] defers
    unreachable-block removal to the caller (batching). *)
val inline_call_site : ?cleanup:bool -> Llvm_ir.Ir.func -> Llvm_ir.Ir.instr -> bool

(** Inliner policy context: call graph plus the recursive-function set. *)
type context = {
  cg : Llvm_analysis.Callgraph.t;
  recursive : (int, unit) Hashtbl.t;
}

val make_context : Llvm_ir.Ir.modul -> context

(** Small callees always inline; internal callees with a single direct
    call site get a larger budget (the original is deleted after). *)
val should_inline :
  context -> ?threshold:int -> Llvm_ir.Ir.func -> Llvm_ir.Ir.func -> bool

(** Bottom-up inlining over the whole module, then deletion of
    unreferenced internal functions. *)
val run : ?threshold:int -> Llvm_ir.Ir.modul -> stats

val pass : Pass.t

(* Tail-recursion elimination.

   The paper (section 3.2) singles out tail-recursion elimination —
   "crucial for functional languages" — as a transformation best done on
   the LLVM representation rather than per-front-end.  A self-call in
   tail position (immediately followed by `ret` of its result, or by
   `ret void`) is rewritten into a branch back to a loop header whose
   phis carry the new argument values. *)

open Llvm_ir
open Ir

(* Find self tail-call sites: call %f(...) directly followed by a ret
   that returns either the call's value or nothing. *)
let tail_sites (f : func) : instr list =
  let sites = ref [] in
  List.iter
    (fun b ->
      let rec scan = function
        | call :: ret :: [] when call.iop = Call && ret.iop = Ret -> (
          match call_callee call with
          | Vfunc callee when callee == f ->
            let ok =
              match Array.length ret.operands with
              | 0 -> true
              | 1 -> value_equal ret.operands.(0) (Vinstr call)
              | _ -> false
            in
            if ok then sites := call :: !sites
          | _ -> ())
        | _ :: rest -> scan rest
        | [] -> ()
      in
      scan b.instrs)
    f.fblocks;
  List.rev !sites

let eliminate (f : func) : bool =
  let sites = tail_sites f in
  if sites = [] || is_declaration f then false
  else begin
    let old_entry = entry_block f in
    (* New entry that jumps to the old one; the old entry becomes the loop
       header and can now have phis. *)
    let new_entry = mk_block ~name:"tailrecentry" () in
    new_entry.bparent <- Some f;
    f.fblocks <- new_entry :: f.fblocks;
    append_instr new_entry (mk_instr ~ty:Ltype.Void Br [ Vblock old_entry ]);
    (* One phi per argument. *)
    let phis =
      List.map
        (fun a ->
          let phi =
            mk_instr ~name:(a.aname ^ ".tr") ~ty:a.aty Phi
              [ Varg a; Vblock new_entry ]
          in
          (a, phi))
        f.fargs
    in
    (* Replace argument uses with the phis (except the phis' own incoming
       entries, which must keep the original argument). *)
    List.iter
      (fun (a, phi) ->
        replace_all_uses_with (Varg a) (Vinstr phi);
        set_operand phi 0 (Varg a))
      phis;
    List.iter (fun (_, phi) -> prepend_instr old_entry phi) (List.rev phis);
    (* Rewrite each tail call into phi updates + branch. *)
    List.iter
      (fun call ->
        let b = Option.get call.iparent in
        let args = call_args call in
        (* the ret after the call *)
        let ret =
          match List.rev b.instrs with
          | r :: _ when r.iop = Ret -> r
          | _ -> assert false
        in
        List.iteri
          (fun k (_, phi) -> phi_add_incoming phi (List.nth args k) b)
          phis;
        (* ret may use the call's result; detach it first *)
        erase_instr ret;
        (match call.iuses with
        | [] -> ()
        | _ -> replace_all_uses_with (Vinstr call) (Vconst (Cundef call.ity)));
        erase_instr call;
        append_instr b (mk_instr ~ty:Ltype.Void Br [ Vblock old_entry ]))
      sites;
    true
  end

let pass =
  Pass.function_pass ~name:"tailrecelim"
    ~description:"turn self tail calls into loops"
    eliminate

(* Interprocedural constant propagation (listed among the link-time
   interprocedural transformations in paper section 3.3).

   For an internal function whose address is never taken: when every
   direct call site passes the same constant for a formal argument, the
   argument's uses are replaced by that constant.  The argument itself
   becomes dead and a later DAE run removes it from the signature.

   Likewise for return values: when every reachable `ret` returns the
   same constant, every call site's result is replaced by it. *)

open Llvm_ir
open Ir
open Llvm_analysis

type stats = {
  mutable propagated_args : int;
  mutable propagated_returns : int;
}

(* All direct call sites, or None when the function's address escapes. *)
let direct_sites (f : func) : instr list option =
  if Callgraph.address_taken f then None
  else
    Some
      (List.filter_map
         (fun u ->
           match u.user.iop with
           | (Call | Invoke) when u.index = 0 -> Some u.user
           | _ -> None)
         f.fuses)

let arg_operand_index (site : instr) (k : int) : int =
  match site.iop with
  | Call -> 1 + k
  | Invoke -> 3 + k
  | _ -> invalid_arg "arg_operand_index"

(* The single constant all sites pass at position [k], if any. *)
let common_argument (sites : instr list) (k : int) : const option =
  let consts =
    List.map
      (fun site ->
        match site.operands.(arg_operand_index site k) with
        | Vconst c -> Some c
        | _ -> None)
      sites
  in
  match consts with
  | Some c :: rest when List.for_all (fun x -> x = Some c) rest -> Some c
  | _ -> None

(* The single constant every ret returns, if any. *)
let common_return (f : func) : const option =
  let rets = ref [] in
  iter_instrs
    (fun i ->
      if i.iop = Ret && Array.length i.operands = 1 then
        rets :=
          (match i.operands.(0) with Vconst c -> Some c | _ -> None) :: !rets)
    f;
  match !rets with
  | Some c :: rest when List.for_all (fun x -> x = Some c) rest -> Some c
  | _ -> None

let run (m : modul) : stats =
  let stats = { propagated_args = 0; propagated_returns = 0 } in
  List.iter
    (fun f ->
      if f.flinkage = Internal && not (is_declaration f) then
        match direct_sites f with
        | None | Some [] -> ()
        | Some sites ->
          List.iteri
            (fun k formal ->
              if formal.auses <> [] then
                match common_argument sites k with
                | Some c ->
                  replace_all_uses_with (Varg formal) (Vconst c);
                  stats.propagated_args <- stats.propagated_args + 1
                | None -> ())
            f.fargs;
          (match common_return f with
          | Some c ->
            let used = List.exists (fun site -> site.iuses <> []) sites in
            if used then begin
              List.iter
                (fun site ->
                  if site.iuses <> [] then
                    replace_all_uses_with (Vinstr site) (Vconst c))
                sites;
              stats.propagated_returns <- stats.propagated_returns + 1
            end
          | None -> ()))
    m.mfuncs;
  stats

let pass =
  Pass.make ~name:"ipconstprop"
    ~description:"propagate constant arguments and returns across calls"
    (fun m ->
      let s = run m in
      s.propagated_args > 0 || s.propagated_returns > 0)

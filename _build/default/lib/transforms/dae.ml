(* DAE: aggressive Dead Argument (and return value) Elimination.

   Table 2's second column.  For internal functions whose address is
   never taken:
   - a formal argument with no uses is removed from the signature and
     from every call site;
   - a return value that no caller reads is demoted to void. *)

open Llvm_ir
open Ir
open Llvm_analysis

type stats = {
  mutable removed_args : int;
  mutable removed_returns : int;
}

(* Call sites that target [f] directly; None when some use is not a
   direct call (address taken), in which case the signature is frozen. *)
let direct_call_sites (f : func) : instr list option =
  if Callgraph.address_taken f then None
  else
    Some
      (List.filter_map
         (fun u ->
           match u.user.iop with
           | (Call | Invoke) when u.index = 0 -> Some u.user
           | _ -> None)
         f.fuses)

let arg_operand_index (site : instr) (k : int) : int =
  match site.iop with
  | Call -> 1 + k
  | Invoke -> 3 + k
  | _ -> invalid_arg "arg_operand_index"

let remove_operand (i : instr) (idx : int) =
  let n = Array.length i.operands in
  let ops = Array.make (n - 1) (Vconst (Cundef Ltype.Void)) in
  Array.blit i.operands 0 ops 0 idx;
  Array.blit i.operands (idx + 1) ops idx (n - 1 - idx);
  set_operands i ops

let run (m : modul) : stats =
  let stats = { removed_args = 0; removed_returns = 0 } in
  List.iter
    (fun f ->
      if f.flinkage = Internal && not (is_declaration f) then begin
        match direct_call_sites f with
        | None -> ()
        | Some sites ->
          (* -- dead arguments -- *)
          let rec drop_dead () =
            match
              List.find_opt (fun a -> a.auses = []) f.fargs
            with
            | Some dead ->
              let k =
                let rec index n = function
                  | [] -> assert false
                  | a :: _ when a == dead -> n
                  | _ :: rest -> index (n + 1) rest
                in
                index 0 f.fargs
              in
              List.iter
                (fun site -> remove_operand site (arg_operand_index site k))
                sites;
              f.fargs <- List.filter (fun a -> not (a == dead)) f.fargs;
              stats.removed_args <- stats.removed_args + 1;
              drop_dead ()
            | None -> ()
          in
          drop_dead ();
          (* -- dead return value -- *)
          if
            f.freturn <> Ltype.Void
            && List.for_all (fun site -> site.iuses = []) sites
          then begin
            f.freturn <- Ltype.Void;
            List.iter (fun site -> site.ity <- Ltype.Void) sites;
            iter_instrs
              (fun i ->
                if i.iop = Ret && Array.length i.operands = 1 then
                  set_operands i [||])
              f;
            stats.removed_returns <- stats.removed_returns + 1
          end
      end)
    m.mfuncs;
  stats

let pass =
  Pass.make ~name:"dae"
    ~description:"aggressive dead argument and return value elimination"
    (fun m ->
      let s = run m in
      s.removed_args > 0 || s.removed_returns > 0)

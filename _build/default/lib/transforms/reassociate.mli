(** Reassociation of commutative expression trees: chains of one
    commutative operator are rewritten with all constants folded into a
    single trailing operand, e.g. ((x + 1) + y) + 2 ==> (x + y) + 3.
    getelementptr makes address arithmetic visible to exactly this kind
    of rewrite (paper section 2.2). *)

val pass : Pass.t

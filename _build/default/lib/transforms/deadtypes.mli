(** Dead type elimination (paper section 3.3): remove named type
    definitions no global, signature, instruction or live type
    mentions, shrinking the persistent representation. *)

(** Returns the number of names removed. *)
val run : Llvm_ir.Ir.modul -> int

val pass : Pass.t

(* The pass manager.

   Optimizations are "built into libraries, making it easy for front-ends
   to use them" (paper section 3.2).  A pass is a named module
   transformation returning whether it changed anything; the manager runs
   sequences, times individual passes (the measurements behind Table 2),
   and exposes a registry for the opt tool. *)

open Llvm_ir

type t = {
  name : string;
  description : string;
  run : Ir.modul -> bool;
}

let make ~name ~description run = { name; description; run }

(* Lift a per-function transformation to a module pass. *)
let function_pass ~name ~description (run_func : Ir.func -> bool) =
  { name;
    description;
    run =
      (fun m ->
        List.fold_left
          (fun changed f ->
            if Ir.is_declaration f then changed else run_func f || changed)
          false m.Ir.mfuncs) }

let run_pass (p : t) (m : Ir.modul) : bool = p.run m

(* Run a pass and report elapsed wall-clock seconds. *)
let time_pass (p : t) (m : Ir.modul) : bool * float =
  let t0 = Unix.gettimeofday () in
  let changed = p.run m in
  let t1 = Unix.gettimeofday () in
  (changed, t1 -. t0)

let run_sequence (passes : t list) (m : Ir.modul) : bool =
  List.fold_left (fun changed p -> run_pass p m || changed) false passes

(* Iterate a sequence until no pass reports a change (bounded). *)
let run_to_fixpoint ?(max_iters = 8) (passes : t list) (m : Ir.modul) : unit =
  let rec go n =
    if n < max_iters && run_sequence passes m then go (n + 1)
  in
  go 0

(* -- Registry ----------------------------------------------------------- *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let register (p : t) = Hashtbl.replace registry p.name p

let find name = Hashtbl.find_opt registry name

let all () =
  Hashtbl.fold (fun _ p acc -> p :: acc) registry []
  |> List.sort (fun a b -> compare a.name b.name)

(** CFG simplification: fold constant branches and switches, delete
    unreachable blocks, merge straight-line blocks, and short-circuit
    empty forwarding blocks. *)

val fold_constant_terminators : Llvm_ir.Ir.func -> bool
val simplify : Llvm_ir.Ir.func -> bool
val pass : Pass.t

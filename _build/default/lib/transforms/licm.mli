(** Loop-invariant code motion: pure computations with loop-invariant
    operands hoist to the preheader; loads hoist only from the header of
    loops that provably do not write memory; division never hoists (it
    can trap). *)

val pass : Pass.t

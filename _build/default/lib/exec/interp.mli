(** The execution engine (paper section 3.4).

    An interpreter standing in for the JIT: it executes IR directly
    against the simulated memory of {!Memory}, implements the
    invoke/unwind stack-unwinding semantics of section 2.4, hosts the
    C++-style exception-handling runtime of Figure 3 (the [llvm_cxxeh_*]
    builtins), and can record block-execution profiles — the
    "light-weight instrumentation" of section 3.5.

    Undefined values read as zero, deterministically, so optimized and
    unoptimized programs can be compared for semantic equivalence. *)

exception Exit_program of int

type rtval =
  | Rvoid
  | Rbool of bool
  | Rint of Llvm_ir.Ltype.int_kind * int64  (** stored normalized *)
  | Rfloat of Llvm_ir.Ltype.t * float
  | Rptr of int64

type machine

type outcome = Normal of rtval | Unwinding

val default_fuel : int

(** Builtins available to programs: [putchar], [print_int],
    [print_long], [print_double], [print_str], [print_newline], [exit],
    [abort], the [llvm_cxxeh_*] exception runtime, [llvm_profile_hit]
    and [llvm_bounds_check]. *)
val builtin_table : unit -> (string, machine -> rtval list -> rtval) Hashtbl.t

(** Materialize a module: allocate globals, write initializers, assign
    code addresses. *)
val create : Llvm_ir.Ir.modul -> machine

(** Execute one function to completion (or unwinding).  Calls to
    declarations dispatch to builtins.
    @raise Memory.Trap on memory errors, division by zero, fuel
    exhaustion. *)
val exec_func : machine -> Llvm_ir.Ir.func -> rtval list -> outcome

type run_result = {
  status :
    [ `Returned of rtval | `Unwound | `Exited of int | `Trapped of string ];
  output : string;  (** everything the program printed *)
  instructions : int;  (** dynamic instruction count *)
}

val run_function :
  ?fuel:int -> machine -> Llvm_ir.Ir.func -> rtval list -> run_result

(** Run [main] on a fresh machine. *)
val run_main : ?fuel:int -> Llvm_ir.Ir.modul -> run_result

(** {1 Profiling (paper section 3.5)} *)

type profile

val run_main_with_profile :
  ?fuel:int -> Llvm_ir.Ir.modul -> run_result * profile

(** Executions of a basic block during the profiled run. *)
val block_count : profile -> Llvm_ir.Ir.block -> int

(** Entry count of a function (= executions of its entry block). *)
val func_count : profile -> Llvm_ir.Ir.func -> int

val pp_rtval : Format.formatter -> rtval -> unit

lib/exec/memory.ml: Buffer Bytes Char Fmt Hashtbl Int64

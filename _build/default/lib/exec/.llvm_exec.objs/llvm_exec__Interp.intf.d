lib/exec/interp.mli: Format Hashtbl Llvm_ir

lib/exec/memory.mli: Bytes Format

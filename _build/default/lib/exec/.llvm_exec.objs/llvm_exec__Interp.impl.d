lib/exec/interp.ml: Array Buffer Char Fmt Fold Hashtbl Int32 Int64 Ir List Llvm_ir Ltype Memory Option Printf

(** Natural-loop detection: back edges whose target dominates their
    source, plus the blocks that reach the latch without passing the
    header.  The runtime profiler (paper section 3.5) instruments
    exactly these regions. *)

type loop = {
  header : Llvm_ir.Ir.block;
  body : Llvm_ir.Ir.block list;  (** includes the header *)
  latches : Llvm_ir.Ir.block list;  (** sources of back edges into the header *)
}

val back_edges : Dominance.t -> Llvm_ir.Ir.func -> (Llvm_ir.Ir.block * Llvm_ir.Ir.block) list
val natural_loop : Llvm_ir.Ir.block -> Llvm_ir.Ir.block -> Llvm_ir.Ir.block list

(** All natural loops; loops sharing a header are merged. *)
val find_loops : Dominance.t -> Llvm_ir.Ir.func -> loop list

(** Loop nesting depth of each block (by block id). *)
val depths : loop list -> (int, int) Hashtbl.t

val depth_of : (int, int) Hashtbl.t -> Llvm_ir.Ir.block -> int

(* Dominator tree and dominance frontiers.

   Implementation of Cooper, Harvey & Kennedy, "A Simple, Fast Dominance
   Algorithm": iterate the idom fixpoint over reverse postorder using
   interleaved finger intersection.  Dominance frontiers follow the
   Cytron et al. construction used by SSA-building (paper section 3.2:
   the stack promotion pass "inserts phi functions as necessary"). *)

open Llvm_ir
open Ir

type t = {
  entry : block;
  idom : (int, block) Hashtbl.t; (* block id -> immediate dominator *)
  rpo_index : (int, int) Hashtbl.t;
  order : block array; (* reverse postorder *)
}

let compute (f : func) : t =
  let order = Array.of_list (Cfg.reverse_postorder f) in
  let rpo_index = Hashtbl.create 64 in
  Array.iteri (fun k b -> Hashtbl.replace rpo_index b.bid k) order;
  let entry = order.(0) in
  let idom : (int, block) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace idom entry.bid entry;
  let intersect b1 b2 =
    let finger1 = ref b1 and finger2 = ref b2 in
    while not (!finger1 == !finger2) do
      let idx b = Hashtbl.find rpo_index b.bid in
      while idx !finger1 > idx !finger2 do
        finger1 := Hashtbl.find idom !finger1.bid
      done;
      while idx !finger2 > idx !finger1 do
        finger2 := Hashtbl.find idom !finger2.bid
      done
    done;
    !finger1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun k b ->
        if k > 0 then begin
          let preds =
            List.filter
              (fun p -> Hashtbl.mem rpo_index p.bid (* reachable only *))
              (predecessors b)
          in
          let processed =
            List.filter (fun p -> Hashtbl.mem idom p.bid) preds
          in
          match processed with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            (match Hashtbl.find_opt idom b.bid with
            | Some old when old == new_idom -> ()
            | _ ->
              Hashtbl.replace idom b.bid new_idom;
              changed := true)
        end)
      order
  done;
  { entry; idom; rpo_index; order }

let idom (t : t) (b : block) : block option =
  match Hashtbl.find_opt t.idom b.bid with
  | Some d when not (d == b) -> Some d
  | Some _ -> None (* the entry *)
  | None -> None (* unreachable *)

let is_reachable (t : t) (b : block) = Hashtbl.mem t.rpo_index b.bid

(* a dominates b (reflexive). *)
let dominates (t : t) (a : block) (b : block) : bool =
  if not (is_reachable t b) then false
  else begin
    let rec walk b = if a == b then true else
      match idom t b with Some d -> walk d | None -> false
    in
    walk b
  end

let strictly_dominates (t : t) a b = (not (a == b)) && dominates t a b

(* Children in the dominator tree. *)
let children (t : t) (b : block) : block list =
  Array.to_list t.order
  |> List.filter (fun c -> match idom t c with Some d -> d == b | None -> false)

(* Dominance frontier: DF(b) = blocks j with a pred dominated by b (or = b)
   where b does not strictly dominate j. *)
let frontiers (t : t) (f : func) : (int, block list) Hashtbl.t =
  let df : (int, block list) Hashtbl.t = Hashtbl.create 64 in
  Array.iter (fun b -> Hashtbl.replace df b.bid []) t.order;
  Array.iter
    (fun b ->
      let preds = List.filter (is_reachable t) (predecessors b) in
      if List.length preds >= 2 then
        List.iter
          (fun p ->
            let runner = ref p in
            let stop =
              match idom t b with Some d -> d | None -> t.entry
            in
            while not (!runner == stop) do
              let cur = !runner in
              let existing = Hashtbl.find df cur.bid in
              if not (List.exists (fun x -> x == b) existing) then
                Hashtbl.replace df cur.bid (b :: existing);
              match idom t cur with
              | Some d -> runner := d
              | None -> runner := stop
            done)
          preds)
    t.order;
  ignore f;
  df

let frontier_of (df : (int, block list) Hashtbl.t) (b : block) : block list =
  match Hashtbl.find_opt df b.bid with Some l -> l | None -> []

(* Does the definition point of [v] dominate instruction [user]?  Used by
   the SSA checker.  Definitions in the same block must appear earlier. *)
let value_dominates_use (t : t) (v : value) (user : instr) (user_block : block) :
    bool =
  match v with
  | Vconst _ | Vglobal _ | Vfunc _ | Varg _ | Vblock _ -> true
  | Vinstr def -> (
    match def.iparent with
    | None -> false
    | Some def_block ->
      if def_block == user_block then begin
        (* def must come before user in the block *)
        let rec scan = function
          | [] -> false
          | i :: _ when i == user -> false
          | i :: _ when i == def -> true
          | _ :: rest -> scan rest
        in
        scan def_block.instrs
      end
      else strictly_dominates t def_block user_block)

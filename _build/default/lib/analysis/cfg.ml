(* Control-flow-graph utilities: block orderings and reachability.

   The CFG itself is implicit in the representation (every terminator
   names its successors, section 2.1); these helpers compute the derived
   orderings used by the dominator construction and the dataflow passes. *)

open Llvm_ir
open Ir

(* Depth-first postorder over reachable blocks, starting from the entry. *)
let postorder (f : func) : block list =
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let rec dfs b =
    if not (Hashtbl.mem visited b.bid) then begin
      Hashtbl.add visited b.bid ();
      (match terminator b with
      | Some t -> List.iter dfs (successors t)
      | None -> ());
      order := b :: !order
    end
  in
  (match f.fblocks with b :: _ -> dfs b | [] -> ());
  List.rev !order

let reverse_postorder (f : func) : block list = List.rev (postorder f)

let reachable_set (f : func) : (int, unit) Hashtbl.t =
  let set = Hashtbl.create 64 in
  List.iter (fun b -> Hashtbl.replace set b.bid ()) (postorder f);
  set

let unreachable_blocks (f : func) : block list =
  let reachable = reachable_set f in
  List.filter (fun b -> not (Hashtbl.mem reachable b.bid)) f.fblocks

(* Map each block id to its index in reverse postorder. *)
let rpo_numbering (f : func) : (int, int) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  List.iteri (fun k b -> Hashtbl.replace tbl b.bid k) (reverse_postorder f);
  tbl

(* An edge a->b is critical when a has several successors and b several
   predecessors; phi-elimination in the code generator must split these. *)
let critical_edges (f : func) : (block * block) list =
  List.concat_map
    (fun a ->
      match terminator a with
      | None -> []
      | Some t ->
        let succs = successors t in
        if List.length succs < 2 then []
        else
          List.filter_map
            (fun b ->
              if List.length (predecessors b) >= 2 then Some (a, b) else None)
            succs)
    f.fblocks

(* Data Structure Analysis (paper sections 3.3 and 4.1.1), simplified.

   A flow-insensitive, field-sensitive, unification-based points-to
   analysis in the spirit of DSA.  Every abstract memory object is a
   graph node carrying a *speculative* declared type taken from its
   allocation site (malloc/alloca element type, global type).  Loads and
   stores check their access against the layout of that type: an access
   whose scalar type matches the field at the accessed offset keeps the
   node typed; any inconsistent access — mismatched scalar, misaligned
   offset, pointers manufactured from integers — collapses the node, and
   every access through a collapsed node is untyped.

   This reproduces the paper's qualitative behaviour (Table 1): casts to
   and from void* are harmless as long as all accesses agree with the
   allocation type, while custom pool allocators (one allocation reused
   at many types) and objects used at several structure types collapse
   their nodes and lose type information.

   Differences from the paper's DSA: we use Steensgaard-style
   unification across calls rather than context-sensitive bottom-up
   inlining of graphs, which is strictly more conservative. *)

open Llvm_ir
open Ir

type node = {
  nid : int;
  mutable parent : node option; (* union-find *)
  mutable ty : Ltype.t option; (* speculative allocation type *)
  mutable collapsed : bool;
  mutable fields : (int, node) Hashtbl.t; (* byte offset -> pointee node *)
  mutable external_ : bool; (* passed to unknown code *)
}

type cell = { node : node; offset : int }

type t = {
  table : Ltype.table;
  mutable nodes : node list;
  valmap : (int, cell) Hashtbl.t; (* value id -> cell *)
  globmap : (int, node) Hashtbl.t; (* gvar id -> node *)
  retmap : (int, cell) Hashtbl.t; (* func id -> return cell *)
  mutable next_id : int;
  mutable unknown_node : node option; (* provenance-free pointers *)
  mutable changed : bool; (* graph mutated during the current pass *)
  field_sensitive : bool; (* ablation: fold all fields to offset 0 *)
}

let rec find (n : node) : node =
  match n.parent with
  | None -> n
  | Some p ->
    let root = find p in
    n.parent <- Some root;
    root

let mk_node (t : t) ?ty () : node =
  t.next_id <- t.next_id + 1;
  let n =
    { nid = t.next_id; parent = None; ty; collapsed = false;
      fields = Hashtbl.create 4; external_ = false }
  in
  t.nodes <- n :: t.nodes;
  n

let collapse (n : node) =
  let n = find n in
  n.collapsed <- true

(* Unify two nodes, merging their fields; conflicting speculative types
   collapse the result. *)
let rec union (t : t) (a : node) (b : node) : node =
  let a = find a and b = find b in
  if a == b then a
  else begin
    (* merge smaller into larger to keep find paths short *)
    let root, child = if a.nid <= b.nid then (a, b) else (b, a) in
    child.parent <- Some root;
    t.changed <- true;
    root.collapsed <- root.collapsed || child.collapsed;
    root.external_ <- root.external_ || child.external_;
    (match (root.ty, child.ty) with
    | None, Some ty -> root.ty <- Some ty
    | Some ta, Some tb when not (Ltype.equal t.table ta tb) ->
      root.collapsed <- true
    | _ -> ());
    (* merge outgoing field edges *)
    Hashtbl.iter
      (fun off target ->
        match Hashtbl.find_opt root.fields off with
        | Some existing -> ignore (union t existing target)
        | None -> Hashtbl.replace root.fields off target)
      child.fields;
    child.fields <- Hashtbl.create 1;
    root
  end

let field_cell (t : t) (c : cell) : node =
  let n = find c.node in
  let off = if n.collapsed then 0 else c.offset in
  match Hashtbl.find_opt n.fields off with
  | Some target -> find target
  | None ->
    let target = mk_node t () in
    Hashtbl.replace n.fields off target;
    target

let unknown_cell (t : t) : cell =
  let n =
    match t.unknown_node with
    | Some n -> find n
    | None ->
      let n = mk_node t () in
      collapse n;
      t.unknown_node <- Some n;
      n
  in
  { node = n; offset = 0 }

(* -- Type verification --------------------------------------------------- *)

(* Which scalar type does [ty] hold at byte offset [off]?  Arrays fold to
   their element (field-sensitive, array-insensitive, like DSA). *)
let rec scalar_at (table : Ltype.table) (ty : Ltype.t) (off : int) :
    Ltype.t option =
  match Ltype.resolve table ty with
  | (Ltype.Void | Ltype.Bool | Ltype.Integer _ | Ltype.Float | Ltype.Double
    | Ltype.Pointer _ | Ltype.Function _) as t ->
    if off = 0 then Some t else None
  | Ltype.Array (_, elt) ->
    let esz = Ltype.size_of table elt in
    if esz = 0 then None else scalar_at table elt (off mod esz)
  | Ltype.Struct fields ->
    let rec go fields_left cursor =
      match fields_left with
      | [] -> None
      | f :: rest ->
        let foff = Ltype.round_up cursor (Ltype.align_of table f) in
        let fsz = Ltype.size_of table f in
        if off >= foff && off < foff + fsz then scalar_at table f (off - foff)
        else go rest (foff + fsz)
    in
    go fields 0
  | Ltype.Named _ | Ltype.Opaque _ -> None

(* Check an access of scalar type [aty] at [cell]; collapse on mismatch. *)
let check_access (t : t) (c : cell) (aty : Ltype.t) : unit =
  let n = find c.node in
  if not n.collapsed then
    match n.ty with
    | None -> n.ty <- None (* no speculation yet: accept, stay untyped-unknown *)
    | Some nty -> (
      match scalar_at t.table nty c.offset with
      | Some fty when Ltype.equal t.table fty (Ltype.resolve t.table aty) -> ()
      | _ -> collapse n)

(* -- Building the graph ---------------------------------------------------- *)

let cell_of_value (t : t) (v : value) : cell option =
  match v with
  | Vinstr i -> Hashtbl.find_opt t.valmap i.iid
  | Varg a -> Hashtbl.find_opt t.valmap a.aid
  | Vglobal g -> (
    match Hashtbl.find_opt t.globmap g.gid with
    | Some n -> Some { node = find n; offset = 0 }
    | None -> None)
  | Vfunc _ -> None
  | Vconst c ->
    let rec const_cell = function
      | Cgvar g -> (
        match Hashtbl.find_opt t.globmap g.gid with
        | Some n -> Some { node = find n; offset = 0 }
        | None -> None)
      | Ccast (_, c) -> const_cell c
      | Cnull _ -> None
      | _ -> None
    in
    const_cell c
  | Vblock _ -> None

let set_cell (t : t) (id : int) (c : cell) =
  match Hashtbl.find_opt t.valmap id with
  | Some existing ->
    (* flow-insensitive: multiple assignments unify *)
    if existing.offset = c.offset then
      ignore (union t existing.node c.node)
    else begin
      let merged = union t existing.node c.node in
      collapse merged
    end
  | None ->
    t.changed <- true;
    Hashtbl.replace t.valmap id c

(* The cell a pointer operand resolves to.  Null/undef get fresh private
   nodes; an SSA value whose cell has not been computed yet yields None
   (the fixpoint loop revisits it) rather than poisoning the graph with
   the collapsed unknown node. *)
let resolved_pointer (t : t) (v : value) : cell option =
  match cell_of_value t v with
  | Some c -> Some c
  | None -> (
    match v with
    | Vconst (Cnull _) | Vconst (Cundef _) ->
      Some { node = mk_node t (); offset = 0 }
    | Vinstr _ | Varg _ -> None
    | _ -> Some (unknown_cell t))

(* Byte offset navigated by a gep when all its indices are constant;
   variable array indices fold to element 0. *)
let gep_offset (t : t) (i : instr) : int option =
  if not t.field_sensitive then Some 0
  else
  let table = t.table in
  match Ltype.resolve table (Ir.type_of table i.operands.(0)) with
  | Ltype.Pointer pointee ->
    (* the first index and array indices are folded to 0: all elements of
       an array are access-equivalent in DSA *)
    let off = ref 0 in
    let cur = ref pointee in
    let ok = ref true in
    Array.iteri
      (fun k v ->
        if k >= 2 && !ok then
          match Ltype.resolve table !cur with
          | Ltype.Array (_, elt) -> cur := elt
          | Ltype.Struct _ as s -> (
            match v with
            | Vconst (Cint (_, n)) ->
              let n = Int64.to_int n in
              off := !off + Ltype.field_offset table s n;
              cur := Ltype.field_type table s n
            | _ -> ok := false)
          | _ -> ok := false)
      i.operands;
    if !ok then Some !off else None
  | _ -> None

let analyze_instr (t : t) (i : instr) : unit =
  match i.iop with
  | Alloca | Malloc ->
    let ty = Option.get i.alloc_ty in
    let n = mk_node t ~ty () in
    set_cell t i.iid { node = n; offset = 0 }
  | Gep -> (
    match cell_of_value t i.operands.(0) with
    | Some base -> (
      match gep_offset t i with
      | Some delta ->
        set_cell t i.iid { node = base.node; offset = base.offset + delta }
      | None ->
        (* un-navigable arithmetic: same node, unknown offset *)
        collapse base.node;
        set_cell t i.iid { node = base.node; offset = 0 })
    | None -> () (* operand not resolved yet; a later pass will be *))
  | Cast -> (
    let src = i.operands.(0) in
    let src_ty = Ir.type_of t.table src in
    match (Ltype.resolve t.table src_ty, Ltype.resolve t.table i.ity) with
    | Ltype.Pointer _, Ltype.Pointer _ -> (
      (* pointer-to-pointer casts preserve provenance; type checking
         happens at the access, not the cast *)
      match cell_of_value t src with
      | Some c -> set_cell t i.iid c
      | None -> (
        match src with
        | Vconst (Cnull _) | Vconst (Cundef _) ->
          set_cell t i.iid { node = mk_node t (); offset = 0 }
        | _ -> () (* unresolved; retried on the next pass *)))
    | _, Ltype.Pointer _ ->
      (* integer-to-pointer: no provenance *)
      let c = unknown_cell t in
      collapse c.node;
      set_cell t i.iid c
    | Ltype.Pointer _, _ -> (
      (* pointer-to-integer: address escapes into arithmetic *)
      match cell_of_value t src with
      | Some c -> collapse c.node
      | None -> ())
    | _ -> ())
  | Load -> (
    match resolved_pointer t i.operands.(0) with
    | None -> () (* pointer not resolved yet *)
    | Some ptr -> (
      check_access t ptr i.ity;
      match Ltype.resolve t.table i.ity with
      | Ltype.Pointer _ ->
        set_cell t i.iid { node = field_cell t ptr; offset = 0 }
      | _ -> ()))
  | Store -> (
    match resolved_pointer t i.operands.(1) with
    | None -> ()
    | Some ptr -> (
      let vty = Ir.type_of t.table i.operands.(0) in
      check_access t ptr vty;
      match Ltype.resolve t.table vty with
      | Ltype.Pointer _ -> (
        match cell_of_value t i.operands.(0) with
        | Some src -> ignore (union t (field_cell t ptr) src.node)
        | None -> ())
      | _ -> ()))
  | Phi | Select ->
    Array.iter
      (fun v ->
        match Ltype.resolve t.table (Ir.type_of t.table v) with
        | Ltype.Pointer _ -> (
          match cell_of_value t v with
          | Some c -> set_cell t i.iid c
          | None -> ())
        | _ -> ())
      i.operands
  | Call | Invoke -> (
    let args = call_args i in
    match call_callee i with
    | Vfunc callee | Vconst (Cfunc callee) ->
      if is_declaration callee then
        (* unknown external code: its pointer arguments escape *)
        List.iter
          (fun a ->
            match cell_of_value t a with
            | Some c -> (find c.node).external_ <- true
            | None -> ())
          args
      else begin
        List.iteri
          (fun k a ->
            match List.nth_opt callee.fargs k with
            | Some formal -> (
              match cell_of_value t a with
              | Some c -> set_cell t formal.aid c
              | None -> ())
            | None -> ())
          args;
        (* return value *)
        if
          match Ltype.resolve t.table i.ity with
          | Ltype.Pointer _ -> true
          | _ -> false
        then begin
          match Hashtbl.find_opt t.retmap callee.fid with
          | Some rc -> set_cell t i.iid rc
          | None ->
            let rc = { node = mk_node t (); offset = 0 } in
            Hashtbl.replace t.retmap callee.fid rc;
            set_cell t i.iid rc
        end
      end
    | _ ->
      (* indirect call: arguments and result lose precision *)
      List.iter
        (fun a ->
          match cell_of_value t a with
          | Some c ->
            let u = unknown_cell t in
            ignore (union t c.node u.node)
          | None -> ())
        args;
      if
        match Ltype.resolve t.table i.ity with
        | Ltype.Pointer _ -> true
        | _ -> false
      then set_cell t i.iid (unknown_cell t))
  | Ret -> (
    match i.iparent with
    | Some b -> (
      match b.bparent with
      | Some f when Array.length i.operands = 1 -> (
        match cell_of_value t i.operands.(0) with
        | Some c -> (
          match Hashtbl.find_opt t.retmap f.fid with
          | Some rc -> ignore (union t rc.node c.node)
          | None -> Hashtbl.replace t.retmap f.fid c)
        | None -> ())
      | _ -> ())
    | None -> ())
  | _ -> ()

let create ?(field_sensitive = true) (m : modul) : t =
  let t =
    { table = m.mtypes; nodes = []; valmap = Hashtbl.create 1024;
      globmap = Hashtbl.create 64; retmap = Hashtbl.create 64; next_id = 0;
      unknown_node = None; changed = false; field_sensitive }
  in
  List.iter
    (fun g -> Hashtbl.replace t.globmap g.gid (mk_node t ~ty:g.gty ()))
    m.mglobals;
  t

(* The analysis is flow-insensitive: iterate the whole module until the
   graph stops changing (bounded; unification converges quickly). *)
let run ?field_sensitive (m : modul) : t =
  let t = create ?field_sensitive m in
  (* iterate to a fixpoint: each pass may resolve operands bound by the
     previous one; unification guarantees rapid convergence *)
  let pass = ref 0 in
  t.changed <- true;
  while t.changed && !pass < 32 do
    t.changed <- false;
    incr pass;
    List.iter
      (fun f -> iter_instrs (fun i -> analyze_instr t i) f)
      m.mfuncs
  done;
  t

(* -- Table 1 statistics ------------------------------------------------------ *)

type stats = {
  typed_accesses : int;
  untyped_accesses : int;
  typed_percent : float;
}

(* Is this load/store provably typed?  The node must be uncollapsed, have
   a speculative type, and the accessed offset must hold a matching
   scalar. *)
let access_is_typed (t : t) (i : instr) : bool =
  let ptr_operand = match i.iop with Load -> 0 | Store -> 1 | _ -> -1 in
  if ptr_operand < 0 then invalid_arg "access_is_typed: not a memory access";
  match cell_of_value t i.operands.(ptr_operand) with
  | None -> false
  | Some c -> (
    let n = find c.node in
    (not n.collapsed)
    &&
    match n.ty with
    | None -> false
    | Some nty -> (
      let aty =
        if i.iop = Load then i.ity else Ir.type_of t.table i.operands.(0)
      in
      match scalar_at t.table nty c.offset with
      | Some fty -> Ltype.equal t.table fty (Ltype.resolve t.table aty)
      | None -> false))

let compute_stats ?field_sensitive (m : modul) : stats =
  let t = run ?field_sensitive m in
  let typed = ref 0 and untyped = ref 0 in
  List.iter
    (fun f ->
      iter_instrs
        (fun i ->
          match i.iop with
          | Load | Store ->
            if access_is_typed t i then incr typed else incr untyped
          | _ -> ())
        f)
    m.mfuncs;
  let total = !typed + !untyped in
  { typed_accesses = !typed;
    untyped_accesses = !untyped;
    typed_percent =
      (if total = 0 then 100.0
       else 100.0 *. float_of_int !typed /. float_of_int total) }

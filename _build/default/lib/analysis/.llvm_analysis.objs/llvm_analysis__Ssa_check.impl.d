lib/analysis/ssa_check.ml: Array Dominance Ir List Llvm_ir Printf

lib/analysis/ssa_check.mli: Llvm_ir

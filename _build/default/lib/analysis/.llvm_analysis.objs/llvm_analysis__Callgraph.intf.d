lib/analysis/callgraph.mli: Llvm_ir

lib/analysis/dominance.mli: Hashtbl Llvm_ir

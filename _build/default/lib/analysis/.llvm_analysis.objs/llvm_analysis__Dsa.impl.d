lib/analysis/dsa.ml: Array Hashtbl Int64 Ir List Llvm_ir Ltype Option

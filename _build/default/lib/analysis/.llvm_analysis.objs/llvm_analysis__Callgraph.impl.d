lib/analysis/callgraph.ml: Hashtbl Ir List Llvm_ir Ltype

lib/analysis/loops.mli: Dominance Hashtbl Llvm_ir

lib/analysis/cfg.ml: Hashtbl Ir List Llvm_ir

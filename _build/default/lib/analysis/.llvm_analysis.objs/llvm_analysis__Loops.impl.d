lib/analysis/loops.ml: Dominance Hashtbl Ir List Llvm_ir

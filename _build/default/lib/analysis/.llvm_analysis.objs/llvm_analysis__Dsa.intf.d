lib/analysis/dsa.mli: Hashtbl Llvm_ir

lib/analysis/modref.mli: Llvm_ir

lib/analysis/modref.ml: Hashtbl Ir List Llvm_ir

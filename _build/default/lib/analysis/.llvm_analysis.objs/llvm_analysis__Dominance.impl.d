lib/analysis/dominance.ml: Array Cfg Hashtbl Ir List Llvm_ir

lib/analysis/cfg.mli: Hashtbl Llvm_ir

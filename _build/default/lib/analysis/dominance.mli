(** Dominator tree and dominance frontiers.

    Cooper, Harvey & Kennedy's "A Simple, Fast Dominance Algorithm":
    the idom fixpoint iterates over reverse postorder with interleaved
    finger intersection.  Frontiers use the Cytron et al. construction
    that drives phi placement in stack promotion (paper section 3.2). *)

type t

(** Compute the dominator tree of a function (reachable blocks only). *)
val compute : Llvm_ir.Ir.func -> t

(** Immediate dominator; [None] for the entry and unreachable blocks. *)
val idom : t -> Llvm_ir.Ir.block -> Llvm_ir.Ir.block option

val is_reachable : t -> Llvm_ir.Ir.block -> bool

(** [dominates t a b]: does [a] dominate [b] (reflexively)? *)
val dominates : t -> Llvm_ir.Ir.block -> Llvm_ir.Ir.block -> bool

val strictly_dominates : t -> Llvm_ir.Ir.block -> Llvm_ir.Ir.block -> bool

(** Children in the dominator tree, in reverse postorder. *)
val children : t -> Llvm_ir.Ir.block -> Llvm_ir.Ir.block list

(** Dominance frontier of every block, keyed by block id. *)
val frontiers : t -> Llvm_ir.Ir.func -> (int, Llvm_ir.Ir.block list) Hashtbl.t

val frontier_of : (int, Llvm_ir.Ir.block list) Hashtbl.t -> Llvm_ir.Ir.block -> Llvm_ir.Ir.block list

(** Does the definition point of a value dominate a specific use?
    Definitions in the same block must appear earlier. *)
val value_dominates_use : t -> Llvm_ir.Ir.value -> Llvm_ir.Ir.instr -> Llvm_ir.Ir.block -> bool

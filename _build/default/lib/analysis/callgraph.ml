(* Call graph construction (paper section 3.3 lists it among the
   interprocedural analyses run at link time).

   Direct calls contribute precise edges.  Indirect calls (through a
   function pointer) conservatively add edges to every address-taken
   function of a compatible type; [external_node] models calls into code
   that is not part of the module. *)

open Llvm_ir
open Ir

type node = {
  func : func;
  mutable callees : func list;
  mutable callers : func list;
  mutable calls_external : bool; (* performs an indirect/unknown call *)
}

type t = {
  nodes : (int, node) Hashtbl.t; (* func id -> node *)
  modul : modul;
}

let node (t : t) (f : func) : node = Hashtbl.find t.nodes f.fid

(* A function's address is taken when it is referenced other than as the
   callee of a direct call: stored in a vtable, passed as an argument... *)
let address_taken (f : func) : bool =
  List.exists
    (fun u ->
      match u.user.iop with
      | (Call | Invoke) when u.index = 0 -> false
      | _ -> true)
    f.fuses
  ||
  (* references from global initializers (e.g. vtables) *)
  match f.fparent with
  | None -> false
  | Some m ->
    let rec const_mentions = function
      | Cfunc g -> g == f
      | Ccast (_, c) -> const_mentions c
      | Carray (_, cs) | Cstruct (_, cs) -> List.exists const_mentions cs
      | Cbool _ | Cint _ | Cfloat _ | Cnull _ | Cundef _ | Czero _ | Cgvar _ ->
        false
    in
    List.exists
      (fun g -> match g.ginit with Some c -> const_mentions c | None -> false)
      m.mglobals

let compute (m : modul) : t =
  let t = { nodes = Hashtbl.create 64; modul = m } in
  List.iter
    (fun f ->
      Hashtbl.replace t.nodes f.fid
        { func = f; callees = []; callers = []; calls_external = false })
    m.mfuncs;
  let add_edge caller callee =
    let cn = node t caller and en = node t callee in
    if not (List.exists (fun x -> x == callee) cn.callees) then
      cn.callees <- callee :: cn.callees;
    if not (List.exists (fun x -> x == caller) en.callers) then
      en.callers <- caller :: en.callers
  in
  let compatible_targets ty =
    List.filter
      (fun f ->
        address_taken f
        && Ltype.equal m.mtypes (func_type f)
             (match Ltype.resolve m.mtypes ty with
             | Ltype.Pointer p -> p
             | p -> p))
      m.mfuncs
  in
  List.iter
    (fun caller ->
      iter_instrs
        (fun i ->
          match i.iop with
          | Call | Invoke -> (
            match call_callee i with
            | Vfunc callee -> add_edge caller callee
            | Vconst (Cfunc callee) -> add_edge caller callee
            | v ->
              (* indirect call: every compatible address-taken function *)
              let n = node t caller in
              n.calls_external <- true;
              List.iter (add_edge caller)
                (compatible_targets (Ir.type_of m.mtypes v)))
          | _ -> ())
        caller)
    m.mfuncs;
  t

(* Bottom-up (callee before caller) strongly-connected-component order,
   via Tarjan.  Mutually recursive functions share a component. *)
let sccs (t : t) : func list list =
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let result = ref [] in
  let rec strongconnect (f : func) =
    Hashtbl.replace index f.fid !counter;
    Hashtbl.replace lowlink f.fid !counter;
    incr counter;
    stack := f :: !stack;
    Hashtbl.replace on_stack f.fid ();
    let n = node t f in
    List.iter
      (fun callee ->
        if not (Hashtbl.mem index callee.fid) then begin
          strongconnect callee;
          Hashtbl.replace lowlink f.fid
            (min (Hashtbl.find lowlink f.fid) (Hashtbl.find lowlink callee.fid))
        end
        else if Hashtbl.mem on_stack callee.fid then
          Hashtbl.replace lowlink f.fid
            (min (Hashtbl.find lowlink f.fid) (Hashtbl.find index callee.fid)))
      n.callees;
    if Hashtbl.find lowlink f.fid = Hashtbl.find index f.fid then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | g :: rest ->
          stack := rest;
          Hashtbl.remove on_stack g.fid;
          if g == f then g :: acc else pop (g :: acc)
      in
      result := pop [] :: !result
    end
  in
  List.iter
    (fun f -> if not (Hashtbl.mem index f.fid) then strongconnect f)
    t.modul.mfuncs;
  (* Tarjan completes callees before callers, so reversing the
     accumulator yields bottom-up (callee-first) order. *)
  List.rev !result

let is_recursive (t : t) (f : func) : bool =
  let n = node t f in
  List.exists (fun c -> c == f) n.callees
  || List.exists
       (fun scc -> List.length scc > 1 && List.exists (fun g -> g == f) scc)
       (sccs t)

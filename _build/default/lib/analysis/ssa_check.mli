(** SSA dominance verification: each use of a register must be
    dominated by its definition (paper section 2.1); phi incoming values
    must dominate their incoming edges.  Complements the structural
    checks in [Llvm_ir.Verify]. *)

type violation = { in_func : string; message : string }

val check_func : Llvm_ir.Ir.func -> violation list
val check_module : Llvm_ir.Ir.modul -> violation list

(** @raise Failure on the first violation. *)
val assert_ssa : Llvm_ir.Ir.modul -> unit

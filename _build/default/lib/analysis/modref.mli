(** Interprocedural Mod/Ref analysis (paper section 3.3): may a
    function read or write memory, transitively through calls?
    External declarations are assumed to do both unless whitelisted as
    pure runtime helpers. *)

type t

val pure_externals : string list
val compute : Llvm_ir.Ir.modul -> t
val may_read : t -> Llvm_ir.Ir.func -> bool
val may_write : t -> Llvm_ir.Ir.func -> bool
val is_pure : t -> Llvm_ir.Ir.func -> bool

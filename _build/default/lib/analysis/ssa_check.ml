(* SSA dominance verification: each use of a register must be dominated
   by its definition (paper section 2.1).  Complements the structural
   checks in [Llvm_ir.Verify]. *)

open Llvm_ir
open Ir

type violation = { in_func : string; message : string }

let check_func (f : func) : violation list =
  if is_declaration f then []
  else begin
    let dom = Dominance.compute f in
    let violations = ref [] in
    let push message = violations := { in_func = f.fname; message } :: !violations in
    List.iter
      (fun b ->
        if Dominance.is_reachable dom b then
          List.iter
            (fun i ->
              if i.iop = Phi then
                (* A phi's incoming value must dominate the *edge*, i.e. the
                   end of the corresponding predecessor block. *)
                List.iter
                  (fun (v, pred) ->
                    match v with
                    | Vinstr def -> (
                      match def.iparent with
                      | Some db
                        when Dominance.is_reachable dom pred
                             && not (Dominance.dominates dom db pred) ->
                        push
                          (Printf.sprintf
                             "phi %%%s: incoming from %%%s not dominated by def in %%%s"
                             i.iname pred.bname db.bname)
                      | _ -> ())
                    | _ -> ())
                  (phi_incoming i)
              else
                Array.iter
                  (fun v ->
                    if not (Dominance.value_dominates_use dom v i b) then
                      push
                        (Printf.sprintf "use of %%%s in %%%s before definition"
                           (match v with Vinstr d -> d.iname | _ -> "?")
                           b.bname))
                  i.operands)
            b.instrs)
      f.fblocks;
    List.rev !violations
  end

let check_module (m : modul) : violation list =
  List.concat_map check_func m.mfuncs

let assert_ssa (m : modul) =
  match check_module m with
  | [] -> ()
  | v :: _ ->
    failwith (Printf.sprintf "SSA violation in %s: %s" v.in_func v.message)

(** Call graph construction (among the link-time interprocedural
    analyses of paper section 3.3).  Direct calls give precise edges;
    indirect calls conservatively target every address-taken function of
    a compatible type. *)

type node = {
  func : Llvm_ir.Ir.func;
  mutable callees : Llvm_ir.Ir.func list;
  mutable callers : Llvm_ir.Ir.func list;
  mutable calls_external : bool;  (** performs an indirect/unknown call *)
}

type t

val node : t -> Llvm_ir.Ir.func -> node

(** Is the function referenced other than as a direct callee (stored in
    a vtable, passed as data, mentioned by an initializer)? *)
val address_taken : Llvm_ir.Ir.func -> bool

val compute : Llvm_ir.Ir.modul -> t

(** Strongly connected components in bottom-up (callee-first) order;
    mutually recursive functions share a component. *)
val sccs : t -> Llvm_ir.Ir.func list list

val is_recursive : t -> Llvm_ir.Ir.func -> bool

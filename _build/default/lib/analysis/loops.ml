(* Natural-loop detection.

   A back edge t->h is an edge whose target dominates its source; the
   natural loop of the edge is h plus every block that can reach t
   without passing through h.  The runtime profiler (paper section 3.5)
   instruments exactly these loop regions. *)

open Llvm_ir
open Ir

type loop = {
  header : block;
  body : block list; (* includes the header *)
  latches : block list; (* sources of back edges into the header *)
}

let back_edges (dom : Dominance.t) (f : func) : (block * block) list =
  List.concat_map
    (fun b ->
      match terminator b with
      | None -> []
      | Some t ->
        List.filter_map
          (fun s -> if Dominance.dominates dom s b then Some (b, s) else None)
          (successors t))
    f.fblocks

let natural_loop (header : block) (latch : block) : block list =
  let in_loop = Hashtbl.create 16 in
  Hashtbl.replace in_loop header.bid ();
  let rec add b =
    if not (Hashtbl.mem in_loop b.bid) then begin
      Hashtbl.replace in_loop b.bid ();
      List.iter add (predecessors b)
    end
  in
  add latch;
  (* Collect in a stable order from the function layout. *)
  match header.bparent with
  | Some f -> List.filter (fun b -> Hashtbl.mem in_loop b.bid) f.fblocks
  | None -> [ header; latch ]

(* All natural loops, merging loops that share a header. *)
let find_loops (dom : Dominance.t) (f : func) : loop list =
  let by_header : (int, block * block list ref * block list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (latch, header) ->
      let _, body, latches =
        match Hashtbl.find_opt by_header header.bid with
        | Some entry -> entry
        | None ->
          let entry = (header, ref [], ref []) in
          Hashtbl.replace by_header header.bid entry;
          entry
      in
      latches := latch :: !latches;
      List.iter
        (fun b ->
          if not (List.exists (fun x -> x == b) !body) then body := b :: !body)
        (natural_loop header latch))
    (back_edges dom f);
  Hashtbl.fold
    (fun _ (header, body, latches) acc ->
      { header; body = List.rev !body; latches = List.rev !latches } :: acc)
    by_header []
  |> List.sort (fun a b -> compare a.header.bid b.header.bid)

(* Loop nesting depth of each block: number of loops containing it. *)
let depths (loops : loop list) : (int, int) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun l ->
      List.iter
        (fun b ->
          let d = match Hashtbl.find_opt tbl b.bid with Some d -> d | None -> 0 in
          Hashtbl.replace tbl b.bid (d + 1))
        l.body)
    loops;
  tbl

let depth_of (tbl : (int, int) Hashtbl.t) (b : block) =
  match Hashtbl.find_opt tbl b.bid with Some d -> d | None -> 0

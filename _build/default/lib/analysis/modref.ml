(* Interprocedural Mod/Ref analysis (listed among the link-time analyses
   in paper section 3.3).

   Computes, per function, whether it may read or write memory,
   transitively through calls; external declarations are assumed to do
   both unless they are known pure runtime helpers.  Clients can then
   treat calls to non-writing functions as loads, etc. *)

open Llvm_ir
open Ir

type effect_ = { mutable reads : bool; mutable writes : bool }

type t = (int, effect_) Hashtbl.t (* func id -> effect *)

let pure_externals =
  [ "llvm_cxxeh_current_typeid"; "llvm_cxxeh_get_exception";
    "llvm_bounds_check"; "llvm_sjlj_target"; "llvm_sjlj_value" ]

let effect_of (t : t) (f : func) : effect_ =
  match Hashtbl.find_opt t f.fid with
  | Some e -> e
  | None ->
    let e = { reads = true; writes = true } in
    Hashtbl.replace t f.fid e;
    e

let compute (m : modul) : t =
  let t : t = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let initial =
        if is_declaration f then
          if List.mem f.fname pure_externals then
            { reads = false; writes = false }
          else { reads = true; writes = true }
        else { reads = false; writes = false }
      in
      Hashtbl.replace t f.fid initial)
    m.mfuncs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        if not (is_declaration f) then begin
          let e = effect_of t f in
          let set_reads () =
            if not e.reads then begin
              e.reads <- true;
              changed := true
            end
          in
          let set_writes () =
            if not e.writes then begin
              e.writes <- true;
              changed := true
            end
          in
          iter_instrs
            (fun i ->
              match i.iop with
              | Load -> set_reads ()
              | Store | Free | Malloc -> set_writes ()
              | Call | Invoke -> (
                match call_callee i with
                | Vfunc callee | Vconst (Cfunc callee) ->
                  let ce = effect_of t callee in
                  if ce.reads then set_reads ();
                  if ce.writes then set_writes ()
                | _ ->
                  (* indirect call: assume the worst *)
                  set_reads ();
                  set_writes ())
              | _ -> ())
            f
        end)
      m.mfuncs
  done;
  t

let may_read (t : t) (f : func) = (effect_of t f).reads
let may_write (t : t) (f : func) = (effect_of t f).writes
let is_pure (t : t) (f : func) =
  let e = effect_of t f in
  (not e.reads) && not e.writes

(** Data Structure Analysis, simplified (paper sections 3.3 and 4.1.1).

    A flow-insensitive, field-sensitive, unification-based points-to
    analysis in the spirit of DSA.  Every abstract memory object carries
    a {e speculative} type from its allocation site; loads and stores
    are checked against that type's layout, and any inconsistent access
    — mismatched scalar, pointer manufactured from an integer — collapses
    the node, making every access through it untyped.  This reproduces
    the paper's Table 1 behaviour: casts through [void*] are harmless
    while consistent, but custom pool allocators and objects reused at
    several structure types lose their type information.

    Difference from the paper's DSA: unification across calls
    (Steensgaard-style) rather than context-sensitive bottom-up graph
    inlining, which is strictly more conservative. *)

type node = {
  nid : int;
  mutable parent : node option;  (** union-find *)
  mutable ty : Llvm_ir.Ltype.t option;  (** speculative allocation type *)
  mutable collapsed : bool;
  mutable fields : (int, node) Hashtbl.t;  (** byte offset -> pointee *)
  mutable external_ : bool;  (** passed to unknown code *)
}

type cell = { node : node; offset : int }
type t

val find : node -> node
val cell_of_value : t -> Llvm_ir.Ir.value -> cell option

(** Which scalar type does a type hold at a byte offset?  Arrays fold to
    their element (field-sensitive, array-insensitive). *)
val scalar_at : Llvm_ir.Ltype.table -> Llvm_ir.Ltype.t -> int -> Llvm_ir.Ltype.t option

(** Run the analysis to a fixpoint over the whole module.
    [field_sensitive:false] folds every field to offset 0 (the Table 1
    ablation). *)
val run : ?field_sensitive:bool -> Llvm_ir.Ir.modul -> t

(** Is this load/store provably typed: uncollapsed node, speculative
    type present, and the accessed offset holding a matching scalar? *)
val access_is_typed : t -> Llvm_ir.Ir.instr -> bool

type stats = {
  typed_accesses : int;
  untyped_accesses : int;
  typed_percent : float;
}

(** Table 1's statistic: the typed fraction of static loads + stores. *)
val compute_stats : ?field_sensitive:bool -> Llvm_ir.Ir.modul -> stats

(** Control-flow-graph utilities: block orderings and reachability.
    The CFG itself is implicit in the representation — every terminator
    names its successors (paper section 2.1). *)

(** Depth-first postorder over reachable blocks. *)
val postorder : Llvm_ir.Ir.func -> Llvm_ir.Ir.block list

val reverse_postorder : Llvm_ir.Ir.func -> Llvm_ir.Ir.block list
val reachable_set : Llvm_ir.Ir.func -> (int, unit) Hashtbl.t
val unreachable_blocks : Llvm_ir.Ir.func -> Llvm_ir.Ir.block list

(** Block id -> index in reverse postorder. *)
val rpo_numbering : Llvm_ir.Ir.func -> (int, int) Hashtbl.t

(** Edges from a multi-successor block to a multi-predecessor block;
    phi elimination in the code generator must split these. *)
val critical_edges : Llvm_ir.Ir.func -> (Llvm_ir.Ir.block * Llvm_ir.Ir.block) list

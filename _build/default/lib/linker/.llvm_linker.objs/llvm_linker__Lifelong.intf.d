lib/linker/lifelong.mli: Llvm_exec Llvm_ir

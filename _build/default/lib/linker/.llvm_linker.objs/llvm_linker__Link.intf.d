lib/linker/link.mli: Llvm_ir

lib/linker/lifelong.ml: Dge Inline Ir Link List Llvm_analysis Llvm_bitcode Llvm_codegen Llvm_exec Llvm_ir Llvm_transforms Pass Pipelines

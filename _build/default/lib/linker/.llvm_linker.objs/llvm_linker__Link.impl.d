lib/linker/link.ml: Fmt Hashtbl Ir List Llvm_ir Ltype Printf

(** The IR linker (paper section 3.3): combines separately compiled
    translation units into one module, resolving declarations against
    definitions, merging named types, and renaming colliding internal
    symbols.  Linking is destructive — inputs donate their contents. *)

exception Link_error of string

(** @raise Link_error on duplicate definitions or conflicting types. *)
val link : ?name:string -> Llvm_ir.Ir.modul list -> Llvm_ir.Ir.modul

(** After whole-program linking, everything except [keep] (default
    [\["main"\]]) becomes internal, enabling dead-global elimination and
    signature-changing optimizations. *)
val internalize : ?keep:string list -> Llvm_ir.Ir.modul -> unit

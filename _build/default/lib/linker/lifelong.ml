(* The lifelong compilation pipeline of Figure 4:

     front-ends emit IR -> linker + IPO -> offline native codegen
       (bitcode embedded in the executable) -> run with lightweight
       profiling -> idle-time profile-guided reoptimizer -> rerun.

   The execution engine stands in for the native code: "performance" is
   reported as interpreted instruction counts, which respond to the same
   optimizations (fewer calls after inlining, fewer instructions after
   simplification) that native execution would. *)

open Llvm_ir
open Ir
open Llvm_transforms

type executable = {
  program : modul; (* the linked, optimized IR *)
  native_x86_bytes : int;
  native_sparc_bytes : int;
  bitcode : string; (* persistent IR shipped alongside native code *)
}

type run_report = {
  result : Llvm_exec.Interp.run_result;
  profile : Llvm_exec.Interp.profile;
}

type reoptimization = {
  hot_functions : (string * int) list; (* entry counts from the field *)
  inlined_hot_calls : int;
  before_instrs : int;
  after_instrs : int;
}

(* Compile-and-link: the static half of the pipeline. *)
let build ?(ipo = true) (modules : modul list) : executable =
  let program = Link.link modules in
  Link.internalize program;
  if ipo then ignore (Pass.run_sequence Pipelines.link_time_ipo program);
  let bitcode, _ = Llvm_bitcode.Encoder.encode ~strip:true program in
  { program;
    native_x86_bytes = Llvm_codegen.Emit.code_size Llvm_codegen.Target.x86ish program;
    native_sparc_bytes =
      Llvm_codegen.Emit.code_size Llvm_codegen.Target.sparcish program;
    bitcode }

(* An end-user run with the lightweight instrumentation enabled
   (section 3.5). *)
let run_in_the_field ?fuel (exe : executable) : run_report =
  let result, profile = Llvm_exec.Interp.run_main_with_profile ?fuel exe.program in
  { result; profile }

let hot_functions (exe : executable) (report : run_report) :
    (string * int) list =
  List.filter_map
    (fun f ->
      if is_declaration f then None
      else
        let n = Llvm_exec.Interp.func_count report.profile f in
        if n > 0 then Some (f.fname, n) else None)
    exe.program.mfuncs
  |> List.sort (fun (_, a) (_, b) -> compare b a)

(* The idle-time reoptimizer (section 3.6): "a modified version of the
   link-time interprocedural optimizer, but with a greater emphasis on
   profile-driven ... optimizations".  Here: call sites residing in hot
   blocks are inlined regardless of the static inliner's size budget,
   then the usual cleanup pipeline reruns. *)
let reoptimize_with_profile ?(hot_threshold = 100) (exe : executable)
    (report : run_report) : reoptimization =
  let m = exe.program in
  let before_instrs = module_instr_count m in
  let hot = hot_functions exe report in
  let inlined = ref 0 in
  let continue_ = ref true in
  let rounds = ref 0 in
  while !continue_ && !rounds < 4 do
    continue_ := false;
    incr rounds;
    List.iter
      (fun caller ->
        if not (is_declaration caller) then begin
          let site = ref None in
          iter_instrs
            (fun i ->
              if !site = None && (i.iop = Call || i.iop = Invoke) then
                match (i.iparent, call_callee i) with
                | Some blk, Vfunc callee
                  when (not (is_declaration callee))
                       && (not (callee == caller))
                       && Llvm_exec.Interp.block_count report.profile blk
                          >= hot_threshold
                       && instr_count callee <= 400 ->
                  (* recursive callees are cloned once, not expanded *)
                  let cg = Llvm_analysis.Callgraph.compute m in
                  if not (Llvm_analysis.Callgraph.is_recursive cg callee) then
                    site := Some i
                | _ -> ())
            caller;
          match !site with
          | Some i ->
            if Inline.inline_call_site caller i then begin
              incr inlined;
              continue_ := true
            end
          | None -> ()
        end)
      m.mfuncs
  done;
  ignore (Pass.run_sequence Pipelines.per_module m);
  ignore (Pass.run_pass Dge.pass m);
  { hot_functions = hot;
    inlined_hot_calls = !inlined;
    before_instrs;
    after_instrs = module_instr_count m }

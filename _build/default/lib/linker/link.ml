(* The LLVM linker (paper section 3.3): combines the IR of separately
   compiled translation units into one module, resolving declarations
   against definitions, merging named types, and renaming colliding
   internal symbols.  Link time is "the first phase of the compilation
   process where most of the program is available for analysis", so the
   result is normally handed straight to the interprocedural optimizer.

   Linking is destructive: the input modules donate their contents. *)

open Llvm_ir
open Ir

exception Link_error of string

let err fmt = Fmt.kstr (fun s -> raise (Link_error s)) fmt

(* Merge the named-type table of [src] into [dst]; identical structural
   definitions unify, conflicting ones are an error (the front-end
   emits stable names). *)
let merge_types (dst : modul) (src : modul) =
  Hashtbl.iter
    (fun name ty ->
      match Hashtbl.find_opt dst.mtypes name with
      | None -> Hashtbl.replace dst.mtypes name ty
      | Some existing ->
        if not (Ltype.equal dst.mtypes existing ty) then
          err "conflicting definitions of type %%%s" name)
    src.mtypes

let fresh_internal_name (dst : modul) (base : string) : string =
  let taken name = find_func dst name <> None || find_gvar dst name <> None in
  if not (taken base) then base
  else begin
    let rec go k =
      let cand = Printf.sprintf "%s.%d" base k in
      if taken cand then go (k + 1) else cand
    in
    go 1
  end

let move_gvar (dst : modul) (src : modul) (g : gvar) =
  match find_gvar dst g.gname with
  | None ->
    remove_gvar src g;
    add_gvar dst g
  | Some existing -> (
    match (existing.ginit, g.ginit) with
    | _ when g.glinkage = Internal ->
      remove_gvar src g;
      g.gname <- fresh_internal_name dst g.gname;
      add_gvar dst g
    | _ when existing.glinkage = Internal ->
      (* the resident one hides; the new external takes the name *)
      existing.gname <- fresh_internal_name dst (existing.gname ^ ".local");
      remove_gvar src g;
      add_gvar dst g
    | Some _, Some _ -> err "duplicate definition of global %%%s" g.gname
    | Some _, None ->
      (* declaration resolved by existing definition *)
      remove_gvar src g;
      replace_all_uses_with (Vglobal g) (Vglobal existing)
    | None, Some _ ->
      (* existing declaration resolved by this definition *)
      remove_gvar src g;
      replace_all_uses_with (Vglobal existing) (Vglobal g);
      remove_gvar dst existing;
      add_gvar dst g
    | None, None ->
      remove_gvar src g;
      replace_all_uses_with (Vglobal g) (Vglobal existing))

(* Rewrite constant references to a replaced function/global inside all
   initializers of [m].  RAUW covers instruction operands; initializers
   store constants structurally, so they are rebuilt. *)
let rewrite_initializers (m : modul) ~(from_f : func option)
    ~(to_f : func option) ~(from_g : gvar option) ~(to_g : gvar option) =
  let rec rw (c : const) : const =
    match c with
    | Cfunc f -> (
      match (from_f, to_f) with
      | Some ff, Some tf when f == ff -> Cfunc tf
      | _ -> c)
    | Cgvar g -> (
      match (from_g, to_g) with
      | Some fg, Some tg when g == fg -> Cgvar tg
      | _ -> c)
    | Ccast (ty, inner) -> Ccast (ty, rw inner)
    | Carray (ty, cs) -> Carray (ty, List.map rw cs)
    | Cstruct (ty, cs) -> Cstruct (ty, List.map rw cs)
    | Cbool _ | Cint _ | Cfloat _ | Cnull _ | Cundef _ | Czero _ -> c
  in
  List.iter
    (fun g -> match g.ginit with Some c -> g.ginit <- Some (rw c) | None -> ())
    m.mglobals

let move_func (dst : modul) (src : modul) (f : func) =
  match find_func dst f.fname with
  | None ->
    remove_func src f;
    add_func dst f
  | Some existing -> (
    match (is_declaration existing, is_declaration f) with
    | _ when f.flinkage = Internal && not (is_declaration f) ->
      remove_func src f;
      f.fname <- fresh_internal_name dst f.fname;
      add_func dst f
    | _ when existing.flinkage = Internal && not (is_declaration existing) ->
      existing.fname <- fresh_internal_name dst (existing.fname ^ ".local");
      remove_func src f;
      add_func dst f
    | false, false -> err "duplicate definition of function %%%s" f.fname
    | false, true ->
      (* f is a declaration satisfied by the resident definition *)
      remove_func src f;
      replace_all_uses_with (Vfunc f) (Vfunc existing);
      rewrite_initializers src ~from_f:(Some f) ~to_f:(Some existing)
        ~from_g:None ~to_g:None;
      rewrite_initializers dst ~from_f:(Some f) ~to_f:(Some existing)
        ~from_g:None ~to_g:None
    | true, false ->
      (* resident declaration replaced by this definition *)
      remove_func src f;
      replace_all_uses_with (Vfunc existing) (Vfunc f);
      rewrite_initializers dst ~from_f:(Some existing) ~to_f:(Some f)
        ~from_g:None ~to_g:None;
      rewrite_initializers src ~from_f:(Some existing) ~to_f:(Some f)
        ~from_g:None ~to_g:None;
      remove_func dst existing;
      add_func dst f
    | true, true ->
      remove_func src f;
      replace_all_uses_with (Vfunc f) (Vfunc existing);
      rewrite_initializers src ~from_f:(Some f) ~to_f:(Some existing)
        ~from_g:None ~to_g:None)

let link ?(name = "a.out") (modules : modul list) : modul =
  let dst = mk_module name in
  List.iter
    (fun src ->
      merge_types dst src;
      (* move globals first (function bodies may reference them), then
         functions *)
      List.iter (fun g -> move_gvar dst src g) src.mglobals;
      List.iter (fun f -> move_func dst src f) src.mfuncs)
    modules;
  dst

(* After whole-program linking, everything except the entry points can be
   internalized, enabling dead-global elimination and signature-changing
   optimizations (section 3.3). *)
let internalize ?(keep = [ "main" ]) (m : modul) : unit =
  List.iter
    (fun f ->
      if (not (List.mem f.fname keep)) && not (is_declaration f) then
        f.flinkage <- Internal)
    m.mfuncs;
  List.iter
    (fun g ->
      if (not (List.mem g.gname keep)) && g.ginit <> None then
        g.glinkage <- Internal)
    m.mglobals

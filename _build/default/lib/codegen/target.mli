(** Target descriptions: byte-accurate size models for the two machine
    encodings of Figure 5.  [x86ish] models a 32-bit CISC with
    variable-length instructions; [sparcish] a classic 32-bit RISC with
    fixed 4-byte words, sethi/or immediate materialization, branch delay
    slots and no setcc.  The paper's size ordering (LLVM ≈ X86 < Sparc)
    emerges from exactly these differences. *)

type t = {
  tname : string;
  num_regs : int;  (** register file size (two reserved for spills) *)
  size_of : Mir.minstr -> int;  (** encoded bytes of one instruction *)
}

val x86ish : t
val sparcish : t
val targets : t list

lib/codegen/regalloc.ml: Hashtbl List Mir

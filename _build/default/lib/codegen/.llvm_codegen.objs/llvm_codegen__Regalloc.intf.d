lib/codegen/regalloc.mli: Mir

lib/codegen/isel.mli: Llvm_ir Mir

lib/codegen/mir.ml: Printf

lib/codegen/target.ml: Int64 Mir

lib/codegen/target.mli: Mir

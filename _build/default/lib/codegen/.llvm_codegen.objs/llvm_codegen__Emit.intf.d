lib/codegen/emit.mli: Llvm_ir Target

lib/codegen/emit.ml: Isel List Llvm_ir Mir Regalloc String Target

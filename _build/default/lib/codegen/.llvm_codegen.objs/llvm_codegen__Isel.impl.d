lib/codegen/isel.ml: Array Hashtbl Int64 Ir List Llvm_ir Ltype Mir Option Printf

(* Machine IR: the target-independent instruction form produced by
   instruction selection and consumed by register allocation and the
   target encoders (paper section 3.4: LLVM "must be lowered" to expose
   machine-level code sequences).

   Virtual registers are unbounded; allocation rewrites them to physical
   registers or frame slots.  The operations are deliberately close to a
   simple two/three-address machine so both a CISC (variable-length) and
   a RISC (fixed-length) encoder can give byte-accurate sizes. *)

type operand =
  | Vreg of int (* virtual register *)
  | Preg of int (* physical register, after allocation *)
  | Imm of int64
  | Fimm of float
  | Slot of int (* frame slot index (spills + allocas) *)
  | Glob of string (* address of a global/function symbol *)
  | Lbl of string (* code label *)

type cond = Eq | Ne | Lt | Gt | Le | Ge

(* arithmetic kinds carry signedness/floatness so encoders can price them *)
type akind = KInt | KUint | KFloat

type minstr =
  | Mmov of operand * operand (* dst <- src *)
  | Mbin of string * akind * operand * operand * operand (* dst, a, b *)
  | Mcmp of akind * operand * operand
  | Msetcc of cond * operand (* dst <- flags *)
  | Mjcc of cond * string (* conditional jump to label *)
  | Mjmp of string
  | Mload of operand * operand * int (* dst <- [base + disp] *)
  | Mstore of operand * operand * int (* [base + disp] <- src *)
  | Mlea of operand * operand * int (* dst <- base + disp *)
  | Mindexed of operand * operand * operand * int (* dst <- base + idx*scale *)
  | Mcall of string * int (* direct call, #args *)
  | Mcalli of operand * int (* indirect call *)
  | Marg of int * operand (* pass argument k *)
  | Mret of operand option
  | Mlabel of string
  | Mswitch_check of operand * int64 * string (* cmp + je, for switch cases *)
  | Munwind (* jump into the unwinder runtime *)
  | Mframe of int (* prologue reserving n slots *)

type mfunc = {
  mname : string;
  mutable code : minstr list;
  mutable frame_slots : int; (* allocas + spills *)
  mutable vreg_count : int;
}

type mmodule = {
  mfuncs : mfunc list;
  data_bytes : int; (* global variable image size *)
}

(* Operands read and written, for liveness. *)
let defs_uses (i : minstr) : operand list * operand list =
  match i with
  | Mmov (d, s) -> ([ d ], [ s ])
  | Mbin (_, _, d, a, b) -> ([ d ], [ a; b ])
  | Mcmp (_, a, b) -> ([], [ a; b ])
  | Msetcc (_, d) -> ([ d ], [])
  | Mjcc _ | Mjmp _ | Mlabel _ -> ([], [])
  | Mload (d, base, _) -> ([ d ], [ base ])
  | Mstore (s, base, _) -> ([], [ s; base ])
  | Mlea (d, base, _) -> ([ d ], [ base ])
  | Mindexed (d, base, idx, _) -> ([ d ], [ base; idx ])
  | Mcall _ -> ([], [])
  | Mcalli (f, _) -> ([], [ f ])
  | Marg (_, s) -> ([], [ s ])
  | Mret (Some s) -> ([], [ s ])
  | Mret None -> ([], [])
  | Mswitch_check (s, _, _) -> ([], [ s ])
  | Munwind -> ([], [])
  | Mframe _ -> ([], [])

let map_operands (f : operand -> operand) (i : minstr) : minstr =
  match i with
  | Mmov (d, s) -> Mmov (f d, f s)
  | Mbin (op, k, d, a, b) -> Mbin (op, k, f d, f a, f b)
  | Mcmp (k, a, b) -> Mcmp (k, f a, f b)
  | Msetcc (c, d) -> Msetcc (c, f d)
  | Mjcc _ | Mjmp _ | Mlabel _ | Mcall _ | Munwind | Mframe _ | Mret None -> i
  | Mload (d, base, disp) -> Mload (f d, f base, disp)
  | Mstore (s, base, disp) -> Mstore (f s, f base, disp)
  | Mlea (d, base, disp) -> Mlea (f d, f base, disp)
  | Mindexed (d, base, idx, sc) -> Mindexed (f d, f base, f idx, sc)
  | Mcalli (g, n) -> Mcalli (f g, n)
  | Marg (k, s) -> Marg (k, f s)
  | Mret (Some s) -> Mret (Some (f s))
  | Mswitch_check (s, v, l) -> Mswitch_check (f s, v, l)

let cond_to_string = function
  | Eq -> "e"
  | Ne -> "ne"
  | Lt -> "l"
  | Gt -> "g"
  | Le -> "le"
  | Ge -> "ge"

let operand_to_string = function
  | Vreg n -> Printf.sprintf "v%d" n
  | Preg n -> Printf.sprintf "r%d" n
  | Imm v -> Printf.sprintf "$%Ld" v
  | Fimm f -> Printf.sprintf "$%g" f
  | Slot n -> Printf.sprintf "[fp-%d]" (8 * (n + 1))
  | Glob s -> "@" ^ s
  | Lbl s -> s

let minstr_to_string (i : minstr) : string =
  let o = operand_to_string in
  match i with
  | Mmov (d, s) -> Printf.sprintf "  mov %s, %s" (o d) (o s)
  | Mbin (op, _, d, a, b) -> Printf.sprintf "  %s %s, %s, %s" op (o d) (o a) (o b)
  | Mcmp (_, a, b) -> Printf.sprintf "  cmp %s, %s" (o a) (o b)
  | Msetcc (c, d) -> Printf.sprintf "  set%s %s" (cond_to_string c) (o d)
  | Mjcc (c, l) -> Printf.sprintf "  j%s %s" (cond_to_string c) l
  | Mjmp l -> Printf.sprintf "  jmp %s" l
  | Mload (d, b, disp) -> Printf.sprintf "  load %s, [%s+%d]" (o d) (o b) disp
  | Mstore (s, b, disp) -> Printf.sprintf "  store [%s+%d], %s" (o b) disp (o s)
  | Mlea (d, b, disp) -> Printf.sprintf "  lea %s, [%s+%d]" (o d) (o b) disp
  | Mindexed (d, b, i, sc) ->
    Printf.sprintf "  lea %s, [%s+%s*%d]" (o d) (o b) (o i) sc
  | Mcall (f, n) -> Printf.sprintf "  call %s  ; %d args" f n
  | Mcalli (f, n) -> Printf.sprintf "  calli %s  ; %d args" (o f) n
  | Marg (k, s) -> Printf.sprintf "  arg%d %s" k (o s)
  | Mret (Some s) -> Printf.sprintf "  ret %s" (o s)
  | Mret None -> "  ret"
  | Mlabel l -> l ^ ":"
  | Mswitch_check (s, v, l) -> Printf.sprintf "  case %s == %Ld -> %s" (o s) v l
  | Munwind -> "  unwind"
  | Mframe n -> Printf.sprintf "  frame %d slots" n

(** The native code generator driver (paper section 3.4): lower a
    module through instruction selection and register allocation for a
    target; report assembly-like text and exact byte sizes (Figure 5). *)

type func_asm = {
  fa_name : string;
  fa_text : string;  (** assembly-like listing *)
  fa_bytes : int;
  fa_spills : int;
}

type result = {
  target : string;
  funcs : func_asm list;
  code_bytes : int;
  data_bytes : int;  (** global-variable image size *)
  total_bytes : int;
}

val compile_function : Target.t -> Llvm_ir.Ltype.table -> Llvm_ir.Ir.func -> func_asm
val compile_module : Target.t -> Llvm_ir.Ir.modul -> result
val code_size : Target.t -> Llvm_ir.Ir.modul -> int

(* Linear-scan register allocation (Poletto & Sarkar style).

   Live intervals are approximated as [first position .. last position]
   over every def and use of a virtual register in the linearized code;
   this over-approximation is sound across loop back edges.  When no
   register is free the interval with the furthest end point is spilled
   to a frame slot; spilled operands are rewritten through two reserved
   scratch registers. *)

open Mir

type interval = { vreg : int; start_ : int; stop_ : int }

let intervals_of (code : minstr list) : interval list =
  let spans : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun pos i ->
      let defs, uses = defs_uses i in
      List.iter
        (fun o ->
          match o with
          | Vreg v -> (
            match Hashtbl.find_opt spans v with
            | Some (s, e) -> Hashtbl.replace spans v (min s pos, max e pos)
            | None -> Hashtbl.replace spans v (pos, pos))
          | _ -> ())
        (defs @ uses))
    code;
  Hashtbl.fold
    (fun vreg (start_, stop_) acc -> { vreg; start_; stop_ } :: acc)
    spans []
  |> List.sort (fun a b -> compare a.start_ b.start_)

type assignment = Reg of int | Spilled of int

(* Allocate with [num_regs] total registers; the two highest-numbered are
   reserved as spill scratch. *)
let allocate (f : mfunc) ~(num_regs : int) : mfunc * int (* spill count *) =
  let allocatable = max 1 (num_regs - 2) in
  let scratch0 = num_regs - 2 and scratch1 = num_regs - 1 in
  let intervals = intervals_of f.code in
  let assignment : (int, assignment) Hashtbl.t = Hashtbl.create 64 in
  let free = ref (List.init allocatable (fun k -> k)) in
  let active : interval list ref = ref [] (* sorted by stop_ *) in
  let spill_slots = ref f.frame_slots in
  let spills = ref 0 in
  let expire pos =
    let expired, still =
      List.partition (fun iv -> iv.stop_ < pos) !active
    in
    List.iter
      (fun iv ->
        match Hashtbl.find_opt assignment iv.vreg with
        | Some (Reg r) -> free := r :: !free
        | _ -> ())
      expired;
    active := still
  in
  let add_active iv =
    active := List.sort (fun a b -> compare a.stop_ b.stop_) (iv :: !active)
  in
  List.iter
    (fun iv ->
      expire iv.start_;
      match !free with
      | r :: rest ->
        free := rest;
        Hashtbl.replace assignment iv.vreg (Reg r);
        add_active iv
      | [] ->
        (* spill the interval that ends last *)
        let furthest =
          List.fold_left
            (fun best cand -> if cand.stop_ > best.stop_ then cand else best)
            iv !active
        in
        if furthest == iv then begin
          incr spill_slots;
          incr spills;
          Hashtbl.replace assignment iv.vreg (Spilled (!spill_slots - 1))
        end
        else begin
          (* steal the register from the furthest-ending active interval *)
          let stolen =
            match Hashtbl.find_opt assignment furthest.vreg with
            | Some (Reg r) -> r
            | _ -> assert false
          in
          incr spill_slots;
          incr spills;
          Hashtbl.replace assignment furthest.vreg (Spilled (!spill_slots - 1));
          active := List.filter (fun x -> not (x == furthest)) !active;
          Hashtbl.replace assignment iv.vreg (Reg stolen);
          add_active iv
        end)
    intervals;
  (* rewrite the code *)
  let rewritten =
    List.concat_map
      (fun i ->
        let defs, uses = defs_uses i in
        let spilled_ops ops =
          List.filter_map
            (fun o ->
              match o with
              | Vreg v -> (
                match Hashtbl.find_opt assignment v with
                | Some (Spilled slot) -> Some (v, slot)
                | _ -> None)
              | _ -> None)
            ops
        in
        let spilled_uses = spilled_ops uses in
        let spilled_defs = spilled_ops defs in
        (* assign scratch registers to spilled operands of this instr *)
        let scratch_of = Hashtbl.create 4 in
        List.iteri
          (fun k (v, _) ->
            if not (Hashtbl.mem scratch_of v) then
              Hashtbl.replace scratch_of v (if k = 0 then scratch0 else scratch1))
          (spilled_uses @ spilled_defs);
        let reloads =
          List.map
            (fun (v, slot) ->
              Mload (Preg (Hashtbl.find scratch_of v), Slot slot, 0))
            spilled_uses
        in
        let saves =
          List.map
            (fun (v, slot) ->
              Mstore (Preg (Hashtbl.find scratch_of v), Slot slot, 0))
            spilled_defs
        in
        let subst o =
          match o with
          | Vreg v -> (
            match Hashtbl.find_opt assignment v with
            | Some (Reg r) -> Preg r
            | Some (Spilled _) -> Preg (Hashtbl.find scratch_of v)
            | None -> Preg 0 (* dead vreg never used *))
          | o -> o
        in
        reloads @ [ map_operands subst i ] @ saves)
      f.code
  in
  ( { f with code = rewritten; frame_slots = !spill_slots },
    !spills )

(* Instruction selection: LLVM IR -> machine IR.

   Phi instructions are eliminated with shadow copies (each phi gets a
   shadow vreg written on every incoming edge; critical edges get a
   dedicated edge block).  getelementptr is expanded into explicit
   address arithmetic — constant indices fold into displacements, array
   indices become scaled-index operations (paper section 2.2: geps make
   address arithmetic explicit precisely so the code generator can see
   it). *)

open Llvm_ir
open Ir
open Mir

type ctx = {
  table : Ltype.table;
  mutable vregs : int;
  vmap : (int, operand) Hashtbl.t; (* instr/arg id -> operand *)
  slotmap : (int, int) Hashtbl.t; (* alloca instr id -> frame slot *)
  shadow : (int, operand) Hashtbl.t; (* phi id -> shadow vreg *)
  mutable slots : int;
  mutable out : minstr list; (* reversed *)
  fname : string;
}

let fresh (c : ctx) : operand =
  c.vregs <- c.vregs + 1;
  Vreg c.vregs

let emit (c : ctx) (i : minstr) = c.out <- i :: c.out

let label_of (c : ctx) (b : block) : string =
  Printf.sprintf "%s.L%d" c.fname b.bid

let akind_of table v =
  match Ltype.resolve table (Ir.type_of table v) with
  | Ltype.Float | Ltype.Double -> KFloat
  | Ltype.Integer k when not (Ltype.is_signed k) -> KUint
  | _ -> KInt

(* Materialize an IR value as a machine operand. *)
let rec operand_of (c : ctx) (v : value) : operand =
  match v with
  | Vinstr i -> (
    match Hashtbl.find_opt c.vmap i.iid with
    | Some o -> o
    | None ->
      (* forward reference (phi input defined later): allocate its vreg *)
      let o = fresh c in
      Hashtbl.replace c.vmap i.iid o;
      o)
  | Varg a -> (
    match Hashtbl.find_opt c.vmap a.aid with
    | Some o -> o
    | None ->
      let o = fresh c in
      Hashtbl.replace c.vmap a.aid o;
      o)
  | Vconst k -> const_operand c k
  | Vglobal g -> Glob g.gname
  | Vfunc f -> Glob f.fname
  | Vblock _ -> invalid_arg "operand_of: block"

and const_operand (c : ctx) (k : const) : operand =
  match k with
  | Cbool b -> Imm (if b then 1L else 0L)
  | Cint (_, v) -> Imm v
  | Cfloat (_, f) -> Fimm f
  | Cnull _ -> Imm 0L
  | Cundef _ | Czero _ -> Imm 0L
  | Cgvar g -> Glob g.gname
  | Cfunc f -> Glob f.fname
  | Ccast (_, k) -> const_operand c k
  | Carray _ | Cstruct _ -> invalid_arg "aggregate constant operand"

let result_operand (c : ctx) (i : instr) : operand =
  match Hashtbl.find_opt c.vmap i.iid with
  | Some o -> o
  | None ->
    let o = fresh c in
    Hashtbl.replace c.vmap i.iid o;
    o

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | _ -> invalid_arg "binop_name"

let cond_of_op = function
  | SetEQ -> Eq
  | SetNE -> Ne
  | SetLT -> Lt
  | SetGT -> Gt
  | SetLE -> Le
  | SetGE -> Ge
  | _ -> invalid_arg "cond_of_op"

(* Lower a gep into address arithmetic; returns the operand holding the
   final address. *)
let lower_gep (c : ctx) (i : instr) : operand =
  let table = c.table in
  let base = operand_of c i.operands.(0) in
  let pointee =
    match Ltype.resolve table (Ir.type_of table i.operands.(0)) with
    | Ltype.Pointer p -> p
    | _ -> invalid_arg "gep base not a pointer"
  in
  let cur_ty = ref pointee in
  let cur = ref base in
  let disp = ref 0 in
  let scale_index elt_size idx_op =
    let dst = fresh c in
    (match elt_size with
    | 1 | 2 | 4 | 8 -> emit c (Mindexed (dst, !cur, idx_op, elt_size))
    | n ->
      let scaled = fresh c in
      emit c (Mbin ("mul", KInt, scaled, idx_op, Imm (Int64.of_int n)));
      emit c (Mbin ("add", KInt, dst, !cur, scaled)));
    cur := dst
  in
  Array.iteri
    (fun k v ->
      if k >= 1 then begin
        if k = 1 then begin
          (* index over the pointee itself *)
          let sz = Ltype.size_of table !cur_ty in
          match v with
          | Vconst (Cint (_, n)) -> disp := !disp + (Int64.to_int n * sz)
          | v -> scale_index sz (operand_of c v)
        end
        else
          match Ltype.resolve table !cur_ty with
          | Ltype.Array (_, elt) ->
            let sz = Ltype.size_of table elt in
            (match v with
            | Vconst (Cint (_, n)) -> disp := !disp + (Int64.to_int n * sz)
            | v -> scale_index sz (operand_of c v));
            cur_ty := elt
          | Ltype.Struct _ as s ->
            let idx =
              match v with
              | Vconst (Cint (_, n)) -> Int64.to_int n
              | _ -> invalid_arg "non-constant struct index"
            in
            disp := !disp + Ltype.field_offset table s idx;
            cur_ty := Ltype.field_type table s idx
          | _ -> invalid_arg "gep through non-aggregate"
      end)
    i.operands;
  if !disp = 0 then !cur
  else begin
    let dst = fresh c in
    emit c (Mlea (dst, !cur, !disp));
    dst
  end

(* Emit the shadow-copy for every phi in [succ] along the edge from
   [pred]; used both inline (non-critical edges) and in edge blocks. *)
let emit_phi_copies (c : ctx) ~(pred : block) ~(succ : block) =
  List.iter
    (fun i ->
      if i.iop = Phi then begin
        match List.find_opt (fun (_, blk) -> blk == pred) (phi_incoming i) with
        | Some (v, _) ->
          let shadow =
            match Hashtbl.find_opt c.shadow i.iid with
            | Some s -> s
            | None ->
              let s = fresh c in
              Hashtbl.replace c.shadow i.iid s;
              s
          in
          emit c (Mmov (shadow, operand_of c v))
        | None -> ()
      end)
    succ.instrs

(* Does the edge pred->succ need an edge block (critical edge)? *)
let needs_edge_block (pred : block) (succ : block) : bool =
  (match terminator pred with
  | Some t -> List.length (successors t) > 1
  | None -> false)
  && List.length (predecessors succ) > 1
  && List.exists (fun i -> i.iop = Phi) succ.instrs

type edge = { from_block : block; to_block : block; elabel : string }

let select_instr (c : ctx) (edges : edge list ref) (b : block) (i : instr) :
    unit =
  let table = c.table in
  match i.iop with
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr ->
    let dst = result_operand c i in
    emit c
      (Mbin
         ( binop_name i.iop,
           akind_of table (Vinstr i),
           dst,
           operand_of c i.operands.(0),
           operand_of c i.operands.(1) ))
  | SetEQ | SetNE | SetLT | SetGT | SetLE | SetGE ->
    let dst = result_operand c i in
    emit c
      (Mcmp
         ( akind_of table i.operands.(0),
           operand_of c i.operands.(0),
           operand_of c i.operands.(1) ));
    emit c (Msetcc (cond_of_op i.iop, dst))
  | Cast ->
    let dst = result_operand c i in
    let src = operand_of c i.operands.(0) in
    let from_k = akind_of table i.operands.(0) in
    let to_k =
      match Ltype.resolve table i.ity with
      | Ltype.Float | Ltype.Double -> KFloat
      | _ -> KInt
    in
    if from_k = KFloat || to_k = KFloat then
      emit c (Mbin ("cvt", KFloat, dst, src, src))
    else emit c (Mmov (dst, src))
  | Select ->
    (* cmp + conditional move sequence: cmp, mov dst<-false, cmovne *)
    let dst = result_operand c i in
    emit c (Mcmp (KUint, operand_of c i.operands.(0), Imm 0L));
    emit c (Mmov (dst, operand_of c i.operands.(2)));
    emit c (Msetcc (Ne, dst))
  | Alloca when Array.length i.operands = 0 ->
    (* static alloca: a frame slot; its address materializes via lea *)
    let slot = c.slots in
    let size = Ltype.size_of table (Option.get i.alloc_ty) in
    c.slots <- c.slots + max 1 ((size + 7) / 8);
    Hashtbl.replace c.slotmap i.iid slot;
    let dst = result_operand c i in
    emit c (Mlea (dst, Slot slot, 0))
  | Alloca | Malloc ->
    let dst = result_operand c i in
    let size = Ltype.size_of table (Option.get i.alloc_ty) in
    (match Array.length i.operands with
    | 0 -> emit c (Marg (0, Imm (Int64.of_int size)))
    | _ ->
      let n = operand_of c i.operands.(0) in
      let total = fresh c in
      emit c (Mbin ("mul", KInt, total, n, Imm (Int64.of_int size)));
      emit c (Marg (0, total)));
    emit c (Mcall ((if i.iop = Malloc then "malloc" else "alloca"), 1));
    emit c (Mmov (dst, Preg 0))
  | Free ->
    emit c (Marg (0, operand_of c i.operands.(0)));
    emit c (Mcall ("free", 1))
  | Load ->
    let dst = result_operand c i in
    emit c (Mload (dst, operand_of c i.operands.(0), 0))
  | Store ->
    emit c (Mstore (operand_of c i.operands.(0), operand_of c i.operands.(1), 0))
  | Gep ->
    let addr = lower_gep c i in
    Hashtbl.replace c.vmap i.iid addr
  | Phi ->
    (* read the shadow written on each incoming edge *)
    let dst = result_operand c i in
    let shadow =
      match Hashtbl.find_opt c.shadow i.iid with
      | Some s -> s
      | None ->
        let s = fresh c in
        Hashtbl.replace c.shadow i.iid s;
        s
    in
    emit c (Mmov (dst, shadow))
  | Call ->
    let args = call_args i in
    List.iteri (fun k a -> emit c (Marg (k, operand_of c a))) args;
    (match call_callee i with
    | Vfunc f -> emit c (Mcall (f.fname, List.length args))
    | Vconst (Cfunc f) -> emit c (Mcall (f.fname, List.length args))
    | v -> emit c (Mcalli (operand_of c v, List.length args)));
    if i.ity <> Ltype.Void then emit c (Mmov (result_operand c i, Preg 0))
  | Invoke ->
    let args = call_args i in
    List.iteri (fun k a -> emit c (Marg (k, operand_of c a))) args;
    (match call_callee i with
    | Vfunc f -> emit c (Mcall (f.fname, List.length args))
    | Vconst (Cfunc f) -> emit c (Mcall (f.fname, List.length args))
    | v -> emit c (Mcalli (operand_of c v, List.length args)));
    if i.ity <> Ltype.Void then emit c (Mmov (result_operand c i, Preg 0));
    let normal = as_block i.operands.(1) in
    let unwind_dst = as_block i.operands.(2) in
    (* test the runtime's exception flag *)
    emit_phi_copies c ~pred:b ~succ:unwind_dst;
    emit c (Mjcc (Ne, label_of c unwind_dst));
    emit_phi_copies c ~pred:b ~succ:normal;
    emit c (Mjmp (label_of c normal))
  | Unwind -> emit c Munwind
  | Ret ->
    if Array.length i.operands = 1 then
      emit c (Mret (Some (operand_of c i.operands.(0))))
    else emit c (Mret None)
  | Br ->
    if Array.length i.operands = 1 then begin
      let succ = as_block i.operands.(0) in
      emit_phi_copies c ~pred:b ~succ;
      emit c (Mjmp (label_of c succ))
    end
    else begin
      let cond = operand_of c i.operands.(0) in
      let t = as_block i.operands.(1) in
      let f = as_block i.operands.(2) in
      emit c (Mcmp (KUint, cond, Imm 0L));
      let goto blk cc =
        if needs_edge_block b blk then begin
          let elabel = Printf.sprintf "%s.E%d_%d" c.fname b.bid blk.bid in
          edges := { from_block = b; to_block = blk; elabel } :: !edges;
          match cc with
          | Some cc -> emit c (Mjcc (cc, elabel))
          | None -> emit c (Mjmp elabel)
        end
        else begin
          emit_phi_copies c ~pred:b ~succ:blk;
          match cc with
          | Some cc -> emit c (Mjcc (cc, label_of c blk))
          | None -> emit c (Mjmp (label_of c blk))
        end
      in
      goto t (Some Ne);
      goto f None
    end
  | Switch ->
    let v = operand_of c i.operands.(0) in
    List.iter
      (fun (k, blk) ->
        let case_val =
          match k with
          | Cint (_, n) -> n
          | Cbool bv -> if bv then 1L else 0L
          | _ -> 0L
        in
        emit_phi_copies c ~pred:b ~succ:blk;
        emit c (Mswitch_check (v, case_val, label_of c blk)))
      (switch_cases i);
    let default = as_block i.operands.(1) in
    emit_phi_copies c ~pred:b ~succ:default;
    emit c (Mjmp (label_of c default))

let select_function (table : Ltype.table) (f : func) : mfunc =
  let c =
    { table; vregs = 0; vmap = Hashtbl.create 128;
      slotmap = Hashtbl.create 16; shadow = Hashtbl.create 16; slots = 0;
      out = []; fname = f.fname }
  in
  emit c (Mframe 0); (* patched below *)
  (* incoming arguments: copy from the argument registers *)
  List.iteri
    (fun k a ->
      let o = operand_of c (Varg a) in
      emit c (Mmov (o, Preg k)))
    f.fargs;
  let edges = ref [] in
  List.iter
    (fun b ->
      emit c (Mlabel (label_of c b));
      List.iter (fun i -> select_instr c edges b i) b.instrs)
    f.fblocks;
  (* edge blocks for critical edges *)
  List.iter
    (fun e ->
      emit c (Mlabel e.elabel);
      emit_phi_copies c ~pred:e.from_block ~succ:e.to_block;
      emit c (Mjmp (label_of c e.to_block)))
    !edges;
  let code = List.rev c.out in
  let code =
    match code with
    | Mframe _ :: rest -> Mframe c.slots :: rest
    | rest -> rest
  in
  { mname = f.fname; code; frame_slots = c.slots; vreg_count = c.vregs }

let select_module (m : modul) : mmodule =
  let funcs =
    List.filter_map
      (fun f -> if is_declaration f then None else Some (select_function m.mtypes f))
      m.mfuncs
  in
  let data =
    List.fold_left
      (fun acc g -> acc + Ltype.size_of m.mtypes g.gty)
      0 m.mglobals
  in
  { mfuncs = funcs; data_bytes = data }

(* The native code generator driver (paper section 3.4): lower a module
   through instruction selection and register allocation for a target,
   report assembly-like text and exact byte sizes. *)

open Mir

type func_asm = {
  fa_name : string;
  fa_text : string;
  fa_bytes : int;
  fa_spills : int;
}

type result = {
  target : string;
  funcs : func_asm list;
  code_bytes : int;
  data_bytes : int;
  total_bytes : int;
}

let compile_function (t : Target.t) (table : Llvm_ir.Ltype.table)
    (f : Llvm_ir.Ir.func) : func_asm =
  let mf = Isel.select_function table f in
  let mf, spills = Regalloc.allocate mf ~num_regs:t.Target.num_regs in
  let bytes =
    List.fold_left (fun acc i -> acc + t.Target.size_of i) 0 mf.code
  in
  let text =
    String.concat "\n"
      ((mf.mname ^ ":") :: List.map minstr_to_string mf.code)
  in
  { fa_name = f.Llvm_ir.Ir.fname; fa_text = text; fa_bytes = bytes;
    fa_spills = spills }

let compile_module (t : Target.t) (m : Llvm_ir.Ir.modul) : result =
  let funcs =
    List.filter_map
      (fun f ->
        if Llvm_ir.Ir.is_declaration f then None
        else Some (compile_function t m.Llvm_ir.Ir.mtypes f))
      m.Llvm_ir.Ir.mfuncs
  in
  let code = List.fold_left (fun acc fa -> acc + fa.fa_bytes) 0 funcs in
  let data =
    List.fold_left
      (fun acc g -> acc + Llvm_ir.Ltype.size_of m.Llvm_ir.Ir.mtypes g.Llvm_ir.Ir.gty)
      0 m.Llvm_ir.Ir.mglobals
  in
  { target = t.Target.tname; funcs; code_bytes = code; data_bytes = data;
    total_bytes = code + data }

let code_size (t : Target.t) (m : Llvm_ir.Ir.modul) : int =
  (compile_module t m).code_bytes

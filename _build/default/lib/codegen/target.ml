(* Target descriptions: byte-accurate size models for the two machine
   encodings of Figure 5.

   X86ish models a 32-bit CISC with variable-length instructions
   (opcode + ModRM, short immediates, compact stack addressing);
   Sparcish models a classic 32-bit RISC: every instruction is exactly
   four bytes, large immediates need sethi+or pairs, and conditionals
   that *produce values* need multi-instruction sequences.  The paper's
   observation — LLVM bitcode is about the size of X86 code and roughly
   25% smaller than SPARC code — falls out of exactly these encoding
   differences. *)

open Mir

type t = {
  tname : string;
  num_regs : int;
  size_of : minstr -> int;
}

(* -- X86ish: variable-length CISC ------------------------------------------ *)

let fits_i8 v = v >= -128L && v <= 127L

let x86_imm_size v = if fits_i8 v then 1 else 4

let x86_operand_extra = function
  | Imm v -> x86_imm_size v
  | Fimm _ -> 4
  | Glob _ -> 4 (* absolute address *)
  | Slot _ -> 1 (* fp-relative disp8 (most frames are small) *)
  | Preg _ | Vreg _ -> 0
  | Lbl _ -> 4

let x86_disp_size d = if d = 0 then 0 else if fits_i8 (Int64.of_int d) then 1 else 4

let x86_size (i : minstr) : int =
  match i with
  | Mmov (_, src) -> 2 + x86_operand_extra src
  | Mbin (op, k, dst, a, b) ->
    let two_addr_copy = if dst = a then 0 else 2 in
    let base =
      match op with
      | "mul" -> 3
      | "div" | "rem" -> 5 (* cdq + idiv + moves *)
      | "cvt" -> 4
      | _ -> if k = KFloat then 4 else 2
    in
    two_addr_copy + base + x86_operand_extra b
  | Mcmp (_, a, b) -> 2 + x86_operand_extra a + x86_operand_extra b
  | Msetcc _ -> 3 (* 0F 9x /r *)
  | Mjcc _ -> 2 (* rel8 *)
  | Mjmp _ -> 2
  | Mload (_, base, disp) -> 2 + x86_operand_extra base + x86_disp_size disp
  | Mstore (src, base, disp) ->
    2 + x86_operand_extra src + x86_operand_extra base + x86_disp_size disp
  | Mlea (_, base, disp) -> 2 + x86_operand_extra base + x86_disp_size disp
  | Mindexed (_, _, _, _) -> 3 (* lea with SIB *)
  | Mcall (_, _) -> 5 (* call rel32 *)
  | Mcalli (_, _) -> 2
  | Marg (_, src) -> 4 + x86_operand_extra src (* mov [esp+k], src *)
  | Mret _ -> 1
  | Mlabel _ -> 0
  | Mswitch_check (_, v, _) -> 2 + x86_imm_size v + 2 (* cmp + je *)
  | Munwind -> 5 (* jmp runtime *)
  | Mframe _ -> 6 (* push ebp; mov ebp,esp; sub esp, n *)

let x86ish : t = { tname = "X86"; num_regs = 7; size_of = x86_size }

(* -- Sparcish: fixed 32-bit RISC -------------------------------------------- *)

let fits_simm13 v = v >= -4096L && v <= 4095L

(* materializing a value/address that does not fit in 13 bits costs a
   sethi+or pair *)
let sparc_materialize = function
  | Imm v -> if fits_simm13 v then 0 else 8
  | Fimm _ -> 8 (* sethi/or + load from constant pool *)
  | Glob _ -> 8 (* sethi %hi, or %lo *)
  | Slot _ | Preg _ | Vreg _ | Lbl _ -> 0

let sparc_size (i : minstr) : int =
  match i with
  | Mmov (_, src) -> 4 + sparc_materialize src
  | Mbin (op, _, _, a, b) ->
    let base =
      match op with
      | "div" | "rem" -> 12 (* wr %y + divide + fixup *)
      | "mul" -> 4
      | "cvt" -> 8
      | _ -> 4
    in
    base + sparc_materialize a + sparc_materialize b
  | Mcmp (_, a, b) -> 4 + sparc_materialize a + sparc_materialize b
  | Msetcc _ -> 12 (* mov 0; b<cc> .+8; mov 1  (no setcc instruction) *)
  | Mjcc _ -> 8 (* branch + delay-slot nop *)
  | Mjmp _ -> 8
  | Mload (_, base, disp) ->
    4 + sparc_materialize base
    + if fits_simm13 (Int64.of_int disp) then 0 else 8
  | Mstore (src, base, disp) ->
    4 + sparc_materialize src + sparc_materialize base
    + if fits_simm13 (Int64.of_int disp) then 0 else 8
  | Mlea (_, base, disp) ->
    4 + sparc_materialize base
    + if fits_simm13 (Int64.of_int disp) then 0 else 8
  | Mindexed (_, _, _, scale) -> if scale = 1 then 4 else 8 (* sll + add *)
  | Mcall _ -> 8 (* call + delay slot *)
  | Mcalli (f, _) -> 8 + sparc_materialize f
  | Marg (_, src) -> 4 + sparc_materialize src (* mov %oN *)
  | Mret _ -> 8 (* ret + restore *)
  | Mlabel _ -> 0
  | Mswitch_check (_, v, _) -> 8 + (if fits_simm13 v then 0 else 8)
  | Munwind -> 8
  | Mframe _ -> 4 (* save %sp *)

let sparcish : t = { tname = "Sparc"; num_regs = 24; size_of = sparc_size }

let targets = [ x86ish; sparcish ]

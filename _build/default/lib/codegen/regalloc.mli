(** Linear-scan register allocation (Poletto & Sarkar).  Live intervals
    are the [first..last] positions of each virtual register in the
    linearized code (sound across back edges); the furthest-ending
    interval spills when registers run out, and spilled operands are
    rewritten through two reserved scratch registers. *)

type interval = { vreg : int; start_ : int; stop_ : int }

val intervals_of : Mir.minstr list -> interval list

(** Returns the rewritten function (no virtual registers remain) and
    the number of spilled intervals. *)
val allocate : Mir.mfunc -> num_regs:int -> Mir.mfunc * int

(** Instruction selection: LLVM IR to machine IR.  Phis are eliminated
    with shadow copies (critical edges get dedicated edge blocks);
    getelementptr expands into explicit address arithmetic with constant
    indices folded into displacements (paper section 2.2). *)

val select_function : Llvm_ir.Ltype.table -> Llvm_ir.Ir.func -> Mir.mfunc
val select_module : Llvm_ir.Ir.modul -> Mir.mmodule
